// Executor-observability overhead over the Q1..Q8 OODB workload: what do
// the per-operator runtime stats cost on the execution path?
//
// Each query is optimized once (the plan is not what is being measured),
// an in-memory database is populated at executable cardinalities, and the
// winning plan is then executed as interleaved back-to-back pairs — plain
// (the production default: no collector, factories' iterators run bare)
// then instrumented (an ExecStats collector wraps every operator in an
// InstrumentedIterator) — so each pair's time ratio cancels host load and
// frequency drift. The design goal mirrors bench_metrics: counting a row
// is one increment, and Next() latency is *sampled* 1-in-64, so the gate
// holds the MEDIAN overhead ratio to a small budget.
//
// Self-checks (exit non-zero on failure):
//   - instrumented results are SameResult-identical to plain results,
//   - the root operator's recorded rows equal the CollectAll row count
//     and every node's next_calls covers its rows (exactness: stats are
//     counted on every call, only timing is sampled),
//   - the median instrumented/plain overhead pooled over all timed pairs
//     is <= PRAIRIE_EXEC_OVERHEAD_TOL percent (default 2%; per-query
//     maxima are micro-benchmark noise).
//
// Environment knobs:
//   PRAIRIE_EXEC_OBSERVE_JOINS    join count per query  (def 2)
//   PRAIRIE_EXEC_OBSERVE_REPEATS  timed pairs per query  (def 9)
//   PRAIRIE_EXEC_OVERHEAD_TOL     overhead gate, percent  (def 2)
//   PRAIRIE_EXEC_OBSERVE_MIN_CARD / _MAX_CARD  base-class rows (16 / 256)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "exec/builder.h"
#include "exec/stats.h"
#include "optimizers/executors.h"
#include "volcano/engine.h"
#include "workload/workload.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::exec::CollectAll;
using prairie::exec::ExecStats;
using prairie::exec::ExecutorRegistry;
using prairie::exec::Row;
using prairie::exec::SameResult;
using prairie::volcano::Optimizer;
using prairie::volcano::RuleSet;

}  // namespace

int main() {
  const int joins = EnvInt("PRAIRIE_EXEC_OBSERVE_JOINS", 2);
  const int repeats = EnvInt("PRAIRIE_EXEC_OBSERVE_REPEATS", 9);
  const int tol_pct = EnvInt("PRAIRIE_EXEC_OVERHEAD_TOL", 2);
  const int min_card = EnvInt("PRAIRIE_EXEC_OBSERVE_MIN_CARD", 16);
  const int max_card = EnvInt("PRAIRIE_EXEC_OBSERVE_MAX_CARD", 256);

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_exec_observe: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  ExecutorRegistry registry;
  if (auto st = prairie::opt::RegisterStandardExecutors(&registry);
      !st.ok()) {
    std::fprintf(stderr, "bench_exec_observe: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf(
      "exec observability overhead: Q1..Q8, %d joins, cards %d..%d, best "
      "of %d runs, gate: median <= %d%%\n\n",
      joins, min_card, max_card, repeats, tol_pct);
  std::printf("%6s %10s %12s %12s %10s\n", "query", "rows", "plain",
              "instrumented", "overhead");

  JsonWriter json("exec_observe");
  std::vector<double> all_ratios;
  bool ok = true;

  for (int q = 1; q <= 8; ++q) {
    prairie::workload::QuerySpec spec =
        prairie::workload::PaperQuery(q, joins, 1);
    spec.min_card = min_card;
    spec.max_card = max_card;
    auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
    if (!w.ok()) {
      std::fprintf(stderr, "bench_exec_observe: Q%d: %s\n", q,
                   w.status().ToString().c_str());
      return 1;
    }
    Optimizer optimizer(&rules, &w->catalog);
    auto plan = optimizer.Optimize(*w->query);
    if (!plan.ok()) {
      std::fprintf(stderr, "bench_exec_observe: Q%d: %s\n", q,
                   plan.status().ToString().c_str());
      return 1;
    }
    auto db = prairie::workload::MakeDatabase(w->catalog, spec.seed);
    if (!db.ok()) {
      std::fprintf(stderr, "bench_exec_observe: Q%d: %s\n", q,
                   db.status().ToString().c_str());
      return 1;
    }
    const prairie::algebra::ExprPtr plan_expr =
        plan->root->ToExpr(*rules.algebra);

    auto run = [&](ExecStats* stats,
                   std::vector<Row>* out) -> prairie::common::Status {
      auto it = stats == nullptr
                    ? registry.Build(*plan_expr, *rules.algebra, *db)
                    : registry.Build(*plan_expr, *rules.algebra, *db, stats);
      if (!it.ok()) return it.status();
      auto rows = CollectAll(it->get());
      if (!rows.ok()) return rows.status();
      *out = std::move(*rows);
      return prairie::common::Status::OK();
    };

    // Interleave the two configurations rep by rep (plain, instrumented,
    // plain, ...) so warmup, allocator state, and frequency drift hit both
    // sides equally — at these run times a sequential A*N-then-B*N layout
    // reads as several percent of phantom overhead. The first interleaved
    // pair is warmup (not timed) and sizes an inner loop that keeps every
    // timed region above ~2ms; the sub-millisecond queries are otherwise
    // timer-noise-bound.
    double plain = -1;
    double instrumented = -1;
    int inner = 1;
    std::vector<double> ratios;  ///< instrumented/plain per timed rep.
    std::vector<Row> plain_rows;
    std::vector<Row> inst_rows;
    for (int rep = 0; rep <= repeats; ++rep) {
      std::vector<Row> rows;
      prairie::common::Stopwatch sw;
      for (int i = 0; i < inner; ++i) {
        if (auto st = run(nullptr, &rows); !st.ok()) {
          std::fprintf(stderr, "bench_exec_observe: Q%d: %s\n", q,
                       st.ToString().c_str());
          return 1;
        }
      }
      const double t = sw.ElapsedSeconds() / inner;
      if (rep > 0 && (plain < 0 || t < plain)) plain = t;
      if (rep == 0)
        inner = static_cast<int>(
            std::clamp(0.002 / std::max(t, 1e-9), 1.0, 64.0));
      plain_rows = std::move(rows);

      std::unique_ptr<ExecStats> stats;
      rows.clear();
      prairie::common::Stopwatch sw2;
      for (int i = 0; i < inner; ++i) {
        stats = std::make_unique<ExecStats>();
        if (auto st = run(stats.get(), &rows); !st.ok()) {
          std::fprintf(stderr,
                       "bench_exec_observe: Q%d (instrumented): %s\n", q,
                       st.ToString().c_str());
          return 1;
        }
      }
      const double t2 = sw2.ElapsedSeconds() / inner;
      if (rep > 0) {
        if (instrumented < 0 || t2 < instrumented) instrumented = t2;
        ratios.push_back(t2 / t);
      }
#if PRAIRIE_EXEC_STATS
      // Exactness: stats count every call, only timing is sampled.
      if (stats->root() == nullptr || stats->root()->rows != rows.size()) {
        std::fprintf(
            stderr,
            "bench_exec_observe: FAILED — Q%d root recorded %llu rows, "
            "CollectAll returned %zu\n",
            q,
            static_cast<unsigned long long>(
                stats->root() == nullptr ? 0 : stats->root()->rows),
            rows.size());
        ok = false;
      }
      if (stats->TotalNextCalls() < stats->TotalRows()) {
        std::fprintf(stderr,
                     "bench_exec_observe: FAILED — Q%d next_calls %llu < "
                     "rows %llu\n",
                     q,
                     static_cast<unsigned long long>(
                         stats->TotalNextCalls()),
                     static_cast<unsigned long long>(stats->TotalRows()));
        ok = false;
      }
#endif
      inst_rows = std::move(rows);
    }

    if (!SameResult(plain_rows, inst_rows)) {
      std::fprintf(stderr,
                   "bench_exec_observe: FAILED — Q%d instrumented result "
                   "differs from plain\n",
                   q);
      ok = false;
    }

    // The per-query overhead is the median ratio of back-to-back pairs:
    // each pair runs under the same instantaneous machine conditions, so
    // the ratio cancels the frequency/load drift that makes independently
    // taken best-of minima read as phantom overhead on busy hosts.
    all_ratios.insert(all_ratios.end(), ratios.begin(), ratios.end());
    std::sort(ratios.begin(), ratios.end());
    const double overhead_pct =
        100.0 * (ratios[ratios.size() / 2] - 1.0);
    json.RecordRaw("Q" + std::to_string(q) + "/plain", plain * 1e6, "");
    char extra[96];
    std::snprintf(extra, sizeof(extra), "\"overhead_pct\":%.2f",
                  overhead_pct);
    json.RecordRaw("Q" + std::to_string(q) + "/instrumented",
                   instrumented * 1e6, extra);
    std::printf("%6s %10zu %10.2fus %10.2fus %+9.1f%%\n",
                ("Q" + std::to_string(q)).c_str(), plain_rows.size(),
                plain * 1e6, instrumented * 1e6, overhead_pct);
    std::fflush(stdout);
  }

  // Gate on the median over ALL interleaved pairs (8 queries x repeats
  // samples): per-query medians of a handful of ratios still wander a few
  // percent under host load; the pooled median is stable.
  std::sort(all_ratios.begin(), all_ratios.end());
  const double median =
      100.0 * (all_ratios[all_ratios.size() / 2] - 1.0);
  std::printf("\nmedian overhead: %+.2f%% (over %zu timed pairs)\n", median,
              all_ratios.size());

  if (median > static_cast<double>(tol_pct)) {
    std::fprintf(stderr,
                 "bench_exec_observe: FAILED — median overhead %.2f%% "
                 "exceeds %d%% budget\n",
                 median, tol_pct);
    ok = false;
  }
  return ok ? 0 : 1;
}

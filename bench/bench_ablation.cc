// Ablation and micro benchmarks (google-benchmark):
//  - branch-and-bound pruning on/off (the engine's cost-limit design),
//  - interpreted (P2V-generated) vs. compiled (hand-coded) rule actions,
//  - memo insertion/deduplication throughput,
//  - descriptor copy/hash costs (the engine's hottest data structure).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "optimizers/props.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::OptimizerPair;

const OptimizerPair& Pair() {
  static OptimizerPair pair = [] {
    auto p = BuildOodbPair();
    if (!p.ok()) std::abort();
    return *p;
  }();
  return pair;
}

void OptimizeOnce(const prairie::volcano::RuleSet& rules, int qnum, int n,
                  bool prune, benchmark::State& state) {
  prairie::workload::QuerySpec spec = prairie::workload::PaperQuery(qnum, n, 7);
  auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
  if (!w.ok()) {
    state.SkipWithError(w.status().ToString().c_str());
    return;
  }
  size_t plans = 0;
  for (auto _ : state) {
    prairie::volcano::OptimizerOptions opts;
    opts.prune = prune;
    prairie::volcano::Optimizer optimizer(&rules, &w->catalog, opts);
    auto plan = optimizer.Optimize(*w->query);
    if (!plan.ok()) {
      state.SkipWithError(plan.status().ToString().c_str());
      return;
    }
    plans = optimizer.stats().plans_costed;
    benchmark::DoNotOptimize(plan->cost);
  }
  state.counters["plans_costed"] = static_cast<double>(plans);
}

void BM_PruneOn(benchmark::State& state) {
  OptimizeOnce(*Pair().hand, 1, static_cast<int>(state.range(0)), true,
               state);
}
BENCHMARK(BM_PruneOn)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_PruneOff(benchmark::State& state) {
  OptimizeOnce(*Pair().hand, 1, static_cast<int>(state.range(0)), false,
               state);
}
BENCHMARK(BM_PruneOff)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void BM_InterpretedRules(benchmark::State& state) {
  OptimizeOnce(*Pair().generated, 5, static_cast<int>(state.range(0)), true,
               state);
}
BENCHMARK(BM_InterpretedRules)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

void BM_CompiledRules(benchmark::State& state) {
  OptimizeOnce(*Pair().hand, 5, static_cast<int>(state.range(0)), true,
               state);
}
BENCHMARK(BM_CompiledRules)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

void BM_MemoCopyIn(benchmark::State& state) {
  const auto& rules = *Pair().hand;
  prairie::workload::QuerySpec spec =
      prairie::workload::PaperQuery(1, static_cast<int>(state.range(0)), 7);
  auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
  if (!w.ok()) {
    state.SkipWithError(w.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    prairie::volcano::Memo memo(&rules, prairie::volcano::MemoLimits{});
    auto g = memo.CopyIn(*w->query);
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_MemoCopyIn)->DenseRange(2, 8, 2);

void BM_DescriptorCopy(benchmark::State& state) {
  const auto& rules = *Pair().hand;
  prairie::workload::QuerySpec spec = prairie::workload::PaperQuery(5, 3, 7);
  auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
  const prairie::algebra::Descriptor& d = w->query->descriptor();
  for (auto _ : state) {
    prairie::algebra::Descriptor copy = d;
    benchmark::DoNotOptimize(copy.valid());
  }
}
BENCHMARK(BM_DescriptorCopy);

void BM_DescriptorHash(benchmark::State& state) {
  const auto& rules = *Pair().hand;
  prairie::workload::QuerySpec spec = prairie::workload::PaperQuery(5, 3, 7);
  auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
  const prairie::algebra::Descriptor& d = w->query->descriptor();
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.Hash());
  }
}
BENCHMARK(BM_DescriptorHash);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark run,
// emit the machine-readable BENCH_ablation.json summary (the cross-PR
// tracking line every bench produces).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  prairie::bench::JsonWriter json("ablation");
  for (const auto& [family, rules] :
       {std::pair<const char*, const prairie::volcano::RuleSet*>{
            "Q1/n3/hand", Pair().hand.get()},
        {"Q1/n3/interp", Pair().generated.get()},
        {"Q1/n3/emitted", Pair().emitted.get()}}) {
    prairie::bench::Measurement m =
        prairie::bench::MeasureQuery(*rules, 1, 3, /*num_seeds=*/1,
                                     /*repeats=*/3);
    if (m.ok()) json.Record(family, m);
  }
  return 0;
}

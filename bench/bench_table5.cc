// Table 5: the queries used in the experiments and the number of
// trans_rules / impl_rules whose left-hand sides matched during
// optimization. Paper values are printed alongside for comparison; exact
// counts depend on the (reconstructed) rule set, so the shape to check is
// E1 < E2 < E3 < E4, with indices adding matches.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

int main() {
  auto pair = prairie::bench::BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  struct PaperRow {
    const char* expr;
    int trans;
    int impl;
  };
  // Paper Table 5 (rules matched, per expression; pairs share a row).
  const PaperRow paper[9] = {{},          {"E1", 2, 2}, {"E1", 5, 3},
                             {"E2", 8, 4}, {"E2", 8, 4}, {"E3", 9, 5},
                             {"E3", 9, 5}, {"E4", 16, 7}, {"E4", 16, 7}};

  std::printf("Table 5: queries and rules matched (N = 2 joins)\n\n");
  std::printf("%5s %8s %5s | %11s %10s | %11s %10s\n", "query", "indices?",
              "expr", "trans match", "(paper)", "impl match", "(paper)");
  std::printf("%s\n", std::string(72, '-').c_str());
  prairie::bench::JsonWriter json("table5");
  for (int q = 1; q <= 8; ++q) {
    prairie::bench::Measurement m =
        prairie::bench::MeasureQuery(*pair->hand, q, /*num_joins=*/2,
                                     /*num_seeds=*/1);
    if (!m.ok()) {
      std::printf("Q%-4d failed: %s\n", q, m.status.ToString().c_str());
      continue;
    }
    json.Record("Q" + std::to_string(q) + "/n2/hand", m);
    std::printf("%5s %8s %5s | %11zu %10d | %11zu %10d\n",
                ("Q" + std::to_string(q)).c_str(),
                (q % 2 == 0) ? "yes" : "no", paper[q].expr, m.trans_matched,
                paper[q].trans, m.impl_matched, paper[q].impl);
  }
  std::printf(
      "\nShape check: matched counts grow with expression complexity\n"
      "(E1 < E2 <= E3 < E4); index presence adds scan rules. Absolute\n"
      "counts differ from the paper because the TI Open OODB rule files\n"
      "are proprietary and our rule set is a reconstruction (DESIGN.md).\n");
  return 0;
}

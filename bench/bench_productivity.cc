// §4.2 Programmer productivity: rule counts and specification sizes of
// the Prairie rule set vs. the hand-designed Volcano rule set vs. the
// P2V-regenerated Volcano rule set.
//
// Paper numbers for the Open OODB rule set: 22 T-rules + 11 I-rules in
// Prairie vs. 17 trans_rules + 9 impl_rules in Volcano; the Prairie
// specification was ~10% smaller (12100 vs. 13400 lines; the regenerated
// Volcano spec was 15800 lines). Our line counts are for rendered
// specifications, so only their ordering is comparable.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "optimizers/oodb.h"
#include "optimizers/relational.h"
#include "p2v/emit_cpp.h"
#include "p2v/translator.h"
#include "optimizers/native_helpers.h"

namespace {

int CountLines(const std::string& text) {
  int lines = 1;
  for (char c : text) lines += (c == '\n');
  return lines;
}

}  // namespace

int main() {
  using prairie::p2v::TranslationReport;

  prairie::bench::JsonWriter json("productivity");
  for (bool oodb : {false, true}) {
    auto prairie_rules = oodb ? prairie::opt::BuildOodbPrairie()
                              : prairie::opt::BuildRelationalPrairie();
    if (!prairie_rules.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   prairie_rules.status().ToString().c_str());
      return 1;
    }
    TranslationReport report;
    prairie::common::Stopwatch sw;
    auto generated = prairie::p2v::Translate(*prairie_rules, &report);
    double translate_us = sw.ElapsedSeconds() * 1e6;
    if (!generated.ok()) {
      std::fprintf(stderr, "P2V failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    json.Record(std::string(oodb ? "oodb" : "relational") + "/translate",
                translate_us, /*groups=*/0, /*mexprs=*/0,
                /*intern_hit_rate=*/0.0);
    const char* name = oodb ? "Open-OODB-scale rule set (paper §4.2)"
                            : "relational rule set (paper §4 recap of [5])";
    std::printf("=== %s ===\n\n", name);
    std::printf("%s\n", report.ToString().c_str());
    if (oodb) {
      std::printf(
          "paper: 22 T-rules + 11 I-rules -> 17 trans_rules + 9 "
          "impl_rules (+1 enforcer)\n");
      std::printf("ours : %d T-rules + %d I-rules -> %d trans_rules + %d "
                  "impl_rules (+%d enforcer)\n\n",
                  report.input_trules, report.input_irules,
                  report.output_trans_rules, report.output_impl_rules,
                  report.output_enforcers);
    }
    const char* spec_text = oodb ? prairie::opt::OodbSpecText()
                                 : prairie::opt::RelationalSpecText();
    int prairie_lines = CountLines(spec_text);
    int regenerated_lines = CountLines((*generated)->ToString());
    prairie::p2v::EmitOptions emit_options;
    emit_options.native_helpers = prairie::opt::native::NativeHelperMap();
    auto emitted = prairie::p2v::EmitCpp(*prairie_rules, emit_options);
    int emitted_lines = emitted.ok() ? CountLines(*emitted) : -1;
    std::printf("specification sizes (rendered):\n");
    std::printf("  Prairie DSL source:           %5d lines\n",
                prairie_lines);
    std::printf("  P2V-regenerated Volcano spec: %5d lines (summary form)\n",
                regenerated_lines);
    std::printf("  P2V-emitted C++ optimizer:    %5d lines\n",
                emitted_lines);
    std::printf(
        "  (the paper reports 12100 Prairie vs. 13400 hand-coded vs. 15800 "
        "regenerated lines,\n   i.e. the Prairie source is the smallest of "
        "the three)\n\n");
  }
  return 0;
}

// Figure 10: query optimization times for Q1 and Q2 (expression E1 —
// an N-way join of base-class retrievals), Prairie vs. Volcano, without
// (Q1) and with (Q2) indices.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  auto pair = prairie::bench::BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  int max_joins = prairie::bench::EnvInt("PRAIRIE_MAX_JOINS", 8);
  prairie::bench::JsonWriter json("fig10_q1q2");
  prairie::bench::RunFigure(
      "Figure 10: optimization time for Q1 / Q2 (E1, N-way join)", *pair,
      /*qa=*/1, /*qb=*/2, max_joins, /*per_point_budget_s=*/20.0, &json);
  std::printf(
      "Paper shape check: Q1 and Q2 curves should coincide (the two join\n"
      "algorithms ignore indices), and Prairie ~= Volcano at every point.\n");
  return 0;
}

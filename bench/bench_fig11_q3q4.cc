// Figure 11: query optimization times for Q3 and Q4 (expression E2 — each
// class retrieval followed by a MATerialization), Prairie vs. Volcano.
// The paper's sweep ended at 8-way joins when virtual memory was
// exhausted; ours self-limits on a per-point time budget (override the
// sweep end with PRAIRIE_MAX_JOINS).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  auto pair = prairie::bench::BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  int max_joins = prairie::bench::EnvInt("PRAIRIE_MAX_JOINS", 6);
  prairie::bench::JsonWriter json("fig11_q3q4");
  prairie::bench::RunFigure(
      "Figure 11: optimization time for Q3 / Q4 (E2, MAT after each RET)",
      *pair, /*qa=*/3, /*qb=*/4, max_joins, /*per_point_budget_s=*/15.0, &json);
  std::printf(
      "Paper shape check: identical Q3/Q4 curves (indices unused), steeper\n"
      "growth than Figure 10, Prairie ~= Volcano.\n");
  return 0;
}

// Per-rule search profiling over the Q1..Q8 OODB workload (observability
// layer): where does optimization time go, rule by rule?
//
// Each query is optimized twice — untraced (the production configuration:
// null sink, one branch per event site) and traced into a RingBufferSink —
// so the JSON log captures both the tracing overhead and the per-query
// event volume. The traced streams are aggregated with BuildRuleProfile
// into one table of attempts / firings / cumulative / max latency per
// transformation rule, implementation rule, and enforcer.
//
// Self-check: per-rule firing counts summed over the profile must equal
// the engine's trans_fired counter for every query, or the bench exits
// non-zero (the stream is complete as long as the ring never wraps).
//
// Environment knobs:
//   PRAIRIE_RULEPROFILE_JOINS    join count per query  (def 3)
//   PRAIRIE_RULEPROFILE_REPEATS  timing repeats, best-of  (def 3)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "volcano/profile.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::common::RingBufferSink;
using prairie::volcano::Optimizer;
using prairie::volcano::OptimizerOptions;
using prairie::volcano::RuleSet;

}  // namespace

int main() {
  const int joins = EnvInt("PRAIRIE_RULEPROFILE_JOINS", 3);
  const int repeats = EnvInt("PRAIRIE_RULEPROFILE_REPEATS", 3);

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_ruleprofile: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  std::printf("per-rule search profile: Q1..Q8, %d joins, best of %d runs\n\n",
              joins, repeats);
  std::printf("%6s %12s %12s %10s %9s %9s\n", "query", "untraced", "traced",
              "overhead", "events", "fired");

  JsonWriter json("ruleprofile");
  std::vector<prairie::common::TraceEvent> all_events;
  size_t all_dropped = 0;
  bool counts_match = true;

  for (int q = 1; q <= 8; ++q) {
    prairie::workload::QuerySpec spec =
        prairie::workload::PaperQuery(q, joins, 1);
    auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
    if (!w.ok()) {
      std::fprintf(stderr, "bench_ruleprofile: Q%d: %s\n", q,
                   w.status().ToString().c_str());
      return 1;
    }

    // Untraced: the production-path timing (null sink).
    double untraced = -1;
    for (int rep = 0; rep < repeats; ++rep) {
      Optimizer optimizer(&rules, &w->catalog);
      prairie::common::Stopwatch sw;
      auto plan = optimizer.Optimize(*w->query);
      const double t = sw.ElapsedSeconds();
      if (!plan.ok()) {
        std::fprintf(stderr, "bench_ruleprofile: Q%d: %s\n", q,
                     plan.status().ToString().c_str());
        return 1;
      }
      if (untraced < 0 || t < untraced) untraced = t;
    }

    // Traced: same search into a private ring sink.
    double traced = -1;
    size_t events = 0;
    size_t dropped = 0;
    size_t trans_fired = 0;
    size_t profile_fired = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      RingBufferSink sink;
      OptimizerOptions options;
      options.trace = &sink;
      Optimizer optimizer(&rules, &w->catalog, options);
      prairie::common::Stopwatch sw;
      auto plan = optimizer.Optimize(*w->query);
      const double t = sw.ElapsedSeconds();
      if (!plan.ok()) {
        std::fprintf(stderr, "bench_ruleprofile: Q%d (traced): %s\n", q,
                     plan.status().ToString().c_str());
        return 1;
      }
      if (traced < 0 || t < traced) {
        traced = t;
        std::vector<prairie::common::TraceEvent> stream = sink.Snapshot();
        events = stream.size();
        dropped = sink.dropped();
        trans_fired = optimizer.stats().trans_fired;
        profile_fired =
            prairie::volcano::BuildRuleProfile(stream, rules, dropped)
                .TotalTransFired();
        if (rep == 0) {
          all_events.insert(all_events.end(), stream.begin(), stream.end());
          all_dropped += dropped;
        }
      }
    }
    if (dropped == 0 && profile_fired != trans_fired) {
      std::fprintf(stderr,
                   "bench_ruleprofile: Q%d: profile firings (%zu) != "
                   "stats.trans_fired (%zu)\n",
                   q, profile_fired, trans_fired);
      counts_match = false;
    }

    json.RecordRaw("Q" + std::to_string(q) + "/untraced", untraced * 1e6, "");
    char extra[160];
    std::snprintf(extra, sizeof(extra),
                  "\"events\":%zu,\"dropped\":%zu,\"trans_fired\":%zu", events,
                  dropped, trans_fired);
    json.RecordRaw("Q" + std::to_string(q) + "/traced", traced * 1e6, extra);
    std::printf("%6s %10.2fus %10.2fus %+9.1f%% %9zu %9zu\n",
                ("Q" + std::to_string(q)).c_str(), untraced * 1e6,
                traced * 1e6, 100.0 * (traced / untraced - 1.0), events,
                trans_fired);
    std::fflush(stdout);
  }

  prairie::volcano::RuleProfile profile =
      prairie::volcano::BuildRuleProfile(all_events, rules, all_dropped);
  std::printf("\naggregate rule profile (Q1..Q8, one traced run each):\n%s",
              profile.ToTable().c_str());

  if (!counts_match) {
    std::fprintf(stderr,
                 "bench_ruleprofile: FAILED — profile/stat firing counts "
                 "disagree\n");
    return 1;
  }
  return 0;
}

// Parameterized-plan-cache traffic benchmark (DESIGN.md §8).
//
// Drives Zipf-distributed parameter-varying traffic — a pool of
// Q1..Q8-family skeletons whose requests differ only in their selection
// constants, emitted by per-tenant streams — through BatchOptimizer at
// jobs = 1, 4, 8, twice per job count:
//   cold  — the first N requests against an empty parameterized cache:
//           every distinct skeleton pays one full search.
//   warm  — N fresh requests (fresh constants!) against the filled
//           cache: parameterized skeletons are answered by stripping
//           the probe's constants, matching the skeleton fingerprint,
//           and rebinding the constants into the cached physical plan.
// Reports wall time, warm hit rate, and warm p50/p99 per-query optimize
// latency sourced from the prairie_query_latency_ns metrics histogram.
//
// Correctness gates (exit non-zero on violation):
//   - warm hit rate >= 0.95: under Zipfian parameter-varying traffic the
//     exact-match cache would be near-useless (every request is a new
//     byte pattern), while the parameterized cache converges to one miss
//     per skeleton.
//   - every warm plan — rebound or not — is verified equivalent (cost +
//     rendered plan) to a fresh cache-less optimization of the same
//     request: rebinding must never produce a wrong plan.
//
// Environment knobs:
//   PRAIRIE_TRAFFIC_SKELETONS distinct skeletons in the pool   (def 16)
//   PRAIRIE_TRAFFIC_TENANTS   simulated tenants                (def 4)
//   PRAIRIE_TRAFFIC_JOINS     joins per skeleton               (def 2)
//   PRAIRIE_TRAFFIC_REQUESTS  requests per phase               (def 400)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "volcano/batch.h"
#include "volcano/plancache.h"
#include "workload/traffic.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::common::HistogramSnapshot;
using prairie::volcano::BatchOptimizer;
using prairie::volcano::BatchOptions;
using prairie::volcano::BatchQuery;
using prairie::volcano::BatchResult;
using prairie::volcano::PlanCacheStats;
using prairie::volcano::RuleSet;
using prairie::workload::TrafficGenerator;
using prairie::workload::TrafficOptions;
using prairie::workload::TrafficRequest;

std::vector<BatchQuery> Borrow(const std::vector<TrafficRequest>& requests) {
  std::vector<BatchQuery> queries;
  queries.reserve(requests.size());
  for (const TrafficRequest& r : requests) {
    queries.push_back(BatchQuery{r.query.get(), r.catalog});
  }
  return queries;
}

/// The histogram delta between two snapshots of one series — the warm
/// phase's own distribution, with the cold phase subtracted out.
HistogramSnapshot Delta(const HistogramSnapshot& before,
                        const HistogramSnapshot& after) {
  HistogramSnapshot d;
  for (size_t i = 0; i < d.counts.size(); ++i) {
    d.counts[i] = after.counts[i] - before.counts[i];
  }
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  return d;
}

}  // namespace

int main() {
  const int skeletons = EnvInt("PRAIRIE_TRAFFIC_SKELETONS", 16);
  const int tenants = EnvInt("PRAIRIE_TRAFFIC_TENANTS", 4);
  const int joins = EnvInt("PRAIRIE_TRAFFIC_JOINS", 2);
  const int requests = EnvInt("PRAIRIE_TRAFFIC_REQUESTS", 400);

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_traffic: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  std::printf(
      "parameterized cache under Zipfian traffic: %d requests/phase, "
      "%d skeletons (%d joins), %d tenants\n\n",
      requests, skeletons, joins, tenants);
  std::printf("%6s %6s %12s %10s %12s %12s  %s\n", "jobs", "phase", "wall",
              "hit rate", "p50/query", "p99/query", "plans");

  JsonWriter json("traffic");
  bool gates_ok = true;

  for (int jobs : {1, 4, 8}) {
    // A fresh generator per job count: the same seed replays the same
    // request sequence, so the three rows measure identical traffic.
    TrafficOptions topt;
    topt.num_skeletons = skeletons;
    topt.num_tenants = tenants;
    topt.num_joins = joins;
    auto gen = TrafficGenerator::Make(*rules.algebra, topt);
    if (!gen.ok()) {
      std::fprintf(stderr, "bench_traffic: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
    std::vector<TrafficRequest> cold_requests;
    cold_requests.reserve(static_cast<size_t>(requests));
    for (int i = 0; i < requests; ++i) cold_requests.push_back(gen->Next());
    std::vector<TrafficRequest> warm_requests;
    warm_requests.reserve(static_cast<size_t>(requests));
    for (int i = 0; i < requests; ++i) warm_requests.push_back(gen->Next());

    // Latency percentiles come from the metrics bundle the workers flush
    // into — a registry per job count keeps the rows independent.
    prairie::common::MetricsRegistry registry;
    prairie::volcano::VolcanoMetrics metrics =
        prairie::volcano::VolcanoMetrics::ForRuleSet(&registry, rules);

    BatchOptions options;
    options.jobs = jobs;
    options.optimizer.param_cache = true;
    options.optimizer.metrics = &metrics;
    // The entry budget is split per shard; generous headroom keeps skewed
    // shards from evicting the working set.
    options.plan_cache_entries =
        std::max<size_t>(4096, 32 * static_cast<size_t>(skeletons));
    BatchOptimizer batch(&rules, options);

    prairie::common::Stopwatch cold_sw;
    std::vector<BatchResult> cold = batch.OptimizeAll(Borrow(cold_requests));
    const double cold_wall = cold_sw.ElapsedSeconds();
    const PlanCacheStats cold_stats = batch.plan_cache()->stats();
    const HistogramSnapshot cold_snap = metrics.query_latency_ns->Snapshot();

    prairie::common::Stopwatch warm_sw;
    std::vector<BatchResult> warm = batch.OptimizeAll(Borrow(warm_requests));
    const double warm_wall = warm_sw.ElapsedSeconds();
    const PlanCacheStats warm_stats = batch.plan_cache()->stats();
    const HistogramSnapshot warm_snap =
        Delta(cold_snap, metrics.query_latency_ns->Snapshot());

    size_t cold_hits = 0;
    size_t warm_hits = 0;
    size_t warm_rebound = 0;
    size_t warm_rejected = 0;
    for (const BatchResult& r : cold) {
      if (!r.plan.ok()) {
        std::fprintf(stderr, "bench_traffic: jobs=%d cold request failed: %s\n",
                     jobs, r.plan.status().ToString().c_str());
        return 1;
      }
      if (r.stats.plan_from_cache) ++cold_hits;
    }
    for (const BatchResult& r : warm) {
      if (!r.plan.ok()) {
        std::fprintf(stderr, "bench_traffic: jobs=%d warm request failed: %s\n",
                     jobs, r.plan.status().ToString().c_str());
        return 1;
      }
      if (r.stats.plan_from_cache) ++warm_hits;
      warm_rebound += r.stats.cache_param_hits;
      warm_rejected += r.stats.cache_param_rejects;
    }
    const double n = static_cast<double>(requests);
    const double cold_rate = static_cast<double>(cold_hits) / n;
    const double warm_rate = static_cast<double>(warm_hits) / n;

    // Never-wrong-plans gate: every warm plan must match a fresh
    // cache-less optimization of the same request exactly.
    size_t mismatches = 0;
    for (size_t i = 0; i < warm.size(); ++i) {
      prairie::volcano::Optimizer fresh(&rules, warm_requests[i].catalog);
      auto expect = fresh.Optimize(*warm_requests[i].query);
      if (!expect.ok()) {
        std::fprintf(stderr, "bench_traffic: jobs=%d verify %zu failed: %s\n",
                     jobs, i, expect.status().ToString().c_str());
        return 1;
      }
      if (warm[i].plan->cost != expect->cost ||
          warm[i].plan->root->ToString(*rules.algebra) !=
              expect->root->ToString(*rules.algebra)) {
        ++mismatches;
      }
    }
    const bool identical = mismatches == 0;
    const bool rate_ok = warm_rate >= 0.95;
    if (!identical || !rate_ok) gates_ok = false;

    json.RecordRaw("jobs=" + std::to_string(jobs) + "/cold", cold_wall * 1e6,
                   "\"hit_rate\":" + std::to_string(cold_rate) +
                       ",\"p99_query_us\":" +
                       std::to_string(cold_snap.Percentile(99) / 1e3));
    json.RecordRaw(
        "jobs=" + std::to_string(jobs) + "/warm", warm_wall * 1e6,
        "\"hit_rate\":" + std::to_string(warm_rate) +
            ",\"p50_query_us\":" +
            std::to_string(warm_snap.Percentile(50) / 1e3) +
            ",\"p99_query_us\":" +
            std::to_string(warm_snap.Percentile(99) / 1e3) +
            ",\"rebound_hits\":" + std::to_string(warm_rebound) +
            ",\"guard_rejects\":" + std::to_string(warm_rejected) +
            ",\"skeleton_inserts\":" +
            std::to_string(warm_stats.param_inserts) +
            ",\"unrebindable_inserts\":" +
            std::to_string(warm_stats.unrebindable_inserts) +
            ",\"mismatches\":" + std::to_string(mismatches));
    std::printf("%6d %6s %10.2fms %9.1f%% %10.1fus %10.1fus  %s\n", jobs,
                "cold", cold_wall * 1e3, 100.0 * cold_rate,
                cold_snap.Percentile(50) / 1e3, cold_snap.Percentile(99) / 1e3,
                "fills the cache");
    std::printf("%6d %6s %10.2fms %9.1f%% %10.1fus %10.1fus  %s\n", jobs,
                "warm", warm_wall * 1e3, 100.0 * warm_rate,
                warm_snap.Percentile(50) / 1e3, warm_snap.Percentile(99) / 1e3,
                identical ? "verified identical" : "DIFFER");
    std::printf(
        "       %zu/%zu rebound, %zu guard rejects, %llu skeleton entries "
        "(%llu unrebindable), %zu live entries\n",
        warm_rebound, warm_hits, warm_rejected,
        static_cast<unsigned long long>(warm_stats.param_inserts),
        static_cast<unsigned long long>(warm_stats.unrebindable_inserts),
        batch.plan_cache()->size());
    (void)cold_stats;
    std::fflush(stdout);
  }

  std::printf(
      "\nExpectation: warm requests carry fresh constants, so the exact\n"
      "cache would miss almost every one; the parameterized cache strips\n"
      "the constants out of the key and serves >= 95%% of them by\n"
      "rebinding, at probe-plus-rebind latency far below a search.\n");
  if (!gates_ok) {
    std::fprintf(stderr,
                 "bench_traffic: FAILED — warm hit rate below 0.95 or a "
                 "rebound plan differed from fresh optimization\n");
    return 1;
  }
  return 0;
}

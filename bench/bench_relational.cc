// §4 recap of [Das & Batory 1993]: the centralized relational optimizer,
// specified in Prairie and generated through P2V, vs. the hand-coded
// Volcano optimizer. The paper reports a <5% optimization-time overhead
// for the generated optimizer.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  auto pair = prairie::bench::BuildRelationalPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  int max_joins = prairie::bench::EnvInt("PRAIRIE_MAX_JOINS", 8);
  prairie::bench::JsonWriter json("relational");
  prairie::bench::RunFigure(
      "Relational optimizer (Prairie vs. hand-coded Volcano), E1 queries",
      *pair, /*qa=*/1, /*qb=*/2, max_joins, /*per_point_budget_s=*/20.0, &json);
  return 0;
}

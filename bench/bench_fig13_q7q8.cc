// Figure 13: query optimization times for Q7 and Q8 (expression E4 — the
// most complex: SELECT over MAT-augmented N-way joins). The paper reached
// only 3-way joins before exhausting virtual memory.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  auto pair = prairie::bench::BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  int max_joins = prairie::bench::EnvInt("PRAIRIE_MAX_JOINS", 3);
  prairie::bench::JsonWriter json("fig13_q7q8");
  prairie::bench::RunFigure(
      "Figure 13: optimization time for Q7 / Q8 (E4, SELECT over E2)",
      *pair, /*qa=*/7, /*qb=*/8, max_joins, /*per_point_budget_s=*/20.0, &json);
  std::printf(
      "Paper shape check: the steepest growth of all four figures;\n"
      "Prairie ~= Volcano.\n");
  return 0;
}

// Multi-query optimizer throughput (the production-traffic axis the
// paper's single-query Figures 10-13 do not measure).
//
// Optimizes the Q1..Q8 OODB workload xK concurrently through
// BatchOptimizer at jobs = 1, 2, 4, 8 — one shared concurrent
// DescriptorStore, one immutable rule set, a private memo per query — and
// reports queries/second per job count plus the speedup over jobs=1.
// Every run is checked against the jobs=1 reference: per-query plans and
// costs must be identical, or the bench exits non-zero.
//
// Environment knobs:
//   PRAIRIE_THROUGHPUT_MULT    copies of the Q1..Q8 set per batch (def 4)
//   PRAIRIE_THROUGHPUT_JOINS   join count per query            (def 3)
//   PRAIRIE_THROUGHPUT_REPEATS timing repeats, best-of         (def 3)

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "volcano/batch.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::volcano::BatchOptimizer;
using prairie::volcano::BatchOptions;
using prairie::volcano::BatchQuery;
using prairie::volcano::BatchResult;
using prairie::volcano::RuleSet;

struct Reference {
  double cost = 0;
  std::string plan;
};

}  // namespace

int main() {
  const int mult = EnvInt("PRAIRIE_THROUGHPUT_MULT", 4);
  const int joins = EnvInt("PRAIRIE_THROUGHPUT_JOINS", 3);
  const int repeats = EnvInt("PRAIRIE_THROUGHPUT_REPEATS", 3);

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_throughput: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  // The workload: K copies of Q1..Q8, each copy under its own cardinality
  // seed (so copies are distinct optimization problems, like distinct
  // sessions hitting the optimizer with similar query shapes).
  std::vector<prairie::workload::Workload> workloads;
  workloads.reserve(static_cast<size_t>(8 * mult));
  for (int copy = 0; copy < mult; ++copy) {
    for (int q = 1; q <= 8; ++q) {
      prairie::workload::QuerySpec spec = prairie::workload::PaperQuery(
          q, joins, static_cast<uint64_t>(copy + 1));
      auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
      if (!w.ok()) {
        std::fprintf(stderr, "bench_throughput: Q%d: %s\n", q,
                     w.status().ToString().c_str());
        return 1;
      }
      workloads.push_back(std::move(*w));
    }
  }
  std::vector<BatchQuery> queries;
  queries.reserve(workloads.size());
  for (const auto& w : workloads) {
    queries.push_back(BatchQuery{w.query.get(), &w.catalog});
  }
  const size_t n = queries.size();

  std::printf("optimizer throughput: %zu queries (Q1..Q8 x%d, %d joins), "
              "best of %d runs\n\n",
              n, mult, joins, repeats);
  std::printf("%6s %12s %12s %9s %8s  %s\n", "jobs", "wall", "queries/s",
              "speedup", "intern%", "plans");

  JsonWriter json("throughput");
  std::vector<Reference> reference;
  double base_qps = 0;
  bool all_identical = true;

  for (int jobs : {1, 2, 4, 8}) {
    double best = -1;
    std::vector<BatchResult> results;
    double hit_rate = 0;
    size_t groups = 0;
    size_t mexprs = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      BatchOptions options;
      options.jobs = jobs;
      // Fresh batch (and store) per run: every run does identical work.
      BatchOptimizer batch(&rules, options);
      prairie::common::Stopwatch sw;
      std::vector<BatchResult> r = batch.OptimizeAll(queries);
      const double t = sw.ElapsedSeconds();
      if (best < 0 || t < best) {
        best = t;
        results = std::move(r);
        hit_rate = batch.shared_store()->HitRate();
        groups = 0;
        mexprs = 0;
        for (const BatchResult& br : results) {
          groups += br.stats.groups;
          mexprs += br.stats.mexprs;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!results[i].plan.ok()) {
        std::fprintf(stderr, "bench_throughput: jobs=%d query %zu: %s\n",
                     jobs, i, results[i].plan.status().ToString().c_str());
        return 1;
      }
    }
    bool identical = true;
    if (jobs == 1) {
      reference.resize(n);
      for (size_t i = 0; i < n; ++i) {
        reference[i].cost = results[i].plan->cost;
        reference[i].plan = results[i].plan->root->ToString(*rules.algebra);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (results[i].plan->cost != reference[i].cost ||
            results[i].plan->root->ToString(*rules.algebra) !=
                reference[i].plan) {
          identical = false;
          all_identical = false;
        }
      }
    }
    const double qps = static_cast<double>(n) / best;
    if (jobs == 1) base_qps = qps;
    json.Record("jobs=" + std::to_string(jobs), best * 1e6, groups, mexprs,
                hit_rate);
    std::printf("%6d %10.2fms %12.1f %8.2fx %7.1f%%  %s\n", jobs, best * 1e3,
                qps, qps / base_qps, 100.0 * hit_rate,
                jobs == 1 ? "reference" : (identical ? "identical" : "DIFFER"));
    std::fflush(stdout);
  }

  std::printf(
      "\nExpectation: queries/sec scales with jobs up to the core count\n"
      "(this host reports %u hardware threads); plans and costs must be\n"
      "byte-identical to the jobs=1 single-threaded reference.\n",
      std::thread::hardware_concurrency());
  if (!all_identical) {
    std::fprintf(stderr, "bench_throughput: FAILED — parallel plans differ "
                         "from the single-threaded reference\n");
    return 1;
  }
  return 0;
}

// Figure 12: query optimization times for Q5 and Q6 (expression E3 — a
// conjunctive SELECT over the N-way join), Prairie vs. Volcano. With
// indices on the selection attributes (Q6), index scans enter the plan
// space. The paper reached only 3-way joins here.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  auto pair = prairie::bench::BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  int max_joins = prairie::bench::EnvInt("PRAIRIE_MAX_JOINS", 4);
  prairie::bench::JsonWriter json("fig12_q5q6");
  prairie::bench::RunFigure(
      "Figure 12: optimization time for Q5 / Q6 (E3, SELECT over E1)",
      *pair, /*qa=*/5, /*qb=*/6, max_joins, /*per_point_budget_s=*/15.0, &json);
  std::printf(
      "Paper shape check: SELECT interactions blow up the search space\n"
      "(compare Figure 10); the index matters only for Q6 plan costs;\n"
      "Prairie ~= Volcano.\n");
  return 0;
}

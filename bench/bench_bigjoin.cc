// Intra-query parallel search on adversarial big-join graphs.
//
// Where bench_throughput parallelizes ACROSS queries (one memo per
// query), this bench parallelizes WITHIN one query: a single N-relation
// join optimized over one concurrent memo at --search-jobs = 1, 2, 4, 8.
// Three graph shapes stress different parts of the concurrent memo:
//
//   chain   the paper's linear graphs — long dependency spine
//   star    every join references the hub class — its group is on every
//           worker's critical path (lock and claim contention)
//   clique  every class pair predicated — maximal rule interplay and
//           cross-group merge traffic
//
// Every parallel run is checked against the jobs=1 serial reference: the
// final plan cost must be identical, or the bench exits non-zero. The
// parallel engine explores the full logical closure eagerly, so group /
// expression counts may exceed the demand-driven serial walk — the plan
// cost may not differ.
//
// Speedup over jobs=1 is reported but only enforced when
// PRAIRIE_BIGJOIN_REQUIRE_SPEEDUP=1 and the host has at least 4 hardware
// threads (CI containers are often single-core; a speedup gate there
// would measure the scheduler, not the optimizer).
//
// Environment knobs (the default size keeps the sweep short enough for
// shared single-core CI runners; on real hardware run the full
// experiment with PRAIRIE_BIGJOIN_RELATIONS=30):
//   PRAIRIE_BIGJOIN_RELATIONS        largest chain/star size   (def 10)
//   PRAIRIE_BIGJOIN_CLIQUE           clique size               (def 6)
//   PRAIRIE_BIGJOIN_REPEATS          timing repeats, best-of   (def 1)
//   PRAIRIE_BIGJOIN_REQUIRE_SPEEDUP  fail below 2x at jobs=4   (def 0)

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "volcano/engine.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::volcano::Optimizer;
using prairie::volcano::OptimizerOptions;
using prairie::volcano::RuleSet;
using prairie::workload::JoinShape;

const char* ShapeName(JoinShape s) {
  switch (s) {
    case JoinShape::kChain:
      return "chain";
    case JoinShape::kStar:
      return "star";
    case JoinShape::kClique:
      return "clique";
  }
  return "?";
}

}  // namespace

int main() {
  const int max_relations = EnvInt("PRAIRIE_BIGJOIN_RELATIONS", 10);
  const int clique_relations = EnvInt("PRAIRIE_BIGJOIN_CLIQUE", 6);
  const int repeats = EnvInt("PRAIRIE_BIGJOIN_REPEATS", 1);
  const bool require_speedup = EnvInt("PRAIRIE_BIGJOIN_REQUIRE_SPEEDUP", 0) != 0;
  const unsigned hw = std::thread::hardware_concurrency();

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_bigjoin: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  struct Point {
    JoinShape shape;
    int relations;
  };
  std::vector<Point> points;
  for (int n : {10, 20, 30}) {
    if (n > max_relations) continue;
    points.push_back({JoinShape::kChain, n});
    points.push_back({JoinShape::kStar, n});
  }
  points.push_back({JoinShape::kClique, clique_relations});

  std::printf("intra-query parallel search, %u hardware thread(s), "
              "best of %d run(s)\n\n",
              hw, repeats);
  std::printf("%8s %5s %5s %12s %9s %8s %8s  %s\n", "shape", "rels", "jobs",
              "wall", "speedup", "groups", "mexprs", "plan");

  JsonWriter json("bigjoin");
  bool all_identical = true;
  // Speedup of the largest chain point at jobs=4 (the acceptance number).
  double headline_speedup = 0;
  int headline_relations = 0;

  for (const Point& p : points) {
    prairie::workload::QuerySpec spec =
        prairie::workload::PaperQuery(1, p.relations - 1, /*seed=*/1);
    spec.shape = p.shape;
    auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
    if (!w.ok()) {
      std::fprintf(stderr, "bench_bigjoin: %s/%d: %s\n", ShapeName(p.shape),
                   p.relations, w.status().ToString().c_str());
      return 1;
    }

    double reference_cost = 0;
    double serial_wall = 0;
    for (int jobs : {1, 2, 4, 8}) {
      double best = -1;
      double cost = 0;
      size_t groups = 0;
      size_t mexprs = 0;
      for (int rep = 0; rep < repeats; ++rep) {
        OptimizerOptions options;
        options.search_jobs = jobs;
        Optimizer optimizer(&rules, &w->catalog, options);
        prairie::common::Stopwatch sw;
        auto plan = optimizer.Optimize(*w->query);
        const double t = sw.ElapsedSeconds();
        if (!plan.ok()) {
          std::fprintf(stderr, "bench_bigjoin: %s/%d jobs=%d: %s\n",
                       ShapeName(p.shape), p.relations, jobs,
                       plan.status().ToString().c_str());
          return 1;
        }
        if (best < 0 || t < best) {
          best = t;
          cost = plan->cost;
          groups = optimizer.stats().groups;
          mexprs = optimizer.stats().mexprs;
        }
      }
      bool identical = true;
      if (jobs == 1) {
        reference_cost = cost;
        serial_wall = best;
      } else if (cost != reference_cost) {
        identical = false;
        all_identical = false;
      }
      const double speedup = jobs == 1 ? 1.0 : serial_wall / best;
      if (p.shape == JoinShape::kChain && jobs == 4 &&
          p.relations >= headline_relations) {
        headline_relations = p.relations;
        headline_speedup = speedup;
      }
      const std::string family = std::string(ShapeName(p.shape)) + "/n" +
                                 std::to_string(p.relations) + "/jobs" +
                                 std::to_string(jobs);
      json.Record(family, best * 1e6, groups, mexprs, 0.0);
      std::printf("%8s %5d %5d %10.2fms %8.2fx %8zu %8zu  %s\n",
                  ShapeName(p.shape), p.relations, jobs, best * 1e3, speedup,
                  groups, mexprs,
                  jobs == 1 ? "reference"
                            : (identical ? "cost-identical" : "COST DIFFERS"));
      std::fflush(stdout);
    }
  }

  if (!all_identical) {
    std::fprintf(stderr, "bench_bigjoin: FAILED — a parallel plan's cost "
                         "differs from the serial reference\n");
    return 1;
  }
  if (require_speedup && hw >= 4) {
    if (headline_speedup < 2.0) {
      std::fprintf(stderr,
                   "bench_bigjoin: FAILED — jobs=4 speedup %.2fx < 2x on the "
                   "%d-relation chain\n",
                   headline_speedup, headline_relations);
      return 1;
    }
    std::printf("\njobs=4 speedup gate: %.2fx on the %d-relation chain (>= "
                "2x required) — OK\n",
                headline_speedup, headline_relations);
  } else {
    std::printf("\njobs=4 speedup on the %d-relation chain: %.2fx "
                "(informative; gate disabled%s)\n",
                headline_relations, headline_speedup,
                hw < 4 ? ": fewer than 4 hardware threads" : "");
  }
  return 0;
}

// Plan-cache cold-vs-warm benchmark (DESIGN.md §8).
//
// Optimizes the Q1..Q8 OODB workload xK through BatchOptimizer at
// jobs = 1, 4, 8, twice per job count:
//   cold  — plan cache disabled: every query runs the full search
//           (byte-identical to the pre-cache optimizer).
//   warm  — plan cache enabled and pre-warmed by one untimed round:
//           every query is answered by fingerprint probe alone.
// Reports wall time, per-query median latency, and the warm speedup
// (cold median / warm median — expected well above 10x: a warm hit is a
// tree walk plus one sharded map lookup, not a search). Warm plans are
// verified byte-identical (cost + rendered plan) against the jobs=1
// cache-disabled reference, or the bench exits non-zero.
//
// Environment knobs:
//   PRAIRIE_PLANCACHE_MULT    copies of the Q1..Q8 set per batch (def 4)
//   PRAIRIE_PLANCACHE_JOINS   join count per query              (def 3)
//   PRAIRIE_PLANCACHE_REPEATS timing repeats, best-of           (def 3)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "volcano/batch.h"
#include "volcano/plancache.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::volcano::BatchOptimizer;
using prairie::volcano::BatchOptions;
using prairie::volcano::BatchQuery;
using prairie::volcano::BatchResult;
using prairie::volcano::PlanCacheStats;
using prairie::volcano::RuleSet;

struct Reference {
  double cost = 0;
  std::string plan;
};

double MedianSeconds(const std::vector<BatchResult>& results) {
  std::vector<double> s;
  s.reserve(results.size());
  for (const BatchResult& r : results) s.push_back(r.seconds);
  std::sort(s.begin(), s.end());
  return s.empty() ? 0 : s[s.size() / 2];
}

}  // namespace

int main() {
  const int mult = EnvInt("PRAIRIE_PLANCACHE_MULT", 4);
  const int joins = EnvInt("PRAIRIE_PLANCACHE_JOINS", 3);
  const int repeats = EnvInt("PRAIRIE_PLANCACHE_REPEATS", 3);

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_plancache: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  // K copies of Q1..Q8, each copy under its own cardinality seed — the
  // same workload shape as bench_throughput, so figures are comparable.
  std::vector<prairie::workload::Workload> workloads;
  workloads.reserve(static_cast<size_t>(8 * mult));
  for (int copy = 0; copy < mult; ++copy) {
    for (int q = 1; q <= 8; ++q) {
      prairie::workload::QuerySpec spec = prairie::workload::PaperQuery(
          q, joins, static_cast<uint64_t>(copy + 1));
      auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
      if (!w.ok()) {
        std::fprintf(stderr, "bench_plancache: Q%d: %s\n", q,
                     w.status().ToString().c_str());
        return 1;
      }
      workloads.push_back(std::move(*w));
    }
  }
  std::vector<BatchQuery> queries;
  queries.reserve(workloads.size());
  for (const auto& w : workloads) {
    queries.push_back(BatchQuery{w.query.get(), &w.catalog});
  }
  const size_t n = queries.size();

  std::printf("plan cache cold vs warm: %zu queries (Q1..Q8 x%d, %d joins), "
              "best of %d runs\n\n",
              n, mult, joins, repeats);
  std::printf("%6s %6s %12s %14s %9s %10s  %s\n", "jobs", "mode", "wall",
              "median/query", "speedup", "hit rate", "plans");

  JsonWriter json("plancache");
  std::vector<Reference> reference;
  bool all_identical = true;

  for (int jobs : {1, 4, 8}) {
    // Cold: no cache, fresh batch (and store) per timing run.
    double cold_best = -1;
    double cold_median = 0;
    std::vector<BatchResult> cold_results;
    for (int rep = 0; rep < repeats; ++rep) {
      BatchOptions options;
      options.jobs = jobs;
      BatchOptimizer batch(&rules, options);
      prairie::common::Stopwatch sw;
      std::vector<BatchResult> r = batch.OptimizeAll(queries);
      const double t = sw.ElapsedSeconds();
      if (cold_best < 0 || t < cold_best) {
        cold_best = t;
        cold_median = MedianSeconds(r);
        cold_results = std::move(r);
      }
    }
    // Warm: one cache-enabled batch, one untimed round to fill the cache,
    // then timed rounds in which every probe hits.
    BatchOptions warm_options;
    warm_options.jobs = jobs;
    // The entry budget is split per shard, so leave generous headroom over
    // the working set — a tight budget would evict from skewed shards and
    // turn warm probes into misses.
    warm_options.plan_cache_entries = std::max<size_t>(4096, 32 * n);
    BatchOptimizer warm_batch(&rules, warm_options);
    (void)warm_batch.OptimizeAll(queries);
    double warm_best = -1;
    double warm_median = 0;
    std::vector<BatchResult> warm_results;
    for (int rep = 0; rep < repeats; ++rep) {
      prairie::common::Stopwatch sw;
      std::vector<BatchResult> r = warm_batch.OptimizeAll(queries);
      const double t = sw.ElapsedSeconds();
      if (warm_best < 0 || t < warm_best) {
        warm_best = t;
        warm_median = MedianSeconds(r);
        warm_results = std::move(r);
      }
    }
    const PlanCacheStats cs = warm_batch.plan_cache()->stats();
    const double hit_rate =
        cs.probes == 0
            ? 0
            : static_cast<double>(cs.hits) / static_cast<double>(cs.probes);

    for (size_t i = 0; i < n; ++i) {
      if (!cold_results[i].plan.ok() || !warm_results[i].plan.ok()) {
        std::fprintf(stderr, "bench_plancache: jobs=%d query %zu failed\n",
                     jobs, i);
        return 1;
      }
    }
    // Byte-identity: the warm (and parallel cold) plans must match the
    // jobs=1 cache-disabled reference exactly.
    if (jobs == 1) {
      reference.resize(n);
      for (size_t i = 0; i < n; ++i) {
        reference[i].cost = cold_results[i].plan->cost;
        reference[i].plan =
            cold_results[i].plan->root->ToString(*rules.algebra);
      }
    }
    bool identical = true;
    for (size_t i = 0; i < n; ++i) {
      if (warm_results[i].plan->cost != reference[i].cost ||
          warm_results[i].plan->root->ToString(*rules.algebra) !=
              reference[i].plan) {
        identical = false;
        all_identical = false;
      }
    }

    const double speedup = warm_median > 0 ? cold_median / warm_median : 0;
    json.RecordRaw(
        "jobs=" + std::to_string(jobs) + "/cold", cold_best * 1e6,
        "\"median_query_us\":" + std::to_string(cold_median * 1e6));
    json.RecordRaw(
        "jobs=" + std::to_string(jobs) + "/warm", warm_best * 1e6,
        "\"median_query_us\":" + std::to_string(warm_median * 1e6) +
            ",\"median_speedup\":" + std::to_string(speedup) +
            ",\"hits\":" + std::to_string(cs.hits) +
            ",\"misses\":" + std::to_string(cs.misses) +
            ",\"stale_drops\":" + std::to_string(cs.stale_drops));
    std::printf("%6d %6s %10.2fms %12.2fus %9s %9.1f%%  %s\n", jobs, "cold",
                cold_best * 1e3, cold_median * 1e6, "", 0.0, "reference");
    std::printf("%6d %6s %10.2fms %12.2fus %8.1fx %9.1f%%  %s\n", jobs,
                "warm", warm_best * 1e3, warm_median * 1e6, speedup,
                100.0 * hit_rate,
                identical ? "identical" : "DIFFER");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpectation: a warm probe is a fingerprint walk plus one sharded\n"
      "lookup, so the warm median sits >10x below the cold median at every\n"
      "job count, and warm plans are byte-identical to the cache-disabled\n"
      "single-threaded reference.\n");
  if (!all_identical) {
    std::fprintf(stderr, "bench_plancache: FAILED — warm plans differ from "
                         "the cache-disabled reference\n");
    return 1;
  }
  return 0;
}

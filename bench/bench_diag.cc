// Armed-but-untriggered diagnostics overhead over the Q1..Q8 OODB
// workload: what does serving-grade observability cost when nothing is
// wrong?
//
// The serving posture (volcano/diag.h) keeps a coarse flight-recorder
// RingBufferSink attached to every optimizer and calls DiagService::Check
// after every query. Bundles, slow-log lines, and trace slices are
// trigger-only, so the steady-state price is exactly: coarse trace
// emission (group spans + winner instants; per-attempt spans take no
// clock reads at TraceDetail::kCoarse) plus one allocation-free Check.
// This bench measures that price and gates it.
//
// Methodology mirrors bench_exec_observe: each query runs as interleaved
// back-to-back pairs — plain (no sink, no diag) then armed (coarse
// flight recorder + Check with all thresholds set unreachable) — so each
// pair's time ratio cancels host load and frequency drift; the gate
// holds the MEDIAN ratio pooled over all timed pairs.
//
// Self-checks (exit non-zero on failure):
//   - the armed plan's cost is identical to the plain plan's cost
//     (diagnostics must not perturb the search),
//   - Check() never fires (this bench measures the untriggered path;
//     a firing trigger means the thresholds leaked),
//   - under PRAIRIE_TRACING the flight recorder actually recorded events
//     (an empty ring would mean the bench measured nothing),
//   - the pooled median armed/plain overhead is
//     <= PRAIRIE_DIAG_OVERHEAD_TOL percent (default 2%).
//
// Environment knobs:
//   PRAIRIE_DIAG_JOINS         join count per query        (def 2)
//   PRAIRIE_DIAG_REPEATS       timed pairs per query       (def 9)
//   PRAIRIE_DIAG_OVERHEAD_TOL  overhead gate, percent      (def 2)
//   PRAIRIE_DIAG_RING          flight-recorder capacity    (def 4096)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "volcano/diag.h"
#include "volcano/engine.h"
#include "workload/workload.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::volcano::DiagOptions;
using prairie::volcano::DiagService;
using prairie::volcano::DiagTrigger;
using prairie::volcano::Optimizer;
using prairie::volcano::OptimizerOptions;
using prairie::volcano::RuleSet;

}  // namespace

int main() {
  const int joins = EnvInt("PRAIRIE_DIAG_JOINS", 2);
  const int repeats = EnvInt("PRAIRIE_DIAG_REPEATS", 13);
  const int tol_pct = EnvInt("PRAIRIE_DIAG_OVERHEAD_TOL", 2);
  const int ring = EnvInt("PRAIRIE_DIAG_RING", 4096);

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_diag: %s\n", pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  // The armed configuration of a real serving loop: every trigger
  // configured (so Check() walks its full evaluation order, including the
  // periodic cached-p99 refresh against a populated histogram) but with
  // thresholds no healthy query can cross.
  prairie::common::Histogram latency_hist;
  for (int i = 0; i < 512; ++i) {
    latency_hist.Observe(1'000'000);  // 1ms baseline "history".
  }
  DiagOptions dopt;
  dopt.slow_ms = 1e12;
  dopt.adaptive_k = 1e9;
  dopt.adaptive_min_count = 1;
  dopt.latency_hist = &latency_hist;
  dopt.qerror_limit = 1e12;
  dopt.on_budget_exhausted = true;
  dopt.cache_storm_threshold = 0;
  DiagService diag(dopt);

  std::printf(
      "diagnostics armed-untriggered overhead: Q1..Q8, %d joins, ring %d, "
      "best of %d runs, gate: median <= %d%%\n\n",
      joins, ring, repeats, tol_pct);
  std::printf("%6s %12s %12s %10s\n", "query", "plain", "armed", "overhead");

  JsonWriter json("diag");
  std::vector<double> all_ratios;
  size_t recorded_events = 0;
  bool ok = true;

  for (int q = 1; q <= 8; ++q) {
    prairie::workload::QuerySpec spec =
        prairie::workload::PaperQuery(q, joins, 1);
    auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
    if (!w.ok()) {
      std::fprintf(stderr, "bench_diag: Q%d: %s\n", q,
                   w.status().ToString().c_str());
      return 1;
    }

    prairie::common::RingBufferSink sink(static_cast<size_t>(ring));
    OptimizerOptions plain_opt;
    OptimizerOptions armed_opt;
    armed_opt.trace = &sink;
    armed_opt.trace_detail = prairie::common::TraceDetail::kCoarse;

    // Interleave the two configurations rep by rep (plain, armed, plain,
    // ...) so warmup, allocator state, and frequency drift hit both sides
    // equally. The first pair is warmup (not timed) and sizes an inner
    // loop that keeps every timed region above ~4ms — a little longer
    // than bench_exec_observe because the expected effect (~1%) is half
    // that bench's, so the timer noise floor must be lower.
    double plain = -1;
    double armed = -1;
    double plain_cost = 0;
    double armed_cost = 0;
    int inner = 1;
    std::vector<double> ratios;  ///< armed/plain per timed rep.
    for (int rep = 0; rep <= repeats; ++rep) {
      prairie::common::Stopwatch sw;
      for (int i = 0; i < inner; ++i) {
        Optimizer optimizer(&rules, &w->catalog, plain_opt);
        auto p = optimizer.Optimize(*w->query);
        if (!p.ok()) {
          std::fprintf(stderr, "bench_diag: Q%d: %s\n", q,
                       p.status().ToString().c_str());
          return 1;
        }
        plain_cost = p->cost;
      }
      const double t = sw.ElapsedSeconds() / inner;
      if (rep > 0 && (plain < 0 || t < plain)) plain = t;
      if (rep == 0)
        inner = static_cast<int>(
            std::clamp(0.004 / std::max(t, 1e-9), 1.0, 64.0));

      prairie::common::Stopwatch sw2;
      for (int i = 0; i < inner; ++i) {
        Optimizer optimizer(&rules, &w->catalog, armed_opt);
        prairie::common::Stopwatch qsw;
        auto p = optimizer.Optimize(*w->query);
        if (!p.ok()) {
          std::fprintf(stderr, "bench_diag: Q%d (armed): %s\n", q,
                       p.status().ToString().c_str());
          return 1;
        }
        armed_cost = p->cost;
        const DiagTrigger trig = diag.Check(qsw.ElapsedSeconds() * 1e3,
                                            optimizer.stats(),
                                            /*max_qerror=*/1.0);
        if (trig != DiagTrigger::kNone) {
          std::fprintf(stderr,
                       "bench_diag: FAILED — Q%d fired trigger '%s'; this "
                       "bench measures the untriggered path\n",
                       q, prairie::volcano::DiagTriggerName(trig));
          ok = false;
        }
      }
      const double t2 = sw2.ElapsedSeconds() / inner;
      if (rep > 0) {
        if (armed < 0 || t2 < armed) armed = t2;
        ratios.push_back(t2 / t);
      }
    }

    if (armed_cost != plain_cost) {
      std::fprintf(stderr,
                   "bench_diag: FAILED — Q%d armed cost %.6f != plain cost "
                   "%.6f (diagnostics perturbed the search)\n",
                   q, armed_cost, plain_cost);
      ok = false;
    }
    recorded_events += sink.total_emitted();

    // Per-pair ratios cancel instantaneous host conditions; the per-query
    // overhead is their median (best-of minima taken independently read
    // as phantom overhead on busy hosts).
    all_ratios.insert(all_ratios.end(), ratios.begin(), ratios.end());
    std::sort(ratios.begin(), ratios.end());
    const double overhead_pct = 100.0 * (ratios[ratios.size() / 2] - 1.0);
    json.RecordRaw("Q" + std::to_string(q) + "/plain", plain * 1e6, "");
    char extra[96];
    std::snprintf(extra, sizeof(extra), "\"overhead_pct\":%.2f",
                  overhead_pct);
    json.RecordRaw("Q" + std::to_string(q) + "/armed", armed * 1e6, extra);
    std::printf("%6s %10.2fus %10.2fus %+9.1f%%\n",
                ("Q" + std::to_string(q)).c_str(), plain * 1e6, armed * 1e6,
                overhead_pct);
    std::fflush(stdout);
  }

#if PRAIRIE_TRACING
  if (recorded_events == 0) {
    std::fprintf(stderr,
                 "bench_diag: FAILED — flight recorder captured no events; "
                 "the armed side measured nothing\n");
    ok = false;
  }
#endif

  // Gate on the median over ALL interleaved pairs (8 queries x repeats
  // samples): per-query medians of a handful of ratios wander a few
  // percent under host load; the pooled median is stable.
  std::sort(all_ratios.begin(), all_ratios.end());
  const double median = 100.0 * (all_ratios[all_ratios.size() / 2] - 1.0);
  std::printf(
      "\nmedian overhead: %+.2f%% (over %zu timed pairs, %zu flight-recorder "
      "events)\n",
      median, all_ratios.size(), recorded_events);

  if (median > static_cast<double>(tol_pct)) {
    std::fprintf(stderr,
                 "bench_diag: FAILED — median overhead %.2f%% exceeds %d%% "
                 "budget\n",
                 median, tol_pct);
    ok = false;
  }
  return ok ? 0 : 1;
}

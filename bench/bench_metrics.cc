// Metrics overhead over the Q1..Q8 OODB workload (observability layer):
// what does the aggregate metrics bundle cost on the optimization path?
//
// Each query is optimized twice — plain (no metrics bundle: the production
// default) and metered (a VolcanoMetrics bundle over a private registry
// wired into OptimizerOptions) — best-of-N timings per configuration. The
// design goal is near-zero overhead: counters are flushed once per query
// as deltas and per-rule latencies are sampled 1-in-16 through the spans
// the tracer already owns, so the gate below holds the MEDIAN overhead
// across queries to a small budget.
//
// Self-checks (exit non-zero on failure):
//   - median metered/plain overhead <= PRAIRIE_METRICS_OVERHEAD_TOL percent
//     (default 2%; micro-benchmark noise makes per-query maxima useless,
//     the median is stable),
//   - the bundle's counters must agree with the engine's own stats
//     (queries, trans attempts/firings, plans costed) summed over the
//     metered runs — the flush path must not lose or double-count.
//
// Environment knobs:
//   PRAIRIE_METRICS_JOINS         join count per query  (def 3)
//   PRAIRIE_METRICS_REPEATS       timing repeats, best-of  (def 3)
//   PRAIRIE_METRICS_OVERHEAD_TOL  overhead gate, percent  (def 2)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/stopwatch.h"

namespace {

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;
using prairie::bench::JsonWriter;
using prairie::common::MetricsRegistry;
using prairie::volcano::Optimizer;
using prairie::volcano::OptimizerOptions;
using prairie::volcano::RuleSet;
using prairie::volcano::VolcanoMetrics;

}  // namespace

int main() {
  const int joins = EnvInt("PRAIRIE_METRICS_JOINS", 3);
  const int repeats = EnvInt("PRAIRIE_METRICS_REPEATS", 3);
  const int tol_pct = EnvInt("PRAIRIE_METRICS_OVERHEAD_TOL", 2);

  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "bench_metrics: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const RuleSet& rules = *pair->emitted;

  // Private registry: the bench gates on its own counters, so the series
  // must start at zero regardless of what else ran in this process.
  MetricsRegistry registry;
  VolcanoMetrics metrics = VolcanoMetrics::ForRuleSet(&registry, rules);

  std::printf(
      "metrics overhead: Q1..Q8, %d joins, best of %d runs, gate: median "
      "<= %d%%\n\n",
      joins, repeats, tol_pct);
  std::printf("%6s %12s %12s %10s\n", "query", "plain", "metered",
              "overhead");

  JsonWriter json("metrics");
  std::vector<double> overheads;
  uint64_t want_queries = 0;
  size_t want_trans_attempts = 0;
  size_t want_trans_fired = 0;
  size_t want_plans_costed = 0;

  for (int q = 1; q <= 8; ++q) {
    prairie::workload::QuerySpec spec =
        prairie::workload::PaperQuery(q, joins, 1);
    auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
    if (!w.ok()) {
      std::fprintf(stderr, "bench_metrics: Q%d: %s\n", q,
                   w.status().ToString().c_str());
      return 1;
    }

    // Plain: the production default (no bundle; one null check per site).
    double plain = -1;
    for (int rep = 0; rep < repeats; ++rep) {
      Optimizer optimizer(&rules, &w->catalog);
      prairie::common::Stopwatch sw;
      auto plan = optimizer.Optimize(*w->query);
      const double t = sw.ElapsedSeconds();
      if (!plan.ok()) {
        std::fprintf(stderr, "bench_metrics: Q%d: %s\n", q,
                     plan.status().ToString().c_str());
        return 1;
      }
      if (plain < 0 || t < plain) plain = t;
    }

    // Metered: same search flushing into the shared bundle.
    double metered = -1;
    for (int rep = 0; rep < repeats; ++rep) {
      OptimizerOptions options;
      options.metrics = &metrics;
      Optimizer optimizer(&rules, &w->catalog, options);
      prairie::common::Stopwatch sw;
      auto plan = optimizer.Optimize(*w->query);
      const double t = sw.ElapsedSeconds();
      if (!plan.ok()) {
        std::fprintf(stderr, "bench_metrics: Q%d (metered): %s\n", q,
                     plan.status().ToString().c_str());
        return 1;
      }
      if (metered < 0 || t < metered) metered = t;
      ++want_queries;
      want_trans_attempts += optimizer.stats().trans_attempts;
      want_trans_fired += optimizer.stats().trans_fired;
      want_plans_costed += optimizer.stats().plans_costed;
    }

    const double overhead_pct = 100.0 * (metered / plain - 1.0);
    overheads.push_back(overhead_pct);
    json.RecordRaw("Q" + std::to_string(q) + "/plain", plain * 1e6, "");
    char extra[96];
    std::snprintf(extra, sizeof(extra), "\"overhead_pct\":%.2f",
                  overhead_pct);
    json.RecordRaw("Q" + std::to_string(q) + "/metered", metered * 1e6,
                   extra);
    std::printf("%6s %10.2fus %10.2fus %+9.1f%%\n",
                ("Q" + std::to_string(q)).c_str(), plain * 1e6, metered * 1e6,
                overhead_pct);
    std::fflush(stdout);
  }

  std::sort(overheads.begin(), overheads.end());
  const double median =
      (overheads[3] + overheads[4]) / 2.0;  // 8 queries, fixed
  std::printf("\nmedian overhead: %+.2f%% (%zu series registered)\n", median,
              registry.NumSeries());

  bool ok = true;
#if PRAIRIE_METRICS
  // Counter / stats agreement over all metered runs.
  struct Check {
    const char* name;
    uint64_t got;
    uint64_t want;
  };
  const Check checks[] = {
      {"queries", metrics.queries->Value(), want_queries},
      {"trans_attempts", metrics.trans_attempts->Value(),
       want_trans_attempts},
      {"trans_fired", metrics.trans_fired->Value(), want_trans_fired},
      {"plans_costed", metrics.plans_costed->Value(), want_plans_costed},
  };
  for (const Check& c : checks) {
    if (c.got != c.want) {
      std::fprintf(stderr,
                   "bench_metrics: FAILED — counter %s is %llu, engine "
                   "stats sum to %llu\n",
                   c.name, static_cast<unsigned long long>(c.got),
                   static_cast<unsigned long long>(c.want));
      ok = false;
    }
  }
#endif
  if (median > static_cast<double>(tol_pct)) {
    std::fprintf(stderr,
                 "bench_metrics: FAILED — median overhead %.2f%% exceeds "
                 "%d%% budget\n",
                 median, tol_pct);
    ok = false;
  }
  return ok ? 0 : 1;
}

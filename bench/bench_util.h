// Shared harness for the experiment benchmarks (paper §4.3).
//
// Each figure bench optimizes the paper's queries with both optimizers —
// the P2V-generated one (from the Prairie DSL specification) and the
// hand-coded Volcano one — averaging per-query optimization time over 5
// cardinality seeds per point, exactly like the paper's methodology.

#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"
#include "volcano/engine.h"
#include "workload/workload.h"

namespace prairie::bench {

/// \brief The optimizers of the comparison: the Prairie specification in
/// its two generated deployments (interpreted rule actions, and compiled
/// C++ emitted by p2v_emit at build time) against the hand-coded Volcano
/// baseline.
struct OptimizerPair {
  std::shared_ptr<volcano::RuleSet> generated;  ///< Prairie -> P2V, interpreted.
  std::shared_ptr<volcano::RuleSet> emitted;    ///< Prairie -> P2V -> C++.
  std::shared_ptr<volcano::RuleSet> hand;       ///< Hand-coded Volcano.
};

/// Builds the OODB pair (used by Figures 10-13, Table 5).
common::Result<OptimizerPair> BuildOodbPair();

/// Builds the relational pair (used by the §4 recap bench).
common::Result<OptimizerPair> BuildRelationalPair();

/// \brief One measured point.
struct Measurement {
  double seconds = 0;      ///< Mean per-query optimization time.
  double cost = 0;         ///< Plan cost of the last instance.
  size_t groups = 0;       ///< Equivalence classes (last instance).
  size_t mexprs = 0;       ///< Logical multi-expressions (last instance).
  double intern_hit_rate = 0;  ///< Descriptor-interning hit rate.
  size_t trans_matched = 0;
  size_t impl_matched = 0;
  common::Status status;   ///< Non-OK if any instance failed.

  bool ok() const { return status.ok(); }
};

/// \brief Machine-readable result log: one JSON object per line, written
/// to BENCH_<name>.json in the working directory, so the perf trajectory
/// of every bench is tracked across PRs.
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& bench_name);
  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// Appends one record. `family` identifies the measured configuration
  /// (query, join count, deployment), e.g. "Q3/n2/emitted".
  void Record(const std::string& family, double wall_us, size_t groups,
              size_t mexprs, double intern_hit_rate);

  /// Convenience: records a Measurement.
  void Record(const std::string& family, const Measurement& m) {
    Record(family, m.seconds * 1e6, m.groups, m.mexprs, m.intern_hit_rate);
  }

  /// Appends one record with bench-specific fields: `extra_json` is a
  /// comma-separated list of already-encoded "key":value pairs appended
  /// after the mandatory bench/family/wall_us fields (may be empty).
  /// Callers embedding free-form strings in `extra_json` must encode them
  /// with common::JsonEscape; the mandatory fields are escaped here.
  void RecordRaw(const std::string& family, double wall_us,
                 const std::string& extra_json);

 private:
  std::FILE* f_ = nullptr;
  std::string bench_;
};

/// Optimizes query `qnum` (paper numbering Q1..Q8) at `num_joins`,
/// averaging over `num_seeds` cardinality seeds. `repeats` re-optimizes
/// each instance to stabilize sub-millisecond timings (the paper looped
/// 3000x for the same reason).
Measurement MeasureQuery(const volcano::RuleSet& rules, int qnum,
                         int num_joins, int num_seeds = 5, int repeats = 1);

/// Prints one figure: per-N mean optimization times for two queries under
/// both optimizers, in a paper-style table. Points whose previous N
/// exceeded `per_point_budget_s` are skipped (mirrors the paper stopping
/// when virtual memory was exhausted). When `json` is non-null, every
/// measured point is also recorded there.
void RunFigure(const std::string& title, const OptimizerPair& pair, int qa,
               int qb, int max_joins, double per_point_budget_s,
               JsonWriter* json = nullptr);

/// Reads a positive integer override from the environment (for extending
/// sweeps), else returns `def`.
int EnvInt(const char* name, int def);

}  // namespace prairie::bench

// Figure 14: number of equivalence classes vs. number of joins for the
// four expression templates E1..E4. The counts are a property of the
// logical search space, so they are identical for the Prairie-generated
// and hand-coded optimizers (the paper makes the same remark).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/stopwatch.h"

using prairie::bench::BuildOodbPair;
using prairie::bench::EnvInt;

int main() {
  auto pair = BuildOodbPair();
  if (!pair.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 pair.status().ToString().c_str());
    return 1;
  }
  const auto& rules = *pair->generated;

  int max_per_expr[5] = {0, EnvInt("PRAIRIE_MAX_JOINS_E1", 8),
                         EnvInt("PRAIRIE_MAX_JOINS_E2", 6),
                         EnvInt("PRAIRIE_MAX_JOINS_E3", 4),
                         EnvInt("PRAIRIE_MAX_JOINS_E4", 3)};
  std::printf(
      "Figure 14: equivalence classes vs. number of joins (E1..E4)\n\n");
  std::printf("%7s | %10s %10s %10s %10s\n", "#joins", "E1", "E2", "E3",
              "E4");
  std::printf("%s\n", std::string(55, '-').c_str());
  int max_n = 0;
  for (int e = 1; e <= 4; ++e) max_n = std::max(max_n, max_per_expr[e]);
  prairie::bench::JsonWriter json("fig14_eqclasses");
  for (int n = 1; n <= max_n; ++n) {
    std::printf("%7d |", n);
    for (int e = 1; e <= 4; ++e) {
      if (n > max_per_expr[e]) {
        std::printf(" %10s", "-");
        continue;
      }
      prairie::workload::QuerySpec spec;
      spec.expr = static_cast<prairie::workload::ExprKind>(e);
      spec.num_joins = n;
      spec.seed = 1;
      auto w = prairie::workload::MakeWorkload(*rules.algebra, spec);
      if (!w.ok()) {
        std::printf(" %10s", "err");
        continue;
      }
      prairie::volcano::Optimizer optimizer(&rules, &w->catalog);
      prairie::common::Stopwatch sw;
      auto groups = optimizer.ExpandOnly(*w->query);
      double wall_us = sw.ElapsedSeconds() * 1e6;
      if (!groups.ok()) {
        std::printf(" %10s", "exhausted");
        max_per_expr[e] = 0;
        continue;
      }
      json.Record("E" + std::to_string(e) + "/n" + std::to_string(n),
                  wall_us, *groups, optimizer.stats().mexprs,
                  optimizer.stats().InternHitRate());
      std::printf(" %10zu", *groups);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape check: growth rate increases with expression\n"
      "complexity; SELECT (E3/E4) interacts with many operators and\n"
      "dramatically enlarges the space, which is why the paper's E3/E4\n"
      "sweeps stop at 3-way joins.\n");
  return 0;
}

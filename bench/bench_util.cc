#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "optimizers/oodb.h"
#include "optimizers/props.h"
#include "optimizers/relational.h"
#include "optimizers/volcano_hand.h"
#include "p2v/translator.h"

// Factories from the build-time generated translation units.
namespace prairie_generated {
prairie::common::Result<std::shared_ptr<prairie::volcano::RuleSet>>
BuildRelationalEmitted(std::shared_ptr<prairie::core::HelperRegistry>);
prairie::common::Result<std::shared_ptr<prairie::volcano::RuleSet>>
BuildOodbEmitted(std::shared_ptr<prairie::core::HelperRegistry>);
}  // namespace prairie_generated

namespace prairie::bench {

using common::Result;
using common::Status;

Result<OptimizerPair> BuildOodbPair() {
  OptimizerPair pair;
  PRAIRIE_ASSIGN_OR_RETURN(core::RuleSet prairie_rules,
                           opt::BuildOodbPrairie());
  PRAIRIE_ASSIGN_OR_RETURN(pair.generated,
                           p2v::Translate(prairie_rules, nullptr));
  PRAIRIE_ASSIGN_OR_RETURN(
      pair.emitted,
      prairie_generated::BuildOodbEmitted(opt::StandardHelpers()));
  PRAIRIE_ASSIGN_OR_RETURN(pair.hand, opt::BuildOodbVolcano());
  return pair;
}

Result<OptimizerPair> BuildRelationalPair() {
  OptimizerPair pair;
  PRAIRIE_ASSIGN_OR_RETURN(core::RuleSet prairie_rules,
                           opt::BuildRelationalPrairie());
  PRAIRIE_ASSIGN_OR_RETURN(pair.generated,
                           p2v::Translate(prairie_rules, nullptr));
  PRAIRIE_ASSIGN_OR_RETURN(
      pair.emitted,
      prairie_generated::BuildRelationalEmitted(opt::StandardHelpers()));
  PRAIRIE_ASSIGN_OR_RETURN(pair.hand, opt::BuildRelationalVolcano());
  return pair;
}

JsonWriter::JsonWriter(const std::string& bench_name) : bench_(bench_name) {
  const std::string path = "BENCH_" + bench_name + ".json";
  f_ = std::fopen(path.c_str(), "w");
  if (f_ == nullptr) {
    std::fprintf(stderr, "warning: cannot open %s for writing\n",
                 path.c_str());
  }
}

JsonWriter::~JsonWriter() {
  if (f_ != nullptr) std::fclose(f_);
}

void JsonWriter::Record(const std::string& family, double wall_us,
                        size_t groups, size_t mexprs,
                        double intern_hit_rate) {
  if (f_ == nullptr) return;
  std::fprintf(f_,
               "{\"bench\":\"%s\",\"family\":\"%s\",\"wall_us\":%.3f,"
               "\"groups\":%zu,\"mexprs\":%zu,\"intern_hit_rate\":%.4f}\n",
               common::JsonEscape(bench_).c_str(),
               common::JsonEscape(family).c_str(), wall_us, groups, mexprs,
               intern_hit_rate);
  std::fflush(f_);
}

void JsonWriter::RecordRaw(const std::string& family, double wall_us,
                           const std::string& extra_json) {
  if (f_ == nullptr) return;
  std::fprintf(f_, "{\"bench\":\"%s\",\"family\":\"%s\",\"wall_us\":%.3f%s%s}\n",
               common::JsonEscape(bench_).c_str(),
               common::JsonEscape(family).c_str(), wall_us,
               extra_json.empty() ? "" : ",", extra_json.c_str());
  std::fflush(f_);
}

Measurement MeasureQuery(const volcano::RuleSet& rules, int qnum,
                         int num_joins, int num_seeds, int repeats) {
  Measurement m;
  double total = 0;
  int points = 0;
  for (int seed = 1; seed <= num_seeds; ++seed) {
    workload::QuerySpec spec =
        workload::PaperQuery(qnum, num_joins, static_cast<uint64_t>(seed));
    auto w = workload::MakeWorkload(*rules.algebra, spec);
    if (!w.ok()) {
      m.status = w.status();
      return m;
    }
    // Per instance: minimum over repeats (robust against scheduler
    // noise); across instances: the mean, as in the paper.
    double best = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      common::Stopwatch sw;
      volcano::Optimizer optimizer(&rules, &w->catalog);
      auto plan = optimizer.Optimize(*w->query);
      double t = sw.ElapsedSeconds();
      if (rep == 0 || t < best) best = t;
      if (!plan.ok()) {
        m.status = plan.status();
        return m;
      }
      m.cost = plan->cost;
      m.groups = optimizer.stats().groups;
      m.mexprs = optimizer.stats().mexprs;
      m.intern_hit_rate = optimizer.stats().InternHitRate();
      m.trans_matched = optimizer.stats().NumTransMatched();
      m.impl_matched = optimizer.stats().NumImplMatched();
    }
    total += best;
    ++points;
  }
  m.seconds = total / points;
  return m;
}

void RunFigure(const std::string& title, const OptimizerPair& pair, int qa,
               int qb, int max_joins, double per_point_budget_s,
               JsonWriter* json) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "(mean per-query optimization time over 5 cardinality seeds;\n"
      " 'interp' = P2V with interpreted actions, 'emitted' = P2V-generated\n"
      " C++ compiled at build time, 'hand' = hand-coded Volcano)\n\n");
  std::printf("%7s |", "#joins");
  for (int q : {qa, qb}) {
    std::printf(" %11s %11s %11s %7s |",
                ("Q" + std::to_string(q) + " interp").c_str(), "emitted",
                "hand", "em/hand");
  }
  std::printf("\n%s\n", std::string(103, '-').c_str());
  bool a_alive = true;
  bool b_alive = true;
  for (int n = 1; n <= max_joins && (a_alive || b_alive); ++n) {
    std::printf("%7d |", n);
    for (int q : {qa, qb}) {
      bool& alive = (q == qa) ? a_alive : b_alive;
      if (!alive) {
        std::printf(" %11s %11s %11s %7s |", "-", "-", "-", "-");
        continue;
      }
      Measurement probe = MeasureQuery(*pair.generated, q, n, 1, 1);
      int repeats = probe.ok() && probe.seconds > 0
                        ? static_cast<int>(0.02 / probe.seconds)
                        : 1;
      if (probe.ok() && probe.seconds < 0.25) repeats = std::max(repeats, 3);
      if (repeats < 1) repeats = 1;
      if (repeats > 200) repeats = 200;
      Measurement mi = MeasureQuery(*pair.generated, q, n, 5, repeats);
      Measurement me = MeasureQuery(*pair.emitted, q, n, 5, repeats);
      Measurement mh = MeasureQuery(*pair.hand, q, n, 5, repeats);
      if (!mi.ok() || !me.ok() || !mh.ok()) {
        std::printf(" %11s %11s %11s %7s |", "exhausted", "-", "-", "-");
        alive = false;
        continue;
      }
      if (json != nullptr) {
        const std::string base = "Q" + std::to_string(q) + "/n" +
                                 std::to_string(n) + "/";
        json->Record(base + "interp", mi);
        json->Record(base + "emitted", me);
        json->Record(base + "hand", mh);
      }
      std::printf(" %9.3fms %9.3fms %9.3fms %6.2fx |", mi.seconds * 1e3,
                  me.seconds * 1e3, mh.seconds * 1e3,
                  me.seconds / std::max(mh.seconds, 1e-12));
      if (mi.seconds * 5 > per_point_budget_s) alive = false;
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nExpectation (paper): the generated optimizer is within ~5%% of the\n"
      "hand-coded one — compare the 'emitted' and 'hand' columns (the\n"
      "'interp' column shows the cost of skipping code generation).\n\n");
}

int EnvInt(const char* name, int def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  int parsed = std::atoi(v);
  return parsed > 0 ? parsed : def;
}

}  // namespace prairie::bench

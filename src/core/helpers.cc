#include "core/helpers.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace prairie::core {

using algebra::Value;
using common::Result;
using common::Status;

Status HelperRegistry::Register(std::string name, int arity, HelperFn fn) {
  if (helpers_.count(name) > 0) {
    return Status::AlreadyExists("helper '" + name + "' already registered");
  }
  helpers_.emplace(std::move(name), Helper{arity, std::move(fn)});
  return Status::OK();
}

Result<Value> HelperRegistry::Invoke(const std::string& name,
                                     const std::vector<EvalResult>& args,
                                     const EvalContext& ctx) const {
  auto it = helpers_.find(name);
  if (it == helpers_.end()) {
    return Status::NotFound("unknown helper function '" + name + "'");
  }
  const Helper& h = it->second;
  if (h.arity >= 0 && static_cast<int>(args.size()) != h.arity) {
    return Status::InvalidArgument(common::StringPrintf(
        "helper '%s' expects %d argument(s), got %d", name.c_str(), h.arity,
        static_cast<int>(args.size())));
  }
  return h.fn(args, ctx);
}

std::vector<std::string> HelperRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(helpers_.size());
  for (const auto& [name, helper] : helpers_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

Result<double> NumericArg(const std::vector<EvalResult>& args, size_t i,
                          const char* fn) {
  if (i >= args.size() || args[i].is_desc()) {
    return Status::TypeError(std::string(fn) +
                             ": expected a numeric argument");
  }
  return args[i].val().ToReal();
}

Status RegisterUnaryMath(HelperRegistry* reg, const std::string& name,
                         double (*fn)(double)) {
  return reg->Register(
      name, 1,
      [name, fn](const std::vector<EvalResult>& args,
                 const EvalContext&) -> Result<Value> {
        PRAIRIE_ASSIGN_OR_RETURN(double x, NumericArg(args, 0, name.c_str()));
        return Value::Real(fn(x));
      });
}

}  // namespace

std::shared_ptr<HelperRegistry> HelperRegistry::WithBuiltins() {
  auto reg = std::make_shared<HelperRegistry>();
  // log(x) follows the paper's Merge_sort cost formula (natural log); a
  // non-positive argument yields 0 so degenerate cardinalities stay finite.
  Status st = reg->Register(
      "log", 1,
      [](const std::vector<EvalResult>& args,
         const EvalContext&) -> Result<Value> {
        PRAIRIE_ASSIGN_OR_RETURN(double x, NumericArg(args, 0, "log"));
        return Value::Real(x <= 1.0 ? 0.0 : std::log(x));
      });
  st = RegisterUnaryMath(reg.get(), "log2",
                         +[](double x) { return x <= 1.0 ? 0.0 : std::log2(x); });
  st = RegisterUnaryMath(reg.get(), "ceil", +[](double x) { return std::ceil(x); });
  st = RegisterUnaryMath(reg.get(), "floor",
                         +[](double x) { return std::floor(x); });
  st = RegisterUnaryMath(reg.get(), "abs", +[](double x) { return std::fabs(x); });
  st = reg->Register(
      "min", -1,
      [](const std::vector<EvalResult>& args,
         const EvalContext&) -> Result<Value> {
        if (args.empty()) return Status::InvalidArgument("min: no arguments");
        double best = 0;
        for (size_t i = 0; i < args.size(); ++i) {
          PRAIRIE_ASSIGN_OR_RETURN(double x, NumericArg(args, i, "min"));
          best = (i == 0) ? x : std::min(best, x);
        }
        return Value::Real(best);
      });
  st = reg->Register(
      "max", -1,
      [](const std::vector<EvalResult>& args,
         const EvalContext&) -> Result<Value> {
        if (args.empty()) return Status::InvalidArgument("max: no arguments");
        double best = 0;
        for (size_t i = 0; i < args.size(); ++i) {
          PRAIRIE_ASSIGN_OR_RETURN(double x, NumericArg(args, i, "max"));
          best = (i == 0) ? x : std::max(best, x);
        }
        return Value::Real(best);
      });
  st = reg->Register(
      "pow", 2,
      [](const std::vector<EvalResult>& args,
         const EvalContext&) -> Result<Value> {
        PRAIRIE_ASSIGN_OR_RETURN(double b, NumericArg(args, 0, "pow"));
        PRAIRIE_ASSIGN_OR_RETURN(double e, NumericArg(args, 1, "pow"));
        return Value::Real(std::pow(b, e));
      });
  (void)st;
  return reg;
}

}  // namespace prairie::core

#include "core/ruleset.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace prairie::core {

using algebra::Algebra;
using algebra::OpId;
using algebra::PatNode;
using common::Status;

namespace {

struct PatternInfo {
  std::set<int> stream_vars;
  std::set<int> slots;
};

Status CollectPattern(const Algebra& algebra, const PatNode& node,
                      bool allow_algorithms, PatternInfo* info) {
  if (node.desc_slot < 0) {
    return Status::RuleError("pattern node without a descriptor slot");
  }
  if (info->slots.count(node.desc_slot) > 0) {
    return Status::RuleError("descriptor slot D" +
                             std::to_string(node.desc_slot + 1) +
                             " used by two pattern nodes on the same side");
  }
  info->slots.insert(node.desc_slot);
  if (node.is_stream()) {
    if (node.stream_var <= 0) {
      return Status::RuleError("stream variables are numbered from ?1");
    }
    if (info->stream_vars.count(node.stream_var) > 0) {
      return Status::RuleError(
          "non-linear pattern: stream variable ?" +
          std::to_string(node.stream_var) + " occurs twice on one side");
    }
    info->stream_vars.insert(node.stream_var);
    return Status::OK();
  }
  if (node.op < 0 || node.op >= algebra.size()) {
    return Status::RuleError("pattern references an unregistered operation");
  }
  if (!allow_algorithms && algebra.is_algorithm(node.op)) {
    return Status::RuleError("T-rule patterns may only use abstract "
                             "operators; found algorithm '" +
                             algebra.name(node.op) + "'");
  }
  if (static_cast<int>(node.children.size()) != algebra.arity(node.op)) {
    return Status::RuleError(common::StringPrintf(
        "'%s' has arity %d but pattern gives it %d input(s)",
        algebra.name(node.op).c_str(), algebra.arity(node.op),
        static_cast<int>(node.children.size())));
  }
  for (const algebra::PatNodePtr& c : node.children) {
    PRAIRIE_RETURN_NOT_OK(CollectPattern(algebra, *c, allow_algorithms, info));
  }
  return Status::OK();
}

/// Checks every Dk.prop reference in `expr` against the schema and every
/// helper call against the registry; checks slots are within num_slots and,
/// when `readable` is given, that reads only touch readable slots.
Status CheckExpr(const ActionExpr& expr, const Algebra& algebra,
                 const HelperRegistry* helpers, int num_slots,
                 const std::set<int>* readable) {
  Status st = Status::OK();
  expr.Visit([&](const ActionExpr& e) {
    if (!st.ok()) return;
    switch (e.kind()) {
      case ActionExpr::Kind::kProp:
      case ActionExpr::Kind::kDesc: {
        if (e.desc_slot() < 0 || e.desc_slot() >= num_slots) {
          st = Status::RuleError("reference to out-of-range descriptor D" +
                                 std::to_string(e.desc_slot() + 1));
          return;
        }
        if (readable != nullptr && readable->count(e.desc_slot()) == 0) {
          st = Status::RuleError(
              "D" + std::to_string(e.desc_slot() + 1) +
              " is not bound at the point this expression runs");
          return;
        }
        if (e.kind() == ActionExpr::Kind::kProp &&
            !algebra.properties().Find(e.property()).has_value()) {
          st = Status::RuleError("unknown property '" + e.property() + "'");
        }
        break;
      }
      case ActionExpr::Kind::kCall:
        if (helpers != nullptr && !helpers->Contains(e.fn())) {
          st = Status::RuleError("unknown helper function '" + e.fn() + "'");
        }
        break;
      default:
        break;
    }
  });
  return st;
}

Status CheckBlock(const std::vector<ActionStmt>& stmts, const Algebra& algebra,
                  const HelperRegistry* helpers, int num_slots,
                  const std::set<int>& writable) {
  for (const ActionStmt& s : stmts) {
    if (s.target_slot < 0 || s.target_slot >= num_slots) {
      return Status::RuleError("assignment to out-of-range descriptor in '" +
                               s.ToString() + "'");
    }
    if (writable.count(s.target_slot) == 0) {
      return Status::RuleError(
          "assignment to left-hand-side descriptor D" +
          std::to_string(s.target_slot + 1) + " in '" + s.ToString() +
          "' (LHS descriptors are never changed)");
    }
    if (!s.target_prop.empty() &&
        !algebra.properties().Find(s.target_prop).has_value()) {
      return Status::RuleError("unknown property '" + s.target_prop +
                               "' in '" + s.ToString() + "'");
    }
    if (s.value == nullptr) {
      return Status::RuleError("assignment without a value in rule action");
    }
    PRAIRIE_RETURN_NOT_OK(
        CheckExpr(*s.value, algebra, helpers, num_slots, nullptr)
            .WithContext("in '" + s.ToString() + "'"));
  }
  return Status::OK();
}

Status ValidateTRule(const TRule& r, const Algebra& algebra,
                     const HelperRegistry* helpers) {
  if (r.lhs == nullptr || r.rhs == nullptr) {
    return Status::RuleError("T-rule is missing a side");
  }
  if (r.lhs->is_stream() || r.rhs->is_stream()) {
    return Status::RuleError("T-rule sides must be rooted at an operator");
  }
  PatternInfo lhs_info, rhs_info;
  PRAIRIE_RETURN_NOT_OK(
      CollectPattern(algebra, *r.lhs, /*allow_algorithms=*/false, &lhs_info));
  PRAIRIE_RETURN_NOT_OK(
      CollectPattern(algebra, *r.rhs, /*allow_algorithms=*/false, &rhs_info));
  for (int v : rhs_info.stream_vars) {
    if (lhs_info.stream_vars.count(v) == 0) {
      return Status::RuleError("RHS stream variable ?" + std::to_string(v) +
                               " does not occur on the LHS");
    }
  }
  int max_slot = std::max(r.lhs->MaxDescSlot(), r.rhs->MaxDescSlot());
  if (r.num_slots <= max_slot) {
    return Status::RuleError("num_slots smaller than referenced slots");
  }
  // Writable slots: RHS-side slots that are not LHS slots.
  std::set<int> writable;
  for (int s : rhs_info.slots) {
    if (lhs_info.slots.count(s) == 0) writable.insert(s);
  }
  PRAIRIE_RETURN_NOT_OK(
      CheckBlock(r.pre_test, algebra, helpers, r.num_slots, writable));
  if (r.test != nullptr) {
    PRAIRIE_RETURN_NOT_OK(
        CheckExpr(*r.test, algebra, helpers, r.num_slots, nullptr));
  }
  PRAIRIE_RETURN_NOT_OK(
      CheckBlock(r.post_test, algebra, helpers, r.num_slots, writable));
  return Status::OK();
}

Status ValidateIRule(const IRule& r, const Algebra& algebra,
                     const HelperRegistry* helpers) {
  if (r.op < 0 || r.op >= algebra.size() || algebra.is_algorithm(r.op)) {
    return Status::RuleError("I-rule LHS must be an abstract operator");
  }
  if (r.alg < 0 || r.alg >= algebra.size() || !algebra.is_algorithm(r.alg)) {
    return Status::RuleError("I-rule RHS must be an algorithm");
  }
  if (algebra.arity(r.op) != r.arity ||
      algebra.arity(r.alg) != r.arity) {
    return Status::RuleError(
        "I-rule '" + r.name + "': operator and algorithm arities disagree");
  }
  if (static_cast<int>(r.rhs_input_slots.size()) != r.arity) {
    return Status::RuleError("I-rule '" + r.name +
                             "': rhs_input_slots has wrong size");
  }
  std::set<int> writable;
  writable.insert(r.alg_slot);
  for (int i = 0; i < r.arity; ++i) {
    int slot = r.rhs_input_slots[static_cast<size_t>(i)];
    if (slot != i) {
      if (slot <= r.op_slot()) {
        return Status::RuleError("I-rule '" + r.name +
                                 "': re-annotated input must use a fresh "
                                 "descriptor slot");
      }
      writable.insert(slot);
    }
  }
  if (r.alg_slot <= r.op_slot()) {
    return Status::RuleError("I-rule '" + r.name +
                             "': algorithm descriptor must be fresh");
  }
  // The test runs before pre-opt: only LHS descriptors are bound.
  std::set<int> test_readable;
  for (int i = 0; i <= r.op_slot(); ++i) test_readable.insert(i);
  if (r.test != nullptr) {
    PRAIRIE_RETURN_NOT_OK(
        CheckExpr(*r.test, algebra, helpers, r.num_slots, &test_readable)
            .WithContext("I-rule '" + r.name + "' test"));
  }
  PRAIRIE_RETURN_NOT_OK(
      CheckBlock(r.pre_opt, algebra, helpers, r.num_slots, writable)
          .WithContext("I-rule '" + r.name + "' pre-opt"));
  PRAIRIE_RETURN_NOT_OK(
      CheckBlock(r.post_opt, algebra, helpers, r.num_slots, writable)
          .WithContext("I-rule '" + r.name + "' post-opt"));
  return Status::OK();
}

}  // namespace

Status RuleSet::Validate() const {
  if (algebra == nullptr) {
    return Status::RuleError("rule set has no algebra");
  }
  const HelperRegistry* reg = helpers.get();
  std::set<std::string> names;
  for (const TRule& r : trules) {
    if (!names.insert("T:" + r.name).second) {
      return Status::RuleError("duplicate T-rule name '" + r.name + "'");
    }
    PRAIRIE_RETURN_NOT_OK(
        ValidateTRule(r, *algebra, reg).WithContext("T-rule '" + r.name + "'"));
  }
  for (const IRule& r : irules) {
    if (!names.insert("I:" + r.name).second) {
      return Status::RuleError("duplicate I-rule name '" + r.name + "'");
    }
    PRAIRIE_RETURN_NOT_OK(ValidateIRule(r, *algebra, reg));
  }
  return Status::OK();
}

std::vector<OpId> RuleSet::EnforcerOperators() const {
  std::vector<OpId> out;
  for (const IRule& r : irules) {
    if (r.alg == algebra->null_alg() &&
        std::find(out.begin(), out.end(), r.op) == out.end()) {
      out.push_back(r.op);
    }
  }
  return out;
}

bool RuleSet::IsEnforcerOperator(OpId op) const {
  for (const IRule& r : irules) {
    if (r.op == op && r.alg == algebra->null_alg()) return true;
  }
  return false;
}

std::vector<const IRule*> RuleSet::IRulesFor(OpId op) const {
  std::vector<const IRule*> out;
  for (const IRule& r : irules) {
    if (r.op == op) out.push_back(&r);
  }
  return out;
}

std::string RuleSet::ToString() const {
  std::string out = algebra->ToString() + "\n\n";
  for (const TRule& r : trules) out += r.ToString(*algebra) + "\n\n";
  for (const IRule& r : irules) out += r.ToString(*algebra) + "\n\n";
  return out;
}

}  // namespace prairie::core

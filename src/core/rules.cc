#include "core/rules.h"

#include "common/strings.h"

namespace prairie::core {

namespace {

std::string RuleActionsToString(const std::vector<ActionStmt>& first_block,
                                const ActionExprPtr& test,
                                const std::vector<ActionStmt>& second_block) {
  std::string out;
  out += BlockToString(first_block, 0) + "\n";
  out += (test == nullptr ? std::string("TRUE") : test->ToString()) + "\n";
  out += BlockToString(second_block, 0);
  return out;
}

}  // namespace

TRule TRule::Clone() const {
  TRule out;
  out.name = name;
  out.lhs = lhs->Clone();
  out.rhs = rhs->Clone();
  out.pre_test = pre_test;
  out.test = test;
  out.post_test = post_test;
  out.num_slots = num_slots;
  return out;
}

std::string TRule::ToString(const algebra::Algebra& algebra) const {
  std::string out = "trule " + name + ":\n";
  out += "  " + lhs->ToString(algebra) + " => " + rhs->ToString(algebra) +
         "\n";
  out += common::Indent(
      RuleActionsToString(pre_test, test, post_test), 2);
  return out;
}

IRule IRule::Clone() const {
  IRule out;
  out.name = name;
  out.op = op;
  out.alg = alg;
  out.arity = arity;
  out.rhs_input_slots = rhs_input_slots;
  out.alg_slot = alg_slot;
  out.test = test;
  out.pre_opt = pre_opt;
  out.post_opt = post_opt;
  out.num_slots = num_slots;
  return out;
}

std::string IRule::ToString(const algebra::Algebra& algebra) const {
  auto side = [&](algebra::OpId operation, bool rhs) {
    std::string s = algebra.name(operation);
    s += "[D" + std::to_string((rhs ? alg_slot : op_slot()) + 1) + "](";
    std::vector<std::string> parts;
    for (int i = 0; i < arity; ++i) {
      std::string p = "?" + std::to_string(i + 1);
      int slot = rhs ? rhs_input_slots[i] : i;
      p += ":D" + std::to_string(slot + 1);
      parts.push_back(p);
    }
    s += common::Join(parts, ", ") + ")";
    return s;
  };
  std::string out = "irule " + name + ":\n";
  out += "  " + side(op, false) + " => " + side(alg, true) + "\n";
  std::string body;
  body += (test == nullptr ? std::string("TRUE") : test->ToString()) + "\n";
  body += BlockToString(pre_opt, 0) + "\n";
  body += BlockToString(post_opt, 0);
  out += common::Indent(body, 2);
  return out;
}

IRule MakeIRuleSkeleton(std::string name, const algebra::Algebra& algebra,
                        algebra::OpId op, algebra::OpId alg,
                        const std::vector<bool>& fresh_inputs) {
  IRule r;
  r.name = std::move(name);
  r.op = op;
  r.alg = alg;
  r.arity = algebra.arity(op);
  int next_slot = r.arity + 1;  // inputs D1..Dk, op desc D(k+1)
  r.rhs_input_slots.resize(static_cast<size_t>(r.arity));
  for (int i = 0; i < r.arity; ++i) {
    bool fresh =
        i < static_cast<int>(fresh_inputs.size()) && fresh_inputs[i];
    r.rhs_input_slots[static_cast<size_t>(i)] = fresh ? next_slot++ : i;
  }
  r.alg_slot = next_slot++;
  r.num_slots = next_slot;
  return r;
}

}  // namespace prairie::core

// The Prairie action language (paper §2.3, §2.4).
//
// Rule actions are series of assignment statements whose left-hand sides
// are output descriptors (or members of output descriptors) and whose
// right-hand sides are expressions over input descriptors, constants,
// arithmetic/boolean operators and helper-function calls. Tests are
// boolean expressions of the same language.
//
// Statements and expressions are immutable ASTs. One evaluator serves
// T-rule pre/post-test sections, I-rule pre/post-opt sections, and the
// Volcano helper functions P2V synthesizes from them.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/property.h"
#include "common/result.h"

namespace prairie::catalog {
class Catalog;
}

namespace prairie::algebra {
class DescriptorStore;
}

namespace prairie::core {

class ActionExpr;
using ActionExprPtr = std::shared_ptr<const ActionExpr>;

/// Binary operators of the action language.
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

std::string_view BinOpName(BinOp op);

/// Unary operators of the action language.
enum class UnOp { kNot, kNeg };

/// \brief An expression of the action language.
class ActionExpr {
 public:
  enum class Kind {
    kConst,   ///< Literal value.
    kProp,    ///< Dk.property — a descriptor member.
    kDesc,    ///< Dk — a whole descriptor (in D_a = D_b and helper args).
    kCall,    ///< helper(args...).
    kBinary,  ///< a op b.
    kUnary,   ///< !a or -a.
  };

  static ActionExprPtr Const(algebra::Value v);
  /// `property_id` is the pre-resolved PropertyId when the schema is known
  /// at construction time (the DSL parser supplies it); -1 falls back to a
  /// by-name lookup at evaluation time.
  static ActionExprPtr Prop(int desc_slot, std::string property,
                            algebra::PropertyId property_id = -1);
  static ActionExprPtr Desc(int desc_slot);
  static ActionExprPtr Call(std::string fn, std::vector<ActionExprPtr> args);
  static ActionExprPtr Binary(BinOp op, ActionExprPtr l, ActionExprPtr r);
  static ActionExprPtr Unary(UnOp op, ActionExprPtr e);

  Kind kind() const { return kind_; }
  const algebra::Value& constant() const { return constant_; }
  int desc_slot() const { return desc_slot_; }
  const std::string& property() const { return property_; }
  algebra::PropertyId property_id() const { return property_id_; }
  const std::string& fn() const { return fn_; }
  const std::vector<ActionExprPtr>& args() const { return args_; }
  BinOp bin_op() const { return bin_op_; }
  UnOp un_op() const { return un_op_; }
  const ActionExprPtr& left() const { return args_[0]; }
  const ActionExprPtr& right() const { return args_[1]; }

  /// Calls `visit` on this node and every descendant (pre-order).
  void Visit(const std::function<void(const ActionExpr&)>& visit) const;

  /// Renders with 1-based D-numbering, e.g. "D4.cost + D4.num_records * D2.cost".
  std::string ToString() const;

 private:
  ActionExpr() = default;

  Kind kind_ = Kind::kConst;
  algebra::Value constant_;
  int desc_slot_ = -1;
  std::string property_;
  algebra::PropertyId property_id_ = -1;
  std::string fn_;
  std::vector<ActionExprPtr> args_;
  BinOp bin_op_ = BinOp::kAdd;
  UnOp un_op_ = UnOp::kNot;
};

/// \brief One assignment statement: `Dk = expr;` or `Dk.prop = expr;`.
struct ActionStmt {
  int target_slot = -1;
  std::string target_prop;  ///< Empty for whole-descriptor assignment.
  /// Pre-resolved PropertyId of target_prop (-1: resolve by name).
  algebra::PropertyId target_prop_id = -1;
  ActionExprPtr value;

  bool assigns_whole_descriptor() const { return target_prop.empty(); }
  std::string ToString() const;
};

/// Pretty-prints a statement block `{{ ... }}` like the paper.
std::string BlockToString(const std::vector<ActionStmt>& stmts, int indent);

class HelperRegistry;

/// \brief Evaluation context: the descriptor slots of one rule firing plus
/// the ambient registries helpers may consult.
struct EvalContext {
  /// Descriptor slot array; slot i is the rule's D(i+1). Entries may be
  /// null for slots not bound in the current phase (reading one fails).
  std::vector<algebra::Descriptor*> slots;
  /// Allocation-free alternative used on the hot path: a contiguous
  /// descriptor array (e.g. a BindingView's slots). Takes precedence over
  /// `slots` when set.
  algebra::Descriptor* contiguous = nullptr;
  int contiguous_count = 0;
  const HelperRegistry* helpers = nullptr;
  const catalog::Catalog* catalog = nullptr;
  /// Descriptor store of the active optimization, when one exists: action
  /// evaluation freezes finished output descriptors into interned ids
  /// through it (see p2v::emitted_support Freeze).
  algebra::DescriptorStore* store = nullptr;

  algebra::Descriptor* slot(int i) const {
    if (contiguous != nullptr) {
      return (i >= 0 && i < contiguous_count) ? contiguous + i : nullptr;
    }
    return (i >= 0 && i < static_cast<int>(slots.size())) ? slots[i] : nullptr;
  }
};

/// \brief Result of evaluating an action expression: a Value, or a whole
/// descriptor (only `Dk` expressions produce the latter).
///
/// Property reads return *borrowed* values (a pointer into the owning
/// descriptor) to avoid copying attribute lists and predicates on every
/// access; borrowed values are only valid until the slot descriptors are
/// next mutated, which is after the enclosing statement finishes.
struct EvalResult {
  algebra::Value value;
  const algebra::Value* borrowed = nullptr;
  const algebra::Descriptor* desc = nullptr;

  bool is_desc() const { return desc != nullptr; }
  const algebra::Value& val() const {
    return borrowed != nullptr ? *borrowed : value;
  }
};

/// Evaluates an expression in `ctx`.
common::Result<EvalResult> Eval(const ActionExpr& expr, const EvalContext& ctx);

/// Evaluates a boolean test; a null expression means TRUE.
common::Result<bool> EvalTest(const ActionExprPtr& test,
                              const EvalContext& ctx);

/// Executes one assignment statement.
common::Status Execute(const ActionStmt& stmt, const EvalContext& ctx);

/// Executes a statement block in order, stopping at the first error.
common::Status ExecuteAll(const std::vector<ActionStmt>& stmts,
                          const EvalContext& ctx);

}  // namespace prairie::core

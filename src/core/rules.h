// Prairie transformation rules (T-rules, paper §2.3) and implementation
// rules (I-rules, paper §2.4).
//
// Descriptor slot numbering follows the paper's convention: the LHS leaf
// streams are D1..Dk (slot 0..k-1); further slots are assigned to LHS
// interior nodes and to RHS nodes that introduce new descriptors. A RHS
// stream occurrence without an explicit annotation reuses the LHS slot of
// the same stream variable.

#pragma once

#include <string>
#include <vector>

#include "algebra/pattern.h"
#include "core/action.h"

namespace prairie::core {

/// \brief A transformation rule: E : D => E' : D' with pre-test statements,
/// a test, and post-test statements (Figure 2 of the paper).
struct TRule {
  std::string name;
  algebra::PatNodePtr lhs;
  algebra::PatNodePtr rhs;
  std::vector<ActionStmt> pre_test;
  ActionExprPtr test;  ///< Null means TRUE.
  std::vector<ActionStmt> post_test;
  int num_slots = 0;  ///< Total descriptor slots referenced by the rule.

  TRule() = default;
  TRule(TRule&&) = default;
  TRule& operator=(TRule&&) = default;
  TRule Clone() const;

  /// Paper-style rendering of the full rule.
  std::string ToString(const algebra::Algebra& algebra) const;
};

/// \brief An implementation rule: O(x1..xn) : D => A(x1..xn) : D' with a
/// test, pre-opt statements and post-opt statements (Figure 4).
///
/// Slot layout (k = arity of `op`):
///   0..k-1          LHS input streams D1..Dk
///   k               the operator's descriptor
///   rhs_input_slot[i]  descriptor of RHS stream occurrence i — equal to i
///                      when the stream keeps its LHS descriptor, or a
///                      fresh slot when the rule re-annotates it (as in
///                      Nested_loops(S1:D4, S2) or the Null rule).
///   alg_slot        the algorithm's descriptor (always fresh).
struct IRule {
  std::string name;
  algebra::OpId op = -1;
  algebra::OpId alg = -1;
  int arity = 0;
  std::vector<int> rhs_input_slots;
  int alg_slot = -1;
  ActionExprPtr test;  ///< Null means TRUE.
  std::vector<ActionStmt> pre_opt;
  std::vector<ActionStmt> post_opt;
  int num_slots = 0;

  /// Slot of the operator's own descriptor.
  int op_slot() const { return arity; }

  /// True when the RHS re-annotates input `i` with a fresh descriptor.
  bool input_reannotated(int i) const { return rhs_input_slots[i] != i; }

  IRule() = default;
  IRule(IRule&&) = default;
  IRule& operator=(IRule&&) = default;
  IRule Clone() const;

  std::string ToString(const algebra::Algebra& algebra) const;
};

/// Builds the canonical slot layout for an I-rule over `op` implementing it
/// with `alg`; `fresh_inputs[i]` marks inputs whose RHS occurrence gets a
/// fresh descriptor slot.
IRule MakeIRuleSkeleton(std::string name, const algebra::Algebra& algebra,
                        algebra::OpId op, algebra::OpId alg,
                        const std::vector<bool>& fresh_inputs);

}  // namespace prairie::core

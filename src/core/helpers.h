// Helper functions callable from rule actions (paper §2.3: "cardinality",
// "union", "is_associative", ...).
//
// Helpers are registered by name with a fixed arity (or variadic) and
// receive evaluated arguments — scalars or whole descriptors. Optimizer
// definitions register their own domain helpers; WithBuiltins() provides
// the generic numeric ones every rule set gets.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/action.h"

namespace prairie::core {

using HelperFn = std::function<common::Result<algebra::Value>(
    const std::vector<EvalResult>& args, const EvalContext& ctx)>;

/// \brief Name → function table for rule-action helper calls.
class HelperRegistry {
 public:
  /// Registers a helper. `arity` of -1 accepts any argument count.
  common::Status Register(std::string name, int arity, HelperFn fn);

  bool Contains(const std::string& name) const {
    return helpers_.count(name) > 0;
  }

  /// Invokes `name` with pre-evaluated arguments.
  common::Result<algebra::Value> Invoke(const std::string& name,
                                        const std::vector<EvalResult>& args,
                                        const EvalContext& ctx) const;

  std::vector<std::string> Names() const;

  /// A fresh registry pre-populated with the generic numeric helpers:
  /// log (natural), log2, ceil, floor, abs, min, max, pow.
  static std::shared_ptr<HelperRegistry> WithBuiltins();

 private:
  struct Helper {
    int arity;
    HelperFn fn;
  };
  std::unordered_map<std::string, Helper> helpers_;
};

}  // namespace prairie::core

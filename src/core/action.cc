#include "core/action.h"

#include <cmath>
#include <functional>

#include "common/strings.h"
#include "core/helpers.h"

namespace prairie::core {

using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;

std::string_view BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "&&";
    case BinOp::kOr:
      return "||";
  }
  return "?";
}

ActionExprPtr ActionExpr::Const(Value v) {
  auto e = std::shared_ptr<ActionExpr>(new ActionExpr());
  e->kind_ = Kind::kConst;
  e->constant_ = std::move(v);
  return e;
}

ActionExprPtr ActionExpr::Prop(int desc_slot, std::string property,
                               algebra::PropertyId property_id) {
  auto e = std::shared_ptr<ActionExpr>(new ActionExpr());
  e->kind_ = Kind::kProp;
  e->desc_slot_ = desc_slot;
  e->property_ = std::move(property);
  e->property_id_ = property_id;
  return e;
}

ActionExprPtr ActionExpr::Desc(int desc_slot) {
  auto e = std::shared_ptr<ActionExpr>(new ActionExpr());
  e->kind_ = Kind::kDesc;
  e->desc_slot_ = desc_slot;
  return e;
}

ActionExprPtr ActionExpr::Call(std::string fn,
                               std::vector<ActionExprPtr> args) {
  auto e = std::shared_ptr<ActionExpr>(new ActionExpr());
  e->kind_ = Kind::kCall;
  e->fn_ = std::move(fn);
  e->args_ = std::move(args);
  return e;
}

ActionExprPtr ActionExpr::Binary(BinOp op, ActionExprPtr l, ActionExprPtr r) {
  auto e = std::shared_ptr<ActionExpr>(new ActionExpr());
  e->kind_ = Kind::kBinary;
  e->bin_op_ = op;
  e->args_.push_back(std::move(l));
  e->args_.push_back(std::move(r));
  return e;
}

ActionExprPtr ActionExpr::Unary(UnOp op, ActionExprPtr inner) {
  auto e = std::shared_ptr<ActionExpr>(new ActionExpr());
  e->kind_ = Kind::kUnary;
  e->un_op_ = op;
  e->args_.push_back(std::move(inner));
  return e;
}

void ActionExpr::Visit(
    const std::function<void(const ActionExpr&)>& visit) const {
  visit(*this);
  for (const ActionExprPtr& a : args_) a->Visit(visit);
}

std::string ActionExpr::ToString() const {
  switch (kind_) {
    case Kind::kConst:
      return constant_.ToString();
    case Kind::kProp:
      return "D" + std::to_string(desc_slot_ + 1) + "." + property_;
    case Kind::kDesc:
      return "D" + std::to_string(desc_slot_ + 1);
    case Kind::kCall: {
      std::vector<std::string> parts;
      parts.reserve(args_.size());
      for (const ActionExprPtr& a : args_) parts.push_back(a->ToString());
      return fn_ + "(" + common::Join(parts, ", ") + ")";
    }
    case Kind::kBinary:
      return "(" + args_[0]->ToString() + " " +
             std::string(BinOpName(bin_op_)) + " " + args_[1]->ToString() +
             ")";
    case Kind::kUnary:
      return (un_op_ == UnOp::kNot ? "!(" : "-(") + args_[0]->ToString() +
             ")";
  }
  return "?";
}

std::string ActionStmt::ToString() const {
  std::string lhs = "D" + std::to_string(target_slot + 1);
  if (!target_prop.empty()) lhs += "." + target_prop;
  return lhs + " = " + (value == nullptr ? "?" : value->ToString()) + ";";
}

std::string BlockToString(const std::vector<ActionStmt>& stmts, int indent) {
  std::string pad(static_cast<size_t>(indent), ' ');
  std::string out = pad + "{{\n";
  for (const ActionStmt& s : stmts) {
    out += pad + "  " + s.ToString() + "\n";
  }
  out += pad + "}}";
  return out;
}

namespace {

Result<Value> EvalBinary(BinOp op, const EvalResult& l, const EvalResult& r) {
  if (l.is_desc() || r.is_desc()) {
    return Status::TypeError("whole descriptors cannot appear in '" +
                             std::string(BinOpName(op)) + "' expressions");
  }
  const Value& a = l.val();
  const Value& b = r.val();
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      // Attribute lists support '+' as set union for convenience.
      if (op == BinOp::kAdd && a.type() == ValueType::kAttrs &&
          b.type() == ValueType::kAttrs) {
        return Value::Attrs(algebra::UnionAttrs(a.AsAttrs(), b.AsAttrs()));
      }
      PRAIRIE_ASSIGN_OR_RETURN(double x, a.ToReal());
      PRAIRIE_ASSIGN_OR_RETURN(double y, b.ToReal());
      double v = 0;
      switch (op) {
        case BinOp::kAdd:
          v = x + y;
          break;
        case BinOp::kSub:
          v = x - y;
          break;
        case BinOp::kMul:
          v = x * y;
          break;
        case BinOp::kDiv:
          if (y == 0) return Status::InvalidArgument("division by zero");
          v = x / y;
          break;
        default:
          break;
      }
      // Integer-preserving arithmetic when both operands were ints and the
      // result is integral keeps num_records-style properties typed int.
      if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
          op != BinOp::kDiv && std::floor(v) == v &&
          std::fabs(v) < 9.0e18) {
        return Value::Int(static_cast<int64_t>(v));
      }
      return Value::Real(v);
    }
    case BinOp::kEq:
    case BinOp::kNe: {
      bool eq;
      // Numeric cross-type comparison coerces; everything else compares by
      // value identity.
      if ((a.type() == ValueType::kInt || a.type() == ValueType::kReal) &&
          (b.type() == ValueType::kInt || b.type() == ValueType::kReal)) {
        eq = a.ToReal().ValueOrDie() == b.ToReal().ValueOrDie();
      } else {
        eq = a == b;
      }
      return Value::Bool(op == BinOp::kEq ? eq : !eq);
    }
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      PRAIRIE_ASSIGN_OR_RETURN(double x, a.ToReal());
      PRAIRIE_ASSIGN_OR_RETURN(double y, b.ToReal());
      bool v = false;
      switch (op) {
        case BinOp::kLt:
          v = x < y;
          break;
        case BinOp::kLe:
          v = x <= y;
          break;
        case BinOp::kGt:
          v = x > y;
          break;
        case BinOp::kGe:
          v = x >= y;
          break;
        default:
          break;
      }
      return Value::Bool(v);
    }
    case BinOp::kAnd:
    case BinOp::kOr: {
      PRAIRIE_ASSIGN_OR_RETURN(bool x, a.ToBool());
      PRAIRIE_ASSIGN_OR_RETURN(bool y, b.ToBool());
      return Value::Bool(op == BinOp::kAnd ? (x && y) : (x || y));
    }
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

Result<EvalResult> Eval(const ActionExpr& expr, const EvalContext& ctx) {
  switch (expr.kind()) {
    case ActionExpr::Kind::kConst:
      return EvalResult{expr.constant(), nullptr, nullptr};
    case ActionExpr::Kind::kProp: {
      const algebra::Descriptor* d = ctx.slot(expr.desc_slot());
      if (d == nullptr || !d->valid()) {
        return Status::RuleError(
            "descriptor D" + std::to_string(expr.desc_slot() + 1) +
            " is not bound in this phase");
      }
      if (expr.property_id() >= 0) {
        EvalResult out;
        out.borrowed = &d->Get(expr.property_id());
        return out;
      }
      PRAIRIE_ASSIGN_OR_RETURN(Value v, d->Get(expr.property()));
      EvalResult out;
      out.value = std::move(v);
      return out;
    }
    case ActionExpr::Kind::kDesc: {
      const algebra::Descriptor* d = ctx.slot(expr.desc_slot());
      if (d == nullptr || !d->valid()) {
        return Status::RuleError(
            "descriptor D" + std::to_string(expr.desc_slot() + 1) +
            " is not bound in this phase");
      }
      EvalResult out;
      out.desc = d;
      return out;
    }
    case ActionExpr::Kind::kCall: {
      if (ctx.helpers == nullptr) {
        return Status::RuleError("no helper registry in evaluation context");
      }
      std::vector<EvalResult> args;
      args.reserve(expr.args().size());
      for (const ActionExprPtr& a : expr.args()) {
        PRAIRIE_ASSIGN_OR_RETURN(EvalResult r, Eval(*a, ctx));
        args.push_back(std::move(r));
      }
      PRAIRIE_ASSIGN_OR_RETURN(Value v,
                               ctx.helpers->Invoke(expr.fn(), args, ctx));
      return EvalResult{std::move(v), nullptr, nullptr};
    }
    case ActionExpr::Kind::kBinary: {
      // Short-circuit && and ||.
      if (expr.bin_op() == BinOp::kAnd || expr.bin_op() == BinOp::kOr) {
        PRAIRIE_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), ctx));
        if (l.is_desc()) {
          return Status::TypeError("descriptor used as boolean");
        }
        PRAIRIE_ASSIGN_OR_RETURN(bool lv, l.val().ToBool());
        if (expr.bin_op() == BinOp::kAnd && !lv) {
          return EvalResult{Value::Bool(false), nullptr, nullptr};
        }
        if (expr.bin_op() == BinOp::kOr && lv) {
          return EvalResult{Value::Bool(true), nullptr, nullptr};
        }
        PRAIRIE_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), ctx));
        if (r.is_desc()) {
          return Status::TypeError("descriptor used as boolean");
        }
        PRAIRIE_ASSIGN_OR_RETURN(bool rv, r.val().ToBool());
        return EvalResult{Value::Bool(rv), nullptr, nullptr};
      }
      PRAIRIE_ASSIGN_OR_RETURN(EvalResult l, Eval(*expr.left(), ctx));
      PRAIRIE_ASSIGN_OR_RETURN(EvalResult r, Eval(*expr.right(), ctx));
      PRAIRIE_ASSIGN_OR_RETURN(Value v, EvalBinary(expr.bin_op(), l, r));
      return EvalResult{std::move(v), nullptr, nullptr};
    }
    case ActionExpr::Kind::kUnary: {
      PRAIRIE_ASSIGN_OR_RETURN(EvalResult inner, Eval(*expr.args()[0], ctx));
      if (inner.is_desc()) {
        return Status::TypeError("descriptor used in unary expression");
      }
      if (expr.un_op() == UnOp::kNot) {
        PRAIRIE_ASSIGN_OR_RETURN(bool b, inner.val().ToBool());
        return EvalResult{Value::Bool(!b), nullptr, nullptr};
      }
      PRAIRIE_ASSIGN_OR_RETURN(double x, inner.val().ToReal());
      if (inner.val().type() == ValueType::kInt) {
        return EvalResult{Value::Int(-inner.val().AsInt()), nullptr, nullptr};
      }
      return EvalResult{Value::Real(-x), nullptr, nullptr};
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalTest(const ActionExprPtr& test, const EvalContext& ctx) {
  if (test == nullptr) return true;
  PRAIRIE_ASSIGN_OR_RETURN(EvalResult r, Eval(*test, ctx));
  if (r.is_desc()) return Status::TypeError("descriptor used as rule test");
  return r.val().ToBool();
}

Status Execute(const ActionStmt& stmt, const EvalContext& ctx) {
  algebra::Descriptor* target = ctx.slot(stmt.target_slot);
  if (target == nullptr) {
    return Status::RuleError("assignment target D" +
                             std::to_string(stmt.target_slot + 1) +
                             " is not bound in this phase");
  }
  PRAIRIE_ASSIGN_OR_RETURN(EvalResult r, Eval(*stmt.value, ctx));
  if (stmt.assigns_whole_descriptor()) {
    if (!r.is_desc()) {
      return Status::TypeError(
          "whole-descriptor assignment requires a descriptor on the right "
          "(in '" +
          stmt.ToString() + "')");
    }
    *target = *r.desc;
    return Status::OK();
  }
  if (r.is_desc()) {
    return Status::TypeError("cannot assign a whole descriptor to property '" +
                             stmt.target_prop + "'");
  }
  Value v = r.borrowed != nullptr ? *r.borrowed : std::move(r.value);
  if (stmt.target_prop_id >= 0) {
    Status st = target->SetChecked(stmt.target_prop_id, std::move(v));
    if (!st.ok()) return st.WithContext("in '" + stmt.ToString() + "'");
    return st;
  }
  return target->Set(stmt.target_prop, std::move(v))
      .WithContext("in '" + stmt.ToString() + "'");
}

Status ExecuteAll(const std::vector<ActionStmt>& stmts,
                  const EvalContext& ctx) {
  for (const ActionStmt& s : stmts) {
    PRAIRIE_RETURN_NOT_OK(Execute(s, ctx));
  }
  return Status::OK();
}

}  // namespace prairie::core

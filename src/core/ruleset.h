// A Prairie rule set: the complete optimizer specification a user writes
// (algebra + properties + helpers + T-rules + I-rules). Rule sets are what
// the P2V pre-processor consumes.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "core/helpers.h"
#include "core/rules.h"

namespace prairie::core {

/// \brief A complete Prairie specification.
struct RuleSet {
  std::shared_ptr<algebra::Algebra> algebra;
  std::shared_ptr<HelperRegistry> helpers;
  std::vector<TRule> trules;
  std::vector<IRule> irules;

  /// Structural validation of the whole specification. Checks, per the
  /// paper's model:
  ///  - rule operations are registered with matching arities; T-rule sides
  ///    use only abstract operators, I-rules map one operator to one
  ///    algorithm of equal arity;
  ///  - RHS stream variables are a subset of (linear) LHS variables;
  ///  - descriptor slots are consistent and LHS descriptors are never
  ///    assigned by actions (§2.3: "descriptors on the left-hand side are
  ///    never changed");
  ///  - I-rule tests reference only descriptors bound before pre-opt runs;
  ///  - referenced properties exist in the schema and referenced helper
  ///    functions are registered.
  common::Status Validate() const;

  /// Operators that have a Null-algorithm I-rule (enforcer-operators,
  /// paper §2.5/§3.1).
  std::vector<algebra::OpId> EnforcerOperators() const;
  bool IsEnforcerOperator(algebra::OpId op) const;

  /// All I-rules implementing `op`.
  std::vector<const IRule*> IRulesFor(algebra::OpId op) const;

  /// Full paper-style textual rendering of the specification; the
  /// productivity experiment (§4.2) counts its lines.
  std::string ToString() const;
};

}  // namespace prairie::core

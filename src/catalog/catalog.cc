#include "catalog/catalog.h"

#include <algorithm>

#include "common/strings.h"

namespace prairie::catalog {

using common::Result;
using common::Status;

const AttributeDef* StoredFile::FindAttr(const std::string& attr_name) const {
  for (const AttributeDef& a : attrs_) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

Result<AttributeDef> StoredFile::RequireAttr(const std::string& name) const {
  const AttributeDef* a = FindAttr(name);
  if (a == nullptr) {
    return Status::NotFound("file '" + name_ + "' has no attribute '" + name +
                            "'");
  }
  return *a;
}

bool StoredFile::HasIndexOn(const std::string& attr_name) const {
  return FindIndexOn(attr_name) != nullptr;
}

const IndexDef* StoredFile::FindIndexOn(const std::string& attr_name) const {
  for (const IndexDef& idx : indices_) {
    if (idx.attr == attr_name) return &idx;
  }
  return nullptr;
}

algebra::AttrList StoredFile::QualifiedAttrs() const {
  algebra::AttrList out;
  out.reserve(attrs_.size());
  for (const AttributeDef& a : attrs_) {
    out.push_back(algebra::Attr{name_, a.name});
  }
  return out;
}

std::string StoredFile::ToString() const {
  std::string out = common::StringPrintf(
      "file %s (card=%lld, tuple=%lldB) {", name_.c_str(),
      static_cast<long long>(cardinality_), static_cast<long long>(tuple_size_));
  std::vector<std::string> parts;
  for (const AttributeDef& a : attrs_) {
    std::string s = a.name;
    if (a.is_reference()) s += " ref " + a.ref_class;
    if (a.set_valued) s += " set";
    if (HasIndexOn(a.name)) s += " indexed";
    parts.push_back(s);
  }
  out += common::Join(parts, ", ") + "}";
  return out;
}

uint64_t Catalog::NextUid() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Catalog& Catalog::operator=(const Catalog& o) {
  if (this != &o) {
    order_ = o.order_;
    files_ = o.files_;
    // The assigned-to object keeps its own uid but its derived state is
    // now arbitrary — invalidate.
    BumpVersion();
  }
  return *this;
}

Catalog::Catalog(Catalog&& o) noexcept
    : order_(std::move(o.order_)),
      files_(std::move(o.files_)),
      uid_(o.uid_),
      version_(o.version()) {
  // The moved-from shell must not keep answering to the old identity.
  o.uid_ = NextUid();
}

Catalog& Catalog::operator=(Catalog&& o) noexcept {
  if (this != &o) {
    order_ = std::move(o.order_);
    files_ = std::move(o.files_);
    uid_ = o.uid_;
    version_.store(o.version(), std::memory_order_release);
    o.uid_ = NextUid();
  }
  return *this;
}

Status Catalog::AddFile(StoredFile file) {
  const std::string name = file.name();
  if (files_.count(name) > 0) {
    return Status::AlreadyExists("file '" + name + "' already in catalog");
  }
  order_.push_back(name);
  files_.emplace(name, std::move(file));
  BumpVersion();
  return Status::OK();
}

StoredFile* Catalog::MutableFile(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return nullptr;
  BumpVersion();
  return &it->second;
}

const StoredFile* Catalog::Find(const std::string& name) const {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

Result<const StoredFile*> Catalog::Require(const std::string& name) const {
  const StoredFile* f = Find(name);
  if (f == nullptr) {
    return Status::NotFound("file '" + name + "' not in catalog");
  }
  return f;
}

std::vector<std::string> Catalog::FileNames() const { return order_; }

int64_t Catalog::DistinctValues(const algebra::Attr& attr) const {
  const StoredFile* f = Find(attr.cls);
  if (f == nullptr) return 100;
  const AttributeDef* a = f->FindAttr(attr.name);
  if (a == nullptr) return 100;
  return std::max<int64_t>(1, a->distinct_values);
}

bool Catalog::HasIndexOn(const algebra::Attr& attr) const {
  const StoredFile* f = Find(attr.cls);
  return f != nullptr && f->HasIndexOn(attr.name);
}

std::string Catalog::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(order_.size());
  for (const std::string& name : order_) {
    parts.push_back(files_.at(name).ToString());
  }
  return common::Join(parts, "\n");
}

namespace {

double CmpSelectivity(const algebra::Predicate& p, const Catalog& catalog) {
  using algebra::CmpOp;
  const bool both_attrs = p.left().is_attr() && p.right().is_attr();
  switch (p.cmp_op()) {
    case CmpOp::kEq: {
      if (both_attrs) {
        int64_t dl = catalog.DistinctValues(p.left().attr);
        int64_t dr = catalog.DistinctValues(p.right().attr);
        return 1.0 / static_cast<double>(std::max<int64_t>({1, dl, dr}));
      }
      const algebra::Attr& a =
          p.left().is_attr() ? p.left().attr : p.right().attr;
      return 1.0 / static_cast<double>(catalog.DistinctValues(a));
    }
    case CmpOp::kNe: {
      const algebra::Attr& a =
          p.left().is_attr() ? p.left().attr : p.right().attr;
      double eq = 1.0 / static_cast<double>(catalog.DistinctValues(a));
      return 1.0 - eq;
    }
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe:
      return 1.0 / 3.0;
  }
  return 0.5;
}

}  // namespace

double EstimateSelectivity(const algebra::PredicateRef& pred,
                           const Catalog& catalog) {
  using Kind = algebra::Predicate::Kind;
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case Kind::kTrue:
      return 1.0;
    case Kind::kFalse:
      return 0.0;
    case Kind::kCmp:
      return CmpSelectivity(*pred, catalog);
    case Kind::kAnd: {
      double s = 1.0;
      for (const algebra::PredicateRef& c : pred->children()) {
        s *= EstimateSelectivity(c, catalog);
      }
      return s;
    }
    case Kind::kOr: {
      // Inclusion-exclusion under independence: 1 - prod(1 - s_i).
      double miss = 1.0;
      for (const algebra::PredicateRef& c : pred->children()) {
        miss *= 1.0 - EstimateSelectivity(c, catalog);
      }
      return 1.0 - miss;
    }
    case Kind::kNot:
      return 1.0 - EstimateSelectivity(pred->children()[0], catalog);
  }
  return 1.0;
}

}  // namespace prairie::catalog

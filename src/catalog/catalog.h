// Catalog: stored files (base relations / classes), their attributes,
// statistics and indices. The optimizer reads cardinalities, tuple sizes
// and index availability from here; the paper's experiments vary these
// per-class properties across query instances (§4.3).

#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/predicate.h"
#include "algebra/value.h"
#include "common/result.h"

namespace prairie::catalog {

/// \brief One attribute of a stored file.
struct AttributeDef {
  std::string name;
  algebra::ValueType type = algebra::ValueType::kInt;
  /// Estimated number of distinct values (for selectivity estimation).
  int64_t distinct_values = 100;
  /// For object-oriented schemas: non-empty means this attribute is a
  /// reference (OID) to an object of class `ref_class` — the MAT operator
  /// dereferences such attributes.
  std::string ref_class;
  /// For object-oriented schemas: true means the attribute is set-valued;
  /// the UNNEST operator flattens it.
  bool set_valued = false;
  /// Average set cardinality when set_valued.
  double avg_set_size = 1.0;

  bool is_reference() const { return !ref_class.empty(); }
};

/// \brief A secondary index over one attribute of a stored file.
struct IndexDef {
  enum class Kind { kBtree, kHash };
  std::string attr;
  Kind kind = Kind::kBtree;
};

/// \brief A stored file: a base relation (relational model) or a class
/// extent (object model).
class StoredFile {
 public:
  StoredFile() = default;
  StoredFile(std::string name, std::vector<AttributeDef> attrs,
             int64_t cardinality, int64_t tuple_size_bytes)
      : name_(std::move(name)),
        attrs_(std::move(attrs)),
        cardinality_(cardinality),
        tuple_size_(tuple_size_bytes) {}

  const std::string& name() const { return name_; }
  int64_t cardinality() const { return cardinality_; }
  int64_t tuple_size() const { return tuple_size_; }

  void set_cardinality(int64_t c) { cardinality_ = c; }
  void set_tuple_size(int64_t s) { tuple_size_ = s; }

  const std::vector<AttributeDef>& attrs() const { return attrs_; }
  const AttributeDef* FindAttr(const std::string& attr_name) const;
  common::Result<AttributeDef> RequireAttr(const std::string& name) const;

  void AddIndex(IndexDef index) { indices_.push_back(std::move(index)); }
  const std::vector<IndexDef>& indices() const { return indices_; }
  bool HasIndexOn(const std::string& attr_name) const;
  const IndexDef* FindIndexOn(const std::string& attr_name) const;

  /// This file's attributes as a qualified AttrList ("C1.a", "C1.b", ...).
  algebra::AttrList QualifiedAttrs() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDef> attrs_;
  int64_t cardinality_ = 0;
  int64_t tuple_size_ = 0;
  std::vector<IndexDef> indices_;
};

/// \brief Named collection of stored files plus statistics queries.
///
/// Every catalog carries two identity/staleness signals for caches keyed
/// on catalog state (the plan cache, DESIGN.md §8):
///  - `uid()`: a process-unique id assigned at construction. Copies get a
///    fresh uid (they can diverge independently); moves transfer the uid
///    (the moved-to object IS the same logical catalog).
///  - `version()`: a monotonically increasing counter bumped by every
///    mutation (AddFile, MutableFile, BumpVersion). Readers snapshot it
///    and treat any change as "everything derived from this catalog is
///    stale". The counter is atomic so concurrent bumps/reads are safe;
///    structural mutation itself is NOT thread-safe and must not race
///    with readers.
class Catalog {
 public:
  Catalog() : uid_(NextUid()) {}
  Catalog(const Catalog& o)
      : order_(o.order_), files_(o.files_), uid_(NextUid()) {}
  Catalog& operator=(const Catalog& o);
  Catalog(Catalog&& o) noexcept;
  Catalog& operator=(Catalog&& o) noexcept;

  common::Status AddFile(StoredFile file);

  const StoredFile* Find(const std::string& name) const;
  common::Result<const StoredFile*> Require(const std::string& name) const;

  /// Mutable access to a stored file for statistics/index updates; bumps
  /// the version (conservatively — even if the caller ends up writing
  /// nothing). Null when `name` is unknown.
  StoredFile* MutableFile(const std::string& name);

  /// Process-unique identity of this catalog object.
  uint64_t uid() const { return uid_; }

  /// Mutation epoch: bumped by AddFile/MutableFile/BumpVersion.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Explicitly invalidates everything derived from this catalog (e.g.
  /// after mutating statistics through a retained StoredFile pointer).
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  std::vector<std::string> FileNames() const;
  size_t size() const { return files_.size(); }

  /// Distinct-value count of `attr` if the class and attribute are known,
  /// otherwise a default of 100.
  int64_t DistinctValues(const algebra::Attr& attr) const;

  /// True if `attr.cls` is a catalog file with an index on `attr.name`.
  bool HasIndexOn(const algebra::Attr& attr) const;

  std::string ToString() const;

 private:
  static uint64_t NextUid();

  std::vector<std::string> order_;
  std::unordered_map<std::string, StoredFile> files_;
  uint64_t uid_ = 0;
  std::atomic<uint64_t> version_{0};
};

/// \brief Textbook selectivity estimation (System R style, paper §5 cites
/// Selinger et al.):
///  - attr = const        -> 1 / distinct(attr)
///  - attr = attr         -> 1 / max(distinct(l), distinct(r))
///  - range comparison    -> 1/3
///  - !=                  -> 1 - 1/distinct
///  - AND                 -> product, OR -> inclusion-exclusion, NOT -> 1-s
/// A null or TRUE predicate has selectivity 1.
double EstimateSelectivity(const algebra::PredicateRef& pred,
                           const Catalog& catalog);

}  // namespace prairie::catalog

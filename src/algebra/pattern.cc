#include "algebra/pattern.h"

#include "common/strings.h"

namespace prairie::algebra {

std::string PatNode::ToString(const Algebra& algebra) const {
  if (is_stream()) {
    std::string out = "?" + std::to_string(stream_var);
    if (desc_slot >= 0) out += ":D" + std::to_string(desc_slot + 1);
    return out;
  }
  std::string out = algebra.name(op);
  if (desc_slot >= 0) out += "[D" + std::to_string(desc_slot + 1) + "]";
  std::vector<std::string> parts;
  parts.reserve(children.size());
  for (const PatNodePtr& c : children) parts.push_back(c->ToString(algebra));
  out += "(" + common::Join(parts, ", ") + ")";
  return out;
}

bool PatNode::Same(const PatNode& o) const {
  if (kind != o.kind || op != o.op || stream_var != o.stream_var ||
      desc_slot != o.desc_slot || children.size() != o.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Same(*o.children[i])) return false;
  }
  return true;
}

}  // namespace prairie::algebra

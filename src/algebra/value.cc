#include "algebra/value.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "algebra/predicate.h"
#include "common/strings.h"

namespace prairie::algebra {

using common::Result;
using common::Status;

namespace {

/// Process-wide string pool behind Value::Str. Keys view into the pooled
/// strings themselves (shared_ptr<const string> payloads never move), so
/// the pool costs one allocation per distinct string.
InternedString PoolString(std::string s) {
  static std::mutex mu;
  static std::unordered_map<std::string_view, InternedString> pool;
  std::lock_guard<std::mutex> lock(mu);
  auto it = pool.find(std::string_view(s));
  if (it != pool.end()) return it->second;
  auto sp = std::make_shared<const std::string>(std::move(s));
  pool.emplace(std::string_view(*sp), sp);
  return sp;
}

}  // namespace

Value Value::Str(std::string s) {
  return Value(Repr(PoolString(std::move(s))));
}

bool Contains(const AttrList& list, const Attr& attr) {
  return std::find(list.begin(), list.end(), attr) != list.end();
}

AttrList UnionAttrs(const AttrList& a, const AttrList& b) {
  AttrList out = a;
  for (const Attr& attr : b) {
    if (!Contains(out, attr)) out.push_back(attr);
  }
  // Canonical (sorted) order: the same attribute set computed along
  // different rule-derivation paths must compare equal, or the memo would
  // fail to deduplicate logically identical expressions.
  std::sort(out.begin(), out.end());
  return out;
}

bool IsSubset(const AttrList& subset, const AttrList& superset) {
  for (const Attr& attr : subset) {
    if (!Contains(superset, attr)) return false;
  }
  return true;
}

bool SortSpec::Satisfies(const SortSpec& required) const {
  if (required.is_dont_care()) return true;
  if (required.keys.size() > keys.size()) return false;
  for (size_t i = 0; i < required.keys.size(); ++i) {
    if (!(keys[i] == required.keys[i])) return false;
  }
  return true;
}

uint64_t SortSpec::Hash() const {
  uint64_t h = 0x50a7;
  for (const Key& k : keys) {
    h = common::HashCombine(h, k.attr.Hash());
    h = common::HashMix(h, k.ascending);
  }
  return h;
}

std::string SortSpec::ToString() const {
  if (is_dont_care()) return "DONT_CARE";
  std::vector<std::string> parts;
  parts.reserve(keys.size());
  for (const Key& k : keys) {
    parts.push_back(k.attr.ToString() + (k.ascending ? " ASC" : " DESC"));
  }
  return "sorted(" + common::Join(parts, ", ") + ")";
}

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
    case ValueType::kSort:
      return "sortspec";
    case ValueType::kAttrs:
      return "attrs";
    case ValueType::kPred:
      return "predicate";
  }
  return "unknown";
}

Result<double> Value::ToReal() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kReal:
      return AsReal();
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               std::string(ValueTypeName(type())) +
                               " to real");
  }
}

Result<bool> Value::ToBool() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return AsBool();
    case ValueType::kInt:
      return AsInt() != 0;
    case ValueType::kReal:
      return AsReal() != 0.0;
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               std::string(ValueTypeName(type())) +
                               " to bool");
  }
}

bool Value::operator==(const Value& o) const {
  if (type() != o.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return AsBool() == o.AsBool();
    case ValueType::kInt:
      return AsInt() == o.AsInt();
    case ValueType::kReal:
      return AsReal() == o.AsReal();
    case ValueType::kString:
      // Strings come from one process-wide pool (Value::Str), so equal
      // contents share one pointer. Must stay in lockstep with Hash(),
      // which also identifies strings by pointer.
      return std::get<InternedString>(repr_) ==
             std::get<InternedString>(o.repr_);
    case ValueType::kSort: {
      const SharedSort& a = std::get<SharedSort>(repr_);
      const SharedSort& b = std::get<SharedSort>(o.repr_);
      return a == b || *a == *b;
    }
    case ValueType::kAttrs: {
      const SharedAttrs& a = std::get<SharedAttrs>(repr_);
      const SharedAttrs& b = std::get<SharedAttrs>(o.repr_);
      return a == b || *a == *b;
    }
    case ValueType::kPred: {
      return PredEquals(AsPred(), o.AsPred());
    }
  }
  return false;
}

uint64_t Value::Hash() const {
  uint64_t h = static_cast<uint64_t>(type()) * 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case ValueType::kNull:
      return h;
    case ValueType::kBool:
      return common::HashMix(h, AsBool());
    case ValueType::kInt:
      return common::HashMix(h, AsInt());
    case ValueType::kReal:
      return common::HashMix(h, AsReal());
    case ValueType::kString:
      // Strings are pooled (Value::Str), so equal values share one
      // representation and the pointer identifies the content.
      return common::HashMix(h, reinterpret_cast<uint64_t>(
                                    std::get<InternedString>(repr_).get()));
    case ValueType::kSort:
      return common::HashCombine(h, AsSort().Hash());
    case ValueType::kAttrs: {
      for (const Attr& a : AsAttrs()) h = common::HashCombine(h, a.Hash());
      return h;
    }
    case ValueType::kPred: {
      const PredicateRef& p = AsPred();
      return common::HashCombine(h, p == nullptr ? 0x7242 : p->Hash());
    }
  }
  return h;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kReal:
      return common::FormatDouble(AsReal());
    case ValueType::kString:
      return "\"" + AsString() + "\"";
    case ValueType::kSort:
      return AsSort().ToString();
    case ValueType::kAttrs: {
      std::vector<std::string> parts;
      for (const Attr& a : AsAttrs()) parts.push_back(a.ToString());
      return "[" + common::Join(parts, ", ") + "]";
    }
    case ValueType::kPred: {
      const PredicateRef& p = AsPred();
      return p == nullptr ? "TRUE" : p->ToString();
    }
  }
  return "?";
}

}  // namespace prairie::algebra

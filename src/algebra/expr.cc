#include "algebra/expr.h"

#include "algebra/descriptor_store.h"
#include "common/hash.h"
#include "common/strings.h"

namespace prairie::algebra {

ExprPtr Expr::MakeOp(OpId op, std::vector<ExprPtr> children,
                     Descriptor descriptor) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kOperation;
  e->op_ = op;
  e->children_ = std::move(children);
  e->descriptor_ = std::move(descriptor);
  return e;
}

ExprPtr Expr::MakeFile(std::string file_name, Descriptor descriptor) {
  auto e = ExprPtr(new Expr());
  e->kind_ = Kind::kFile;
  e->file_name_ = std::move(file_name);
  e->descriptor_ = std::move(descriptor);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = ExprPtr(new Expr());
  e->kind_ = kind_;
  e->op_ = op_;
  e->file_name_ = file_name_;
  e->descriptor_ = descriptor_;
  e->children_.reserve(children_.size());
  for (const ExprPtr& c : children_) e->children_.push_back(c->Clone());
  return e;
}

int Expr::NodeCount() const {
  int n = 1;
  for (const ExprPtr& c : children_) n += c->NodeCount();
  return n;
}

bool Expr::IsAccessPlan(const Algebra& algebra) const {
  if (is_file()) return true;
  if (!algebra.is_algorithm(op_)) return false;
  for (const ExprPtr& c : children_) {
    if (!c->IsAccessPlan(algebra)) return false;
  }
  return true;
}

bool Expr::IsLogical(const Algebra& algebra) const {
  if (is_file()) return true;
  if (algebra.is_algorithm(op_)) return false;
  for (const ExprPtr& c : children_) {
    if (!c->IsLogical(algebra)) return false;
  }
  return true;
}

std::string Expr::ToString(const Algebra& algebra) const {
  if (is_file()) return file_name_;
  std::vector<std::string> parts;
  parts.reserve(children_.size());
  for (const ExprPtr& c : children_) parts.push_back(c->ToString(algebra));
  return algebra.name(op_) + "(" + common::Join(parts, ", ") + ")";
}

void Expr::TreeStringRec(const Algebra& algebra, int depth,
                         std::string* out) const {
  out->append(static_cast<size_t>(2 * depth), ' ');
  if (is_file()) {
    *out += file_name_;
  } else {
    *out += algebra.name(op_);
  }
  std::string annotations = descriptor_.ToString();
  if (annotations != "{}") {
    *out += " ";
    *out += annotations;
  }
  *out += "\n";
  for (const ExprPtr& c : children_) {
    c->TreeStringRec(algebra, depth + 1, out);
  }
}

std::string Expr::TreeString(const Algebra& algebra) const {
  std::string out;
  TreeStringRec(algebra, 0, &out);
  return out;
}

bool Expr::Equals(const Expr& o) const {
  if (kind_ != o.kind_ || op_ != o.op_ || file_name_ != o.file_name_) {
    return false;
  }
  if (!(descriptor_ == o.descriptor_)) return false;
  if (children_.size() != o.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*o.children_[i])) return false;
  }
  return true;
}

uint64_t Expr::Hash() const {
  uint64_t h = common::HashMix(static_cast<uint64_t>(kind_), op_);
  h = common::HashMix(h, file_name_);
  h = common::HashCombine(h, descriptor_.Hash());
  for (const ExprPtr& c : children_) h = common::HashCombine(h, c->Hash());
  return h;
}

namespace {

// Self-delimiting little-endian field appends for the fingerprint
// serialization: every node contributes a tag plus fixed-width integers
// (and a length-prefixed name for leaves), so no byte sequence of one tree
// is a prefix of another's and byte equality <=> tree equality.
void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

uint64_t Expr::Fingerprint(DescriptorStore* store, std::string* key) const {
  const size_t start = key->size();
  // Iterative preorder walk: rule-generated trees can be deep (N-way
  // linear joins), and the serialization is order-dependent either way.
  std::vector<const Expr*> stack{this};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    const DescriptorId desc = store->Intern(e->descriptor());
    if (e->is_file()) {
      key->push_back('F');
      AppendU32(static_cast<uint32_t>(e->file_name_.size()), key);
      key->append(e->file_name_);
      AppendU32(static_cast<uint32_t>(desc), key);
      continue;
    }
    key->push_back('O');
    AppendU32(static_cast<uint32_t>(e->op_), key);
    AppendU32(static_cast<uint32_t>(e->children_.size()), key);
    AppendU32(static_cast<uint32_t>(desc), key);
    for (auto it = e->children_.rbegin(); it != e->children_.rend(); ++it) {
      stack.push_back(it->get());
    }
  }
  return common::HashMix(
      uint64_t{0x9a17c3e5u},
      std::string_view(key->data() + start, key->size() - start));
}

}  // namespace prairie::algebra

#include "algebra/property.h"

#include "common/strings.h"

namespace prairie::algebra {

using common::Result;
using common::Status;

std::string PropertyDecl::ToString() const {
  std::string out = "property " + name + " : ";
  out += is_cost ? "cost" : std::string(ValueTypeName(type));
  return out;
}

Status PropertySchema::Add(PropertyDecl decl) {
  if (by_name_.count(decl.name) > 0) {
    return Status::AlreadyExists("duplicate property '" + decl.name + "'");
  }
  by_name_[decl.name] = static_cast<PropertyId>(decls_.size());
  decls_.push_back(std::move(decl));
  return Status::OK();
}

Status PropertySchema::Add(std::string name, ValueType type, bool is_cost) {
  return Add(PropertyDecl{std::move(name), type, is_cost});
}

std::optional<PropertyId> PropertySchema::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

Result<PropertyId> PropertySchema::Require(const std::string& name) const {
  auto id = Find(name);
  if (!id.has_value()) {
    return Status::NotFound("unknown property '" + name + "'");
  }
  return *id;
}

std::string PropertySchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(decls_.size());
  for (const PropertyDecl& d : decls_) parts.push_back(d.ToString());
  return common::Join(parts, ";\n") + (decls_.empty() ? "" : ";");
}

Result<Value> Descriptor::Get(const std::string& name) const {
  if (schema_ == nullptr) return Status::Internal("descriptor has no schema");
  PRAIRIE_ASSIGN_OR_RETURN(PropertyId id, schema_->Require(name));
  return values_[id];
}

Status Descriptor::Set(const std::string& name, Value v) {
  if (schema_ == nullptr) return Status::Internal("descriptor has no schema");
  PRAIRIE_ASSIGN_OR_RETURN(PropertyId id, schema_->Require(name));
  return SetChecked(id, std::move(v));
}

Status Descriptor::SetChecked(PropertyId id, Value v) {
  const PropertyDecl& decl = schema_->decl(id);
  if (!v.is_null() && v.type() != decl.type) {
    // Ints silently widen to real-typed properties (covers cost arithmetic).
    if (decl.type == ValueType::kReal && v.type() == ValueType::kInt) {
      values_[id] = Value::Real(static_cast<double>(v.AsInt()));
      return Status::OK();
    }
    return Status::TypeError("property '" + decl.name + "' expects " +
                             std::string(ValueTypeName(decl.type)) +
                             ", got " + std::string(ValueTypeName(v.type())));
  }
  values_[id] = std::move(v);
  return Status::OK();
}

bool Descriptor::operator==(const Descriptor& o) const {
  if (schema_ != o.schema_) return false;
  return values_ == o.values_;
}

uint64_t Descriptor::Hash() const {
  uint64_t h = 0xd35c;
  for (const Value& v : values_) h = common::HashCombine(h, v.Hash());
  return h;
}

std::string Descriptor::ToString() const {
  if (schema_ == nullptr) return "{}";
  std::vector<std::string> parts;
  for (int i = 0; i < schema_->size(); ++i) {
    if (values_[i].is_null()) continue;
    parts.push_back(schema_->decl(i).name + ": " + values_[i].ToString());
  }
  return "{" + common::Join(parts, ", ") + "}";
}

Descriptor PropertySlice::Project(const Descriptor& full) const {
  Descriptor out(full.schema());
  for (PropertyId id : ids) out.SetUnchecked(id, full.Get(id));
  return out;
}

uint64_t PropertySlice::HashOf(const Descriptor& d) const {
  uint64_t h = 0x51ce;
  for (PropertyId id : ids) h = common::HashCombine(h, d.Get(id).Hash());
  return h;
}

bool PropertySlice::EqualOn(const Descriptor& a, const Descriptor& b) const {
  for (PropertyId id : ids) {
    if (!(a.Get(id) == b.Get(id))) return false;
  }
  return true;
}

}  // namespace prairie::algebra

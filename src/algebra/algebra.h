// The Algebra registry: the closed set of database operations (paper §1,
// goal 1). All abstract operators and concrete algorithms are first-class
// and registered here; only registered operations may appear in rules.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/property.h"
#include "common/result.h"

namespace prairie::algebra {

using OpId = int;

/// \brief Metadata for one registered operation (operator or algorithm).
struct OpInfo {
  std::string name;
  int arity = 0;  ///< Number of essential (stream/file) parameters.
  bool is_algorithm = false;
};

/// \brief Registry of operators, algorithms and the descriptor property
/// schema of one optimizer specification.
///
/// By convention (paper §2.1) operators are ALL-CAPS ("JOIN") and algorithms
/// are Capitalized ("Nested_loops"); the registry does not enforce the
/// convention but printers rely on registered names. The special "Null"
/// algorithm (paper §2.5) is pre-registered in every Algebra.
class Algebra {
 public:
  Algebra();

  common::Result<OpId> RegisterOperator(std::string name, int arity);
  common::Result<OpId> RegisterAlgorithm(std::string name, int arity);

  std::optional<OpId> Find(const std::string& name) const;
  common::Result<OpId> Require(const std::string& name) const;

  const OpInfo& info(OpId id) const { return ops_[id]; }
  const std::string& name(OpId id) const { return ops_[id].name; }
  int arity(OpId id) const { return ops_[id].arity; }
  bool is_algorithm(OpId id) const { return ops_[id].is_algorithm; }
  int size() const { return static_cast<int>(ops_.size()); }

  /// Id of the pre-registered "Null" pass-through algorithm.
  OpId null_alg() const { return null_alg_; }

  PropertySchema* mutable_properties() { return &properties_; }
  const PropertySchema& properties() const { return properties_; }

  /// All registered operator ids (non-algorithms), in registration order.
  std::vector<OpId> Operators() const;
  /// All registered algorithm ids, in registration order.
  std::vector<OpId> Algorithms() const;

  std::string ToString() const;

 private:
  common::Result<OpId> Register(std::string name, int arity,
                                bool is_algorithm);

  std::vector<OpInfo> ops_;
  std::unordered_map<std::string, OpId> by_name_;
  PropertySchema properties_;
  OpId null_alg_ = -1;
};

}  // namespace prairie::algebra

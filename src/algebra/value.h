// Value: the tagged union stored in descriptor annotations.
//
// The Prairie model (paper §2.1) annotates every operator-tree node with a
// descriptor, a list of <property, value> pairs. Properties range over
// booleans, integers, reals (incl. costs), strings, sort specifications
// (tuple orders), attribute lists and predicates; Value covers all of these.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/result.h"

namespace prairie::algebra {

class Predicate;
using PredicateRef = std::shared_ptr<const Predicate>;

/// \brief A qualified attribute reference, e.g. "C1.a3".
struct Attr {
  std::string cls;   ///< Class / relation (or range-variable) name.
  std::string name;  ///< Attribute name within the class.

  std::string ToString() const { return cls + "." + name; }
  bool operator==(const Attr& o) const {
    return cls == o.cls && name == o.name;
  }
  bool operator<(const Attr& o) const {
    return cls != o.cls ? cls < o.cls : name < o.name;
  }
  uint64_t Hash() const {
    return common::HashMix(common::HashMix(0, cls), name);
  }
};

using AttrList = std::vector<Attr>;

/// True if `list` contains `attr`.
bool Contains(const AttrList& list, const Attr& attr);

/// Set-union of two attribute lists, preserving first-occurrence order.
AttrList UnionAttrs(const AttrList& a, const AttrList& b);

/// True if every attribute of `subset` occurs in `superset`.
bool IsSubset(const AttrList& subset, const AttrList& superset);

/// \brief A tuple-order specification (the paper's `tuple_order` property).
///
/// DONT_CARE means no particular order is required or produced. A sorted
/// spec lists sort keys major-to-minor, each ascending or descending.
struct SortSpec {
  struct Key {
    Attr attr;
    bool ascending = true;
    bool operator==(const Key& o) const {
      return attr == o.attr && ascending == o.ascending;
    }
  };

  std::vector<Key> keys;  ///< Empty means DONT_CARE.

  static SortSpec DontCare() { return SortSpec{}; }
  static SortSpec On(Attr attr, bool ascending = true) {
    SortSpec s;
    s.keys.push_back(Key{std::move(attr), ascending});
    return s;
  }

  bool is_dont_care() const { return keys.empty(); }

  /// True if a stream ordered by `this` also satisfies `required`:
  /// `required.keys` must be a prefix of `this->keys` (or DONT_CARE).
  bool Satisfies(const SortSpec& required) const;

  bool operator==(const SortSpec& o) const { return keys == o.keys; }
  uint64_t Hash() const;
  std::string ToString() const;
};

/// Runtime type of a Value.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,
  kReal,
  kString,
  kSort,
  kAttrs,
  kPred,
};

std::string_view ValueTypeName(ValueType t);

/// Interned (hash-consed) string payload. Value::Str pools string contents
/// process-wide, so equal strings share one allocation and string equality
/// inside descriptors is usually a pointer compare.
using InternedString = std::shared_ptr<const std::string>;

/// Sort specs and attribute lists are immutable once wrapped in a Value, so
/// copies (descriptor copies are the engine's hottest operation) share the
/// payload instead of deep-copying vectors of attribute strings.
using SharedSort = std::shared_ptr<const SortSpec>;
using SharedAttrs = std::shared_ptr<const AttrList>;

/// \brief A dynamically typed value held by a descriptor annotation.
class Value {
 public:
  Value() = default;  ///< Null value.

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Real(double d) { return Value(Repr(d)); }
  static Value Str(std::string s);  ///< Interns `s` in the global pool.
  static Value Sort(SortSpec s) {
    return Value(Repr(std::make_shared<const SortSpec>(std::move(s))));
  }
  static Value Attrs(AttrList a) {
    return Value(Repr(std::make_shared<const AttrList>(std::move(a))));
  }
  static Value Pred(PredicateRef p) { return Value(Repr(std::move(p))); }

  ValueType type() const { return static_cast<ValueType>(repr_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  bool AsBool() const { return std::get<bool>(repr_); }
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsReal() const { return std::get<double>(repr_); }
  const std::string& AsString() const {
    return *std::get<InternedString>(repr_);
  }
  const SortSpec& AsSort() const { return *std::get<SharedSort>(repr_); }
  const AttrList& AsAttrs() const { return *std::get<SharedAttrs>(repr_); }
  const PredicateRef& AsPred() const { return std::get<PredicateRef>(repr_); }

  /// Numeric coercion: Int and Real convert to double; anything else fails.
  common::Result<double> ToReal() const;

  /// Truthiness: Bool as-is; Null is false; numerics non-zero. Anything
  /// else is a type error.
  common::Result<bool> ToBool() const;

  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

  uint64_t Hash() const;
  std::string ToString() const;

 private:
  // The alternative order must track ValueType (type() is repr_.index());
  // index 4 (kString) holds the interned pointer, not a loose std::string.
  using Repr = std::variant<std::monostate, bool, int64_t, double,
                            InternedString, SharedSort, SharedAttrs,
                            PredicateRef>;
  explicit Value(Repr r) : repr_(std::move(r)) {}
  Repr repr_;
};

}  // namespace prairie::algebra

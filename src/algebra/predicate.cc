#include "algebra/predicate.h"

#include <algorithm>

#include "common/strings.h"

namespace prairie::algebra {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

uint64_t Scalar::Hash() const {
  uint64_t h = v.index() * 0xc2b2ae3d27d4eb4fULL;
  switch (v.index()) {
    case 1:
      return common::HashMix(h, std::get<bool>(v));
    case 2:
      return common::HashMix(h, std::get<int64_t>(v));
    case 3:
      return common::HashMix(h, std::get<double>(v));
    case 4:
      return common::HashMix(h, std::get<std::string>(v));
    default:
      return h;
  }
}

std::string Scalar::ToString() const {
  switch (v.index()) {
    case 1:
      return std::get<bool>(v) ? "true" : "false";
    case 2:
      return std::to_string(std::get<int64_t>(v));
    case 3:
      return common::FormatDouble(std::get<double>(v));
    case 4:
      return "'" + std::get<std::string>(v) + "'";
    default:
      return "null";
  }
}

bool Term::operator==(const Term& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kAttr:
      return attr == o.attr;
    case Kind::kConst:
      return scalar == o.scalar;
    case Kind::kParam:
      // Ordinal identity only; the payload scalar is a canonicalization
      // scratch slot and must not affect equality (see predicate.h).
      return param == o.param;
  }
  return false;
}

uint64_t Term::Hash() const {
  uint64_t h = static_cast<uint64_t>(kind) + 0x1357;
  switch (kind) {
    case Kind::kAttr:
      return common::HashCombine(h, attr.Hash());
    case Kind::kConst:
      return common::HashCombine(h, scalar.Hash());
    case Kind::kParam:
      // Kind-only: blind to both ordinal and payload so conjunct sorting
      // and descriptor interning treat all markers alike (see predicate.h).
      return h;
  }
  return h;
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kAttr:
      return attr.ToString();
    case Kind::kParam:
      return "?" + std::to_string(param);
    default:
      return scalar.ToString();
  }
}

PredicateRef Predicate::True() {
  static const PredicateRef kTrue = [] {
    auto p = std::shared_ptr<Predicate>(new Predicate());
    p->kind_ = Kind::kTrue;
    return p;
  }();
  return kTrue;
}

PredicateRef Predicate::False() {
  static const PredicateRef kFalse = [] {
    auto p = std::shared_ptr<Predicate>(new Predicate());
    p->kind_ = Kind::kFalse;
    return p;
  }();
  return kFalse;
}

PredicateRef Predicate::Cmp(CmpOp op, Term left, Term right) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCmp;
  p->cmp_op_ = op;
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  return p;
}

PredicateRef Predicate::EqConst(Attr attr, Scalar constant) {
  return Cmp(CmpOp::kEq, Term::MakeAttr(std::move(attr)),
             Term::MakeConst(std::move(constant)));
}

PredicateRef Predicate::EqAttrs(Attr left, Attr right) {
  return Cmp(CmpOp::kEq, Term::MakeAttr(std::move(left)),
             Term::MakeAttr(std::move(right)));
}

PredicateRef Predicate::And(std::vector<PredicateRef> children) {
  std::vector<PredicateRef> flat;
  for (PredicateRef& c : children) {
    if (c == nullptr || c->is_true()) continue;
    if (c->kind() == Kind::kAnd) {
      for (const PredicateRef& g : c->children()) flat.push_back(g);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return True();
  if (flat.size() == 1) return flat[0];
  // Canonical conjunct order (by structural hash): conjunctions assembled
  // along different rule-derivation paths must compare equal so the memo
  // deduplicates the expressions that carry them.
  std::stable_sort(flat.begin(), flat.end(),
                   [](const PredicateRef& a, const PredicateRef& b) {
                     return a->Hash() < b->Hash();
                   });
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->children_ = std::move(flat);
  return p;
}

PredicateRef Predicate::Or(std::vector<PredicateRef> children) {
  if (children.empty()) return False();
  if (children.size() == 1) return children[0];
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->children_ = std::move(children);
  return p;
}

PredicateRef Predicate::Not(PredicateRef child) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->children_.push_back(std::move(child));
  return p;
}

AttrList Predicate::ReferencedAttrs() const {
  AttrList out;
  switch (kind_) {
    case Kind::kCmp:
      if (left_.is_attr() && !Contains(out, left_.attr)) {
        out.push_back(left_.attr);
      }
      if (right_.is_attr() && !Contains(out, right_.attr)) {
        out.push_back(right_.attr);
      }
      break;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const PredicateRef& c : children_) {
        out = UnionAttrs(out, c->ReferencedAttrs());
      }
      break;
    default:
      break;
  }
  return out;
}

std::vector<std::string> Predicate::ReferencedClasses() const {
  std::vector<std::string> out;
  for (const Attr& a : ReferencedAttrs()) {
    if (std::find(out.begin(), out.end(), a.cls) == out.end()) {
      out.push_back(a.cls);
    }
  }
  return out;
}

std::vector<PredicateRef> Predicate::Conjuncts() const {
  std::vector<PredicateRef> out;
  if (kind_ == Kind::kTrue) return out;
  if (kind_ == Kind::kAnd) {
    for (const PredicateRef& c : children_) {
      auto sub = c->Conjuncts();
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  // A non-AND predicate is its own conjunct; rebuild a ref to this node.
  // Conjuncts() is only called through PredicateRef, so shared_from_this
  // semantics are emulated by cloning comparison leaves.
  if (kind_ == Kind::kCmp) {
    out.push_back(Cmp(cmp_op_, left_, right_));
  } else if (kind_ == Kind::kFalse) {
    out.push_back(False());
  } else if (kind_ == Kind::kNot) {
    out.push_back(Not(children_[0]));
  } else if (kind_ == Kind::kOr) {
    out.push_back(Or(children_));
  }
  return out;
}

bool Predicate::IsEquiJoin() const {
  return kind_ == Kind::kCmp && cmp_op_ == CmpOp::kEq && left_.is_attr() &&
         right_.is_attr();
}

bool Predicate::RefersOnlyTo(const std::vector<std::string>& classes) const {
  for (const Attr& a : ReferencedAttrs()) {
    if (std::find(classes.begin(), classes.end(), a.cls) == classes.end()) {
      return false;
    }
  }
  return true;
}

bool Predicate::Equals(const Predicate& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kCmp:
      return cmp_op_ == o.cmp_op_ && left_ == o.left_ && right_ == o.right_;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot: {
      if (children_.size() != o.children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (!children_[i]->Equals(*o.children_[i])) return false;
      }
      return true;
    }
  }
  return false;
}

uint64_t Predicate::Hash() const {
  const uint64_t cached = hash_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  uint64_t h = static_cast<uint64_t>(kind_) * 0xff51afd7ed558ccdULL;
  switch (kind_) {
    case Kind::kCmp:
      h = common::HashMix(h, static_cast<int>(cmp_op_));
      h = common::HashCombine(h, left_.Hash());
      h = common::HashCombine(h, right_.Hash());
      break;
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kNot:
      for (const PredicateRef& c : children_) {
        h = common::HashCombine(h, c->Hash());
      }
      break;
    default:
      break;
  }
  if (h == 0) h = 0x9e3779b9ULL;  // 0 means "not yet computed".
  hash_.store(h, std::memory_order_relaxed);
  return h;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kFalse:
      return "FALSE";
    case Kind::kCmp:
      return left_.ToString() + " " + std::string(CmpOpName(cmp_op_)) + " " +
             right_.ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const PredicateRef& c : children_) {
        parts.push_back("(" + c->ToString() + ")");
      }
      return common::Join(parts, kind_ == Kind::kAnd ? " AND " : " OR ");
    }
    case Kind::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
  }
  return "?";
}

bool PredEquals(const PredicateRef& a, const PredicateRef& b) {
  if (a.get() == b.get()) return true;  // Shared trees: one pointer compare.
  const Predicate& pa = a ? *a : *Predicate::True();
  const Predicate& pb = b ? *b : *Predicate::True();
  return pa.Equals(pb);
}

PredicateRef PredAnd(const PredicateRef& a, const PredicateRef& b) {
  std::vector<PredicateRef> parts;
  if (a) parts.push_back(a);
  if (b) parts.push_back(b);
  return Predicate::And(std::move(parts));
}

}  // namespace prairie::algebra

// Predicates: selection and join conditions carried in descriptors.
//
// Predicates are immutable trees shared via PredicateRef. Constants inside
// predicates are scalars (bool/int/real/string); structured Values never
// nest inside predicates, which keeps the two types acyclic.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "algebra/value.h"
#include "common/result.h"

namespace prairie::algebra {

/// Comparison operators usable in predicate leaves.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CmpOpName(CmpOp op);

/// \brief A scalar constant inside a predicate.
struct Scalar {
  std::variant<std::monostate, bool, int64_t, double, std::string> v;

  static Scalar Null() { return Scalar{}; }
  static Scalar Bool(bool b) { return Scalar{b}; }
  static Scalar Int(int64_t i) { return Scalar{i}; }
  static Scalar Real(double d) { return Scalar{d}; }
  static Scalar Str(std::string s) { return Scalar{std::move(s)}; }

  bool operator==(const Scalar& o) const { return v == o.v; }
  uint64_t Hash() const;
  std::string ToString() const;
};

/// \brief One side of a comparison: an attribute, a constant, or a
/// parameter marker.
///
/// Parameter markers (kParam) stand where a literal constant was stripped
/// by the plan cache's canonicalization pass (algebra/param.h). Their Hash
/// deliberately covers the kind ONLY — not the ordinal and not the scalar
/// payload — so Predicate::And's hash-ordered conjunct sort is blind to
/// which constant (and which ordinal) a marker stands for: queries that
/// differ only in literals canonicalize to byte-identical skeletons.
/// Equality does compare the ordinal (rebinding must tell markers apart);
/// the scalar slot may carry a transient payload during canonicalization
/// and is ignored by both Hash and equality.
struct Term {
  enum class Kind { kAttr, kConst, kParam };
  Kind kind = Kind::kConst;
  Attr attr;      ///< Valid when kind == kAttr.
  Scalar scalar;  ///< Valid when kind == kConst (payload for kParam).
  int32_t param = -1;  ///< Ordinal when kind == kParam (-1 = unassigned).

  static Term MakeAttr(Attr a) {
    Term t;
    t.kind = Kind::kAttr;
    t.attr = std::move(a);
    return t;
  }
  static Term MakeConst(Scalar s) {
    Term t;
    t.kind = Kind::kConst;
    t.scalar = std::move(s);
    return t;
  }
  static Term MakeParam(int32_t ordinal, Scalar payload = Scalar::Null()) {
    Term t;
    t.kind = Kind::kParam;
    t.param = ordinal;
    t.scalar = std::move(payload);
    return t;
  }

  bool is_attr() const { return kind == Kind::kAttr; }
  bool is_param() const { return kind == Kind::kParam; }
  bool operator==(const Term& o) const;
  uint64_t Hash() const;
  std::string ToString() const;
};

/// \brief An immutable boolean expression tree over attribute comparisons.
class Predicate {
 public:
  enum class Kind { kTrue, kFalse, kCmp, kAnd, kOr, kNot };

  static PredicateRef True();
  static PredicateRef False();
  static PredicateRef Cmp(CmpOp op, Term left, Term right);
  /// Convenience: attr = constant.
  static PredicateRef EqConst(Attr attr, Scalar constant);
  /// Convenience: attr = attr (an equi-join predicate).
  static PredicateRef EqAttrs(Attr left, Attr right);
  /// Conjunction; flattens nested ANDs and drops TRUE children. An empty
  /// list yields TRUE.
  static PredicateRef And(std::vector<PredicateRef> children);
  static PredicateRef Or(std::vector<PredicateRef> children);
  static PredicateRef Not(PredicateRef child);

  Kind kind() const { return kind_; }
  bool is_true() const { return kind_ == Kind::kTrue; }
  bool is_false() const { return kind_ == Kind::kFalse; }

  CmpOp cmp_op() const { return cmp_op_; }
  const Term& left() const { return left_; }
  const Term& right() const { return right_; }
  const std::vector<PredicateRef>& children() const { return children_; }

  /// All attributes referenced anywhere in the tree (first-occurrence order).
  AttrList ReferencedAttrs() const;

  /// All class / range-variable names referenced.
  std::vector<std::string> ReferencedClasses() const;

  /// Splits a top-level conjunction into its conjuncts (a non-AND predicate
  /// is its own single conjunct; TRUE yields an empty list).
  std::vector<PredicateRef> Conjuncts() const;

  /// True for a single attr-op-attr comparison with CmpOp::kEq.
  bool IsEquiJoin() const;

  /// True if every referenced attribute belongs to one of `classes`.
  bool RefersOnlyTo(const std::vector<std::string>& classes) const;

  bool Equals(const Predicate& o) const;
  uint64_t Hash() const;
  std::string ToString() const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  CmpOp cmp_op_ = CmpOp::kEq;
  Term left_, right_;
  std::vector<PredicateRef> children_;
  // Lazily cached Hash(). Atomic because immutable predicate trees are
  // shared across batch-optimizer threads, which may race to fill the
  // cache; both writers store the same value, so relaxed ordering is fine.
  mutable std::atomic<uint64_t> hash_{0};
};

/// Structural equality that treats null refs as TRUE.
bool PredEquals(const PredicateRef& a, const PredicateRef& b);

/// Conjunction of two possibly-null predicate refs.
PredicateRef PredAnd(const PredicateRef& a, const PredicateRef& b);

}  // namespace prairie::algebra

// Rule-side patterns: operator trees with stream variables.
//
// Both Prairie rules (core/) and Volcano rules (volcano/) describe their
// left- and right-hand sides as patterns over the algebra: interior nodes
// name operations, leaves are stream variables ?1, ?2, ... Every node is
// associated with a *descriptor slot* (the D1..Dn of the paper's rule
// notation, 0-based here).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "common/result.h"

namespace prairie::algebra {

struct PatNode;
using PatNodePtr = std::unique_ptr<PatNode>;

/// \brief One node of a rule pattern.
struct PatNode {
  enum class Kind {
    kOp,      ///< An operation (operator or algorithm) with children.
    kStream,  ///< A stream variable ?k matching any input expression.
  };

  Kind kind = Kind::kStream;
  OpId op = -1;         ///< Valid when kind == kOp.
  int stream_var = 0;   ///< 1-based variable number, valid when kStream.
  int desc_slot = -1;   ///< Descriptor slot (0-based D-index) of this node.
  std::vector<PatNodePtr> children;

  static PatNodePtr Stream(int var, int desc_slot) {
    auto n = std::make_unique<PatNode>();
    n->kind = Kind::kStream;
    n->stream_var = var;
    n->desc_slot = desc_slot;
    return n;
  }

  static PatNodePtr Op(OpId op, int desc_slot,
                       std::vector<PatNodePtr> children) {
    auto n = std::make_unique<PatNode>();
    n->kind = Kind::kOp;
    n->op = op;
    n->desc_slot = desc_slot;
    n->children = std::move(children);
    return n;
  }

  bool is_stream() const { return kind == Kind::kStream; }

  PatNodePtr Clone() const {
    auto n = std::make_unique<PatNode>();
    n->kind = kind;
    n->op = op;
    n->stream_var = stream_var;
    n->desc_slot = desc_slot;
    n->children.reserve(children.size());
    for (const PatNodePtr& c : children) n->children.push_back(c->Clone());
    return n;
  }

  /// Number of pattern nodes (operations + stream leaves).
  int NodeCount() const {
    int n = 1;
    for (const PatNodePtr& c : children) n += c->NodeCount();
    return n;
  }

  /// Highest stream variable number in the subtree (0 if none).
  int MaxStreamVar() const {
    int v = is_stream() ? stream_var : 0;
    for (const PatNodePtr& c : children) {
      int cv = c->MaxStreamVar();
      if (cv > v) v = cv;
    }
    return v;
  }

  /// Highest descriptor slot in the subtree (-1 if none set).
  int MaxDescSlot() const {
    int v = desc_slot;
    for (const PatNodePtr& c : children) {
      int cv = c->MaxDescSlot();
      if (cv > v) v = cv;
    }
    return v;
  }

  /// Renders like the paper: "JOIN[D5](JOIN[D4](?1, ?2), ?3)". Slots are
  /// printed 1-based to match the D-numbering convention.
  std::string ToString(const Algebra& algebra) const;

  /// Structural equality (ops, stream vars and slots).
  bool Same(const PatNode& o) const;
};

}  // namespace prairie::algebra

// Parameter extraction: canonicalizing queries into constant-stripped
// skeletons for the parameterized plan cache (DESIGN.md §8).
//
// ParameterizeQuery walks an operator tree and replaces every literal
// constant compared against an attribute with an ordinal parameter marker
// (Term::Kind::kParam), emitting a *skeleton* tree plus the ordered vector
// of stripped constants. Queries that differ only in such literals
// canonicalize to structurally identical skeletons — and therefore to
// byte-identical Expr::Fingerprint keys — because marker hashes are blind
// to both the constant and the ordinal (see predicate.h), which keeps
// Predicate::And's hash-ordered conjunct sort constant-independent.
//
// The reverse direction, BindQuery / BindPredicate, substitutes constants
// back into markers and re-canonicalizes conjunct order, so a bound
// skeleton is structurally identical to the same query built from scratch.

#pragma once

#include <vector>

#include "algebra/expr.h"
#include "algebra/predicate.h"

namespace prairie::algebra {

/// \brief One stripped constant: the comparison it sat in and its value.
struct ParamSlot {
  CmpOp op = CmpOp::kEq;  ///< Comparison operator of the stripped leaf.
  Attr attr;              ///< Attribute on the other side of the compare.
  bool const_on_left = false;  ///< True when the constant was the left term.
  Scalar value;                ///< The stripped constant.
};

/// \brief A query split into a constant-free skeleton plus its constants.
struct ParameterizedQuery {
  /// Skeleton tree with markers in place of constants; null when the query
  /// has no strippable constants (callers fall back to exact matching).
  ExprPtr skeleton;
  /// Stripped constants ordered by marker ordinal (slots[k] binds ?k).
  std::vector<ParamSlot> slots;
};

/// Canonicalizes `query` into a skeleton + parameter vector. Only
/// attribute-versus-constant comparison leaves are stripped (both-attribute
/// joins, both-constant comparisons, and null scalars stay verbatim, so any
/// residual literal is part of the skeleton key itself). Ordinals follow a
/// deterministic walk: tree preorder, descriptor properties in schema
/// order, predicate preorder after conjunct canonicalization.
ParameterizedQuery ParameterizeQuery(const Expr& query);

/// Replaces every parameter marker in `pred` with values[ordinal],
/// re-canonicalizing conjunctions (the constant-sensitive hash order a
/// freshly built predicate would have). Returns null if a marker's ordinal
/// falls outside `values`. Marker-free (sub)trees are shared, not copied.
PredicateRef BindPredicate(const PredicateRef& pred,
                           const std::vector<Scalar>& values);

/// Binds `values` into a fresh clone of `skeleton`. Returns null if any
/// marker's ordinal falls outside `values`.
ExprPtr BindQuery(const Expr& skeleton, const std::vector<Scalar>& values);

/// \brief Matches physical-plan constants back to parameter slots when the
/// plan cache parameterizes a winning plan at insert time.
///
/// A plan constant is attributed to the slot with the same comparison shape
/// (operator, attribute, side) and the same value. If two slots are
/// indistinguishable under that key the match is ambiguous and the caller
/// must fall back to exact-only caching — binding the wrong ordinal could
/// swap constants between predicates.
class SlotMatcher {
 public:
  explicit SlotMatcher(const std::vector<ParamSlot>& slots);

  /// True when some pair of slots shares a lookup key.
  bool ambiguous() const { return ambiguous_; }

  /// Ordinal of the slot matching this comparison leaf, or -1.
  int Find(CmpOp op, const Attr& attr, bool const_on_left,
           const Scalar& value) const;

 private:
  const std::vector<ParamSlot>& slots_;
  bool ambiguous_ = false;
};

/// Rewrites every attribute-versus-constant comparison in a plan predicate
/// into its parameter marker per `matcher`, setting (*used)[ordinal] for
/// each rewrite. Comparison shapes that strip nothing at query time
/// (attr-attr, const-const, null scalars) pass through verbatim. Sets *ok
/// to false and returns null when a constant matches no slot or the
/// matcher is ambiguous — the plan's constants cannot be proven to descend
/// from the query's, so the caller must not rebind it.
PredicateRef ParameterizePredicate(const PredicateRef& pred,
                                   const SlotMatcher& matcher,
                                   std::vector<bool>* used, bool* ok);

}  // namespace prairie::algebra

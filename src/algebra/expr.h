// Operator trees and access plans (paper §2.1).
//
// An Expr is a rooted tree whose interior nodes are database operations
// (operators or algorithms) and whose leaves are stored files; every node
// carries a descriptor. An operator tree whose interior nodes are all
// algorithms is an *access plan*.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/algebra.h"
#include "algebra/property.h"

namespace prairie::algebra {

class DescriptorStore;

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief One node of an operator tree / access plan.
class Expr {
 public:
  enum class Kind {
    kOperation,  ///< Interior node: an operator or algorithm (OpId).
    kFile,       ///< Leaf: a stored file (relation or class).
  };

  /// Creates an interior node; children become the essential parameters.
  static ExprPtr MakeOp(OpId op, std::vector<ExprPtr> children,
                        Descriptor descriptor);

  /// Creates a stored-file leaf. The descriptor typically carries catalog
  /// annotations (cardinality, tuple size, attribute list, ...).
  static ExprPtr MakeFile(std::string file_name, Descriptor descriptor);

  Kind kind() const { return kind_; }
  bool is_file() const { return kind_ == Kind::kFile; }

  OpId op() const { return op_; }
  const std::string& file_name() const { return file_name_; }

  const std::vector<ExprPtr>& children() const { return children_; }
  std::vector<ExprPtr>* mutable_children() { return &children_; }
  const Expr& child(size_t i) const { return *children_[i]; }
  size_t num_children() const { return children_.size(); }

  const Descriptor& descriptor() const { return descriptor_; }
  Descriptor* mutable_descriptor() { return &descriptor_; }

  /// Deep copy.
  ExprPtr Clone() const;

  /// Total node count (including leaves).
  int NodeCount() const;

  /// True if every interior node is an algorithm (the tree is an access
  /// plan, paper §2.1).
  bool IsAccessPlan(const Algebra& algebra) const;

  /// True if every interior node is an abstract operator.
  bool IsLogical(const Algebra& algebra) const;

  /// Compact one-line rendering, e.g. "SORT(JOIN(RET(R1), RET(R2)))".
  /// Descriptors are omitted.
  std::string ToString(const Algebra& algebra) const;

  /// Multi-line indented rendering including non-null annotations.
  std::string TreeString(const Algebra& algebra) const;

  /// Structural equality including descriptors.
  bool Equals(const Expr& o) const;

  uint64_t Hash() const;

  /// Appends this tree's canonical serialization — node kinds, operator
  /// ids, file names, child arity, and the *interned* id of every node
  /// descriptor — to `key`, interning descriptors through `store` as it
  /// walks. Because interned ids are canonical per store (id equality <=>
  /// value equality), two trees serialize to the same bytes iff they are
  /// structurally equal including descriptors; the bytes are a collision-
  /// free cache key over one store (the plan cache verifies the full key
  /// on probe, never a hash alone). Returns a 64-bit hash of the appended
  /// serialization.
  uint64_t Fingerprint(DescriptorStore* store, std::string* key) const;

 private:
  Expr() = default;

  void TreeStringRec(const Algebra& algebra, int depth,
                     std::string* out) const;

  Kind kind_ = Kind::kFile;
  OpId op_ = -1;
  std::string file_name_;
  std::vector<ExprPtr> children_;
  Descriptor descriptor_;
};

}  // namespace prairie::algebra

#include "algebra/descriptor_store.h"

namespace prairie::algebra {

DescriptorId DescriptorStore::FindEqual(const Descriptor& d,
                                        uint64_t h) const {
  auto [lo, hi] = by_hash_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (entries_[static_cast<size_t>(it->second)].desc == d) {
      return it->second;
    }
  }
  return kInvalidDescriptorId;
}

DescriptorId DescriptorStore::Append(Descriptor&& d, uint64_t h) {
  const DescriptorId id = static_cast<DescriptorId>(entries_.size());
  entries_.push_back(Entry{std::move(d), h});
  by_hash_.emplace(h, id);
  return id;
}

DescriptorId DescriptorStore::Intern(const Descriptor& d) {
  ++lookups_;
  const uint64_t h = d.Hash();
  DescriptorId id = FindEqual(d, h);
  if (id != kInvalidDescriptorId) {
    ++hits_;
    return id;
  }
  return Append(Descriptor(d), h);
}

DescriptorId DescriptorStore::Intern(Descriptor&& d) {
  ++lookups_;
  const uint64_t h = d.Hash();
  DescriptorId id = FindEqual(d, h);
  if (id != kInvalidDescriptorId) {
    ++hits_;
    return id;
  }
  return Append(std::move(d), h);
}

SliceId DescriptorStore::RegisterSlice(PropertySlice slice) {
  const SliceId s = static_cast<SliceId>(slices_.size());
  slices_.push_back(SliceState{std::move(slice), {}, {}});
  return s;
}

DescriptorId DescriptorStore::InternProjected(SliceId s,
                                              const Descriptor& full) {
  SliceState& st = slices_[static_cast<size_t>(s)];
  ++lookups_;
  const uint64_t h = st.slice.HashOf(full);
  auto [lo, hi] = st.by_hash.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    // Candidates are interned projections, so comparing on the slice alone
    // is exact: off-slice annotations of a projection are Null.
    if (st.slice.EqualOn(entries_[static_cast<size_t>(it->second)].desc,
                         full)) {
      ++hits_;
      return it->second;
    }
  }
  // Miss on the slice index. Materialize the projection and dedupe through
  // the global table so the same value interned via Intern() and via
  // InternProjected() resolves to one id (the id <=> value invariant is
  // store-global, not per-slice).
  Descriptor proj = st.slice.Project(full);
  const uint64_t fh = proj.Hash();
  DescriptorId id = FindEqual(proj, fh);
  if (id == kInvalidDescriptorId) {
    id = Append(std::move(proj), fh);
  }
  st.by_hash.emplace(h, id);
  return id;
}

DescriptorId DescriptorStore::Project(SliceId s, DescriptorId id) {
  SliceState& st = slices_[static_cast<size_t>(s)];
  const size_t idx = static_cast<size_t>(id);
  if (idx < st.projected.size() &&
      st.projected[idx] != kInvalidDescriptorId) {
    ++lookups_;
    ++hits_;
    return st.projected[idx];
  }
  const DescriptorId pid = InternProjected(s, Get(id));
  if (idx >= st.projected.size()) {
    st.projected.resize(idx + 1, kInvalidDescriptorId);
  }
  st.projected[idx] = pid;
  return pid;
}

}  // namespace prairie::algebra

#include "algebra/descriptor_store.h"

namespace prairie::algebra {

DescriptorStore::DescriptorStore(const PropertySchema* schema, StoreMode mode)
    : schema_(schema),
      mode_(mode),
      chunks_(new std::atomic<Entry*>[kMaxChunks]),
      slices_(new SliceState[kMaxSlices]) {
  for (size_t c = 0; c < kMaxChunks; ++c) {
    chunks_[c].store(nullptr, std::memory_order_relaxed);
  }
}

DescriptorStore::~DescriptorStore() {
  for (size_t c = 0; c < kMaxChunks; ++c) {
    delete[] chunks_[c].load(std::memory_order_relaxed);
  }
}

DescriptorId DescriptorStore::FindInShard(const Shard& sh, const Descriptor& d,
                                          uint64_t h) const {
  auto [lo, hi] = sh.by_hash.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (Get(it->second) == d) return it->second;
  }
  return kInvalidDescriptorId;
}

DescriptorId DescriptorStore::Append(Descriptor&& d, uint64_t h) {
  // Appends racing from different shards serialize on arena_mu_; the
  // caller's shard lock orders publication towards readers of that shard.
  std::unique_lock<std::mutex> lock(arena_mu_, std::defer_lock);
  if (concurrent()) lock.lock();
  const size_t id = size_.load(std::memory_order_relaxed);
  assert(id < kMaxChunks * kChunkSize && "descriptor store capacity");
  const size_t c = id >> kChunkBits;
  Entry* chunk = chunks_[c].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize];
    chunks_[c].store(chunk, std::memory_order_release);
  }
  chunk[id & (kChunkSize - 1)] = Entry{std::move(d), h};
  size_.store(id + 1, std::memory_order_release);
  return static_cast<DescriptorId>(id);
}

DescriptorId DescriptorStore::InternValue(Descriptor&& d, uint64_t h,
                                          bool* hit) {
  if (hit != nullptr) *hit = true;
  Shard& sh = shards_[ShardOf(h)];
  if (concurrent()) {
    {
      std::shared_lock<std::shared_mutex> rlock(sh.mu);
      const DescriptorId id = FindInShard(sh, d, h);
      if (id != kInvalidDescriptorId) return id;
    }
    std::unique_lock<std::shared_mutex> wlock(sh.mu);
    DescriptorId id = FindInShard(sh, d, h);
    if (id != kInvalidDescriptorId) return id;
    if (hit != nullptr) *hit = false;
    id = Append(std::move(d), h);
    sh.by_hash.emplace(h, id);
    return id;
  }
  DescriptorId id = FindInShard(sh, d, h);
  if (id != kInvalidDescriptorId) return id;
  if (hit != nullptr) *hit = false;
  id = Append(std::move(d), h);
  sh.by_hash.emplace(h, id);
  return id;
}

DescriptorId DescriptorStore::Intern(const Descriptor& d) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = d.Hash();
  Shard& sh = shards_[ShardOf(h)];
  if (concurrent()) {
    {
      std::shared_lock<std::shared_mutex> rlock(sh.mu);
      const DescriptorId id = FindInShard(sh, d, h);
      if (id != kInvalidDescriptorId) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return id;
      }
    }
    std::unique_lock<std::shared_mutex> wlock(sh.mu);
    DescriptorId id = FindInShard(sh, d, h);
    if (id != kInvalidDescriptorId) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return id;
    }
    id = Append(Descriptor(d), h);
    sh.by_hash.emplace(h, id);
    return id;
  }
  DescriptorId id = FindInShard(sh, d, h);
  if (id != kInvalidDescriptorId) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }
  id = Append(Descriptor(d), h);
  sh.by_hash.emplace(h, id);
  return id;
}

DescriptorId DescriptorStore::Intern(Descriptor&& d) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = d.Hash();
  bool hit = false;
  const DescriptorId id = InternValue(std::move(d), h, &hit);
  if (hit) hits_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SliceId DescriptorStore::RegisterSlice(PropertySlice slice) {
  std::unique_lock<std::mutex> lock(slice_reg_mu_, std::defer_lock);
  if (concurrent()) lock.lock();
  const int n = num_slices_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    if (slices_[i].slice.ids == slice.ids) return i;
  }
  assert(n < kMaxSlices && "descriptor store slice capacity");
  slices_[n].slice = std::move(slice);
  num_slices_.store(n + 1, std::memory_order_release);
  return n;
}

DescriptorId DescriptorStore::FindProjectedLocked(const SliceState& st,
                                                  const Descriptor& full,
                                                  uint64_t h) const {
  auto [lo, hi] = st.by_hash.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    // Candidates are interned projections, so comparing on the slice alone
    // is exact: off-slice annotations of a projection are Null.
    if (st.slice.EqualOn(Get(it->second), full)) return it->second;
  }
  return kInvalidDescriptorId;
}

DescriptorId DescriptorStore::InternProjected(SliceId s,
                                              const Descriptor& full) {
  SliceState& st = slices_[static_cast<size_t>(s)];
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = st.slice.HashOf(full);
  if (concurrent()) {
    {
      std::shared_lock<std::shared_mutex> rlock(st.mu);
      const DescriptorId id = FindProjectedLocked(st, full, h);
      if (id != kInvalidDescriptorId) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return id;
      }
    }
    // Miss on the slice index. Materialize the projection and dedupe
    // through the global table so the same value interned via Intern() and
    // via InternProjected() resolves to one id (the id <=> value invariant
    // is store-global, not per-slice).
    Descriptor proj = st.slice.Project(full);
    const uint64_t fh = proj.Hash();
    const DescriptorId id = InternValue(std::move(proj), fh);
    std::unique_lock<std::shared_mutex> wlock(st.mu);
    const DescriptorId again = FindProjectedLocked(st, full, h);
    if (again != kInvalidDescriptorId) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return again;  // Another thread indexed the same projection first.
    }
    st.by_hash.emplace(h, id);
    return id;
  }
  const DescriptorId found = FindProjectedLocked(st, full, h);
  if (found != kInvalidDescriptorId) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return found;
  }
  Descriptor proj = st.slice.Project(full);
  const uint64_t fh = proj.Hash();
  const DescriptorId id = InternValue(std::move(proj), fh);
  st.by_hash.emplace(h, id);
  return id;
}

DescriptorId DescriptorStore::Project(SliceId s, DescriptorId id) {
  SliceState& st = slices_[static_cast<size_t>(s)];
  if (concurrent()) {
    {
      std::shared_lock<std::shared_mutex> rlock(st.mu);
      auto it = st.projected.find(id);
      if (it != st.projected.end()) {
        lookups_.fetch_add(1, std::memory_order_relaxed);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    const DescriptorId pid = InternProjected(s, Get(id));
    std::unique_lock<std::shared_mutex> wlock(st.mu);
    st.projected.emplace(id, pid);
    return pid;
  }
  auto it = st.projected.find(id);
  if (it != st.projected.end()) {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  const DescriptorId pid = InternProjected(s, Get(id));
  st.projected.emplace(id, pid);
  return pid;
}

}  // namespace prairie::algebra

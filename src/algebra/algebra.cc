#include "algebra/algebra.h"

#include "common/strings.h"

namespace prairie::algebra {

using common::Result;
using common::Status;

Algebra::Algebra() {
  // The Null algorithm (paper §2.5): a unary pass-through implementation
  // every enforcer-operator has.
  null_alg_ = Register("Null", 1, /*is_algorithm=*/true).ValueOrDie();
}

Result<OpId> Algebra::Register(std::string name, int arity,
                               bool is_algorithm) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("operation '" + name +
                                 "' already registered");
  }
  if (arity < 0 || arity > 8) {
    return Status::InvalidArgument("operation '" + name +
                                   "' has unsupported arity " +
                                   std::to_string(arity));
  }
  OpId id = static_cast<OpId>(ops_.size());
  by_name_[name] = id;
  ops_.push_back(OpInfo{std::move(name), arity, is_algorithm});
  return id;
}

Result<OpId> Algebra::RegisterOperator(std::string name, int arity) {
  return Register(std::move(name), arity, /*is_algorithm=*/false);
}

Result<OpId> Algebra::RegisterAlgorithm(std::string name, int arity) {
  return Register(std::move(name), arity, /*is_algorithm=*/true);
}

std::optional<OpId> Algebra::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

Result<OpId> Algebra::Require(const std::string& name) const {
  auto id = Find(name);
  if (!id.has_value()) {
    return Status::NotFound("unknown operation '" + name + "'");
  }
  return *id;
}

std::vector<OpId> Algebra::Operators() const {
  std::vector<OpId> out;
  for (OpId id = 0; id < size(); ++id) {
    if (!ops_[id].is_algorithm) out.push_back(id);
  }
  return out;
}

std::vector<OpId> Algebra::Algorithms() const {
  std::vector<OpId> out;
  for (OpId id = 0; id < size(); ++id) {
    if (ops_[id].is_algorithm) out.push_back(id);
  }
  return out;
}

std::string Algebra::ToString() const {
  std::string out = "algebra {\n";
  for (const OpInfo& op : ops_) {
    out += common::StringPrintf("  %s %s(%d);\n",
                                op.is_algorithm ? "algorithm" : "operator",
                                op.name.c_str(), op.arity);
  }
  out += common::Indent(properties_.ToString(), 2);
  out += "\n}";
  return out;
}

}  // namespace prairie::algebra

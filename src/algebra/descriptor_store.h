// Hash-consed descriptor interning (the memo's identity backbone).
//
// The Volcano memo, the winner tables and the rule engine all need to ask
// "is this descriptor the same as that one?" on every expression insert and
// every winner lookup. Deep value comparison makes that O(#properties) with
// a cache-hostile walk over variant values; interning makes it a single
// integer compare. A DescriptorStore owns every distinct descriptor value
// once and hands out dense DescriptorIds with the invariant
//
//     id(a) == id(b)  <=>  a == b   (value equality)
//
// so ids can key hash maps directly (no stored-descriptor collision guard
// needed). Per-descriptor hashes are computed once at interning time and
// cached. PropertySlice-projected interning resolves P2V's argument /
// physical / cost splits of a full descriptor to ids without materializing
// the projection when an equal one already exists.

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "algebra/property.h"

namespace prairie::algebra {

/// Dense handle into a DescriptorStore. Valid ids are >= 0.
using DescriptorId = int32_t;
inline constexpr DescriptorId kInvalidDescriptorId = -1;

/// Handle for a PropertySlice registered with a store.
using SliceId = int;

/// \brief Hash-consing store for descriptors of one schema.
///
/// References returned by Get() are stable for the lifetime of the store
/// (entries live in a deque, so interning never relocates them).
class DescriptorStore {
 public:
  explicit DescriptorStore(const PropertySchema* schema) : schema_(schema) {}

  DescriptorStore(const DescriptorStore&) = delete;
  DescriptorStore& operator=(const DescriptorStore&) = delete;

  const PropertySchema* schema() const { return schema_; }

  /// Interns `d`, copying it only when no equal descriptor exists yet.
  DescriptorId Intern(const Descriptor& d);

  /// Interns `d`, moving it into the store on a miss.
  DescriptorId Intern(Descriptor&& d);

  /// The canonical descriptor for `id`. Stable reference.
  const Descriptor& Get(DescriptorId id) const {
    return entries_[static_cast<size_t>(id)].desc;
  }

  /// The cached value hash of `id` (equal to Get(id).Hash()).
  uint64_t HashOf(DescriptorId id) const {
    return entries_[static_cast<size_t>(id)].hash;
  }

  /// Registers a projection slice; the returned SliceId is dense.
  SliceId RegisterSlice(PropertySlice slice);

  const PropertySlice& slice(SliceId s) const {
    return slices_[static_cast<size_t>(s)].slice;
  }

  /// Interns the projection of `full` (any descriptor, interned or not)
  /// onto slice `s`. Allocation-free when an equal projection was interned
  /// before: the probe hashes only the sliced annotations of `full` and
  /// compares with PropertySlice::EqualOn, materializing the projected
  /// descriptor only on a miss.
  DescriptorId InternProjected(SliceId s, const Descriptor& full);

  /// Projection of an already-interned descriptor, memoized per (s, id).
  DescriptorId Project(SliceId s, DescriptorId id);

  /// Number of distinct descriptors interned.
  size_t size() const { return entries_.size(); }

  /// Interning traffic counters: every Intern/InternProjected call is a
  /// lookup; a hit found an existing equal descriptor.
  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }
  double HitRate() const {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
  }

 private:
  struct Entry {
    Descriptor desc;
    uint64_t hash = 0;
  };
  struct SliceState {
    PropertySlice slice;
    /// slice-hash -> id of an interned *projected* descriptor.
    std::unordered_multimap<uint64_t, DescriptorId> by_hash;
    /// Memoized Project() results, indexed by full-descriptor id.
    std::vector<DescriptorId> projected;
  };

  /// Finds an existing entry equal to `d` with full hash `h`, or
  /// kInvalidDescriptorId. Counts neither lookups nor hits.
  DescriptorId FindEqual(const Descriptor& d, uint64_t h) const;

  /// Appends `d` as a new entry with hash `h` and indexes it.
  DescriptorId Append(Descriptor&& d, uint64_t h);

  const PropertySchema* schema_;
  std::deque<Entry> entries_;  // deque: Get() references stay valid
  std::unordered_multimap<uint64_t, DescriptorId> by_hash_;
  std::vector<SliceState> slices_;
  uint64_t lookups_ = 0;
  uint64_t hits_ = 0;
};

/// \brief Mutable construction ergonomics in an interned world.
///
/// Rule actions and tree builders assemble descriptors property by
/// property; DescriptorBuilder keeps that shape and freezes the result into
/// a DescriptorId at the end (paper §2.3's D-slot assignments map onto
/// Set calls followed by one Freeze).
class DescriptorBuilder {
 public:
  explicit DescriptorBuilder(const PropertySchema* schema) : desc_(schema) {}
  /// Starts from an existing descriptor value (e.g. a copied input slot).
  explicit DescriptorBuilder(Descriptor base) : desc_(std::move(base)) {}

  /// Unchecked set by id (hot path); chainable.
  DescriptorBuilder& Set(PropertyId id, Value v) {
    desc_.SetUnchecked(id, std::move(v));
    return *this;
  }

  /// Type-checked set by name.
  common::Status SetNamed(const std::string& name, Value v) {
    return desc_.Set(name, std::move(v));
  }

  const Descriptor& descriptor() const { return desc_; }

  /// Consumes the builder without interning (for callers that still need a
  /// loose descriptor value).
  Descriptor Build() && { return std::move(desc_); }

  /// Interns the built descriptor and returns its id.
  DescriptorId Freeze(DescriptorStore* store) && {
    return store->Intern(std::move(desc_));
  }

 private:
  Descriptor desc_;
};

}  // namespace prairie::algebra

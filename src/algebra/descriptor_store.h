// Hash-consed descriptor interning (the memo's identity backbone).
//
// The Volcano memo, the winner tables and the rule engine all need to ask
// "is this descriptor the same as that one?" on every expression insert and
// every winner lookup. Deep value comparison makes that O(#properties) with
// a cache-hostile walk over variant values; interning makes it a single
// integer compare. A DescriptorStore owns every distinct descriptor value
// once and hands out dense DescriptorIds with the invariant
//
//     id(a) == id(b)  <=>  a == b   (value equality)
//
// so ids can key hash maps directly (no stored-descriptor collision guard
// needed). Per-descriptor hashes are computed once at interning time and
// cached. PropertySlice-projected interning resolves P2V's argument /
// physical / cost splits of a full descriptor to ids without materializing
// the projection when an equal one already exists.
//
// Concurrency: a store constructed with StoreMode::kConcurrent may be
// shared by several optimizer threads (BatchOptimizer's parallel batch
// optimization). The intern table is sharded 16 ways by descriptor hash;
// each shard takes a shared (reader) lock to probe for an already-interned
// id and upgrades to an exclusive lock only to append, so the common case
// — re-interning a descriptor some thread has seen before — runs under a
// reader lock with no exclusive contention. Entries live in fixed-size
// chunks published through atomic pointers, so Get()/HashOf() never lock
// and references stay stable forever. Stats counters are relaxed atomics.
// A store in the default StoreMode::kSerial skips all locking and is
// exactly as cheap as the pre-concurrency implementation.

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "algebra/property.h"

namespace prairie::algebra {

/// Dense handle into a DescriptorStore. Valid ids are >= 0.
using DescriptorId = int32_t;
inline constexpr DescriptorId kInvalidDescriptorId = -1;

/// Handle for a PropertySlice registered with a store.
using SliceId = int;

/// Whether a DescriptorStore must tolerate concurrent interning.
enum class StoreMode {
  kSerial,      ///< Single-threaded owner; no locking at all.
  kConcurrent,  ///< Sharded locking; safe to share across threads.
};

/// \brief Hash-consing store for descriptors of one schema.
///
/// References returned by Get() are stable for the lifetime of the store
/// (entries live in fixed chunks, so interning never relocates them).
class DescriptorStore {
 public:
  explicit DescriptorStore(const PropertySchema* schema,
                           StoreMode mode = StoreMode::kSerial);
  ~DescriptorStore();

  DescriptorStore(const DescriptorStore&) = delete;
  DescriptorStore& operator=(const DescriptorStore&) = delete;

  const PropertySchema* schema() const { return schema_; }
  bool concurrent() const { return mode_ == StoreMode::kConcurrent; }

  /// Interns `d`, copying it only when no equal descriptor exists yet.
  DescriptorId Intern(const Descriptor& d);

  /// Interns `d`, moving it into the store on a miss.
  DescriptorId Intern(Descriptor&& d);

  /// The canonical descriptor for `id`. Stable reference; lock-free.
  const Descriptor& Get(DescriptorId id) const { return EntryAt(id).desc; }

  /// The cached value hash of `id` (equal to Get(id).Hash()). Lock-free.
  uint64_t HashOf(DescriptorId id) const { return EntryAt(id).hash; }

  /// Registers a projection slice; the returned SliceId is dense.
  /// Registering a slice with the same property-id set as an existing one
  /// returns the existing id, so N optimizers sharing one store agree on
  /// slice handles without coordination.
  SliceId RegisterSlice(PropertySlice slice);

  const PropertySlice& slice(SliceId s) const {
    return slices_[static_cast<size_t>(s)].slice;
  }

  /// Interns the projection of `full` (any descriptor, interned or not)
  /// onto slice `s`. Allocation-free when an equal projection was interned
  /// before: the probe hashes only the sliced annotations of `full` and
  /// compares with PropertySlice::EqualOn, materializing the projected
  /// descriptor only on a miss.
  DescriptorId InternProjected(SliceId s, const Descriptor& full);

  /// Projection of an already-interned descriptor, memoized per (s, id).
  DescriptorId Project(SliceId s, DescriptorId id);

  /// Number of distinct descriptors interned.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Interning traffic counters: every Intern/InternProjected call is a
  /// lookup; a hit found an existing equal descriptor.
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  double HitRate() const {
    const uint64_t l = lookups();
    return l == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(l);
  }

  /// \brief One consistent-enough view of the traffic counters; lets
  /// callers snapshot/delta them as a unit (the engine reports per-query
  /// interning deltas this way, and metrics export hits/misses from them).
  struct CounterSnapshot {
    size_t size = 0;       ///< Distinct descriptors interned.
    uint64_t lookups = 0;  ///< Intern/InternProjected probes.
    uint64_t hits = 0;     ///< Probes that found an existing descriptor.

    uint64_t misses() const { return lookups - hits; }
  };
  CounterSnapshot Counters() const { return {size(), lookups(), hits()}; }

 private:
  // Entry arena geometry: chunks of 4096 entries, up to 16384 chunks
  // (64M descriptors — far past memory exhaustion for real workloads).
  // The chunk-pointer array is allocated up front so readers never see it
  // move; chunk payloads are published with release stores.
  static constexpr int kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 14;
  static constexpr size_t kNumShards = 16;
  static constexpr int kMaxSlices = 32;

  struct Entry {
    Descriptor desc;
    uint64_t hash = 0;
  };

  /// One shard of the global intern table, selected by descriptor hash.
  struct Shard {
    mutable std::shared_mutex mu;
    /// full-value hash -> id of an interned descriptor.
    std::unordered_multimap<uint64_t, DescriptorId> by_hash;
  };

  struct SliceState {
    PropertySlice slice;
    mutable std::shared_mutex mu;
    /// slice-hash -> id of an interned *projected* descriptor.
    std::unordered_multimap<uint64_t, DescriptorId> by_hash;
    /// Memoized Project() results, keyed by full-descriptor id.
    std::unordered_map<DescriptorId, DescriptorId> projected;
  };

  const Entry& EntryAt(DescriptorId id) const {
    const size_t i = static_cast<size_t>(id);
    const Entry* chunk =
        chunks_[i >> kChunkBits].load(std::memory_order_acquire);
    return chunk[i & (kChunkSize - 1)];
  }

  static size_t ShardOf(uint64_t h) { return (h >> 56) & (kNumShards - 1); }

  /// Finds an existing entry equal to `d` with full hash `h` in `sh`, or
  /// kInvalidDescriptorId. The caller holds the shard lock (or owns the
  /// store exclusively in serial mode). Counts neither lookups nor hits.
  DescriptorId FindInShard(const Shard& sh, const Descriptor& d,
                           uint64_t h) const;

  /// Appends `d` as a new entry with hash `h`. The caller holds the shard
  /// exclusive lock; the arena itself is guarded by arena_mu_ in
  /// concurrent mode (appends from different shards race otherwise).
  DescriptorId Append(Descriptor&& d, uint64_t h);

  /// Find-or-append through the global sharded table without touching the
  /// stats counters (the slice paths count their own traffic). When `hit`
  /// is non-null it reports whether an equal descriptor already existed.
  DescriptorId InternValue(Descriptor&& d, uint64_t h, bool* hit = nullptr);

  DescriptorId FindProjectedLocked(const SliceState& st,
                                   const Descriptor& full, uint64_t h) const;

  const PropertySchema* schema_;
  const StoreMode mode_;
  std::unique_ptr<std::atomic<Entry*>[]> chunks_;
  std::atomic<size_t> size_{0};
  std::mutex arena_mu_;
  Shard shards_[kNumShards];
  /// Fixed-capacity slice array: readers access slices_[s] without locks
  /// once RegisterSlice published the slot via num_slices_.
  std::unique_ptr<SliceState[]> slices_;
  std::atomic<int> num_slices_{0};
  std::mutex slice_reg_mu_;
  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> hits_{0};
};

/// \brief Mutable construction ergonomics in an interned world.
///
/// Rule actions and tree builders assemble descriptors property by
/// property; DescriptorBuilder keeps that shape and freezes the result into
/// a DescriptorId at the end (paper §2.3's D-slot assignments map onto
/// Set calls followed by one Freeze).
class DescriptorBuilder {
 public:
  explicit DescriptorBuilder(const PropertySchema* schema) : desc_(schema) {}
  /// Starts from an existing descriptor value (e.g. a copied input slot).
  explicit DescriptorBuilder(Descriptor base) : desc_(std::move(base)) {}

  /// Unchecked set by id (hot path); chainable.
  DescriptorBuilder& Set(PropertyId id, Value v) {
    desc_.SetUnchecked(id, std::move(v));
    return *this;
  }

  /// Type-checked set by name.
  common::Status SetNamed(const std::string& name, Value v) {
    return desc_.Set(name, std::move(v));
  }

  const Descriptor& descriptor() const { return desc_; }

  /// Consumes the builder without interning (for callers that still need a
  /// loose descriptor value).
  Descriptor Build() && { return std::move(desc_); }

  /// Interns the built descriptor and returns its id.
  DescriptorId Freeze(DescriptorStore* store) && {
    return store->Intern(std::move(desc_));
  }

 private:
  Descriptor desc_;
};

}  // namespace prairie::algebra

// Property schemas and descriptors (paper §2.1).
//
// A *property* is a user-defined variable; an *annotation* is a
// <property, value> pair; a *descriptor* is the list of annotations
// attached to an operator-tree node. Prairie deliberately keeps all
// properties in one flat, uniform structure — the P2V pre-processor later
// classifies them into Volcano's cost / physical / argument categories.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/value.h"
#include "common/result.h"

namespace prairie::algebra {

using PropertyId = int;

/// \brief Declaration of one descriptor property.
struct PropertyDecl {
  std::string name;
  ValueType type = ValueType::kNull;
  /// Declared with the special `cost` DSL type; P2V classifies such
  /// properties as Volcano cost properties.
  bool is_cost = false;

  std::string ToString() const;
};

/// \brief The ordered set of properties every descriptor carries.
class PropertySchema {
 public:
  /// Adds a property; fails on duplicate names.
  common::Status Add(PropertyDecl decl);

  /// Convenience for Add({name, type, is_cost}).
  common::Status Add(std::string name, ValueType type, bool is_cost = false);

  std::optional<PropertyId> Find(const std::string& name) const;
  common::Result<PropertyId> Require(const std::string& name) const;

  const PropertyDecl& decl(PropertyId id) const { return decls_[id]; }
  int size() const { return static_cast<int>(decls_.size()); }
  const std::vector<PropertyDecl>& decls() const { return decls_; }

  std::string ToString() const;

 private:
  std::vector<PropertyDecl> decls_;
  std::unordered_map<std::string, PropertyId> by_name_;
};

/// \brief A node descriptor: one Value per schema property (Null when unset).
///
/// Descriptors compare and hash by value so the Volcano memo can detect
/// duplicate expressions.
class Descriptor {
 public:
  Descriptor() = default;
  explicit Descriptor(const PropertySchema* schema)
      : schema_(schema),
        values_(schema == nullptr ? 0 : static_cast<size_t>(schema->size())) {}

  const PropertySchema* schema() const { return schema_; }
  bool valid() const { return schema_ != nullptr; }

  const Value& Get(PropertyId id) const { return values_[id]; }
  common::Result<Value> Get(const std::string& name) const;

  /// Sets by id without type checking (hot path inside the engine).
  void SetUnchecked(PropertyId id, Value v) { values_[id] = std::move(v); }

  /// Sets by name with a type check against the declaration; Null is always
  /// accepted (an unset annotation).
  common::Status Set(const std::string& name, Value v);

  /// Type check + set by id.
  common::Status SetChecked(PropertyId id, Value v);

  bool operator==(const Descriptor& o) const;
  bool operator!=(const Descriptor& o) const { return !(*this == o); }
  uint64_t Hash() const;

  /// "{num_records: 100, tuple_order: DONT_CARE}"; unset (Null) annotations
  /// are omitted.
  std::string ToString() const;

 private:
  const PropertySchema* schema_ = nullptr;
  std::vector<Value> values_;
};

/// \brief A projection of a descriptor onto a subset of properties.
///
/// P2V splits Prairie's single descriptor into Volcano's operator/algorithm
/// argument, physical-property vector and cost; PropertySlice names such a
/// subset once so the split is consistent everywhere.
struct PropertySlice {
  std::vector<PropertyId> ids;

  /// Copies the sliced annotations of `full` into a fresh descriptor with
  /// only those annotations set (others Null).
  Descriptor Project(const Descriptor& full) const;

  /// Hash of just the sliced annotations of `d`.
  uint64_t HashOf(const Descriptor& d) const;

  /// Equality restricted to the sliced annotations.
  bool EqualOn(const Descriptor& a, const Descriptor& b) const;
};

}  // namespace prairie::algebra

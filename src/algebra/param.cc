#include "algebra/param.h"

#include <utility>
#include <variant>

namespace prairie::algebra {

namespace {

bool IsNullScalar(const Scalar& s) { return s.v.index() == 0; }

/// True for a comparison side the canonicalizer strips: a non-null literal.
bool Strippable(const Term& t) {
  return t.kind == Term::Kind::kConst && !IsNullScalar(t.scalar);
}

// Pass A: replace each strippable constant with an *anonymous* marker
// (ordinal -1) carrying the constant as payload, and rebuild conjunctions
// through Predicate::And so the hash-ordered conjunct sort runs with the
// constant-blind marker hashes. After this pass the tree's shape — And
// order included — no longer depends on the stripped constants, so pass B
// can assign ordinals by plain walk order.
PredicateRef Anonymize(const PredicateRef& p, bool* changed) {
  if (p == nullptr) return p;
  switch (p->kind()) {
    case Predicate::Kind::kCmp: {
      const Term& l = p->left();
      const Term& r = p->right();
      if (l.is_attr() && Strippable(r)) {
        *changed = true;
        return Predicate::Cmp(p->cmp_op(), l, Term::MakeParam(-1, r.scalar));
      }
      if (r.is_attr() && Strippable(l)) {
        *changed = true;
        return Predicate::Cmp(p->cmp_op(), Term::MakeParam(-1, l.scalar), r);
      }
      return p;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot: {
      bool child_changed = false;
      std::vector<PredicateRef> kids;
      kids.reserve(p->children().size());
      for (const PredicateRef& c : p->children()) {
        kids.push_back(Anonymize(c, &child_changed));
      }
      if (!child_changed) return p;
      *changed = true;
      if (p->kind() == Predicate::Kind::kAnd) {
        return Predicate::And(std::move(kids));
      }
      if (p->kind() == Predicate::Kind::kOr) {
        return Predicate::Or(std::move(kids));
      }
      return Predicate::Not(std::move(kids[0]));
    }
    default:
      return p;
  }
}

// Pass B: assign ordinals to the anonymous markers in preorder and move
// their payloads into slots. Rebuilding an And here is order-preserving:
// marker hashes ignore the ordinal, so the sort keys are exactly the ones
// pass A already sorted by and the stable sort is an identity.
PredicateRef Number(const PredicateRef& p, std::vector<ParamSlot>* slots,
                    bool* changed) {
  if (p == nullptr) return p;
  switch (p->kind()) {
    case Predicate::Kind::kCmp: {
      const Term& l = p->left();
      const Term& r = p->right();
      if (!l.is_param() && !r.is_param()) return p;
      *changed = true;
      const Term& marker = l.is_param() ? l : r;
      ParamSlot slot;
      slot.op = p->cmp_op();
      slot.attr = l.is_param() ? r.attr : l.attr;
      slot.const_on_left = l.is_param();
      slot.value = marker.scalar;
      const int32_t ordinal = static_cast<int32_t>(slots->size());
      slots->push_back(std::move(slot));
      Term stripped = Term::MakeParam(ordinal);
      return l.is_param() ? Predicate::Cmp(p->cmp_op(), stripped, r)
                          : Predicate::Cmp(p->cmp_op(), l, stripped);
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot: {
      bool child_changed = false;
      std::vector<PredicateRef> kids;
      kids.reserve(p->children().size());
      for (const PredicateRef& c : p->children()) {
        kids.push_back(Number(c, slots, &child_changed));
      }
      if (!child_changed) return p;
      *changed = true;
      if (p->kind() == Predicate::Kind::kAnd) {
        return Predicate::And(std::move(kids));
      }
      if (p->kind() == Predicate::Kind::kOr) {
        return Predicate::Or(std::move(kids));
      }
      return Predicate::Not(std::move(kids[0]));
    }
    default:
      return p;
  }
}

// Clones `e` with every predicate annotation canonicalized (passes A+B per
// predicate; ordinals accumulate across the whole tree in walk order).
ExprPtr Strip(const Expr& e, std::vector<ParamSlot>* slots, bool* any) {
  Descriptor d = e.descriptor();
  if (d.valid()) {
    const int n = d.schema()->size();
    for (PropertyId id = 0; id < n; ++id) {
      const Value& v = d.Get(id);
      if (v.type() != ValueType::kPred) continue;
      bool changed = false;
      PredicateRef anon = Anonymize(v.AsPred(), &changed);
      if (!changed) continue;
      *any = true;
      bool numbered_changed = false;
      PredicateRef numbered = Number(anon, slots, &numbered_changed);
      d.SetUnchecked(id, Value::Pred(std::move(numbered)));
    }
  }
  if (e.is_file()) return Expr::MakeFile(e.file_name(), std::move(d));
  std::vector<ExprPtr> kids;
  kids.reserve(e.num_children());
  for (const ExprPtr& c : e.children()) {
    kids.push_back(Strip(*c, slots, any));
  }
  return Expr::MakeOp(e.op(), std::move(kids), std::move(d));
}

}  // namespace

ParameterizedQuery ParameterizeQuery(const Expr& query) {
  ParameterizedQuery out;
  bool any = false;
  std::vector<ParamSlot> slots;
  ExprPtr skeleton = Strip(query, &slots, &any);
  if (!any || slots.empty()) return out;
  out.skeleton = std::move(skeleton);
  out.slots = std::move(slots);
  return out;
}

PredicateRef BindPredicate(const PredicateRef& pred,
                           const std::vector<Scalar>& values) {
  if (pred == nullptr) return pred;
  switch (pred->kind()) {
    case Predicate::Kind::kCmp: {
      const Term& l = pred->left();
      const Term& r = pred->right();
      if (!l.is_param() && !r.is_param()) return pred;
      auto bind = [&values](const Term& t, bool* fail) {
        if (!t.is_param()) return t;
        if (t.param < 0 ||
            static_cast<size_t>(t.param) >= values.size()) {
          *fail = true;
          return t;
        }
        return Term::MakeConst(values[t.param]);
      };
      bool fail = false;
      Term l2 = bind(l, &fail);
      Term r2 = bind(r, &fail);
      if (fail) return nullptr;
      return Predicate::Cmp(pred->cmp_op(), std::move(l2), std::move(r2));
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot: {
      bool changed = false;
      std::vector<PredicateRef> kids;
      kids.reserve(pred->children().size());
      for (const PredicateRef& c : pred->children()) {
        PredicateRef b = BindPredicate(c, values);
        if (b == nullptr) return nullptr;
        if (b.get() != c.get()) changed = true;
        kids.push_back(std::move(b));
      }
      if (!changed) return pred;
      if (pred->kind() == Predicate::Kind::kAnd) {
        return Predicate::And(std::move(kids));
      }
      if (pred->kind() == Predicate::Kind::kOr) {
        return Predicate::Or(std::move(kids));
      }
      return Predicate::Not(std::move(kids[0]));
    }
    default:
      return pred;
  }
}

ExprPtr BindQuery(const Expr& skeleton, const std::vector<Scalar>& values) {
  Descriptor d = skeleton.descriptor();
  if (d.valid()) {
    const int n = d.schema()->size();
    for (PropertyId id = 0; id < n; ++id) {
      const Value& v = d.Get(id);
      if (v.type() != ValueType::kPred) continue;
      PredicateRef bound = BindPredicate(v.AsPred(), values);
      if (bound == nullptr) return nullptr;
      if (bound.get() != v.AsPred().get()) {
        d.SetUnchecked(id, Value::Pred(std::move(bound)));
      }
    }
  }
  if (skeleton.is_file()) {
    return Expr::MakeFile(skeleton.file_name(), std::move(d));
  }
  std::vector<ExprPtr> kids;
  kids.reserve(skeleton.num_children());
  for (const ExprPtr& c : skeleton.children()) {
    ExprPtr b = BindQuery(*c, values);
    if (b == nullptr) return nullptr;
    kids.push_back(std::move(b));
  }
  return Expr::MakeOp(skeleton.op(), std::move(kids), std::move(d));
}

SlotMatcher::SlotMatcher(const std::vector<ParamSlot>& slots)
    : slots_(slots) {
  for (size_t i = 0; i < slots.size() && !ambiguous_; ++i) {
    for (size_t j = i + 1; j < slots.size(); ++j) {
      const ParamSlot& a = slots[i];
      const ParamSlot& b = slots[j];
      if (a.op == b.op && a.const_on_left == b.const_on_left &&
          a.attr == b.attr && a.value == b.value) {
        ambiguous_ = true;
        break;
      }
    }
  }
}

int SlotMatcher::Find(CmpOp op, const Attr& attr, bool const_on_left,
                      const Scalar& value) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    const ParamSlot& s = slots_[i];
    if (s.op == op && s.const_on_left == const_on_left && s.attr == attr &&
        s.value == value) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

PredicateRef ParameterizePredicate(const PredicateRef& pred,
                                   const SlotMatcher& matcher,
                                   std::vector<bool>* used, bool* ok) {
  if (pred == nullptr) return pred;
  if (matcher.ambiguous()) {
    *ok = false;
    return nullptr;
  }
  switch (pred->kind()) {
    case Predicate::Kind::kCmp: {
      const Term& l = pred->left();
      const Term& r = pred->right();
      const bool strip_right = l.is_attr() && Strippable(r);
      const bool strip_left = r.is_attr() && Strippable(l);
      if (!strip_right && !strip_left) return pred;
      const Attr& attr = strip_right ? l.attr : r.attr;
      const Scalar& value = strip_right ? r.scalar : l.scalar;
      const int ordinal =
          matcher.Find(pred->cmp_op(), attr, strip_left, value);
      if (ordinal < 0) {
        *ok = false;
        return nullptr;
      }
      (*used)[ordinal] = true;
      Term marker = Term::MakeParam(ordinal);
      return strip_right
                 ? Predicate::Cmp(pred->cmp_op(), l, std::move(marker))
                 : Predicate::Cmp(pred->cmp_op(), std::move(marker), r);
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot: {
      bool changed = false;
      std::vector<PredicateRef> kids;
      kids.reserve(pred->children().size());
      for (const PredicateRef& c : pred->children()) {
        PredicateRef p = ParameterizePredicate(c, matcher, used, ok);
        if (!*ok) return nullptr;
        if (p.get() != c.get()) changed = true;
        kids.push_back(std::move(p));
      }
      if (!changed) return pred;
      if (pred->kind() == Predicate::Kind::kAnd) {
        return Predicate::And(std::move(kids));
      }
      if (pred->kind() == Predicate::Kind::kOr) {
        return Predicate::Or(std::move(kids));
      }
      return Predicate::Not(std::move(kids[0]));
    }
    default:
      return pred;
  }
}

}  // namespace prairie::algebra

#include "optimizers/executors.h"

#include "optimizers/props.h"

namespace prairie::opt {

using algebra::Attr;
using algebra::AttrList;
using algebra::Expr;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::SortSpec;
using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;
using exec::Datum;
using exec::IterPtr;
using exec::PlanBuilder;
using exec::Table;

namespace {

Result<PredicateRef> ReadPred(const PlanBuilder& b, const char* prop) {
  PRAIRIE_ASSIGN_OR_RETURN(Value v, b.Prop(prop));
  if (v.is_null()) return Predicate::True();
  if (v.type() != ValueType::kPred || v.AsPred() == nullptr) {
    return Predicate::True();
  }
  return v.AsPred();
}

Result<AttrList> ReadAttrs(const PlanBuilder& b, const char* prop) {
  PRAIRIE_ASSIGN_OR_RETURN(Value v, b.Prop(prop));
  if (v.is_null()) return AttrList{};
  if (v.type() != ValueType::kAttrs) {
    return Status::ExecError(std::string("plan property '") + prop +
                             "' is not an attribute list");
  }
  return v.AsAttrs();
}

/// Extracts the constant of an "attr = const" conjunct on `attr`.
std::optional<Datum> EqKeyFor(const PredicateRef& pred, const Attr& attr) {
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (c->kind() != Predicate::Kind::kCmp ||
        c->cmp_op() != algebra::CmpOp::kEq) {
      continue;
    }
    if (c->left().is_attr() && !c->right().is_attr() &&
        c->left().attr == attr) {
      return c->right().scalar;
    }
    if (c->right().is_attr() && !c->left().is_attr() &&
        c->right().attr == attr) {
      return c->left().scalar;
    }
  }
  return std::nullopt;
}

Result<IterPtr> MakeFileScanIter(const Expr&, PlanBuilder& b) {
  PRAIRIE_ASSIGN_OR_RETURN(const Table* t, b.ChildTable(0));
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef pred,
                           ReadPred(b, kSelectionPredicate));
  IterPtr scan = exec::MakeTableScan(t);
  if (pred->is_true()) return scan;
  return exec::MakeFilter(std::move(scan), std::move(pred));
}

Result<IterPtr> MakeIndexScanIter(const Expr&, PlanBuilder& b) {
  PRAIRIE_ASSIGN_OR_RETURN(const Table* t, b.ChildTable(0));
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef pred,
                           ReadPred(b, kSelectionPredicate));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList idx, ReadAttrs(b, kIndexAttr));
  if (idx.empty()) {
    return Status::ExecError("index scan plan node without index_attr");
  }
  std::optional<Datum> key = EqKeyFor(pred, idx[0]);
  return exec::MakeIndexScan(t, idx[0].name, std::move(key), std::move(pred));
}

Result<IterPtr> MakeFilterIter(const Expr&, PlanBuilder& b) {
  PRAIRIE_ASSIGN_OR_RETURN(IterPtr in, b.BuildChild(0));
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef pred,
                           ReadPred(b, kSelectionPredicate));
  return exec::MakeFilter(std::move(in), std::move(pred));
}

Result<IterPtr> MakeProjectionIter(const Expr&, PlanBuilder& b) {
  PRAIRIE_ASSIGN_OR_RETURN(IterPtr in, b.BuildChild(0));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList attrs, ReadAttrs(b, kProjectedAttributes));
  return exec::MakeProject(std::move(in), std::move(attrs));
}

enum class JoinAlg { kNestedLoops, kHash, kMerge };

Result<IterPtr> MakeJoinIter(PlanBuilder& b, JoinAlg alg) {
  PRAIRIE_ASSIGN_OR_RETURN(IterPtr l, b.BuildChild(0));
  PRAIRIE_ASSIGN_OR_RETURN(IterPtr r, b.BuildChild(1));
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef pred, ReadPred(b, kJoinPredicate));
  switch (alg) {
    case JoinAlg::kNestedLoops:
      return exec::MakeNestedLoopsJoin(std::move(l), std::move(r),
                                       std::move(pred));
    case JoinAlg::kHash:
      return exec::MakeHashJoin(std::move(l), std::move(r), std::move(pred));
    case JoinAlg::kMerge:
      return exec::MakeMergeJoin(std::move(l), std::move(r), std::move(pred));
  }
  return Status::Internal("unknown join algorithm");
}

Result<IterPtr> MakeDerefIter(const Expr&, PlanBuilder& b) {
  PRAIRIE_ASSIGN_OR_RETURN(IterPtr in, b.BuildChild(0));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList ref, ReadAttrs(b, kMatAttr));
  PRAIRIE_ASSIGN_OR_RETURN(Value cls, b.Prop(kMatClass));
  if (ref.empty() || cls.is_null() || cls.type() != ValueType::kString) {
    return Status::ExecError("Deref plan node missing mat_attr/mat_class");
  }
  PRAIRIE_ASSIGN_OR_RETURN(const Table* target,
                           b.db().Require(cls.AsString()));
  return exec::MakeDeref(std::move(in), ref[0], target);
}

Result<IterPtr> MakeFlattenIter(const Expr&, PlanBuilder& b) {
  PRAIRIE_ASSIGN_OR_RETURN(IterPtr in, b.BuildChild(0));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList attrs, ReadAttrs(b, kUnnestAttr));
  if (attrs.empty()) {
    return Status::ExecError("Flatten plan node missing unnest_attr");
  }
  PRAIRIE_ASSIGN_OR_RETURN(const Table* t, b.db().Require(attrs[0].cls));
  return exec::MakeFlatten(std::move(in), attrs[0], t);
}

Result<IterPtr> MakeMergeSortIter(const Expr&, PlanBuilder& b) {
  PRAIRIE_ASSIGN_OR_RETURN(IterPtr in, b.BuildChild(0));
  PRAIRIE_ASSIGN_OR_RETURN(Value order, b.Prop(kTupleOrder));
  if (order.is_null() || order.type() != ValueType::kSort) {
    return Status::ExecError("Merge_sort plan node without a tuple_order");
  }
  return exec::MakeSort(std::move(in), order.AsSort());
}

}  // namespace

Status RegisterStandardExecutors(exec::ExecutorRegistry* reg) {
  PRAIRIE_RETURN_NOT_OK(reg->Register("File_scan", MakeFileScanIter));
  PRAIRIE_RETURN_NOT_OK(reg->Register("Index_scan", MakeIndexScanIter));
  PRAIRIE_RETURN_NOT_OK(reg->Register("Btree_scan", MakeIndexScanIter));
  PRAIRIE_RETURN_NOT_OK(reg->Register("Filter", MakeFilterIter));
  PRAIRIE_RETURN_NOT_OK(reg->Register("Projection", MakeProjectionIter));
  PRAIRIE_RETURN_NOT_OK(reg->Register(
      "Nested_loops", [](const Expr&, PlanBuilder& b) {
        return MakeJoinIter(b, JoinAlg::kNestedLoops);
      }));
  PRAIRIE_RETURN_NOT_OK(
      reg->Register("Hash_join", [](const Expr&, PlanBuilder& b) {
        return MakeJoinIter(b, JoinAlg::kHash);
      }));
  // Pointer chasing probes the inner stream by OID; a hash probe realizes
  // exactly that over in-memory extents.
  PRAIRIE_RETURN_NOT_OK(
      reg->Register("Pointer_join", [](const Expr&, PlanBuilder& b) {
        return MakeJoinIter(b, JoinAlg::kHash);
      }));
  PRAIRIE_RETURN_NOT_OK(
      reg->Register("Merge_join", [](const Expr&, PlanBuilder& b) {
        return MakeJoinIter(b, JoinAlg::kMerge);
      }));
  PRAIRIE_RETURN_NOT_OK(reg->Register("Deref", MakeDerefIter));
  PRAIRIE_RETURN_NOT_OK(reg->Register("Flatten", MakeFlattenIter));
  PRAIRIE_RETURN_NOT_OK(reg->Register("Merge_sort", MakeMergeSortIter));
  return Status::OK();
}

}  // namespace prairie::opt

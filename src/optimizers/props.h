// Shared vocabulary of the shipped optimizers: descriptor property names,
// the property schema, the domain helper functions rule actions call, and
// operator-tree initialization (paper §2.2: annotations are computed when
// the tree is built, before optimization starts).

#pragma once

#include <memory>
#include <string>

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "core/helpers.h"

namespace prairie::opt {

// Property names used by both the relational and the OODB rule sets.
inline constexpr const char* kTupleOrder = "tuple_order";
inline constexpr const char* kNumRecords = "num_records";
inline constexpr const char* kTupleSize = "tuple_size";
inline constexpr const char* kAttributes = "attributes";
inline constexpr const char* kSelectionPredicate = "selection_predicate";
inline constexpr const char* kJoinPredicate = "join_predicate";
inline constexpr const char* kProjectedAttributes = "projected_attributes";
inline constexpr const char* kIndexAttr = "index_attr";
inline constexpr const char* kMatAttr = "mat_attr";
inline constexpr const char* kMatClass = "mat_class";
inline constexpr const char* kUnnestAttr = "unnest_attr";
inline constexpr const char* kUnnestMult = "unnest_mult";
inline constexpr const char* kCost = "cost";

/// \brief Cached PropertyIds for the standard schema (used by hand-coded
/// Volcano rule sets and by the executors).
struct Props {
  algebra::PropertyId tuple_order = -1;
  algebra::PropertyId num_records = -1;
  algebra::PropertyId tuple_size = -1;
  algebra::PropertyId attributes = -1;
  algebra::PropertyId selection_predicate = -1;
  algebra::PropertyId join_predicate = -1;
  algebra::PropertyId projected_attributes = -1;
  algebra::PropertyId index_attr = -1;
  algebra::PropertyId mat_attr = -1;
  algebra::PropertyId mat_class = -1;
  algebra::PropertyId unnest_attr = -1;
  algebra::PropertyId unnest_mult = -1;
  algebra::PropertyId cost = -1;

  static common::Result<Props> FromSchema(
      const algebra::PropertySchema& schema);
};

/// Adds the standard property declarations to `schema` (the order matches
/// the DSL specifications so PropertyIds agree across rule sets).
common::Status AddStandardProperties(algebra::PropertySchema* schema);

/// Registers the domain helper functions (selectivity, join_card, union,
/// conj_over, is_ref_join, ...) on top of the numeric builtins. Helpers
/// that need statistics read them from the catalog in the evaluation
/// context.
common::Status RegisterDomainHelpers(core::HelperRegistry* reg);

/// Returns a registry with builtins + domain helpers.
std::shared_ptr<core::HelperRegistry> StandardHelpers();

// ---------------------------------------------------------------------------
// Operator-tree initialization
// ---------------------------------------------------------------------------

/// \brief Builds initialized logical operator trees over a catalog.
///
/// Every node's descriptor is fully annotated (cardinality estimates,
/// attribute lists, predicates) so rules can read input annotations, as
/// the paper's model assumes.
class TreeBuilder {
 public:
  TreeBuilder(const algebra::Algebra* algebra,
              const catalog::Catalog* catalog)
      : algebra_(algebra), catalog_(catalog) {}

  /// RET(file) with an optional selection predicate; projects all
  /// attributes. The file leaf below carries the catalog statistics.
  common::Result<algebra::ExprPtr> Ret(const std::string& file,
                                       algebra::PredicateRef selection);

  /// JOIN(left, right) with the given join predicate.
  common::Result<algebra::ExprPtr> Join(algebra::ExprPtr left,
                                        algebra::ExprPtr right,
                                        algebra::PredicateRef pred);

  /// SELECT(input).
  common::Result<algebra::ExprPtr> Select(algebra::ExprPtr input,
                                          algebra::PredicateRef pred);

  /// PROJECT(input) onto `attrs`.
  common::Result<algebra::ExprPtr> Project(algebra::ExprPtr input,
                                           algebra::AttrList attrs);

  /// MAT(input): dereferences `ref_attr` (a reference attribute of some
  /// class in the input), appending the target class's attributes.
  common::Result<algebra::ExprPtr> Mat(algebra::ExprPtr input,
                                       algebra::Attr ref_attr);

  /// UNNEST(input) of a set-valued attribute.
  common::Result<algebra::ExprPtr> Unnest(algebra::ExprPtr input,
                                          algebra::Attr set_attr);

 private:
  common::Result<double> NumRecordsOf(const algebra::Expr& e) const;
  const algebra::Algebra* algebra_;
  const catalog::Catalog* catalog_;
};

}  // namespace prairie::opt

#include "optimizers/native_helpers.h"

#include <algorithm>
#include <cmath>

namespace prairie::opt::native {

using algebra::Attr;
using algebra::AttrList;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::SortSpec;
using algebra::ValueType;
using common::Status;

namespace {

Result<PredicateRef> AsPred(const Value& v, const char* fn) {
  if (v.is_null()) return Predicate::True();
  if (v.type() != ValueType::kPred) {
    return Status::TypeError(std::string(fn) + ": expected a predicate, got " +
                             std::string(ValueTypeName(v.type())));
  }
  const PredicateRef& p = v.AsPred();
  return p == nullptr ? Predicate::True() : p;
}

Result<AttrList> AsAttrs(const Value& v, const char* fn) {
  if (v.is_null()) return AttrList{};
  if (v.type() != ValueType::kAttrs) {
    return Status::TypeError(std::string(fn) +
                             ": expected an attribute list, got " +
                             std::string(ValueTypeName(v.type())));
  }
  return v.AsAttrs();
}

Result<double> AsReal(const Value& v, const char* fn) {
  auto r = v.ToReal();
  if (!r.ok()) return r.status().WithContext(fn);
  return r;
}

Result<std::string> AsStr(const Value& v, const char* fn) {
  if (v.is_null() || v.type() != ValueType::kString) {
    return Status::TypeError(std::string(fn) + ": expected a string");
  }
  return v.AsString();
}

Result<const catalog::Catalog*> NeedCat(const catalog::Catalog* cat,
                                        const char* fn) {
  if (cat == nullptr) {
    return Status::RuleError(std::string(fn) + ": no catalog available");
  }
  return cat;
}

void SplitConjuncts(const PredicateRef& pred, const AttrList& attrs,
                    std::vector<PredicateRef>* over,
                    std::vector<PredicateRef>* not_over) {
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (algebra::IsSubset(c->ReferencedAttrs(), attrs)) {
      over->push_back(c);
    } else {
      not_over->push_back(c);
    }
  }
}

/// Finds an "attr = constant" conjunct whose attribute has an index.
bool FindIndexedEq(const PredicateRef& pred, const catalog::Catalog& cat,
                   Attr* attr, PredicateRef* eq_conjunct) {
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (c->kind() != Predicate::Kind::kCmp ||
        c->cmp_op() != algebra::CmpOp::kEq) {
      continue;
    }
    const algebra::Term* attr_term = nullptr;
    if (c->left().is_attr() && !c->right().is_attr()) {
      attr_term = &c->left();
    } else if (c->right().is_attr() && !c->left().is_attr()) {
      attr_term = &c->right();
    } else {
      continue;
    }
    if (cat.HasIndexOn(attr_term->attr)) {
      if (attr != nullptr) *attr = attr_term->attr;
      if (eq_conjunct != nullptr) *eq_conjunct = c;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<Value> selectivity(const catalog::Catalog* cat, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "selectivity"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "selectivity"));
  return Value::Real(catalog::EstimateSelectivity(p, *c));
}

Result<Value> join_card(const catalog::Catalog* cat, const Value& nl,
                        const Value& nr, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(double l, AsReal(nl, "join_card"));
  PRAIRIE_ASSIGN_OR_RETURN(double r, AsReal(nr, "join_card"));
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "join_card"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "join_card"));
  return Value::Real(l * r * catalog::EstimateSelectivity(p, *c));
}

Result<Value> union_(const catalog::Catalog*, const Value& a,
                     const Value& b) {
  PRAIRIE_ASSIGN_OR_RETURN(AttrList x, AsAttrs(a, "union"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList y, AsAttrs(b, "union"));
  return Value::Attrs(algebra::UnionAttrs(x, y));
}

Result<Value> attrs_minus(const catalog::Catalog*, const Value& a,
                          const Value& b) {
  PRAIRIE_ASSIGN_OR_RETURN(AttrList x, AsAttrs(a, "attrs_minus"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList y, AsAttrs(b, "attrs_minus"));
  AttrList out;
  for (const Attr& attr : x) {
    if (!algebra::Contains(y, attr)) out.push_back(attr);
  }
  return Value::Attrs(std::move(out));
}

Result<Value> attrs_subset(const catalog::Catalog*, const Value& a,
                           const Value& b) {
  PRAIRIE_ASSIGN_OR_RETURN(AttrList x, AsAttrs(a, "attrs_subset"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList y, AsAttrs(b, "attrs_subset"));
  return Value::Bool(algebra::IsSubset(x, y));
}

Result<Value> conj_over(const catalog::Catalog*, const Value& pred,
                        const Value& attrs) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "conj_over"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList a, AsAttrs(attrs, "conj_over"));
  std::vector<PredicateRef> over, rest;
  SplitConjuncts(p, a, &over, &rest);
  return Value::Pred(Predicate::And(std::move(over)));
}

Result<Value> conj_not_over(const catalog::Catalog*, const Value& pred,
                            const Value& attrs) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "conj_not_over"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList a, AsAttrs(attrs, "conj_not_over"));
  std::vector<PredicateRef> over, rest;
  SplitConjuncts(p, a, &over, &rest);
  return Value::Pred(Predicate::And(std::move(rest)));
}

Result<Value> conj_count(const catalog::Catalog*, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "conj_count"));
  return Value::Int(static_cast<int64_t>(p->Conjuncts().size()));
}

Result<Value> first_conjunct(const catalog::Catalog*, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "first_conjunct"));
  auto cs = p->Conjuncts();
  return Value::Pred(cs.empty() ? Predicate::True() : cs[0]);
}

Result<Value> rest_conjuncts(const catalog::Catalog*, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "rest_conjuncts"));
  auto cs = p->Conjuncts();
  if (cs.size() <= 1) return Value::Pred(Predicate::True());
  cs.erase(cs.begin());
  return Value::Pred(Predicate::And(std::move(cs)));
}

Result<Value> pred_and(const catalog::Catalog*, const Value& a,
                       const Value& b) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef x, AsPred(a, "pred_and"));
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef y, AsPred(b, "pred_and"));
  return Value::Pred(algebra::PredAnd(x, y));
}

Result<Value> refers_both(const catalog::Catalog*, const Value& pred,
                          const Value& a, const Value& b) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "refers_both"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList x, AsAttrs(a, "refers_both"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList y, AsAttrs(b, "refers_both"));
  bool in_a = false, in_b = false;
  for (const Attr& attr : p->ReferencedAttrs()) {
    in_a = in_a || algebra::Contains(x, attr);
    in_b = in_b || algebra::Contains(y, attr);
  }
  return Value::Bool(in_a && in_b);
}

Result<Value> refers_only(const catalog::Catalog*, const Value& pred,
                          const Value& attrs) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "refers_only"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList a, AsAttrs(attrs, "refers_only"));
  return Value::Bool(algebra::IsSubset(p->ReferencedAttrs(), a));
}

Result<Value> is_equijoinable(const catalog::Catalog*, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "is_equijoinable"));
  for (const PredicateRef& c : p->Conjuncts()) {
    if (c->IsEquiJoin()) return Value::Bool(true);
  }
  return Value::Bool(false);
}

Result<Value> has_index_eq(const catalog::Catalog* cat, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "has_index_eq"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "has_index_eq"));
  return Value::Bool(FindIndexedEq(p, *c, nullptr, nullptr));
}

Result<Value> indexed_attr(const catalog::Catalog* cat, const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "indexed_attr"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "indexed_attr"));
  Attr a;
  AttrList out;
  if (FindIndexedEq(p, *c, &a, nullptr)) out.push_back(a);
  return Value::Attrs(std::move(out));
}

Result<Value> index_eq_cost(const catalog::Catalog* cat, const Value& card,
                            const Value& pred) {
  PRAIRIE_ASSIGN_OR_RETURN(double n, AsReal(card, "index_eq_cost"));
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "index_eq_cost"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "index_eq_cost"));
  PredicateRef eq;
  Attr a;
  if (!FindIndexedEq(p, *c, &a, &eq)) {
    return Status::RuleError(
        "index_eq_cost: predicate has no indexed equality conjunct");
  }
  double sel = catalog::EstimateSelectivity(eq, *c);
  return Value::Real(std::max(1.0, n * sel));
}

Result<Value> any_index(const catalog::Catalog* cat, const Value& attrs) {
  PRAIRIE_ASSIGN_OR_RETURN(AttrList a, AsAttrs(attrs, "any_index"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "any_index"));
  for (const Attr& x : a) {
    if (c->HasIndexOn(x)) return Value::Bool(true);
  }
  return Value::Bool(false);
}

Result<Value> first_index_attr(const catalog::Catalog* cat,
                               const Value& attrs) {
  PRAIRIE_ASSIGN_OR_RETURN(AttrList a, AsAttrs(attrs, "first_index_attr"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "first_index_attr"));
  AttrList out;
  for (const Attr& x : a) {
    if (c->HasIndexOn(x)) {
      out.push_back(x);
      break;
    }
  }
  return Value::Attrs(std::move(out));
}

Result<Value> sort_on(const catalog::Catalog*, const Value& attrs) {
  PRAIRIE_ASSIGN_OR_RETURN(AttrList a, AsAttrs(attrs, "sort_on"));
  SortSpec spec;
  for (const Attr& x : a) {
    spec.keys.push_back(SortSpec::Key{x, /*ascending=*/true});
  }
  return Value::Sort(std::move(spec));
}

Result<Value> side_join_attrs(const catalog::Catalog*, const Value& pred,
                              const Value& side) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "side_join_attrs"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList s, AsAttrs(side, "side_join_attrs"));
  AttrList out;
  for (const PredicateRef& c : p->Conjuncts()) {
    if (!c->IsEquiJoin()) continue;
    if (algebra::Contains(s, c->left().attr)) {
      out.push_back(c->left().attr);
    } else if (algebra::Contains(s, c->right().attr)) {
      out.push_back(c->right().attr);
    }
  }
  return Value::Attrs(std::move(out));
}

Result<Value> is_ref_join(const catalog::Catalog* cat, const Value& pred,
                          const Value& left, const Value& right) {
  PRAIRIE_ASSIGN_OR_RETURN(PredicateRef p, AsPred(pred, "is_ref_join"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList l, AsAttrs(left, "is_ref_join"));
  PRAIRIE_ASSIGN_OR_RETURN(AttrList r, AsAttrs(right, "is_ref_join"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "is_ref_join"));
  // A pointer join needs one equi conjunct "l.ref = r.oid" where l.ref is
  // a reference attribute of a left class targeting the right class.
  for (const PredicateRef& conj : p->Conjuncts()) {
    if (!conj->IsEquiJoin()) continue;
    for (const auto& [ref_term, oid_term] :
         {std::make_pair(conj->left(), conj->right()),
          std::make_pair(conj->right(), conj->left())}) {
      if (!algebra::Contains(l, ref_term.attr) ||
          !algebra::Contains(r, oid_term.attr)) {
        continue;
      }
      const catalog::StoredFile* f = c->Find(ref_term.attr.cls);
      if (f == nullptr) continue;
      const catalog::AttributeDef* ad = f->FindAttr(ref_term.attr.name);
      if (ad == nullptr || !ad->is_reference()) continue;
      if (ad->ref_class == oid_term.attr.cls && oid_term.attr.name == "oid") {
        return Value::Bool(true);
      }
    }
  }
  return Value::Bool(false);
}

Result<Value> class_attrs(const catalog::Catalog* cat, const Value& cls) {
  PRAIRIE_ASSIGN_OR_RETURN(std::string name, AsStr(cls, "class_attrs"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "class_attrs"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* f, c->Require(name));
  return Value::Attrs(f->QualifiedAttrs());
}

Result<Value> class_card(const catalog::Catalog* cat, const Value& cls) {
  PRAIRIE_ASSIGN_OR_RETURN(std::string name, AsStr(cls, "class_card"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "class_card"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* f, c->Require(name));
  return Value::Real(static_cast<double>(f->cardinality()));
}

Result<Value> class_tuple_size(const catalog::Catalog* cat,
                               const Value& cls) {
  PRAIRIE_ASSIGN_OR_RETURN(std::string name, AsStr(cls, "class_tuple_size"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::Catalog* c,
                           NeedCat(cat, "class_tuple_size"));
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* f, c->Require(name));
  return Value::Real(static_cast<double>(f->tuple_size()));
}

Result<Value> log_(const catalog::Catalog*, const Value& x) {
  PRAIRIE_ASSIGN_OR_RETURN(double v, AsReal(x, "log"));
  return Value::Real(v <= 1.0 ? 0.0 : std::log(v));
}

Result<Value> log2_(const catalog::Catalog*, const Value& x) {
  PRAIRIE_ASSIGN_OR_RETURN(double v, AsReal(x, "log2"));
  return Value::Real(v <= 1.0 ? 0.0 : std::log2(v));
}

Result<Value> ceil_(const catalog::Catalog*, const Value& x) {
  PRAIRIE_ASSIGN_OR_RETURN(double v, AsReal(x, "ceil"));
  return Value::Real(std::ceil(v));
}

Result<Value> floor_(const catalog::Catalog*, const Value& x) {
  PRAIRIE_ASSIGN_OR_RETURN(double v, AsReal(x, "floor"));
  return Value::Real(std::floor(v));
}

Result<Value> abs_(const catalog::Catalog*, const Value& x) {
  PRAIRIE_ASSIGN_OR_RETURN(double v, AsReal(x, "abs"));
  return Value::Real(std::fabs(v));
}

Result<Value> pow_(const catalog::Catalog*, const Value& b, const Value& e) {
  PRAIRIE_ASSIGN_OR_RETURN(double base, AsReal(b, "pow"));
  PRAIRIE_ASSIGN_OR_RETURN(double exp, AsReal(e, "pow"));
  return Value::Real(std::pow(base, exp));
}

std::map<std::string, std::string> NativeHelperMap() {
  const char* ns = "prairie::opt::native::";
  std::map<std::string, std::string> out;
  for (const char* name :
       {"selectivity", "join_card", "attrs_minus", "attrs_subset",
        "conj_over", "conj_not_over", "conj_count", "first_conjunct",
        "rest_conjuncts", "pred_and", "refers_both", "refers_only",
        "is_equijoinable", "has_index_eq", "indexed_attr", "index_eq_cost",
        "any_index", "first_index_attr", "sort_on", "side_join_attrs",
        "is_ref_join", "class_attrs", "class_card", "class_tuple_size"}) {
    out[name] = std::string(ns) + name;
  }
  out["union"] = std::string(ns) + "union_";
  out["log"] = std::string(ns) + "log_";
  out["log2"] = std::string(ns) + "log2_";
  out["ceil"] = std::string(ns) + "ceil_";
  out["floor"] = std::string(ns) + "floor_";
  out["abs"] = std::string(ns) + "abs_";
  out["pow"] = std::string(ns) + "pow_";
  return out;
}

}  // namespace prairie::opt::native

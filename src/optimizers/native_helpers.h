// Native implementations of the domain helper functions.
//
// These are the "support functions" of the paper's model: hand-written
// code that rule actions call. They exist once, here, and are deployed
// two ways:
//   - wrapped into the core::HelperRegistry (props.cc) for the
//     interpreted P2V deployment, and
//   - called *directly* from P2V-emitted C++ (the paper's architecture:
//     support C code is linked with the generated optimizer), via the
//     emitter's native-helper map (NativeHelperMap()).
//
// Every function takes the catalog (statistics) first and Values for the
// rule-action arguments; type errors surface as Status.

#pragma once

#include <map>
#include <string>

#include "algebra/value.h"
#include "catalog/catalog.h"
#include "common/result.h"

namespace prairie::opt::native {

using algebra::Value;
using common::Result;

Result<Value> selectivity(const catalog::Catalog* cat, const Value& pred);
Result<Value> join_card(const catalog::Catalog* cat, const Value& nl,
                        const Value& nr, const Value& pred);
Result<Value> union_(const catalog::Catalog* cat, const Value& a,
                     const Value& b);
Result<Value> attrs_minus(const catalog::Catalog* cat, const Value& a,
                          const Value& b);
Result<Value> attrs_subset(const catalog::Catalog* cat, const Value& a,
                           const Value& b);
Result<Value> conj_over(const catalog::Catalog* cat, const Value& pred,
                        const Value& attrs);
Result<Value> conj_not_over(const catalog::Catalog* cat, const Value& pred,
                            const Value& attrs);
Result<Value> conj_count(const catalog::Catalog* cat, const Value& pred);
Result<Value> first_conjunct(const catalog::Catalog* cat, const Value& pred);
Result<Value> rest_conjuncts(const catalog::Catalog* cat, const Value& pred);
Result<Value> pred_and(const catalog::Catalog* cat, const Value& a,
                       const Value& b);
Result<Value> refers_both(const catalog::Catalog* cat, const Value& pred,
                          const Value& a, const Value& b);
Result<Value> refers_only(const catalog::Catalog* cat, const Value& pred,
                          const Value& attrs);
Result<Value> is_equijoinable(const catalog::Catalog* cat, const Value& pred);
Result<Value> has_index_eq(const catalog::Catalog* cat, const Value& pred);
Result<Value> indexed_attr(const catalog::Catalog* cat, const Value& pred);
Result<Value> index_eq_cost(const catalog::Catalog* cat, const Value& card,
                            const Value& pred);
Result<Value> any_index(const catalog::Catalog* cat, const Value& attrs);
Result<Value> first_index_attr(const catalog::Catalog* cat,
                               const Value& attrs);
Result<Value> sort_on(const catalog::Catalog* cat, const Value& attrs);
Result<Value> side_join_attrs(const catalog::Catalog* cat, const Value& pred,
                              const Value& side);
Result<Value> is_ref_join(const catalog::Catalog* cat, const Value& pred,
                          const Value& left, const Value& right);
Result<Value> class_attrs(const catalog::Catalog* cat, const Value& cls);
Result<Value> class_card(const catalog::Catalog* cat, const Value& cls);
Result<Value> class_tuple_size(const catalog::Catalog* cat,
                               const Value& cls);
// Numeric builtins (catalog unused; uniform signature for the emitter).
Result<Value> log_(const catalog::Catalog* cat, const Value& x);
Result<Value> log2_(const catalog::Catalog* cat, const Value& x);
Result<Value> ceil_(const catalog::Catalog* cat, const Value& x);
Result<Value> floor_(const catalog::Catalog* cat, const Value& x);
Result<Value> abs_(const catalog::Catalog* cat, const Value& x);
Result<Value> pow_(const catalog::Catalog* cat, const Value& b,
                   const Value& e);

/// Helper name -> fully qualified native function, for the P2V emitter
/// (names the DSL uses map onto the functions above).
std::map<std::string, std::string> NativeHelperMap();

}  // namespace prairie::opt::native

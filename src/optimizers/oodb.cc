#include "optimizers/oodb.h"

#include "dsl/parser.h"
#include "optimizers/props.h"

namespace prairie::opt {

namespace {

constexpr const char* kOodbSpec = R"PRAIRIE(
// ---------------------------------------------------------------------------
// Open-OODB-scale object query optimizer (paper §4).
// 22 T-rules + 11 I-rules; P2V compacts to 17 trans_rules + 9 impl_rules
// + the Merge_sort enforcer.
// ---------------------------------------------------------------------------

property tuple_order : sortspec;
property num_records : real;
property tuple_size : real;
property attributes : attrs;
property selection_predicate : predicate;
property join_predicate : predicate;
property projected_attributes : attrs;
property index_attr : attrs;
property mat_attr : attrs;
property mat_class : string;
property unnest_attr : attrs;
property unnest_mult : real;
property cost : cost;

operator RET(1);
operator JOIN(2);
operator SELECT(1);
operator PROJECT(1);
operator MAT(1);
operator UNNEST(1);
operator SORT(1);
// Alias operators for the enforcer-introduction rules; merged away by P2V.
operator RETS(1);
operator JOINS(2);
operator SELS(1);
operator MATS(1);
operator UNNESTS(1);

algorithm File_scan(1);
algorithm Index_scan(1);
algorithm Filter(1);
algorithm Projection(1);
algorithm Hash_join(2);
algorithm Pointer_join(2);
algorithm Deref(1);
algorithm Flatten(1);
algorithm Merge_sort(1);

// ================================ T-rules =================================

// --- join reordering (3) ---

trule join_commute: JOIN[D3](?1, ?2) => JOIN[D4](?2, ?1) {
  post { D4 = D3; }
}

trule join_assoc_lr:
    JOIN[D5](JOIN[D4](?1, ?2), ?3) => JOIN[D7](?1, JOIN[D6](?2, ?3)) {
  pre {
    D6.join_predicate = conj_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D2.attributes, D3.attributes));
  }
  test refers_both(D6.join_predicate, D2.attributes, D3.attributes);
  post {
    D6.attributes = union(D2.attributes, D3.attributes);
    D6.num_records =
        join_card(D2.num_records, D3.num_records, D6.join_predicate);
    D6.tuple_size = D2.tuple_size + D3.tuple_size;
    D7.join_predicate = conj_not_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D2.attributes, D3.attributes));
    D7.attributes = D5.attributes;
    D7.num_records = D5.num_records;
    D7.tuple_size = D5.tuple_size;
  }
}

trule join_assoc_rl:
    JOIN[D5](?1, JOIN[D4](?2, ?3)) => JOIN[D7](JOIN[D6](?1, ?2), ?3) {
  pre {
    D6.join_predicate = conj_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D1.attributes, D2.attributes));
  }
  test refers_both(D6.join_predicate, D1.attributes, D2.attributes);
  post {
    D6.attributes = union(D1.attributes, D2.attributes);
    D6.num_records =
        join_card(D1.num_records, D2.num_records, D6.join_predicate);
    D6.tuple_size = D1.tuple_size + D2.tuple_size;
    D7.join_predicate = conj_not_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D1.attributes, D2.attributes));
    D7.attributes = D5.attributes;
    D7.num_records = D5.num_records;
    D7.tuple_size = D5.tuple_size;
  }
}

// --- selection vs. join (4) ---

trule select_push_join_left:
    SELECT[D4](JOIN[D3](?1, ?2)) => JOIN[D6](SELECT[D5](?1), ?2) {
  test refers_only(D4.selection_predicate, D1.attributes);
  post {
    D5.selection_predicate = D4.selection_predicate;
    D5.attributes = D1.attributes;
    D5.num_records =
        D1.num_records * selectivity(D4.selection_predicate);
    D5.tuple_size = D1.tuple_size;
    D6 = D3;
    D6.num_records = D4.num_records;
  }
}

trule select_pull_join_left:
    JOIN[D4](SELECT[D3](?1), ?2) => SELECT[D6](JOIN[D5](?1, ?2)) {
  post {
    D5.join_predicate = D4.join_predicate;
    D5.attributes = union(D1.attributes, D2.attributes);
    D5.num_records =
        join_card(D1.num_records, D2.num_records, D4.join_predicate);
    D5.tuple_size = D1.tuple_size + D2.tuple_size;
    D6.selection_predicate = D3.selection_predicate;
    D6.attributes = D5.attributes;
    D6.num_records = D4.num_records;
    D6.tuple_size = D5.tuple_size;
  }
}

trule select_push_join_right:
    SELECT[D4](JOIN[D3](?1, ?2)) => JOIN[D6](?1, SELECT[D5](?2)) {
  test refers_only(D4.selection_predicate, D2.attributes);
  post {
    D5.selection_predicate = D4.selection_predicate;
    D5.attributes = D2.attributes;
    D5.num_records =
        D2.num_records * selectivity(D4.selection_predicate);
    D5.tuple_size = D2.tuple_size;
    D6 = D3;
    D6.num_records = D4.num_records;
  }
}

trule select_pull_join_right:
    JOIN[D4](?1, SELECT[D3](?2)) => SELECT[D6](JOIN[D5](?1, ?2)) {
  post {
    D5.join_predicate = D4.join_predicate;
    D5.attributes = union(D1.attributes, D2.attributes);
    D5.num_records =
        join_card(D1.num_records, D2.num_records, D4.join_predicate);
    D5.tuple_size = D1.tuple_size + D2.tuple_size;
    D6.selection_predicate = D3.selection_predicate;
    D6.attributes = D5.attributes;
    D6.num_records = D4.num_records;
    D6.tuple_size = D5.tuple_size;
  }
}

// --- selection algebra (3) ---

trule select_split: SELECT[D2](?1) => SELECT[D4](SELECT[D3](?1)) {
  test conj_count(D2.selection_predicate) >= 2;
  post {
    D3.selection_predicate = first_conjunct(D2.selection_predicate);
    D3.attributes = D1.attributes;
    D3.num_records =
        D1.num_records * selectivity(first_conjunct(D2.selection_predicate));
    D3.tuple_size = D1.tuple_size;
    D4.selection_predicate = rest_conjuncts(D2.selection_predicate);
    D4.attributes = D2.attributes;
    D4.num_records = D2.num_records;
    D4.tuple_size = D2.tuple_size;
  }
}

trule select_merge: SELECT[D3](SELECT[D2](?1)) => SELECT[D4](?1) {
  post {
    D4 = D3;
    D4.selection_predicate =
        pred_and(D2.selection_predicate, D3.selection_predicate);
  }
}

trule select_into_ret: SELECT[D3](RET[D2](?1)) => RET[D4](?1) {
  post {
    D4 = D2;
    D4.selection_predicate =
        pred_and(D2.selection_predicate, D3.selection_predicate);
    D4.num_records = D3.num_records;
  }
}

// --- selection vs. materialize / unnest (4) ---

trule select_push_mat: SELECT[D4](MAT[D3](?1)) => MAT[D6](SELECT[D5](?1)) {
  test refers_only(D4.selection_predicate, D1.attributes);
  post {
    D5.selection_predicate = D4.selection_predicate;
    D5.attributes = D1.attributes;
    D5.num_records =
        D1.num_records * selectivity(D4.selection_predicate);
    D5.tuple_size = D1.tuple_size;
    D6 = D3;
    D6.num_records = D4.num_records;
  }
}

trule select_pull_mat: MAT[D4](SELECT[D3](?1)) => SELECT[D6](MAT[D5](?1)) {
  post {
    D5.mat_attr = D4.mat_attr;
    D5.mat_class = D4.mat_class;
    D5.attributes = union(D1.attributes, class_attrs(D4.mat_class));
    D5.num_records = D1.num_records;
    D5.tuple_size = D1.tuple_size + class_tuple_size(D4.mat_class);
    D6.selection_predicate = D3.selection_predicate;
    D6.attributes = D5.attributes;
    D6.num_records = D4.num_records;
    D6.tuple_size = D5.tuple_size;
  }
}

trule select_push_unnest:
    SELECT[D4](UNNEST[D3](?1)) => UNNEST[D6](SELECT[D5](?1)) {
  test refers_only(D4.selection_predicate,
                   attrs_minus(D1.attributes, D3.unnest_attr));
  post {
    D5.selection_predicate = D4.selection_predicate;
    D5.attributes = D1.attributes;
    D5.num_records =
        D1.num_records * selectivity(D4.selection_predicate);
    D5.tuple_size = D1.tuple_size;
    D6 = D3;
    D6.num_records = D4.num_records;
  }
}

trule select_pull_unnest:
    UNNEST[D4](SELECT[D3](?1)) => SELECT[D6](UNNEST[D5](?1)) {
  test refers_only(D3.selection_predicate,
                   attrs_minus(D1.attributes, D4.unnest_attr));
  post {
    D5.unnest_attr = D4.unnest_attr;
    D5.unnest_mult = D4.unnest_mult;
    D5.attributes = D1.attributes;
    D5.num_records = D1.num_records * D4.unnest_mult;
    D5.tuple_size = D1.tuple_size;
    D6.selection_predicate = D3.selection_predicate;
    D6.attributes = D5.attributes;
    D6.num_records = D4.num_records;
    D6.tuple_size = D5.tuple_size;
  }
}

// --- materialize vs. join (2) + materialize reordering (1) ---

trule mat_push_join_left:
    MAT[D4](JOIN[D3](?1, ?2)) => JOIN[D6](MAT[D5](?1), ?2) {
  test attrs_subset(D4.mat_attr, D1.attributes);
  post {
    D5.mat_attr = D4.mat_attr;
    D5.mat_class = D4.mat_class;
    D5.attributes = union(D1.attributes, class_attrs(D4.mat_class));
    D5.num_records = D1.num_records;
    D5.tuple_size = D1.tuple_size + class_tuple_size(D4.mat_class);
    D6 = D3;
    D6.attributes = D4.attributes;
    D6.tuple_size = D4.tuple_size;
  }
}

trule mat_pull_join_left:
    JOIN[D4](MAT[D3](?1), ?2) => MAT[D6](JOIN[D5](?1, ?2)) {
  test refers_only(D4.join_predicate, union(D1.attributes, D2.attributes));
  post {
    D5.join_predicate = D4.join_predicate;
    D5.attributes = union(D1.attributes, D2.attributes);
    D5.num_records =
        join_card(D1.num_records, D2.num_records, D4.join_predicate);
    D5.tuple_size = D1.tuple_size + D2.tuple_size;
    D6.mat_attr = D3.mat_attr;
    D6.mat_class = D3.mat_class;
    D6.attributes = union(D5.attributes, class_attrs(D3.mat_class));
    D6.num_records = D5.num_records;
    D6.tuple_size = D5.tuple_size + class_tuple_size(D3.mat_class);
  }
}

trule mat_mat_swap: MAT[D3](MAT[D2](?1)) => MAT[D5](MAT[D4](?1)) {
  test attrs_subset(D3.mat_attr, D1.attributes);
  post {
    D4.mat_attr = D3.mat_attr;
    D4.mat_class = D3.mat_class;
    D4.attributes = union(D1.attributes, class_attrs(D3.mat_class));
    D4.num_records = D1.num_records;
    D4.tuple_size = D1.tuple_size + class_tuple_size(D3.mat_class);
    D5.mat_attr = D2.mat_attr;
    D5.mat_class = D2.mat_class;
    D5.attributes = D3.attributes;
    D5.num_records = D3.num_records;
    D5.tuple_size = D3.tuple_size;
  }
}

// --- enforcer-introduction rules (5), merged away by P2V ---

trule intro_sort_ret: RET[D2](?1) => SORT[D4](RETS[D3](?1)) {
  post { D3 = D2; D4 = D2; }
}

trule intro_sort_join: JOIN[D3](?1, ?2) => SORT[D5](JOINS[D4](?1, ?2)) {
  post { D4 = D3; D5 = D3; }
}

trule intro_sort_select: SELECT[D2](?1) => SORT[D4](SELS[D3](?1)) {
  post { D3 = D2; D4 = D2; }
}

trule intro_sort_mat: MAT[D2](?1) => SORT[D4](MATS[D3](?1)) {
  post { D3 = D2; D4 = D2; }
}

trule intro_sort_unnest: UNNEST[D2](?1) => SORT[D4](UNNESTS[D3](?1)) {
  post { D3 = D2; D4 = D2; }
}

// ================================ I-rules =================================

irule file_scan: RET[D2](?1) => File_scan[D3](?1) {
  preopt { D3 = D2; D3.tuple_order = DONT_CARE; }
  postopt { D3.cost = D1.num_records; }
}

// Index equality lookup (the per-rule property model lets Index_scan have
// two I-rules with different properties, §3.2.2).
irule index_scan_eq: RET[D2](?1) => Index_scan[D3](?1) {
  test has_index_eq(D2.selection_predicate);
  preopt {
    D3 = D2;
    D3.index_attr = indexed_attr(D2.selection_predicate);
    D3.tuple_order = DONT_CARE;
  }
  postopt {
    D3.cost = index_eq_cost(D1.num_records, D2.selection_predicate);
  }
}

// Full index-order scan: costs a whole pass but delivers a sort order.
irule index_scan_order: RET[D2](?1) => Index_scan[D3](?1) {
  test any_index(D1.attributes);
  preopt {
    D3 = D2;
    D3.index_attr = first_index_attr(D1.attributes);
    D3.tuple_order = sort_on(first_index_attr(D1.attributes));
  }
  postopt { D3.cost = D1.num_records + D2.num_records; }
}

irule filter: SELECT[D2](?1) => Filter[D4](?1:D3) {
  preopt {
    D4 = D2;
    D3 = D1;
    D3.tuple_order = D2.tuple_order;
  }
  postopt { D4.cost = D3.cost + D3.num_records; }
}

irule projection: PROJECT[D2](?1) => Projection[D4](?1:D3) {
  preopt {
    D4 = D2;
    D3 = D1;
    D3.tuple_order = D2.tuple_order;
  }
  postopt { D4.cost = D3.cost + D3.num_records; }
}

irule hash_join: JOIN[D3](?1, ?2) => Hash_join[D4](?1, ?2) {
  test is_equijoinable(D3.join_predicate);
  preopt { D4 = D3; D4.tuple_order = DONT_CARE; }
  postopt {
    D4.cost = D1.cost + D2.cost + D1.num_records + D2.num_records;
  }
}

irule pointer_join: JOIN[D3](?1, ?2) => Pointer_join[D4](?1, ?2) {
  test is_ref_join(D3.join_predicate, D1.attributes, D2.attributes);
  preopt { D4 = D3; D4.tuple_order = DONT_CARE; }
  postopt { D4.cost = D1.cost + D2.cost + D1.num_records; }
}

irule deref: MAT[D2](?1) => Deref[D4](?1:D3) {
  preopt {
    D4 = D2;
    D3 = D1;
    D3.tuple_order = D2.tuple_order;
  }
  postopt { D4.cost = D3.cost + D3.num_records; }
}

irule flatten: UNNEST[D2](?1) => Flatten[D4](?1:D3) {
  preopt {
    D4 = D2;
    D4.tuple_order = DONT_CARE;
    D3 = D1;
  }
  postopt { D4.cost = D3.cost + D4.num_records; }
}

// Figure 5 of the paper.
irule merge_sort: SORT[D2](?1) => Merge_sort[D3](?1) {
  test D2.tuple_order != DONT_CARE;
  preopt { D3 = D2; }
  postopt { D3.cost = D1.cost + D3.num_records * log(D3.num_records); }
}

// Figure 7(b): SORT is an enforcer-operator.
irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
  preopt {
    D4 = D2;
    D3 = D1;
    D3.tuple_order = D2.tuple_order;
  }
  postopt { D4.cost = D3.cost; }
}
)PRAIRIE";

}  // namespace

const char* OodbSpecText() { return kOodbSpec; }

common::Result<core::RuleSet> BuildOodbPrairie() {
  return dsl::ParseRuleSet(kOodbSpec, StandardHelpers());
}

}  // namespace prairie::opt

#include "optimizers/reference.h"

#include "exec/eval.h"
#include "optimizers/props.h"

namespace prairie::opt {

using algebra::Attr;
using algebra::AttrList;
using algebra::Expr;
using algebra::PredicateRef;
using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;
using exec::Database;
using exec::Datum;
using exec::Row;
using exec::RowSchema;
using exec::Table;

namespace {

Result<PredicateRef> PredOf(const Expr& node, const char* prop) {
  PRAIRIE_ASSIGN_OR_RETURN(Value v, node.descriptor().Get(prop));
  if (v.is_null() || v.type() != ValueType::kPred) {
    return PredicateRef(nullptr);
  }
  return v.AsPred();
}

Status Filter(const PredicateRef& pred, ReferenceResult* r) {
  if (pred == nullptr || pred->is_true()) return Status::OK();
  std::vector<Row> kept;
  for (Row& row : r->rows) {
    PRAIRIE_ASSIGN_OR_RETURN(bool keep,
                             exec::EvalPredicate(pred, row, r->schema));
    if (keep) kept.push_back(std::move(row));
  }
  r->rows = std::move(kept);
  return Status::OK();
}

}  // namespace

Result<ReferenceResult> EvaluateLogical(const Expr& tree,
                                        const algebra::Algebra& algebra,
                                        const Database& db) {
  if (tree.is_file()) {
    return Status::ExecError("bare stored file reached the evaluator");
  }
  const std::string& op = algebra.name(tree.op());

  if (op == "RET") {
    PRAIRIE_ASSIGN_OR_RETURN(const Table* t,
                             db.Require(tree.child(0).file_name()));
    ReferenceResult r;
    r.schema = t->schema();
    r.rows = t->rows();
    PRAIRIE_ASSIGN_OR_RETURN(PredicateRef pred,
                             PredOf(tree, kSelectionPredicate));
    PRAIRIE_RETURN_NOT_OK(Filter(pred, &r));
    return r;
  }

  if (op == "JOIN") {
    PRAIRIE_ASSIGN_OR_RETURN(ReferenceResult l,
                             EvaluateLogical(tree.child(0), algebra, db));
    PRAIRIE_ASSIGN_OR_RETURN(ReferenceResult r,
                             EvaluateLogical(tree.child(1), algebra, db));
    ReferenceResult out;
    out.schema = RowSchema::Concat(l.schema, r.schema);
    PRAIRIE_ASSIGN_OR_RETURN(PredicateRef pred, PredOf(tree, kJoinPredicate));
    for (const Row& a : l.rows) {
      for (const Row& b : r.rows) {
        Row joined = a;
        joined.insert(joined.end(), b.begin(), b.end());
        PRAIRIE_ASSIGN_OR_RETURN(
            bool keep, exec::EvalPredicate(pred, joined, out.schema));
        if (keep) out.rows.push_back(std::move(joined));
      }
    }
    return out;
  }

  if (op == "SELECT") {
    PRAIRIE_ASSIGN_OR_RETURN(ReferenceResult r,
                             EvaluateLogical(tree.child(0), algebra, db));
    PRAIRIE_ASSIGN_OR_RETURN(PredicateRef pred,
                             PredOf(tree, kSelectionPredicate));
    PRAIRIE_RETURN_NOT_OK(Filter(pred, &r));
    return r;
  }

  if (op == "PROJECT") {
    PRAIRIE_ASSIGN_OR_RETURN(ReferenceResult r,
                             EvaluateLogical(tree.child(0), algebra, db));
    PRAIRIE_ASSIGN_OR_RETURN(Value attrs,
                             tree.descriptor().Get(kProjectedAttributes));
    if (attrs.is_null()) {
      return Status::ExecError("PROJECT without projected_attributes");
    }
    ReferenceResult out;
    out.schema.attrs = attrs.AsAttrs();
    std::vector<size_t> positions;
    for (const Attr& a : out.schema.attrs) {
      PRAIRIE_ASSIGN_OR_RETURN(int i, r.schema.Require(a));
      positions.push_back(static_cast<size_t>(i));
    }
    for (const Row& row : r.rows) {
      Row projected;
      projected.reserve(positions.size());
      for (size_t p : positions) projected.push_back(row[p]);
      out.rows.push_back(std::move(projected));
    }
    return out;
  }

  if (op == "MAT") {
    PRAIRIE_ASSIGN_OR_RETURN(ReferenceResult r,
                             EvaluateLogical(tree.child(0), algebra, db));
    PRAIRIE_ASSIGN_OR_RETURN(Value ref, tree.descriptor().Get(kMatAttr));
    PRAIRIE_ASSIGN_OR_RETURN(Value cls, tree.descriptor().Get(kMatClass));
    if (ref.is_null() || ref.AsAttrs().empty() || cls.is_null()) {
      return Status::ExecError("MAT without mat_attr / mat_class");
    }
    PRAIRIE_ASSIGN_OR_RETURN(const Table* target,
                             db.Require(cls.AsString()));
    PRAIRIE_ASSIGN_OR_RETURN(int pos, r.schema.Require(ref.AsAttrs()[0]));
    ReferenceResult out;
    out.schema = RowSchema::Concat(r.schema, target->schema());
    for (const Row& row : r.rows) {
      const Datum& oid = row[static_cast<size_t>(pos)];
      if (!std::holds_alternative<int64_t>(oid.v)) continue;
      int64_t id = std::get<int64_t>(oid.v);
      if (id < 0 || id >= static_cast<int64_t>(target->NumRows())) continue;
      Row joined = row;
      const Row& t = target->row(static_cast<size_t>(id));
      joined.insert(joined.end(), t.begin(), t.end());
      out.rows.push_back(std::move(joined));
    }
    return out;
  }

  if (op == "UNNEST") {
    PRAIRIE_ASSIGN_OR_RETURN(ReferenceResult r,
                             EvaluateLogical(tree.child(0), algebra, db));
    PRAIRIE_ASSIGN_OR_RETURN(Value attr, tree.descriptor().Get(kUnnestAttr));
    if (attr.is_null() || attr.AsAttrs().empty()) {
      return Status::ExecError("UNNEST without unnest_attr");
    }
    const Attr& set_attr = attr.AsAttrs()[0];
    PRAIRIE_ASSIGN_OR_RETURN(const Table* t, db.Require(set_attr.cls));
    PRAIRIE_ASSIGN_OR_RETURN(int pos, r.schema.Require(set_attr));
    PRAIRIE_ASSIGN_OR_RETURN(int oid_pos,
                             r.schema.Require(Attr{set_attr.cls, "oid"}));
    ReferenceResult out;
    out.schema = r.schema;
    for (const Row& row : r.rows) {
      const Datum& oid = row[static_cast<size_t>(oid_pos)];
      if (!std::holds_alternative<int64_t>(oid.v)) continue;
      int64_t id = std::get<int64_t>(oid.v);
      if (id < 0 || id >= static_cast<int64_t>(t->NumRows())) continue;
      const std::vector<Datum>* set =
          t->GetSetValues(set_attr.name, static_cast<size_t>(id));
      if (set == nullptr) continue;
      for (const Datum& element : *set) {
        Row expanded = row;
        expanded[static_cast<size_t>(pos)] = element;
        out.rows.push_back(std::move(expanded));
      }
    }
    return out;
  }

  return Status::NotImplemented("reference evaluation of operator '" + op +
                                "'");
}

}  // namespace prairie::opt

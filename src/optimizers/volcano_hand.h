// Hand-coded Volcano rule sets: the baseline of the paper's experiments.
//
// These construct the same optimizers as the P2V-translated Prairie
// specifications, but with rule conditions, property transformations and
// cost functions written directly as compiled C++ (the moral equivalent
// of the support-function C code a Volcano user writes by hand). The
// benchmark harness compares their optimization times against the
// P2V-generated, AST-interpreted rule sets (Figures 10-13).

#pragma once

#include <memory>

#include "volcano/rules.h"

namespace prairie::opt {

/// Hand-coded Volcano version of the relational optimizer
/// (3 trans_rules, 5 impl_rules, 1 enforcer after compaction).
common::Result<std::shared_ptr<volcano::RuleSet>> BuildRelationalVolcano();

/// Hand-coded Volcano version of the OODB optimizer
/// (17 trans_rules, 9 impl_rules, 1 enforcer).
common::Result<std::shared_ptr<volcano::RuleSet>> BuildOodbVolcano();

}  // namespace prairie::opt

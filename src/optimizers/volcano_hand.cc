#include "optimizers/volcano_hand.h"

#include <algorithm>
#include <cmath>

#include "catalog/catalog.h"
#include "optimizers/props.h"

namespace prairie::opt {

using algebra::Algebra;
using algebra::Attr;
using algebra::AttrList;
using algebra::Descriptor;
using algebra::OpId;
using algebra::PatNode;
using algebra::PatNodePtr;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::SortSpec;
using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;
using volcano::BindingView;
using volcano::Enforcer;
using volcano::ImplRule;
using volcano::RuleSet;
using volcano::TransRule;

namespace {

// ---------------------------------------------------------------------------
// Support functions (the hand-written C code of a Volcano rule set)
// ---------------------------------------------------------------------------

PredicateRef GetPred(const Value& v) {
  if (v.is_null() || v.type() != ValueType::kPred || v.AsPred() == nullptr) {
    return Predicate::True();
  }
  return v.AsPred();
}

double GetReal(const Value& v, double def = 0) { return v.ToReal().ValueOr(def); }

AttrList GetAttrs(const Value& v) {
  return v.is_null() ? AttrList{} : v.AsAttrs();
}

PredicateRef ConjOver(const PredicateRef& pred, const AttrList& attrs,
                      bool over) {
  std::vector<PredicateRef> keep;
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (algebra::IsSubset(c->ReferencedAttrs(), attrs) == over) {
      keep.push_back(c);
    }
  }
  return Predicate::And(std::move(keep));
}

bool RefersBoth(const PredicateRef& pred, const AttrList& a,
                const AttrList& b) {
  bool in_a = false, in_b = false;
  for (const Attr& x : pred->ReferencedAttrs()) {
    in_a = in_a || algebra::Contains(a, x);
    in_b = in_b || algebra::Contains(b, x);
  }
  return in_a && in_b;
}

bool IsEquijoinable(const PredicateRef& pred) {
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (c->IsEquiJoin()) return true;
  }
  return false;
}

const Attr* FindIndexedEq(const PredicateRef& pred,
                          const catalog::Catalog& cat,
                          PredicateRef* eq_conjunct) {
  static thread_local Attr result;
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (c->kind() != Predicate::Kind::kCmp ||
        c->cmp_op() != algebra::CmpOp::kEq) {
      continue;
    }
    const algebra::Term* attr_term = nullptr;
    if (c->left().is_attr() && !c->right().is_attr()) {
      attr_term = &c->left();
    } else if (c->right().is_attr() && !c->left().is_attr()) {
      attr_term = &c->right();
    } else {
      continue;
    }
    if (cat.HasIndexOn(attr_term->attr)) {
      result = attr_term->attr;
      if (eq_conjunct != nullptr) *eq_conjunct = c;
      return &result;
    }
  }
  return nullptr;
}

const Attr* FirstIndexAttr(const AttrList& attrs,
                           const catalog::Catalog& cat) {
  static thread_local Attr result;
  for (const Attr& a : attrs) {
    if (cat.HasIndexOn(a)) {
      result = a;
      return &result;
    }
  }
  return nullptr;
}

AttrList SideJoinAttrs(const PredicateRef& pred, const AttrList& side) {
  AttrList out;
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (!c->IsEquiJoin()) continue;
    if (algebra::Contains(side, c->left().attr)) {
      out.push_back(c->left().attr);
    } else if (algebra::Contains(side, c->right().attr)) {
      out.push_back(c->right().attr);
    }
  }
  return out;
}

SortSpec SortOn(const AttrList& attrs) {
  SortSpec spec;
  for (const Attr& a : attrs) {
    spec.keys.push_back(SortSpec::Key{a, /*ascending=*/true});
  }
  return spec;
}

bool IsRefJoin(const PredicateRef& pred, const AttrList& left,
               const AttrList& right, const catalog::Catalog& cat) {
  for (const PredicateRef& c : pred->Conjuncts()) {
    if (!c->IsEquiJoin()) continue;
    for (const auto& [ref_term, oid_term] :
         {std::make_pair(c->left(), c->right()),
          std::make_pair(c->right(), c->left())}) {
      if (!algebra::Contains(left, ref_term.attr) ||
          !algebra::Contains(right, oid_term.attr)) {
        continue;
      }
      const catalog::StoredFile* f = cat.Find(ref_term.attr.cls);
      if (f == nullptr) continue;
      const catalog::AttributeDef* ad = f->FindAttr(ref_term.attr.name);
      if (ad == nullptr || !ad->is_reference()) continue;
      if (ad->ref_class == oid_term.attr.cls && oid_term.attr.name == "oid") {
        return true;
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule-building scaffolding
// ---------------------------------------------------------------------------

/// Bound ids of everything the lambdas need.
struct Ctx {
  Props p;
  OpId ret = -1, join = -1, select = -1, project = -1, mat = -1, unnest = -1;
  OpId file_scan = -1, index_scan = -1, btree_scan = -1, filter = -1,
       projection = -1, hash_join = -1, pointer_join = -1, deref = -1,
       flatten = -1, nested_loops = -1, merge_join = -1, merge_sort = -1;
};

PatNodePtr S(int var, int slot) { return PatNode::Stream(var, slot); }
PatNodePtr Op1(OpId op, int slot, PatNodePtr a) {
  std::vector<PatNodePtr> kids;
  kids.push_back(std::move(a));
  return PatNode::Op(op, slot, std::move(kids));
}
PatNodePtr Op2(OpId op, int slot, PatNodePtr a, PatNodePtr b) {
  std::vector<PatNodePtr> kids;
  kids.push_back(std::move(a));
  kids.push_back(std::move(b));
  return PatNode::Op(op, slot, std::move(kids));
}

/// Standard impl-rule slot layout, mirroring core::MakeIRuleSkeleton.
ImplRule Impl(std::string name, OpId op, OpId alg, int arity,
              std::vector<bool> fresh_inputs) {
  ImplRule r;
  r.name = std::move(name);
  r.op = op;
  r.alg = alg;
  r.arity = arity;
  int next = arity + 1;
  r.rhs_input_slots.resize(static_cast<size_t>(arity));
  for (int i = 0; i < arity; ++i) {
    bool fresh = i < static_cast<int>(fresh_inputs.size()) && fresh_inputs[i];
    r.rhs_input_slots[static_cast<size_t>(i)] = fresh ? next++ : i;
  }
  r.alg_slot = next++;
  r.num_slots = next;
  return r;
}

Status NeedCatalog(const BindingView& bv) {
  return bv.catalog == nullptr
             ? Status::RuleError("no catalog bound to the optimizer")
             : Status::OK();
}

// ---------------------------------------------------------------------------
// Shared trans rules (joins) — used by both optimizers
// ---------------------------------------------------------------------------

TransRule JoinCommute(const Ctx& c) {
  TransRule r;
  r.name = "join_commute";
  r.lhs = Op2(c.join, 2, S(1, 0), S(2, 1));
  r.rhs = Op2(c.join, 3, S(2, 1), S(1, 0));
  r.num_slots = 4;
  Props p = c.p;
  r.apply = [p](BindingView& bv) -> Status {
    bv.slot(3) = bv.slot(2);
    return Status::OK();
  };
  return r;
}

TransRule JoinAssoc(const Ctx& c, bool left_to_right) {
  TransRule r;
  Props p = c.p;
  if (left_to_right) {
    r.name = "join_assoc_lr";
    r.lhs = Op2(c.join, 4, Op2(c.join, 3, S(1, 0), S(2, 1)), S(3, 2));
    r.rhs = Op2(c.join, 6, S(1, 0), Op2(c.join, 5, S(2, 1), S(3, 2)));
  } else {
    r.name = "join_assoc_rl";
    r.lhs = Op2(c.join, 4, S(1, 0), Op2(c.join, 3, S(2, 1), S(3, 2)));
    r.rhs = Op2(c.join, 6, Op2(c.join, 5, S(1, 0), S(2, 1)), S(3, 2));
  }
  r.num_slots = 7;
  // Slots: 0,1,2 streams; 3 inner JOIN; 4 outer JOIN; 5 new inner; 6 new
  // outer. The two grouped streams are (1,2) for LR and (0,1) for RL.
  int ga = left_to_right ? 1 : 0;
  int gb = left_to_right ? 2 : 1;
  r.condition = [p, ga, gb](BindingView& bv) -> Result<bool> {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PredicateRef combined =
        algebra::PredAnd(GetPred(bv.slot(3).Get(p.join_predicate)),
                         GetPred(bv.slot(4).Get(p.join_predicate)));
    AttrList grouped =
        algebra::UnionAttrs(GetAttrs(bv.slot(ga).Get(p.attributes)),
                            GetAttrs(bv.slot(gb).Get(p.attributes)));
    PredicateRef inner = ConjOver(combined, grouped, /*over=*/true);
    bv.slot(5).SetUnchecked(p.join_predicate, Value::Pred(inner));
    return RefersBoth(inner, GetAttrs(bv.slot(ga).Get(p.attributes)),
                      GetAttrs(bv.slot(gb).Get(p.attributes)));
  };
  r.apply = [p, ga, gb](BindingView& bv) -> Status {
    PredicateRef combined =
        algebra::PredAnd(GetPred(bv.slot(3).Get(p.join_predicate)),
                         GetPred(bv.slot(4).Get(p.join_predicate)));
    AttrList grouped =
        algebra::UnionAttrs(GetAttrs(bv.slot(ga).Get(p.attributes)),
                            GetAttrs(bv.slot(gb).Get(p.attributes)));
    PredicateRef inner = GetPred(bv.slot(5).Get(p.join_predicate));
    bv.slot(5).SetUnchecked(p.attributes, Value::Attrs(grouped));
    double card = GetReal(bv.slot(ga).Get(p.num_records)) *
                  GetReal(bv.slot(gb).Get(p.num_records)) *
                  catalog::EstimateSelectivity(inner, *bv.catalog);
    bv.slot(5).SetUnchecked(p.num_records, Value::Real(card));
    bv.slot(5).SetUnchecked(
        p.tuple_size, Value::Real(GetReal(bv.slot(ga).Get(p.tuple_size)) +
                                  GetReal(bv.slot(gb).Get(p.tuple_size))));
    bv.slot(6).SetUnchecked(
        p.join_predicate,
        Value::Pred(ConjOver(combined, grouped, /*over=*/false)));
    bv.slot(6).SetUnchecked(p.attributes, bv.slot(4).Get(p.attributes));
    bv.slot(6).SetUnchecked(p.num_records, bv.slot(4).Get(p.num_records));
    bv.slot(6).SetUnchecked(p.tuple_size, bv.slot(4).Get(p.tuple_size));
    return Status::OK();
  };
  return r;
}

// ---------------------------------------------------------------------------
// Shared impl rules / enforcer
// ---------------------------------------------------------------------------

ImplRule FileScan(const Ctx& c) {
  ImplRule r = Impl("file_scan", c.ret, c.file_scan, 1, {false});
  Props p = c.p;
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(2) = bv.slot(1);
    bv.slot(2).SetUnchecked(p.tuple_order, Value::Sort(SortSpec::DontCare()));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(2).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(0).Get(p.num_records))));
    return Status::OK();
  };
  return r;
}

ImplRule IndexScanEq(const Ctx& c, OpId alg, const char* name) {
  ImplRule r = Impl(name, c.ret, alg, 1, {false});
  Props p = c.p;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    return FindIndexedEq(GetPred(bv.slot(1).Get(p.selection_predicate)),
                         *bv.catalog, nullptr) != nullptr;
  };
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(2) = bv.slot(1);
    const Attr* a = FindIndexedEq(
        GetPred(bv.slot(1).Get(p.selection_predicate)), *bv.catalog, nullptr);
    AttrList one;
    if (a != nullptr) one.push_back(*a);
    bv.slot(2).SetUnchecked(p.index_attr, Value::Attrs(std::move(one)));
    bv.slot(2).SetUnchecked(p.tuple_order, Value::Sort(SortSpec::DontCare()));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    PredicateRef eq;
    const Attr* a = FindIndexedEq(
        GetPred(bv.slot(1).Get(p.selection_predicate)), *bv.catalog, &eq);
    if (a == nullptr) {
      return Status::RuleError("index scan lost its indexed conjunct");
    }
    double card = GetReal(bv.slot(0).Get(p.num_records));
    double sel = catalog::EstimateSelectivity(eq, *bv.catalog);
    bv.slot(2).SetUnchecked(p.cost,
                            Value::Real(std::max(1.0, card * sel)));
    return Status::OK();
  };
  return r;
}

ImplRule IndexScanOrder(const Ctx& c, OpId alg, const char* name) {
  ImplRule r = Impl(name, c.ret, alg, 1, {false});
  Props p = c.p;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    return FirstIndexAttr(GetAttrs(bv.slot(0).Get(p.attributes)),
                          *bv.catalog) != nullptr;
  };
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(2) = bv.slot(1);
    const Attr* a = FirstIndexAttr(GetAttrs(bv.slot(0).Get(p.attributes)),
                                   *bv.catalog);
    AttrList one;
    if (a != nullptr) one.push_back(*a);
    bv.slot(2).SetUnchecked(p.index_attr, Value::Attrs(one));
    bv.slot(2).SetUnchecked(p.tuple_order, Value::Sort(SortOn(one)));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(2).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(0).Get(p.num_records)) +
                            GetReal(bv.slot(1).Get(p.num_records))));
    return Status::OK();
  };
  return r;
}

Enforcer MergeSortEnforcer(const Ctx& c) {
  Enforcer e;
  e.name = "merge_sort";
  e.alg = c.merge_sort;
  e.prop = c.p.tuple_order;
  Props p = c.p;
  e.pre_opt = [](BindingView& bv) -> Status {
    bv.slot(Enforcer::kAlgSlot) = bv.slot(Enforcer::kOpSlot);
    return Status::OK();
  };
  e.post_opt = [p](BindingView& bv) -> Status {
    double n = GetReal(bv.slot(Enforcer::kAlgSlot).Get(p.num_records));
    double nlogn = n <= 1.0 ? 0.0 : n * std::log(n);
    bv.slot(Enforcer::kAlgSlot)
        .SetUnchecked(p.cost,
                      Value::Real(GetReal(bv.slot(Enforcer::kInputSlot)
                                              .Get(p.cost)) +
                                  nlogn));
    return Status::OK();
  };
  return e;
}

// ---------------------------------------------------------------------------
// Relational-only rules
// ---------------------------------------------------------------------------

ImplRule NestedLoops(const Ctx& c) {
  // Slots: 0=D1, 1=D2, 2=D3(op), 3=D4(fresh outer), 4=D5(alg).
  ImplRule r = Impl("nested_loops", c.join, c.nested_loops, 2, {true, false});
  Props p = c.p;
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(4) = bv.slot(2);
    bv.slot(3) = bv.slot(0);
    bv.slot(3).SetUnchecked(p.tuple_order, bv.slot(2).Get(p.tuple_order));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(4).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(3).Get(p.cost)) +
                            GetReal(bv.slot(3).Get(p.num_records)) *
                                GetReal(bv.slot(1).Get(p.cost))));
    return Status::OK();
  };
  return r;
}

ImplRule MergeJoin(const Ctx& c) {
  // Slots: 0=D1, 1=D2, 2=D3(op), 3=D4(fresh outer), 4=D5(fresh inner),
  // 5=D6(alg).
  ImplRule r = Impl("merge_join", c.join, c.merge_join, 2, {true, true});
  Props p = c.p;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    return IsEquijoinable(GetPred(bv.slot(2).Get(p.join_predicate)));
  };
  r.pre_opt = [p](BindingView& bv) -> Status {
    PredicateRef pred = GetPred(bv.slot(2).Get(p.join_predicate));
    bv.slot(5) = bv.slot(2);
    bv.slot(3) = bv.slot(0);
    bv.slot(4) = bv.slot(1);
    SortSpec lorder =
        SortOn(SideJoinAttrs(pred, GetAttrs(bv.slot(0).Get(p.attributes))));
    SortSpec rorder =
        SortOn(SideJoinAttrs(pred, GetAttrs(bv.slot(1).Get(p.attributes))));
    bv.slot(3).SetUnchecked(p.tuple_order, Value::Sort(lorder));
    bv.slot(4).SetUnchecked(p.tuple_order, Value::Sort(rorder));
    bv.slot(5).SetUnchecked(p.tuple_order, Value::Sort(lorder));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(5).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(3).Get(p.cost)) +
                            GetReal(bv.slot(4).Get(p.cost)) +
                            GetReal(bv.slot(3).Get(p.num_records)) +
                            GetReal(bv.slot(4).Get(p.num_records))));
    return Status::OK();
  };
  return r;
}

// ---------------------------------------------------------------------------
// OODB-only rules
// ---------------------------------------------------------------------------

/// Factors the common shape of SELECT push/pull style rules.
TransRule SelectPushJoin(const Ctx& c, bool left) {
  TransRule r;
  Props p = c.p;
  // Slots: 0=?1, 1=?2, 2=JOIN(D3), 3=SELECT(D4), 4=new SELECT(D5),
  // 5=new JOIN(D6).
  int side = left ? 0 : 1;
  r.name = left ? "select_push_join_left" : "select_push_join_right";
  r.lhs = Op1(c.select, 3, Op2(c.join, 2, S(1, 0), S(2, 1)));
  r.rhs = left ? Op2(c.join, 5, Op1(c.select, 4, S(1, 0)), S(2, 1))
               : Op2(c.join, 5, S(1, 0), Op1(c.select, 4, S(2, 1)));
  r.num_slots = 6;
  r.condition = [p, side](BindingView& bv) -> Result<bool> {
    return algebra::IsSubset(
        GetPred(bv.slot(3).Get(p.selection_predicate))->ReferencedAttrs(),
        GetAttrs(bv.slot(side).Get(p.attributes)));
  };
  r.apply = [p, side](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PredicateRef sel = GetPred(bv.slot(3).Get(p.selection_predicate));
    bv.slot(4).SetUnchecked(p.selection_predicate, Value::Pred(sel));
    bv.slot(4).SetUnchecked(p.attributes, bv.slot(side).Get(p.attributes));
    bv.slot(4).SetUnchecked(
        p.num_records,
        Value::Real(GetReal(bv.slot(side).Get(p.num_records)) *
                    catalog::EstimateSelectivity(sel, *bv.catalog)));
    bv.slot(4).SetUnchecked(p.tuple_size, bv.slot(side).Get(p.tuple_size));
    bv.slot(5) = bv.slot(2);
    bv.slot(5).SetUnchecked(p.num_records, bv.slot(3).Get(p.num_records));
    return Status::OK();
  };
  return r;
}

TransRule SelectPullJoin(const Ctx& c, bool left) {
  TransRule r;
  Props p = c.p;
  // Slots: 0=?1, 1=?2, 2=SELECT(D3), 3=JOIN(D4), 4=new JOIN(D5),
  // 5=new SELECT(D6).
  r.name = left ? "select_pull_join_left" : "select_pull_join_right";
  r.lhs = left ? Op2(c.join, 3, Op1(c.select, 2, S(1, 0)), S(2, 1))
               : Op2(c.join, 3, S(1, 0), Op1(c.select, 2, S(2, 1)));
  r.rhs = Op1(c.select, 5, Op2(c.join, 4, S(1, 0), S(2, 1)));
  r.num_slots = 6;
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PredicateRef jp = GetPred(bv.slot(3).Get(p.join_predicate));
    AttrList attrs =
        algebra::UnionAttrs(GetAttrs(bv.slot(0).Get(p.attributes)),
                            GetAttrs(bv.slot(1).Get(p.attributes)));
    bv.slot(4).SetUnchecked(p.join_predicate, Value::Pred(jp));
    bv.slot(4).SetUnchecked(p.attributes, Value::Attrs(attrs));
    bv.slot(4).SetUnchecked(
        p.num_records,
        Value::Real(GetReal(bv.slot(0).Get(p.num_records)) *
                    GetReal(bv.slot(1).Get(p.num_records)) *
                    catalog::EstimateSelectivity(jp, *bv.catalog)));
    double tsize = GetReal(bv.slot(0).Get(p.tuple_size)) +
                   GetReal(bv.slot(1).Get(p.tuple_size));
    bv.slot(4).SetUnchecked(p.tuple_size, Value::Real(tsize));
    bv.slot(5).SetUnchecked(p.selection_predicate,
                            bv.slot(2).Get(p.selection_predicate));
    bv.slot(5).SetUnchecked(p.attributes, Value::Attrs(attrs));
    bv.slot(5).SetUnchecked(p.num_records, bv.slot(3).Get(p.num_records));
    bv.slot(5).SetUnchecked(p.tuple_size, Value::Real(tsize));
    return Status::OK();
  };
  return r;
}

TransRule SelectSplit(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "select_split";
  r.lhs = Op1(c.select, 1, S(1, 0));
  r.rhs = Op1(c.select, 3, Op1(c.select, 2, S(1, 0)));
  r.num_slots = 4;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    return GetPred(bv.slot(1).Get(p.selection_predicate))->Conjuncts().size() >=
           2;
  };
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    auto cs = GetPred(bv.slot(1).Get(p.selection_predicate))->Conjuncts();
    PredicateRef first = cs[0];
    cs.erase(cs.begin());
    PredicateRef rest = Predicate::And(std::move(cs));
    bv.slot(2).SetUnchecked(p.selection_predicate, Value::Pred(first));
    bv.slot(2).SetUnchecked(p.attributes, bv.slot(0).Get(p.attributes));
    bv.slot(2).SetUnchecked(
        p.num_records,
        Value::Real(GetReal(bv.slot(0).Get(p.num_records)) *
                    catalog::EstimateSelectivity(first, *bv.catalog)));
    bv.slot(2).SetUnchecked(p.tuple_size, bv.slot(0).Get(p.tuple_size));
    bv.slot(3).SetUnchecked(p.selection_predicate, Value::Pred(rest));
    bv.slot(3).SetUnchecked(p.attributes, bv.slot(1).Get(p.attributes));
    bv.slot(3).SetUnchecked(p.num_records, bv.slot(1).Get(p.num_records));
    bv.slot(3).SetUnchecked(p.tuple_size, bv.slot(1).Get(p.tuple_size));
    return Status::OK();
  };
  return r;
}

TransRule SelectMerge(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "select_merge";
  r.lhs = Op1(c.select, 2, Op1(c.select, 1, S(1, 0)));
  r.rhs = Op1(c.select, 3, S(1, 0));
  r.num_slots = 4;
  r.apply = [p](BindingView& bv) -> Status {
    bv.slot(3) = bv.slot(2);
    bv.slot(3).SetUnchecked(
        p.selection_predicate,
        Value::Pred(algebra::PredAnd(
            GetPred(bv.slot(1).Get(p.selection_predicate)),
            GetPred(bv.slot(2).Get(p.selection_predicate)))));
    return Status::OK();
  };
  return r;
}

TransRule SelectIntoRet(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "select_into_ret";
  r.lhs = Op1(c.select, 2, Op1(c.ret, 1, S(1, 0)));
  r.rhs = Op1(c.ret, 3, S(1, 0));
  r.num_slots = 4;
  r.apply = [p](BindingView& bv) -> Status {
    bv.slot(3) = bv.slot(1);
    bv.slot(3).SetUnchecked(
        p.selection_predicate,
        Value::Pred(algebra::PredAnd(
            GetPred(bv.slot(1).Get(p.selection_predicate)),
            GetPred(bv.slot(2).Get(p.selection_predicate)))));
    bv.slot(3).SetUnchecked(p.num_records, bv.slot(2).Get(p.num_records));
    return Status::OK();
  };
  return r;
}

TransRule SelectPushMat(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "select_push_mat";
  r.lhs = Op1(c.select, 2, Op1(c.mat, 1, S(1, 0)));
  r.rhs = Op1(c.mat, 4, Op1(c.select, 3, S(1, 0)));
  r.num_slots = 5;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    return algebra::IsSubset(
        GetPred(bv.slot(2).Get(p.selection_predicate))->ReferencedAttrs(),
        GetAttrs(bv.slot(0).Get(p.attributes)));
  };
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PredicateRef sel = GetPred(bv.slot(2).Get(p.selection_predicate));
    bv.slot(3).SetUnchecked(p.selection_predicate, Value::Pred(sel));
    bv.slot(3).SetUnchecked(p.attributes, bv.slot(0).Get(p.attributes));
    bv.slot(3).SetUnchecked(
        p.num_records,
        Value::Real(GetReal(bv.slot(0).Get(p.num_records)) *
                    catalog::EstimateSelectivity(sel, *bv.catalog)));
    bv.slot(3).SetUnchecked(p.tuple_size, bv.slot(0).Get(p.tuple_size));
    bv.slot(4) = bv.slot(1);
    bv.slot(4).SetUnchecked(p.num_records, bv.slot(2).Get(p.num_records));
    return Status::OK();
  };
  return r;
}

Result<const catalog::StoredFile*> ClassOf(const BindingView& bv,
                                           const Value& name) {
  if (name.is_null() || name.type() != ValueType::kString) {
    return Status::RuleError("mat_class annotation missing");
  }
  return bv.catalog->Require(name.AsString());
}

TransRule SelectPullMat(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "select_pull_mat";
  r.lhs = Op1(c.mat, 2, Op1(c.select, 1, S(1, 0)));
  r.rhs = Op1(c.select, 4, Op1(c.mat, 3, S(1, 0)));
  r.num_slots = 5;
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* cls,
                             ClassOf(bv, bv.slot(2).Get(p.mat_class)));
    bv.slot(3).SetUnchecked(p.mat_attr, bv.slot(2).Get(p.mat_attr));
    bv.slot(3).SetUnchecked(p.mat_class, bv.slot(2).Get(p.mat_class));
    AttrList attrs = algebra::UnionAttrs(
        GetAttrs(bv.slot(0).Get(p.attributes)), cls->QualifiedAttrs());
    bv.slot(3).SetUnchecked(p.attributes, Value::Attrs(attrs));
    bv.slot(3).SetUnchecked(p.num_records, bv.slot(0).Get(p.num_records));
    bv.slot(3).SetUnchecked(
        p.tuple_size,
        Value::Real(GetReal(bv.slot(0).Get(p.tuple_size)) +
                    static_cast<double>(cls->tuple_size())));
    bv.slot(4).SetUnchecked(p.selection_predicate,
                            bv.slot(1).Get(p.selection_predicate));
    bv.slot(4).SetUnchecked(p.attributes, Value::Attrs(std::move(attrs)));
    bv.slot(4).SetUnchecked(p.num_records, bv.slot(2).Get(p.num_records));
    bv.slot(4).SetUnchecked(p.tuple_size, bv.slot(3).Get(p.tuple_size));
    return Status::OK();
  };
  return r;
}

TransRule SelectPushUnnest(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "select_push_unnest";
  r.lhs = Op1(c.select, 2, Op1(c.unnest, 1, S(1, 0)));
  r.rhs = Op1(c.unnest, 4, Op1(c.select, 3, S(1, 0)));
  r.num_slots = 5;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    AttrList usable = GetAttrs(bv.slot(0).Get(p.attributes));
    for (const Attr& a : GetAttrs(bv.slot(1).Get(p.unnest_attr))) {
      usable.erase(std::remove(usable.begin(), usable.end(), a),
                   usable.end());
    }
    return algebra::IsSubset(
        GetPred(bv.slot(2).Get(p.selection_predicate))->ReferencedAttrs(),
        usable);
  };
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PredicateRef sel = GetPred(bv.slot(2).Get(p.selection_predicate));
    bv.slot(3).SetUnchecked(p.selection_predicate, Value::Pred(sel));
    bv.slot(3).SetUnchecked(p.attributes, bv.slot(0).Get(p.attributes));
    bv.slot(3).SetUnchecked(
        p.num_records,
        Value::Real(GetReal(bv.slot(0).Get(p.num_records)) *
                    catalog::EstimateSelectivity(sel, *bv.catalog)));
    bv.slot(3).SetUnchecked(p.tuple_size, bv.slot(0).Get(p.tuple_size));
    bv.slot(4) = bv.slot(1);
    bv.slot(4).SetUnchecked(p.num_records, bv.slot(2).Get(p.num_records));
    return Status::OK();
  };
  return r;
}

TransRule SelectPullUnnest(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "select_pull_unnest";
  r.lhs = Op1(c.unnest, 2, Op1(c.select, 1, S(1, 0)));
  r.rhs = Op1(c.select, 4, Op1(c.unnest, 3, S(1, 0)));
  r.num_slots = 5;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    AttrList usable = GetAttrs(bv.slot(0).Get(p.attributes));
    for (const Attr& a : GetAttrs(bv.slot(2).Get(p.unnest_attr))) {
      usable.erase(std::remove(usable.begin(), usable.end(), a),
                   usable.end());
    }
    return algebra::IsSubset(
        GetPred(bv.slot(1).Get(p.selection_predicate))->ReferencedAttrs(),
        usable);
  };
  r.apply = [p](BindingView& bv) -> Status {
    bv.slot(3).SetUnchecked(p.unnest_attr, bv.slot(2).Get(p.unnest_attr));
    bv.slot(3).SetUnchecked(p.unnest_mult, bv.slot(2).Get(p.unnest_mult));
    bv.slot(3).SetUnchecked(p.attributes, bv.slot(0).Get(p.attributes));
    bv.slot(3).SetUnchecked(
        p.num_records,
        Value::Real(GetReal(bv.slot(0).Get(p.num_records)) *
                    GetReal(bv.slot(2).Get(p.unnest_mult), 1.0)));
    bv.slot(3).SetUnchecked(p.tuple_size, bv.slot(0).Get(p.tuple_size));
    bv.slot(4).SetUnchecked(p.selection_predicate,
                            bv.slot(1).Get(p.selection_predicate));
    bv.slot(4).SetUnchecked(p.attributes, bv.slot(3).Get(p.attributes));
    bv.slot(4).SetUnchecked(p.num_records, bv.slot(2).Get(p.num_records));
    bv.slot(4).SetUnchecked(p.tuple_size, bv.slot(3).Get(p.tuple_size));
    return Status::OK();
  };
  return r;
}

TransRule MatPushJoinLeft(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "mat_push_join_left";
  r.lhs = Op1(c.mat, 3, Op2(c.join, 2, S(1, 0), S(2, 1)));
  r.rhs = Op2(c.join, 5, Op1(c.mat, 4, S(1, 0)), S(2, 1));
  r.num_slots = 6;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    return algebra::IsSubset(GetAttrs(bv.slot(3).Get(p.mat_attr)),
                             GetAttrs(bv.slot(0).Get(p.attributes)));
  };
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* cls,
                             ClassOf(bv, bv.slot(3).Get(p.mat_class)));
    bv.slot(4).SetUnchecked(p.mat_attr, bv.slot(3).Get(p.mat_attr));
    bv.slot(4).SetUnchecked(p.mat_class, bv.slot(3).Get(p.mat_class));
    bv.slot(4).SetUnchecked(
        p.attributes,
        Value::Attrs(algebra::UnionAttrs(
            GetAttrs(bv.slot(0).Get(p.attributes)), cls->QualifiedAttrs())));
    bv.slot(4).SetUnchecked(p.num_records, bv.slot(0).Get(p.num_records));
    bv.slot(4).SetUnchecked(
        p.tuple_size,
        Value::Real(GetReal(bv.slot(0).Get(p.tuple_size)) +
                    static_cast<double>(cls->tuple_size())));
    bv.slot(5) = bv.slot(2);
    bv.slot(5).SetUnchecked(p.attributes, bv.slot(3).Get(p.attributes));
    bv.slot(5).SetUnchecked(p.tuple_size, bv.slot(3).Get(p.tuple_size));
    return Status::OK();
  };
  return r;
}

TransRule MatPullJoinLeft(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "mat_pull_join_left";
  r.lhs = Op2(c.join, 3, Op1(c.mat, 2, S(1, 0)), S(2, 1));
  r.rhs = Op1(c.mat, 5, Op2(c.join, 4, S(1, 0), S(2, 1)));
  r.num_slots = 6;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    return algebra::IsSubset(
        GetPred(bv.slot(3).Get(p.join_predicate))->ReferencedAttrs(),
        algebra::UnionAttrs(GetAttrs(bv.slot(0).Get(p.attributes)),
                            GetAttrs(bv.slot(1).Get(p.attributes))));
  };
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* cls,
                             ClassOf(bv, bv.slot(2).Get(p.mat_class)));
    PredicateRef jp = GetPred(bv.slot(3).Get(p.join_predicate));
    AttrList attrs =
        algebra::UnionAttrs(GetAttrs(bv.slot(0).Get(p.attributes)),
                            GetAttrs(bv.slot(1).Get(p.attributes)));
    bv.slot(4).SetUnchecked(p.join_predicate, Value::Pred(jp));
    bv.slot(4).SetUnchecked(p.attributes, Value::Attrs(attrs));
    double card = GetReal(bv.slot(0).Get(p.num_records)) *
                  GetReal(bv.slot(1).Get(p.num_records)) *
                  catalog::EstimateSelectivity(jp, *bv.catalog);
    bv.slot(4).SetUnchecked(p.num_records, Value::Real(card));
    double tsize = GetReal(bv.slot(0).Get(p.tuple_size)) +
                   GetReal(bv.slot(1).Get(p.tuple_size));
    bv.slot(4).SetUnchecked(p.tuple_size, Value::Real(tsize));
    bv.slot(5).SetUnchecked(p.mat_attr, bv.slot(2).Get(p.mat_attr));
    bv.slot(5).SetUnchecked(p.mat_class, bv.slot(2).Get(p.mat_class));
    bv.slot(5).SetUnchecked(
        p.attributes,
        Value::Attrs(algebra::UnionAttrs(attrs, cls->QualifiedAttrs())));
    bv.slot(5).SetUnchecked(p.num_records, Value::Real(card));
    bv.slot(5).SetUnchecked(
        p.tuple_size,
        Value::Real(tsize + static_cast<double>(cls->tuple_size())));
    return Status::OK();
  };
  return r;
}

TransRule MatMatSwap(const Ctx& c) {
  TransRule r;
  Props p = c.p;
  r.name = "mat_mat_swap";
  r.lhs = Op1(c.mat, 2, Op1(c.mat, 1, S(1, 0)));
  r.rhs = Op1(c.mat, 4, Op1(c.mat, 3, S(1, 0)));
  r.num_slots = 5;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    return algebra::IsSubset(GetAttrs(bv.slot(2).Get(p.mat_attr)),
                             GetAttrs(bv.slot(0).Get(p.attributes)));
  };
  r.apply = [p](BindingView& bv) -> Status {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* outer_cls,
                             ClassOf(bv, bv.slot(2).Get(p.mat_class)));
    bv.slot(3).SetUnchecked(p.mat_attr, bv.slot(2).Get(p.mat_attr));
    bv.slot(3).SetUnchecked(p.mat_class, bv.slot(2).Get(p.mat_class));
    bv.slot(3).SetUnchecked(
        p.attributes,
        Value::Attrs(algebra::UnionAttrs(
            GetAttrs(bv.slot(0).Get(p.attributes)),
            outer_cls->QualifiedAttrs())));
    bv.slot(3).SetUnchecked(p.num_records, bv.slot(0).Get(p.num_records));
    bv.slot(3).SetUnchecked(
        p.tuple_size,
        Value::Real(GetReal(bv.slot(0).Get(p.tuple_size)) +
                    static_cast<double>(outer_cls->tuple_size())));
    bv.slot(4).SetUnchecked(p.mat_attr, bv.slot(1).Get(p.mat_attr));
    bv.slot(4).SetUnchecked(p.mat_class, bv.slot(1).Get(p.mat_class));
    bv.slot(4).SetUnchecked(p.attributes, bv.slot(2).Get(p.attributes));
    bv.slot(4).SetUnchecked(p.num_records, bv.slot(2).Get(p.num_records));
    bv.slot(4).SetUnchecked(p.tuple_size, bv.slot(2).Get(p.tuple_size));
    return Status::OK();
  };
  return r;
}

/// Unary pass-through implementations that preserve order and charge one
/// touch per tuple (Filter / Projection / Deref).
ImplRule UnaryPassThrough(const Ctx& c, const char* name, OpId op, OpId alg) {
  // Slots: 0=D1, 1=D2(op), 2=D3(fresh input), 3=D4(alg).
  ImplRule r = Impl(name, op, alg, 1, {true});
  Props p = c.p;
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(3) = bv.slot(1);
    bv.slot(2) = bv.slot(0);
    bv.slot(2).SetUnchecked(p.tuple_order, bv.slot(1).Get(p.tuple_order));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(3).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(2).Get(p.cost)) +
                            GetReal(bv.slot(2).Get(p.num_records))));
    return Status::OK();
  };
  return r;
}

ImplRule HashJoin(const Ctx& c) {
  ImplRule r = Impl("hash_join", c.join, c.hash_join, 2, {false, false});
  Props p = c.p;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    return IsEquijoinable(GetPred(bv.slot(2).Get(p.join_predicate)));
  };
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(3) = bv.slot(2);
    bv.slot(3).SetUnchecked(p.tuple_order, Value::Sort(SortSpec::DontCare()));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(3).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(0).Get(p.cost)) +
                            GetReal(bv.slot(1).Get(p.cost)) +
                            GetReal(bv.slot(0).Get(p.num_records)) +
                            GetReal(bv.slot(1).Get(p.num_records))));
    return Status::OK();
  };
  return r;
}

ImplRule PointerJoin(const Ctx& c) {
  ImplRule r = Impl("pointer_join", c.join, c.pointer_join, 2, {false, false});
  Props p = c.p;
  r.condition = [p](BindingView& bv) -> Result<bool> {
    PRAIRIE_RETURN_NOT_OK(NeedCatalog(bv));
    return IsRefJoin(GetPred(bv.slot(2).Get(p.join_predicate)),
                     GetAttrs(bv.slot(0).Get(p.attributes)),
                     GetAttrs(bv.slot(1).Get(p.attributes)), *bv.catalog);
  };
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(3) = bv.slot(2);
    bv.slot(3).SetUnchecked(p.tuple_order, Value::Sort(SortSpec::DontCare()));
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(3).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(0).Get(p.cost)) +
                            GetReal(bv.slot(1).Get(p.cost)) +
                            GetReal(bv.slot(0).Get(p.num_records))));
    return Status::OK();
  };
  return r;
}

ImplRule FlattenRule(const Ctx& c) {
  // Slots: 0=D1, 1=D2(op), 2=D3(fresh input), 3=D4(alg).
  ImplRule r = Impl("flatten", c.unnest, c.flatten, 1, {true});
  Props p = c.p;
  r.pre_opt = [p](BindingView& bv) -> Status {
    bv.slot(3) = bv.slot(1);
    bv.slot(3).SetUnchecked(p.tuple_order, Value::Sort(SortSpec::DontCare()));
    bv.slot(2) = bv.slot(0);
    return Status::OK();
  };
  r.post_opt = [p](BindingView& bv) -> Status {
    bv.slot(3).SetUnchecked(
        p.cost, Value::Real(GetReal(bv.slot(2).Get(p.cost)) +
                            GetReal(bv.slot(3).Get(p.num_records))));
    return Status::OK();
  };
  return r;
}

Result<Ctx> MakeCtx(Algebra* algebra, bool oodb) {
  Ctx c;
  PRAIRIE_RETURN_NOT_OK(AddStandardProperties(algebra->mutable_properties()));
  PRAIRIE_ASSIGN_OR_RETURN(c.p, Props::FromSchema(algebra->properties()));
  PRAIRIE_ASSIGN_OR_RETURN(c.ret, algebra->RegisterOperator("RET", 1));
  PRAIRIE_ASSIGN_OR_RETURN(c.join, algebra->RegisterOperator("JOIN", 2));
  if (oodb) {
    PRAIRIE_ASSIGN_OR_RETURN(c.select, algebra->RegisterOperator("SELECT", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.project,
                             algebra->RegisterOperator("PROJECT", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.mat, algebra->RegisterOperator("MAT", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.unnest, algebra->RegisterOperator("UNNEST", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.file_scan,
                             algebra->RegisterAlgorithm("File_scan", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.index_scan,
                             algebra->RegisterAlgorithm("Index_scan", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.filter,
                             algebra->RegisterAlgorithm("Filter", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.projection,
                             algebra->RegisterAlgorithm("Projection", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.hash_join,
                             algebra->RegisterAlgorithm("Hash_join", 2));
    PRAIRIE_ASSIGN_OR_RETURN(c.pointer_join,
                             algebra->RegisterAlgorithm("Pointer_join", 2));
    PRAIRIE_ASSIGN_OR_RETURN(c.deref, algebra->RegisterAlgorithm("Deref", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.flatten,
                             algebra->RegisterAlgorithm("Flatten", 1));
  } else {
    PRAIRIE_ASSIGN_OR_RETURN(c.file_scan,
                             algebra->RegisterAlgorithm("File_scan", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.index_scan,
                             algebra->RegisterAlgorithm("Index_scan", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.btree_scan,
                             algebra->RegisterAlgorithm("Btree_scan", 1));
    PRAIRIE_ASSIGN_OR_RETURN(c.nested_loops,
                             algebra->RegisterAlgorithm("Nested_loops", 2));
    PRAIRIE_ASSIGN_OR_RETURN(c.merge_join,
                             algebra->RegisterAlgorithm("Merge_join", 2));
  }
  PRAIRIE_ASSIGN_OR_RETURN(c.merge_sort,
                           algebra->RegisterAlgorithm("Merge_sort", 1));
  return c;
}

}  // namespace

Result<std::shared_ptr<RuleSet>> BuildRelationalVolcano() {
  auto rules = std::make_shared<RuleSet>();
  rules->name = "relational-hand-coded";
  rules->algebra = std::make_shared<Algebra>();
  PRAIRIE_ASSIGN_OR_RETURN(Ctx c, MakeCtx(rules->algebra.get(),
                                          /*oodb=*/false));
  rules->cost_prop = c.p.cost;
  rules->phys_props = {c.p.tuple_order};
  rules->logical_props = {c.p.num_records, c.p.tuple_size, c.p.unnest_mult};

  rules->trans_rules.push_back(JoinCommute(c));
  rules->trans_rules.push_back(JoinAssoc(c, /*left_to_right=*/true));
  rules->trans_rules.push_back(JoinAssoc(c, /*left_to_right=*/false));

  rules->impl_rules.push_back(FileScan(c));
  rules->impl_rules.push_back(IndexScanEq(c, c.index_scan, "index_scan"));
  rules->impl_rules.push_back(IndexScanOrder(c, c.btree_scan, "btree_scan"));
  rules->impl_rules.push_back(NestedLoops(c));
  rules->impl_rules.push_back(MergeJoin(c));

  rules->enforcers.push_back(MergeSortEnforcer(c));
  PRAIRIE_RETURN_NOT_OK(rules->Finalize());
  return rules;
}

Result<std::shared_ptr<RuleSet>> BuildOodbVolcano() {
  auto rules = std::make_shared<RuleSet>();
  rules->name = "oodb-hand-coded";
  rules->algebra = std::make_shared<Algebra>();
  PRAIRIE_ASSIGN_OR_RETURN(Ctx c, MakeCtx(rules->algebra.get(),
                                          /*oodb=*/true));
  rules->cost_prop = c.p.cost;
  rules->phys_props = {c.p.tuple_order};
  rules->logical_props = {c.p.num_records, c.p.tuple_size, c.p.unnest_mult};

  rules->trans_rules.push_back(JoinCommute(c));
  rules->trans_rules.push_back(JoinAssoc(c, /*left_to_right=*/true));
  rules->trans_rules.push_back(JoinAssoc(c, /*left_to_right=*/false));
  rules->trans_rules.push_back(SelectPushJoin(c, /*left=*/true));
  rules->trans_rules.push_back(SelectPullJoin(c, /*left=*/true));
  rules->trans_rules.push_back(SelectPushJoin(c, /*left=*/false));
  rules->trans_rules.push_back(SelectPullJoin(c, /*left=*/false));
  rules->trans_rules.push_back(SelectSplit(c));
  rules->trans_rules.push_back(SelectMerge(c));
  rules->trans_rules.push_back(SelectIntoRet(c));
  rules->trans_rules.push_back(SelectPushMat(c));
  rules->trans_rules.push_back(SelectPullMat(c));
  rules->trans_rules.push_back(SelectPushUnnest(c));
  rules->trans_rules.push_back(SelectPullUnnest(c));
  rules->trans_rules.push_back(MatPushJoinLeft(c));
  rules->trans_rules.push_back(MatPullJoinLeft(c));
  rules->trans_rules.push_back(MatMatSwap(c));

  rules->impl_rules.push_back(FileScan(c));
  rules->impl_rules.push_back(IndexScanEq(c, c.index_scan, "index_scan_eq"));
  rules->impl_rules.push_back(
      IndexScanOrder(c, c.index_scan, "index_scan_order"));
  rules->impl_rules.push_back(UnaryPassThrough(c, "filter", c.select,
                                               c.filter));
  rules->impl_rules.push_back(UnaryPassThrough(c, "projection", c.project,
                                               c.projection));
  rules->impl_rules.push_back(HashJoin(c));
  rules->impl_rules.push_back(PointerJoin(c));
  rules->impl_rules.push_back(UnaryPassThrough(c, "deref", c.mat, c.deref));
  rules->impl_rules.push_back(FlattenRule(c));

  rules->enforcers.push_back(MergeSortEnforcer(c));
  PRAIRIE_RETURN_NOT_OK(rules->Finalize());
  return rules;
}

}  // namespace prairie::opt

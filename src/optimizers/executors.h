// Executor factories for the shipped optimizers' algorithms: maps
// File_scan / Index_scan / Btree_scan / Filter / Projection / Hash_join /
// Pointer_join / Nested_loops / Merge_join / Merge_sort / Deref / Flatten
// plan nodes onto the iterator engine.

#pragma once

#include "exec/builder.h"

namespace prairie::opt {

/// Registers factories for every algorithm of the relational and OODB
/// optimizers in `reg`.
common::Status RegisterStandardExecutors(exec::ExecutorRegistry* reg);

}  // namespace prairie::opt

#include "optimizers/relational.h"

#include "dsl/parser.h"
#include "optimizers/props.h"

namespace prairie::opt {

namespace {

constexpr const char* kRelationalSpec = R"PRAIRIE(
// ---------------------------------------------------------------------------
// Centralized relational query optimizer (paper §2 running example).
// ---------------------------------------------------------------------------

property tuple_order : sortspec;
property num_records : real;
property tuple_size : real;
property attributes : attrs;
property selection_predicate : predicate;
property join_predicate : predicate;
property projected_attributes : attrs;
property index_attr : attrs;
property mat_attr : attrs;
property mat_class : string;
property unnest_attr : attrs;
property unnest_mult : real;
property cost : cost;

operator RET(1);
operator JOIN(2);
operator SORT(1);
// Alias operators introduced by the enforcer-introduction T-rules; P2V
// merges them back into RET / JOIN (§3.3).
operator RETS(1);
operator JOINS(2);

algorithm File_scan(1);
algorithm Index_scan(1);
algorithm Btree_scan(1);
algorithm Nested_loops(2);
algorithm Merge_join(2);
algorithm Merge_sort(1);

// --------------------------------- T-rules --------------------------------

trule join_commute: JOIN[D3](?1, ?2) => JOIN[D4](?2, ?1) {
  post { D4 = D3; }
}

trule join_assoc_lr:
    JOIN[D5](JOIN[D4](?1, ?2), ?3) => JOIN[D7](?1, JOIN[D6](?2, ?3)) {
  pre {
    D6.join_predicate = conj_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D2.attributes, D3.attributes));
  }
  test refers_both(D6.join_predicate, D2.attributes, D3.attributes);
  post {
    D6.attributes = union(D2.attributes, D3.attributes);
    D6.num_records =
        join_card(D2.num_records, D3.num_records, D6.join_predicate);
    D6.tuple_size = D2.tuple_size + D3.tuple_size;
    D7.join_predicate = conj_not_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D2.attributes, D3.attributes));
    D7.attributes = D5.attributes;
    D7.num_records = D5.num_records;
    D7.tuple_size = D5.tuple_size;
  }
}

trule join_assoc_rl:
    JOIN[D5](?1, JOIN[D4](?2, ?3)) => JOIN[D7](JOIN[D6](?1, ?2), ?3) {
  pre {
    D6.join_predicate = conj_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D1.attributes, D2.attributes));
  }
  test refers_both(D6.join_predicate, D1.attributes, D2.attributes);
  post {
    D6.attributes = union(D1.attributes, D2.attributes);
    D6.num_records =
        join_card(D1.num_records, D2.num_records, D6.join_predicate);
    D6.tuple_size = D1.tuple_size + D2.tuple_size;
    D7.join_predicate = conj_not_over(
        pred_and(D4.join_predicate, D5.join_predicate),
        union(D1.attributes, D2.attributes));
    D7.attributes = D5.attributes;
    D7.num_records = D5.num_records;
    D7.tuple_size = D5.tuple_size;
  }
}

// Enforcer-introduction rules (footnote 5/7): the output of RET / JOIN may
// be explicitly sorted. After SORT deletion these become idempotent
// aliases and disappear.
trule intro_sort_ret: RET[D2](?1) => SORT[D4](RETS[D3](?1)) {
  post { D3 = D2; D4 = D2; }
}

trule intro_sort_join: JOIN[D3](?1, ?2) => SORT[D5](JOINS[D4](?1, ?2)) {
  post { D4 = D3; D5 = D3; }
}

// --------------------------------- I-rules --------------------------------

irule file_scan: RET[D2](?1) => File_scan[D3](?1) {
  preopt { D3 = D2; D3.tuple_order = DONT_CARE; }
  postopt { D3.cost = D1.num_records; }
}

// Equality lookup through an index referenced by the selection predicate.
irule index_scan: RET[D2](?1) => Index_scan[D3](?1) {
  test has_index_eq(D2.selection_predicate);
  preopt {
    D3 = D2;
    D3.index_attr = indexed_attr(D2.selection_predicate);
    D3.tuple_order = DONT_CARE;
  }
  postopt {
    D3.cost = index_eq_cost(D1.num_records, D2.selection_predicate);
  }
}

// Full scan in index order: more expensive, but delivers a sort order.
irule btree_scan: RET[D2](?1) => Btree_scan[D3](?1) {
  test any_index(D1.attributes);
  preopt {
    D3 = D2;
    D3.index_attr = first_index_attr(D1.attributes);
    D3.tuple_order = sort_on(first_index_attr(D1.attributes));
  }
  postopt { D3.cost = D1.num_records + D2.num_records; }
}

// Figure 6 of the paper, verbatim.
irule nested_loops: JOIN[D3](?1, ?2) => Nested_loops[D5](?1:D4, ?2) {
  preopt {
    D5 = D3;
    D4 = D1;
    D4.tuple_order = D3.tuple_order;
  }
  postopt { D5.cost = D4.cost + D4.num_records * D2.cost; }
}

irule merge_join: JOIN[D3](?1, ?2) => Merge_join[D6](?1:D4, ?2:D5) {
  test is_equijoinable(D3.join_predicate);
  preopt {
    D6 = D3;
    D4 = D1;
    D5 = D2;
    D4.tuple_order = sort_on(side_join_attrs(D3.join_predicate, D1.attributes));
    D5.tuple_order = sort_on(side_join_attrs(D3.join_predicate, D2.attributes));
    D6.tuple_order = sort_on(side_join_attrs(D3.join_predicate, D1.attributes));
  }
  postopt {
    D6.cost = D4.cost + D5.cost + D4.num_records + D5.num_records;
  }
}

// Figure 5 of the paper.
irule merge_sort: SORT[D2](?1) => Merge_sort[D3](?1) {
  test D2.tuple_order != DONT_CARE;
  preopt { D3 = D2; }
  postopt { D3.cost = D1.cost + D3.num_records * log(D3.num_records); }
}

// Figure 7(b) of the paper: SORT is an enforcer-operator.
irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
  preopt {
    D4 = D2;
    D3 = D1;
    D3.tuple_order = D2.tuple_order;
  }
  postopt { D4.cost = D3.cost; }
}
)PRAIRIE";

}  // namespace

const char* RelationalSpecText() { return kRelationalSpec; }

common::Result<core::RuleSet> BuildRelationalPrairie() {
  return dsl::ParseRuleSet(kRelationalSpec, StandardHelpers());
}

}  // namespace prairie::opt

// The Open-OODB-scale optimizer (paper §4): object-oriented algebra with
// SELECT, PROJECT, JOIN, RET, UNNEST and MAT, plus the SORT enforcer-
// operator. The Prairie specification has 22 T-rules and 11 I-rules; P2V
// compacts it to 17 trans_rules, 9 impl_rules and 1 enforcer — the counts
// the paper reports for the TI Open OODB rule set.
//
// The original TI rule files are proprietary; DESIGN.md §3 documents this
// reconstruction and why it preserves the paper's observables.

#pragma once

#include "core/ruleset.h"

namespace prairie::opt {

/// The Prairie specification text (DSL form).
const char* OodbSpecText();

/// Parses the OODB specification with the standard helper registry.
common::Result<core::RuleSet> BuildOodbPrairie();

}  // namespace prairie::opt

// The centralized relational optimizer of the paper's running examples
// (Tables 1-2, Figures 3, 5-7) and of the earlier experiment the paper
// recaps in §4 [Das & Batory 1993].
//
// Algebra: RET / JOIN / SORT; algorithms File_scan, Index_scan,
// Btree_scan, Nested_loops, Merge_join, Merge_sort, Null. SORT is an
// enforcer-operator (it has a Null implementation); the enforcer-
// introduction T-rules and the alias operators RETS / JOINS are merged
// away by P2V exactly as §3.3 describes.

#pragma once

#include "core/ruleset.h"

namespace prairie::opt {

/// The Prairie specification text (DSL form).
const char* RelationalSpecText();

/// Parses the relational specification with the standard helper registry.
common::Result<core::RuleSet> BuildRelationalPrairie();

}  // namespace prairie::opt

// Reference evaluator: executes a *logical* operator tree directly, by
// naive semantics (scan + filter, cross product + filter, row-at-a-time
// dereference). It is deliberately simple and obviously correct; the
// property tests compare every optimized access plan's result against it.

#pragma once

#include "algebra/expr.h"
#include "exec/table.h"

namespace prairie::opt {

/// \brief Rows plus their positional schema.
struct ReferenceResult {
  exec::RowSchema schema;
  std::vector<exec::Row> rows;
};

/// Evaluates a logical tree over the OODB/relational algebra (RET, JOIN,
/// SELECT, PROJECT, MAT, UNNEST) against `db`.
common::Result<ReferenceResult> EvaluateLogical(
    const algebra::Expr& tree, const algebra::Algebra& algebra,
    const exec::Database& db);

}  // namespace prairie::opt

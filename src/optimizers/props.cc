#include "optimizers/props.h"

#include "algebra/descriptor_store.h"
#include "optimizers/native_helpers.h"

#include <algorithm>

#include "common/strings.h"

namespace prairie::opt {

using algebra::Attr;
using algebra::AttrList;
using algebra::Descriptor;
using algebra::Expr;
using algebra::ExprPtr;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::PropertySchema;
using algebra::SortSpec;
using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;
using core::EvalContext;
using core::EvalResult;
using core::HelperRegistry;

common::Result<Props> Props::FromSchema(const PropertySchema& schema) {
  Props p;
  auto get = [&schema](const char* name) -> Result<algebra::PropertyId> {
    return schema.Require(name);
  };
  PRAIRIE_ASSIGN_OR_RETURN(p.tuple_order, get(kTupleOrder));
  PRAIRIE_ASSIGN_OR_RETURN(p.num_records, get(kNumRecords));
  PRAIRIE_ASSIGN_OR_RETURN(p.tuple_size, get(kTupleSize));
  PRAIRIE_ASSIGN_OR_RETURN(p.attributes, get(kAttributes));
  PRAIRIE_ASSIGN_OR_RETURN(p.selection_predicate, get(kSelectionPredicate));
  PRAIRIE_ASSIGN_OR_RETURN(p.join_predicate, get(kJoinPredicate));
  PRAIRIE_ASSIGN_OR_RETURN(p.projected_attributes, get(kProjectedAttributes));
  PRAIRIE_ASSIGN_OR_RETURN(p.index_attr, get(kIndexAttr));
  PRAIRIE_ASSIGN_OR_RETURN(p.mat_attr, get(kMatAttr));
  PRAIRIE_ASSIGN_OR_RETURN(p.mat_class, get(kMatClass));
  PRAIRIE_ASSIGN_OR_RETURN(p.unnest_attr, get(kUnnestAttr));
  PRAIRIE_ASSIGN_OR_RETURN(p.unnest_mult, get(kUnnestMult));
  PRAIRIE_ASSIGN_OR_RETURN(p.cost, get(kCost));
  return p;
}

Status AddStandardProperties(PropertySchema* schema) {
  PRAIRIE_RETURN_NOT_OK(schema->Add(kTupleOrder, ValueType::kSort));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kNumRecords, ValueType::kReal));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kTupleSize, ValueType::kReal));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kAttributes, ValueType::kAttrs));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kSelectionPredicate, ValueType::kPred));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kJoinPredicate, ValueType::kPred));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kProjectedAttributes, ValueType::kAttrs));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kIndexAttr, ValueType::kAttrs));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kMatAttr, ValueType::kAttrs));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kMatClass, ValueType::kString));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kUnnestAttr, ValueType::kAttrs));
  PRAIRIE_RETURN_NOT_OK(schema->Add(kUnnestMult, ValueType::kReal));
  PRAIRIE_RETURN_NOT_OK(
      schema->Add(algebra::PropertyDecl{kCost, ValueType::kReal,
                                        /*is_cost=*/true}));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Helper functions: thin registry adapters over the native implementations
// (optimizers/native_helpers.h) so the interpreted and the code-generated
// P2V deployments share one definition of every support function.
// ---------------------------------------------------------------------------

namespace {

template <typename Fn>
Status CheckScalars(const std::vector<EvalResult>& args, const char* name,
                    Fn&&) {
  for (const EvalResult& a : args) {
    if (a.is_desc()) {
      return Status::TypeError(std::string(name) +
                               ": whole descriptors are not accepted");
    }
  }
  return Status::OK();
}

using Native1 = Result<Value> (*)(const catalog::Catalog*, const Value&);
using Native2 = Result<Value> (*)(const catalog::Catalog*, const Value&,
                                  const Value&);
using Native3 = Result<Value> (*)(const catalog::Catalog*, const Value&,
                                  const Value&, const Value&);

Status Reg(HelperRegistry* reg, const char* name, Native1 fn) {
  return reg->Register(
      name, 1,
      [fn, name](const std::vector<EvalResult>& args,
                 const EvalContext& ctx) -> Result<Value> {
        PRAIRIE_RETURN_NOT_OK(CheckScalars(args, name, fn));
        return fn(ctx.catalog, args[0].val());
      });
}

Status Reg(HelperRegistry* reg, const char* name, Native2 fn) {
  return reg->Register(
      name, 2,
      [fn, name](const std::vector<EvalResult>& args,
                 const EvalContext& ctx) -> Result<Value> {
        PRAIRIE_RETURN_NOT_OK(CheckScalars(args, name, fn));
        return fn(ctx.catalog, args[0].val(), args[1].val());
      });
}

Status Reg(HelperRegistry* reg, const char* name, Native3 fn) {
  return reg->Register(
      name, 3,
      [fn, name](const std::vector<EvalResult>& args,
                 const EvalContext& ctx) -> Result<Value> {
        PRAIRIE_RETURN_NOT_OK(CheckScalars(args, name, fn));
        return fn(ctx.catalog, args[0].val(), args[1].val(), args[2].val());
      });
}

}  // namespace

Status RegisterDomainHelpers(HelperRegistry* reg) {
  namespace nh = ::prairie::opt::native;
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "selectivity", nh::selectivity));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "join_card", nh::join_card));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "union", nh::union_));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "attrs_minus", nh::attrs_minus));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "attrs_subset", nh::attrs_subset));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "conj_over", nh::conj_over));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "conj_not_over", nh::conj_not_over));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "conj_count", nh::conj_count));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "first_conjunct", nh::first_conjunct));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "rest_conjuncts", nh::rest_conjuncts));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "pred_and", nh::pred_and));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "refers_both", nh::refers_both));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "refers_only", nh::refers_only));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "is_equijoinable", nh::is_equijoinable));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "has_index_eq", nh::has_index_eq));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "indexed_attr", nh::indexed_attr));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "index_eq_cost", nh::index_eq_cost));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "any_index", nh::any_index));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "first_index_attr", nh::first_index_attr));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "sort_on", nh::sort_on));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "side_join_attrs", nh::side_join_attrs));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "is_ref_join", nh::is_ref_join));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "class_attrs", nh::class_attrs));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "class_card", nh::class_card));
  PRAIRIE_RETURN_NOT_OK(Reg(reg, "class_tuple_size", nh::class_tuple_size));
  return Status::OK();
}

std::shared_ptr<HelperRegistry> StandardHelpers() {
  auto reg = HelperRegistry::WithBuiltins();
  Status st = RegisterDomainHelpers(reg.get());
  (void)st;  // Registrations over a fresh registry cannot collide.
  return reg;
}

// ---------------------------------------------------------------------------
// TreeBuilder
// ---------------------------------------------------------------------------

Result<double> TreeBuilder::NumRecordsOf(const Expr& e) const {
  PRAIRIE_ASSIGN_OR_RETURN(Value v, e.descriptor().Get(kNumRecords));
  if (v.is_null()) {
    return Status::Internal("expression node missing num_records");
  }
  return v.ToReal();
}

Result<ExprPtr> TreeBuilder::Ret(const std::string& file,
                                 PredicateRef selection) {
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* f,
                           catalog_->Require(file));
  PRAIRIE_ASSIGN_OR_RETURN(algebra::OpId ret, algebra_->Require("RET"));
  const PropertySchema& schema = algebra_->properties();

  algebra::DescriptorBuilder leaf(&schema);
  AttrList attrs = f->QualifiedAttrs();
  PRAIRIE_RETURN_NOT_OK(leaf.SetNamed(
      kNumRecords, Value::Real(static_cast<double>(f->cardinality()))));
  PRAIRIE_RETURN_NOT_OK(leaf.SetNamed(
      kTupleSize, Value::Real(static_cast<double>(f->tuple_size()))));
  PRAIRIE_RETURN_NOT_OK(leaf.SetNamed(kAttributes, Value::Attrs(attrs)));
  ExprPtr leaf_node = Expr::MakeFile(file, std::move(leaf).Build());

  double sel = catalog::EstimateSelectivity(selection, *catalog_);
  algebra::DescriptorBuilder d(&schema);
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kNumRecords, Value::Real(static_cast<double>(f->cardinality()) * sel)));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kTupleSize, Value::Real(static_cast<double>(f->tuple_size()))));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kAttributes, Value::Attrs(attrs)));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kSelectionPredicate,
      Value::Pred(selection == nullptr ? Predicate::True() : selection)));
  PRAIRIE_RETURN_NOT_OK(
      d.SetNamed(kProjectedAttributes, Value::Attrs(std::move(attrs))));
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(leaf_node));
  return Expr::MakeOp(ret, std::move(kids), std::move(d).Build());
}

Result<ExprPtr> TreeBuilder::Join(ExprPtr left, ExprPtr right,
                                  PredicateRef pred) {
  PRAIRIE_ASSIGN_OR_RETURN(algebra::OpId join, algebra_->Require("JOIN"));
  const PropertySchema& schema = algebra_->properties();
  PRAIRIE_ASSIGN_OR_RETURN(double nl, NumRecordsOf(*left));
  PRAIRIE_ASSIGN_OR_RETURN(double nr, NumRecordsOf(*right));
  PRAIRIE_ASSIGN_OR_RETURN(Value la, left->descriptor().Get(kAttributes));
  PRAIRIE_ASSIGN_OR_RETURN(Value ra, right->descriptor().Get(kAttributes));
  PRAIRIE_ASSIGN_OR_RETURN(Value ls, left->descriptor().Get(kTupleSize));
  PRAIRIE_ASSIGN_OR_RETURN(Value rs, right->descriptor().Get(kTupleSize));

  algebra::DescriptorBuilder d(&schema);
  double sel = catalog::EstimateSelectivity(pred, *catalog_);
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kNumRecords, Value::Real(nl * nr * sel)));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kTupleSize,
      Value::Real(ls.ToReal().ValueOr(0) + rs.ToReal().ValueOr(0))));
  PRAIRIE_RETURN_NOT_OK(
      d.SetNamed(kAttributes,
            Value::Attrs(algebra::UnionAttrs(la.AsAttrs(), ra.AsAttrs()))));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kJoinPredicate,
      Value::Pred(pred == nullptr ? Predicate::True() : pred)));
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(left));
  kids.push_back(std::move(right));
  return Expr::MakeOp(join, std::move(kids), std::move(d).Build());
}

Result<ExprPtr> TreeBuilder::Select(ExprPtr input, PredicateRef pred) {
  PRAIRIE_ASSIGN_OR_RETURN(algebra::OpId sel_op, algebra_->Require("SELECT"));
  const PropertySchema& schema = algebra_->properties();
  PRAIRIE_ASSIGN_OR_RETURN(double n, NumRecordsOf(*input));
  PRAIRIE_ASSIGN_OR_RETURN(Value attrs, input->descriptor().Get(kAttributes));
  PRAIRIE_ASSIGN_OR_RETURN(Value size, input->descriptor().Get(kTupleSize));
  double sel = catalog::EstimateSelectivity(pred, *catalog_);

  algebra::DescriptorBuilder d(&schema);
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kNumRecords, Value::Real(n * sel)));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kTupleSize, size));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kAttributes, attrs));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kSelectionPredicate,
      Value::Pred(pred == nullptr ? Predicate::True() : pred)));
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(input));
  return Expr::MakeOp(sel_op, std::move(kids), std::move(d).Build());
}

Result<ExprPtr> TreeBuilder::Project(ExprPtr input, AttrList attrs) {
  PRAIRIE_ASSIGN_OR_RETURN(algebra::OpId proj, algebra_->Require("PROJECT"));
  const PropertySchema& schema = algebra_->properties();
  PRAIRIE_ASSIGN_OR_RETURN(double n, NumRecordsOf(*input));
  algebra::DescriptorBuilder d(&schema);
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kNumRecords, Value::Real(n)));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kTupleSize, Value::Real(16.0 * static_cast<double>(attrs.size()))));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kAttributes, Value::Attrs(attrs)));
  PRAIRIE_RETURN_NOT_OK(
      d.SetNamed(kProjectedAttributes, Value::Attrs(std::move(attrs))));
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(input));
  return Expr::MakeOp(proj, std::move(kids), std::move(d).Build());
}

Result<ExprPtr> TreeBuilder::Mat(ExprPtr input, Attr ref_attr) {
  PRAIRIE_ASSIGN_OR_RETURN(algebra::OpId mat, algebra_->Require("MAT"));
  const PropertySchema& schema = algebra_->properties();
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* src,
                           catalog_->Require(ref_attr.cls));
  PRAIRIE_ASSIGN_OR_RETURN(catalog::AttributeDef ad,
                           src->RequireAttr(ref_attr.name));
  if (!ad.is_reference()) {
    return Status::InvalidArgument("attribute '" + ref_attr.ToString() +
                                   "' is not a reference attribute");
  }
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* target,
                           catalog_->Require(ad.ref_class));
  PRAIRIE_ASSIGN_OR_RETURN(double n, NumRecordsOf(*input));
  PRAIRIE_ASSIGN_OR_RETURN(Value attrs, input->descriptor().Get(kAttributes));
  PRAIRIE_ASSIGN_OR_RETURN(Value size, input->descriptor().Get(kTupleSize));

  algebra::DescriptorBuilder d(&schema);
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kNumRecords, Value::Real(n)));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kTupleSize,
      Value::Real(size.ToReal().ValueOr(0) +
                  static_cast<double>(target->tuple_size()))));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(
      kAttributes, Value::Attrs(algebra::UnionAttrs(
                       attrs.AsAttrs(), target->QualifiedAttrs()))));
  PRAIRIE_RETURN_NOT_OK(
      d.SetNamed(kMatAttr, Value::Attrs(AttrList{std::move(ref_attr)})));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kMatClass, Value::Str(ad.ref_class)));
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(input));
  return Expr::MakeOp(mat, std::move(kids), std::move(d).Build());
}

Result<ExprPtr> TreeBuilder::Unnest(ExprPtr input, Attr set_attr) {
  PRAIRIE_ASSIGN_OR_RETURN(algebra::OpId unnest, algebra_->Require("UNNEST"));
  const PropertySchema& schema = algebra_->properties();
  PRAIRIE_ASSIGN_OR_RETURN(const catalog::StoredFile* src,
                           catalog_->Require(set_attr.cls));
  PRAIRIE_ASSIGN_OR_RETURN(catalog::AttributeDef ad,
                           src->RequireAttr(set_attr.name));
  if (!ad.set_valued) {
    return Status::InvalidArgument("attribute '" + set_attr.ToString() +
                                   "' is not set-valued");
  }
  PRAIRIE_ASSIGN_OR_RETURN(double n, NumRecordsOf(*input));
  PRAIRIE_ASSIGN_OR_RETURN(Value attrs, input->descriptor().Get(kAttributes));
  PRAIRIE_ASSIGN_OR_RETURN(Value size, input->descriptor().Get(kTupleSize));

  algebra::DescriptorBuilder d(&schema);
  PRAIRIE_RETURN_NOT_OK(
      d.SetNamed(kNumRecords, Value::Real(n * ad.avg_set_size)));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kTupleSize, size));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kAttributes, attrs));
  PRAIRIE_RETURN_NOT_OK(
      d.SetNamed(kUnnestAttr, Value::Attrs(AttrList{std::move(set_attr)})));
  PRAIRIE_RETURN_NOT_OK(d.SetNamed(kUnnestMult, Value::Real(ad.avg_set_size)));
  std::vector<ExprPtr> kids;
  kids.push_back(std::move(input));
  return Expr::MakeOp(unnest, std::move(kids), std::move(d).Build());
}

}  // namespace prairie::opt

#include "common/trace.h"

namespace prairie::common {

RingBufferSink::RingBufferSink(size_t capacity) {
  buf_.resize(capacity == 0 ? 1 : capacity);
}

void RingBufferSink::Emit(const TraceEvent& e) {
  buf_[head_] = e;
  head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
  ++total_;
}

std::vector<TraceEvent> RingBufferSink::Snapshot() const {
  std::vector<TraceEvent> out;
  const size_t n = total_ < buf_.size() ? total_ : buf_.size();
  out.reserve(n);
  // Oldest-first: when the ring has wrapped, the oldest retained event is
  // at head_ (the next overwrite target).
  const size_t start = total_ < buf_.size() ? 0 : head_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

std::vector<TraceEvent> RingBufferSink::SnapshotSince(
    size_t since_total) const {
  std::vector<TraceEvent> out = Snapshot();
  if (since_total >= total_) return {};
  // Snapshot() holds the last `out.size()` of `total_` events: global
  // indexes [total_ - out.size(), total_). Drop the prefix older than the
  // mark.
  const size_t oldest = total_ - out.size();
  if (since_total > oldest) {
    out.erase(out.begin(),
              out.begin() + static_cast<ptrdiff_t>(since_total - oldest));
  }
  return out;
}

void RingBufferSink::Clear() {
  head_ = 0;
  total_ = 0;
}

}  // namespace prairie::common

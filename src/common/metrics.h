// Process-wide aggregate metrics (the observability layer's second half).
//
// PR 3's trace stream answers "what happened during this one search";
// metrics answer "what is this process doing over time" — monotonic
// counters, point-in-time gauges, and log-bucketed latency histograms that
// survive an 8-worker batch run and export in one call.
//
// Cost model (mirrors common/trace.h):
//   * Compile-time: PRAIRIE_METRICS (defaults to PRAIRIE_TRACING, so
//     -DPRAIRIE_TRACING=0 kills both layers). With it off, instrumented
//     code compiles every emission site away.
//   * Hot path: one relaxed atomic add into a per-thread shard — no locks,
//     no cache-line ping-pong between worker threads (shards are
//     cache-line padded and picked by thread id). Values are merged across
//     shards only at snapshot/export time.
//   * Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
//     meant for setup code, not per-event paths: register once, hold the
//     pointer, increment forever.
//
// Exporters: PrometheusText() renders the text exposition format (# HELP /
// # TYPE, cumulative `le` buckets); JsonSnapshot() renders one JSON object
// per line, the same convention the bench harness writes BENCH_*.json in.

#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#ifndef PRAIRIE_TRACING
#define PRAIRIE_TRACING 1
#endif
#ifndef PRAIRIE_METRICS
#define PRAIRIE_METRICS PRAIRIE_TRACING
#endif

namespace prairie::common {

/// Stable per-thread shard index (hash of the thread id). Cached in a
/// thread_local so the hot path pays one TLS read, not a hash.
inline size_t MetricsShardIndex() {
  thread_local const size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return index;
}

/// \brief Monotonic counter, sharded per thread: Inc() is one relaxed
/// atomic add with no inter-thread contention; Value() merges the shards.
class Counter {
 public:
  static constexpr size_t kNumShards = 16;

  void Inc(uint64_t n = 1) {
    shards_[MetricsShardIndex() & (kNumShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over all shards (snapshot-time merge).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kNumShards> shards_;
};

/// \brief Point-in-time signed value. Set/Add are not sharded — gauges are
/// written from setup/summary code, not hot loops.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Merged view of a Histogram at one instant.
struct HistogramSnapshot {
  /// counts[i] = observations in bucket i (NOT cumulative).
  std::array<uint64_t, 48> counts{};
  uint64_t count = 0;  ///< Total observations.
  uint64_t sum = 0;    ///< Sum of observed values.

  /// Upper bound (inclusive) of bucket `i`: 0 for bucket 0, 2^i - 1
  /// otherwise; the last bucket is unbounded (rendered +Inf by exporters).
  static uint64_t UpperBound(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i) - 1;
  }

  /// The p-th percentile (p in [0, 100]) as the upper bound of the first
  /// bucket whose cumulative count reaches ceil(p/100 * count). Log-2
  /// buckets bound the overestimate to 2x the true value. 0 when empty.
  double Percentile(double p) const;
};

/// \brief Log-2-bucketed histogram of non-negative integer samples
/// (typically latencies in nanoseconds). Bucket 0 holds the value 0;
/// bucket i >= 1 holds values with bit width i, i.e. [2^(i-1), 2^i - 1];
/// the last bucket absorbs everything wider. Observe() is two relaxed
/// atomic adds into the calling thread's shard.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 48;  // 2^47 ns ~ 39 hours.
  static constexpr size_t kNumShards = 16;

  /// Bucket index of `v`: 0 for 0, else bit_width(v) clamped to the range.
  static size_t BucketIndex(uint64_t v) {
    if (v == 0) return 0;
    const size_t w = static_cast<size_t>(std::bit_width(v));
    return w < kNumBuckets ? w : kNumBuckets - 1;
  }

  void Observe(uint64_t v) {
    Shard& s = shards_[MetricsShardIndex() & (kNumShards - 1)];
    s.counts[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Merges all shards into one consistent-enough view (concurrent
  /// Observe() calls may or may not be included; each is atomic).
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> counts{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kNumShards> shards_;
};

/// What a registry series measures (public: snapshots carry it).
enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// \brief Owner and exporter of named metrics.
///
/// Metrics are identified by (name, labels); re-registering the same
/// identity returns the same object, so independent subsystems can share a
/// series without coordination. Construct standalone registries freely
/// (tests, per-run isolation) or use the process-wide Global().
class MetricsRegistry {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// \brief Point-in-time value of one series (Sample()). Counter/gauge
  /// values and histogram snapshots are merged over all shards; which
  /// union member is meaningful follows `kind`.
  struct SeriesSample {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    uint64_t counter = 0;
    int64_t gauge = 0;
    HistogramSnapshot hist;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry* Global();

  /// Finds or creates the series. The returned pointer is stable for the
  /// registry's lifetime. `help` is kept from the first registration of
  /// `name`. Thread-safe; not for hot paths.
  Counter* GetCounter(std::string_view name, std::string_view help = "",
                      const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = "",
                  const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help = "",
                          const Labels& labels = {});

  /// Prometheus text exposition: one # HELP / # TYPE header per metric
  /// name, then every series; histograms render cumulative `le` buckets
  /// plus _sum and _count.
  std::string PrometheusText() const;

  /// One JSON object per line (the BENCH_*.json convention): counters and
  /// gauges as {"metric":...,"type":...,"value":...}, histograms with
  /// count/sum/percentiles and their non-empty buckets.
  std::string JsonSnapshot() const;

  /// Samples every series at one instant (insertion order, the export
  /// order). The scrape-side primitive of the windowed time-series layer
  /// (common/timeseries.h): two Sample() vectors subtract into interval
  /// deltas. Concurrent writers are fine — reads are the same relaxed
  /// shard merges the exporters use.
  std::vector<SeriesSample> Sample() const;

  size_t NumSeries() const;

 private:
  using Kind = MetricKind;
  struct Series {
    std::string name;
    std::string help;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series* FindOrCreate(std::string_view name, std::string_view help,
                       const Labels& labels, Kind kind);

  mutable std::mutex mu_;
  /// Insertion-ordered so exports are deterministic; series pointers are
  /// stable because entries are heap-allocated.
  std::vector<std::unique_ptr<Series>> series_;
};

}  // namespace prairie::common

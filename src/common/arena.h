// Chunked bump allocation for the memo's stable storage (the SNIPPETS
// arena + hash-consed-node idiom, extended from the descriptor store to
// group and multi-expression storage).
//
// Two pieces:
//   - Arena: a thread-safe bump allocator handing out raw blocks. All
//     memory is released at once when the arena dies; nothing is freed
//     individually, so allocation is a pointer bump and the allocator
//     never fragments under the memo's insert-only workload.
//   - StableVector<T>: an append-only vector whose elements NEVER move.
//     Storage is a ladder of geometrically growing chunks (capacity
//     kBase << c) allocated from the arena, published through atomic
//     pointers. Readers index concurrently with one appender without
//     locks: the element is fully constructed before the size is
//     published with release ordering. Appends themselves must be
//     serialized by the caller (the memo holds the owning lock).
//
// This is what lets the concurrent memo hand out references into groups
// and expression lists that stay valid across concurrent inserts and
// merges — the 1995 paper's virtual-memory wall at 8-way joins was as
// much allocator churn as search-space size.

#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace prairie::common {

/// \brief Thread-safe bump allocator. Allocations live until the arena is
/// destroyed; there is no per-object free.
class Arena {
 public:
  explicit Arena(size_t block_bytes = 1 << 16) : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Oversized requests get a dedicated block.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    std::lock_guard<std::mutex> lock(mu_);
    uintptr_t p = (cur_ + (align - 1)) & ~(uintptr_t{align} - 1);
    if (p + bytes > end_) {
      const size_t block = bytes + align > block_bytes_ ? bytes + align
                                                        : block_bytes_;
      blocks_.push_back(std::make_unique<char[]>(block));
      bytes_reserved_.fetch_add(block, std::memory_order_relaxed);
      cur_ = reinterpret_cast<uintptr_t>(blocks_.back().get());
      end_ = cur_ + block;
      p = (cur_ + (align - 1)) & ~(uintptr_t{align} - 1);
    }
    cur_ = p + bytes;
    bytes_used_.fetch_add(bytes, std::memory_order_relaxed);
    return reinterpret_cast<void*>(p);
  }

  /// Total block bytes reserved from the system (>= bytes_used).
  size_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }

  /// Bytes handed out to callers (excludes alignment slop and block tails).
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  size_t block_bytes_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  uintptr_t cur_ = 0;
  uintptr_t end_ = 0;
  std::atomic<size_t> bytes_reserved_{0};
  std::atomic<size_t> bytes_used_{0};
};

/// \brief Append-only vector with stable element addresses, backed by an
/// arena. One writer (externally serialized) and any number of lock-free
/// readers.
///
/// Chunk c holds kBase << c elements starting at logical index
/// kBase * ((1 << c) - 1); 40 chunks cover ~2^42 elements. Element
/// destructors run when the StableVector dies (the arena only reclaims the
/// raw memory).
template <typename T>
class StableVector {
 public:
  static constexpr size_t kBase = 8;
  static constexpr size_t kMaxChunks = 40;

  explicit StableVector(Arena* arena) : arena_(arena) {}

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  ~StableVector() { DestroyAll(); }

  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  T& operator[](size_t i) { return *Slot(i); }
  const T& operator[](size_t i) const { return *Slot(i); }

  T& back() { return (*this)[size() - 1]; }

  /// Constructs a new element in place and publishes it. The caller must
  /// serialize EmplaceBack/Clear calls (readers need no lock).
  template <typename... Args>
  T& EmplaceBack(Args&&... args) {
    const size_t i = size_.load(std::memory_order_relaxed);
    size_t chunk, offset;
    Locate(i, &chunk, &offset);
    T* base = chunks_[chunk].load(std::memory_order_relaxed);
    if (base == nullptr) {
      base = static_cast<T*>(
          arena_->Allocate(sizeof(T) * (kBase << chunk), alignof(T)));
      chunks_[chunk].store(base, std::memory_order_release);
    }
    T* slot = base + offset;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    size_.store(i + 1, std::memory_order_release);
    return *slot;
  }

  /// Destroys all elements and resets the size, keeping the chunk ladder
  /// for reuse. Only valid when no concurrent reader exists (the serial
  /// memo's destructive merge path).
  void Clear() {
    DestroyAll();
    size_.store(0, std::memory_order_release);
  }

  /// Index-based iteration (stable under concurrent appends: the range is
  /// pinned to the size observed when begin() was called).
  class const_iterator {
   public:
    const_iterator(const StableVector* v, size_t i) : v_(v), i_(i) {}
    const T& operator*() const { return (*v_)[i_]; }
    const T* operator->() const { return &(*v_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    const StableVector* v_;
    size_t i_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

 private:
  static void Locate(size_t i, size_t* chunk, size_t* offset) {
    const size_t q = i / kBase + 1;
    const size_t c = static_cast<size_t>(std::bit_width(q)) - 1;
    *chunk = c;
    *offset = i - kBase * ((size_t{1} << c) - 1);
  }

  T* Slot(size_t i) const {
    size_t chunk, offset;
    Locate(i, &chunk, &offset);
    return chunks_[chunk].load(std::memory_order_acquire) + offset;
  }

  void DestroyAll() {
    const size_t n = size_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) Slot(i)->~T();
  }

  Arena* arena_;
  std::atomic<T*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> size_{0};
};

}  // namespace prairie::common

// Small string utilities shared across modules.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prairie::common {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a double without trailing zeros ("3.5", "12", "0.001").
std::string FormatDouble(double v);

/// Indents every line of `text` by `spaces` spaces.
std::string Indent(std::string_view text, int spaces);

/// Escapes `s` for embedding inside a double-quoted JSON string: quotes,
/// backslashes, and control characters (RFC 8259). Does not add the
/// surrounding quotes.
std::string JsonEscape(std::string_view s);

/// Lowercase hex rendering of `v`'s low `digits` nibbles, most significant
/// first ("00ab12..."). Used for stable query fingerprints in filenames
/// and log records.
std::string HexEncode(uint64_t v, int digits = 16);

}  // namespace prairie::common

// Wall-clock timing helper for the experiment harness.

#pragma once

#include <chrono>

namespace prairie::common {

/// \brief Measures elapsed wall-clock time from construction or Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace prairie::common

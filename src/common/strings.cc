#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace prairie::common {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string FormatDouble(double v) {
  std::string s = StringPrintf("%.6g", v);
  return s;
}

std::string Indent(std::string_view text, int spaces) {
  std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    std::string_view line = (pos == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, pos - start);
    out += pad;
    out += line;
    if (pos == std::string_view::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexEncode(uint64_t v, int digits) {
  if (digits < 1) digits = 1;
  if (digits > 16) digits = 16;
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(static_cast<size_t>(digits), '0');
  for (int i = digits - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace prairie::common

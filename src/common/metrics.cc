#include "common/metrics.h"

#include <cmath>

#include "common/strings.h"

namespace prairie::common {

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  const uint64_t target = rank == 0 ? 1 : rank;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= target) return static_cast<double>(UpperBound(i));
  }
  return static_cast<double>(UpperBound(counts.size() - 1));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.counts[i] += s.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

MetricsRegistry* MetricsRegistry::Global() {
  // Leaked on purpose: metrics may be written by detached/atexit code.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return registry;
}

MetricsRegistry::Series* MetricsRegistry::FindOrCreate(
    std::string_view name, std::string_view help, const Labels& labels,
    Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : series_) {
    if (s->name == name && s->labels == labels) {
      // Same identity, same kind: the registry is the arbiter of types.
      return s->kind == kind ? s.get() : nullptr;
    }
  }
  auto s = std::make_unique<Series>();
  s->name = std::string(name);
  s->help = std::string(help);
  s->labels = labels;
  s->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      s->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      s->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      s->histogram = std::make_unique<Histogram>();
      break;
  }
  series_.push_back(std::move(s));
  return series_.back().get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     const Labels& labels) {
  Series* s = FindOrCreate(name, help, labels, Kind::kCounter);
  return s != nullptr ? s->counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 const Labels& labels) {
  Series* s = FindOrCreate(name, help, labels, Kind::kGauge);
  return s != nullptr ? s->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         const Labels& labels) {
  Series* s = FindOrCreate(name, help, labels, Kind::kHistogram);
  return s != nullptr ? s->histogram.get() : nullptr;
}

std::vector<MetricsRegistry::SeriesSample> MetricsRegistry::Sample() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesSample> out;
  out.reserve(series_.size());
  for (const auto& s : series_) {
    SeriesSample sample;
    sample.name = s->name;
    sample.labels = s->labels;
    sample.kind = s->kind;
    switch (s->kind) {
      case MetricKind::kCounter:
        sample.counter = s->counter->Value();
        break;
      case MetricKind::kGauge:
        sample.gauge = s->gauge->Value();
        break;
      case MetricKind::kHistogram:
        sample.hist = s->histogram->Snapshot();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

size_t MetricsRegistry::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

namespace {

/// Renders {a="x",b="y"}; empty labels render as the empty string.
/// `extra` (e.g. le="...") is appended after the user labels.
std::string RenderLabels(const MetricsRegistry::Labels& labels,
                         const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + JsonEscape(v) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

std::string JsonLabels(const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return "";
  std::string out = ",\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_name;
  for (const auto& s : series_) {
    if (s->name != last_name) {
      last_name = s->name;
      if (!s->help.empty()) out += "# HELP " + s->name + " " + s->help + "\n";
      const char* type = s->kind == Kind::kCounter    ? "counter"
                         : s->kind == Kind::kGauge    ? "gauge"
                                                      : "histogram";
      out += "# TYPE " + s->name + " " + type + "\n";
    }
    switch (s->kind) {
      case Kind::kCounter:
        out += s->name + RenderLabels(s->labels) + " " +
               std::to_string(s->counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += s->name + RenderLabels(s->labels) + " " +
               std::to_string(s->gauge->Value()) + "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = s->histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.counts.size(); ++i) {
          cumulative += snap.counts[i];
          // Empty buckets are skipped (log-2 gives ~48 per series); the
          // final +Inf bucket is always emitted, as Prometheus requires.
          if (snap.counts[i] == 0 && i + 1 < snap.counts.size()) continue;
          const std::string le =
              i + 1 < snap.counts.size()
                  ? "le=\"" +
                        std::to_string(HistogramSnapshot::UpperBound(i)) + "\""
                  : "le=\"+Inf\"";
          out += s->name + "_bucket" + RenderLabels(s->labels, le) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += s->name + "_sum" + RenderLabels(s->labels) + " " +
               std::to_string(snap.sum) + "\n";
        out += s->name + "_count" + RenderLabels(s->labels) + " " +
               std::to_string(snap.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& s : series_) {
    out += "{\"metric\":\"" + JsonEscape(s->name) + "\"" +
           JsonLabels(s->labels);
    switch (s->kind) {
      case Kind::kCounter:
        out += ",\"type\":\"counter\",\"value\":" +
               std::to_string(s->counter->Value());
        break;
      case Kind::kGauge:
        out += ",\"type\":\"gauge\",\"value\":" +
               std::to_string(s->gauge->Value());
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = s->histogram->Snapshot();
        out += ",\"type\":\"histogram\",\"count\":" +
               std::to_string(snap.count) +
               ",\"sum\":" + std::to_string(snap.sum) +
               ",\"p50\":" + FormatDouble(snap.Percentile(50)) +
               ",\"p90\":" + FormatDouble(snap.Percentile(90)) +
               ",\"p99\":" + FormatDouble(snap.Percentile(99)) +
               ",\"buckets\":[";
        bool first = true;
        for (size_t i = 0; i < snap.counts.size(); ++i) {
          if (snap.counts[i] == 0) continue;
          if (!first) out += ",";
          first = false;
          out += "[" + std::to_string(HistogramSnapshot::UpperBound(i)) + "," +
                 std::to_string(snap.counts[i]) + "]";
        }
        out += "]";
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

}  // namespace prairie::common

// Build-configuration provenance for bundles, logs, and --version.
//
// A diagnostic bundle captured on one machine is read on another; whether
// tracing/metrics/exec-stats were compiled in, and with which compiler,
// changes what the numbers mean (a tracing-off binary reports zero rule
// latencies honestly). These helpers render the compile-time switches the
// repo exposes, in both human (--version) and JSON (manifest) form.

#pragma once

#include <string>

#include "common/metrics.h"  // PRAIRIE_TRACING / PRAIRIE_METRICS defaults.

#ifndef PRAIRIE_EXEC_STATS
#define PRAIRIE_EXEC_STATS PRAIRIE_TRACING
#endif

namespace prairie::common {

/// Compiler id + version, best effort ("gcc 13.2.0", "clang 17.0.1").
inline std::string CompilerText() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

/// Human-readable build configuration, one line ("gcc 13.2.0,
/// tracing=1 metrics=1 exec_stats=1").
inline std::string BuildConfigText() {
  return CompilerText() + ", tracing=" + std::to_string(PRAIRIE_TRACING) +
         " metrics=" + std::to_string(PRAIRIE_METRICS) +
         " exec_stats=" + std::to_string(PRAIRIE_EXEC_STATS);
}

/// The same as a JSON object (no trailing newline), for manifests.
inline std::string BuildConfigJson() {
  return std::string("{\"compiler\":\"") + CompilerText() +
         "\",\"tracing\":" + std::to_string(PRAIRIE_TRACING) +
         ",\"metrics\":" + std::to_string(PRAIRIE_METRICS) +
         ",\"exec_stats\":" + std::to_string(PRAIRIE_EXEC_STATS) + "}";
}

}  // namespace prairie::common

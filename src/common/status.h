// Status: the error model used throughout Prairie.
//
// The library does not throw exceptions; fallible operations return a
// Status (or a Result<T>, see result.h). This follows the conventions of
// production database codebases (RocksDB, Arrow).

#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace prairie::common {

/// Error categories for Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kRuleError,
  kOptimizeError,
  kExecError,
  kInternal,
  kNotImplemented,
  kResourceExhausted,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// \brief Result of a fallible operation: a code plus a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the
/// OK case and carry a heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status RuleError(std::string msg) {
    return Status(StatusCode::kRuleError, std::move(msg));
  }
  static Status OptimizeError(std::string msg) {
    return Status(StatusCode::kOptimizeError, std::move(msg));
  }
  static Status ExecError(std::string msg) {
    return Status(StatusCode::kExecError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message,
  /// for adding call-site detail as an error propagates upward.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace prairie::common

/// Propagates a non-OK Status to the caller.
#define PRAIRIE_RETURN_NOT_OK(expr)                       \
  do {                                                    \
    ::prairie::common::Status _st = (expr);               \
    if (!_st.ok()) return _st;                            \
  } while (0)

#define PRAIRIE_CONCAT_IMPL(a, b) a##b
#define PRAIRIE_CONCAT(a, b) PRAIRIE_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define PRAIRIE_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  PRAIRIE_ASSIGN_OR_RETURN_IMPL(                                   \
      PRAIRIE_CONCAT(_prairie_result_, __LINE__), lhs, rexpr)

#define PRAIRIE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueUnsafe();

#include "common/timeseries.h"

#include <chrono>

#include "common/strings.h"

namespace prairie::common {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string JsonLabels(const MetricsRegistry::Labels& labels) {
  if (labels.empty()) return "";
  std::string out = ",\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += "}";
  return out;
}

/// counts/sum of `after` minus `before`, saturating at 0 per bucket (the
/// relaxed shard merges make regressions impossible for a single scraping
/// thread, but saturation keeps a torn read from flipping sign).
HistogramSnapshot HistDelta(const HistogramSnapshot& before,
                            const HistogramSnapshot& after) {
  HistogramSnapshot d;
  for (size_t i = 0; i < d.counts.size(); ++i) {
    d.counts[i] =
        after.counts[i] > before.counts[i] ? after.counts[i] - before.counts[i]
                                           : 0;
    d.count += d.counts[i];
  }
  d.sum = after.sum > before.sum ? after.sum - before.sum : 0;
  return d;
}

}  // namespace

TimeSeriesWriter::TimeSeriesWriter(const MetricsRegistry* registry,
                                   std::ostream* out, Options options)
    : registry_(registry), out_(out), options_(options) {
  last_ = registry_->Sample();
  armed_ns_ = SteadyNowNs();
}

bool TimeSeriesWriter::MaybeScrape(bool force) {
  const uint64_t now_ms = (SteadyNowNs() - armed_ns_) / 1000000;
  return ScrapeAt(now_ms, force);
}

bool TimeSeriesWriter::ScrapeAt(uint64_t now_ms, bool force) {
  if (!force && scraped_once_ &&
      now_ms - last_scrape_ms_ < options_.interval_ms) {
    return false;
  }
  std::vector<MetricsRegistry::SeriesSample> cur = registry_->Sample();
  const uint64_t window_ms =
      scraped_once_ ? now_ms - last_scrape_ms_ : now_ms;
  std::string line = "{\"ts_ms\":" + std::to_string(now_ms) +
                     ",\"interval_ms\":" + std::to_string(window_ms) +
                     ",\"seq\":" + std::to_string(seq_) + ",\"metrics\":[" +
                     Delta(last_, cur, options_.include_unchanged) + "]}\n";
  (*out_) << line;
  out_->flush();
  last_ = std::move(cur);
  last_scrape_ms_ = now_ms;
  scraped_once_ = true;
  ++seq_;
  return true;
}

std::string TimeSeriesWriter::Delta(
    const std::vector<MetricsRegistry::SeriesSample>& before,
    const std::vector<MetricsRegistry::SeriesSample>& after,
    bool include_unchanged) {
  std::string out;
  bool first = true;
  auto append = [&](const std::string& body) {
    if (!first) out += ",";
    first = false;
    out += body;
  };
  // The registry is append-only and insertion-ordered, so `before` is a
  // prefix of `after` (identity-wise); series born mid-window diff
  // against a zero baseline.
  for (size_t i = 0; i < after.size(); ++i) {
    const MetricsRegistry::SeriesSample& a = after[i];
    const bool has_before = i < before.size() && before[i].name == a.name &&
                            before[i].labels == a.labels &&
                            before[i].kind == a.kind;
    const std::string head =
        "{\"metric\":\"" + JsonEscape(a.name) + "\"" + JsonLabels(a.labels);
    switch (a.kind) {
      case MetricKind::kCounter: {
        const uint64_t prev = has_before ? before[i].counter : 0;
        const uint64_t delta = a.counter > prev ? a.counter - prev : 0;
        if (delta == 0 && !include_unchanged) break;
        append(head + ",\"type\":\"counter\",\"delta\":" +
               std::to_string(delta) +
               ",\"total\":" + std::to_string(a.counter) + "}");
        break;
      }
      case MetricKind::kGauge: {
        const int64_t prev = has_before ? before[i].gauge : 0;
        if (a.gauge == prev && !include_unchanged) break;
        append(head +
               ",\"type\":\"gauge\",\"value\":" + std::to_string(a.gauge) +
               "}");
        break;
      }
      case MetricKind::kHistogram: {
        const HistogramSnapshot d =
            has_before ? HistDelta(before[i].hist, a.hist) : a.hist;
        if (d.count == 0 && !include_unchanged) break;
        std::string body = head + ",\"type\":\"histogram\",\"count\":" +
                           std::to_string(d.count) +
                           ",\"sum\":" + std::to_string(d.sum) +
                           ",\"p50\":" + FormatDouble(d.Percentile(50)) +
                           ",\"p90\":" + FormatDouble(d.Percentile(90)) +
                           ",\"p99\":" + FormatDouble(d.Percentile(99)) +
                           ",\"buckets\":[";
        bool bfirst = true;
        for (size_t b = 0; b < d.counts.size(); ++b) {
          if (d.counts[b] == 0) continue;
          if (!bfirst) body += ",";
          bfirst = false;
          body += "[" + std::to_string(HistogramSnapshot::UpperBound(b)) +
                  "," + std::to_string(d.counts[b]) + "]";
        }
        body += "]}";
        append(body);
        break;
      }
    }
  }
  return out;
}

}  // namespace prairie::common

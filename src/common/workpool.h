// A small work-stealing thread pool shared by the batch optimizer (one
// task per query) and the intra-query parallel search (one task per
// group). Tasks may submit further tasks; RunUntilIdle() drains the pool
// to quiescence, with the calling thread participating as worker 0.
//
// Scheduling: each worker owns a deque — it pushes and pops at the back
// (LIFO keeps the working set warm), and steals from the FRONT of a
// victim's deque when its own runs dry (FIFO steals take the oldest,
// largest-granularity work). External Submit() calls land in a shared
// inject queue that idle workers drain first.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prairie::common {

/// \brief Fixed-size work-stealing pool; construct per parallel region.
///
/// Threads are spawned on construction and parked between RunUntilIdle()
/// calls. The destructor joins them. Tasks receive the executing worker's
/// id in [0, threads()): callers use it to index per-worker state (trace
/// sinks, optimizer instances) without locks.
class WorkPool {
 public:
  using Task = std::function<void(int worker_id)>;

  /// `threads` <= 0 picks std::thread::hardware_concurrency(). Worker 0 is
  /// the thread that calls RunUntilIdle(); threads - 1 helpers are
  /// spawned.
  explicit WorkPool(int threads);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  int threads() const { return threads_; }

  /// Enqueues a task. Inside a task, the work lands on the executing
  /// worker's own deque (stealable by others); outside, on the shared
  /// inject queue. Must not be called concurrently with pool destruction.
  void Submit(Task task);

  /// Runs tasks on the calling thread (as worker 0) together with the
  /// helper threads until every submitted task — including tasks spawned
  /// by tasks — has finished. Reentrant calls are not allowed.
  void RunUntilIdle();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  bool PopLocal(int wid, Task* out);
  bool Steal(int wid, Task* out);
  bool PopInject(Task* out);
  void WorkerLoop(int wid);
  /// Runs tasks until none can be found anywhere and pending_ is zero.
  void DrainAs(int wid);

  int threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::mutex inject_mu_;
  std::deque<Task> inject_;

  std::mutex mu_;
  std::condition_variable wake_;     ///< Helpers wait here for work.
  std::condition_variable drained_;  ///< RunUntilIdle waits here.
  size_t pending_ = 0;  ///< Submitted but not yet finished tasks.
  bool running_ = false;
  bool shutdown_ = false;

  std::vector<std::thread> helpers_;
  /// The executing worker's id, or -1 outside pool threads (thread_local
  /// key is global; the pool pointer disambiguates nested pools).
  static thread_local const WorkPool* current_pool_;
  static thread_local int current_wid_;
};

}  // namespace prairie::common

// FunctionRef: a non-owning, non-allocating reference to a callable.
//
// The rule-binding enumerator recurses with continuation callbacks whose
// lifetime is strictly the enclosing call (they never escape), so paying
// std::function's type-erased allocation per recursion level is pure
// overhead. FunctionRef erases the callable into a {context pointer,
// trampoline} pair — two words, trivially copyable, nothing to allocate or
// destroy (same shape as llvm::function_ref / absl::FunctionRef).
//
// The referent MUST outlive every call through the FunctionRef; never
// store one beyond the call that received it.

#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>

namespace prairie::common {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(runtime/explicit): implicit, like absl::FunctionRef.
  FunctionRef(F&& f)
      // intptr_t, not void*: the referent may be a plain function, and
      // function pointers only round-trip through an integer type.
      : obj_(reinterpret_cast<intptr_t>(std::addressof(f))),
        call_([](intptr_t obj, Args... args) -> R {
          return (*reinterpret_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  intptr_t obj_;
  R (*call_)(intptr_t, Args...);
};

}  // namespace prairie::common

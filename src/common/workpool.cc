#include "common/workpool.h"

#include <chrono>

namespace prairie::common {

thread_local const WorkPool* WorkPool::current_pool_ = nullptr;
thread_local int WorkPool::current_wid_ = -1;

WorkPool::WorkPool(int threads) {
  threads_ = threads;
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
  queues_.reserve(static_cast<size_t>(threads_));
  for (int t = 0; t < threads_; ++t) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  helpers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int t = 1; t < threads_; ++t) {
    helpers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

WorkPool::~WorkPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void WorkPool::Submit(Task task) {
  const int wid = current_pool_ == this ? current_wid_ : -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  if (wid >= 0) {
    WorkerQueue& q = *queues_[static_cast<size_t>(wid)];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(inject_mu_);
    inject_.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool WorkPool::PopLocal(int wid, Task* out) {
  WorkerQueue& q = *queues_[static_cast<size_t>(wid)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  *out = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool WorkPool::PopInject(Task* out) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (inject_.empty()) return false;
  *out = std::move(inject_.front());
  inject_.pop_front();
  return true;
}

bool WorkPool::Steal(int wid, Task* out) {
  // Round-robin victim scan starting after the thief keeps contention off
  // any single deque.
  for (int d = 1; d < threads_; ++d) {
    const int victim = (wid + d) % threads_;
    WorkerQueue& q = *queues_[static_cast<size_t>(victim)];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    *out = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void WorkPool::DrainAs(int wid) {
  const WorkPool* prev_pool = current_pool_;
  const int prev_wid = current_wid_;
  current_pool_ = this;
  current_wid_ = wid;
  for (;;) {
    Task task;
    if (PopLocal(wid, &task) || PopInject(&task) || Steal(wid, &task)) {
      task(wid);
      bool empty;
      {
        std::lock_guard<std::mutex> lock(mu_);
        empty = --pending_ == 0;
      }
      if (empty) drained_.notify_all();
      continue;
    }
    break;
  }
  current_pool_ = prev_pool;
  current_wid_ = prev_wid;
}

void WorkPool::WorkerLoop(int wid) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || (running_ && pending_ > 0); });
      if (shutdown_) return;
    }
    DrainAs(wid);
    // Out of visible work; loop back to wait. pending_ may still be > 0
    // (another worker is mid-task and could spawn more) — the spawn's
    // notify re-wakes us.
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    if (pending_ == 0) drained_.notify_all();
  }
}

void WorkPool::RunUntilIdle() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = true;
  }
  wake_.notify_all();
  for (;;) {
    DrainAs(0);
    std::unique_lock<std::mutex> lock(mu_);
    if (pending_ == 0) break;
    // Tasks exist but are all claimed by helpers; wait for completion or
    // for freshly spawned work to appear.
    drained_.wait_for(lock, std::chrono::milliseconds(1),
                      [this] { return pending_ == 0; });
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

}  // namespace prairie::common

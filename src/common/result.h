// Result<T>: value-or-Status, the return type of fallible value-producing
// operations. Mirrors arrow::Result / rocksdb's Status+out-param pattern
// with value semantics.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace prairie::common {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Constructing a Result from an OK status is a programming error (there
/// would be no value); it is converted to an Internal error.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, like arrow::Result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value; must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Like ValueOrDie; used by PRAIRIE_ASSIGN_OR_RETURN after checking ok().
  T&& ValueUnsafe() && { return std::get<T>(std::move(repr_)); }

  /// The value if present, otherwise `fallback`.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace prairie::common

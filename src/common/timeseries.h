// Windowed time-series export of a MetricsRegistry.
//
// The registry's exporters (PrometheusText / JsonSnapshot) render
// cumulative process-lifetime values: a 100k-query traffic run collapses
// into one end-of-run p50/p99. TimeSeriesWriter turns the same registry
// into a sequence of *interval* records — it keeps the previous Sample()
// vector, subtracts it from the current one at each scrape, and writes one
// JSON line per window. Counter lines carry the per-window delta (plus the
// cumulative total); histogram lines carry per-window count/sum and
// percentiles computed over the delta buckets only, so a latency spike in
// window 7 is visible in window 7 instead of being averaged away.
//
// Record format (JSON lines, one object per scrape):
//   {"ts_ms":12345,"interval_ms":250,"seq":3,"metrics":[
//     {"metric":"...","type":"counter","delta":12,"total":340},
//     {"metric":"...","type":"gauge","value":8},
//     {"metric":"...","type":"histogram","count":97,"sum":12345,
//      "p50":...,"p90":...,"p99":...,"buckets":[[ub,c],...]} ]}
// ts_ms is milliseconds since the writer was armed (steady clock), so
// successive records have monotonically nondecreasing timestamps.
// Unchanged series are omitted unless Options::include_unchanged is set.
//
// Threading: scrapes are driver-side (the traffic/batch loop calls
// MaybeScrape between chunks); concurrent metric *writers* are fine —
// Sample() uses the same relaxed shard merges as the exporters — but the
// writer itself is not thread-safe and expects one scraping thread.
//
// Compiled out with the rest of the metrics layer: with PRAIRIE_METRICS=0
// the registry still exists but holds no series, so scrapes cheaply emit
// empty windows.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace prairie::common {

/// \brief Scrape cadence and verbosity of a TimeSeriesWriter.
struct TimeSeriesOptions {
  /// Minimum milliseconds between scrapes; MaybeScrape() calls inside
  /// the window are no-ops. 0 means every MaybeScrape() call scrapes.
  uint64_t interval_ms = 250;
  /// Also emit series whose value did not change during the window.
  bool include_unchanged = false;
};

/// \brief Interval-delta scraper: arms on construction (baseline sample),
/// then each scrape diffs against the previous sample and appends one
/// JSON line to the output stream.
class TimeSeriesWriter {
 public:
  using Options = TimeSeriesOptions;

  /// Arms the writer: takes the baseline sample and the t=0 timestamp.
  /// `out` must outlive the writer; nothing is written until a scrape.
  TimeSeriesWriter(const MetricsRegistry* registry, std::ostream* out,
                   Options options = Options());

  /// Scrapes if at least interval_ms elapsed since the last scrape (or if
  /// `force`). Returns true if a record was written. Call this from the
  /// driver loop between work chunks; it reads the steady clock once.
  bool MaybeScrape(bool force = false);

  /// Deterministic-clock variant for tests and for drivers that already
  /// know the time: `now_ms` is milliseconds since arming.
  bool ScrapeAt(uint64_t now_ms, bool force = false);

  /// Records written so far.
  uint64_t seq() const { return seq_; }

  /// Renders the delta between two Sample() vectors as the "metrics":[...]
  /// array body (no surrounding envelope). `before` may be shorter than
  /// `after` — series registered mid-window diff against zero.
  static std::string Delta(const std::vector<MetricsRegistry::SeriesSample>& before,
                           const std::vector<MetricsRegistry::SeriesSample>& after,
                           bool include_unchanged);

 private:
  const MetricsRegistry* registry_;
  std::ostream* out_;
  Options options_;
  std::vector<MetricsRegistry::SeriesSample> last_;
  uint64_t armed_ns_ = 0;     ///< Steady-clock arming time.
  uint64_t last_scrape_ms_ = 0;
  bool scraped_once_ = false;
  uint64_t seq_ = 0;
};

}  // namespace prairie::common

#include "common/status.h"

namespace prairie::common {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kRuleError:
      return "RuleError";
    case StatusCode::kOptimizeError:
      return "OptimizeError";
    case StatusCode::kExecError:
      return "ExecError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace prairie::common

// Deterministic pseudo-random number generation for workload generators
// and property tests. All randomness in the repository flows through Rng
// with explicit seeds so experiments are reproducible.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace prairie::common {

/// \brief Small, fast, seedable PRNG (xoshiro256** core).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator (splitmix64 state expansion).
  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Picks a uniformly random element index for a container of size n (n>0).
  size_t Index(size_t n) {
    return static_cast<size_t>(Uniform(0, static_cast<int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace prairie::common

// A dynamic bitset optimized for the common small case: bits 0..63 live in
// an inline word so per-MExpr rule masks stay allocation-free for typical
// rule sets, while larger rule sets (>64 transformation rules) spill to a
// heap vector instead of silently aliasing indices.

#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace prairie::common {

/// \brief Grow-on-demand bitset with an inline first word.
///
/// Unset bits read as false at any index, so callers never need to size the
/// set up front; `Set` grows the heap storage as needed.
class SmallBitset {
 public:
  SmallBitset() = default;

  /// Returns bit `i` (false for any index never set).
  bool Test(int i) const {
    if (i < 64) return (inline_ & (1ull << i)) != 0;
    const std::size_t word = static_cast<std::size_t>(i - 64) >> 6;
    if (word >= rest_.size()) return false;
    return (rest_[word] & (1ull << ((i - 64) & 63))) != 0;
  }

  /// Sets bit `i`, growing heap storage if `i >= 64`.
  void Set(int i) {
    if (i < 64) {
      inline_ |= 1ull << i;
      return;
    }
    const std::size_t word = static_cast<std::size_t>(i - 64) >> 6;
    if (word >= rest_.size()) rest_.resize(word + 1, 0);
    rest_[word] |= 1ull << ((i - 64) & 63);
  }

  /// Clears all bits (keeps heap capacity).
  void Reset() {
    inline_ = 0;
    for (uint64_t& w : rest_) w = 0;
  }

  /// True iff no bit is set.
  bool None() const {
    if (inline_ != 0) return false;
    for (uint64_t w : rest_) {
      if (w != 0) return false;
    }
    return true;
  }

 private:
  uint64_t inline_ = 0;
  std::vector<uint64_t> rest_;
};

/// \brief A bitset whose words are atomics, for per-expression rule masks
/// shared by concurrent memo workers.
///
/// Bits 0..63 live in an inline word (allocation-free for typical rule
/// sets); larger rule sets spill to a fixed heap array sized once by
/// EnsureCapacity() BEFORE the bitset is shared — the word count never
/// changes afterwards, so Test/Set/TestAndSet are lock-free and safe from
/// any thread. Copying (memo merges duplicate expressions between groups)
/// snapshots each word with relaxed loads; the copy is only published
/// under the destination group's lock.
class AtomicBitset {
 public:
  AtomicBitset() = default;

  AtomicBitset(const AtomicBitset& o) { CopyFrom(o); }
  AtomicBitset& operator=(const AtomicBitset& o) {
    if (this != &o) CopyFrom(o);
    return *this;
  }
  /// Atomics are not movable; moves degrade to relaxed-snapshot copies.
  AtomicBitset(AtomicBitset&& o) noexcept { CopyFrom(o); }
  AtomicBitset& operator=(AtomicBitset&& o) noexcept {
    if (this != &o) CopyFrom(o);
    return *this;
  }

  /// Sizes the spill array for bits [64, bits). Must be called before the
  /// bitset is visible to other threads; bits < 64 need no capacity.
  void EnsureCapacity(int bits) {
    if (bits <= 64) return;
    const std::size_t words = (static_cast<std::size_t>(bits - 64) + 63) >> 6;
    if (words <= rest_words_) return;
    auto grown = std::make_unique<std::atomic<uint64_t>[]>(words);
    for (std::size_t w = 0; w < words; ++w) {
      grown[w].store(w < rest_words_
                         ? rest_[w].load(std::memory_order_relaxed)
                         : 0,
                     std::memory_order_relaxed);
    }
    rest_ = std::move(grown);
    rest_words_ = words;
  }

  bool Test(int i) const {
    if (i < 64) {
      return (inline_.load(std::memory_order_relaxed) & (1ull << i)) != 0;
    }
    const std::size_t word = static_cast<std::size_t>(i - 64) >> 6;
    if (word >= rest_words_) return false;
    return (rest_[word].load(std::memory_order_relaxed) &
            (1ull << ((i - 64) & 63))) != 0;
  }

  void Set(int i) { (void)TestAndSet(i); }

  /// Atomically sets bit `i`; returns its previous value. This is the
  /// claim primitive: the worker that flips 0 -> 1 owns the
  /// (expression, rule) application.
  bool TestAndSet(int i) {
    if (i < 64) {
      const uint64_t mask = 1ull << i;
      return (inline_.fetch_or(mask, std::memory_order_acq_rel) & mask) != 0;
    }
    const std::size_t word = static_cast<std::size_t>(i - 64) >> 6;
    assert(word < rest_words_ &&
           "AtomicBitset::EnsureCapacity must cover every rule index");
    const uint64_t mask = 1ull << ((i - 64) & 63);
    return (rest_[word].fetch_or(mask, std::memory_order_acq_rel) & mask) != 0;
  }

  /// Atomically clears bit `i` (re-arms a rule after its inputs changed).
  void Clear(int i) {
    if (i < 64) {
      inline_.fetch_and(~(1ull << i), std::memory_order_acq_rel);
      return;
    }
    const std::size_t word = static_cast<std::size_t>(i - 64) >> 6;
    if (word >= rest_words_) return;
    rest_[word].fetch_and(~(1ull << ((i - 64) & 63)),
                          std::memory_order_acq_rel);
  }

 private:
  void CopyFrom(const AtomicBitset& o) {
    inline_.store(o.inline_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    if (o.rest_words_ > 0) {
      auto words = std::make_unique<std::atomic<uint64_t>[]>(o.rest_words_);
      for (std::size_t w = 0; w < o.rest_words_; ++w) {
        words[w].store(o.rest_[w].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      }
      rest_ = std::move(words);
      rest_words_ = o.rest_words_;
    } else {
      rest_.reset();
      rest_words_ = 0;
    }
  }

  std::atomic<uint64_t> inline_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> rest_;
  std::size_t rest_words_ = 0;
};

}  // namespace prairie::common

// A dynamic bitset optimized for the common small case: bits 0..63 live in
// an inline word so per-MExpr rule masks stay allocation-free for typical
// rule sets, while larger rule sets (>64 transformation rules) spill to a
// heap vector instead of silently aliasing indices.

#pragma once

#include <cstdint>
#include <vector>

namespace prairie::common {

/// \brief Grow-on-demand bitset with an inline first word.
///
/// Unset bits read as false at any index, so callers never need to size the
/// set up front; `Set` grows the heap storage as needed.
class SmallBitset {
 public:
  SmallBitset() = default;

  /// Returns bit `i` (false for any index never set).
  bool Test(int i) const {
    if (i < 64) return (inline_ & (1ull << i)) != 0;
    const std::size_t word = static_cast<std::size_t>(i - 64) >> 6;
    if (word >= rest_.size()) return false;
    return (rest_[word] & (1ull << ((i - 64) & 63))) != 0;
  }

  /// Sets bit `i`, growing heap storage if `i >= 64`.
  void Set(int i) {
    if (i < 64) {
      inline_ |= 1ull << i;
      return;
    }
    const std::size_t word = static_cast<std::size_t>(i - 64) >> 6;
    if (word >= rest_.size()) rest_.resize(word + 1, 0);
    rest_[word] |= 1ull << ((i - 64) & 63);
  }

  /// Clears all bits (keeps heap capacity).
  void Reset() {
    inline_ = 0;
    for (uint64_t& w : rest_) w = 0;
  }

  /// True iff no bit is set.
  bool None() const {
    if (inline_ != 0) return false;
    for (uint64_t w : rest_) {
      if (w != 0) return false;
    }
    return true;
  }

 private:
  uint64_t inline_ = 0;
  std::vector<uint64_t> rest_;
};

}  // namespace prairie::common

// Hash combining utilities (boost::hash_combine style, 64-bit).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace prairie::common {

/// Mixes `value` into `seed` (64-bit variant of boost::hash_combine).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // Golden-ratio based mixing constant for 64-bit combine.
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Hashes an arbitrary value with std::hash and mixes it into `seed`.
template <typename T>
uint64_t HashMix(uint64_t seed, const T& value) {
  return HashCombine(seed, std::hash<T>{}(value));
}

}  // namespace prairie::common

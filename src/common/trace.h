// Low-overhead search tracing (the observability layer's core).
//
// The optimizer emits typed TraceEvents — group expansion/optimization
// spans, rule attempts, plan costings, winner selections, prunes — into a
// TraceSink. Everything downstream (the per-rule profile, the Chrome
// trace_event exporter, ad-hoc analysis) is derived from this one stream,
// so instrumented code never knows who is listening.
//
// Cost model:
//   * Compile-time: PRAIRIE_TRACING (default 1). Building with
//     -DPRAIRIE_TRACING=0 removes every emission site entirely.
//   * Runtime: a null sink pointer disables tracing at the price of one
//     predictable branch per event site — no clock reads, no stores.
//   * Enabled: events go to a preallocated ring buffer (RingBufferSink),
//     so emission is a couple of stores plus one steady_clock read; the
//     ring never allocates after construction and overwrites the oldest
//     events when full (dropped() reports how many).
//
// Sinks are single-threaded by design: each optimizer (one per worker in
// a batch) owns a private sink, and streams are merged after the workers
// join — no cross-thread contention on the hot path. TraceEvent carries
// the emitting thread id so merged streams stay attributable.

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#ifndef PRAIRIE_TRACING
#define PRAIRIE_TRACING 1
#endif

namespace prairie::common {

/// \brief What one trace event records. Span kinds carry a duration
/// (ts_ns = start, dur_ns = elapsed); instant kinds are points in time.
enum class TraceEventKind : uint8_t {
  kGroupExpand,      ///< Span: transformation closure of one group.
  kGroupOptimize,    ///< Span: OptimizeGroup under one requirement.
  kTransAttempt,     ///< Span: one trans-rule binding (condition + firing).
  kImplAttempt,      ///< Span: one impl-rule application (incl. input opt).
  kEnforcerAttempt,  ///< Span: one enforcer application.
  kTransFire,        ///< Instant: a new logical expression was added.
  kPlanCosted,       ///< Instant: a physical alternative was fully costed.
  kWinnerSelected,   ///< Instant: winner memoized for (group, requirement).
  kPrune,            ///< Instant: branch-and-bound cut a branch.
  kCycleGuard,       ///< Instant: cyclic (group, requirement) search hit.
  // Executor kinds (emitted after a run from ExecStats, in the same
  // steady-clock domain, so optimize and execute share one timeline).
  kExecQuery,     ///< Span: one full query execution (open..close).
  kExecOperator,  ///< Span: one operator's lifetime; desc = algebra OpId.
  kExecQError,    ///< Instant: per-operator Q-error (in `cost`).
};

/// True for kinds that represent a timed interval rather than a point.
inline bool IsSpanKind(TraceEventKind k) {
  return k <= TraceEventKind::kEnforcerAttempt ||
         k == TraceEventKind::kExecQuery ||
         k == TraceEventKind::kExecOperator;
}

/// \brief How much of the stream an armed sink receives.
///
/// kFull is the post-mortem setting: every kind, including per-attempt
/// spans whose paired clock reads dominate tracing cost. kCoarse is the
/// always-on flight-recorder setting: only the kinds IsCoarseKind()
/// accepts, cheap enough to leave armed under traffic (bench_diag gates
/// it at <= 2% per-query overhead).
enum class TraceDetail : uint8_t { kFull, kCoarse };

/// Kinds retained at TraceDetail::kCoarse: group-level search spans,
/// winner instants, and the executor kinds (emitted once per run, off the
/// optimize hot path). Attempt spans and per-attempt instants are skipped
/// entirely — no clock reads, no stores.
inline bool IsCoarseKind(TraceEventKind k) {
  return k == TraceEventKind::kGroupExpand ||
         k == TraceEventKind::kGroupOptimize ||
         k == TraceEventKind::kWinnerSelected ||
         k >= TraceEventKind::kExecQuery;
}

/// \brief One fixed-size trace record (no owned memory: rule and group
/// identities are indexes resolved against the RuleSet/memo by consumers).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kGroupExpand;
  int32_t group = -1;   ///< Memo group id, -1 if not applicable.
  int32_t rule = -1;    ///< Index into trans_rules/impl_rules/enforcers.
  int32_t desc = -1;    ///< DescriptorId (requirement or arguments).
  int32_t depth = 0;    ///< Search nesting depth at emission.
  uint32_t tid = 0;     ///< Emitting thread (TraceThreadId()).
  double cost = 0;      ///< Plan/winner cost or pruning budget.
  uint64_t ts_ns = 0;   ///< Steady-clock start timestamp, nanoseconds.
  uint64_t dur_ns = 0;  ///< Span duration (0 for instants).
};

/// Steady-clock timestamp in nanoseconds (the TraceEvent::ts_ns domain).
inline uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stable id of the calling thread, compressed to 32 bits.
inline uint32_t TraceThreadId() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/// \brief Receiver of one optimizer's event stream. Implementations are
/// not required to be thread-safe: one sink per emitting thread.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& e) = 0;
};

/// \brief Preallocated fixed-capacity ring sink: O(1) emission, zero
/// allocation after construction; the oldest events are overwritten when
/// the ring is full.
class RingBufferSink final : public TraceSink {
 public:
  /// `capacity` is clamped to >= 1. The buffer (sizeof(TraceEvent) *
  /// capacity bytes) is allocated up front.
  explicit RingBufferSink(size_t capacity = kDefaultCapacity);

  void Emit(const TraceEvent& e) override;

  /// The retained events, oldest first (at most `capacity` of them).
  std::vector<TraceEvent> Snapshot() const;

  /// The retained events whose emission index (0-based over the sink's
  /// lifetime) is >= `since_total`, oldest first. Pairing a
  /// total_emitted() mark taken before a query with SnapshotSince(mark)
  /// after it slices the flight recorder down to that query's events;
  /// events of the window already overwritten by wrap-around are absent
  /// (count them via total_emitted() - mark vs the slice size).
  std::vector<TraceEvent> SnapshotSince(size_t since_total) const;

  size_t capacity() const { return buf_.size(); }
  /// Events ever emitted, including overwritten ones.
  size_t total_emitted() const { return total_; }
  /// Events lost to ring wrap-around (total_emitted() - retained).
  size_t dropped() const {
    return total_ > buf_.size() ? total_ - buf_.size() : 0;
  }

  void Clear();

  static constexpr size_t kDefaultCapacity = size_t{1} << 18;  // ~12 MiB.

 private:
  std::vector<TraceEvent> buf_;
  size_t head_ = 0;   ///< Next write position.
  size_t total_ = 0;  ///< Events emitted over the sink's lifetime.
};

}  // namespace prairie::common

#include "dsl/parser.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "dsl/lexer.h"

namespace prairie::dsl {

using algebra::OpId;
using algebra::PatNode;
using algebra::PatNodePtr;
using algebra::SortSpec;
using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;
using core::ActionExpr;
using core::ActionExprPtr;
using core::ActionStmt;
using core::BinOp;
using core::UnOp;

namespace {

/// Parses "D<k>" identifiers; returns the 0-based slot or -1.
int DescSlotOf(const std::string& ident) {
  if (ident.size() < 2 || ident[0] != 'D') return -1;
  for (size_t i = 1; i < ident.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(ident[i]))) return -1;
  }
  int k = std::atoi(ident.c_str() + 1);
  return k >= 1 ? k - 1 : -1;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens,
         std::shared_ptr<core::HelperRegistry> helpers)
      : toks_(std::move(tokens)) {
    rules_.algebra = std::make_shared<algebra::Algebra>();
    rules_.helpers = helpers != nullptr
                         ? std::move(helpers)
                         : core::HelperRegistry::WithBuiltins();
  }

  Result<core::RuleSet> Run() {
    while (!At(TokKind::kEnd)) {
      PRAIRIE_RETURN_NOT_OK(Item());
    }
    PRAIRIE_RETURN_NOT_OK(rules_.Validate());
    return std::move(rules_);
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  bool At(TokKind k) const { return Cur().kind == k; }
  bool AtIdent(std::string_view word) const {
    return At(TokKind::kIdent) && Cur().text == word;
  }
  const Token& Advance() { return toks_[pos_++]; }

  Status Err(const std::string& msg) const {
    return Status::ParseError(common::StringPrintf(
        "line %d, col %d: %s (found %s)", Cur().line, Cur().col, msg.c_str(),
        Cur().Describe().c_str()));
  }

  Status Expect(TokKind k) {
    if (!At(k)) {
      return Err("expected " + std::string(TokKindName(k)));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (!At(TokKind::kIdent)) return Err("expected " + what);
    return Advance().text;
  }

  Status Item() {
    if (AtIdent("property")) return Property();
    if (AtIdent("operator")) return Operation(/*is_algorithm=*/false);
    if (AtIdent("algorithm")) return Operation(/*is_algorithm=*/true);
    if (AtIdent("trule")) return TRuleItem();
    if (AtIdent("irule")) return IRuleItem();
    return Err(
        "expected 'property', 'operator', 'algorithm', 'trule' or 'irule'");
  }

  Status Property() {
    Advance();
    PRAIRIE_ASSIGN_OR_RETURN(std::string name, ExpectIdent("property name"));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kColon));
    PRAIRIE_ASSIGN_OR_RETURN(std::string type, ExpectIdent("property type"));
    algebra::PropertyDecl decl;
    decl.name = std::move(name);
    if (type == "bool") {
      decl.type = ValueType::kBool;
    } else if (type == "int") {
      decl.type = ValueType::kInt;
    } else if (type == "real") {
      decl.type = ValueType::kReal;
    } else if (type == "string") {
      decl.type = ValueType::kString;
    } else if (type == "sortspec") {
      decl.type = ValueType::kSort;
    } else if (type == "attrs") {
      decl.type = ValueType::kAttrs;
    } else if (type == "predicate") {
      decl.type = ValueType::kPred;
    } else if (type == "cost") {
      decl.type = ValueType::kReal;
      decl.is_cost = true;
    } else {
      return Err("unknown property type '" + type + "'");
    }
    PRAIRIE_RETURN_NOT_OK(
        rules_.algebra->mutable_properties()->Add(std::move(decl)));
    return Expect(TokKind::kSemi);
  }

  Status Operation(bool is_algorithm) {
    Advance();
    PRAIRIE_ASSIGN_OR_RETURN(std::string name, ExpectIdent("operation name"));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kLParen));
    if (!At(TokKind::kInt)) return Err("expected arity");
    int arity = static_cast<int>(Advance().int_value);
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kRParen));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kSemi));
    if (is_algorithm && name == "Null" && arity == 1) {
      return Status::OK();  // Pre-registered in every Algebra.
    }
    common::Result<OpId> id =
        is_algorithm ? rules_.algebra->RegisterAlgorithm(name, arity)
                     : rules_.algebra->RegisterOperator(name, arity);
    return id.status();
  }

  // -- Patterns ------------------------------------------------------------

  /// lhs_stream_slots maps ?v -> its LHS slot, filled while parsing the
  /// LHS (null on the LHS itself means "assign defaults").
  Result<PatNodePtr> Pattern(std::map<int, int>* lhs_stream_slots,
                             bool is_lhs) {
    if (At(TokKind::kQuestion)) {
      Advance();
      if (!At(TokKind::kInt)) return Err("expected stream variable number");
      int var = static_cast<int>(Advance().int_value);
      if (var < 1) return Err("stream variables are numbered from ?1");
      int slot = -1;
      if (At(TokKind::kColon)) {
        Advance();
        PRAIRIE_ASSIGN_OR_RETURN(std::string d,
                                 ExpectIdent("descriptor annotation"));
        slot = DescSlotOf(d);
        if (slot < 0) return Err("expected descriptor annotation Dk");
      }
      if (is_lhs) {
        if (slot < 0) slot = var - 1;  // Paper convention: Si carries Di.
        (*lhs_stream_slots)[var] = slot;
      } else if (slot < 0) {
        auto it = lhs_stream_slots->find(var);
        if (it == lhs_stream_slots->end()) {
          return Err("RHS stream ?" + std::to_string(var) +
                     " does not occur on the LHS");
        }
        slot = it->second;
      }
      return PatNode::Stream(var, slot);
    }
    PRAIRIE_ASSIGN_OR_RETURN(std::string name, ExpectIdent("operation name"));
    auto op = rules_.algebra->Find(name);
    if (!op.has_value()) {
      return Err("unknown operation '" + name + "'");
    }
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kLBracket));
    PRAIRIE_ASSIGN_OR_RETURN(std::string d,
                             ExpectIdent("descriptor annotation"));
    int slot = DescSlotOf(d);
    if (slot < 0) return Err("expected descriptor annotation Dk");
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kRBracket));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kLParen));
    std::vector<PatNodePtr> children;
    if (!At(TokKind::kRParen)) {
      while (true) {
        PRAIRIE_ASSIGN_OR_RETURN(PatNodePtr c,
                                 Pattern(lhs_stream_slots, is_lhs));
        children.push_back(std::move(c));
        if (!At(TokKind::kComma)) break;
        Advance();
      }
    }
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kRParen));
    return PatNode::Op(*op, slot, std::move(children));
  }

  // -- Expressions ---------------------------------------------------------

  Result<ActionExprPtr> Expr() { return OrExpr(); }

  Result<ActionExprPtr> OrExpr() {
    PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr lhs, AndExpr());
    while (At(TokKind::kOrOr)) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr rhs, AndExpr());
      lhs = ActionExpr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ActionExprPtr> AndExpr() {
    PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr lhs, CmpExpr());
    while (At(TokKind::kAndAnd)) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr rhs, CmpExpr());
      lhs = ActionExpr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ActionExprPtr> CmpExpr() {
    PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr lhs, AddExpr());
    BinOp op;
    switch (Cur().kind) {
      case TokKind::kEq:
        op = BinOp::kEq;
        break;
      case TokKind::kNe:
        op = BinOp::kNe;
        break;
      case TokKind::kLt:
        op = BinOp::kLt;
        break;
      case TokKind::kLe:
        op = BinOp::kLe;
        break;
      case TokKind::kGt:
        op = BinOp::kGt;
        break;
      case TokKind::kGe:
        op = BinOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr rhs, AddExpr());
    return ActionExpr::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<ActionExprPtr> AddExpr() {
    PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr lhs, MulExpr());
    while (At(TokKind::kPlus) || At(TokKind::kMinus)) {
      BinOp op = At(TokKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr rhs, MulExpr());
      lhs = ActionExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ActionExprPtr> MulExpr() {
    PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr lhs, UnaryExpr());
    while (At(TokKind::kStar) || At(TokKind::kSlash)) {
      BinOp op = At(TokKind::kStar) ? BinOp::kMul : BinOp::kDiv;
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr rhs, UnaryExpr());
      lhs = ActionExpr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ActionExprPtr> UnaryExpr() {
    if (At(TokKind::kBang)) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr e, UnaryExpr());
      return ActionExpr::Unary(UnOp::kNot, std::move(e));
    }
    if (At(TokKind::kMinus)) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr e, UnaryExpr());
      return ActionExpr::Unary(UnOp::kNeg, std::move(e));
    }
    return Primary();
  }

  Result<ActionExprPtr> Primary() {
    switch (Cur().kind) {
      case TokKind::kInt:
        return ActionExpr::Const(Value::Int(Advance().int_value));
      case TokKind::kReal:
        return ActionExpr::Const(Value::Real(Advance().real_value));
      case TokKind::kString:
        return ActionExpr::Const(Value::Str(Advance().text));
      case TokKind::kLParen: {
        Advance();
        PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr e, Expr());
        PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kRParen));
        return e;
      }
      case TokKind::kIdent:
        break;
      default:
        return Err("expected an expression");
    }
    std::string name = Advance().text;
    if (name == "true") return ActionExpr::Const(Value::Bool(true));
    if (name == "false") return ActionExpr::Const(Value::Bool(false));
    if (name == "null") return ActionExpr::Const(Value::Null());
    if (name == "DONT_CARE") {
      return ActionExpr::Const(Value::Sort(SortSpec::DontCare()));
    }
    int slot = DescSlotOf(name);
    if (slot >= 0) {
      if (At(TokKind::kDot)) {
        Advance();
        PRAIRIE_ASSIGN_OR_RETURN(std::string prop,
                                 ExpectIdent("property name"));
        auto id = rules_.algebra->properties().Find(prop);
        return ActionExpr::Prop(slot, prop, id.has_value() ? *id : -1);
      }
      return ActionExpr::Desc(slot);
    }
    // Helper-function call.
    PRAIRIE_RETURN_NOT_OK(
        Expect(TokKind::kLParen).WithContext("after helper name '" + name +
                                             "'"));
    std::vector<ActionExprPtr> args;
    if (!At(TokKind::kRParen)) {
      while (true) {
        PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr a, Expr());
        args.push_back(std::move(a));
        if (!At(TokKind::kComma)) break;
        Advance();
      }
    }
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kRParen));
    return ActionExpr::Call(std::move(name), std::move(args));
  }

  // -- Statements ----------------------------------------------------------

  Result<std::vector<ActionStmt>> Block() {
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kLBrace));
    std::vector<ActionStmt> out;
    while (!At(TokKind::kRBrace)) {
      PRAIRIE_ASSIGN_OR_RETURN(std::string d,
                               ExpectIdent("descriptor (Dk) on the left of "
                                           "an assignment"));
      ActionStmt s;
      s.target_slot = DescSlotOf(d);
      if (s.target_slot < 0) {
        return Err("assignment target must be a descriptor Dk");
      }
      if (At(TokKind::kDot)) {
        Advance();
        PRAIRIE_ASSIGN_OR_RETURN(s.target_prop, ExpectIdent("property name"));
        auto id = rules_.algebra->properties().Find(s.target_prop);
        s.target_prop_id = id.has_value() ? *id : -1;
      }
      PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kAssign));
      PRAIRIE_ASSIGN_OR_RETURN(s.value, Expr());
      PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kSemi));
      out.push_back(std::move(s));
    }
    Advance();  // '}'
    return out;
  }

  // -- Rules ---------------------------------------------------------------

  static void MaxSlotInExpr(const ActionExprPtr& e, int* mx) {
    if (e == nullptr) return;
    e->Visit([mx](const core::ActionExpr& n) {
      if ((n.kind() == ActionExpr::Kind::kProp ||
           n.kind() == ActionExpr::Kind::kDesc) &&
          n.desc_slot() > *mx) {
        *mx = n.desc_slot();
      }
    });
  }

  static void MaxSlotInBlock(const std::vector<ActionStmt>& stmts, int* mx) {
    for (const ActionStmt& s : stmts) {
      if (s.target_slot > *mx) *mx = s.target_slot;
      MaxSlotInExpr(s.value, mx);
    }
  }

  Status TRuleItem() {
    Advance();
    core::TRule r;
    PRAIRIE_ASSIGN_OR_RETURN(r.name, ExpectIdent("T-rule name"));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kColon));
    std::map<int, int> stream_slots;
    PRAIRIE_ASSIGN_OR_RETURN(r.lhs, Pattern(&stream_slots, /*is_lhs=*/true));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kArrow));
    PRAIRIE_ASSIGN_OR_RETURN(r.rhs, Pattern(&stream_slots, /*is_lhs=*/false));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kLBrace));
    if (AtIdent("pre")) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(r.pre_test, Block());
    }
    if (AtIdent("test")) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(r.test, Expr());
      PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kSemi));
    }
    if (AtIdent("post")) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(r.post_test, Block());
    }
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kRBrace));
    int mx = std::max(r.lhs->MaxDescSlot(), r.rhs->MaxDescSlot());
    MaxSlotInBlock(r.pre_test, &mx);
    MaxSlotInExpr(r.test, &mx);
    MaxSlotInBlock(r.post_test, &mx);
    r.num_slots = mx + 1;
    rules_.trules.push_back(std::move(r));
    return Status::OK();
  }

  Status IRuleItem() {
    Advance();
    core::IRule r;
    PRAIRIE_ASSIGN_OR_RETURN(r.name, ExpectIdent("I-rule name"));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kColon));
    std::map<int, int> stream_slots;
    PRAIRIE_ASSIGN_OR_RETURN(PatNodePtr lhs,
                             Pattern(&stream_slots, /*is_lhs=*/true));
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kArrow));
    PRAIRIE_ASSIGN_OR_RETURN(PatNodePtr rhs,
                             Pattern(&stream_slots, /*is_lhs=*/false));

    // Both sides of an I-rule are flat: OP[Dk](?1, .., ?n) => Alg[Dm](...).
    if (lhs->is_stream() || rhs->is_stream()) {
      return Err("I-rule sides must be operations over streams");
    }
    r.op = lhs->op;
    r.alg = rhs->op;
    r.arity = static_cast<int>(lhs->children.size());
    if (static_cast<int>(rhs->children.size()) != r.arity) {
      return Err("I-rule sides have different arities");
    }
    r.rhs_input_slots.resize(static_cast<size_t>(r.arity));
    for (int i = 0; i < r.arity; ++i) {
      const PatNode& lc = *lhs->children[static_cast<size_t>(i)];
      const PatNode& rc = *rhs->children[static_cast<size_t>(i)];
      if (!lc.is_stream() || !rc.is_stream()) {
        return Err("I-rule inputs must be stream variables");
      }
      if (lc.stream_var != i + 1 || rc.stream_var != i + 1) {
        return Err("I-rule streams must appear in order ?1, ?2, ...");
      }
      if (lc.desc_slot != i) {
        return Err("LHS stream ?" + std::to_string(i + 1) +
                   " of an I-rule must carry descriptor D" +
                   std::to_string(i + 1));
      }
      r.rhs_input_slots[static_cast<size_t>(i)] = rc.desc_slot;
    }
    if (lhs->desc_slot != r.arity) {
      return Err("the I-rule operator must carry descriptor D" +
                 std::to_string(r.arity + 1));
    }
    r.alg_slot = rhs->desc_slot;

    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kLBrace));
    if (AtIdent("test")) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(r.test, Expr());
      PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kSemi));
    }
    if (AtIdent("preopt")) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(r.pre_opt, Block());
    }
    if (AtIdent("postopt")) {
      Advance();
      PRAIRIE_ASSIGN_OR_RETURN(r.post_opt, Block());
    }
    PRAIRIE_RETURN_NOT_OK(Expect(TokKind::kRBrace));
    int mx = std::max(r.alg_slot, r.op_slot());
    for (int s : r.rhs_input_slots) mx = std::max(mx, s);
    MaxSlotInExpr(r.test, &mx);
    MaxSlotInBlock(r.pre_opt, &mx);
    MaxSlotInBlock(r.post_opt, &mx);
    r.num_slots = mx + 1;
    rules_.irules.push_back(std::move(r));
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  core::RuleSet rules_;
};

}  // namespace

Result<core::RuleSet> ParseRuleSet(
    std::string_view source, std::shared_ptr<core::HelperRegistry> helpers) {
  PRAIRIE_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(source));
  return Parser(std::move(toks), std::move(helpers)).Run();
}

}  // namespace prairie::dsl

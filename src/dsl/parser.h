// Parser for the Prairie rule-specification language.
//
// A specification declares the descriptor properties, the operators and
// algorithms of the algebra, and the T-rules and I-rules. Example:
//
//   property tuple_order : sortspec;
//   property num_records : int;
//   property cost : cost;
//
//   operator JOIN(2);
//   operator SORT(1);
//   algorithm Nested_loops(2);
//   algorithm Merge_sort(1);
//
//   trule join_commute: JOIN[D3](?1, ?2) => JOIN[D4](?2, ?1) {
//     post { D4 = D3; }
//   }
//
//   irule nl_join: JOIN[D3](?1, ?2) => Nested_loops[D5](?1:D4, ?2) {
//     preopt {
//       D5 = D3;
//       D4 = D1;
//       D4.tuple_order = D3.tuple_order;
//     }
//     postopt { D5.cost = D4.cost + D4.num_records * D2.cost; }
//   }
//
//   irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
//     preopt { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
//     postopt { D4.cost = D3.cost; }
//   }
//
// Descriptor indices are 1-based in the text (D1..Dn) matching the paper's
// notation; an unannotated stream ?k has descriptor Dk on the LHS and
// keeps its LHS descriptor on the RHS. T-rule bodies use `pre`, `test`,
// `post`; I-rule bodies use `test`, `preopt`, `postopt`. `DONT_CARE` is
// the don't-care sort-order literal.

#pragma once

#include <memory>
#include <string_view>

#include "core/ruleset.h"

namespace prairie::dsl {

/// Parses a complete Prairie specification. `helpers` supplies the helper
/// functions rule actions may call (defaults to the numeric builtins);
/// the resulting rule set is validated before being returned.
common::Result<core::RuleSet> ParseRuleSet(
    std::string_view source,
    std::shared_ptr<core::HelperRegistry> helpers = nullptr);

}  // namespace prairie::dsl

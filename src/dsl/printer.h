// Pretty-printer emitting valid Prairie DSL text from a core::RuleSet.
//
// PrintRuleSet(ParseRuleSet(text)) re-parses to a structurally identical
// rule set (round-trip property, tested), which makes rule sets built
// programmatically or transformed by tools serializable.

#pragma once

#include <string>

#include "core/ruleset.h"

namespace prairie::dsl {

/// Renders one action expression in DSL syntax.
std::string PrintExpr(const core::ActionExprPtr& expr);

/// Renders `rules` as a parseable specification. Rules whose literals are
/// not expressible in the DSL (e.g. attribute-list constants) are printed
/// best-effort; the shipped rule sets round-trip exactly.
common::Result<std::string> PrintRuleSet(const core::RuleSet& rules);

}  // namespace prairie::dsl

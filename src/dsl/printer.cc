#include "dsl/printer.h"

#include "common/strings.h"

namespace prairie::dsl {

using algebra::PatNode;
using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;
using core::ActionExpr;
using core::ActionExprPtr;
using core::ActionStmt;
using core::BinOp;

namespace {

std::string TypeName(const algebra::PropertyDecl& decl) {
  if (decl.is_cost) return "cost";
  switch (decl.type) {
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
    case ValueType::kSort:
      return "sortspec";
    case ValueType::kAttrs:
      return "attrs";
    case ValueType::kPred:
      return "predicate";
    case ValueType::kNull:
      break;
  }
  return "int";
}

Result<std::string> PrintConst(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return std::string("null");
    case ValueType::kBool:
      return std::string(v.AsBool() ? "true" : "false");
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kReal:
      return common::FormatDouble(v.AsReal());
    case ValueType::kString:
      return "\"" + v.AsString() + "\"";
    case ValueType::kSort:
      if (v.AsSort().is_dont_care()) return std::string("DONT_CARE");
      return Status::NotImplemented(
          "sort-spec literals other than DONT_CARE have no DSL syntax");
    default:
      return Status::NotImplemented("literal of type " +
                                    std::string(ValueTypeName(v.type())) +
                                    " has no DSL syntax");
  }
}

Result<std::string> PrintExprRec(const ActionExprPtr& e) {
  switch (e->kind()) {
    case ActionExpr::Kind::kConst:
      return PrintConst(e->constant());
    case ActionExpr::Kind::kProp:
      return "D" + std::to_string(e->desc_slot() + 1) + "." + e->property();
    case ActionExpr::Kind::kDesc:
      return "D" + std::to_string(e->desc_slot() + 1);
    case ActionExpr::Kind::kCall: {
      std::vector<std::string> parts;
      for (const ActionExprPtr& a : e->args()) {
        PRAIRIE_ASSIGN_OR_RETURN(std::string s, PrintExprRec(a));
        parts.push_back(std::move(s));
      }
      return e->fn() + "(" + common::Join(parts, ", ") + ")";
    }
    case ActionExpr::Kind::kBinary: {
      PRAIRIE_ASSIGN_OR_RETURN(std::string l, PrintExprRec(e->left()));
      PRAIRIE_ASSIGN_OR_RETURN(std::string r, PrintExprRec(e->right()));
      return "(" + l + " " + std::string(core::BinOpName(e->bin_op())) +
             " " + r + ")";
    }
    case ActionExpr::Kind::kUnary: {
      PRAIRIE_ASSIGN_OR_RETURN(std::string inner,
                               PrintExprRec(e->args()[0]));
      return (e->un_op() == core::UnOp::kNot ? "!" : "-") + ("(" + inner +
                                                             ")");
    }
  }
  return Status::Internal("unhandled expression kind");
}

std::string PatText(const algebra::Algebra& algebra, const PatNode& n) {
  if (n.is_stream()) {
    return "?" + std::to_string(n.stream_var) + ":D" +
           std::to_string(n.desc_slot + 1);
  }
  std::vector<std::string> parts;
  for (const algebra::PatNodePtr& c : n.children) {
    parts.push_back(PatText(algebra, *c));
  }
  return algebra.name(n.op) + "[D" + std::to_string(n.desc_slot + 1) + "](" +
         common::Join(parts, ", ") + ")";
}

Result<std::string> BlockText(const std::vector<ActionStmt>& stmts,
                              const char* keyword) {
  if (stmts.empty()) return std::string();
  std::string out = "  ";
  out += keyword;
  out += " {\n";
  for (const ActionStmt& s : stmts) {
    out += "    D" + std::to_string(s.target_slot + 1);
    if (!s.target_prop.empty()) out += "." + s.target_prop;
    PRAIRIE_ASSIGN_OR_RETURN(std::string rhs, PrintExprRec(s.value));
    out += " = " + rhs + ";\n";
  }
  out += "  }\n";
  return out;
}

}  // namespace

std::string PrintExpr(const ActionExprPtr& expr) {
  if (expr == nullptr) return "true";
  auto r = PrintExprRec(expr);
  return r.ok() ? *r : "<unprintable>";
}

Result<std::string> PrintRuleSet(const core::RuleSet& rules) {
  const algebra::Algebra& algebra = *rules.algebra;
  std::string out;
  for (const algebra::PropertyDecl& d : algebra.properties().decls()) {
    out += "property " + d.name + " : " + TypeName(d) + ";\n";
  }
  out += "\n";
  for (algebra::OpId op = 0; op < algebra.size(); ++op) {
    if (op == algebra.null_alg()) continue;
    const algebra::OpInfo& info = algebra.info(op);
    out += std::string(info.is_algorithm ? "algorithm " : "operator ") +
           info.name + "(" + std::to_string(info.arity) + ");\n";
  }
  out += "\n";
  for (const core::TRule& r : rules.trules) {
    out += "trule " + r.name + ": " + PatText(algebra, *r.lhs) + " => " +
           PatText(algebra, *r.rhs) + " {\n";
    PRAIRIE_ASSIGN_OR_RETURN(std::string pre, BlockText(r.pre_test, "pre"));
    out += pre;
    if (r.test != nullptr) {
      PRAIRIE_ASSIGN_OR_RETURN(std::string t, PrintExprRec(r.test));
      out += "  test " + t + ";\n";
    }
    PRAIRIE_ASSIGN_OR_RETURN(std::string post,
                             BlockText(r.post_test, "post"));
    out += post;
    out += "}\n\n";
  }
  for (const core::IRule& r : rules.irules) {
    auto side = [&](algebra::OpId operation, bool rhs) {
      std::string s = algebra.name(operation) + "[D" +
                      std::to_string((rhs ? r.alg_slot : r.op_slot()) + 1) +
                      "](";
      std::vector<std::string> parts;
      for (int i = 0; i < r.arity; ++i) {
        int slot = rhs ? r.rhs_input_slots[static_cast<size_t>(i)] : i;
        parts.push_back("?" + std::to_string(i + 1) + ":D" +
                        std::to_string(slot + 1));
      }
      return s + common::Join(parts, ", ") + ")";
    };
    out += "irule " + r.name + ": " + side(r.op, false) + " => " +
           side(r.alg, true) + " {\n";
    if (r.test != nullptr) {
      PRAIRIE_ASSIGN_OR_RETURN(std::string t, PrintExprRec(r.test));
      out += "  test " + t + ";\n";
    }
    PRAIRIE_ASSIGN_OR_RETURN(std::string pre, BlockText(r.pre_opt, "preopt"));
    out += pre;
    PRAIRIE_ASSIGN_OR_RETURN(std::string post,
                             BlockText(r.post_opt, "postopt"));
    out += post;
    out += "}\n\n";
  }
  return out;
}

}  // namespace prairie::dsl

// Lexer for the Prairie rule-specification language.
//
// The original toolchain used flex; this is its in-process equivalent.
// Tokens carry line/column positions for parser diagnostics. `//` and
// `/* */` comments are skipped.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace prairie::dsl {

enum class TokKind {
  kEnd,
  kIdent,    // foo, JOIN, D4, tuple_order
  kInt,      // 123
  kReal,     // 1.5
  kString,   // "abc"
  kLParen,   // (
  kRParen,   // )
  kLBrace,   // {
  kRBrace,   // }
  kLBracket, // [
  kRBracket, // ]
  kComma,    // ,
  kSemi,     // ;
  kColon,    // :
  kDot,      // .
  kQuestion, // ?
  kAssign,   // =
  kArrow,    // =>
  kEq,       // ==
  kNe,       // !=
  kLt,       // <
  kLe,       // <=
  kGt,       // >
  kGe,       // >=
  kPlus,     // +
  kMinus,    // -
  kStar,     // *
  kSlash,    // /
  kAndAnd,   // &&
  kOrOr,     // ||
  kBang,     // !
};

std::string_view TokKindName(TokKind k);

/// \brief One lexed token.
struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;      ///< Identifier or string contents.
  int64_t int_value = 0;
  double real_value = 0;
  int line = 1;
  int col = 1;

  std::string Describe() const;
};

/// Tokenizes `source`; fails with a ParseError carrying line/column on any
/// unrecognized character or unterminated string/comment.
common::Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace prairie::dsl

#include "dsl/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace prairie::dsl {

using common::Result;
using common::Status;

std::string_view TokKindName(TokKind k) {
  switch (k) {
    case TokKind::kEnd:
      return "end of input";
    case TokKind::kIdent:
      return "identifier";
    case TokKind::kInt:
      return "integer";
    case TokKind::kReal:
      return "real";
    case TokKind::kString:
      return "string";
    case TokKind::kLParen:
      return "'('";
    case TokKind::kRParen:
      return "')'";
    case TokKind::kLBrace:
      return "'{'";
    case TokKind::kRBrace:
      return "'}'";
    case TokKind::kLBracket:
      return "'['";
    case TokKind::kRBracket:
      return "']'";
    case TokKind::kComma:
      return "','";
    case TokKind::kSemi:
      return "';'";
    case TokKind::kColon:
      return "':'";
    case TokKind::kDot:
      return "'.'";
    case TokKind::kQuestion:
      return "'?'";
    case TokKind::kAssign:
      return "'='";
    case TokKind::kArrow:
      return "'=>'";
    case TokKind::kEq:
      return "'=='";
    case TokKind::kNe:
      return "'!='";
    case TokKind::kLt:
      return "'<'";
    case TokKind::kLe:
      return "'<='";
    case TokKind::kGt:
      return "'>'";
    case TokKind::kGe:
      return "'>='";
    case TokKind::kPlus:
      return "'+'";
    case TokKind::kMinus:
      return "'-'";
    case TokKind::kStar:
      return "'*'";
    case TokKind::kSlash:
      return "'/'";
    case TokKind::kAndAnd:
      return "'&&'";
    case TokKind::kOrOr:
      return "'||'";
    case TokKind::kBang:
      return "'!'";
  }
  return "?";
}

std::string Token::Describe() const {
  switch (kind) {
    case TokKind::kIdent:
      return "identifier '" + text + "'";
    case TokKind::kInt:
      return "integer " + std::to_string(int_value);
    case TokKind::kReal:
      return "real " + common::FormatDouble(real_value);
    case TokKind::kString:
      return "string \"" + text + "\"";
    default:
      return std::string(TokKindName(kind));
  }
}

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      PRAIRIE_RETURN_NOT_OK(SkipSpaceAndComments());
      Token t;
      t.line = line_;
      t.col = col_;
      if (AtEnd()) {
        t.kind = TokKind::kEnd;
        out.push_back(std::move(t));
        return out;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        t.kind = TokKind::kIdent;
        while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                            Peek() == '_')) {
          t.text += Get();
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        PRAIRIE_RETURN_NOT_OK(Number(&t));
      } else if (c == '"') {
        PRAIRIE_RETURN_NOT_OK(StringLit(&t));
      } else {
        PRAIRIE_RETURN_NOT_OK(Punct(&t));
      }
      out.push_back(std::move(t));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Get() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(common::StringPrintf("line %d, col %d: %s",
                                                   line_, col_, msg.c_str()));
  }

  Status SkipSpaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Get();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Get();
      } else if (c == '/' && Peek(1) == '*') {
        int start_line = line_;
        Get();
        Get();
        while (!(Peek() == '*' && Peek(1) == '/')) {
          if (AtEnd()) {
            return Err("unterminated comment starting at line " +
                       std::to_string(start_line));
          }
          Get();
        }
        Get();
        Get();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Status Number(Token* t) {
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Get();
    }
    bool is_real = false;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_real = true;
      digits += Get();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Get();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_real = true;
      digits += Get();
      if (Peek() == '+' || Peek() == '-') digits += Get();
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Err("malformed exponent in numeric literal");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Get();
      }
    }
    if (is_real) {
      t->kind = TokKind::kReal;
      t->real_value = std::stod(digits);
    } else {
      t->kind = TokKind::kInt;
      errno = 0;
      t->int_value = std::strtoll(digits.c_str(), nullptr, 10);
      if (errno != 0) return Err("integer literal out of range");
    }
    return Status::OK();
  }

  Status StringLit(Token* t) {
    Get();  // opening quote
    t->kind = TokKind::kString;
    while (true) {
      if (AtEnd() || Peek() == '\n') return Err("unterminated string literal");
      char c = Get();
      if (c == '"') break;
      if (c == '\\') {
        if (AtEnd()) return Err("unterminated escape in string literal");
        char e = Get();
        switch (e) {
          case 'n':
            t->text += '\n';
            break;
          case 't':
            t->text += '\t';
            break;
          case '\\':
          case '"':
            t->text += e;
            break;
          default:
            return Err(std::string("unknown escape '\\") + e + "'");
        }
      } else {
        t->text += c;
      }
    }
    return Status::OK();
  }

  Status Punct(Token* t) {
    char c = Get();
    switch (c) {
      case '(':
        t->kind = TokKind::kLParen;
        return Status::OK();
      case ')':
        t->kind = TokKind::kRParen;
        return Status::OK();
      case '{':
        t->kind = TokKind::kLBrace;
        return Status::OK();
      case '}':
        t->kind = TokKind::kRBrace;
        return Status::OK();
      case '[':
        t->kind = TokKind::kLBracket;
        return Status::OK();
      case ']':
        t->kind = TokKind::kRBracket;
        return Status::OK();
      case ',':
        t->kind = TokKind::kComma;
        return Status::OK();
      case ';':
        t->kind = TokKind::kSemi;
        return Status::OK();
      case ':':
        t->kind = TokKind::kColon;
        return Status::OK();
      case '.':
        t->kind = TokKind::kDot;
        return Status::OK();
      case '?':
        t->kind = TokKind::kQuestion;
        return Status::OK();
      case '+':
        t->kind = TokKind::kPlus;
        return Status::OK();
      case '-':
        t->kind = TokKind::kMinus;
        return Status::OK();
      case '*':
        t->kind = TokKind::kStar;
        return Status::OK();
      case '/':
        t->kind = TokKind::kSlash;
        return Status::OK();
      case '=':
        if (Peek() == '>') {
          Get();
          t->kind = TokKind::kArrow;
        } else if (Peek() == '=') {
          Get();
          t->kind = TokKind::kEq;
        } else {
          t->kind = TokKind::kAssign;
        }
        return Status::OK();
      case '!':
        if (Peek() == '=') {
          Get();
          t->kind = TokKind::kNe;
        } else {
          t->kind = TokKind::kBang;
        }
        return Status::OK();
      case '<':
        if (Peek() == '=') {
          Get();
          t->kind = TokKind::kLe;
        } else {
          t->kind = TokKind::kLt;
        }
        return Status::OK();
      case '>':
        if (Peek() == '=') {
          Get();
          t->kind = TokKind::kGe;
        } else {
          t->kind = TokKind::kGt;
        }
        return Status::OK();
      case '&':
        if (Peek() == '&') {
          Get();
          t->kind = TokKind::kAndAnd;
          return Status::OK();
        }
        return Err("expected '&&'");
      case '|':
        if (Peek() == '|') {
          Get();
          t->kind = TokKind::kOrOr;
          return Status::OK();
        }
        return Err("expected '||'");
      default:
        return Err(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Scanner(source).Run();
}

}  // namespace prairie::dsl

// Workload generation for the paper's experiments (§4.3).
//
// Queries Q1..Q8 are derived from four expression templates over N-way
// linear join graphs:
//   E1: RET(C1) JOIN ... JOIN RET(C_{N+1})
//   E2: like E1, but each retrieval is followed by a MAT (attribute
//       materialization via a reference attribute)
//   E3: SELECT over E1 (conjunctive equality selection bc_i = i)
//   E4: SELECT over E2
// Odd queries run without indices; even queries give every base class a
// single index on the attribute its selection predicate references.
// Cardinalities vary with the seed; the paper averages 5 seeds per point.

#pragma once

#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "common/rng.h"
#include "exec/table.h"

namespace prairie::workload {

/// Which expression template to instantiate.
enum class ExprKind { kE1 = 1, kE2 = 2, kE3 = 3, kE4 = 4 };

/// Shape of the join graph over classes C1..C_{N+1}. The paper's
/// experiments use chains; star and clique are adversarial shapes for the
/// parallel-search benchmarks — a star funnels every join through one hub
/// group, a clique predicates every class pair and maximizes the number
/// of cross-group merges the transformation rules can trigger.
enum class JoinShape {
  kChain,   ///< C_i joins C_{i+1} (the paper's linear graphs; default).
  kStar,    ///< Every C_i (i > 1) joins the hub C1.
  kClique,  ///< Join i carries equality predicates against all C_j, j < i.
};

/// \brief Parameters of one generated query instance.
struct QuerySpec {
  ExprKind expr = ExprKind::kE1;
  JoinShape shape = JoinShape::kChain;
  int num_joins = 2;          ///< N: the query joins N+1 classes.
  bool with_indexes = false;  ///< One index per base class (on "bc").
  uint64_t seed = 1;          ///< Drives cardinalities and join attrs.
  /// 0 (default): join-attribute choices draw from the same stream as
  /// `seed` — byte-identical to historical behavior. Non-zero: they draw
  /// from a separate RNG seeded here, so query *structure* varies while
  /// the catalog (cardinalities, indexes) stays fixed by `seed` — e.g. to
  /// generate many distinct queries against one catalog for plan-cache
  /// working-set experiments.
  uint64_t structure_seed = 0;
  /// 0 (default): the selection constants of E3/E4 are the paper's fixed
  /// bc_i = (i+1) mod domain — byte-identical to historical behavior.
  /// Non-zero: each constant draws uniformly from its attribute's domain
  /// on an RNG seeded here, so queries vary ONLY in predicate literals
  /// (catalog and structure fixed by seed/structure_seed) — the shape the
  /// parameterized plan cache canonicalizes away.
  uint64_t param_seed = 0;
  /// Cardinality range for base classes (the bench uses large values; the
  /// execution tests use small ones so results stay enumerable).
  int64_t min_card = 100;
  int64_t max_card = 10000;
};

/// The paper's query naming: Q1..Q8 -> (expression, index flag).
QuerySpec PaperQuery(int number, int num_joins, uint64_t seed);

/// \brief One generated problem instance.
struct Workload {
  catalog::Catalog catalog;
  algebra::ExprPtr query;
};

/// Generates the catalog (classes C1..C_{N+1}, plus referenced target
/// classes T_i for E2/E4) and the initialized operator tree for `spec`,
/// against the given optimizer algebra. E3/E4 require an algebra with a
/// SELECT operator (the OODB algebra); E1 works with both shipped
/// algebras.
common::Result<Workload> MakeWorkload(const algebra::Algebra& algebra,
                                      const QuerySpec& spec);

/// Populates an executable in-memory database consistent with `catalog`:
/// every class gets `oid` = row position, random attribute values bounded
/// by the attribute's distinct-value count, valid reference OIDs, and
/// indexes where the catalog declares them.
common::Result<exec::Database> MakeDatabase(const catalog::Catalog& catalog,
                                            uint64_t seed);

}  // namespace prairie::workload

// Zipfian query traffic for the parameterized-plan-cache experiments.
//
// Production optimizer traffic repeats in *structure* but varies in
// *literals*: a handful of prepared-statement skeletons dominate, each
// arriving with ever-different constants, and skeleton popularity follows
// a power law across tenants. TrafficGenerator simulates exactly that
// shape: it pre-builds a pool of Q1-Q8-family skeletons (each with its own
// catalog), gives every simulated tenant a Zipf-distributed preference
// over a rotated view of the pool, and emits requests whose queries differ
// from their skeleton only in the selection constants — the traffic the
// parameterized plan cache (DESIGN.md §8) is built to serve.

#pragma once

#include <memory>
#include <vector>

#include "algebra/param.h"
#include "common/result.h"
#include "common/rng.h"
#include "workload/workload.h"

namespace prairie::workload {

/// \brief Zipf(s)-distributed rank sampler over {0, .., n-1} (rank k drawn
/// with probability proportional to (k+1)^-s), via one precomputed CDF and
/// a binary search per draw. Deterministic under a fixed seed.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s, uint64_t seed);

  /// Draws a rank in [0, n).
  int Next();

  int n() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
  common::Rng rng_;
};

/// \brief Traffic-mix knobs.
struct TrafficOptions {
  /// Distinct query skeletons in the pool; skeleton i is the Q{(i%8)+1}
  /// template with its own structure and catalog.
  int num_skeletons = 16;
  /// Simulated tenants, served round-robin. Each tenant draws skeletons
  /// from its own Zipf stream over its own rotation of the pool, so
  /// tenants have different hot sets but one global popularity law.
  int num_tenants = 4;
  /// Zipf exponent; larger = more skew. 1.1 approximates the heavy-tailed
  /// skeleton popularity of production traffic.
  double zipf_s = 1.1;
  /// Join count of every skeleton (N joins = N+1 classes).
  int num_joins = 2;
  /// Master seed: skeleton catalogs, tenant streams, and constant draws
  /// all derive from it deterministically.
  uint64_t seed = 1;
};

/// \brief One emitted request: a query that differs from its skeleton only
/// in constants, plus the catalog it must be optimized against.
struct TrafficRequest {
  int skeleton = 0;  ///< Pool index of the skeleton drawn.
  int tenant = 0;    ///< Tenant the request belongs to.
  algebra::ExprPtr query;
  const catalog::Catalog* catalog = nullptr;  ///< Borrowed from the pool.
};

/// \brief Deterministic generator of parameter-varying Zipfian traffic.
///
/// Requests borrow their catalog from the generator, which must therefore
/// outlive them. Not thread-safe; drive it from one thread and hand the
/// requests to a BatchOptimizer.
class TrafficGenerator {
 public:
  /// Builds the skeleton pool against `algebra` (needs the OODB SELECT
  /// operator for the Q5-Q8 templates, like MakeWorkload).
  static common::Result<TrafficGenerator> Make(
      const algebra::Algebra& algebra, TrafficOptions options);

  /// Draws the next request (round-robin tenant, Zipf skeleton, uniform
  /// fresh constants in each selection slot's attribute domain).
  TrafficRequest Next();

  int num_skeletons() const { return static_cast<int>(pool_.size()); }

  /// The catalog of skeleton `i` (for verification runs).
  const catalog::Catalog& catalog(int i) const { return pool_[i]->load.catalog; }

  /// Whether skeleton `i` has parameterizable constants (Q5-Q8 family).
  bool parameterized(int i) const { return !pool_[i]->slots.empty(); }

 private:
  struct Skeleton {
    Workload load;  ///< Catalog + the original (constant-bearing) query.
    algebra::ExprPtr skeleton;  ///< Marker form (null: no constants).
    std::vector<algebra::ParamSlot> slots;
    std::vector<int64_t> domains;  ///< Per-slot distinct-value counts.
  };
  struct Tenant {
    ZipfSampler zipf;
    common::Rng values;
  };

  TrafficGenerator() = default;

  // unique_ptr: catalogs must stay address-stable while requests borrow
  // them, and Tenant/ZipfSampler have no default construction.
  std::vector<std::unique_ptr<Skeleton>> pool_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  uint64_t ticket_ = 0;  ///< Round-robin tenant cursor.
};

}  // namespace prairie::workload

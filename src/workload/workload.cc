#include "workload/workload.h"

#include "common/strings.h"
#include "optimizers/props.h"

namespace prairie::workload {

using algebra::Attr;
using algebra::ExprPtr;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::Scalar;
using catalog::AttributeDef;
using catalog::Catalog;
using catalog::IndexDef;
using catalog::StoredFile;
using common::Result;
using common::Rng;
using common::Status;

QuerySpec PaperQuery(int number, int num_joins, uint64_t seed) {
  QuerySpec spec;
  spec.num_joins = num_joins;
  spec.seed = seed;
  switch (number) {
    case 1:
    case 2:
      spec.expr = ExprKind::kE1;
      break;
    case 3:
    case 4:
      spec.expr = ExprKind::kE2;
      break;
    case 5:
    case 6:
      spec.expr = ExprKind::kE3;
      break;
    case 7:
    case 8:
      spec.expr = ExprKind::kE4;
      break;
    default:
      spec.expr = ExprKind::kE1;
      break;
  }
  spec.with_indexes = (number % 2) == 0;
  return spec;
}

namespace {

bool NeedsMat(ExprKind k) {
  return k == ExprKind::kE2 || k == ExprKind::kE4;
}
bool NeedsSelect(ExprKind k) {
  return k == ExprKind::kE3 || k == ExprKind::kE4;
}

std::string ClassName(int i) { return "C" + std::to_string(i + 1); }
std::string TargetName(int i) { return "T" + std::to_string(i + 1); }

StoredFile MakeClass(const QuerySpec& spec, int i, Rng* rng) {
  int64_t card = rng->Uniform(spec.min_card, spec.max_card);
  std::vector<AttributeDef> attrs;
  attrs.push_back(AttributeDef{"oid", algebra::ValueType::kInt, card, "",
                               false, 1.0});
  // Join attributes "a" and "b": moderate distinct counts so N-way joins
  // stay selective but non-empty.
  attrs.push_back(AttributeDef{"a", algebra::ValueType::kInt,
                               std::max<int64_t>(2, card / 10), "", false,
                               1.0});
  attrs.push_back(AttributeDef{"b", algebra::ValueType::kInt,
                               std::max<int64_t>(2, card / 20), "", false,
                               1.0});
  // Selection attribute "bc" (the paper's bc_i).
  attrs.push_back(AttributeDef{"bc", algebra::ValueType::kInt,
                               std::max<int64_t>(2, card / 50), "", false,
                               1.0});
  if (NeedsMat(spec.expr)) {
    attrs.push_back(AttributeDef{"ref", algebra::ValueType::kInt, card,
                                 TargetName(i), false, 1.0});
  }
  StoredFile file(ClassName(i), std::move(attrs), card, 64);
  if (spec.with_indexes) {
    file.AddIndex(IndexDef{"bc", IndexDef::Kind::kBtree});
  }
  return file;
}

StoredFile MakeTarget(const QuerySpec& spec, int i, Rng* rng) {
  int64_t card = rng->Uniform(spec.min_card, spec.max_card);
  std::vector<AttributeDef> attrs;
  attrs.push_back(AttributeDef{"oid", algebra::ValueType::kInt, card, "",
                               false, 1.0});
  attrs.push_back(AttributeDef{"x", algebra::ValueType::kInt,
                               std::max<int64_t>(2, card / 10), "", false,
                               1.0});
  attrs.push_back(AttributeDef{"y", algebra::ValueType::kInt,
                               std::max<int64_t>(2, card / 20), "", false,
                               1.0});
  return StoredFile(TargetName(i), std::move(attrs), card, 48);
}

}  // namespace

Result<Workload> MakeWorkload(const algebra::Algebra& algebra,
                              const QuerySpec& spec) {
  if (spec.num_joins < 1) {
    return Status::InvalidArgument("a query needs at least one join");
  }
  Workload w;
  Rng rng(spec.seed * 0x9e37 + 17);
  const int num_classes = spec.num_joins + 1;
  for (int i = 0; i < num_classes; ++i) {
    PRAIRIE_RETURN_NOT_OK(w.catalog.AddFile(MakeClass(spec, i, &rng)));
  }
  if (NeedsMat(spec.expr)) {
    for (int i = 0; i < num_classes; ++i) {
      PRAIRIE_RETURN_NOT_OK(w.catalog.AddFile(MakeTarget(spec, i, &rng)));
    }
  }

  opt::TreeBuilder builder(&algebra, &w.catalog);
  // Per-class access path: RET (E1/E3) or MAT over RET (E2/E4).
  std::vector<ExprPtr> streams;
  for (int i = 0; i < num_classes; ++i) {
    PRAIRIE_ASSIGN_OR_RETURN(ExprPtr ret,
                             builder.Ret(ClassName(i), Predicate::True()));
    if (NeedsMat(spec.expr)) {
      PRAIRIE_ASSIGN_OR_RETURN(
          ret, builder.Mat(std::move(ret), Attr{ClassName(i), "ref"}));
    }
    streams.push_back(std::move(ret));
  }
  // Join graph with random equality join attributes. The structure draws
  // come after every catalog draw, so routing them through a separate
  // stream (structure_seed != 0) cannot perturb cardinalities. The chain
  // path is draw-for-draw identical to historical behavior.
  Rng structure_rng(spec.structure_seed * 0x51d7 + 29);
  Rng* srng = spec.structure_seed != 0 ? &structure_rng : &rng;
  ExprPtr tree = std::move(streams[0]);
  for (int i = 1; i < num_classes; ++i) {
    PredicateRef pred;
    switch (spec.shape) {
      case JoinShape::kChain: {
        const char* left_attr = srng->Bernoulli(0.5) ? "a" : "b";
        const char* right_attr = srng->Bernoulli(0.5) ? "a" : "b";
        pred = Predicate::EqAttrs(Attr{ClassName(i - 1), left_attr},
                                  Attr{ClassName(i), right_attr});
        break;
      }
      case JoinShape::kStar: {
        // Every predicate references the hub C1: its equivalence group is
        // on every join's critical path.
        const char* left_attr = srng->Bernoulli(0.5) ? "a" : "b";
        const char* right_attr = srng->Bernoulli(0.5) ? "a" : "b";
        pred = Predicate::EqAttrs(Attr{ClassName(0), left_attr},
                                  Attr{ClassName(i), right_attr});
        break;
      }
      case JoinShape::kClique: {
        // Equality against every class already in the tree: all pairs end
        // up predicated, so any join order is predicate-connected.
        std::vector<PredicateRef> conj;
        conj.reserve(static_cast<size_t>(i));
        for (int j = 0; j < i; ++j) {
          const char* left_attr = srng->Bernoulli(0.5) ? "a" : "b";
          conj.push_back(Predicate::EqAttrs(Attr{ClassName(j), left_attr},
                                            Attr{ClassName(i), "a"}));
        }
        pred = conj.size() == 1 ? std::move(conj[0])
                                : Predicate::And(std::move(conj));
        break;
      }
    }
    PRAIRIE_ASSIGN_OR_RETURN(
        tree, builder.Join(std::move(tree), std::move(streams[i]),
                           std::move(pred)));
  }
  if (NeedsSelect(spec.expr)) {
    // Conjunction of equality predicates bc_i = const_i (paper §4.3; the
    // paper picks const_i = i arbitrarily — we reduce it into the
    // attribute's domain so executed results are non-trivially empty).
    // param_seed != 0 draws the constants from their own RNG instead: the
    // historical constants never touch `rng`, so the legacy stream stays
    // byte-identical when param_seed is 0.
    Rng param_rng(spec.param_seed * 0x85ebca77 + 41);
    std::vector<PredicateRef> conj;
    for (int i = 0; i < num_classes; ++i) {
      Attr attr{ClassName(i), "bc"};
      int64_t domain = std::max<int64_t>(1, w.catalog.DistinctValues(attr));
      const int64_t c = spec.param_seed != 0
                            ? param_rng.Uniform(0, domain - 1)
                            : (i + 1) % domain;
      conj.push_back(Predicate::EqConst(std::move(attr), Scalar::Int(c)));
    }
    PRAIRIE_ASSIGN_OR_RETURN(
        tree, builder.Select(std::move(tree), Predicate::And(std::move(conj))));
  }
  w.query = std::move(tree);
  return w;
}

Result<exec::Database> MakeDatabase(const Catalog& catalog, uint64_t seed) {
  exec::Database db;
  Rng rng(seed ^ 0xdb0315u);
  for (const std::string& name : catalog.FileNames()) {
    PRAIRIE_ASSIGN_OR_RETURN(const StoredFile* file, catalog.Require(name));
    exec::RowSchema schema;
    schema.attrs = file->QualifiedAttrs();
    exec::Table table(name, schema);
    // Defer rows so reference OIDs can point at any class; generate rows
    // first, indexes after.
    for (int64_t row = 0; row < file->cardinality(); ++row) {
      exec::Row r;
      r.reserve(file->attrs().size());
      for (const AttributeDef& a : file->attrs()) {
        if (a.name == "oid") {
          r.push_back(exec::Datum::Int(row));
        } else if (a.is_reference()) {
          const StoredFile* target = catalog.Find(a.ref_class);
          int64_t tcard = target == nullptr ? 1 : target->cardinality();
          r.push_back(exec::Datum::Int(rng.Uniform(0, tcard - 1)));
        } else if (a.type == algebra::ValueType::kString) {
          r.push_back(exec::Datum::Str(
              "s" + std::to_string(rng.Uniform(0, a.distinct_values - 1))));
        } else {
          r.push_back(exec::Datum::Int(
              rng.Uniform(0, std::max<int64_t>(1, a.distinct_values) - 1)));
        }
      }
      PRAIRIE_RETURN_NOT_OK(table.Append(std::move(r)));
    }
    // Set-valued attribute contents.
    for (const AttributeDef& a : file->attrs()) {
      if (!a.set_valued) continue;
      for (size_t row = 0; row < table.NumRows(); ++row) {
        int64_t n = rng.Uniform(0, static_cast<int64_t>(2 * a.avg_set_size));
        std::vector<exec::Datum> values;
        for (int64_t k = 0; k < n; ++k) {
          values.push_back(exec::Datum::Int(
              rng.Uniform(0, std::max<int64_t>(1, a.distinct_values) - 1)));
        }
        PRAIRIE_RETURN_NOT_OK(table.SetSetValues(a.name, row,
                                                 std::move(values)));
      }
    }
    for (const IndexDef& idx : file->indices()) {
      PRAIRIE_RETURN_NOT_OK(table.BuildIndex(idx.attr));
    }
    PRAIRIE_RETURN_NOT_OK(db.AddTable(std::move(table)));
  }
  return db;
}

}  // namespace prairie::workload

#include "workload/traffic.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/hash.h"

namespace prairie::workload {

using algebra::ParameterizedQuery;
using algebra::Scalar;
using common::Result;
using common::Rng;

ZipfSampler::ZipfSampler(int n, double s, uint64_t seed) : rng_(seed) {
  const int size = std::max(1, n);
  cdf_.resize(static_cast<size_t>(size));
  double total = 0;
  for (int k = 0; k < size; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s);
    cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

int ZipfSampler::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it - cdf_.begin());
}

Result<TrafficGenerator> TrafficGenerator::Make(
    const algebra::Algebra& algebra, TrafficOptions options) {
  TrafficGenerator gen;
  const int num_skeletons = std::max(1, options.num_skeletons);
  const int num_tenants = std::max(1, options.num_tenants);
  for (int i = 0; i < num_skeletons; ++i) {
    // Skeleton i: the Q{(i%8)+1} template with its own catalog (seed) and
    // join structure (structure_seed), so the pool spans all eight paper
    // templates and no two skeletons fingerprint alike.
    QuerySpec spec = PaperQuery(i % 8 + 1, options.num_joins,
                                options.seed + static_cast<uint64_t>(i));
    spec.structure_seed = static_cast<uint64_t>(i) + 1;
    auto sk = std::make_unique<Skeleton>();
    PRAIRIE_ASSIGN_OR_RETURN(sk->load, MakeWorkload(algebra, spec));
    ParameterizedQuery pq = algebra::ParameterizeQuery(*sk->load.query);
    if (pq.skeleton != nullptr) {
      sk->skeleton = std::move(pq.skeleton);
      sk->slots = std::move(pq.slots);
      sk->domains.reserve(sk->slots.size());
      for (const algebra::ParamSlot& slot : sk->slots) {
        sk->domains.push_back(
            std::max<int64_t>(1, sk->load.catalog.DistinctValues(slot.attr)));
      }
    }
    gen.pool_.push_back(std::move(sk));
  }
  for (int t = 0; t < num_tenants; ++t) {
    // Independent per-tenant streams: both the skeleton choice and the
    // constant draws are seeded off (master seed, tenant id).
    const uint64_t tseed =
        common::HashMix(options.seed, static_cast<uint64_t>(t));
    auto tenant = std::make_unique<Tenant>(
        Tenant{ZipfSampler(num_skeletons, options.zipf_s, tseed),
               Rng(tseed ^ 0x7aff1cu)});
    gen.tenants_.push_back(std::move(tenant));
  }
  return gen;
}

TrafficRequest TrafficGenerator::Next() {
  const int tenant_idx =
      static_cast<int>(ticket_++ % static_cast<uint64_t>(tenants_.size()));
  Tenant& tenant = *tenants_[tenant_idx];
  // Rotate each tenant's rank order through the pool so the tenants favor
  // different skeletons while sharing one global popularity law.
  const int rank = tenant.zipf.Next();
  const int skeleton_idx =
      (rank + tenant_idx) % static_cast<int>(pool_.size());
  const Skeleton& sk = *pool_[skeleton_idx];

  TrafficRequest req;
  req.skeleton = skeleton_idx;
  req.tenant = tenant_idx;
  req.catalog = &sk.load.catalog;
  if (sk.slots.empty()) {
    // Q1-Q4 family: no constants to vary, traffic repeats byte-identically
    // (the exact-match cache path).
    req.query = sk.load.query->Clone();
    return req;
  }
  std::vector<Scalar> values;
  values.reserve(sk.slots.size());
  for (int64_t domain : sk.domains) {
    values.push_back(Scalar::Int(tenant.values.Uniform(0, domain - 1)));
  }
  req.query = algebra::BindQuery(*sk.skeleton, values);
  return req;
}

}  // namespace prairie::workload

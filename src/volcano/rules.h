// The Volcano rule model (paper §3, Table 3/4): trans_rules, impl_rules
// and enforcers driving the generic top-down search engine.
//
// Rule behaviour is expressed as callbacks over a BindingView (the
// descriptor slots of one rule firing). Hand-coded Volcano rule sets
// supply compiled C++ lambdas; the P2V pre-processor supplies lambdas
// that interpret Prairie action ASTs. Both drive the same engine, which
// is exactly the comparison the paper's experiments make.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algebra/descriptor_store.h"
#include "algebra/pattern.h"
#include "algebra/property.h"
#include "common/result.h"

namespace prairie::catalog {
class Catalog;
}

namespace prairie::volcano {

using GroupId = int;

/// \brief Descriptor slots bound for one rule firing, plus ambient context.
///
/// Slot numbering matches the rule's pattern annotation (the D1..Dn of the
/// paper, 0-based). Stream variables additionally expose the memo group
/// they matched.
struct BindingView {
  std::vector<algebra::Descriptor> slots;
  std::vector<GroupId> streams;  ///< streams[v-1] = group bound to ?v.
  const algebra::Algebra* algebra = nullptr;
  const catalog::Catalog* catalog = nullptr;
  /// The active memo's descriptor store: rule actions may freeze finished
  /// slot descriptors through it (DescriptorBuilder::Freeze). Null when the
  /// binding was built outside an optimization (some unit tests).
  algebra::DescriptorStore* store = nullptr;

  algebra::Descriptor& slot(int i) { return slots[static_cast<size_t>(i)]; }
  const algebra::Descriptor& slot(int i) const {
    return slots[static_cast<size_t>(i)];
  }
};

/// Condition callback (Volcano cond_code): may read and fill slots;
/// returning false rejects the firing.
using CondFn = std::function<common::Result<bool>(BindingView&)>;

/// Action callback (Volcano appl_code / property-derivation code).
using ActionFn = std::function<common::Status(BindingView&)>;

/// \brief A Volcano transformation rule: logical expression to logical
/// expression.
struct TransRule {
  std::string name;
  algebra::PatNodePtr lhs;
  algebra::PatNodePtr rhs;
  int num_slots = 0;
  /// cond_code: runs the Prairie pre-test statements then the test. A null
  /// condition is TRUE.
  CondFn condition;
  /// appl_code: the Prairie post-test statements; completes the RHS node
  /// descriptors. Null is a no-op.
  ActionFn apply;
};

/// \brief A Volcano implementation rule: one operator to one algorithm.
///
/// Slot layout (k = arity): 0..k-1 input streams; k the operator
/// descriptor; rhs_input_slots[i] the descriptor of RHS input i (== i when
/// the input keeps its LHS descriptor, or a fresh slot when the rule
/// pushes new requirements, e.g. sort order, onto that input); alg_slot
/// the algorithm descriptor.
struct ImplRule {
  std::string name;
  algebra::OpId op = -1;
  algebra::OpId alg = -1;
  int arity = 0;
  std::vector<int> rhs_input_slots;
  int alg_slot = -1;
  int num_slots = 0;

  /// cond_code; at evaluation time only slots 0..k are bound.
  CondFn condition;
  /// Runs before the inputs are optimized; fills the algorithm descriptor
  /// and any re-annotated input descriptors whose physical annotations
  /// become the inputs' required properties (Volcano's "get_input_pv").
  ActionFn pre_opt;
  /// Runs after the inputs are optimized (their costs and delivered
  /// physical properties are merged into the RHS input slots); computes
  /// the algorithm's total cost and derived physical properties
  /// (Volcano's "cost" + "derive_phy_prop").
  ActionFn post_opt;

  int op_slot() const { return arity; }
};

/// \brief A Volcano enforcer: an algorithm that can produce a required
/// physical property on top of any plan for the same group (e.g.
/// Merge_sort enforcing a tuple order).
///
/// Slot layout: 0 the input stream descriptor, 1 the virtual operator
/// descriptor carrying the requirement, 2 the algorithm descriptor.
struct Enforcer {
  std::string name;
  algebra::OpId alg = -1;
  algebra::PropertyId prop = -1;  ///< The physical property it enforces.
  static constexpr int kInputSlot = 0;
  static constexpr int kOpSlot = 1;
  static constexpr int kAlgSlot = 2;
  static constexpr int kNumSlots = 3;

  /// Whether this enforcer can produce `required` (null fn: any non-null
  /// requirement is accepted).
  std::function<bool(const algebra::Value& required)> applicable;
  CondFn condition;
  ActionFn pre_opt;
  ActionFn post_opt;
};

/// \brief A complete Volcano specification: algebra + rules + the property
/// classification (cost / physical / argument) the engine needs.
struct RuleSet {
  std::string name;
  std::shared_ptr<algebra::Algebra> algebra;
  std::vector<TransRule> trans_rules;
  std::vector<ImplRule> impl_rules;
  std::vector<Enforcer> enforcers;

  /// Physical properties: requested/propagated orders etc. They are
  /// excluded from memo identity (plans within a group differ on them).
  std::vector<algebra::PropertyId> phys_props;
  /// The cost property.
  algebra::PropertyId cost_prop = -1;
  /// Logical properties (Volcano Table-3 sense): estimates that belong to
  /// the whole equivalence class — cardinality, tuple size. They are
  /// excluded from memo identity: two derivation paths of the same
  /// expression may compute them with different floating-point rounding.
  std::vector<algebra::PropertyId> logical_props;
  /// Operator/algorithm argument properties: everything else; they define
  /// memo identity. Filled by Finalize() when left empty.
  std::vector<algebra::PropertyId> arg_props;

  /// Per-operator rule dispatch index, built by Finalize(): element `op`
  /// lists the indexes (into trans_rules / impl_rules) of the rules whose
  /// LHS root is `op`, so the engine touches only rules that can match an
  /// expression instead of scanning the whole rule vector. Immutable after
  /// Finalize(), so N optimizer threads may share it freely. Rule sets
  /// that skip Finalize() leave these empty; the engine then falls back to
  /// the linear scan.
  std::vector<std::vector<uint32_t>> trans_rules_by_op;
  std::vector<std::vector<uint32_t>> impl_rules_by_op;

  /// Computes arg_props as schema minus phys minus cost, checks basic
  /// consistency (registered ops, arities, slot layouts, cost declared),
  /// and builds the per-operator dispatch index.
  common::Status Finalize();

  /// The memo-identity slice (arg_props).
  algebra::PropertySlice ArgSlice() const;
  /// The physical-property slice.
  algebra::PropertySlice PhysSlice() const;

  bool IsPhysical(algebra::PropertyId id) const;

  /// Human-readable specification dump (used by the productivity bench).
  std::string ToString() const;
};

/// True if delivered property value `have` satisfies requirement `want`
/// (null `want` is always satisfied; sort specs use prefix satisfaction;
/// anything else requires equality).
bool PropSatisfies(const algebra::Value& have, const algebra::Value& want);

}  // namespace prairie::volcano

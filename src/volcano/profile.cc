#include "volcano/profile.h"

#include <algorithm>
#include <fstream>

#include "common/strings.h"

namespace prairie::volcano {

using common::Status;
using common::TraceEvent;
using common::TraceEventKind;

size_t RuleProfile::TotalTransFired() const {
  size_t n = 0;
  for (const RuleProfileRow& r : trans) n += r.fired;
  return n;
}

namespace {

void Accumulate(std::vector<RuleProfileRow>* rows, int rule,
                const TraceEvent& e) {
  if (rule < 0 || static_cast<size_t>(rule) >= rows->size()) return;
  RuleProfileRow& row = (*rows)[static_cast<size_t>(rule)];
  ++row.attempts;
  row.total_ns += e.dur_ns;
  row.max_ns = std::max(row.max_ns, e.dur_ns);
}

void AppendSection(const char* title, const std::vector<RuleProfileRow>& rows,
                   std::string* out) {
  // Sort by cumulative latency so the expensive rules lead.
  std::vector<const RuleProfileRow*> order;
  for (const RuleProfileRow& r : rows) {
    if (r.attempts > 0) order.push_back(&r);
  }
  if (order.empty()) return;
  std::sort(order.begin(), order.end(),
            [](const RuleProfileRow* a, const RuleProfileRow* b) {
              return a->total_ns > b->total_ns;
            });
  size_t width = 4;
  for (const RuleProfileRow* r : order) width = std::max(width, r->name.size());
  *out += common::StringPrintf("%s\n  %-*s %10s %10s %12s %12s\n", title,
                               static_cast<int>(width), "rule", "attempts",
                               "fired", "total_us", "max_us");
  for (const RuleProfileRow* r : order) {
    *out += common::StringPrintf(
        "  %-*s %10zu %10zu %12.1f %12.1f\n", static_cast<int>(width),
        r->name.c_str(), r->attempts, r->fired,
        static_cast<double>(r->total_ns) / 1e3,
        static_cast<double>(r->max_ns) / 1e3);
  }
}

}  // namespace

std::string RuleProfile::ToTable() const {
  std::string out;
  AppendSection("transformation rules:", trans, &out);
  AppendSection("implementation rules:", impl, &out);
  AppendSection("enforcers:", enforcers, &out);
  if (out.empty()) out = "(no rule activity traced)\n";
  out += common::StringPrintf("events: %zu", events);
  if (dropped > 0) {
    out += common::StringPrintf(
        "  dropped: %zu (ring wrapped; counts are a suffix of the search)",
        dropped);
  }
  out += "\n";
  return out;
}

RuleProfile BuildRuleProfile(const std::vector<TraceEvent>& events,
                             const RuleSet& rules, size_t dropped) {
  RuleProfile p;
  p.trans.resize(rules.trans_rules.size());
  p.impl.resize(rules.impl_rules.size());
  p.enforcers.resize(rules.enforcers.size());
  for (size_t i = 0; i < rules.trans_rules.size(); ++i) {
    p.trans[i].name = rules.trans_rules[i].name;
  }
  for (size_t i = 0; i < rules.impl_rules.size(); ++i) {
    p.impl[i].name = rules.impl_rules[i].name;
  }
  for (size_t i = 0; i < rules.enforcers.size(); ++i) {
    p.enforcers[i].name = rules.enforcers[i].name;
  }
  p.events = events.size();
  p.dropped = dropped;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kTransAttempt:
        Accumulate(&p.trans, e.rule, e);
        break;
      case TraceEventKind::kImplAttempt:
        Accumulate(&p.impl, e.rule, e);
        break;
      case TraceEventKind::kEnforcerAttempt:
        Accumulate(&p.enforcers, e.rule, e);
        break;
      case TraceEventKind::kTransFire:
        if (e.rule >= 0 && static_cast<size_t>(e.rule) < p.trans.size()) {
          ++p.trans[static_cast<size_t>(e.rule)].fired;
        }
        break;
      case TraceEventKind::kPlanCosted:
        if (e.rule >= 0 && static_cast<size_t>(e.rule) < p.impl.size()) {
          ++p.impl[static_cast<size_t>(e.rule)].fired;
        }
        break;
      default:
        break;
    }
  }
  return p;
}

namespace {

std::string RuleName(const RuleSet& rules, TraceEventKind kind, int rule) {
  switch (kind) {
    case TraceEventKind::kTransAttempt:
    case TraceEventKind::kTransFire:
      if (rule >= 0 && static_cast<size_t>(rule) < rules.trans_rules.size()) {
        return rules.trans_rules[static_cast<size_t>(rule)].name;
      }
      break;
    case TraceEventKind::kImplAttempt:
    case TraceEventKind::kPlanCosted:
      if (rule >= 0 && static_cast<size_t>(rule) < rules.impl_rules.size()) {
        return rules.impl_rules[static_cast<size_t>(rule)].name;
      }
      break;
    case TraceEventKind::kEnforcerAttempt:
      if (rule >= 0 && static_cast<size_t>(rule) < rules.enforcers.size()) {
        return rules.enforcers[static_cast<size_t>(rule)].name;
      }
      break;
    default:
      break;
  }
  return std::string();
}

std::string EventName(const RuleSet& rules, const TraceEvent& e) {
  const std::string rule = RuleName(rules, e.kind, e.rule);
  switch (e.kind) {
    case TraceEventKind::kGroupExpand:
      return common::StringPrintf("expand g%d", e.group);
    case TraceEventKind::kGroupOptimize:
      return common::StringPrintf("optimize g%d", e.group);
    case TraceEventKind::kTransAttempt:
      return "T:" + rule;
    case TraceEventKind::kImplAttempt:
      return "I:" + rule;
    case TraceEventKind::kEnforcerAttempt:
      return "E:" + rule;
    case TraceEventKind::kTransFire:
      return "fire:" + rule;
    case TraceEventKind::kPlanCosted:
      return "costed:" + rule;
    case TraceEventKind::kWinnerSelected:
      return common::StringPrintf("winner g%d", e.group);
    case TraceEventKind::kPrune:
      return "prune";
    case TraceEventKind::kCycleGuard:
      return "cycle";
    // Executor events carry the algebra OpId in `desc` (there is no group
    // or rule identity at run time).
    case TraceEventKind::kExecQuery:
      return "execute";
    case TraceEventKind::kExecOperator:
    case TraceEventKind::kExecQError: {
      std::string alg = "op";
      if (rules.algebra != nullptr && e.desc >= 0 &&
          e.desc < rules.algebra->size()) {
        alg = rules.algebra->name(e.desc);
      }
      return (e.kind == TraceEventKind::kExecOperator ? "exec:" : "qerror:") +
             alg;
    }
  }
  return "event";
}

}  // namespace

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const RuleSet& rules, size_t dropped) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::ExecError("cannot open trace output file '" + path + "'");
  }
  // Rebase timestamps so the trace starts at t=0 (steady-clock epochs are
  // arbitrary); trace_event timestamps are microseconds.
  uint64_t t0 = 0;
  bool first = true;
  for (const TraceEvent& e : events) {
    if (first || e.ts_ns < t0) t0 = e.ts_ns;
    first = false;
  }
  out << "{\"traceEvents\":[";
  const char* sep = "\n";
  for (const TraceEvent& e : events) {
    const double ts_us = static_cast<double>(e.ts_ns - t0) / 1e3;
    out << sep;
    sep = ",\n";
    out << common::StringPrintf(
        "{\"name\":\"%s\",\"pid\":1,\"tid\":%u,\"ts\":%.3f",
        common::JsonEscape(EventName(rules, e)).c_str(), e.tid, ts_us);
    if (common::IsSpanKind(e.kind)) {
      out << common::StringPrintf(
          ",\"ph\":\"X\",\"dur\":%.3f",
          static_cast<double>(e.dur_ns) / 1e3);
    } else {
      out << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    out << common::StringPrintf(
        ",\"args\":{\"group\":%d,\"rule\":%d,\"desc\":%d,\"depth\":%d,"
        "\"cost\":%g}}",
        e.group, e.rule, e.desc, e.depth, e.cost);
  }
  out << "\n],\"metadata\":{\"dropped_events\":" << dropped << "}}\n";
  out.close();
  if (!out) {
    return Status::ExecError("error writing trace output file '" + path +
                             "'");
  }
  return Status::OK();
}

}  // namespace prairie::volcano

// The memo: equivalence classes of logical multi-expressions (the paper's
// Figure 14 counts these classes).
//
// Groups are identified by GroupId with union-find indirection: when a
// transformation produces, as the root of some group g, an expression that
// already exists in another group h, the two groups are provably
// equivalent and are merged. Expression identity is (operation,
// argument-property slice of the descriptor, child groups); physical and
// cost properties are excluded, as in Volcano.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/expr.h"
#include "volcano/plan.h"
#include "volcano/rules.h"

namespace prairie::volcano {

/// \brief A logical multi-expression stored in a group.
struct MExpr {
  bool is_file = false;
  algebra::OpId op = -1;
  std::string file;
  algebra::Descriptor args;        ///< Full descriptor of this node.
  std::vector<GroupId> children;   ///< Child groups (canonicalized on use).
  uint64_t applied_mask = 0;       ///< TransRules already applied here.
};

/// \brief Memoized result of optimizing a group under one requirement.
struct Winner {
  bool has_plan = false;
  double cost = 0;
  PhysNodeRef plan;
  /// The requirement this winner answers (guards against hash collisions).
  algebra::Descriptor req;
  /// When >= 0: the search failed under this cost limit; a retry is only
  /// worthwhile with a larger limit.
  double failed_limit = -1;
};

/// \brief One equivalence class.
struct Group {
  std::vector<MExpr> exprs;
  /// Logical annotations of the stream this class produces (used to bind
  /// rule input descriptors D1..Dk).
  algebra::Descriptor stream_desc;
  bool expanded = false;
  bool expanding = false;
  bool merged_away = false;
  std::unordered_map<uint64_t, Winner> winners;  ///< Key: requirement hash.
};

/// \brief Limits protecting against search-space explosion (the paper hit
/// virtual-memory exhaustion at 8-way joins in 1994; we fail cleanly).
struct MemoLimits {
  size_t max_groups = 2'000'000;
  size_t max_exprs = 8'000'000;
};

/// \brief The memo structure.
class Memo {
 public:
  Memo(const RuleSet* rules, MemoLimits limits);

  /// Canonical (union-find) representative of `g`.
  GroupId Find(GroupId g) const;

  Group& group(GroupId g) { return groups_[static_cast<size_t>(Find(g))]; }
  const Group& group(GroupId g) const {
    return groups_[static_cast<size_t>(Find(g))];
  }

  /// Copies a logical operator tree into the memo; returns the root group.
  /// Interior nodes must be abstract operators of the rule set's algebra.
  common::Result<GroupId> CopyIn(const algebra::Expr& tree);

  /// Finds the group already containing an expression identical to `m`, or
  /// creates a new group for it. `stream_desc` seeds a new group's stream
  /// descriptor.
  common::Result<GroupId> GetOrCreateGroup(MExpr m,
                                           const algebra::Descriptor& desc);

  /// Inserts `m` as a new expression of group `g`. If an identical
  /// expression lives in another group, the groups are merged. Returns
  /// true if a new expression was actually added somewhere.
  common::Result<bool> InsertInto(GroupId g, MExpr m);

  /// Number of live (representative) groups — the paper's "equivalence
  /// classes".
  size_t NumGroups() const;

  /// Total logical multi-expressions across live groups.
  size_t NumExprs() const;

  /// Bumps on every merge; long-running loops over a group's expressions
  /// restart when they observe a change.
  uint64_t merge_epoch() const { return merge_epoch_; }

  size_t allocated_groups() const { return groups_.size(); }

  std::string ToString(const algebra::Algebra& algebra) const;

 private:
  uint64_t KeyOf(const MExpr& m) const;
  bool SameExpr(const MExpr& a, const MExpr& b) const;
  common::Status Merge(GroupId keep, GroupId lose);
  common::Result<GroupId> NewGroup(MExpr m, const algebra::Descriptor& desc);

  const RuleSet* rules_;
  MemoLimits limits_;
  algebra::PropertySlice arg_slice_;
  std::vector<Group> groups_;
  mutable std::vector<GroupId> parent_;
  /// Expression index for duplicate detection: key -> (group, expr index).
  std::unordered_multimap<uint64_t, std::pair<GroupId, int>> index_;
  size_t num_exprs_ = 0;
  uint64_t merge_epoch_ = 0;
};

}  // namespace prairie::volcano

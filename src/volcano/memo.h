// The memo: equivalence classes of logical multi-expressions (the paper's
// Figure 14 counts these classes).
//
// Groups are identified by GroupId with union-find indirection: when a
// transformation produces, as the root of some group g, an expression that
// already exists in another group h, the two groups are provably
// equivalent and are merged. Expression identity is (operation,
// argument-property slice of the descriptor, child groups); physical and
// cost properties are excluded, as in Volcano.
//
// Descriptors are hash-consed: the memo owns a DescriptorStore and every
// expression/stream/requirement descriptor is a dense DescriptorId with
// id-equality <=> value-equality. Expression identity compares the interned
// argument-slice id (one integer), and winner tables key on the interned
// requirement id directly — no stored-descriptor collision guard.
//
// Storage model: groups and each group's expression list live in
// arena-backed StableVectors — append-only chunk ladders whose elements
// never move. That is what makes MemoMode::kConcurrent possible (readers
// hold references across concurrent inserts) and what keeps the serial
// mode's allocation profile flat: the 1995 paper's virtual-memory wall at
// 8-way joins was allocator churn as much as search-space size.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/descriptor_store.h"
#include "algebra/expr.h"
#include "common/arena.h"
#include "common/small_bitset.h"
#include "volcano/plan.h"
#include "volcano/rules.h"

namespace prairie::volcano {

/// \brief A logical multi-expression stored in a group.
struct MExpr {
  bool is_file = false;
  algebra::OpId op = -1;
  std::string file;
  /// Full descriptor of this node (interned).
  algebra::DescriptorId args = algebra::kInvalidDescriptorId;
  /// Interned argument-slice projection of `args`: the identity carrier.
  /// Filled lazily by the memo on insert; equal ids <=> equal arg slices.
  algebra::DescriptorId arg_key = algebra::kInvalidDescriptorId;
  std::vector<GroupId> children;   ///< Child groups (canonicalized on use).
  /// TransRules already applied here. Atomic words so concurrent readers
  /// and writers race cleanly, but NOT a claim primitive: the engine
  /// tests the bit, applies the rule, and only then sets it, so two
  /// workers can redundantly apply the same rule to the same expression
  /// (memo dedup makes that idempotent). The deferred Set is deliberate —
  /// a pass that saw a child group mid-expansion leaves the bit clear so
  /// a later pass redoes the application, which an eager test-and-set
  /// claim could not express. The memo sizes the bitset to the rule count
  /// before publishing the expression.
  common::AtomicBitset applied;
  /// Provenance (observability): the trans rule that created this
  /// expression (-1: copied in from the input query), and the memo
  /// identity key (arg_key) of the source expression the rewrite matched
  /// (invalid for RHS subtree expressions, which have no single source).
  /// The source lives in the same group; resolve by scanning for its
  /// arg_key — indexes go stale under merges, interned keys do not.
  int src_rule = -1;
  algebra::DescriptorId src_arg_key = algebra::kInvalidDescriptorId;
};

/// \brief Memoized result of optimizing a group under one requirement.
///
/// Keyed by the interned requirement id, so no collision guard is stored.
struct Winner {
  bool has_plan = false;
  double cost = 0;
  PhysNodeRef plan;
  /// When >= 0: the search failed under this cost limit; a retry is only
  /// worthwhile with a larger limit.
  double failed_limit = -1;
  /// The interned requirement id this winner is memoized under (its own
  /// key in Group::winners) — lets callers chain provenance without
  /// re-interning the requirement.
  algebra::DescriptorId rid = algebra::kInvalidDescriptorId;
};

/// \brief Provenance of a memoized winner (observability): why the chosen
/// plan exists. Stored beside Group::winners under the same key so the
/// hot search path never copies it (Winner values travel by value; this
/// does not).
struct WinnerProv {
  int impl_rule = -1;  ///< Index into RuleSet::impl_rules, or -1.
  int enforcer = -1;   ///< Index into RuleSet::enforcers, or -1.
  /// arg_key (memo identity) of the implemented logical expression;
  /// invalid for stored-file winners.
  algebra::DescriptorId src_arg_key = algebra::kInvalidDescriptorId;
  /// Child groups of the implemented expression: arg_key alone is
  /// ambiguous when two expressions differ only in child order (e.g. a
  /// commuted join whose rewrite reuses the argument slice).
  std::vector<GroupId> src_children;
  /// (child group, interned requirement id) of each optimized input — the
  /// winner-table keys to continue the provenance walk downward.
  std::vector<std::pair<GroupId, algebra::DescriptorId>> child_keys;
};

/// \brief One equivalence class. Expressions live in a StableVector:
/// appended under the group lock (concurrent mode), read lock-free.
/// Groups are neither copyable nor movable — they are constructed in place
/// in the memo's stable group table and never relocate.
struct Group {
  explicit Group(common::Arena* arena) : exprs(arena) {}
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  common::StableVector<MExpr> exprs;
  /// Logical annotations of the stream this class produces (used to bind
  /// rule input descriptors D1..Dk). Interned.
  algebra::DescriptorId stream_desc = algebra::kInvalidDescriptorId;
  std::atomic<bool> expanded{false};
  std::atomic<bool> expanding{false};
  std::atomic<bool> merged_away{false};
  /// Key: interned id of the physical-slice requirement descriptor.
  /// Accessed through Memo::FindWinner/StoreWinner on the hot path (which
  /// take `mu` in concurrent mode); direct access is reserved for
  /// quiescent readers (inspector dumps, provenance walks after search).
  std::unordered_map<algebra::DescriptorId, Winner> winners;
  /// Winner provenance, same key as `winners`; entries exist only for
  /// winners that carry a plan. Cleared together with `winners` on merge.
  std::unordered_map<algebra::DescriptorId, WinnerProv> prov;
  /// Guards expression appends and the winner tables in concurrent mode.
  mutable std::mutex mu;
};

/// \brief Limits protecting against search-space explosion (the paper hit
/// virtual-memory exhaustion at 8-way joins in 1994; we fail cleanly).
/// Hitting one is an error (ResourceExhausted) — for graceful degradation
/// use the engine's anytime budgets (OptimizerOptions::search_budget_ms /
/// group_budget) instead.
struct MemoLimits {
  size_t max_groups = 2'000'000;
  size_t max_exprs = 8'000'000;
};

/// \brief Structural tallies of one memo (observability), snapshotted by
/// Memo::tallies(). The memo maintains these as relaxed atomics so
/// concurrent workers can bump them without contention; the engine flushes
/// deltas into the process-wide metrics registry at the end of each query.
struct MemoTallies {
  uint64_t groups_created = 0;   ///< NewGroup calls.
  uint64_t groups_merged = 0;    ///< Equivalence merges performed.
  uint64_t exprs_inserted = 0;   ///< Multi-expressions actually added.
  uint64_t exprs_deduped = 0;    ///< Inserts resolved to an existing expr.
  uint64_t arena_bytes = 0;      ///< Arena bytes backing groups + exprs.
};

/// \brief Threading contract of one memo.
enum class MemoMode {
  /// Single-threaded owner; no locking at all (the historical behavior,
  /// byte-identical search results and dumps).
  kSerial,
  /// Shared by intra-query search workers: sharded expression index,
  /// per-group locks for appends and winner tables, lock-free union-find
  /// reads, merges serialized behind an exclusive merge lock. Mirrors
  /// StoreMode::kConcurrent in the DescriptorStore.
  kConcurrent,
};

/// \brief The memo structure.
///
/// In MemoMode::kSerial a memo is single-threaded, exactly as before. In
/// MemoMode::kConcurrent one memo is shared by the parallel search's
/// workers: InsertInto / GetOrCreateGroup / Find / FindWinner /
/// StoreWinner are safe to call concurrently. For parallel BATCH
/// optimization (across queries), several serial memos may still share one
/// concurrent DescriptorStore so descriptor ids stay globally canonical.
class Memo {
 public:
  /// `shared_store` null: the memo owns a private store (serial for
  /// MemoMode::kSerial, concurrent for MemoMode::kConcurrent). Non-null:
  /// the memo interns through `shared_store` (which must outlive it, use
  /// the rule set's schema and, when other threads share it, be in
  /// StoreMode::kConcurrent).
  Memo(const RuleSet* rules, MemoLimits limits,
       algebra::DescriptorStore* shared_store = nullptr,
       MemoMode mode = MemoMode::kSerial);

  MemoMode mode() const { return mode_; }
  bool concurrent() const { return mode_ == MemoMode::kConcurrent; }

  /// The descriptor store backing every id in this memo. The engine and
  /// rule callbacks intern through this store so ids are comparable.
  algebra::DescriptorStore* store() { return store_; }
  const algebra::DescriptorStore* store() const { return store_; }

  /// Canonical (union-find) representative of `g`. Lock-free: parent
  /// links only ever step toward smaller ids, so racy path compression is
  /// benign.
  GroupId Find(GroupId g) const;

  /// The canonical group of `g`. References stay valid forever (stable
  /// storage); under concurrent merges the REPRESENTATIVE may change, so
  /// long-running loops re-Find (as the serial engine already does).
  Group& group(GroupId g) { return groups_[static_cast<size_t>(Find(g))]; }
  const Group& group(GroupId g) const {
    return groups_[static_cast<size_t>(Find(g))];
  }

  /// The group stored at exactly `g` (no union-find indirection) — a
  /// stable handle for enumerations that must survive merges: a merged
  /// loser's expressions remain readable in concurrent mode.
  Group& raw_group(GroupId g) { return groups_[static_cast<size_t>(g)]; }
  const Group& raw_group(GroupId g) const {
    return groups_[static_cast<size_t>(g)];
  }

  /// Copies a logical operator tree into the memo; returns the root group.
  /// Interior nodes must be abstract operators of the rule set's algebra.
  common::Result<GroupId> CopyIn(const algebra::Expr& tree);

  /// Finds the group already containing an expression identical to `m`, or
  /// creates a new group for it. `desc` (interned) seeds a new group's
  /// stream descriptor.
  common::Result<GroupId> GetOrCreateGroup(MExpr m, algebra::DescriptorId desc);

  /// Inserts `m` as a new expression of group `g`. If an identical
  /// expression lives in another group, the groups are merged. Returns
  /// true if a new expression was actually added somewhere.
  common::Result<bool> InsertInto(GroupId g, MExpr m);

  /// The memoized winner of (group, interned requirement), if any. Takes
  /// the group lock in concurrent mode; the returned Winner is a copy.
  std::optional<Winner> FindWinner(GroupId g, algebra::DescriptorId rid) const;

  /// Memoizes `w` (and its provenance, when it has a plan) for
  /// (group, rid). First writer wins: if a winner is already present —
  /// another worker finished the same (group, requirement) search first —
  /// the existing entry is kept. Returns the stored winner.
  Winner StoreWinner(GroupId g, algebra::DescriptorId rid, Winner w,
                     WinnerProv prov);

  /// Number of live (representative) groups — the paper's "equivalence
  /// classes".
  size_t NumGroups() const;

  /// Total logical multi-expressions across live groups.
  size_t NumExprs() const;

  /// Bumps on every merge; long-running loops over a group's expressions
  /// restart when they observe a change.
  uint64_t merge_epoch() const {
    return merge_epoch_.load(std::memory_order_acquire);
  }

  size_t allocated_groups() const {
    return groups_.size();
  }

  /// Snapshot of the structural tallies since construction (groups
  /// created/merged, exprs inserted/deduped, arena bytes).
  MemoTallies tallies() const;

  /// Bytes of arena-backed storage (group table + expression lists).
  size_t arena_bytes() const { return arena_.bytes_reserved(); }

  std::string ToString(const algebra::Algebra& algebra) const;

 private:
  struct IndexShard {
    mutable std::shared_mutex mu;
    /// key -> (group, expr index) for duplicate detection.
    std::unordered_multimap<uint64_t, std::pair<GroupId, int>> map;
  };
  static constexpr size_t kNumShards = 16;
  static size_t ShardOf(uint64_t h) { return (h >> 56) & (kNumShards - 1); }

  /// Fills m.arg_key (the interned identity projection) if unset.
  void EnsureKey(MExpr& m);
  uint64_t KeyOf(const MExpr& m) const;
  bool SameExpr(const MExpr& a, const MExpr& b) const;
  /// Probes shard `sh` for an expression identical to `m`; returns the
  /// canonical group holding it, or -1. Caller holds the shard lock (any
  /// flavor) in concurrent mode.
  GroupId FindDup(const IndexShard& sh, uint64_t key, const MExpr& m) const;
  common::Status Merge(GroupId keep, GroupId lose);
  common::Result<GroupId> NewGroupLocked(MExpr m, algebra::DescriptorId desc,
                                         uint64_t key, IndexShard& sh);
  /// Serial fast paths (no locks, original algorithm).
  common::Result<GroupId> GetOrCreateGroupSerial(MExpr m,
                                                 algebra::DescriptorId desc);
  common::Result<bool> InsertIntoSerial(GroupId g, MExpr m);
  /// Appends `m` to canonical group `g` and indexes it. Caller holds the
  /// needed locks (shard + group) in concurrent mode.
  common::Result<bool> AppendExpr(GroupId g, MExpr m, uint64_t key,
                                  IndexShard& sh);

  const RuleSet* rules_;
  MemoLimits limits_;
  const MemoMode mode_;
  /// Set when the memo owns its store (no shared store was supplied).
  std::unique_ptr<algebra::DescriptorStore> owned_store_;
  algebra::DescriptorStore* store_;
  algebra::SliceId arg_slice_id_;

  /// Arena backing the group table, every group's expression list and the
  /// union-find parent array. Never shrinks; dies with the memo.
  common::Arena arena_;
  common::StableVector<Group> groups_;
  mutable common::StableVector<std::atomic<GroupId>> parent_;
  /// Guards group-table appends (NewGroup) in concurrent mode.
  std::mutex groups_mu_;
  /// Merges are rare and global: they take this exclusively; inserts and
  /// group creation hold it shared so union-find results stay stable
  /// inside one operation.
  mutable std::shared_mutex merge_mu_;
  IndexShard shards_[kNumShards];

  std::atomic<size_t> num_exprs_{0};
  std::atomic<uint64_t> merge_epoch_{0};
  struct {
    std::atomic<uint64_t> groups_created{0};
    std::atomic<uint64_t> groups_merged{0};
    std::atomic<uint64_t> exprs_inserted{0};
    std::atomic<uint64_t> exprs_deduped{0};
  } tally_;
};

}  // namespace prairie::volcano

// The memo: equivalence classes of logical multi-expressions (the paper's
// Figure 14 counts these classes).
//
// Groups are identified by GroupId with union-find indirection: when a
// transformation produces, as the root of some group g, an expression that
// already exists in another group h, the two groups are provably
// equivalent and are merged. Expression identity is (operation,
// argument-property slice of the descriptor, child groups); physical and
// cost properties are excluded, as in Volcano.
//
// Descriptors are hash-consed: the memo owns a DescriptorStore and every
// expression/stream/requirement descriptor is a dense DescriptorId with
// id-equality <=> value-equality. Expression identity compares the interned
// argument-slice id (one integer), and winner tables key on the interned
// requirement id directly — no stored-descriptor collision guard.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/descriptor_store.h"
#include "algebra/expr.h"
#include "common/small_bitset.h"
#include "volcano/plan.h"
#include "volcano/rules.h"

namespace prairie::volcano {

/// \brief A logical multi-expression stored in a group.
struct MExpr {
  bool is_file = false;
  algebra::OpId op = -1;
  std::string file;
  /// Full descriptor of this node (interned).
  algebra::DescriptorId args = algebra::kInvalidDescriptorId;
  /// Interned argument-slice projection of `args`: the identity carrier.
  /// Filled lazily by the memo on insert; equal ids <=> equal arg slices.
  algebra::DescriptorId arg_key = algebra::kInvalidDescriptorId;
  std::vector<GroupId> children;   ///< Child groups (canonicalized on use).
  common::SmallBitset applied;     ///< TransRules already applied here.
  /// Provenance (observability): the trans rule that created this
  /// expression (-1: copied in from the input query), and the memo
  /// identity key (arg_key) of the source expression the rewrite matched
  /// (invalid for RHS subtree expressions, which have no single source).
  /// The source lives in the same group; resolve by scanning for its
  /// arg_key — indexes go stale under merges, interned keys do not.
  int src_rule = -1;
  algebra::DescriptorId src_arg_key = algebra::kInvalidDescriptorId;
};

/// \brief Memoized result of optimizing a group under one requirement.
///
/// Keyed by the interned requirement id, so no collision guard is stored.
struct Winner {
  bool has_plan = false;
  double cost = 0;
  PhysNodeRef plan;
  /// When >= 0: the search failed under this cost limit; a retry is only
  /// worthwhile with a larger limit.
  double failed_limit = -1;
  /// The interned requirement id this winner is memoized under (its own
  /// key in Group::winners) — lets callers chain provenance without
  /// re-interning the requirement.
  algebra::DescriptorId rid = algebra::kInvalidDescriptorId;
};

/// \brief Provenance of a memoized winner (observability): why the chosen
/// plan exists. Stored beside Group::winners under the same key so the
/// hot search path never copies it (Winner values travel by value; this
/// does not).
struct WinnerProv {
  int impl_rule = -1;  ///< Index into RuleSet::impl_rules, or -1.
  int enforcer = -1;   ///< Index into RuleSet::enforcers, or -1.
  /// arg_key (memo identity) of the implemented logical expression;
  /// invalid for stored-file winners.
  algebra::DescriptorId src_arg_key = algebra::kInvalidDescriptorId;
  /// Child groups of the implemented expression: arg_key alone is
  /// ambiguous when two expressions differ only in child order (e.g. a
  /// commuted join whose rewrite reuses the argument slice).
  std::vector<GroupId> src_children;
  /// (child group, interned requirement id) of each optimized input — the
  /// winner-table keys to continue the provenance walk downward.
  std::vector<std::pair<GroupId, algebra::DescriptorId>> child_keys;
};

/// \brief One equivalence class.
struct Group {
  std::vector<MExpr> exprs;
  /// Logical annotations of the stream this class produces (used to bind
  /// rule input descriptors D1..Dk). Interned.
  algebra::DescriptorId stream_desc = algebra::kInvalidDescriptorId;
  bool expanded = false;
  bool expanding = false;
  bool merged_away = false;
  /// Key: interned id of the physical-slice requirement descriptor.
  std::unordered_map<algebra::DescriptorId, Winner> winners;
  /// Winner provenance, same key as `winners`; entries exist only for
  /// winners that carry a plan. Cleared together with `winners` on merge.
  std::unordered_map<algebra::DescriptorId, WinnerProv> prov;
};

/// \brief Limits protecting against search-space explosion (the paper hit
/// virtual-memory exhaustion at 8-way joins in 1994; we fail cleanly).
struct MemoLimits {
  size_t max_groups = 2'000'000;
  size_t max_exprs = 8'000'000;
};

/// \brief Running structural tallies of one memo (observability). Plain
/// integers bumped inline — the memo is single-threaded, so keeping these
/// always on costs a few increments per insert. The engine flushes them
/// into the process-wide metrics registry at the end of each query.
struct MemoTallies {
  uint64_t groups_created = 0;   ///< NewGroup calls.
  uint64_t groups_merged = 0;    ///< Equivalence merges performed.
  uint64_t exprs_inserted = 0;   ///< Multi-expressions actually added.
  uint64_t exprs_deduped = 0;    ///< Inserts resolved to an existing expr.
};

/// \brief The memo structure.
///
/// A memo is single-threaded. By default it owns a private serial
/// DescriptorStore; for parallel batch optimization, several memos (one
/// per optimizer thread) may instead share one concurrent store so
/// descriptor ids stay globally canonical across threads — the memo's own
/// tables (groups, winners, expression index) remain per-thread.
class Memo {
 public:
  /// `shared_store` null: the memo owns a private serial store. Non-null:
  /// the memo interns through `shared_store` (which must outlive it, use
  /// the rule set's schema and, when other threads share it, be in
  /// StoreMode::kConcurrent).
  Memo(const RuleSet* rules, MemoLimits limits,
       algebra::DescriptorStore* shared_store = nullptr);

  /// The descriptor store backing every id in this memo. The engine and
  /// rule callbacks intern through this store so ids are comparable.
  algebra::DescriptorStore* store() { return store_; }
  const algebra::DescriptorStore* store() const { return store_; }

  /// Canonical (union-find) representative of `g`.
  GroupId Find(GroupId g) const;

  Group& group(GroupId g) { return groups_[static_cast<size_t>(Find(g))]; }
  const Group& group(GroupId g) const {
    return groups_[static_cast<size_t>(Find(g))];
  }

  /// Copies a logical operator tree into the memo; returns the root group.
  /// Interior nodes must be abstract operators of the rule set's algebra.
  common::Result<GroupId> CopyIn(const algebra::Expr& tree);

  /// Finds the group already containing an expression identical to `m`, or
  /// creates a new group for it. `desc` (interned) seeds a new group's
  /// stream descriptor.
  common::Result<GroupId> GetOrCreateGroup(MExpr m, algebra::DescriptorId desc);

  /// Inserts `m` as a new expression of group `g`. If an identical
  /// expression lives in another group, the groups are merged. Returns
  /// true if a new expression was actually added somewhere.
  common::Result<bool> InsertInto(GroupId g, MExpr m);

  /// Number of live (representative) groups — the paper's "equivalence
  /// classes".
  size_t NumGroups() const;

  /// Total logical multi-expressions across live groups.
  size_t NumExprs() const;

  /// Bumps on every merge; long-running loops over a group's expressions
  /// restart when they observe a change.
  uint64_t merge_epoch() const { return merge_epoch_; }

  size_t allocated_groups() const { return groups_.size(); }

  /// Structural tallies since construction (groups created/merged, exprs
  /// inserted/deduped).
  const MemoTallies& tallies() const { return tallies_; }

  std::string ToString(const algebra::Algebra& algebra) const;

 private:
  /// Fills m.arg_key (the interned identity projection) if unset.
  void EnsureKey(MExpr& m);
  uint64_t KeyOf(const MExpr& m) const;
  bool SameExpr(const MExpr& a, const MExpr& b) const;
  common::Status Merge(GroupId keep, GroupId lose);
  common::Result<GroupId> NewGroup(MExpr m, algebra::DescriptorId desc);

  const RuleSet* rules_;
  MemoLimits limits_;
  /// Set when the memo owns its store (no shared store was supplied).
  std::unique_ptr<algebra::DescriptorStore> owned_store_;
  algebra::DescriptorStore* store_;
  algebra::SliceId arg_slice_id_;
  std::vector<Group> groups_;
  mutable std::vector<GroupId> parent_;
  /// Expression index for duplicate detection: key -> (group, expr index).
  std::unordered_multimap<uint64_t, std::pair<GroupId, int>> index_;
  size_t num_exprs_ = 0;
  uint64_t merge_epoch_ = 0;
  MemoTallies tallies_;
};

}  // namespace prairie::volcano

#include "volcano/plancache.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/hash.h"

namespace prairie::volcano {

namespace {

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

PlanCache::PlanCache(const algebra::DescriptorStore* store,
                     PlanCacheOptions options)
    : store_(store), options_(options) {
  num_shards_ = std::bit_ceil(std::max<size_t>(1, options_.shards));
  shard_entry_budget_ =
      options_.max_entries == 0
          ? 0
          : std::max<size_t>(1, options_.max_entries / num_shards_);
  shard_byte_budget_ =
      options_.max_bytes == 0
          ? 0
          : std::max<size_t>(1, options_.max_bytes / num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

PlanCache::Key PlanCache::MakeKey(const algebra::Expr& tree,
                                  algebra::DescriptorId req_id,
                                  const catalog::Catalog& catalog,
                                  algebra::DescriptorStore* store) {
  Key key;
  key.catalog_uid = catalog.uid();
  // Snapshot the epoch BEFORE walking the tree: if the catalog mutates
  // anywhere between here and Insert(), the insert is refused.
  key.epoch = catalog.version();
  AppendU64(key.catalog_uid, &key.bytes);
  AppendU64(static_cast<uint64_t>(static_cast<int64_t>(req_id)), &key.bytes);
  const uint64_t tree_hash = tree.Fingerprint(store, &key.bytes);
  uint64_t h = common::HashCombine(key.catalog_uid, tree_hash);
  h = common::HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(req_id)));
  key.fingerprint = h;
  return key;
}

size_t PlanCache::EntryBytes(const Entry& e) {
  // Approximation good enough to budget by: the key and provenance
  // strings, the list/map node overhead, and the plan tree at a nominal
  // per-node footprint (PhysNode + descriptor values + child vector).
  constexpr size_t kPerNode = 256;
  constexpr size_t kFixed = 160;
  const size_t plan_nodes =
      e.plan.root == nullptr
          ? 0
          : static_cast<size_t>(e.plan.root->AlgCount()) + 1;
  return kFixed + e.key_bytes.size() + e.provenance.size() +
         plan_nodes * kPerNode;
}

bool PlanCache::Probe(const Key& key, const catalog::Catalog& catalog,
                      Hit* hit, bool* dropped_stale) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (dropped_stale != nullptr) *dropped_stale = false;
  if (key.catalog_uid != catalog.uid()) {
    // A key built against a different catalog can never match an entry
    // for this one (the uid leads the key bytes); don't even look.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t now_version = catalog.version();
  Shard& sh = ShardFor(key.fingerprint);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto [begin, end] = sh.by_fp.equal_range(key.fingerprint);
  for (auto it = begin; it != end; ++it) {
    Entry& e = *it->second;
    if (e.key_bytes != key.bytes) continue;  // fingerprint collision
    if (e.epoch != now_version) {
      // Lazy epoch invalidation: the catalog mutated since this plan was
      // optimized. Drop the entry; the caller re-optimizes and re-inserts
      // under the current epoch.
      Erase(sh, it);
      stale_drops_.fetch_add(1, std::memory_order_relaxed);
      if (dropped_stale != nullptr) *dropped_stale = true;
      break;
    }
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // refresh recency
    hit->plan = e.plan;
    hit->provenance = e.provenance;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PlanCache::Insert(const Key& key, const catalog::Catalog& catalog,
                       const Plan& plan, std::string provenance) {
  if (key.catalog_uid != catalog.uid() || catalog.version() != key.epoch) {
    // The catalog moved (or is not the one the key was built against)
    // while this query was being optimized: the plan may reflect mixed
    // state, so it must not be served to anyone.
    skipped_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Entry entry;
  entry.key_bytes = key.bytes;
  entry.fingerprint = key.fingerprint;
  entry.epoch = key.epoch;
  entry.plan = plan;
  entry.provenance = std::move(provenance);
  entry.bytes = EntryBytes(entry);

  Shard& sh = ShardFor(key.fingerprint);
  std::lock_guard<std::mutex> lock(sh.mu);
  // Replace an equal-key entry (a racing worker optimized the same query;
  // keep the newer plan — same epoch, same answer).
  auto [begin, end] = sh.by_fp.equal_range(key.fingerprint);
  for (auto it = begin; it != end; ++it) {
    if (it->second->key_bytes == key.bytes) {
      Erase(sh, it);
      break;
    }
  }
  sh.lru.push_front(std::move(entry));
  sh.by_fp.emplace(key.fingerprint, sh.lru.begin());
  sh.bytes += sh.lru.front().bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  EvictOver(sh);
}

void PlanCache::Erase(
    Shard& sh,
    std::unordered_multimap<uint64_t, std::list<Entry>::iterator>::iterator
        fp_it) {
  sh.bytes -= fp_it->second->bytes;
  sh.lru.erase(fp_it->second);
  sh.by_fp.erase(fp_it);
}

void PlanCache::EvictOver(Shard& sh) {
  while (!sh.lru.empty() &&
         ((shard_entry_budget_ != 0 && sh.lru.size() > shard_entry_budget_) ||
          (shard_byte_budget_ != 0 && sh.bytes > shard_byte_budget_))) {
    const Entry& victim = sh.lru.back();
    auto [begin, end] = sh.by_fp.equal_range(victim.fingerprint);
    for (auto it = begin; it != end; ++it) {
      if (it->second == std::prev(sh.lru.end())) {
        sh.by_fp.erase(it);
        break;
      }
    }
    sh.bytes -= victim.bytes;
    sh.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.probes = probes_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale_drops = stale_drops_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.skipped_inserts = skipped_inserts_.load(std::memory_order_relaxed);
  return s;
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    n += shards_[i].lru.size();
  }
  return n;
}

size_t PlanCache::bytes() const {
  size_t n = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    n += shards_[i].bytes;
  }
  return n;
}

}  // namespace prairie::volcano

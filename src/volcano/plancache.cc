#include "volcano/plancache.h"

#include <algorithm>
#include <bit>
#include <utility>
#include <variant>

#include "common/hash.h"

namespace prairie::volcano {

namespace {

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

double Clamp01(double f) {
  return f < 1e-9 ? 1e-9 : (f > 1.0 ? 1.0 : f);
}

/// Swaps a comparison so the attribute reads on the left: `c < attr` is
/// `attr > c`.
algebra::CmpOp MirrorOp(algebra::CmpOp op) {
  switch (op) {
    case algebra::CmpOp::kLt:
      return algebra::CmpOp::kGt;
    case algebra::CmpOp::kLe:
      return algebra::CmpOp::kGe;
    case algebra::CmpOp::kGt:
      return algebra::CmpOp::kLt;
    case algebra::CmpOp::kGe:
      return algebra::CmpOp::kLe;
    default:
      return op;
  }
}

/// True when two binding selectivities are within the guard band.
bool BandCompatible(double a, double b, double band) {
  if (band <= 0) return true;
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  return lo > 0 && hi / lo <= band;
}

/// Rebinds `values` into a plan subtree, copy-on-write: marker-free
/// subtrees are shared with the cached entry, never copied. Sets *ok false
/// on an out-of-range ordinal (the entry cannot serve this binding).
PhysNodeRef RebindNode(const PhysNodeRef& node,
                       const std::vector<algebra::Scalar>& values, bool* ok) {
  bool changed = false;
  std::vector<PhysNodeRef> kids;
  kids.reserve(node->children.size());
  for (const PhysNodeRef& c : node->children) {
    PhysNodeRef r = RebindNode(c, values, ok);
    if (!*ok) return nullptr;
    if (r.get() != c.get()) changed = true;
    kids.push_back(std::move(r));
  }
  algebra::Descriptor desc = node->desc;
  if (desc.valid()) {
    const int n = desc.schema()->size();
    for (algebra::PropertyId id = 0; id < n; ++id) {
      const algebra::Value& v = desc.Get(id);
      if (v.type() != algebra::ValueType::kPred) continue;
      algebra::PredicateRef bound = algebra::BindPredicate(v.AsPred(), values);
      if (bound == nullptr) {
        *ok = false;
        return nullptr;
      }
      if (bound.get() == v.AsPred().get()) continue;
      desc.SetUnchecked(id, algebra::Value::Pred(std::move(bound)));
      changed = true;
    }
  }
  if (!changed) return node;
  auto copy = std::make_shared<PhysNode>(*node);
  copy->desc = std::move(desc);
  copy->children = std::move(kids);
  return copy;
}

/// Rewrites a plan subtree's constants into parameter markers per
/// `matcher` (insert-time inverse of RebindNode). Same copy-on-write
/// sharing; *ok false when a constant matches no slot.
PhysNodeRef ParameterizeNode(const PhysNodeRef& node,
                             const algebra::SlotMatcher& matcher,
                             std::vector<bool>* used, bool* ok) {
  bool changed = false;
  std::vector<PhysNodeRef> kids;
  kids.reserve(node->children.size());
  for (const PhysNodeRef& c : node->children) {
    PhysNodeRef r = ParameterizeNode(c, matcher, used, ok);
    if (!*ok) return nullptr;
    if (r.get() != c.get()) changed = true;
    kids.push_back(std::move(r));
  }
  algebra::Descriptor desc = node->desc;
  if (desc.valid()) {
    const int n = desc.schema()->size();
    for (algebra::PropertyId id = 0; id < n; ++id) {
      const algebra::Value& v = desc.Get(id);
      if (v.type() != algebra::ValueType::kPred) continue;
      algebra::PredicateRef p =
          algebra::ParameterizePredicate(v.AsPred(), matcher, used, ok);
      if (!*ok) return nullptr;
      if (p.get() == v.AsPred().get()) continue;
      desc.SetUnchecked(id, algebra::Value::Pred(std::move(p)));
      changed = true;
    }
  }
  if (!changed) return node;
  auto copy = std::make_shared<PhysNode>(*node);
  copy->desc = std::move(desc);
  copy->children = std::move(kids);
  return copy;
}

}  // namespace

double ParamSelectivity(const std::vector<algebra::ParamSlot>& slots,
                        const catalog::Catalog& catalog) {
  double sel = 1.0;
  for (const algebra::ParamSlot& s : slots) {
    const double d =
        static_cast<double>(std::max<int64_t>(1, catalog.DistinctValues(s.attr)));
    const algebra::CmpOp op = s.const_on_left ? MirrorOp(s.op) : s.op;
    const int64_t* iv = std::get_if<int64_t>(&s.value.v);
    double f;
    switch (op) {
      case algebra::CmpOp::kEq:
        f = 1.0 / d;
        break;
      case algebra::CmpOp::kNe:
        f = 1.0 - 1.0 / d;
        break;
      case algebra::CmpOp::kLt:
      case algebra::CmpOp::kLe:
        // Integer domains are modeled as [0, distinct): the fraction below
        // the constant is its position in the domain.
        f = iv != nullptr ? static_cast<double>(*iv) / d : 1.0 / 3.0;
        break;
      case algebra::CmpOp::kGt:
      case algebra::CmpOp::kGe:
        f = iv != nullptr ? 1.0 - static_cast<double>(*iv) / d : 1.0 / 3.0;
        break;
      default:
        f = 1.0 / 3.0;
        break;
    }
    sel *= Clamp01(f);
  }
  return Clamp01(sel);
}

PlanCache::PlanCache(const algebra::DescriptorStore* store,
                     PlanCacheOptions options)
    : store_(store), options_(options) {
  num_shards_ = std::bit_ceil(std::max<size_t>(1, options_.shards));
  shard_entry_budget_ =
      options_.max_entries == 0
          ? 0
          : std::max<size_t>(1, options_.max_entries / num_shards_);
  shard_byte_budget_ =
      options_.max_bytes == 0
          ? 0
          : std::max<size_t>(1, options_.max_bytes / num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

PlanCache::Key PlanCache::MakeKey(const algebra::Expr& tree,
                                  algebra::DescriptorId req_id,
                                  const catalog::Catalog& catalog,
                                  algebra::DescriptorStore* store) {
  Key key;
  key.catalog_uid = catalog.uid();
  // Snapshot the epoch BEFORE walking the tree: if the catalog mutates
  // anywhere between here and Insert(), the insert is refused.
  key.epoch = catalog.version();
  AppendU64(key.catalog_uid, &key.bytes);
  AppendU64(static_cast<uint64_t>(static_cast<int64_t>(req_id)), &key.bytes);
  const uint64_t tree_hash = tree.Fingerprint(store, &key.bytes);
  uint64_t h = common::HashCombine(key.catalog_uid, tree_hash);
  h = common::HashCombine(h, static_cast<uint64_t>(static_cast<int64_t>(req_id)));
  key.fingerprint = h;
  return key;
}

size_t PlanCache::EntryBytes(const Entry& e) {
  // Approximation good enough to budget by: the key and provenance
  // strings, the list/map node overhead, the plan tree at a nominal
  // per-node footprint (PhysNode + descriptor values + child vector), and
  // — for parameterized entries — the recorded binding vector including
  // out-of-line string payloads.
  constexpr size_t kPerNode = 256;
  constexpr size_t kFixed = 160;
  const size_t plan_nodes =
      e.plan.root == nullptr
          ? 0
          : static_cast<size_t>(e.plan.root->AlgCount()) + 1;
  size_t param_bytes = e.values.size() * sizeof(algebra::Scalar);
  for (const algebra::Scalar& s : e.values) {
    if (const std::string* str = std::get_if<std::string>(&s.v)) {
      param_bytes += str->size();
    }
  }
  return kFixed + e.key_bytes.size() + e.provenance.size() +
         plan_nodes * kPerNode + param_bytes;
}

bool PlanCache::Probe(const Key& key, const catalog::Catalog& catalog,
                      Hit* hit, bool* dropped_stale) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (dropped_stale != nullptr) *dropped_stale = false;
  if (key.catalog_uid != catalog.uid()) {
    // A key built against a different catalog can never match an entry
    // for this one (the uid leads the key bytes); don't even look.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t now_version = catalog.version();
  Shard& sh = ShardFor(key.fingerprint);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto [begin, end] = sh.by_fp.equal_range(key.fingerprint);
  for (auto it = begin; it != end; ++it) {
    Entry& e = *it->second;
    if (e.key_bytes != key.bytes) continue;  // fingerprint collision
    if (e.is_param) continue;  // skeleton entries serve ProbeParam only
    if (e.epoch != now_version) {
      // Lazy epoch invalidation: the catalog mutated since this plan was
      // optimized. Drop the entry; the caller re-optimizes and re-inserts
      // under the current epoch.
      Erase(sh, it);
      stale_drops_.fetch_add(1, std::memory_order_relaxed);
      if (dropped_stale != nullptr) *dropped_stale = true;
      break;
    }
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);  // refresh recency
    hit->plan = e.plan;
    hit->provenance = e.provenance;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PlanCache::Insert(const Key& key, const catalog::Catalog& catalog,
                       const Plan& plan, std::string provenance) {
  if (key.catalog_uid != catalog.uid() || catalog.version() != key.epoch) {
    // The catalog moved (or is not the one the key was built against)
    // while this query was being optimized: the plan may reflect mixed
    // state, so it must not be served to anyone.
    skipped_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Entry entry;
  entry.key_bytes = key.bytes;
  entry.fingerprint = key.fingerprint;
  entry.epoch = key.epoch;
  entry.plan = plan;
  entry.provenance = std::move(provenance);
  entry.bytes = EntryBytes(entry);

  Shard& sh = ShardFor(key.fingerprint);
  std::lock_guard<std::mutex> lock(sh.mu);
  // Replace an equal-key entry (a racing worker optimized the same query;
  // keep the newer plan — same epoch, same answer).
  auto [begin, end] = sh.by_fp.equal_range(key.fingerprint);
  for (auto it = begin; it != end; ++it) {
    if (it->second->key_bytes == key.bytes && !it->second->is_param) {
      Erase(sh, it);
      break;
    }
  }
  sh.lru.push_front(std::move(entry));
  sh.by_fp.emplace(key.fingerprint, sh.lru.begin());
  sh.bytes += sh.lru.front().bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  EvictOver(sh);
}

bool PlanCache::ProbeParam(const Key& key, const catalog::Catalog& catalog,
                           const ParamInfo& info, Hit* hit,
                           bool* dropped_stale, bool* guard_rejected) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (dropped_stale != nullptr) *dropped_stale = false;
  if (guard_rejected != nullptr) *guard_rejected = false;
  if (key.catalog_uid != catalog.uid()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t now_version = catalog.version();
  std::vector<algebra::Scalar> values;
  values.reserve(info.slots.size());
  for (const algebra::ParamSlot& s : info.slots) values.push_back(s.value);

  bool saw_stale = false;
  bool saw_guard_reject = false;
  bool have_rebind = false;
  Plan rebind_plan;
  std::string rebind_prov;
  {
    Shard& sh = ShardFor(key.fingerprint);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto [begin, end] = sh.by_fp.equal_range(key.fingerprint);
    // Several variants may share one skeleton key (per-band plans,
    // exact-only fallbacks); scan them all. The careful iterator advance
    // keeps `it` valid across Erase (multimap erase invalidates only the
    // erased iterator).
    for (auto it = begin; it != end;) {
      auto cur = it++;
      Entry& e = *cur->second;
      if (e.key_bytes != key.bytes || !e.is_param) continue;
      if (e.epoch != now_version) {
        Erase(sh, cur);
        saw_stale = true;
        continue;
      }
      if (e.rebindable) {
        if (!BandCompatible(e.guard_est, info.guard_est,
                            options_.param_band)) {
          saw_guard_reject = true;
          continue;
        }
        sh.lru.splice(sh.lru.begin(), sh.lru, cur->second);
        rebind_plan = e.plan;
        rebind_prov = e.provenance;
        have_rebind = true;
        break;
      }
      if (e.values == values) {
        // Exact-only variant optimized for precisely this binding.
        sh.lru.splice(sh.lru.begin(), sh.lru, cur->second);
        hit->plan = e.plan;
        hit->provenance = e.provenance;
        hits_.fetch_add(1, std::memory_order_relaxed);
        param_hits_.fetch_add(1, std::memory_order_relaxed);
        if (saw_stale) {
          stale_drops_.fetch_add(1, std::memory_order_relaxed);
          if (dropped_stale != nullptr) *dropped_stale = true;
        }
        return true;
      }
    }
  }
  if (saw_stale) {
    stale_drops_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_stale != nullptr) *dropped_stale = true;
  }
  if (have_rebind) {
    // Rebind outside the shard lock: the cached tree is immutable and
    // reference-counted, so it stays valid even if the entry is evicted
    // concurrently.
    bool ok = true;
    PhysNodeRef root = RebindNode(rebind_plan.root, values, &ok);
    if (ok) {
      hit->plan = Plan{std::move(root), rebind_plan.cost};
      hit->provenance = std::move(rebind_prov);
      hits_.fetch_add(1, std::memory_order_relaxed);
      param_hits_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (saw_guard_reject) {
    sensitivity_rejects_.fetch_add(1, std::memory_order_relaxed);
    if (guard_rejected != nullptr) *guard_rejected = true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void PlanCache::InsertParam(const Key& key, const catalog::Catalog& catalog,
                            const ParamInfo& info, const Plan& plan,
                            std::string provenance) {
  if (key.catalog_uid != catalog.uid() || catalog.version() != key.epoch) {
    skipped_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Entry entry;
  entry.key_bytes = key.bytes;
  entry.fingerprint = key.fingerprint;
  entry.epoch = key.epoch;
  entry.provenance = std::move(provenance);
  entry.is_param = true;
  entry.guard_est = info.guard_est;
  entry.values.reserve(info.slots.size());
  for (const algebra::ParamSlot& s : info.slots) {
    entry.values.push_back(s.value);
  }

  // Try to put markers back into the winning plan. Only a plan whose
  // constants are all accounted for — every stripped constant attributed
  // to exactly the slot it came from, every slot's constant found — may be
  // rebound for other bindings; anything else (a rule synthesized a new
  // constant, two slots are indistinguishable, a predicate was optimized
  // away) is cached for this exact binding only. Collisions cost misses,
  // never wrong plans.
  algebra::SlotMatcher matcher(info.slots);
  bool ok = !matcher.ambiguous();
  if (ok && plan.root != nullptr) {
    std::vector<bool> used(info.slots.size(), false);
    PhysNodeRef root = ParameterizeNode(plan.root, matcher, &used, &ok);
    if (ok) {
      for (bool u : used) ok = ok && u;
      if (ok) {
        entry.plan = Plan{std::move(root), plan.cost};
        entry.rebindable = true;
      }
    }
  }
  if (!entry.rebindable) entry.plan = plan;
  entry.bytes = EntryBytes(entry);

  Shard& sh = ShardFor(key.fingerprint);
  std::lock_guard<std::mutex> lock(sh.mu);
  // Replace the variant this entry supersedes: the rebindable one within
  // the same band, or the exact-only one for the same binding. Other
  // variants stay (per-band plans accumulate under the LRU budgets).
  auto [begin, end] = sh.by_fp.equal_range(key.fingerprint);
  for (auto it = begin; it != end; ++it) {
    const Entry& e = *it->second;
    if (e.key_bytes != key.bytes || !e.is_param) continue;
    if (entry.rebindable
            ? (e.rebindable && BandCompatible(e.guard_est, entry.guard_est,
                                              options_.param_band))
            : (!e.rebindable && e.values == entry.values)) {
      Erase(sh, it);
      break;
    }
  }
  const bool rebindable = entry.rebindable;
  sh.lru.push_front(std::move(entry));
  sh.by_fp.emplace(key.fingerprint, sh.lru.begin());
  sh.bytes += sh.lru.front().bytes;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  if (rebindable) {
    param_inserts_.fetch_add(1, std::memory_order_relaxed);
  } else {
    unrebindable_inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  EvictOver(sh);
}

void PlanCache::Erase(
    Shard& sh,
    std::unordered_multimap<uint64_t, std::list<Entry>::iterator>::iterator
        fp_it) {
  sh.bytes -= fp_it->second->bytes;
  sh.lru.erase(fp_it->second);
  sh.by_fp.erase(fp_it);
}

void PlanCache::EvictOver(Shard& sh) {
  while (!sh.lru.empty() &&
         ((shard_entry_budget_ != 0 && sh.lru.size() > shard_entry_budget_) ||
          (shard_byte_budget_ != 0 && sh.bytes > shard_byte_budget_))) {
    const Entry& victim = sh.lru.back();
    auto [begin, end] = sh.by_fp.equal_range(victim.fingerprint);
    for (auto it = begin; it != end; ++it) {
      if (it->second == std::prev(sh.lru.end())) {
        sh.by_fp.erase(it);
        break;
      }
    }
    sh.bytes -= victim.bytes;
    sh.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.probes = probes_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stale_drops = stale_drops_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.skipped_inserts = skipped_inserts_.load(std::memory_order_relaxed);
  s.param_hits = param_hits_.load(std::memory_order_relaxed);
  s.param_inserts = param_inserts_.load(std::memory_order_relaxed);
  s.unrebindable_inserts =
      unrebindable_inserts_.load(std::memory_order_relaxed);
  s.sensitivity_rejects =
      sensitivity_rejects_.load(std::memory_order_relaxed);
  return s;
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    n += shards_[i].lru.size();
  }
  return n;
}

size_t PlanCache::bytes() const {
  size_t n = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    n += shards_[i].bytes;
  }
  return n;
}

}  // namespace prairie::volcano

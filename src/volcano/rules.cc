#include "volcano/rules.h"

#include <algorithm>

#include "common/strings.h"

namespace prairie::volcano {

using algebra::PropertyId;
using algebra::Value;
using algebra::ValueType;
using common::Status;

namespace {

Status CheckPattern(const algebra::Algebra& algebra,
                    const algebra::PatNode& node) {
  if (node.is_stream()) {
    if (node.stream_var <= 0 || node.desc_slot < 0) {
      return Status::RuleError("malformed stream pattern node");
    }
    return Status::OK();
  }
  if (node.op < 0 || node.op >= algebra.size()) {
    return Status::RuleError("pattern references unregistered operation");
  }
  if (static_cast<int>(node.children.size()) != algebra.arity(node.op)) {
    return Status::RuleError("pattern arity mismatch for '" +
                             algebra.name(node.op) + "'");
  }
  if (node.desc_slot < 0) {
    return Status::RuleError("pattern node without descriptor slot");
  }
  for (const algebra::PatNodePtr& c : node.children) {
    PRAIRIE_RETURN_NOT_OK(CheckPattern(algebra, *c));
  }
  return Status::OK();
}

}  // namespace

Status RuleSet::Finalize() {
  if (algebra == nullptr) return Status::RuleError("rule set has no algebra");
  const algebra::PropertySchema& schema = algebra->properties();
  if (cost_prop < 0 || cost_prop >= schema.size()) {
    return Status::RuleError("rule set '" + name +
                             "' has no cost property configured");
  }
  std::sort(phys_props.begin(), phys_props.end());
  phys_props.erase(std::unique(phys_props.begin(), phys_props.end()),
                   phys_props.end());
  for (PropertyId id : phys_props) {
    if (id < 0 || id >= schema.size()) {
      return Status::RuleError("physical property id out of range");
    }
    if (id == cost_prop) {
      return Status::RuleError("cost property cannot also be physical");
    }
  }
  std::sort(logical_props.begin(), logical_props.end());
  logical_props.erase(
      std::unique(logical_props.begin(), logical_props.end()),
      logical_props.end());
  for (PropertyId id : logical_props) {
    if (id < 0 || id >= schema.size() || id == cost_prop ||
        std::binary_search(phys_props.begin(), phys_props.end(), id)) {
      return Status::RuleError(
          "logical property id invalid or already classified");
    }
  }
  if (arg_props.empty()) {
    for (PropertyId id = 0; id < schema.size(); ++id) {
      if (id == cost_prop) continue;
      if (std::binary_search(phys_props.begin(), phys_props.end(), id)) {
        continue;
      }
      if (std::binary_search(logical_props.begin(), logical_props.end(),
                             id)) {
        continue;
      }
      arg_props.push_back(id);
    }
  }
  for (const TransRule& r : trans_rules) {
    if (r.lhs == nullptr || r.rhs == nullptr) {
      return Status::RuleError("trans_rule '" + r.name + "' missing a side");
    }
    PRAIRIE_RETURN_NOT_OK(CheckPattern(*algebra, *r.lhs)
                              .WithContext("trans_rule '" + r.name + "'"));
    PRAIRIE_RETURN_NOT_OK(CheckPattern(*algebra, *r.rhs)
                              .WithContext("trans_rule '" + r.name + "'"));
    int max_slot = std::max(r.lhs->MaxDescSlot(), r.rhs->MaxDescSlot());
    if (r.num_slots <= max_slot) {
      return Status::RuleError("trans_rule '" + r.name +
                               "': num_slots too small");
    }
  }
  for (const ImplRule& r : impl_rules) {
    if (r.op < 0 || r.op >= algebra->size() || algebra->is_algorithm(r.op)) {
      return Status::RuleError("impl_rule '" + r.name +
                               "': LHS must be an operator");
    }
    if (r.alg < 0 || r.alg >= algebra->size() ||
        !algebra->is_algorithm(r.alg)) {
      return Status::RuleError("impl_rule '" + r.name +
                               "': RHS must be an algorithm");
    }
    if (algebra->arity(r.op) != r.arity ||
        algebra->arity(r.alg) != r.arity) {
      return Status::RuleError("impl_rule '" + r.name + "': arity mismatch");
    }
    if (static_cast<int>(r.rhs_input_slots.size()) != r.arity ||
        r.alg_slot < 0 || r.alg_slot >= r.num_slots) {
      return Status::RuleError("impl_rule '" + r.name +
                               "': malformed slot layout");
    }
  }
  for (const Enforcer& e : enforcers) {
    if (e.alg < 0 || e.alg >= algebra->size() ||
        !algebra->is_algorithm(e.alg)) {
      return Status::RuleError("enforcer '" + e.name +
                               "' must name an algorithm");
    }
    if (e.prop < 0 || e.prop >= schema.size() || !IsPhysical(e.prop)) {
      return Status::RuleError("enforcer '" + e.name +
                               "' must enforce a physical property");
    }
  }
  trans_rules_by_op.assign(static_cast<size_t>(algebra->size()), {});
  impl_rules_by_op.assign(static_cast<size_t>(algebra->size()), {});
  for (size_t i = 0; i < trans_rules.size(); ++i) {
    // A bare-stream LHS root (op == -1) can never match a memo expression;
    // leaving it out of the index preserves the linear scan's behaviour.
    if (trans_rules[i].lhs->is_stream()) continue;
    trans_rules_by_op[static_cast<size_t>(trans_rules[i].lhs->op)].push_back(
        static_cast<uint32_t>(i));
  }
  for (size_t i = 0; i < impl_rules.size(); ++i) {
    impl_rules_by_op[static_cast<size_t>(impl_rules[i].op)].push_back(
        static_cast<uint32_t>(i));
  }
  return Status::OK();
}

algebra::PropertySlice RuleSet::ArgSlice() const {
  return algebra::PropertySlice{arg_props};
}

algebra::PropertySlice RuleSet::PhysSlice() const {
  return algebra::PropertySlice{phys_props};
}

bool RuleSet::IsPhysical(PropertyId id) const {
  return std::find(phys_props.begin(), phys_props.end(), id) !=
         phys_props.end();
}

std::string RuleSet::ToString() const {
  std::string out = "volcano rule set '" + name + "'\n";
  out += algebra->ToString() + "\n";
  const algebra::PropertySchema& schema = algebra->properties();
  out += "physical properties: ";
  std::vector<std::string> parts;
  for (PropertyId id : phys_props) parts.push_back(schema.decl(id).name);
  out += common::Join(parts, ", ") + "\n";
  out += "cost property: " + schema.decl(cost_prop).name + "\n\n";
  for (const TransRule& r : trans_rules) {
    out += "trans_rule " + r.name + ": " + r.lhs->ToString(*algebra) +
           " -> " + r.rhs->ToString(*algebra) + "\n";
  }
  out += "\n";
  for (const ImplRule& r : impl_rules) {
    out += "impl_rule " + r.name + ": " + algebra->name(r.op) + " -> " +
           algebra->name(r.alg) + "\n";
  }
  out += "\n";
  for (const Enforcer& e : enforcers) {
    out += "enforcer " + e.name + ": " + algebra->name(e.alg) +
           " enforces " + schema.decl(e.prop).name + "\n";
  }
  return out;
}

bool PropSatisfies(const Value& have, const Value& want) {
  if (want.is_null()) return true;
  // A DONT_CARE order requirement is satisfied by anything, including a
  // plan that reports no order at all.
  if (want.type() == ValueType::kSort && want.AsSort().is_dont_care()) {
    return true;
  }
  if (have.is_null()) return false;
  if (have.type() == ValueType::kSort && want.type() == ValueType::kSort) {
    return have.AsSort().Satisfies(want.AsSort());
  }
  return have == want;
}

}  // namespace prairie::volcano

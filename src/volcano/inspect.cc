#include "volcano/inspect.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace prairie::volcano {

using common::Status;

namespace {

// Escaping for Graphviz record labels: the record grammar gives `{}|<>`
// structure meaning, and the label itself is a double-quoted string.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
      case '\\':
      case '{':
      case '}':
      case '|':
      case '<':
      case '>':
        out += '\\';
        out += c;
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RuleNameOr(const std::vector<TransRule>& rules, int i,
                       const char* fallback) {
  if (i >= 0 && static_cast<size_t>(i) < rules.size()) return rules[i].name;
  return fallback;
}

// How a winner's plan came to be: the impl rule or enforcer recorded in its
// provenance, or the stored-file base case when neither applies.
std::string WinnerVia(const RuleSet& rules, const WinnerProv* p) {
  if (p != nullptr) {
    if (p->impl_rule >= 0 &&
        static_cast<size_t>(p->impl_rule) < rules.impl_rules.size()) {
      return rules.impl_rules[static_cast<size_t>(p->impl_rule)].name;
    }
    if (p->enforcer >= 0 &&
        static_cast<size_t>(p->enforcer) < rules.enforcers.size()) {
      return rules.enforcers[static_cast<size_t>(p->enforcer)].name;
    }
  }
  return "file";
}

std::string ExprText(const Memo& memo, const RuleSet& rules, const MExpr& m) {
  if (m.is_file) return m.file;
  std::string out = rules.algebra->name(m.op) + "(";
  std::vector<std::string> parts;
  for (GroupId c : m.children) {
    parts.push_back("g" + std::to_string(memo.Find(c)));
  }
  out += common::Join(parts, ", ") + ")";
  if (m.src_rule >= 0) {
    out += " [" + RuleNameOr(rules.trans_rules, m.src_rule, "?") + "]";
  }
  return out;
}

// Winners of one group in deterministic order (the map iterates in hash
// order, which varies run to run even for identical searches).
std::vector<const Winner*> SortedWinners(const Group& g) {
  std::vector<const Winner*> out;
  out.reserve(g.winners.size());
  for (const auto& [rid, w] : g.winners) {
    (void)rid;
    out.push_back(&w);
  }
  std::sort(out.begin(), out.end(),
            [](const Winner* a, const Winner* b) { return a->rid < b->rid; });
  return out;
}

const WinnerProv* ProvOf(const Group& g, algebra::DescriptorId rid) {
  auto it = g.prov.find(rid);
  return it == g.prov.end() ? nullptr : &it->second;
}

}  // namespace

std::string MemoToDot(const Memo& memo, const RuleSet& rules) {
  std::string out;
  out += "digraph memo {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=record, fontname=\"monospace\", fontsize=10];\n";
  std::string edges;
  // Dashed provenance edges repeat across winners of one group (several
  // requirements can pick the same child); dedupe them.
  std::set<std::tuple<GroupId, GroupId, algebra::DescriptorId>> prov_edges;
  for (size_t i = 0; i < memo.allocated_groups(); ++i) {
    const GroupId gid = static_cast<GroupId>(i);
    if (memo.Find(gid) != gid) continue;  // merged away
    const Group& g = memo.group(gid);
    std::string label = common::StringPrintf("g%d", gid);
    for (size_t e = 0; e < g.exprs.size(); ++e) {
      const MExpr& m = g.exprs[e];
      label += "|" + DotEscape(ExprText(memo, rules, m));
      for (GroupId c : m.children) {
        edges += common::StringPrintf("  g%d -> g%d [label=\"e%zu\"];\n", gid,
                                      memo.Find(c), e);
      }
    }
    for (const Winner* w : SortedWinners(g)) {
      if (w->has_plan) {
        label += "|" + DotEscape(common::StringPrintf(
                           "win d%d: %.6g via %s", w->rid, w->cost,
                           WinnerVia(rules, ProvOf(g, w->rid)).c_str()));
        if (const WinnerProv* p = ProvOf(g, w->rid)) {
          for (const auto& [cg, crid] : p->child_keys) {
            prov_edges.insert({gid, memo.Find(cg), crid});
          }
        }
      } else if (w->failed_limit >= 0) {
        label += "|" + DotEscape(common::StringPrintf(
                           "fail d%d: limit %.6g", w->rid, w->failed_limit));
      }
    }
    out += common::StringPrintf("  g%d [label=\"{%s}\"];\n", gid,
                                label.c_str());
  }
  out += edges;
  for (const auto& [from, to, rid] : prov_edges) {
    out += common::StringPrintf(
        "  g%d -> g%d [style=dashed, color=gray40, label=\"d%d\"];\n", from,
        to, rid);
  }
  out += "}\n";
  return out;
}

std::string MemoToJson(const Memo& memo, const RuleSet& rules) {
  const algebra::DescriptorStore* store = memo.store();
  std::string out;
  out += "{\n";
  out += common::StringPrintf("\"num_groups\": %zu,\n", memo.NumGroups());
  out += common::StringPrintf("\"num_exprs\": %zu,\n", memo.NumExprs());
  out += "\"groups\": [\n";
  const char* gsep = "";
  for (size_t i = 0; i < memo.allocated_groups(); ++i) {
    const GroupId gid = static_cast<GroupId>(i);
    if (memo.Find(gid) != gid) continue;  // merged away
    const Group& g = memo.group(gid);
    out += gsep;
    gsep = ",\n";
    out += common::StringPrintf(
        "{\"id\": %d, \"stream_desc\": %d, \"expanded\": %s,\n", gid,
        g.stream_desc, g.expanded ? "true" : "false");
    out += " \"exprs\": [";
    const char* esep = "";
    for (const MExpr& m : g.exprs) {
      out += esep;
      esep = ", ";
      if (m.is_file) {
        out += common::StringPrintf("{\"file\": \"%s\", \"args\": %d}",
                                    common::JsonEscape(m.file).c_str(),
                                    m.args);
        continue;
      }
      out += common::StringPrintf(
          "{\"op\": \"%s\", \"children\": [",
          common::JsonEscape(rules.algebra->name(m.op)).c_str());
      const char* csep = "";
      for (GroupId c : m.children) {
        out += common::StringPrintf("%s%d", csep, memo.Find(c));
        csep = ", ";
      }
      out += common::StringPrintf("], \"args\": %d, \"arg_key\": %d", m.args,
                                  m.arg_key);
      if (m.src_rule >= 0) {
        out += common::StringPrintf(
            ", \"src_rule\": \"%s\"",
            common::JsonEscape(
                RuleNameOr(rules.trans_rules, m.src_rule, "?"))
                .c_str());
      }
      out += "}";
    }
    out += "],\n \"winners\": [";
    const char* wsep = "";
    for (const Winner* w : SortedWinners(g)) {
      out += wsep;
      wsep = ", ";
      out += common::StringPrintf("{\"req\": %d", w->rid);
      if (w->rid >= 0) {
        out += common::StringPrintf(
            ", \"req_desc\": \"%s\"",
            common::JsonEscape(store->Get(w->rid).ToString()).c_str());
      }
      if (w->has_plan) {
        const WinnerProv* p = ProvOf(g, w->rid);
        out += common::StringPrintf(
            ", \"cost\": %.17g, \"via\": \"%s\"", w->cost,
            common::JsonEscape(WinnerVia(rules, p)).c_str());
        if (p != nullptr && !p->child_keys.empty()) {
          out += ", \"children\": [";
          const char* ksep = "";
          for (const auto& [cg, crid] : p->child_keys) {
            out += common::StringPrintf("%s[%d, %d]", ksep, memo.Find(cg),
                                        crid);
            ksep = ", ";
          }
          out += "]";
        }
      } else if (w->failed_limit >= 0) {
        out += common::StringPrintf(", \"failed_limit\": %.17g",
                                    w->failed_limit);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "\n]\n}\n";
  return out;
}

Status WriteMemoDump(const std::string& path, const Memo& memo,
                     const RuleSet& rules) {
  std::string body;
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".dot") == 0) {
    body = MemoToDot(memo, rules);
  } else if (path.size() >= 5 &&
             path.compare(path.size() - 5, 5, ".json") == 0) {
    body = MemoToJson(memo, rules);
  } else {
    return Status::InvalidArgument(
        "memo dump path must end in .dot or .json: '" + path + "'");
  }
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    return Status::ExecError("cannot open memo dump file '" + path + "'");
  }
  out << body;
  out.close();
  if (!out) {
    return Status::ExecError("error writing memo dump file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace prairie::volcano

// Intra-query parallel search over one concurrent memo.
//
// OptimizeParallel runs three phases on a work-stealing pool:
//
//   A. Transformation closure. Rounds: collect every live group that is
//      not yet expanded, submit one ExpandGroup task per group, run the
//      pool to quiescence. Workers claim whole group expansions through
//      the group's atomic `expanding` flag; a pass that had to read a
//      child mid-expansion in another worker leaves its applied bits
//      clear and does not mark the group expanded, so the next round
//      redoes exactly the missed work. A round that expands nothing —
//      mutually-partial passes across a cycle of groups — falls back to
//      one serial sweep on the coordinator, whose own recursion walks
//      through the cycle; that guarantees termination.
//
//   B. Costing sweep. One task per group: optimize it under the empty
//      requirement with no cost bound. Expansion is complete, so this
//      phase is insert- and merge-free — winner tables only gain entries,
//      and racing workers agree through first-writer-wins StoreWinner.
//
//   C. Serial finishing pass. The coordinator optimizes the root under
//      the real requirement and initial cost limit. Phase B's memoized
//      winners make this mostly table lookups, but correctness never
//      depends on what the waves managed to memoize.
//
// Worker optimizers BORROW the coordinator's memo (and thus its
// descriptor store): ids stay canonical across threads, while search
// state (cycle guards, stats, expansion stacks) stays private.

#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/workpool.h"
#include "volcano/engine.h"

namespace prairie::volcano {

using algebra::Descriptor;
using common::Result;
using common::Status;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Folds a worker's numeric search counters into the coordinator's stats.
/// Interning counters are left alone: the coordinator's store-delta
/// snapshot already covers worker traffic on the shared store.
void MergeStats(const OptimizerStats& w, OptimizerStats* out) {
  out->trans_attempts += w.trans_attempts;
  out->trans_fired += w.trans_fired;
  out->impl_attempts += w.impl_attempts;
  out->plans_costed += w.plans_costed;
  out->enforcer_attempts += w.enforcer_attempts;
  out->winners_selected += w.winners_selected;
  out->prunes += w.prunes;
  out->cycle_guard_hits += w.cycle_guard_hits;
  out->budget_exhausted = out->budget_exhausted || w.budget_exhausted;
  for (size_t i = 0;
       i < w.trans_matched.size() && i < out->trans_matched.size(); ++i) {
    out->trans_matched[i] |= w.trans_matched[i];
  }
  for (size_t i = 0;
       i < w.impl_matched.size() && i < out->impl_matched.size(); ++i) {
    out->impl_matched[i] |= w.impl_matched[i];
  }
}

}  // namespace

int Optimizer::ResolveSearchJobs() const {
  // A serial memo cannot take concurrent inserts, whatever was asked for
  // (the constructor degrades the mode when a serial store is shared).
  if (!concurrent_memo_) return 1;
  int jobs = options_.search_jobs;
  if (jobs <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return jobs < 1 ? 1 : jobs;
}

Result<Winner> Optimizer::OptimizeParallel(GroupId root,
                                           const Descriptor& req) {
  const int jobs = ResolveSearchJobs();
  common::WorkPool pool(jobs);

  // Metrics, tracing, and the plan cache stay on the coordinator; workers
  // run bare and their counters are folded in afterwards.
  OptimizerOptions wopts = options_;
  wopts.search_jobs = 1;
  wopts.metrics = nullptr;
  wopts.trace = nullptr;
  wopts.plan_cache = nullptr;
  std::vector<std::unique_ptr<Optimizer>> workers;
  workers.reserve(static_cast<size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    workers.push_back(std::make_unique<Optimizer>(rules_, catalog_, wopts,
                                                  nullptr, memo_));
    // Workers run under the query's budget, not one armed at their own
    // construction time.
    workers.back()->has_budget_ = has_budget_;
    workers.back()->deadline_ns_ = deadline_ns_;
    workers.back()->group_budget_ = group_budget_;
  }

  Status failure = Status::OK();
  std::mutex failure_mu;
  const auto record_failure = [&failure, &failure_mu](Status st) {
    std::lock_guard<std::mutex> lock(failure_mu);
    if (failure.ok()) failure = std::move(st);
  };
  const auto merge_worker_stats = [this, &workers]() {
    for (const std::unique_ptr<Optimizer>& w : workers) {
      MergeStats(w->stats_, &stats_);
    }
  };

  // Phase A: transformation closure.
  std::vector<GroupId> todo;
  for (;;) {
    todo.clear();
    const size_t before = memo_->allocated_groups();
    for (size_t g = 0; g < before; ++g) {
      const GroupId gid = static_cast<GroupId>(g);
      if (memo_->Find(gid) != gid) continue;
      if (!memo_->raw_group(gid).expanded.load(std::memory_order_acquire)) {
        todo.push_back(gid);
      }
    }
    if (todo.empty()) break;
    if (BudgetExhausted()) {
      // Anytime budget: freeze the remaining groups so costing proceeds
      // over whatever alternatives exist.
      for (GroupId gid : todo) {
        memo_->group(gid).expanded.store(true, std::memory_order_release);
      }
      break;
    }
    for (GroupId gid : todo) {
      pool.Submit([&workers, &record_failure, gid](int wid) {
        Status st = workers[static_cast<size_t>(wid)]->ExpandGroup(gid);
        if (!st.ok()) record_failure(std::move(st));
      });
    }
    pool.RunUntilIdle();
    if (!failure.ok()) {
      merge_worker_stats();
      return failure;
    }
    bool progressed = memo_->allocated_groups() > before;
    for (size_t i = 0; !progressed && i < todo.size(); ++i) {
      const GroupId gid = todo[i];
      progressed = memo_->Find(gid) != gid ||
                   memo_->raw_group(gid).expanded.load(
                       std::memory_order_acquire);
    }
    if (!progressed) {
      // Stuck round: expand serially on the coordinator (the pool is
      // idle, so every claim succeeds and recursion resolves the cycle).
      for (GroupId gid : todo) {
        Status st = ExpandGroup(gid);
        if (!st.ok()) {
          merge_worker_stats();
          return st;
        }
      }
    }
  }

  // Phase B: costing sweep under the empty requirement.
  const Descriptor none = MakeReq();
  const size_t live = memo_->allocated_groups();
  for (size_t g = 0; g < live; ++g) {
    const GroupId gid = static_cast<GroupId>(g);
    if (memo_->Find(gid) != gid) continue;
    pool.Submit([&workers, &record_failure, &none, gid](int wid) {
      Result<Winner> w =
          workers[static_cast<size_t>(wid)]->OptimizeGroup(gid, none, kInf);
      if (!w.ok()) record_failure(w.status());
    });
  }
  pool.RunUntilIdle();
  merge_worker_stats();
  if (!failure.ok()) return failure;

  // Phase C: serial finishing pass on the coordinator.
  return OptimizeGroup(root, req, options_.initial_cost_limit);
}

}  // namespace prairie::volcano

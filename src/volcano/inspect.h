// Memo search-space inspector (observability): dump a finished memo.
//
// The memo is the optimizer's whole search state — equivalence classes,
// the multi-expressions each class holds, the per-requirement winners and
// (since the provenance work) the rule edges that explain why each
// expression and winner exists. This header renders that structure in two
// offline formats:
//
//   - Graphviz DOT: one record node per live group listing its
//     multi-expressions and winners; solid edges for expression -> child
//     group references, dashed edges for winner provenance (the optimized
//     child the chosen plan consumed). `dot -Tsvg` turns a Q1 memo into a
//     picture of the search space.
//   - JSON: the same structure as data (one document), for scripted
//     assertions and diffing across optimizer changes.
//
// Both renderers canonicalize through Memo::Find: merged-away groups are
// skipped entirely and every child/provenance reference resolves to the
// live representative, so a dump taken after merges never names a dead
// group. Output is deterministic for a deterministic search (groups in
// allocation order, winners sorted by interned requirement id).

#pragma once

#include <string>

#include "common/status.h"
#include "volcano/memo.h"

namespace prairie::volcano {

/// \brief Renders the memo as a Graphviz DOT digraph (see file comment).
std::string MemoToDot(const Memo& memo, const RuleSet& rules);

/// \brief Renders the memo as one JSON document (see file comment).
std::string MemoToJson(const Memo& memo, const RuleSet& rules);

/// \brief Writes the memo dump to `path`, picking the format from the
/// extension: `.dot` -> DOT, `.json` -> JSON. Any other extension is an
/// InvalidArgument.
common::Status WriteMemoDump(const std::string& path, const Memo& memo,
                             const RuleSet& rules);

}  // namespace prairie::volcano

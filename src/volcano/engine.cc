#include "volcano/engine.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace prairie::volcano {

using algebra::Descriptor;
using algebra::PatNode;
using algebra::PropertyId;
using algebra::Value;
using common::Result;
using common::Status;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

size_t OptimizerStats::NumTransMatched() const {
  size_t n = 0;
  for (char c : trans_matched) n += (c != 0);
  return n;
}

size_t OptimizerStats::NumImplMatched() const {
  size_t n = 0;
  for (char c : impl_matched) n += (c != 0);
  return n;
}

double OptimizerStats::InternHitRate() const {
  return desc_lookups == 0 ? 0.0
                           : static_cast<double>(desc_hits) /
                                 static_cast<double>(desc_lookups);
}

Optimizer::Optimizer(const RuleSet* rules, const catalog::Catalog* catalog,
                     OptimizerOptions options,
                     algebra::DescriptorStore* shared_store)
    : rules_(rules),
      catalog_(catalog),
      options_(options),
      memo_(rules, options.memo_limits, shared_store),
      phys_slice_id_(memo_.store()->RegisterSlice(rules->PhysSlice())) {
  stats_.trans_matched.assign(rules_->trans_rules.size(), 0);
  stats_.impl_matched.assign(rules_->impl_rules.size(), 0);
}

const std::vector<uint32_t>* Optimizer::TransRulesFor(
    algebra::OpId op) const {
  if (!options_.use_dispatch_index || op < 0 ||
      static_cast<size_t>(op) >= rules_->trans_rules_by_op.size()) {
    return nullptr;
  }
  return &rules_->trans_rules_by_op[static_cast<size_t>(op)];
}

const std::vector<uint32_t>* Optimizer::ImplRulesFor(algebra::OpId op) const {
  if (!options_.use_dispatch_index || op < 0 ||
      static_cast<size_t>(op) >= rules_->impl_rules_by_op.size()) {
    return nullptr;
  }
  return &rules_->impl_rules_by_op[static_cast<size_t>(op)];
}

Descriptor Optimizer::MakeReq() const {
  return Descriptor(&rules_->algebra->properties());
}

algebra::DescriptorId Optimizer::ReqId(const Descriptor& req) {
  return memo_.store()->InternProjected(phys_slice_id_, req);
}

BindingView Optimizer::MakeBinding(int num_slots) {
  BindingView bv;
  bv.slots.assign(static_cast<size_t>(num_slots),
                  Descriptor(&rules_->algebra->properties()));
  bv.algebra = rules_->algebra.get();
  bv.catalog = catalog_;
  bv.store = memo_.store();
  return bv;
}

void Optimizer::RecordStoreStats() {
  const algebra::DescriptorStore* store = memo_.store();
  stats_.desc_interned = store->size();
  stats_.desc_lookups = store->lookups();
  stats_.desc_hits = store->hits();
}

Result<Plan> Optimizer::Optimize(const algebra::Expr& tree,
                                 const Descriptor& required) {
  PRAIRIE_ASSIGN_OR_RETURN(GroupId root, memo_.CopyIn(tree));
  Descriptor req = MakeReq();
  if (required.valid()) {
    for (PropertyId id : rules_->phys_props) {
      req.SetUnchecked(id, required.Get(id));
    }
  }
  PRAIRIE_ASSIGN_OR_RETURN(
      Winner w, OptimizeGroup(root, req, options_.initial_cost_limit));
  stats_.groups = memo_.NumGroups();
  stats_.mexprs = memo_.NumExprs();
  RecordStoreStats();
  if (!w.has_plan) {
    return Status::OptimizeError(
        "no access plan found for '" + tree.ToString(*rules_->algebra) +
        "' under the given requirements");
  }
  return Plan{w.plan, w.cost};
}

Result<Plan> Optimizer::Optimize(const algebra::Expr& tree) {
  return Optimize(tree, MakeReq());
}

Result<size_t> Optimizer::ExpandOnly(const algebra::Expr& tree) {
  PRAIRIE_ASSIGN_OR_RETURN(GroupId root, memo_.CopyIn(tree));
  PRAIRIE_RETURN_NOT_OK(ExpandGroup(root));
  // Expand every group that became reachable so the count reflects the
  // full logical search space.
  for (size_t changed = 1; changed != 0;) {
    changed = 0;
    for (size_t g = 0; g < memo_.allocated_groups(); ++g) {
      GroupId rep = memo_.Find(static_cast<GroupId>(g));
      if (rep != static_cast<GroupId>(g)) continue;
      if (!memo_.group(rep).expanded && !memo_.group(rep).expanding) {
        PRAIRIE_RETURN_NOT_OK(ExpandGroup(rep));
        ++changed;
      }
    }
  }
  stats_.groups = memo_.NumGroups();
  stats_.mexprs = memo_.NumExprs();
  RecordStoreStats();
  return stats_.groups;
}

// ---------------------------------------------------------------------------
// Transformation phase
// ---------------------------------------------------------------------------

Status Optimizer::ExpandGroup(GroupId gid) {
  gid = memo_.Find(gid);
  {
    Group& grp = memo_.group(gid);
    if (grp.expanded || grp.expanding) return Status::OK();
    grp.expanding = true;
  }
  Status st = Status::OK();
  bool restart = true;
  while (restart && st.ok()) {
    restart = false;
    for (size_t ei = 0; st.ok(); ++ei) {
      gid = memo_.Find(gid);
      Group* grp = &memo_.group(gid);
      if (ei >= grp->exprs.size()) break;
      if (grp->exprs[ei].is_file) continue;
      // Only rules whose LHS root is this expression's operator can match;
      // the dispatch index skips the rest of the rule vector. (An
      // expression's operator never changes in place — merges that move
      // expressions abort the pass through epoch_changed below.)
      const std::vector<uint32_t>* indexed = TransRulesFor(grp->exprs[ei].op);
      const size_t num_rules =
          indexed != nullptr ? indexed->size() : rules_->trans_rules.size();
      for (size_t k = 0; k < num_rules && st.ok(); ++k) {
        const size_t ri = indexed != nullptr ? (*indexed)[k] : k;
        gid = memo_.Find(gid);
        grp = &memo_.group(gid);
        if (ei >= grp->exprs.size()) break;
        if (grp->exprs[ei].applied.Test(static_cast<int>(ri))) continue;
        bool epoch_changed = false;
        st = ApplyTransRule(gid, ei, ri, &epoch_changed);
        if (!st.ok()) break;
        if (epoch_changed) {
          // Groups merged under us: expression indices moved. Restart the
          // pass; the applied bitset keeps finished work cheap to skip.
          restart = true;
          break;
        }
        gid = memo_.Find(gid);
        grp = &memo_.group(gid);
        if (ei < grp->exprs.size()) {
          grp->exprs[ei].applied.Set(static_cast<int>(ri));
        }
      }
      if (restart) break;
    }
  }
  gid = memo_.Find(gid);
  Group& grp = memo_.group(gid);
  grp.expanding = false;
  if (st.ok()) grp.expanded = true;
  return st;
}

Status Optimizer::ApplyTransRule(GroupId gid, size_t expr_idx,
                                 size_t rule_idx, bool* epoch_changed) {
  const TransRule& rule = rules_->trans_rules[rule_idx];
  uint64_t epoch = memo_.merge_epoch();
  const MExpr& m = memo_.group(gid).exprs[expr_idx];
  if (m.is_file || rule.lhs->op != m.op) return Status::OK();

  MatchBinding binding;
  binding.streams.assign(
      static_cast<size_t>(std::max(rule.lhs->MaxStreamVar(), 1)),
      std::make_pair(-1, -1));
  bool aborted = false;
  auto emit = [&]() -> Status {
    return FireBinding(gid, rule, rule_idx, binding);
  };
  PRAIRIE_RETURN_NOT_OK(EnumerateBindings(*rule.lhs, gid,
                                          static_cast<int>(expr_idx),
                                          &binding, emit, &aborted, epoch));
  *epoch_changed = aborted || memo_.merge_epoch() != epoch;
  return Status::OK();
}

Status Optimizer::EnumerateBindings(const PatNode& pat, GroupId gid,
                                    int expr_idx, MatchBinding* binding,
                                    EmitFn emit, bool* aborted,
                                    uint64_t epoch) {
  // Binds pattern node `pat` (known to be kOp) to expression `expr_idx` of
  // group `gid`, then matches its children.
  gid = memo_.Find(gid);
  const Group& grp = memo_.group(gid);
  if (expr_idx >= static_cast<int>(grp.exprs.size())) return Status::OK();
  const MExpr& m = grp.exprs[static_cast<size_t>(expr_idx)];
  if (m.is_file || m.op != pat.op) return Status::OK();
  binding->op_nodes.emplace_back(pat.desc_slot, std::make_pair(gid, expr_idx));
  std::vector<GroupId> child_groups = m.children;  // Copy: vector may move.
  Status st =
      MatchChildren(pat, child_groups, 0, binding, emit, aborted, epoch);
  binding->op_nodes.pop_back();
  return st;
}

Status Optimizer::MatchChildren(const PatNode& pat,
                                const std::vector<GroupId>& child_groups,
                                size_t k, MatchBinding* binding, EmitFn emit,
                                bool* aborted, uint64_t epoch) {
  if (*aborted) return Status::OK();
  if (memo_.merge_epoch() != epoch) {
    *aborted = true;
    return Status::OK();
  }
  if (k == pat.children.size()) return emit();
  const PatNode& cp = *pat.children[k];
  GroupId cg = memo_.Find(child_groups[k]);
  if (cp.is_stream()) {
    binding->streams[static_cast<size_t>(cp.stream_var - 1)] =
        std::make_pair(cg, cp.desc_slot);
    return MatchChildren(pat, child_groups, k + 1, binding, emit, aborted,
                         epoch);
  }
  // Descend into the child group: it must be expanded for completeness.
  PRAIRIE_RETURN_NOT_OK(ExpandGroup(cg));
  if (memo_.merge_epoch() != epoch) {
    *aborted = true;
    return Status::OK();
  }
  cg = memo_.Find(cg);
  for (int ci = 0;; ++ci) {
    if (*aborted) return Status::OK();
    GroupId rep = memo_.Find(cg);
    const Group& cgrp = memo_.group(rep);
    if (ci >= static_cast<int>(cgrp.exprs.size())) break;
    auto next = [&]() -> Status {
      return MatchChildren(pat, child_groups, k + 1, binding, emit, aborted,
                           epoch);
    };
    PRAIRIE_RETURN_NOT_OK(
        EnumerateBindings(cp, rep, ci, binding, next, aborted, epoch));
  }
  return Status::OK();
}

Status Optimizer::FireBinding(GroupId gid, const TransRule& rule,
                              size_t rule_idx, const MatchBinding& binding) {
  ++stats_.trans_attempts;
  BindingView bv = MakeBinding(rule.num_slots);
  bv.streams.assign(binding.streams.size(), -1);
  const algebra::DescriptorStore* store = memo_.store();
  for (size_t v = 0; v < binding.streams.size(); ++v) {
    auto [g, slot] = binding.streams[v];
    if (g < 0) continue;
    bv.streams[v] = g;
    if (slot >= 0) bv.slots[static_cast<size_t>(slot)] =
        store->Get(memo_.group(g).stream_desc);
  }
  for (const auto& [slot, loc] : binding.op_nodes) {
    const Group& grp = memo_.group(loc.first);
    if (loc.second >= static_cast<int>(grp.exprs.size())) {
      return Status::OK();  // Expression moved by a merge; binding is stale.
    }
    bv.slots[static_cast<size_t>(slot)] =
        store->Get(grp.exprs[static_cast<size_t>(loc.second)].args);
  }
  if (rule.condition != nullptr) {
    PRAIRIE_ASSIGN_OR_RETURN(bool ok, rule.condition(bv));
    if (!ok) return Status::OK();
  }
  stats_.trans_matched[rule_idx] = 1;
  if (rule.apply != nullptr) {
    PRAIRIE_RETURN_NOT_OK(rule.apply(bv));
  }
  // Build the RHS children first, then insert the new root into `gid`.
  const PatNode& root = *rule.rhs;
  if (root.is_stream()) {
    return Status::RuleError("trans_rule '" + rule.name +
                             "' rewrites to a bare stream");
  }
  MExpr m;
  m.op = root.op;
  m.args = memo_.store()->Intern(bv.slots[static_cast<size_t>(root.desc_slot)]);
  m.children.reserve(root.children.size());
  for (const algebra::PatNodePtr& c : root.children) {
    PRAIRIE_ASSIGN_OR_RETURN(GroupId cg, BuildRhs(*c, &bv));
    m.children.push_back(cg);
  }
  PRAIRIE_ASSIGN_OR_RETURN(bool added, memo_.InsertInto(gid, std::move(m)));
  if (added) ++stats_.trans_fired;
  return Status::OK();
}

Result<GroupId> Optimizer::BuildRhs(const PatNode& node, BindingView* bv) {
  if (node.is_stream()) {
    GroupId g = bv->streams[static_cast<size_t>(node.stream_var - 1)];
    if (g < 0) {
      return Status::RuleError("RHS stream variable ?" +
                               std::to_string(node.stream_var) +
                               " was not bound by the LHS");
    }
    return memo_.Find(g);
  }
  MExpr m;
  m.op = node.op;
  m.args =
      memo_.store()->Intern(bv->slots[static_cast<size_t>(node.desc_slot)]);
  m.children.reserve(node.children.size());
  for (const algebra::PatNodePtr& c : node.children) {
    PRAIRIE_ASSIGN_OR_RETURN(GroupId cg, BuildRhs(*c, bv));
    m.children.push_back(cg);
  }
  const algebra::DescriptorId desc = m.args;
  return memo_.GetOrCreateGroup(std::move(m), desc);
}

// ---------------------------------------------------------------------------
// Implementation phase
// ---------------------------------------------------------------------------

Result<Winner> Optimizer::OptimizeGroup(GroupId gid, const Descriptor& req,
                                        double limit) {
  gid = memo_.Find(gid);
  // Interned requirement id: id equality <=> requirement equality, so the
  // winner lookup needs no collision re-check against a stored descriptor.
  const algebra::DescriptorId rid = ReqId(req);
  {
    Group& grp = memo_.group(gid);
    auto it = grp.winners.find(rid);
    if (it != grp.winners.end()) {
      const Winner& w = it->second;
      if (w.has_plan) return w;
      if (w.failed_limit >= 0 && limit <= w.failed_limit) return w;
    }
  }
  // Exact-pair key: a mixed 64-bit hash could collide two distinct
  // (group, requirement) pairs and prune a feasible branch as "cyclic".
  const std::pair<GroupId, algebra::DescriptorId> progress_key(gid, rid);
  if (in_progress_.count(progress_key) > 0) {
    // Cyclic requirement path: infeasible along this branch; do not cache.
    return Winner{};
  }
  in_progress_.insert(progress_key);

  Status st = ExpandGroup(gid);
  if (!st.ok()) {
    in_progress_.erase(progress_key);
    return st;
  }
  gid = memo_.Find(gid);

  Winner best;
  double budget = options_.prune ? limit : kInf;
  bool limit_failure = false;

  for (size_t ei = 0;; ++ei) {
    GroupId rep = memo_.Find(gid);
    Group& grp = memo_.group(rep);
    if (ei >= grp.exprs.size()) break;
    if (grp.exprs[ei].is_file) {
      // A stored file is a zero-cost source; RET-class algorithms read it
      // directly, so any requirement is trivially satisfied here.
      if (!best.has_plan || best.cost > 0) {
        best.has_plan = true;
        best.cost = 0;
        best.plan = PhysNode::File(grp.exprs[ei].file,
                                   memo_.store()->Get(grp.stream_desc));
        budget = std::min(budget, 0.0);
      }
      continue;
    }
    // Copy: recursive OptimizeGroup calls may grow or merge groups and
    // invalidate references into exprs.
    const MExpr m = grp.exprs[ei];
    const std::vector<uint32_t>* indexed = ImplRulesFor(m.op);
    const size_t num_rules =
        indexed != nullptr ? indexed->size() : rules_->impl_rules.size();
    for (size_t k = 0; k < num_rules; ++k) {
      const size_t ri = indexed != nullptr ? (*indexed)[k] : k;
      const ImplRule& rule = rules_->impl_rules[ri];
      if (rule.op != m.op) continue;
      st = TryImplRule(m, rule, ri, req, &budget, &best, &limit_failure);
      if (!st.ok()) {
        in_progress_.erase(progress_key);
        return st;
      }
    }
  }

  for (const Enforcer& enf : rules_->enforcers) {
    const Value& want = req.Get(enf.prop);
    if (want.is_null()) continue;
    if (want.type() == algebra::ValueType::kSort &&
        want.AsSort().is_dont_care()) {
      continue;
    }
    if (enf.applicable != nullptr && !enf.applicable(want)) continue;
    st = TryEnforcer(gid, enf, req, &budget, &best, &limit_failure);
    if (!st.ok()) {
      in_progress_.erase(progress_key);
      return st;
    }
  }

  in_progress_.erase(progress_key);
  gid = memo_.Find(gid);
  Group& grp = memo_.group(gid);
  Winner& slot = grp.winners[rid];
  if (best.has_plan) {
    slot = best;
  } else {
    slot.has_plan = false;
    // Only a limit-induced failure is worth retrying with a larger budget.
    slot.failed_limit =
        limit_failure ? limit : std::numeric_limits<double>::max();
  }
  return slot;
}

Status Optimizer::TryImplRule(const MExpr& m, const ImplRule& rule,
                              size_t rule_idx, const Descriptor& req,
                              double* budget, Winner* best,
                              bool* limit_failure) {
  ++stats_.impl_attempts;
  const algebra::PropertySchema& schema = rules_->algebra->properties();
  BindingView bv = MakeBinding(rule.num_slots);
  // Bind LHS input descriptors to the child groups' stream descriptors
  // (copied out of the store: rule actions mutate their slots freely).
  for (int i = 0; i < rule.arity; ++i) {
    bv.slots[static_cast<size_t>(i)] = memo_.store()->Get(
        memo_.group(m.children[static_cast<size_t>(i)]).stream_desc);
  }
  // The operator descriptor carries the requirement (top-down propagation).
  Descriptor op_desc = memo_.store()->Get(m.args);
  for (PropertyId id : rules_->phys_props) {
    const Value& v = req.Get(id);
    if (!v.is_null()) op_desc.SetUnchecked(id, v);
  }
  bv.slots[static_cast<size_t>(rule.op_slot())] = op_desc;

  if (rule.condition != nullptr) {
    PRAIRIE_ASSIGN_OR_RETURN(bool ok, rule.condition(bv));
    if (!ok) return Status::OK();
  }
  stats_.impl_matched[rule_idx] = 1;
  if (rule.pre_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(rule.pre_opt(bv).WithContext(
        "impl_rule '" + rule.name + "' pre-opt"));
  }

  // Optimize the inputs under the requirements the pre-opt section pushed
  // onto the RHS input descriptors.
  std::vector<PhysNodeRef> kids;
  kids.reserve(static_cast<size_t>(rule.arity));
  double child_sum = 0;
  for (int i = 0; i < rule.arity; ++i) {
    int rslot = rule.rhs_input_slots[static_cast<size_t>(i)];
    Descriptor child_req(&schema);
    for (PropertyId id : rules_->phys_props) {
      child_req.SetUnchecked(id, bv.slots[static_cast<size_t>(rslot)].Get(id));
    }
    double child_limit =
        options_.prune ? (*budget - child_sum) : kInf;
    if (options_.prune && child_limit < 0) {
      *limit_failure = true;
      return Status::OK();
    }
    PRAIRIE_ASSIGN_OR_RETURN(
        Winner w, OptimizeGroup(m.children[static_cast<size_t>(i)], child_req,
                                child_limit));
    if (!w.has_plan) {
      if (w.failed_limit >= 0 &&
          w.failed_limit < std::numeric_limits<double>::max()) {
        *limit_failure = true;
      }
      return Status::OK();
    }
    child_sum += w.cost;
    if (options_.prune && child_sum > *budget) {
      *limit_failure = true;
      return Status::OK();
    }
    // Report the input's optimized cost and delivered physical properties
    // back into its RHS descriptor for the post-opt section.
    Descriptor& rd = bv.slots[static_cast<size_t>(rslot)];
    rd.SetUnchecked(rules_->cost_prop, Value::Real(w.cost));
    for (PropertyId id : rules_->phys_props) {
      const Value& delivered = w.plan->desc.Get(id);
      if (!delivered.is_null()) rd.SetUnchecked(id, delivered);
    }
    kids.push_back(w.plan);
  }

  if (rule.post_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(rule.post_opt(bv).WithContext(
        "impl_rule '" + rule.name + "' post-opt"));
  }
  ++stats_.plans_costed;

  Descriptor& alg_desc = bv.slots[static_cast<size_t>(rule.alg_slot)];
  const Value& cost_value = alg_desc.Get(rules_->cost_prop);
  if (cost_value.is_null()) {
    return Status::RuleError("impl_rule '" + rule.name +
                             "' did not assign a cost");
  }
  PRAIRIE_ASSIGN_OR_RETURN(double total, cost_value.ToReal());

  // The produced plan must deliver the required physical properties.
  for (PropertyId id : rules_->phys_props) {
    if (!PropSatisfies(alg_desc.Get(id), req.Get(id))) return Status::OK();
  }
  if (options_.prune && total > *budget) {
    *limit_failure = true;
    return Status::OK();
  }
  if (!best->has_plan || total < best->cost) {
    best->has_plan = true;
    best->cost = total;
    best->plan = PhysNode::Alg(rule.alg, alg_desc, total, std::move(kids));
    best->failed_limit = -1;
    *budget = std::min(*budget, total);
  }
  return Status::OK();
}

Status Optimizer::TryEnforcer(GroupId gid, const Enforcer& enf,
                              const Descriptor& req, double* budget,
                              Winner* best, bool* limit_failure) {
  ++stats_.enforcer_attempts;
  Descriptor relaxed = req;
  relaxed.SetUnchecked(enf.prop, Value::Null());
  double child_limit = options_.prune ? *budget : kInf;
  PRAIRIE_ASSIGN_OR_RETURN(Winner w,
                           OptimizeGroup(gid, relaxed, child_limit));
  if (!w.has_plan) {
    if (w.failed_limit >= 0 &&
        w.failed_limit < std::numeric_limits<double>::max()) {
      *limit_failure = true;
    }
    return Status::OK();
  }

  BindingView bv = MakeBinding(Enforcer::kNumSlots);
  gid = memo_.Find(gid);
  // Copy the stream descriptor out of the store (slots are mutable).
  Descriptor input = memo_.store()->Get(memo_.group(gid).stream_desc);
  input.SetUnchecked(rules_->cost_prop, Value::Real(w.cost));
  for (PropertyId id : rules_->phys_props) {
    const Value& delivered = w.plan->desc.Get(id);
    if (!delivered.is_null()) input.SetUnchecked(id, delivered);
  }
  bv.slots[Enforcer::kInputSlot] = input;
  Descriptor op_desc = memo_.store()->Get(memo_.group(gid).stream_desc);
  for (PropertyId id : rules_->phys_props) {
    const Value& v = req.Get(id);
    if (!v.is_null()) op_desc.SetUnchecked(id, v);
  }
  bv.slots[Enforcer::kOpSlot] = op_desc;

  if (enf.condition != nullptr) {
    PRAIRIE_ASSIGN_OR_RETURN(bool ok, enf.condition(bv));
    if (!ok) return Status::OK();
  }
  if (enf.pre_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(
        enf.pre_opt(bv).WithContext("enforcer '" + enf.name + "' pre-opt"));
  }
  if (enf.post_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(
        enf.post_opt(bv).WithContext("enforcer '" + enf.name + "' post-opt"));
  }
  Descriptor& alg_desc = bv.slots[Enforcer::kAlgSlot];
  const Value& cost_value = alg_desc.Get(rules_->cost_prop);
  if (cost_value.is_null()) {
    return Status::RuleError("enforcer '" + enf.name +
                             "' did not assign a cost");
  }
  PRAIRIE_ASSIGN_OR_RETURN(double total, cost_value.ToReal());
  for (PropertyId id : rules_->phys_props) {
    if (!PropSatisfies(alg_desc.Get(id), req.Get(id))) return Status::OK();
  }
  if (options_.prune && total > *budget) {
    *limit_failure = true;
    return Status::OK();
  }
  if (!best->has_plan || total < best->cost) {
    best->has_plan = true;
    best->cost = total;
    best->plan = PhysNode::Alg(enf.alg, alg_desc, total, {w.plan});
    best->failed_limit = -1;
    *budget = std::min(*budget, total);
  }
  return Status::OK();
}

}  // namespace prairie::volcano

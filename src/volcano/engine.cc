#include "volcano/engine.h"

#include <algorithm>

#include "algebra/param.h"
#include "common/hash.h"
#include "common/strings.h"
#include "volcano/plancache.h"

namespace prairie::volcano {

using algebra::Descriptor;
using algebra::PatNode;
using algebra::PropertyId;
using algebra::Value;
using common::Result;
using common::Status;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

size_t OptimizerStats::NumTransMatched() const {
  size_t n = 0;
  for (char c : trans_matched) n += (c != 0);
  return n;
}

size_t OptimizerStats::NumImplMatched() const {
  size_t n = 0;
  for (char c : impl_matched) n += (c != 0);
  return n;
}

double OptimizerStats::InternHitRate() const {
  return desc_lookups == 0 ? 0.0
                           : static_cast<double>(desc_hits) /
                                 static_cast<double>(desc_lookups);
}

namespace {

MemoMode MemoModeFor(const OptimizerOptions& options,
                     const algebra::DescriptorStore* shared_store) {
  if (options.search_jobs == 1) return MemoMode::kSerial;
  // A concurrent memo interns from several threads: it needs a concurrent
  // store. With a serial shared store the search degrades to one job
  // (ResolveSearchJobs agrees) rather than racing the store.
  if (shared_store != nullptr && !shared_store->concurrent()) {
    return MemoMode::kSerial;
  }
  return MemoMode::kConcurrent;
}

}  // namespace

Optimizer::Optimizer(const RuleSet* rules, const catalog::Catalog* catalog,
                     OptimizerOptions options,
                     algebra::DescriptorStore* shared_store, Memo* shared_memo)
    : rules_(rules),
      catalog_(catalog),
      options_(options),
      owned_memo_(shared_memo != nullptr
                      ? nullptr
                      : std::make_unique<Memo>(rules, options.memo_limits,
                                               shared_store,
                                               MemoModeFor(options,
                                                           shared_store))),
      memo_(shared_memo != nullptr ? shared_memo : owned_memo_.get()),
      concurrent_memo_(memo_->concurrent()),
      phys_slice_id_(memo_->store()->RegisterSlice(rules->PhysSlice())) {
  stats_.trans_matched.assign(rules_->trans_rules.size(), 0);
  stats_.impl_matched.assign(rules_->impl_rules.size(), 0);
  // Snapshot the store counters before this optimizer interns anything:
  // RecordStoreStats() reports deltas against these, so a shared store
  // does not inflate per-query interning stats with other queries'
  // traffic.
  const algebra::DescriptorStore::CounterSnapshot snap =
      memo_->store()->Counters();
  store_size0_ = snap.size;
  store_lookups0_ = snap.lookups;
  store_hits0_ = snap.hits;
#if PRAIRIE_TRACING
  if (options_.trace != nullptr) trace_tid_ = common::TraceThreadId();
#endif
}

const std::vector<uint32_t>* Optimizer::TransRulesFor(
    algebra::OpId op) const {
  if (!options_.use_dispatch_index || op < 0 ||
      static_cast<size_t>(op) >= rules_->trans_rules_by_op.size()) {
    return nullptr;
  }
  return &rules_->trans_rules_by_op[static_cast<size_t>(op)];
}

const std::vector<uint32_t>* Optimizer::ImplRulesFor(algebra::OpId op) const {
  if (!options_.use_dispatch_index || op < 0 ||
      static_cast<size_t>(op) >= rules_->impl_rules_by_op.size()) {
    return nullptr;
  }
  return &rules_->impl_rules_by_op[static_cast<size_t>(op)];
}

Descriptor Optimizer::MakeReq() const {
  return Descriptor(&rules_->algebra->properties());
}

algebra::DescriptorId Optimizer::ReqId(const Descriptor& req) {
  return memo_->store()->InternProjected(phys_slice_id_, req);
}

BindingView Optimizer::MakeBinding(int num_slots) {
  BindingView bv;
  bv.slots.assign(static_cast<size_t>(num_slots),
                  Descriptor(&rules_->algebra->properties()));
  bv.algebra = rules_->algebra.get();
  bv.catalog = catalog_;
  bv.store = memo_->store();
  return bv;
}

void Optimizer::RecordStoreStats() {
  // Deltas since construction, not the store-global totals: under a
  // shared (batch) store the global counters include every other worker's
  // interning. The delta is exact for a private or sequentially shared
  // store and a close approximation under truly concurrent workers.
  const algebra::DescriptorStore::CounterSnapshot snap =
      memo_->store()->Counters();
  stats_.desc_interned = snap.size - store_size0_;
  stats_.desc_lookups = snap.lookups - store_lookups0_;
  stats_.desc_hits = snap.hits - store_hits0_;
}

Result<Plan> Optimizer::Optimize(const algebra::Expr& tree,
                                 const Descriptor& required) {
#if PRAIRIE_METRICS
  const VolcanoMetrics* mm = options_.metrics;
  const uint64_t t0 = mm != nullptr ? common::TraceNowNs() : 0;
#endif
  Result<Plan> result = OptimizeCached(tree, NormalizeReq(required));
#if PRAIRIE_METRICS
  if (mm != nullptr) {
    if (mm->query_latency_ns != nullptr) {
      mm->query_latency_ns->Observe(common::TraceNowNs() - t0);
    }
    if (mm->queries != nullptr) mm->queries->Inc();
    FlushMetrics();
  }
#endif
  return result;
}

Descriptor Optimizer::NormalizeReq(const Descriptor& required) const {
  Descriptor req = MakeReq();
  if (required.valid()) {
    for (PropertyId id : rules_->phys_props) {
      req.SetUnchecked(id, required.Get(id));
    }
  }
  return req;
}

PlanCache* Optimizer::UsableCache() const {
  PlanCache* cache = options_.plan_cache;
  if (cache == nullptr || catalog_ == nullptr) return nullptr;
  // A cache keyed through a different descriptor store holds ids that mean
  // something else here; serving from it could return a wrong plan, so it
  // is bypassed entirely rather than trusted.
  if (cache->store() != memo_->store()) return nullptr;
  return cache;
}

Result<Plan> Optimizer::OptimizeCached(const algebra::Expr& tree,
                                       const Descriptor& req) {
  PlanCache* cache = UsableCache();
  stats_.plan_from_cache = false;
  if (cache == nullptr) return OptimizeImpl(tree, req);
#if PRAIRIE_METRICS
  const VolcanoMetrics* mm = options_.metrics;
  const uint64_t p0 = mm != nullptr ? common::TraceNowNs() : 0;
#endif
  // Parameterized mode: canonicalize the query into a constant-stripped
  // skeleton and key over THAT, so queries differing only in literals
  // share one entry. The canonicalization happens inside the probe-timed
  // region — it is part of the honest warm-hit cost. Queries with nothing
  // to strip (and param_cache off) take the exact path below unchanged.
  PlanCache::ParamInfo pinfo;
  algebra::ExprPtr skeleton;
  const algebra::Expr* key_tree = &tree;
  bool parameterized = false;
  if (options_.param_cache) {
    algebra::ParameterizedQuery pq = algebra::ParameterizeQuery(tree);
    if (pq.skeleton != nullptr) {
      skeleton = std::move(pq.skeleton);
      key_tree = skeleton.get();
      pinfo.slots = std::move(pq.slots);
      pinfo.guard_est = ParamSelectivity(pinfo.slots, *catalog_);
      parameterized = true;
    }
  }
  const PlanCache::Key key =
      PlanCache::MakeKey(*key_tree, ReqId(req), *catalog_, memo_->store());
  PlanCache::Hit hit;
  bool dropped_stale = false;
  bool guard_rejected = false;
  const bool found =
      parameterized ? cache->ProbeParam(key, *catalog_, pinfo, &hit,
                                        &dropped_stale, &guard_rejected)
                    : cache->Probe(key, *catalog_, &hit, &dropped_stale);
  ++stats_.cache_probes;
  if (guard_rejected) ++stats_.cache_param_rejects;
  if (dropped_stale) ++stats_.cache_stale_drops;
#if PRAIRIE_METRICS
  if (mm != nullptr) {
    if (mm->plan_cache_probe_ns != nullptr) {
      mm->plan_cache_probe_ns->Observe(common::TraceNowNs() - p0);
    }
    const auto inc = [](common::Counter* c) {
      if (c != nullptr) c->Inc();
    };
    if (found) inc(mm->plan_cache_hits);
    else inc(mm->plan_cache_misses);
    if (found && parameterized) inc(mm->plan_cache_param_hits);
    if (guard_rejected) inc(mm->plan_cache_param_rejects);
    if (dropped_stale) inc(mm->plan_cache_stale);
  }
#endif
  if (found) {
    ++stats_.cache_hits;
    if (parameterized) ++stats_.cache_param_hits;
    stats_.plan_from_cache = true;
    // The memo holds no search for this query: ExplainWinner() must not
    // report a previous query's derivation.
    explain_root_ = -1;
    explain_req_ = algebra::kInvalidDescriptorId;
    RecordStoreStats();  // fingerprint interning traffic (all hits)
    return hit.plan;
  }
  // Always optimize the ORIGINAL tree — the skeleton was only the key.
  Result<Plan> result = OptimizeImpl(tree, req);
  // A budget-exhausted plan is valid but possibly suboptimal: caching it
  // would serve the truncated plan to future unbudgeted queries.
  if (result.ok() && !stats_.budget_exhausted) {
    std::string provenance = options_.plan_cache_provenance
                                 ? ExplainWinner()
                                 : std::string();
    if (parameterized) {
      cache->InsertParam(key, *catalog_, pinfo, result.ValueOrDie(),
                         std::move(provenance));
    } else {
      cache->Insert(key, *catalog_, result.ValueOrDie(),
                    std::move(provenance));
    }
#if PRAIRIE_METRICS
    if (mm != nullptr) {
      if (mm->plan_cache_inserts != nullptr) mm->plan_cache_inserts->Inc();
      if (parameterized && mm->plan_cache_param_inserts != nullptr) {
        mm->plan_cache_param_inserts->Inc();
      }
    }
#endif
  }
  return result;
}

void Optimizer::ArmBudget() {
  stats_.budget_exhausted = false;
  budget_tick_ = 0;
  group_budget_ = options_.group_budget;
  has_budget_ = options_.search_budget_ms > 0;
  deadline_ns_ =
      has_budget_
          ? common::TraceNowNs() +
                static_cast<uint64_t>(options_.search_budget_ms * 1e6)
          : 0;
}

bool Optimizer::BudgetExhausted() {
  if (stats_.budget_exhausted) return true;
  if (!has_budget_ && group_budget_ == 0) return false;
  if (group_budget_ != 0 && memo_->allocated_groups() > group_budget_) {
    stats_.budget_exhausted = true;
    return true;
  }
  // The clock is sampled 1-in-64 checks: a TraceNowNs() per rule probe
  // would cost more than the rule dispatch it guards.
  if (has_budget_ && (++budget_tick_ & 63u) == 0 &&
      common::TraceNowNs() >= deadline_ns_) {
    stats_.budget_exhausted = true;
    return true;
  }
  return false;
}

Result<Plan> Optimizer::OptimizeImpl(const algebra::Expr& tree,
                                     const Descriptor& req) {
  ArmBudget();
  PRAIRIE_ASSIGN_OR_RETURN(GroupId root, memo_->CopyIn(tree));
  const bool parallel = concurrent_memo_ && ResolveSearchJobs() > 1;
  PRAIRIE_ASSIGN_OR_RETURN(
      Winner w, parallel
                    ? OptimizeParallel(root, req)
                    : OptimizeGroup(root, req, options_.initial_cost_limit));
  // Entry point of ExplainWinner(): the canonical root group and the
  // interned requirement the final winner is memoized under.
  explain_root_ = memo_->Find(root);
  explain_req_ = ReqId(req);
  stats_.groups = memo_->NumGroups();
  stats_.mexprs = memo_->NumExprs();
  RecordStoreStats();
  if (!w.has_plan) {
    return Status::OptimizeError(
        "no access plan found for '" + tree.ToString(*rules_->algebra) +
        "' under the given requirements");
  }
  return Plan{w.plan, w.cost};
}

Result<Plan> Optimizer::Optimize(const algebra::Expr& tree) {
  return Optimize(tree, MakeReq());
}

Result<size_t> Optimizer::ExpandOnly(const algebra::Expr& tree) {
  ArmBudget();
  PRAIRIE_ASSIGN_OR_RETURN(GroupId root, memo_->CopyIn(tree));
  PRAIRIE_RETURN_NOT_OK(ExpandGroup(root));
  // Expand every group that became reachable so the count reflects the
  // full logical search space.
  for (size_t changed = 1; changed != 0;) {
    changed = 0;
    for (size_t g = 0; g < memo_->allocated_groups(); ++g) {
      GroupId rep = memo_->Find(static_cast<GroupId>(g));
      if (rep != static_cast<GroupId>(g)) continue;
      if (!memo_->group(rep).expanded && !memo_->group(rep).expanding) {
        PRAIRIE_RETURN_NOT_OK(ExpandGroup(rep));
        ++changed;
      }
    }
  }
  stats_.groups = memo_->NumGroups();
  stats_.mexprs = memo_->NumExprs();
  RecordStoreStats();
  FlushMetrics();
  return stats_.groups;
}

// ---------------------------------------------------------------------------
// Transformation phase
// ---------------------------------------------------------------------------

Status Optimizer::ExpandGroup(GroupId gid, bool* partial) {
  gid = memo_->Find(gid);
  // Check, claim, and release the `expanding` flag on this exact group
  // object, resolved ONCE. Re-resolving through Find between claim and
  // release is not merely redundant: a merge landing between the two
  // resolutions would set one group's flag and clear a different one's,
  // leaving the keeper's flag stuck true — every later claim would see it
  // as foreign-owned and phase A of OptimizeParallel would spin forever.
  const GroupId claimed = gid;
  Group& claimed_grp = memo_->raw_group(claimed);
  if (concurrent_memo_) {
    if (claimed_grp.expanded.load(std::memory_order_acquire)) {
      return Status::OK();
    }
    // Re-entry from this optimizer's own recursion is a cyclic rule
    // path: match over what is already there, exactly as the serial
    // engine does.
    if (expanding_here_.count(claimed) > 0) return Status::OK();
    if (claimed_grp.expanding.exchange(true, std::memory_order_acq_rel)) {
      // Another worker owns this expansion. Its current contents are
      // safe to read, but the caller must not treat a pass over them as
      // complete — the round driver retries once the owner finishes.
      if (partial != nullptr) *partial = true;
      return Status::OK();
    }
    expanding_here_.insert(claimed);
  } else {
    if (claimed_grp.expanded || claimed_grp.expanding) return Status::OK();
    claimed_grp.expanding = true;
  }
  TraceSpan span(this, common::TraceEventKind::kGroupExpand, gid, -1,
                 algebra::kInvalidDescriptorId);
  Status st = Status::OK();
  bool restart = true;
  bool pass_complete = true;
  bool frozen = false;
  while (restart && st.ok()) {
    restart = false;
    pass_complete = true;
    for (size_t ei = 0; st.ok(); ++ei) {
      if (BudgetExhausted()) {
        // Anytime budget: freeze the logical search space as-is. The group
        // is marked expanded so no pass retries it; costing proceeds over
        // whatever alternatives exist.
        frozen = true;
        break;
      }
      gid = memo_->Find(gid);
      Group* grp = &memo_->group(gid);
      if (ei >= grp->exprs.size()) break;
      if (grp->exprs[ei].is_file) continue;
      // Only rules whose LHS root is this expression's operator can match;
      // the dispatch index skips the rest of the rule vector. (An
      // expression's operator never changes in place — merges that move
      // expressions abort the pass through epoch_changed below.)
      const std::vector<uint32_t>* indexed = TransRulesFor(grp->exprs[ei].op);
      const size_t num_rules =
          indexed != nullptr ? indexed->size() : rules_->trans_rules.size();
      for (size_t k = 0; k < num_rules && st.ok(); ++k) {
        const size_t ri = indexed != nullptr ? (*indexed)[k] : k;
        gid = memo_->Find(gid);
        grp = &memo_->group(gid);
        if (ei >= grp->exprs.size()) break;
        if (grp->exprs[ei].applied.Test(static_cast<int>(ri))) continue;
        bool epoch_changed = false;
        bool partial_child = false;
        st = ApplyTransRule(gid, ei, ri, &epoch_changed, &partial_child);
        if (!st.ok()) break;
        if (epoch_changed) {
          // Groups merged under us: expression indices moved. Restart the
          // pass; the applied bitset keeps finished work cheap to skip.
          restart = true;
          break;
        }
        if (concurrent_memo_ && partial_child) {
          // A child group was mid-expansion in another worker: the binding
          // enumeration may have missed alternatives. Leave the applied
          // bit clear so a later pass redoes this application, and do not
          // mark the group expanded.
          pass_complete = false;
          continue;
        }
        gid = memo_->Find(gid);
        grp = &memo_->group(gid);
        if (ei < grp->exprs.size()) {
          grp->exprs[ei].applied.Set(static_cast<int>(ri));
        }
      }
      if (restart) break;
    }
  }
  if (concurrent_memo_) {
    if (st.ok() && (pass_complete || frozen)) {
      // Publish completion on the canonical group: a merge under this pass
      // leaves `claimed` merged away, and readers resolve through Find.
      memo_->group(claimed).expanded.store(true, std::memory_order_release);
    } else if (partial != nullptr) {
      // The pass skipped applications over children that were themselves
      // incomplete: the group is not marked expanded, and an enclosing
      // enumeration over it must not mark its own work done either.
      *partial = true;
    }
    claimed_grp.expanding.store(false, std::memory_order_release);
    expanding_here_.erase(claimed);
  } else {
    if (st.ok()) memo_->group(claimed).expanded = true;
    claimed_grp.expanding = false;
  }
  return st;
}

Status Optimizer::ApplyTransRule(GroupId gid, size_t expr_idx,
                                 size_t rule_idx, bool* epoch_changed,
                                 bool* partial_child) {
  const TransRule& rule = rules_->trans_rules[rule_idx];
  uint64_t epoch = memo_->merge_epoch();
  const MExpr& m = memo_->group(gid).exprs[expr_idx];
  if (m.is_file || rule.lhs->op != m.op) return Status::OK();

  MatchBinding binding;
  binding.streams.assign(
      static_cast<size_t>(std::max(rule.lhs->MaxStreamVar(), 1)),
      std::make_pair(-1, -1));
  bool aborted = false;
  auto emit = [&]() -> Status {
    return FireBinding(gid, rule, rule_idx, binding);
  };
  PRAIRIE_RETURN_NOT_OK(EnumerateBindings(*rule.lhs, gid,
                                          static_cast<int>(expr_idx),
                                          &binding, emit, &aborted,
                                          partial_child, epoch));
  *epoch_changed = aborted || memo_->merge_epoch() != epoch;
  return Status::OK();
}

Status Optimizer::EnumerateBindings(const PatNode& pat, GroupId gid,
                                    int expr_idx, MatchBinding* binding,
                                    EmitFn emit, bool* aborted, bool* partial,
                                    uint64_t epoch) {
  // Binds pattern node `pat` (known to be kOp) to expression `expr_idx` of
  // group `gid`, then matches its children.
  gid = memo_->Find(gid);
  const Group& grp = memo_->group(gid);
  if (expr_idx >= static_cast<int>(grp.exprs.size())) return Status::OK();
  const MExpr& m = grp.exprs[static_cast<size_t>(expr_idx)];
  if (m.is_file || m.op != pat.op) return Status::OK();
  binding->op_nodes.emplace_back(pat.desc_slot, std::make_pair(gid, expr_idx));
  std::vector<GroupId> child_groups = m.children;  // Copy: vector may move.
  Status st = MatchChildren(pat, child_groups, 0, binding, emit, aborted,
                            partial, epoch);
  binding->op_nodes.pop_back();
  return st;
}

Status Optimizer::MatchChildren(const PatNode& pat,
                                const std::vector<GroupId>& child_groups,
                                size_t k, MatchBinding* binding, EmitFn emit,
                                bool* aborted, bool* partial, uint64_t epoch) {
  if (*aborted) return Status::OK();
  if (memo_->merge_epoch() != epoch) {
    *aborted = true;
    return Status::OK();
  }
  if (k == pat.children.size()) return emit();
  const PatNode& cp = *pat.children[k];
  GroupId cg = memo_->Find(child_groups[k]);
  if (cp.is_stream()) {
    binding->streams[static_cast<size_t>(cp.stream_var - 1)] =
        std::make_pair(cg, cp.desc_slot);
    return MatchChildren(pat, child_groups, k + 1, binding, emit, aborted,
                         partial, epoch);
  }
  // Descend into the child group: it must be expanded for completeness.
  // An incomplete child expansion (mid-flight in another worker, or
  // finished with partial grandchildren of its own) ORs into `partial` —
  // the enclosing application's marker — so its applied bit stays clear
  // and a later pass redoes it. ExpandGroup only ever sets the flag,
  // never clears it, so nested expansions reached through deeper pattern
  // levels cannot erase an earlier child's marker.
  PRAIRIE_RETURN_NOT_OK(ExpandGroup(cg, partial));
  if (memo_->merge_epoch() != epoch) {
    *aborted = true;
    return Status::OK();
  }
  cg = memo_->Find(cg);
  for (int ci = 0;; ++ci) {
    if (*aborted) return Status::OK();
    GroupId rep = memo_->Find(cg);
    const Group& cgrp = memo_->group(rep);
    if (ci >= static_cast<int>(cgrp.exprs.size())) break;
    auto next = [&]() -> Status {
      return MatchChildren(pat, child_groups, k + 1, binding, emit, aborted,
                           partial, epoch);
    };
    PRAIRIE_RETURN_NOT_OK(
        EnumerateBindings(cp, rep, ci, binding, next, aborted, partial,
                          epoch));
  }
  return Status::OK();
}

Status Optimizer::FireBinding(GroupId gid, const TransRule& rule,
                              size_t rule_idx, const MatchBinding& binding) {
  ++stats_.trans_attempts;
  // Identity key of the source expression the pattern's root matched —
  // recorded as the new expression's provenance (indexes go stale under
  // merges; interned keys do not).
  algebra::DescriptorId src_key = algebra::kInvalidDescriptorId;
  if (!binding.op_nodes.empty()) {
    const auto& loc = binding.op_nodes.front().second;
    const Group& sg = memo_->group(loc.first);
    if (loc.second >= 0 && loc.second < static_cast<int>(sg.exprs.size())) {
      src_key = sg.exprs[static_cast<size_t>(loc.second)].arg_key;
    }
  }
  TraceSpan span(this, common::TraceEventKind::kTransAttempt, memo_->Find(gid),
                 static_cast<int>(rule_idx), src_key);
  BindingView bv = MakeBinding(rule.num_slots);
  bv.streams.assign(binding.streams.size(), -1);
  const algebra::DescriptorStore* store = memo_->store();
  for (size_t v = 0; v < binding.streams.size(); ++v) {
    auto [g, slot] = binding.streams[v];
    if (g < 0) continue;
    bv.streams[v] = g;
    if (slot >= 0) bv.slots[static_cast<size_t>(slot)] =
        store->Get(memo_->group(g).stream_desc);
  }
  for (const auto& [slot, loc] : binding.op_nodes) {
    const Group& grp = memo_->group(loc.first);
    if (loc.second >= static_cast<int>(grp.exprs.size())) {
      return Status::OK();  // Expression moved by a merge; binding is stale.
    }
    bv.slots[static_cast<size_t>(slot)] =
        store->Get(grp.exprs[static_cast<size_t>(loc.second)].args);
  }
  if (rule.condition != nullptr) {
    PRAIRIE_ASSIGN_OR_RETURN(bool ok, rule.condition(bv));
    if (!ok) return Status::OK();
  }
  stats_.trans_matched[rule_idx] = 1;
  if (rule.apply != nullptr) {
    PRAIRIE_RETURN_NOT_OK(rule.apply(bv));
  }
  // Build the RHS children first, then insert the new root into `gid`.
  const PatNode& root = *rule.rhs;
  if (root.is_stream()) {
    return Status::RuleError("trans_rule '" + rule.name +
                             "' rewrites to a bare stream");
  }
  MExpr m;
  m.op = root.op;
  m.args = memo_->store()->Intern(bv.slots[static_cast<size_t>(root.desc_slot)]);
  m.src_rule = static_cast<int>(rule_idx);
  m.src_arg_key = src_key;
  m.children.reserve(root.children.size());
  for (const algebra::PatNodePtr& c : root.children) {
    PRAIRIE_ASSIGN_OR_RETURN(GroupId cg,
                             BuildRhs(*c, &bv, static_cast<int>(rule_idx)));
    m.children.push_back(cg);
  }
  PRAIRIE_ASSIGN_OR_RETURN(bool added, memo_->InsertInto(gid, std::move(m)));
  if (added) {
    ++stats_.trans_fired;
    TraceInstant(common::TraceEventKind::kTransFire, memo_->Find(gid),
                 static_cast<int>(rule_idx), src_key, 0);
  }
  return Status::OK();
}

Result<GroupId> Optimizer::BuildRhs(const PatNode& node, BindingView* bv,
                                    int src_rule) {
  if (node.is_stream()) {
    GroupId g = bv->streams[static_cast<size_t>(node.stream_var - 1)];
    if (g < 0) {
      return Status::RuleError("RHS stream variable ?" +
                               std::to_string(node.stream_var) +
                               " was not bound by the LHS");
    }
    return memo_->Find(g);
  }
  MExpr m;
  m.op = node.op;
  m.args =
      memo_->store()->Intern(bv->slots[static_cast<size_t>(node.desc_slot)]);
  // Interior RHS expressions have no single source expression, only the
  // rule that synthesized them.
  m.src_rule = src_rule;
  m.children.reserve(node.children.size());
  for (const algebra::PatNodePtr& c : node.children) {
    PRAIRIE_ASSIGN_OR_RETURN(GroupId cg, BuildRhs(*c, bv, src_rule));
    m.children.push_back(cg);
  }
  const algebra::DescriptorId desc = m.args;
  return memo_->GetOrCreateGroup(std::move(m), desc);
}

// ---------------------------------------------------------------------------
// Implementation phase
// ---------------------------------------------------------------------------

Result<Winner> Optimizer::OptimizeGroup(GroupId gid, const Descriptor& req,
                                        double limit) {
  gid = memo_->Find(gid);
  // Interned requirement id: id equality <=> requirement equality, so the
  // winner lookup needs no collision re-check against a stored descriptor.
  const algebra::DescriptorId rid = ReqId(req);
  if (std::optional<Winner> w = memo_->FindWinner(gid, rid)) {
    if (w->has_plan) return *w;
    if (w->failed_limit >= 0 && limit <= w->failed_limit) return *w;
  }
  // Exact-pair key: a mixed 64-bit hash could collide two distinct
  // (group, requirement) pairs and prune a feasible branch as "cyclic".
  const std::pair<GroupId, algebra::DescriptorId> progress_key(gid, rid);
  if (in_progress_.count(progress_key) > 0) {
    // Cyclic requirement path: infeasible along this branch; do not cache.
    ++stats_.cycle_guard_hits;
    TraceInstant(common::TraceEventKind::kCycleGuard, gid, -1, rid, 0);
    return Winner{};
  }
  in_progress_.insert(progress_key);
  TraceSpan span(this, common::TraceEventKind::kGroupOptimize, gid, -1, rid);

  Status st = ExpandGroup(gid);
  if (!st.ok()) {
    in_progress_.erase(progress_key);
    return st;
  }
  gid = memo_->Find(gid);

  Winner best;
  WinnerProv prov;
  double budget = options_.prune ? limit : kInf;
  bool limit_failure = false;

  for (size_t ei = 0;; ++ei) {
    GroupId rep = memo_->Find(gid);
    Group& grp = memo_->group(rep);
    if (ei >= grp.exprs.size()) break;
    if (grp.exprs[ei].is_file) {
      // A stored file is a zero-cost source; RET-class algorithms read it
      // directly, so any requirement is trivially satisfied here.
      if (!best.has_plan || best.cost > 0) {
        best.has_plan = true;
        best.cost = 0;
        best.plan = PhysNode::File(grp.exprs[ei].file,
                                   memo_->store()->Get(grp.stream_desc));
        budget = std::min(budget, 0.0);
        prov = WinnerProv{};
        prov.src_arg_key = grp.exprs[ei].arg_key;
      }
      continue;
    }
    // Copy: recursive OptimizeGroup calls may grow or merge groups and
    // invalidate references into exprs.
    const MExpr m = grp.exprs[ei];
    const std::vector<uint32_t>* indexed = ImplRulesFor(m.op);
    const size_t num_rules =
        indexed != nullptr ? indexed->size() : rules_->impl_rules.size();
    for (size_t k = 0; k < num_rules; ++k) {
      const size_t ri = indexed != nullptr ? (*indexed)[k] : k;
      const ImplRule& rule = rules_->impl_rules[ri];
      if (rule.op != m.op) continue;
      st = TryImplRule(rep, rid, m, rule, ri, req, &budget, &best, &prov,
                       &limit_failure);
      if (!st.ok()) {
        in_progress_.erase(progress_key);
        return st;
      }
    }
  }

  for (size_t enf_idx = 0; enf_idx < rules_->enforcers.size(); ++enf_idx) {
    const Enforcer& enf = rules_->enforcers[enf_idx];
    const Value& want = req.Get(enf.prop);
    if (want.is_null()) continue;
    if (want.type() == algebra::ValueType::kSort &&
        want.AsSort().is_dont_care()) {
      continue;
    }
    if (enf.applicable != nullptr && !enf.applicable(want)) continue;
    st = TryEnforcer(gid, rid, enf, enf_idx, req, &budget, &best, &prov,
                     &limit_failure);
    if (!st.ok()) {
      in_progress_.erase(progress_key);
      return st;
    }
  }

  in_progress_.erase(progress_key);
  gid = memo_->Find(gid);
  if (best.has_plan) {
    ++stats_.winners_selected;
    TraceInstant(common::TraceEventKind::kWinnerSelected, gid,
                 prov.impl_rule >= 0 ? prov.impl_rule : prov.enforcer, rid,
                 best.cost);
  } else {
    // Only a limit-induced failure is worth retrying with a larger budget.
    best.failed_limit =
        limit_failure ? limit : std::numeric_limits<double>::max();
  }
  // Serial: overwrite (failed_limit retries depend on it). Concurrent:
  // first writer with a plan wins, so racing workers agree on one winner.
  return memo_->StoreWinner(gid, rid, std::move(best), std::move(prov));
}

Status Optimizer::TryImplRule(GroupId gid, algebra::DescriptorId rid,
                              const MExpr& m, const ImplRule& rule,
                              size_t rule_idx, const Descriptor& req,
                              double* budget, Winner* best,
                              WinnerProv* best_prov, bool* limit_failure) {
  ++stats_.impl_attempts;
  TraceSpan span(this, common::TraceEventKind::kImplAttempt, gid,
                 static_cast<int>(rule_idx), m.arg_key);
  const algebra::PropertySchema& schema = rules_->algebra->properties();
  BindingView bv = MakeBinding(rule.num_slots);
  // Bind LHS input descriptors to the child groups' stream descriptors
  // (copied out of the store: rule actions mutate their slots freely).
  for (int i = 0; i < rule.arity; ++i) {
    bv.slots[static_cast<size_t>(i)] = memo_->store()->Get(
        memo_->group(m.children[static_cast<size_t>(i)]).stream_desc);
  }
  // The operator descriptor carries the requirement (top-down propagation).
  Descriptor op_desc = memo_->store()->Get(m.args);
  for (PropertyId id : rules_->phys_props) {
    const Value& v = req.Get(id);
    if (!v.is_null()) op_desc.SetUnchecked(id, v);
  }
  bv.slots[static_cast<size_t>(rule.op_slot())] = op_desc;

  if (rule.condition != nullptr) {
    PRAIRIE_ASSIGN_OR_RETURN(bool ok, rule.condition(bv));
    if (!ok) return Status::OK();
  }
  stats_.impl_matched[rule_idx] = 1;
  if (rule.pre_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(rule.pre_opt(bv).WithContext(
        "impl_rule '" + rule.name + "' pre-opt"));
  }

  // Optimize the inputs under the requirements the pre-opt section pushed
  // onto the RHS input descriptors.
  std::vector<PhysNodeRef> kids;
  kids.reserve(static_cast<size_t>(rule.arity));
  // (canonical child group, winner-table key) per optimized input — the
  // provenance links recorded if this alternative wins.
  std::vector<std::pair<GroupId, algebra::DescriptorId>> ckeys;
  ckeys.reserve(static_cast<size_t>(rule.arity));
  double child_sum = 0;
  for (int i = 0; i < rule.arity; ++i) {
    int rslot = rule.rhs_input_slots[static_cast<size_t>(i)];
    Descriptor child_req(&schema);
    for (PropertyId id : rules_->phys_props) {
      child_req.SetUnchecked(id, bv.slots[static_cast<size_t>(rslot)].Get(id));
    }
    double child_limit =
        options_.prune ? (*budget - child_sum) : kInf;
    if (options_.prune && child_limit < 0) {
      *limit_failure = true;
      ++stats_.prunes;
      TraceInstant(common::TraceEventKind::kPrune, gid,
                   static_cast<int>(rule_idx), rid, *budget);
      return Status::OK();
    }
    PRAIRIE_ASSIGN_OR_RETURN(
        Winner w, OptimizeGroup(m.children[static_cast<size_t>(i)], child_req,
                                child_limit));
    if (!w.has_plan) {
      if (w.failed_limit >= 0 &&
          w.failed_limit < std::numeric_limits<double>::max()) {
        *limit_failure = true;
      }
      return Status::OK();
    }
    ckeys.emplace_back(memo_->Find(m.children[static_cast<size_t>(i)]), w.rid);
    child_sum += w.cost;
    if (options_.prune && child_sum > *budget) {
      *limit_failure = true;
      ++stats_.prunes;
      TraceInstant(common::TraceEventKind::kPrune, gid,
                   static_cast<int>(rule_idx), rid, child_sum);
      return Status::OK();
    }
    // Report the input's optimized cost and delivered physical properties
    // back into its RHS descriptor for the post-opt section.
    Descriptor& rd = bv.slots[static_cast<size_t>(rslot)];
    rd.SetUnchecked(rules_->cost_prop, Value::Real(w.cost));
    for (PropertyId id : rules_->phys_props) {
      const Value& delivered = w.plan->desc.Get(id);
      if (!delivered.is_null()) rd.SetUnchecked(id, delivered);
    }
    kids.push_back(w.plan);
  }

  if (rule.post_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(rule.post_opt(bv).WithContext(
        "impl_rule '" + rule.name + "' post-opt"));
  }
  ++stats_.plans_costed;

  Descriptor& alg_desc = bv.slots[static_cast<size_t>(rule.alg_slot)];
  const Value& cost_value = alg_desc.Get(rules_->cost_prop);
  if (cost_value.is_null()) {
    return Status::RuleError("impl_rule '" + rule.name +
                             "' did not assign a cost");
  }
  PRAIRIE_ASSIGN_OR_RETURN(double total, cost_value.ToReal());
  TraceInstant(common::TraceEventKind::kPlanCosted, gid,
               static_cast<int>(rule_idx), rid, total);

  // The produced plan must deliver the required physical properties.
  for (PropertyId id : rules_->phys_props) {
    if (!PropSatisfies(alg_desc.Get(id), req.Get(id))) return Status::OK();
  }
  if (options_.prune && total > *budget) {
    *limit_failure = true;
    ++stats_.prunes;
    TraceInstant(common::TraceEventKind::kPrune, gid,
                 static_cast<int>(rule_idx), rid, total);
    return Status::OK();
  }
  if (!best->has_plan || total < best->cost) {
    best->has_plan = true;
    best->cost = total;
    best->plan = PhysNode::Alg(rule.alg, alg_desc, total, std::move(kids));
    best->failed_limit = -1;
    *budget = std::min(*budget, total);
    best_prov->impl_rule = static_cast<int>(rule_idx);
    best_prov->enforcer = -1;
    best_prov->src_arg_key = m.arg_key;
    best_prov->src_children = m.children;
    best_prov->child_keys = std::move(ckeys);
  }
  return Status::OK();
}

Status Optimizer::TryEnforcer(GroupId gid, algebra::DescriptorId rid,
                              const Enforcer& enf, size_t enf_idx,
                              const Descriptor& req, double* budget,
                              Winner* best, WinnerProv* best_prov,
                              bool* limit_failure) {
  ++stats_.enforcer_attempts;
  TraceSpan span(this, common::TraceEventKind::kEnforcerAttempt,
                 memo_->Find(gid), static_cast<int>(enf_idx), rid);
  Descriptor relaxed = req;
  relaxed.SetUnchecked(enf.prop, Value::Null());
  double child_limit = options_.prune ? *budget : kInf;
  PRAIRIE_ASSIGN_OR_RETURN(Winner w,
                           OptimizeGroup(gid, relaxed, child_limit));
  if (!w.has_plan) {
    if (w.failed_limit >= 0 &&
        w.failed_limit < std::numeric_limits<double>::max()) {
      *limit_failure = true;
    }
    return Status::OK();
  }

  BindingView bv = MakeBinding(Enforcer::kNumSlots);
  gid = memo_->Find(gid);
  // Copy the stream descriptor out of the store (slots are mutable).
  Descriptor input = memo_->store()->Get(memo_->group(gid).stream_desc);
  input.SetUnchecked(rules_->cost_prop, Value::Real(w.cost));
  for (PropertyId id : rules_->phys_props) {
    const Value& delivered = w.plan->desc.Get(id);
    if (!delivered.is_null()) input.SetUnchecked(id, delivered);
  }
  bv.slots[Enforcer::kInputSlot] = input;
  Descriptor op_desc = memo_->store()->Get(memo_->group(gid).stream_desc);
  for (PropertyId id : rules_->phys_props) {
    const Value& v = req.Get(id);
    if (!v.is_null()) op_desc.SetUnchecked(id, v);
  }
  bv.slots[Enforcer::kOpSlot] = op_desc;

  if (enf.condition != nullptr) {
    PRAIRIE_ASSIGN_OR_RETURN(bool ok, enf.condition(bv));
    if (!ok) return Status::OK();
  }
  if (enf.pre_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(
        enf.pre_opt(bv).WithContext("enforcer '" + enf.name + "' pre-opt"));
  }
  if (enf.post_opt != nullptr) {
    PRAIRIE_RETURN_NOT_OK(
        enf.post_opt(bv).WithContext("enforcer '" + enf.name + "' post-opt"));
  }
  Descriptor& alg_desc = bv.slots[Enforcer::kAlgSlot];
  const Value& cost_value = alg_desc.Get(rules_->cost_prop);
  if (cost_value.is_null()) {
    return Status::RuleError("enforcer '" + enf.name +
                             "' did not assign a cost");
  }
  PRAIRIE_ASSIGN_OR_RETURN(double total, cost_value.ToReal());
  for (PropertyId id : rules_->phys_props) {
    if (!PropSatisfies(alg_desc.Get(id), req.Get(id))) return Status::OK();
  }
  if (options_.prune && total > *budget) {
    *limit_failure = true;
    ++stats_.prunes;
    TraceInstant(common::TraceEventKind::kPrune, memo_->Find(gid),
                 static_cast<int>(enf_idx), rid, total);
    return Status::OK();
  }
  if (!best->has_plan || total < best->cost) {
    best->has_plan = true;
    best->cost = total;
    best->plan = PhysNode::Alg(enf.alg, alg_desc, total, {w.plan});
    best->failed_limit = -1;
    *budget = std::min(*budget, total);
    best_prov->impl_rule = -1;
    best_prov->enforcer = static_cast<int>(enf_idx);
    best_prov->src_arg_key = algebra::kInvalidDescriptorId;
    best_prov->src_children.clear();
    best_prov->child_keys.assign(1, {memo_->Find(gid), w.rid});
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Observability: trace emission and plan provenance
// ---------------------------------------------------------------------------

void Optimizer::TraceInstantSlow(common::TraceEventKind kind, GroupId gid,
                                 int rule, algebra::DescriptorId desc,
                                 double cost) {
  common::TraceEvent e;
  e.kind = kind;
  e.group = gid;
  e.rule = rule;
  e.desc = desc;
  e.depth = trace_depth_;
  e.tid = trace_tid_;
  e.cost = cost;
  e.ts_ns = common::TraceNowNs();
  options_.trace->Emit(e);
}

void Optimizer::TraceSpan::Begin(Optimizer* opt, common::TraceEventKind kind,
                                 GroupId gid, int rule,
                                 algebra::DescriptorId desc, bool traced) {
  opt_ = opt;
  traced_ = traced;
  kind_ = kind;
  gid_ = gid;
  rule_ = rule;
  desc_ = desc;
  start_ns_ = common::TraceNowNs();
  // The nesting depth is a property of the trace stream; metrics-only
  // spans leave it untouched so traces look identical with metrics on.
  if (traced_) ++opt_->trace_depth_;
}

void Optimizer::TraceSpan::End() {
  const uint64_t dur_ns = common::TraceNowNs() - start_ns_;
  if (hist_ != nullptr) hist_->Observe(dur_ns);
  if (!traced_) return;
  --opt_->trace_depth_;
  common::TraceEvent e;
  e.kind = kind_;
  e.group = gid_;
  e.rule = rule_;
  e.desc = desc_;
  e.depth = opt_->trace_depth_;
  e.tid = opt_->trace_tid_;
  e.ts_ns = start_ns_;
  e.dur_ns = dur_ns;
  opt_->options_.trace->Emit(e);
}

// ---------------------------------------------------------------------------
// Observability: aggregate metrics
// ---------------------------------------------------------------------------

VolcanoMetrics VolcanoMetrics::ForRuleSet(common::MetricsRegistry* registry,
                                          const RuleSet& rules) {
  VolcanoMetrics m;
  if (registry == nullptr) return m;
  m.queries = registry->GetCounter("prairie_queries_total",
                                   "Optimize() calls completed");
  m.trans_attempts =
      registry->GetCounter("prairie_trans_attempts_total",
                           "Trans-rule binding condition evaluations");
  m.trans_fired = registry->GetCounter(
      "prairie_trans_fired_total",
      "New logical expressions generated by trans rules");
  m.impl_attempts = registry->GetCounter("prairie_impl_attempts_total",
                                         "Impl-rule firings attempted");
  m.enforcer_attempts = registry->GetCounter(
      "prairie_enforcer_attempts_total", "Enforcer applications attempted");
  m.plans_costed = registry->GetCounter(
      "prairie_plans_costed_total", "Physical alternatives fully costed");
  m.winners_selected =
      registry->GetCounter("prairie_winners_selected_total",
                           "(group, requirement) winners memoized");
  m.prunes = registry->GetCounter("prairie_prunes_total",
                                  "Branch-and-bound cuts");
  m.cycle_guard_hits =
      registry->GetCounter("prairie_cycle_guard_hits_total",
                           "Cyclic (group, requirement) searches refused");
  m.memo_groups_created = registry->GetCounter(
      "prairie_memo_groups_created_total", "Memo equivalence classes created");
  m.memo_groups_merged = registry->GetCounter(
      "prairie_memo_groups_merged_total", "Memo equivalence-class merges");
  m.memo_exprs_inserted =
      registry->GetCounter("prairie_memo_exprs_inserted_total",
                           "Multi-expressions added to the memo");
  m.memo_exprs_deduped =
      registry->GetCounter("prairie_memo_exprs_deduped_total",
                           "Insert attempts resolved to an existing expr");
  m.memo_arena_bytes = registry->GetGauge(
      "prairie_memo_arena_bytes",
      "Arena bytes backing the memo's group table and expression lists");
  m.intern_hits =
      registry->GetCounter("prairie_intern_hits_total",
                           "Descriptor-interning probes that found an "
                           "existing descriptor");
  m.intern_misses = registry->GetCounter(
      "prairie_intern_misses_total",
      "Descriptor-interning probes that appended a new descriptor");
  m.batch_runs = registry->GetCounter("prairie_batch_runs_total",
                                      "BatchOptimizer::OptimizeAll calls");
  m.batch_worker_merges = registry->GetCounter(
      "prairie_batch_worker_merges_total",
      "Per-worker trace/stat streams merged after a batch barrier");
  m.plan_cache_hits = registry->GetCounter(
      "prairie_plan_cache_hits_total", "Queries served from the plan cache");
  m.plan_cache_misses = registry->GetCounter(
      "prairie_plan_cache_misses_total",
      "Plan-cache probes that fell through to the search");
  m.plan_cache_inserts = registry->GetCounter(
      "prairie_plan_cache_inserts_total", "Winning plans stored in the cache");
  m.plan_cache_stale = registry->GetCounter(
      "prairie_plan_cache_stale_total",
      "Stale (epoch-mismatched) cache entries dropped on probe");
  m.plan_cache_param_hits = registry->GetCounter(
      "prairie_plan_cache_param_hits_total",
      "Queries served by rebinding a parameterized skeleton entry");
  m.plan_cache_param_rejects = registry->GetCounter(
      "prairie_plan_cache_param_rejects_total",
      "Parameterized probes the selectivity guard band turned away");
  m.plan_cache_param_inserts = registry->GetCounter(
      "prairie_plan_cache_param_inserts_total",
      "Winning plans stored under a parameterized skeleton key");
  m.query_latency_ns = registry->GetHistogram(
      "prairie_query_latency_ns", "Per-query optimization wall time (ns)");
  m.plan_cache_probe_ns = registry->GetHistogram(
      "prairie_plan_cache_probe_ns",
      "Plan-cache key build + probe wall time (ns)");
  const auto rule_hist = [registry](const std::string& name,
                                    const char* cls) {
    return registry->GetHistogram(
        "prairie_rule_latency_ns",
        "Sampled per-attempt rule latency (ns)",
        {{"rule", name}, {"class", cls}});
  };
  m.trans_latency_ns.reserve(rules.trans_rules.size());
  for (const TransRule& r : rules.trans_rules) {
    m.trans_latency_ns.push_back(rule_hist(r.name, "trans"));
  }
  m.impl_latency_ns.reserve(rules.impl_rules.size());
  for (const ImplRule& r : rules.impl_rules) {
    m.impl_latency_ns.push_back(rule_hist(r.name, "impl"));
  }
  m.enforcer_latency_ns.reserve(rules.enforcers.size());
  for (const Enforcer& e : rules.enforcers) {
    m.enforcer_latency_ns.push_back(rule_hist(e.name, "enforcer"));
  }
  return m;
}

common::Histogram* Optimizer::SampledLatency(common::TraceEventKind kind,
                                             int rule) {
  const VolcanoMetrics* mm = options_.metrics;
  if (mm == nullptr || rule < 0) return nullptr;
  const std::vector<common::Histogram*>* per_rule = nullptr;
  switch (kind) {
    case common::TraceEventKind::kTransAttempt:
      per_rule = &mm->trans_latency_ns;
      break;
    case common::TraceEventKind::kImplAttempt:
      per_rule = &mm->impl_latency_ns;
      break;
    case common::TraceEventKind::kEnforcerAttempt:
      per_rule = &mm->enforcer_latency_ns;
      break;
    default:
      return nullptr;
  }
  if (static_cast<size_t>(rule) >= per_rule->size()) return nullptr;
  common::Histogram* h = (*per_rule)[static_cast<size_t>(rule)];
  if (h == nullptr) return nullptr;
  // 1-in-N sampling: the cost of observing an attempt is the two clock
  // reads around it, not the shard increment; sampling keeps the
  // per-attempt overhead inside the bench_metrics 2% gate.
  ++metrics_tick_;
  return metrics_tick_ % VolcanoMetrics::kLatencySamplePeriod == 0 ? h
                                                                   : nullptr;
}

void Optimizer::FlushMetrics() {
#if PRAIRIE_METRICS
  const VolcanoMetrics* mm = options_.metrics;
  if (mm == nullptr) return;
  const auto add = [](common::Counter* c, uint64_t delta) {
    if (c != nullptr && delta != 0) c->Inc(delta);
  };
  MetricsMark& mark = metrics_mark_;
  add(mm->trans_attempts, stats_.trans_attempts - mark.trans_attempts);
  add(mm->trans_fired, stats_.trans_fired - mark.trans_fired);
  add(mm->impl_attempts, stats_.impl_attempts - mark.impl_attempts);
  add(mm->enforcer_attempts,
      stats_.enforcer_attempts - mark.enforcer_attempts);
  add(mm->plans_costed, stats_.plans_costed - mark.plans_costed);
  add(mm->winners_selected,
      stats_.winners_selected - mark.winners_selected);
  add(mm->prunes, stats_.prunes - mark.prunes);
  add(mm->cycle_guard_hits,
      stats_.cycle_guard_hits - mark.cycle_guard_hits);
  add(mm->intern_hits, stats_.desc_hits - mark.desc_hits);
  add(mm->intern_misses, (stats_.desc_lookups - stats_.desc_hits) -
                             (mark.desc_lookups - mark.desc_hits));
  const MemoTallies t = memo_->tallies();
  if (mm->memo_arena_bytes != nullptr) {
    mm->memo_arena_bytes->Set(static_cast<int64_t>(t.arena_bytes));
  }
  add(mm->memo_groups_created,
      t.groups_created - mark.memo.groups_created);
  add(mm->memo_groups_merged, t.groups_merged - mark.memo.groups_merged);
  add(mm->memo_exprs_inserted,
      t.exprs_inserted - mark.memo.exprs_inserted);
  add(mm->memo_exprs_deduped, t.exprs_deduped - mark.memo.exprs_deduped);
  mark.trans_attempts = stats_.trans_attempts;
  mark.trans_fired = stats_.trans_fired;
  mark.impl_attempts = stats_.impl_attempts;
  mark.enforcer_attempts = stats_.enforcer_attempts;
  mark.plans_costed = stats_.plans_costed;
  mark.winners_selected = stats_.winners_selected;
  mark.prunes = stats_.prunes;
  mark.cycle_guard_hits = stats_.cycle_guard_hits;
  mark.desc_lookups = stats_.desc_lookups;
  mark.desc_hits = stats_.desc_hits;
  mark.memo = t;
#endif
}

std::string Optimizer::RenderExpr(const MExpr& m) const {
  if (m.is_file) return "file '" + m.file + "'";
  std::string out = rules_->algebra->name(m.op) + "(";
  std::vector<std::string> parts;
  parts.reserve(m.children.size());
  for (GroupId c : m.children) {
    parts.push_back("g" + std::to_string(memo_->Find(c)));
  }
  return out + common::Join(parts, ", ") + ")";
}

const MExpr* Optimizer::FindByArgKey(GroupId gid, algebra::DescriptorId key,
                                     const MExpr* exclude) const {
  if (key == algebra::kInvalidDescriptorId) return nullptr;
  const Group& grp = memo_->group(gid);
  for (const MExpr& m : grp.exprs) {
    if (&m != exclude && m.arg_key == key) return &m;
  }
  return nullptr;
}

const MExpr* Optimizer::FindImplemented(
    GroupId gid, algebra::DescriptorId key,
    const std::vector<GroupId>& children) const {
  if (key == algebra::kInvalidDescriptorId) return nullptr;
  const Group& grp = memo_->group(gid);
  for (const MExpr& m : grp.exprs) {
    if (m.arg_key != key || m.children.size() != children.size()) continue;
    bool same = true;
    for (size_t i = 0; i < children.size(); ++i) {
      if (memo_->Find(m.children[i]) != memo_->Find(children[i])) {
        same = false;
        break;
      }
    }
    if (same) return &m;
  }
  // Children may have merged since the winner was recorded; fall back to
  // the first arg_key match rather than dropping the chain entirely.
  return FindByArgKey(gid, key, nullptr);
}

void Optimizer::ExplainGroup(GroupId gid, algebra::DescriptorId rid,
                             int indent, int depth, std::string* out) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (depth > 32) {
    *out += pad + "... (provenance walk depth limit)\n";
    return;
  }
  gid = memo_->Find(gid);
  const Group& grp = memo_->group(gid);
  auto wit = grp.winners.find(rid);
  if (wit == grp.winners.end() || !wit->second.has_plan) {
    // A later merge cleared this winner table; the plan itself is still
    // valid, only its provenance record is gone.
    *out += pad +
            common::StringPrintf("g%d: (winner not memoized)\n",
                                 static_cast<int>(gid));
    return;
  }
  const Winner& w = wit->second;
  auto pit = grp.prov.find(rid);
  if (pit == grp.prov.end()) {
    *out += pad + common::StringPrintf("g%d: cost=%.3f (no provenance)\n",
                                       static_cast<int>(gid), w.cost);
    return;
  }
  const WinnerProv& p = pit->second;
  std::string line =
      common::StringPrintf("g%d: cost=%.3f", static_cast<int>(gid), w.cost);
  if (p.enforcer >= 0) {
    line += " via enforcer '" +
            rules_->enforcers[static_cast<size_t>(p.enforcer)].name + "'";
  } else if (p.impl_rule >= 0) {
    line += " via impl_rule '" +
            rules_->impl_rules[static_cast<size_t>(p.impl_rule)].name + "'";
  } else {
    line += " via stored file";
  }
  *out += pad + line + "\n";
  // The implemented logical expression, then the trans-rule chain that
  // derived it (walked by interned identity key; robust to merges). The
  // head is resolved by arg_key plus child groups: arg_key alone cannot
  // tell apart expressions that differ only in child order, e.g. a
  // commuted join whose rewrite reuses the argument slice.
  const MExpr* src = FindImplemented(gid, p.src_arg_key, p.src_children);
  for (int guard = 0; src != nullptr && guard < 16; ++guard) {
    *out += pad + "  expr " + RenderExpr(*src);
    if (src->src_rule >= 0) {
      *out += "  [from trans_rule '" +
              rules_->trans_rules[static_cast<size_t>(src->src_rule)].name +
              "']";
    } else {
      *out += "  [from input query]";
    }
    *out += "\n";
    if (src->src_rule < 0 ||
        src->src_arg_key == algebra::kInvalidDescriptorId) {
      break;
    }
    src = FindByArgKey(gid, src->src_arg_key, src);
  }
  for (const auto& [cg, crid] : p.child_keys) {
    ExplainGroup(cg, crid, indent + 1, depth + 1, out);
  }
}

std::string Optimizer::ExplainWinner() const {
  if (explain_root_ < 0 || explain_req_ == algebra::kInvalidDescriptorId) {
    return "(no optimized query to explain)\n";
  }
  std::string out;
  ExplainGroup(explain_root_, explain_req_, 0, 0, &out);
  return out;
}

}  // namespace prairie::volcano

#include "volcano/diag.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/buildinfo.h"
#include "common/strings.h"
#include "common/timeseries.h"
#include "volcano/profile.h"

namespace prairie::volcano {

namespace {

/// Writes `content` to `path`, returning success. Bundle members are
/// small; no streaming needed.
bool WriteFile(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) return false;
  out << content;
  out.close();
  return static_cast<bool>(out);
}

}  // namespace

const char* DiagTriggerName(DiagTrigger t) {
  switch (t) {
    case DiagTrigger::kNone:
      return "none";
    case DiagTrigger::kSlowFixed:
      return "slow_fixed";
    case DiagTrigger::kSlowAdaptive:
      return "slow_adaptive";
    case DiagTrigger::kQError:
      return "qerror";
    case DiagTrigger::kBudgetExhausted:
      return "budget_exhausted";
    case DiagTrigger::kCacheStorm:
      return "cache_storm";
  }
  return "unknown";
}

const char* CacheOutcome(const OptimizerStats& stats) {
  if (stats.plan_from_cache) {
    return stats.cache_param_hits > 0 ? "param" : "exact";
  }
  if (stats.cache_param_rejects > 0) return "reject";
  if (stats.cache_stale_drops > 0) return "stale";
  if (stats.cache_probes > 0) return "miss";
  return "off";
}

DiagService::DiagService(DiagOptions options) : options_(std::move(options)) {
  if (options_.registry != nullptr) {
    // Baseline for the first bundle's metrics delta.
    last_sample_ = options_.registry->Sample();
  }
}

uint64_t DiagService::Fingerprint(std::string_view text) {
  // FNV-1a 64: stable across runs and platforms, cheap, and only computed
  // on the trigger path.
  uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

DiagTrigger DiagService::Check(double latency_ms, const OptimizerStats& stats,
                               double max_qerror) {
  DiagTrigger fired = DiagTrigger::kNone;
  if (options_.slow_ms > 0 && latency_ms > options_.slow_ms) {
    fired = DiagTrigger::kSlowFixed;
  }
  if (options_.adaptive_k > 0 && options_.latency_hist != nullptr) {
    const uint64_t n =
        check_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
    // A histogram snapshot is ~768 relaxed loads — too heavy per query.
    // Refresh the cached p99 on the first call and then 1-in-64.
    if ((n & 63) == 1) {
      const common::HistogramSnapshot snap = options_.latency_hist->Snapshot();
      cached_p99_ns_.store(static_cast<uint64_t>(snap.Percentile(99)),
                           std::memory_order_relaxed);
      cached_hist_count_.store(snap.count, std::memory_order_relaxed);
    }
    const uint64_t count = cached_hist_count_.load(std::memory_order_relaxed);
    const uint64_t p99_ns = cached_p99_ns_.load(std::memory_order_relaxed);
    if (fired == DiagTrigger::kNone && count >= options_.adaptive_min_count &&
        p99_ns > 0 &&
        latency_ms * 1e6 >
            options_.adaptive_k * static_cast<double>(p99_ns)) {
      fired = DiagTrigger::kSlowAdaptive;
    }
  }
  if (fired == DiagTrigger::kNone && options_.qerror_limit > 0 &&
      max_qerror > options_.qerror_limit) {
    fired = DiagTrigger::kQError;
  }
  if (fired == DiagTrigger::kNone && options_.on_budget_exhausted &&
      stats.budget_exhausted) {
    fired = DiagTrigger::kBudgetExhausted;
  }
  if (options_.cache_storm_threshold > 0) {
    const size_t add = stats.cache_param_rejects + stats.cache_stale_drops;
    if (add > 0) {
      // fetch_add makes the threshold crossing observable by exactly one
      // caller even under concurrent workers.
      const size_t before = storm_accum_.fetch_add(add, std::memory_order_relaxed);
      if (before < options_.cache_storm_threshold &&
          before + add >= options_.cache_storm_threshold) {
        storm_accum_.fetch_sub(options_.cache_storm_threshold,
                               std::memory_order_relaxed);
        if (fired == DiagTrigger::kNone) fired = DiagTrigger::kCacheStorm;
      }
    }
  }
  return fired;
}

std::string DiagService::SlowLogRecord(DiagTrigger trigger,
                                       const QueryDiag& diag,
                                       const std::string& bundle_dir) const {
  using common::FormatDouble;
  const OptimizerStats empty_stats;
  const OptimizerStats& st = diag.stats != nullptr ? *diag.stats : empty_stats;
  // Latency breakdown from the flight-recorder slice: top-level (depth 0)
  // search spans plus the executor span. Coarse detail still carries all
  // three.
  uint64_t expand_ns = 0, optimize_ns = 0, exec_ns = 0;
  for (const common::TraceEvent& e : diag.trace_slice) {
    if (e.depth != 0) continue;
    if (e.kind == common::TraceEventKind::kGroupExpand) expand_ns += e.dur_ns;
    if (e.kind == common::TraceEventKind::kGroupOptimize) {
      optimize_ns += e.dur_ns;
    }
    if (e.kind == common::TraceEventKind::kExecQuery) exec_ns += e.dur_ns;
  }
  std::string out =
      "{\"ts_ms\":" +
      std::to_string(common::TraceNowNs() / 1000000) +
      ",\"fingerprint\":\"" +
      common::HexEncode(Fingerprint(diag.query_text)) + "\",\"trigger\":\"" +
      DiagTriggerName(trigger) +
      "\",\"latency_ms\":" + FormatDouble(diag.latency_ms) + ",\"cache\":\"" +
      CacheOutcome(st) + "\",\"budget_exhausted\":" +
      (st.budget_exhausted ? "true" : "false") +
      ",\"stats\":{\"groups\":" + std::to_string(st.groups) +
      ",\"mexprs\":" + std::to_string(st.mexprs) +
      ",\"plans_costed\":" + std::to_string(st.plans_costed) + "}" +
      ",\"breakdown_ms\":{\"expand\":" +
      FormatDouble(static_cast<double>(expand_ns) / 1e6) +
      ",\"optimize\":" +
      FormatDouble(static_cast<double>(optimize_ns) / 1e6) +
      ",\"exec\":" + FormatDouble(static_cast<double>(exec_ns) / 1e6) + "}";
  // Top-k rule latencies (needs attempt spans, i.e. TraceDetail::kFull;
  // coarse slices yield an empty list).
  out += ",\"top_rules\":[";
  if (options_.rules != nullptr && !diag.trace_slice.empty()) {
    const RuleProfile profile =
        BuildRuleProfile(diag.trace_slice, *options_.rules, diag.trace_dropped);
    std::vector<const RuleProfileRow*> rows;
    for (const auto* cls : {&profile.trans, &profile.impl, &profile.enforcers}) {
      for (const RuleProfileRow& r : *cls) {
        if (r.attempts > 0) rows.push_back(&r);
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const RuleProfileRow* a, const RuleProfileRow* b) {
                return a->total_ns > b->total_ns;
              });
    if (rows.size() > 3) rows.resize(3);
    bool first = true;
    for (const RuleProfileRow* r : rows) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + common::JsonEscape(r->name) +
             "\",\"attempts\":" + std::to_string(r->attempts) +
             ",\"total_us\":" +
             FormatDouble(static_cast<double>(r->total_ns) / 1e3) + "}";
    }
  }
  out += "]";
  if (diag.est_rows >= 0) {
    out += ",\"est_rows\":" + FormatDouble(diag.est_rows);
  }
  if (diag.actual_rows >= 0) {
    out += ",\"actual_rows\":" + FormatDouble(diag.actual_rows);
  }
  if (diag.max_qerror > 0) {
    out += ",\"max_qerror\":" + FormatDouble(diag.max_qerror);
  }
  out += ",\"trace_events\":" + std::to_string(diag.trace_slice.size()) +
         ",\"trace_dropped\":" + std::to_string(diag.trace_dropped) +
         ",\"bundle\":\"" + common::JsonEscape(bundle_dir) + "\"}";
  return out;
}

std::string DiagService::WriteBundle(DiagTrigger trigger,
                                     const QueryDiag& diag,
                                     uint64_t fingerprint, size_t seq) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(options_.diag_dir) /
                       (common::HexEncode(fingerprint) + "-" +
                        std::to_string(seq));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return "";
  std::vector<std::string> members;
  auto add = [&](const char* name, const std::string& content) {
    if (WriteFile(dir / name, content)) members.emplace_back(name);
  };
  if (!diag.query_text.empty()) add("query.txt", diag.query_text + "\n");
  if (options_.rules != nullptr && !diag.trace_slice.empty()) {
    if (WriteChromeTrace((dir / "trace.json").string(), diag.trace_slice,
                         *options_.rules, diag.trace_dropped)
            .ok()) {
      members.emplace_back("trace.json");
    }
  }
  if (options_.registry != nullptr) {
    // Delta since the previous report (or service arming): what the
    // process-wide counters did around the anomaly, not since boot.
    std::vector<common::MetricsRegistry::SeriesSample> cur =
        options_.registry->Sample();
    add("metrics_delta.json",
        "{\"metrics\":[" +
            common::TimeSeriesWriter::Delta(last_sample_, cur,
                                            /*include_unchanged=*/false) +
            "]}\n");
    last_sample_ = std::move(cur);
  }
  if (!diag.provenance.empty()) add("provenance.txt", diag.provenance);
  if (!diag.memo_dot.empty()) add("memo.dot", diag.memo_dot);
  if (!diag.analyze_text.empty()) add("analyze.txt", diag.analyze_text);
  if (!diag.analyze_json.empty()) add("analyze.json", diag.analyze_json);
  if (!diag.feedback_json.empty()) add("feedback.json", diag.feedback_json);
  add("slow_record.json",
      SlowLogRecord(trigger, diag, dir.string()) + "\n");
  // The manifest lists every member actually written (itself included):
  // a bundle consumer can verify completeness without globbing.
  members.emplace_back("manifest.json");
  std::string manifest =
      std::string("{\"trigger\":\"") + DiagTriggerName(trigger) +
      "\",\"fingerprint\":\"" + common::HexEncode(fingerprint) +
      "\",\"seq\":" + std::to_string(seq) +
      ",\"latency_ms\":" + common::FormatDouble(diag.latency_ms) +
      ",\"thresholds\":{\"slow_ms\":" + common::FormatDouble(options_.slow_ms) +
      ",\"adaptive_k\":" + common::FormatDouble(options_.adaptive_k) +
      ",\"qerror_limit\":" + common::FormatDouble(options_.qerror_limit) +
      ",\"cache_storm_threshold\":" +
      std::to_string(options_.cache_storm_threshold) + "}" +
      ",\"build\":" + common::BuildConfigJson() + ",\"flags\":\"" +
      common::JsonEscape(options_.flags) +
      "\",\"seed\":" + std::to_string(options_.seed) +
      ",\"dropped_events\":" + std::to_string(diag.trace_dropped) +
      ",\"files\":[";
  bool first = true;
  for (const std::string& m : members) {
    if (!first) manifest += ",";
    first = false;
    manifest += "\"" + common::JsonEscape(m) + "\"";
  }
  manifest += "]}\n";
  if (!WriteFile(dir / "manifest.json", manifest)) return "";
  return dir.string();
}

std::string DiagService::Report(DiagTrigger trigger, const QueryDiag& diag) {
  if (trigger == DiagTrigger::kNone) return "";
  std::lock_guard<std::mutex> lock(report_mu_);
  const size_t seq = reports_.fetch_add(1, std::memory_order_relaxed);
  std::string bundle_dir;
  if (!options_.diag_dir.empty() &&
      bundles_.load(std::memory_order_relaxed) < options_.max_bundles) {
    bundle_dir =
        WriteBundle(trigger, diag, Fingerprint(diag.query_text), seq);
    if (!bundle_dir.empty()) {
      bundles_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (options_.slow_log != nullptr) {
    (*options_.slow_log) << SlowLogRecord(trigger, diag, bundle_dir) << "\n";
    options_.slow_log->flush();
  }
  return bundle_dir;
}

}  // namespace prairie::volcano

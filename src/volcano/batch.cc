#include "volcano/batch.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "common/stopwatch.h"
#include "common/workpool.h"
#include "volcano/diag.h"

namespace prairie::volcano {

BatchOptimizer::BatchOptimizer(const RuleSet* rules, BatchOptions options)
    : rules_(rules), options_(options) {
  jobs_ = options_.jobs;
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
  if (options_.share_store) {
    store_ = std::make_unique<algebra::DescriptorStore>(
        &rules_->algebra->properties(),
        jobs_ > 1 ? algebra::StoreMode::kConcurrent
                  : algebra::StoreMode::kSerial);
    // A batch-owned cache only makes sense over the shared store: cache
    // keys embed interned ids, which per-query private stores don't share.
    // A caller-provided optimizer.plan_cache takes precedence.
    if (options_.plan_cache_entries > 0 &&
        options_.optimizer.plan_cache == nullptr) {
      PlanCacheOptions copt;
      copt.max_entries = options_.plan_cache_entries;
      cache_ = std::make_unique<PlanCache>(store_.get(), copt);
    }
  }
}

std::vector<BatchResult> BatchOptimizer::OptimizeAll(
    const std::vector<BatchQuery>& queries) {
  std::vector<BatchResult> results(queries.size());
  std::atomic<size_t> next{0};
  const int pool =
      std::max(1, std::min<int>(jobs_, static_cast<int>(queries.size())));
  // One private sink per worker: emission never crosses threads, so sinks
  // stay lock-free; the streams are merged after the join barrier below.
  // With a DiagService armed, workers keep a (small) flight-recorder ring
  // even when the caller asked for no batch trace.
  std::vector<std::unique_ptr<common::RingBufferSink>> sinks;
  const size_t sink_capacity = options_.trace_capacity > 0
                                   ? options_.trace_capacity
                                   : (options_.diag != nullptr
                                          ? options_.flight_recorder_capacity
                                          : 0);
  if (sink_capacity > 0) {
    sinks.reserve(static_cast<size_t>(pool));
    for (int t = 0; t < pool; ++t) {
      sinks.push_back(std::make_unique<common::RingBufferSink>(sink_capacity));
    }
  }
  auto worker = [&](int wid) {
    OptimizerOptions opt = options_.optimizer;
    common::RingBufferSink* sink =
        sinks.empty() ? nullptr : sinks[static_cast<size_t>(wid)].get();
    opt.trace = sink;
    if (cache_ != nullptr) opt.plan_cache = cache_.get();
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) return;
      const BatchQuery& q = queries[i];
      BatchResult& r = results[i];
      if (q.tree == nullptr) {
        r.plan = common::Status::InvalidArgument("batch query has no tree");
        continue;
      }
      const size_t mark = sink != nullptr ? sink->total_emitted() : 0;
      common::Stopwatch sw;
      Optimizer optimizer(rules_, q.catalog, opt, store_.get());
      r.plan = optimizer.Optimize(*q.tree);
      r.seconds = sw.ElapsedSeconds();
      r.stats = optimizer.stats();
      if (options_.diag != nullptr) {
        const double latency_ms = r.seconds * 1e3;
        const DiagTrigger trig =
            options_.diag->Check(latency_ms, r.stats, /*max_qerror=*/0);
        if (trig != DiagTrigger::kNone) {
          // Trigger path: now (and only now) pay for rendering the query,
          // slicing the flight recorder, and walking the winner.
          // TreeString (not ToString): the descriptor annotations carry
          // the constants, so distinct queries get distinct fingerprints.
          QueryDiag qd;
          qd.query_text = q.tree->TreeString(*rules_->algebra);
          qd.latency_ms = latency_ms;
          qd.stats = &r.stats;
          if (sink != nullptr) {
            qd.trace_slice = sink->SnapshotSince(mark);
            const size_t emitted = sink->total_emitted() - mark;
            qd.trace_dropped = emitted - qd.trace_slice.size();
          }
          if (r.plan.ok() && !r.stats.plan_from_cache) {
            qd.provenance = optimizer.ExplainWinner();
          }
          options_.diag->Report(trig, qd);
        }
      }
    }
  };
  if (pool <= 1) {
    worker(0);
  } else {
    // One long-lived task per worker on the shared pool; each drains the
    // `next` counter, so queries balance across workers regardless of how
    // the pool schedules the tasks.
    common::WorkPool wp(pool);
    for (int t = 0; t < pool; ++t) {
      wp.Submit([&worker, t](int) { worker(t); });
    }
    wp.RunUntilIdle();
  }
  // The pool has drained: merge the per-worker streams into one
  // timestamp-ordered trace (steady-clock timestamps are comparable across
  // threads on one host).
  trace_.clear();
  trace_dropped_ = 0;
  // Diag-only flight recorders are not exported here: trace_events() keeps
  // meaning "the full batch trace the caller asked for".
  if (options_.trace_capacity > 0) {
    for (const auto& sink : sinks) {
      std::vector<common::TraceEvent> events = sink->Snapshot();
      trace_.insert(trace_.end(), events.begin(), events.end());
      trace_dropped_ += sink->dropped();
    }
  }
  std::sort(trace_.begin(), trace_.end(),
            [](const common::TraceEvent& a, const common::TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
#if PRAIRIE_METRICS
  // Post-barrier batch metrics. Per-query counters were already flushed by
  // each worker's optimizers (same bundle, sharded counters: no
  // contention); here only the batch-level shape is recorded.
  if (const VolcanoMetrics* mm = options_.optimizer.metrics) {
    if (mm->batch_runs != nullptr) mm->batch_runs->Inc();
    if (mm->batch_worker_merges != nullptr) {
      mm->batch_worker_merges->Inc(static_cast<uint64_t>(pool));
    }
  }
#endif
  return results;
}

}  // namespace prairie::volcano

#include "volcano/batch.h"

#include <atomic>
#include <thread>

#include "common/stopwatch.h"

namespace prairie::volcano {

BatchOptimizer::BatchOptimizer(const RuleSet* rules, BatchOptions options)
    : rules_(rules), options_(options) {
  jobs_ = options_.jobs;
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
  if (options_.share_store) {
    store_ = std::make_unique<algebra::DescriptorStore>(
        &rules_->algebra->properties(),
        jobs_ > 1 ? algebra::StoreMode::kConcurrent
                  : algebra::StoreMode::kSerial);
  }
}

std::vector<BatchResult> BatchOptimizer::OptimizeAll(
    const std::vector<BatchQuery>& queries) {
  std::vector<BatchResult> results(queries.size());
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= queries.size()) return;
      const BatchQuery& q = queries[i];
      BatchResult& r = results[i];
      if (q.tree == nullptr) {
        r.plan = common::Status::InvalidArgument("batch query has no tree");
        continue;
      }
      common::Stopwatch sw;
      Optimizer optimizer(rules_, q.catalog, options_.optimizer,
                          store_.get());
      r.plan = optimizer.Optimize(*q.tree);
      r.seconds = sw.ElapsedSeconds();
      r.stats = optimizer.stats();
    }
  };
  const int pool = std::min<int>(jobs_, static_cast<int>(queries.size()));
  if (pool <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(pool));
  for (int t = 0; t < pool; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return results;
}

}  // namespace prairie::volcano

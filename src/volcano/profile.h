// Consumers of the optimizer's trace-event stream (observability layer):
//
//   * BuildRuleProfile — aggregates the stream into per-rule attempt/firing
//     counts and latencies (the "where does optimization time go" view).
//   * WriteChromeTrace — exports the stream in Chrome trace_event JSON, the
//     format chrome://tracing and Perfetto load directly.
//
// Both are pure functions of one event vector plus the RuleSet that names
// the rule indexes; the engine never links against them.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/trace.h"
#include "volcano/rules.h"

namespace prairie::volcano {

/// \brief Aggregated activity of one rule (or enforcer).
struct RuleProfileRow {
  std::string name;
  size_t attempts = 0;   ///< Attempt spans observed.
  size_t fired = 0;      ///< Trans: expressions added. Impl: plans costed.
  uint64_t total_ns = 0; ///< Cumulative attempt-span latency.
  uint64_t max_ns = 0;   ///< Longest single attempt.
};

/// \brief Per-rule profile derived from one trace-event stream.
struct RuleProfile {
  std::vector<RuleProfileRow> trans;
  std::vector<RuleProfileRow> impl;
  std::vector<RuleProfileRow> enforcers;
  size_t events = 0;   ///< Events aggregated.
  size_t dropped = 0;  ///< Events lost to ring wrap (caller-supplied).

  /// Sum of trans-rule firings — equals OptimizerStats::trans_fired when
  /// the stream is complete (dropped == 0).
  size_t TotalTransFired() const;

  /// Human-readable table (one section per rule class), rules sorted by
  /// cumulative latency; rules never attempted are omitted.
  std::string ToTable() const;
};

/// Aggregates `events` against the rule names of `rules`. `dropped` is the
/// emitting sink's drop count (RingBufferSink::dropped()); it is carried
/// into the profile so consumers can flag an incomplete stream.
RuleProfile BuildRuleProfile(const std::vector<common::TraceEvent>& events,
                             const RuleSet& rules, size_t dropped = 0);

/// Writes `events` to `path` in Chrome trace_event JSON ("X" complete
/// events for spans, "i" instants; timestamps rebased to the earliest
/// event). Load the file in chrome://tracing or https://ui.perfetto.dev.
/// `dropped` is the emitting sink's ring-wrap loss count; it is recorded
/// as metadata ("dropped_events") so a viewer of an incomplete stream
/// knows it is incomplete.
common::Status WriteChromeTrace(const std::string& path,
                                const std::vector<common::TraceEvent>& events,
                                const RuleSet& rules, size_t dropped = 0);

}  // namespace prairie::volcano

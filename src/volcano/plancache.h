// Plan cache: fingerprinted, sharded, epoch-invalidated reuse of
// optimized plans (DESIGN.md §8).
//
// Under production traffic most queries are structurally identical to one
// the optimizer already solved; industrial optimizers avoid re-running the
// search via a plan cache. This cache is keyed on a canonical query
// fingerprint: the structural serialization of the input operator tree
// over *interned* DescriptorIds (algebra::Expr::Fingerprint) plus the
// interned required physical property and the catalog's process-unique
// uid. Interned ids are canonical per DescriptorStore, so the key bytes
// are collision-free over one store — and every probe verifies the full
// key, never a hash alone, so a 64-bit fingerprint collision costs a miss,
// not a wrong plan.
//
// Concurrency follows the descriptor store's kConcurrent design: the table
// is split into mutex-guarded shards selected by fingerprint, so
// BatchOptimizer workers probe and insert concurrently with contention
// only within a shard. Entries hold the winning Plan (immutable
// shared-ownership PhysNode trees — a hit hands out a reference-counted
// copy without touching the search engine), its cost, and optional
// provenance text.
//
// Eviction is per-shard LRU under a configurable entry/byte budget.
// Invalidation is epoch-based: entries record the owning catalog's
// version() at optimization start; a probe whose catalog has since been
// mutated (version mismatch) lazily drops the stale entry and reports a
// miss — stale plans are never served, and no mutation-time sweep of the
// cache is needed (COBRA-style sensitivity to catalog state).
//
// What is deliberately NOT cached: failed optimizations (no plan under the
// cost limit — the failure depends on the caller's limit, not just the
// query), and plans whose optimization raced a catalog mutation (the
// version moved between fingerprinting and insert).

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "algebra/descriptor_store.h"
#include "algebra/expr.h"
#include "catalog/catalog.h"
#include "volcano/plan.h"

namespace prairie::volcano {

/// \brief Sizing knobs. Defaults fit a service-sized working set while
/// keeping the TSan/unit suites able to force evictions cheaply.
struct PlanCacheOptions {
  /// Mutex-guarded shards; rounded up to a power of two, min 1. More
  /// shards = less probe contention between batch workers.
  size_t shards = 16;
  /// Total cached plans across shards (split evenly); 0 disables the
  /// entry budget.
  size_t max_entries = 4096;
  /// Approximate total retained bytes across shards (keys + plan trees +
  /// provenance, split evenly); 0 disables the byte budget.
  size_t max_bytes = 64u << 20;
};

/// \brief Monotonic traffic counters (relaxed atomics; exact under any
/// concurrency).
struct PlanCacheStats {
  uint64_t probes = 0;       ///< Probe() calls.
  uint64_t hits = 0;         ///< Probes served from the cache.
  uint64_t misses = 0;       ///< Probes that found nothing usable.
  uint64_t stale_drops = 0;  ///< Entries dropped for an epoch mismatch.
  uint64_t inserts = 0;      ///< Entries stored.
  uint64_t evictions = 0;    ///< Entries evicted by the LRU budgets.
  uint64_t skipped_inserts = 0;  ///< Inserts refused (raced a mutation).
};

/// \brief Sharded, LRU-evicted, epoch-invalidated cache of winning plans.
///
/// A cache is bound to ONE DescriptorStore: keys embed that store's
/// interned ids, so they are meaningless against any other store. The
/// engine refuses (bypasses) a cache whose store does not match its own.
/// Safe for concurrent Probe/Insert from any number of threads.
class PlanCache {
 public:
  explicit PlanCache(const algebra::DescriptorStore* store,
                     PlanCacheOptions options = PlanCacheOptions());

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The descriptor store this cache's keys are interned through.
  const algebra::DescriptorStore* store() const { return store_; }

  /// \brief A computed cache key: the 64-bit fingerprint (shard/bucket
  /// selector) plus the canonical serialization it hashes (the verified
  /// full key). `epoch` snapshots catalog.version() at key-build time —
  /// Insert() refuses the plan if the catalog moved past it.
  struct Key {
    uint64_t fingerprint = 0;
    std::string bytes;
    uint64_t catalog_uid = 0;
    uint64_t epoch = 0;
  };

  /// Builds the canonical key for optimizing `tree` under the interned
  /// requirement `req_id` against `catalog`, interning through `store`
  /// (must be the cache's store for the key to be usable). Cost is one
  /// tree walk with all-hit interning probes — the quantity warm-path
  /// latency is made of.
  static Key MakeKey(const algebra::Expr& tree, algebra::DescriptorId req_id,
                     const catalog::Catalog& catalog,
                     algebra::DescriptorStore* store);

  /// \brief A served cache hit.
  struct Hit {
    Plan plan;               ///< Shares the cached immutable plan tree.
    std::string provenance;  ///< As recorded by Insert (may be empty).
  };

  /// Probes for `key`. A present entry whose epoch no longer matches
  /// `catalog.version()` is dropped (counted in stale_drops, reported via
  /// `*dropped_stale` when non-null) and reported as a miss; a genuine hit
  /// refreshes LRU recency and fills `*hit`.
  bool Probe(const Key& key, const catalog::Catalog& catalog, Hit* hit,
             bool* dropped_stale = nullptr);

  /// Stores the winning plan for `key`. Refused (skipped_inserts) when the
  /// catalog's version moved past key.epoch — the search may have read
  /// mixed catalog state. Replaces an existing equal-key entry (e.g. one
  /// inserted by a racing worker) and evicts LRU entries past the shard
  /// budgets.
  void Insert(const Key& key, const catalog::Catalog& catalog,
              const Plan& plan, std::string provenance = std::string());

  PlanCacheStats stats() const;

  /// Live entries / approximate retained bytes across all shards.
  size_t size() const;
  size_t bytes() const;

 private:
  struct Entry {
    std::string key_bytes;
    uint64_t fingerprint = 0;
    uint64_t epoch = 0;
    Plan plan;
    std::string provenance;
    size_t bytes = 0;  ///< Approximate retained size of this entry.
  };

  /// One shard: an LRU list (front = most recent) indexed by fingerprint.
  /// A multimap tolerates distinct keys sharing a fingerprint.
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;
    std::unordered_multimap<uint64_t, std::list<Entry>::iterator> by_fp;
    size_t bytes = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return shards_[(fingerprint >> 48) & (num_shards_ - 1)];
  }
  static size_t EntryBytes(const Entry& e);
  /// Unlinks `it` from `sh` (caller holds sh.mu and has located the
  /// matching by_fp slot via `fp_it`).
  void Erase(Shard& sh,
             std::unordered_multimap<uint64_t,
                                     std::list<Entry>::iterator>::iterator
                 fp_it);
  void EvictOver(Shard& sh);

  const algebra::DescriptorStore* store_;
  PlanCacheOptions options_;
  size_t num_shards_ = 1;
  size_t shard_entry_budget_ = 0;  ///< 0 = unlimited.
  size_t shard_byte_budget_ = 0;   ///< 0 = unlimited.
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_drops_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> skipped_inserts_{0};
};

}  // namespace prairie::volcano

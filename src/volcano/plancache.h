// Plan cache: fingerprinted, sharded, epoch-invalidated reuse of
// optimized plans (DESIGN.md §8).
//
// Under production traffic most queries are structurally identical to one
// the optimizer already solved; industrial optimizers avoid re-running the
// search via a plan cache. This cache is keyed on a canonical query
// fingerprint: the structural serialization of the input operator tree
// over *interned* DescriptorIds (algebra::Expr::Fingerprint) plus the
// interned required physical property and the catalog's process-unique
// uid. Interned ids are canonical per DescriptorStore, so the key bytes
// are collision-free over one store — and every probe verifies the full
// key, never a hash alone, so a 64-bit fingerprint collision costs a miss,
// not a wrong plan.
//
// Concurrency follows the descriptor store's kConcurrent design: the table
// is split into mutex-guarded shards selected by fingerprint, so
// BatchOptimizer workers probe and insert concurrently with contention
// only within a shard. Entries hold the winning Plan (immutable
// shared-ownership PhysNode trees — a hit hands out a reference-counted
// copy without touching the search engine), its cost, and optional
// provenance text.
//
// Eviction is per-shard LRU under a configurable entry/byte budget.
// Invalidation is epoch-based: entries record the owning catalog's
// version() at optimization start; a probe whose catalog has since been
// mutated (version mismatch) lazily drops the stale entry and reports a
// miss — stale plans are never served, and no mutation-time sweep of the
// cache is needed (COBRA-style sensitivity to catalog state).
//
// What is deliberately NOT cached: failed optimizations (no plan under the
// cost limit — the failure depends on the caller's limit, not just the
// query), and plans whose optimization raced a catalog mutation (the
// version moved between fingerprinting and insert).
//
// Parameterized entries (ProbeParam/InsertParam) extend exact matching to
// queries that differ only in literal constants: keys are built over a
// constant-stripped skeleton (algebra::ParameterizeQuery), entries store
// the winning plan with parameter markers in place, and a hit rebinds the
// probe's constants into a copy-on-write copy of the plan tree. A
// selectivity band guard (PlanCacheOptions::param_band) keeps
// parameter-sensitive plans from serving bindings they were not optimized
// for; out-of-band bindings optimize fresh and may add per-band variants
// under the same skeleton key.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "algebra/descriptor_store.h"
#include "algebra/expr.h"
#include "algebra/param.h"
#include "catalog/catalog.h"
#include "volcano/plan.h"

namespace prairie::volcano {

/// Value-aware selectivity estimate of a parameter binding: the product of
/// per-slot factors derived from catalog distinct-value counts and, for
/// range comparisons over integers, the constant's position within the
/// [0, distinct) domain. Deliberately separate from the value-blind
/// catalog::EstimateSelectivity the cost model uses (which must stay
/// constant-independent so skeletons fingerprint identically) — this one
/// exists only to judge whether two bindings are plan-compatible.
double ParamSelectivity(const std::vector<algebra::ParamSlot>& slots,
                        const catalog::Catalog& catalog);

/// \brief Sizing knobs. Defaults fit a service-sized working set while
/// keeping the TSan/unit suites able to force evictions cheaply.
struct PlanCacheOptions {
  /// Mutex-guarded shards; rounded up to a power of two, min 1. More
  /// shards = less probe contention between batch workers.
  size_t shards = 16;
  /// Total cached plans across shards (split evenly); 0 disables the
  /// entry budget.
  size_t max_entries = 4096;
  /// Approximate total retained bytes across shards (keys + plan trees +
  /// provenance + parameter vectors, split evenly); 0 disables the byte
  /// budget.
  size_t max_bytes = 64u << 20;
  /// Parameter-sensitivity band for skeleton entries (Cobra-style): a
  /// parameterized probe whose estimated binding selectivity differs from
  /// the cached entry's by more than this factor is rejected by the guard
  /// and falls through to fresh optimization (which may populate a
  /// per-band variant under the same skeleton key). 0 disables the guard.
  double param_band = 4.0;
};

/// \brief Monotonic traffic counters (relaxed atomics; exact under any
/// concurrency).
struct PlanCacheStats {
  uint64_t probes = 0;       ///< Probe() calls.
  uint64_t hits = 0;         ///< Probes served from the cache.
  uint64_t misses = 0;       ///< Probes that found nothing usable.
  uint64_t stale_drops = 0;  ///< Entries dropped for an epoch mismatch.
  uint64_t inserts = 0;      ///< Entries stored.
  uint64_t evictions = 0;    ///< Entries evicted by the LRU budgets.
  uint64_t skipped_inserts = 0;  ///< Inserts refused (raced a mutation).
  uint64_t param_hits = 0;   ///< ProbeParam probes served from a skeleton.
  uint64_t param_inserts = 0;  ///< Rebindable skeleton entries stored.
  uint64_t unrebindable_inserts = 0;  ///< Skeleton entries stored
                                      ///< exact-only (plan constants could
                                      ///< not be attributed to slots).
  uint64_t sensitivity_rejects = 0;  ///< Probes a guard band turned away.
};

/// \brief Sharded, LRU-evicted, epoch-invalidated cache of winning plans.
///
/// A cache is bound to ONE DescriptorStore: keys embed that store's
/// interned ids, so they are meaningless against any other store. The
/// engine refuses (bypasses) a cache whose store does not match its own.
/// Safe for concurrent Probe/Insert from any number of threads.
class PlanCache {
 public:
  explicit PlanCache(const algebra::DescriptorStore* store,
                     PlanCacheOptions options = PlanCacheOptions());

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The descriptor store this cache's keys are interned through.
  const algebra::DescriptorStore* store() const { return store_; }

  /// \brief A computed cache key: the 64-bit fingerprint (shard/bucket
  /// selector) plus the canonical serialization it hashes (the verified
  /// full key). `epoch` snapshots catalog.version() at key-build time —
  /// Insert() refuses the plan if the catalog moved past it.
  struct Key {
    uint64_t fingerprint = 0;
    std::string bytes;
    uint64_t catalog_uid = 0;
    uint64_t epoch = 0;
  };

  /// Builds the canonical key for optimizing `tree` under the interned
  /// requirement `req_id` against `catalog`, interning through `store`
  /// (must be the cache's store for the key to be usable). Cost is one
  /// tree walk with all-hit interning probes — the quantity warm-path
  /// latency is made of.
  static Key MakeKey(const algebra::Expr& tree, algebra::DescriptorId req_id,
                     const catalog::Catalog& catalog,
                     algebra::DescriptorStore* store);

  /// \brief A served cache hit.
  struct Hit {
    Plan plan;               ///< Shares the cached immutable plan tree.
    std::string provenance;  ///< As recorded by Insert (may be empty).
  };

  /// Probes for `key`. A present entry whose epoch no longer matches
  /// `catalog.version()` is dropped (counted in stale_drops, reported via
  /// `*dropped_stale` when non-null) and reported as a miss; a genuine hit
  /// refreshes LRU recency and fills `*hit`.
  bool Probe(const Key& key, const catalog::Catalog& catalog, Hit* hit,
             bool* dropped_stale = nullptr);

  /// Stores the winning plan for `key`. Refused (skipped_inserts) when the
  /// catalog's version moved past key.epoch — the search may have read
  /// mixed catalog state. Replaces an existing equal-key entry (e.g. one
  /// inserted by a racing worker) and evicts LRU entries past the shard
  /// budgets.
  void Insert(const Key& key, const catalog::Catalog& catalog,
              const Plan& plan, std::string provenance = std::string());

  /// \brief One parameterized probe/insert context: the slots the query
  /// canonicalized into (values included) and the binding's selectivity
  /// estimate (ParamSelectivity) for the sensitivity guard.
  struct ParamInfo {
    std::vector<algebra::ParamSlot> slots;
    double guard_est = 1.0;
  };

  /// Probes a skeleton `key` (built over a ParameterizeQuery skeleton) for
  /// an entry serving `info`'s binding. A rebindable entry within the
  /// sensitivity band serves a hit by rebinding the probe's constants into
  /// a fresh copy-on-write copy of the cached plan tree; an exact-only
  /// entry serves a hit when its recorded constants equal the probe's.
  /// Entries outside the band are left in place and `*guard_rejected` is
  /// set — the caller should optimize fresh (and InsertParam may add a
  /// band variant under the same key). Stale-epoch entries are dropped as
  /// in Probe(). Skeleton entries are invisible to Probe() and vice versa.
  bool ProbeParam(const Key& key, const catalog::Catalog& catalog,
                  const ParamInfo& info, Hit* hit,
                  bool* dropped_stale = nullptr,
                  bool* guard_rejected = nullptr);

  /// Stores the winner for a skeleton `key`, optimized with `info`'s
  /// binding. The plan's constants are matched back to the slots
  /// (algebra::SlotMatcher); if every slot is used exactly and
  /// unambiguously the plan is stored with markers in place (rebindable,
  /// param_inserts), otherwise verbatim with the binding recorded for
  /// exact-value matching only (unrebindable_inserts) — a plan whose
  /// constants cannot be proven to descend from the query's is never
  /// rebound. Replaces the band-compatible rebindable variant (or the
  /// equal-values exact variant); distinct bands accumulate as variants
  /// under one key, bounded by the LRU budgets. Epoch-refusal as Insert().
  void InsertParam(const Key& key, const catalog::Catalog& catalog,
                   const ParamInfo& info, const Plan& plan,
                   std::string provenance = std::string());

  PlanCacheStats stats() const;

  /// Live entries / approximate retained bytes across all shards.
  size_t size() const;
  size_t bytes() const;

 private:
  struct Entry {
    std::string key_bytes;
    uint64_t fingerprint = 0;
    uint64_t epoch = 0;
    Plan plan;
    std::string provenance;
    size_t bytes = 0;  ///< Approximate retained size of this entry.
    /// Skeleton entry (InsertParam): invisible to exact Probe().
    bool is_param = false;
    /// Plan tree carries markers; hits rebind the probe's constants.
    bool rebindable = false;
    /// The binding the plan was optimized for (slot order). Rebindable
    /// entries keep it for diagnostics; exact-only entries match on it.
    std::vector<algebra::Scalar> values;
    /// ParamSelectivity of `values` at insert time (guard band anchor).
    double guard_est = 1.0;
  };

  /// One shard: an LRU list (front = most recent) indexed by fingerprint.
  /// A multimap tolerates distinct keys sharing a fingerprint.
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;
    std::unordered_multimap<uint64_t, std::list<Entry>::iterator> by_fp;
    size_t bytes = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return shards_[(fingerprint >> 48) & (num_shards_ - 1)];
  }
  static size_t EntryBytes(const Entry& e);
  /// Unlinks `it` from `sh` (caller holds sh.mu and has located the
  /// matching by_fp slot via `fp_it`).
  void Erase(Shard& sh,
             std::unordered_multimap<uint64_t,
                                     std::list<Entry>::iterator>::iterator
                 fp_it);
  void EvictOver(Shard& sh);

  const algebra::DescriptorStore* store_;
  PlanCacheOptions options_;
  size_t num_shards_ = 1;
  size_t shard_entry_budget_ = 0;  ///< 0 = unlimited.
  size_t shard_byte_budget_ = 0;   ///< 0 = unlimited.
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> stale_drops_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> skipped_inserts_{0};
  std::atomic<uint64_t> param_hits_{0};
  std::atomic<uint64_t> param_inserts_{0};
  std::atomic<uint64_t> unrebindable_inserts_{0};
  std::atomic<uint64_t> sensitivity_rejects_{0};
};

}  // namespace prairie::volcano

#include "volcano/memo.h"

#include <cassert>

#include "common/hash.h"
#include "common/strings.h"

namespace prairie::volcano {

using common::Result;
using common::Status;

Memo::Memo(const RuleSet* rules, MemoLimits limits,
           algebra::DescriptorStore* shared_store)
    : rules_(rules),
      limits_(limits),
      owned_store_(shared_store != nullptr
                       ? nullptr
                       : std::make_unique<algebra::DescriptorStore>(
                             &rules->algebra->properties())),
      store_(shared_store != nullptr ? shared_store : owned_store_.get()),
      arg_slice_id_(store_->RegisterSlice(rules->ArgSlice())) {
  assert(store_->schema() == &rules->algebra->properties() &&
         "shared store must use the rule set's property schema");
}

GroupId Memo::Find(GroupId g) const {
  GroupId root = g;
  while (parent_[static_cast<size_t>(root)] != root) {
    root = parent_[static_cast<size_t>(root)];
  }
  // Path compression.
  while (parent_[static_cast<size_t>(g)] != root) {
    GroupId next = parent_[static_cast<size_t>(g)];
    parent_[static_cast<size_t>(g)] = root;
    g = next;
  }
  return root;
}

void Memo::EnsureKey(MExpr& m) {
  if (m.arg_key == algebra::kInvalidDescriptorId) {
    m.arg_key = store_->Project(arg_slice_id_, m.args);
  }
}

uint64_t Memo::KeyOf(const MExpr& m) const {
  uint64_t h = m.is_file ? common::HashMix(0x417e, m.file)
                         : common::HashMix(0x09a1, m.op);
  h = common::HashCombine(h, store_->HashOf(m.arg_key));
  for (GroupId c : m.children) {
    h = common::HashMix(h, static_cast<int64_t>(Find(c)));
  }
  return h;
}

bool Memo::SameExpr(const MExpr& a, const MExpr& b) const {
  if (a.is_file != b.is_file || a.op != b.op || a.file != b.file ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (Find(a.children[i]) != Find(b.children[i])) return false;
  }
  // Interned identity: one integer compare instead of a deep slice walk.
  return a.arg_key == b.arg_key;
}

Result<GroupId> Memo::NewGroup(MExpr m, algebra::DescriptorId desc) {
  if (groups_.size() >= limits_.max_groups) {
    return Status::ResourceExhausted(
        "memo group limit reached (" + std::to_string(limits_.max_groups) +
        " groups); the search space exploded");
  }
  GroupId id = static_cast<GroupId>(groups_.size());
  groups_.emplace_back();
  parent_.push_back(id);
  Group& g = groups_.back();
  g.stream_desc = desc;
  uint64_t key = KeyOf(m);
  g.exprs.push_back(std::move(m));
  ++num_exprs_;
  ++tallies_.groups_created;
  ++tallies_.exprs_inserted;
  index_.emplace(key, std::make_pair(id, 0));
  return id;
}

Result<GroupId> Memo::GetOrCreateGroup(MExpr m, algebra::DescriptorId desc) {
  EnsureKey(m);
  uint64_t key = KeyOf(m);
  auto [begin, end] = index_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    GroupId g = Find(it->second.first);
    const Group& grp = groups_[static_cast<size_t>(g)];
    int idx = it->second.second;
    if (idx < static_cast<int>(grp.exprs.size()) &&
        SameExpr(grp.exprs[static_cast<size_t>(idx)], m)) {
      ++tallies_.exprs_deduped;
      return g;
    }
  }
  return NewGroup(std::move(m), desc);
}

Result<bool> Memo::InsertInto(GroupId g, MExpr m) {
  g = Find(g);
  EnsureKey(m);
  uint64_t key = KeyOf(m);
  auto [begin, end] = index_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    GroupId h = Find(it->second.first);
    const Group& grp = groups_[static_cast<size_t>(h)];
    int idx = it->second.second;
    if (idx >= static_cast<int>(grp.exprs.size()) ||
        !SameExpr(grp.exprs[static_cast<size_t>(idx)], m)) {
      continue;
    }
    if (h == g) {
      ++tallies_.exprs_deduped;
      return false;  // Already present in this group.
    }
    // The expression proves g and h equivalent: merge.
    ++tallies_.exprs_deduped;
    PRAIRIE_RETURN_NOT_OK(Merge(g, h));
    return false;
  }
  if (num_exprs_ >= limits_.max_exprs) {
    return Status::ResourceExhausted(
        "memo expression limit reached (" + std::to_string(limits_.max_exprs) +
        " expressions); the search space exploded");
  }
  Group& grp = groups_[static_cast<size_t>(g)];
  int idx = static_cast<int>(grp.exprs.size());
  grp.exprs.push_back(std::move(m));
  ++num_exprs_;
  ++tallies_.exprs_inserted;
  index_.emplace(key, std::make_pair(g, idx));
  return true;
}

Status Memo::Merge(GroupId keep, GroupId lose) {
  keep = Find(keep);
  lose = Find(lose);
  if (keep == lose) return Status::OK();
  // Keep the smaller id as representative for stable statistics.
  if (lose < keep) std::swap(keep, lose);
  Group& kg = groups_[static_cast<size_t>(keep)];
  Group& lg = groups_[static_cast<size_t>(lose)];
  parent_[static_cast<size_t>(lose)] = keep;
  ++tallies_.groups_merged;
  // Move the loser's expressions in, re-deduplicating against the keeper.
  for (MExpr& m : lg.exprs) {
    uint64_t key = KeyOf(m);
    bool dup = false;
    auto [begin, end] = index_.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      if (Find(it->second.first) != keep) continue;
      const Group& grp = groups_[static_cast<size_t>(keep)];
      int idx = it->second.second;
      if (idx < static_cast<int>(grp.exprs.size()) &&
          SameExpr(grp.exprs[static_cast<size_t>(idx)], m)) {
        dup = true;
        break;
      }
    }
    if (dup) {
      --num_exprs_;
      ++tallies_.exprs_deduped;
      continue;
    }
    int idx = static_cast<int>(kg.exprs.size());
    kg.exprs.push_back(std::move(m));
    index_.emplace(key, std::make_pair(keep, idx));
  }
  lg.exprs.clear();
  lg.merged_away = true;
  // Winners may no longer be best (new expressions arrived): recompute.
  kg.winners.clear();
  lg.winners.clear();
  kg.prov.clear();
  lg.prov.clear();
  kg.expanded = false;
  ++merge_epoch_;
  return Status::OK();
}

Result<GroupId> Memo::CopyIn(const algebra::Expr& tree) {
  MExpr m;
  if (tree.is_file()) {
    m.is_file = true;
    m.file = tree.file_name();
    const algebra::DescriptorId d = store_->Intern(tree.descriptor());
    m.args = d;
    return GetOrCreateGroup(std::move(m), d);
  }
  if (rules_->algebra->is_algorithm(tree.op())) {
    return Status::InvalidArgument(
        "input operator trees must be logical; found algorithm '" +
        rules_->algebra->name(tree.op()) + "'");
  }
  m.op = tree.op();
  const algebra::DescriptorId d = store_->Intern(tree.descriptor());
  m.args = d;
  m.children.reserve(tree.num_children());
  for (const algebra::ExprPtr& c : tree.children()) {
    PRAIRIE_ASSIGN_OR_RETURN(GroupId cg, CopyIn(*c));
    m.children.push_back(cg);
  }
  return GetOrCreateGroup(std::move(m), d);
}

size_t Memo::NumGroups() const {
  size_t n = 0;
  for (const Group& g : groups_) {
    if (!g.merged_away) ++n;
  }
  return n;
}

size_t Memo::NumExprs() const { return num_exprs_; }

std::string Memo::ToString(const algebra::Algebra& algebra) const {
  std::string out;
  for (size_t i = 0; i < groups_.size(); ++i) {
    const Group& g = groups_[i];
    if (g.merged_away) continue;
    out += common::StringPrintf("group %d:\n", static_cast<int>(i));
    for (const MExpr& m : g.exprs) {
      out += "  ";
      if (m.is_file) {
        out += m.file;
      } else {
        out += algebra.name(m.op) + "(";
        std::vector<std::string> parts;
        for (GroupId c : m.children) {
          parts.push_back("g" + std::to_string(Find(c)));
        }
        out += common::Join(parts, ", ") + ")";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace prairie::volcano

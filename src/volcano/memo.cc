#include "volcano/memo.h"

#include <cassert>

#include "common/hash.h"
#include "common/strings.h"

namespace prairie::volcano {

using common::Result;
using common::Status;

Memo::Memo(const RuleSet* rules, MemoLimits limits,
           algebra::DescriptorStore* shared_store, MemoMode mode)
    : rules_(rules),
      limits_(limits),
      mode_(mode),
      owned_store_(shared_store != nullptr
                       ? nullptr
                       : std::make_unique<algebra::DescriptorStore>(
                             &rules->algebra->properties(),
                             mode == MemoMode::kConcurrent
                                 ? algebra::StoreMode::kConcurrent
                                 : algebra::StoreMode::kSerial)),
      store_(shared_store != nullptr ? shared_store : owned_store_.get()),
      arg_slice_id_(store_->RegisterSlice(rules->ArgSlice())),
      groups_(&arena_),
      parent_(&arena_) {
  assert(store_->schema() == &rules->algebra->properties() &&
         "shared store must use the rule set's property schema");
  assert((mode_ != MemoMode::kConcurrent || store_->concurrent()) &&
         "a concurrent memo needs a concurrent descriptor store");
}

GroupId Memo::Find(GroupId g) const {
  GroupId root = g;
  for (;;) {
    const GroupId p =
        parent_[static_cast<size_t>(root)].load(std::memory_order_acquire);
    if (p == root) break;
    root = p;
  }
  // Path compression. Parent links only ever step toward smaller ids, so a
  // racy CAS that loses simply leaves one extra hop for the next reader.
  while (g != root) {
    GroupId next =
        parent_[static_cast<size_t>(g)].load(std::memory_order_relaxed);
    if (next == root) break;
    parent_[static_cast<size_t>(g)].compare_exchange_weak(
        next, root, std::memory_order_relaxed);
    g = next;
  }
  return root;
}

void Memo::EnsureKey(MExpr& m) {
  if (m.arg_key == algebra::kInvalidDescriptorId) {
    m.arg_key = store_->Project(arg_slice_id_, m.args);
  }
}

uint64_t Memo::KeyOf(const MExpr& m) const {
  uint64_t h = m.is_file ? common::HashMix(0x417e, m.file)
                         : common::HashMix(0x09a1, m.op);
  h = common::HashCombine(h, store_->HashOf(m.arg_key));
  for (GroupId c : m.children) {
    h = common::HashMix(h, static_cast<int64_t>(Find(c)));
  }
  return h;
}

bool Memo::SameExpr(const MExpr& a, const MExpr& b) const {
  if (a.is_file != b.is_file || a.op != b.op || a.file != b.file ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (Find(a.children[i]) != Find(b.children[i])) return false;
  }
  // Interned identity: one integer compare instead of a deep slice walk.
  return a.arg_key == b.arg_key;
}

GroupId Memo::FindDup(const IndexShard& sh, uint64_t key,
                      const MExpr& m) const {
  auto [begin, end] = sh.map.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    const GroupId g = Find(it->second.first);
    const Group& grp = groups_[static_cast<size_t>(g)];
    const int idx = it->second.second;
    if (idx < static_cast<int>(grp.exprs.size()) &&
        SameExpr(grp.exprs[static_cast<size_t>(idx)], m)) {
      return g;
    }
  }
  return -1;
}

Result<GroupId> Memo::NewGroupLocked(MExpr m, algebra::DescriptorId desc,
                                     uint64_t key, IndexShard& sh) {
  // Caller holds the shard lock exclusively in concurrent mode; the group
  // table itself has its own append lock.
  std::unique_lock<std::mutex> glock(groups_mu_, std::defer_lock);
  if (concurrent()) glock.lock();
  if (groups_.size() >= limits_.max_groups) {
    return Status::ResourceExhausted(
        "memo group limit reached (" + std::to_string(limits_.max_groups) +
        " groups); the search space exploded");
  }
  const GroupId id = static_cast<GroupId>(groups_.size());
  Group& g = groups_.EmplaceBack(&arena_);
  parent_.EmplaceBack(id);
  g.stream_desc = desc;
  m.applied.EnsureCapacity(static_cast<int>(rules_->trans_rules.size()));
  g.exprs.EmplaceBack(std::move(m));
  num_exprs_.fetch_add(1, std::memory_order_relaxed);
  tally_.groups_created.fetch_add(1, std::memory_order_relaxed);
  tally_.exprs_inserted.fetch_add(1, std::memory_order_relaxed);
  sh.map.emplace(key, std::make_pair(id, 0));
  return id;
}

Result<GroupId> Memo::GetOrCreateGroupSerial(MExpr m,
                                             algebra::DescriptorId desc) {
  EnsureKey(m);
  const uint64_t key = KeyOf(m);
  IndexShard& sh = shards_[ShardOf(key)];
  const GroupId dup = FindDup(sh, key, m);
  if (dup >= 0) {
    tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
    return dup;
  }
  return NewGroupLocked(std::move(m), desc, key, sh);
}

Result<GroupId> Memo::GetOrCreateGroup(MExpr m, algebra::DescriptorId desc) {
  if (!concurrent()) return GetOrCreateGroupSerial(std::move(m), desc);
  // Inserts hold the merge lock shared so union-find results are stable
  // for the duration of one operation (merges take it exclusively).
  std::shared_lock<std::shared_mutex> ml(merge_mu_);
  EnsureKey(m);
  const uint64_t key = KeyOf(m);
  IndexShard& sh = shards_[ShardOf(key)];
  {
    std::shared_lock<std::shared_mutex> sl(sh.mu);
    const GroupId dup = FindDup(sh, key, m);
    if (dup >= 0) {
      tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
      return dup;
    }
  }
  // Re-probe under the exclusive shard lock: identical expressions hash to
  // the same shard, so this closes the create/create race.
  std::unique_lock<std::shared_mutex> sl(sh.mu);
  const GroupId dup = FindDup(sh, key, m);
  if (dup >= 0) {
    tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
    return dup;
  }
  return NewGroupLocked(std::move(m), desc, key, sh);
}

Result<bool> Memo::AppendExpr(GroupId g, MExpr m, uint64_t key,
                              IndexShard& sh) {
  if (num_exprs_.load(std::memory_order_relaxed) >= limits_.max_exprs) {
    return Status::ResourceExhausted(
        "memo expression limit reached (" + std::to_string(limits_.max_exprs) +
        " expressions); the search space exploded");
  }
  Group& grp = groups_[static_cast<size_t>(g)];
  std::unique_lock<std::mutex> glock(grp.mu, std::defer_lock);
  if (concurrent()) glock.lock();
  const int idx = static_cast<int>(grp.exprs.size());
  m.applied.EnsureCapacity(static_cast<int>(rules_->trans_rules.size()));
  grp.exprs.EmplaceBack(std::move(m));
  num_exprs_.fetch_add(1, std::memory_order_relaxed);
  tally_.exprs_inserted.fetch_add(1, std::memory_order_relaxed);
  sh.map.emplace(key, std::make_pair(g, idx));
  return true;
}

Result<bool> Memo::InsertIntoSerial(GroupId g, MExpr m) {
  g = Find(g);
  EnsureKey(m);
  const uint64_t key = KeyOf(m);
  IndexShard& sh = shards_[ShardOf(key)];
  const GroupId dup = FindDup(sh, key, m);
  if (dup >= 0) {
    tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
    if (dup != g) {
      // The expression proves g and dup equivalent: merge.
      PRAIRIE_RETURN_NOT_OK(Merge(g, dup));
    }
    return false;
  }
  return AppendExpr(g, std::move(m), key, sh);
}

Result<bool> Memo::InsertInto(GroupId g, MExpr m) {
  if (!concurrent()) return InsertIntoSerial(g, std::move(m));
  for (;;) {
    {
      std::shared_lock<std::shared_mutex> ml(merge_mu_);
      g = Find(g);
      EnsureKey(m);
      const uint64_t key = KeyOf(m);
      IndexShard& sh = shards_[ShardOf(key)];
      GroupId dup;
      {
        std::shared_lock<std::shared_mutex> sl(sh.mu);
        dup = FindDup(sh, key, m);
      }
      if (dup == g) {
        tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (dup < 0) {
        // Append path: the exclusive shard lock re-probe closes the race
        // against a concurrent insert of the identical expression.
        std::unique_lock<std::shared_mutex> sl(sh.mu);
        const GroupId dup2 = FindDup(sh, key, m);
        if (dup2 == g) {
          tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
        if (dup2 < 0) return AppendExpr(g, std::move(m), key, sh);
        // A twin appeared in another group; fall through to the merge path
        // after releasing the shared merge lock.
      }
    }
    // The expression exists in another group: g and that group are
    // equivalent. Merging needs the merge lock exclusively; re-validate
    // after the upgrade since the world may have changed in between.
    std::unique_lock<std::shared_mutex> ml(merge_mu_);
    g = Find(g);
    const uint64_t key = KeyOf(m);
    IndexShard& sh = shards_[ShardOf(key)];
    // Exclusive merge lock excludes every inserter; no shard lock needed.
    const GroupId dup = FindDup(sh, key, m);
    if (dup < 0) continue;  // It merged away meanwhile; retry the insert.
    tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
    if (dup != g) {
      PRAIRIE_RETURN_NOT_OK(Merge(g, dup));
    }
    return false;
  }
}

Status Memo::Merge(GroupId keep, GroupId lose) {
  // Serial mode: called inline. Concurrent mode: the caller holds
  // merge_mu_ exclusively, so no insert/lookup runs concurrently.
  keep = Find(keep);
  lose = Find(lose);
  if (keep == lose) return Status::OK();
  // Keep the smaller id as representative for stable statistics.
  if (lose < keep) std::swap(keep, lose);
  Group& kg = groups_[static_cast<size_t>(keep)];
  Group& lg = groups_[static_cast<size_t>(lose)];
  parent_[static_cast<size_t>(lose)].store(keep, std::memory_order_release);
  tally_.groups_merged.fetch_add(1, std::memory_order_relaxed);
  // Fold the loser's expressions into the keeper, re-deduplicating. Serial
  // mode moves them and clears the loser (the historical behavior);
  // concurrent mode COPIES and leaves the loser's list intact, so stale
  // readers still holding (group, index) handles into the loser read
  // valid expressions and recover via Find + merge_epoch.
  const size_t n = lg.exprs.size();
  for (size_t i = 0; i < n; ++i) {
    MExpr& m = lg.exprs[i];
    const uint64_t key = KeyOf(m);
    IndexShard& sh = shards_[ShardOf(key)];
    const GroupId dup = FindDup(sh, key, m);
    if (dup == keep) {
      num_exprs_.fetch_sub(1, std::memory_order_relaxed);
      tally_.exprs_deduped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int idx = static_cast<int>(kg.exprs.size());
    if (concurrent()) {
      std::lock_guard<std::mutex> glock(kg.mu);
      kg.exprs.EmplaceBack(m);  // Copy; the loser's slot stays readable.
    } else {
      kg.exprs.EmplaceBack(std::move(m));
    }
    sh.map.emplace(key, std::make_pair(keep, idx));
  }
  if (!concurrent()) lg.exprs.Clear();
  lg.merged_away.store(true, std::memory_order_release);
  // Winners may no longer be best (new expressions arrived): recompute.
  {
    std::unique_lock<std::mutex> klock(kg.mu, std::defer_lock);
    if (concurrent()) klock.lock();
    kg.winners.clear();
    kg.prov.clear();
  }
  {
    std::unique_lock<std::mutex> llock(lg.mu, std::defer_lock);
    if (concurrent()) llock.lock();
    lg.winners.clear();
    lg.prov.clear();
  }
  kg.expanded.store(false, std::memory_order_release);
  merge_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

std::optional<Winner> Memo::FindWinner(GroupId g,
                                       algebra::DescriptorId rid) const {
  const Group& grp = group(g);
  std::unique_lock<std::mutex> lock(grp.mu, std::defer_lock);
  if (concurrent()) lock.lock();
  auto it = grp.winners.find(rid);
  if (it == grp.winners.end()) return std::nullopt;
  return it->second;
}

Winner Memo::StoreWinner(GroupId g, algebra::DescriptorId rid, Winner w,
                         WinnerProv prov) {
  Group& grp = group(g);
  std::unique_lock<std::mutex> lock(grp.mu, std::defer_lock);
  if (concurrent()) lock.lock();
  w.rid = rid;
  auto it = grp.winners.find(rid);
  if (it != grp.winners.end() && concurrent() && it->second.has_plan) {
    // Another worker finished this (group, requirement) first; both
    // searched the same expanded space, so keep the established winner.
    return it->second;
  }
  Winner& slot = grp.winners[rid];
  slot = std::move(w);
  if (slot.has_plan) {
    grp.prov[rid] = std::move(prov);
  } else {
    grp.prov.erase(rid);
  }
  return slot;
}

Result<GroupId> Memo::CopyIn(const algebra::Expr& tree) {
  MExpr m;
  if (tree.is_file()) {
    m.is_file = true;
    m.file = tree.file_name();
    const algebra::DescriptorId d = store_->Intern(tree.descriptor());
    m.args = d;
    return GetOrCreateGroup(std::move(m), d);
  }
  if (rules_->algebra->is_algorithm(tree.op())) {
    return Status::InvalidArgument(
        "input operator trees must be logical; found algorithm '" +
        rules_->algebra->name(tree.op()) + "'");
  }
  m.op = tree.op();
  const algebra::DescriptorId d = store_->Intern(tree.descriptor());
  m.args = d;
  m.children.reserve(tree.num_children());
  for (const algebra::ExprPtr& c : tree.children()) {
    PRAIRIE_ASSIGN_OR_RETURN(GroupId cg, CopyIn(*c));
    m.children.push_back(cg);
  }
  return GetOrCreateGroup(std::move(m), d);
}

size_t Memo::NumGroups() const {
  size_t n = 0;
  const size_t total = groups_.size();
  for (size_t i = 0; i < total; ++i) {
    if (!groups_[i].merged_away.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

size_t Memo::NumExprs() const {
  return num_exprs_.load(std::memory_order_relaxed);
}

MemoTallies Memo::tallies() const {
  MemoTallies t;
  t.groups_created = tally_.groups_created.load(std::memory_order_relaxed);
  t.groups_merged = tally_.groups_merged.load(std::memory_order_relaxed);
  t.exprs_inserted = tally_.exprs_inserted.load(std::memory_order_relaxed);
  t.exprs_deduped = tally_.exprs_deduped.load(std::memory_order_relaxed);
  t.arena_bytes = arena_.bytes_reserved();
  return t;
}

std::string Memo::ToString(const algebra::Algebra& algebra) const {
  std::string out;
  for (size_t i = 0; i < groups_.size(); ++i) {
    const Group& g = groups_[i];
    if (g.merged_away.load(std::memory_order_acquire)) continue;
    out += common::StringPrintf("group %d:\n", static_cast<int>(i));
    for (const MExpr& m : g.exprs) {
      out += "  ";
      if (m.is_file) {
        out += m.file;
      } else {
        out += algebra.name(m.op) + "(";
        std::vector<std::string> parts;
        for (GroupId c : m.children) {
          parts.push_back("g" + std::to_string(Find(c)));
        }
        out += common::Join(parts, ", ") + ")";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace prairie::volcano

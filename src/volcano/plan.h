// Physical plans produced by the search engine (Volcano physical
// expressions / Prairie access plans).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"

namespace prairie::volcano {

struct PhysNode;
using PhysNodeRef = std::shared_ptr<const PhysNode>;

/// \brief One node of a costed access plan. Interior nodes are algorithms;
/// leaves are stored files.
struct PhysNode {
  bool is_file = false;
  algebra::OpId alg = -1;
  std::string file;
  algebra::Descriptor desc;  ///< The algorithm's full descriptor.
  double cost = 0;           ///< Total cost of the subtree.
  std::vector<PhysNodeRef> children;

  static PhysNodeRef File(std::string name, algebra::Descriptor desc);
  static PhysNodeRef Alg(algebra::OpId alg, algebra::Descriptor desc,
                         double cost, std::vector<PhysNodeRef> children);

  /// Converts to a plain operator tree (access plan).
  algebra::ExprPtr ToExpr(const algebra::Algebra& algebra) const;

  /// One-line rendering, e.g. "Merge_sort(Nested_loops(File_scan(R1), ...))".
  std::string ToString(const algebra::Algebra& algebra) const;

  /// Multi-line rendering with per-node cost.
  std::string TreeString(const algebra::Algebra& algebra) const;

  /// Number of algorithm nodes in the plan.
  int AlgCount() const;
};

/// \brief The optimizer's answer: the cheapest access plan and its cost.
struct Plan {
  PhysNodeRef root;
  double cost = 0;
};

}  // namespace prairie::volcano

// Serving-grade diagnostics: anomaly triggers, diagnostic bundles, and the
// slow-query log.
//
// PRs 3/4/8 built the primitives — trace ring, metrics registry, exec
// stats, cardinality feedback — but everything is end-of-run: a 100k-query
// traffic run collapses into one p50/p99 line with no record of WHICH
// queries were slow or WHY. DiagService is the per-query layer on top:
//
//   * The driver keeps a small flight-recorder RingBufferSink armed (at
//     TraceDetail::kCoarse, cheap enough to leave on — bench_diag gates
//     the armed-but-untriggered overhead at <= 2%).
//   * After each query it calls Check(): a cheap, allocation-free
//     evaluation of the anomaly triggers — fixed latency threshold,
//     adaptive k x running-p99 latency, max Q-error limit, anytime-budget
//     exhaustion, and plan-cache reject/stale storms.
//   * Only when Check() fires does the driver pay for diagnosis: it
//     renders the query, slices the flight recorder
//     (RingBufferSink::SnapshotSince on the pre-query mark), and calls
//     Report(), which appends one slow-query-log JSON line and — when a
//     bundle directory is configured — writes a self-contained bundle
//     under <dir>/<query-fingerprint>-<seq>/: manifest.json (trigger,
//     thresholds, build config, flags/seed, dropped-event counts, and the
//     member list), the trace slice as Chrome trace JSON, a metrics delta
//     since the previous report, plan provenance, and the EXPLAIN ANALYZE
//     tree + cardinality-feedback snapshot when the query executed.
//
// QueryDiag carries exec-side artifacts as pre-rendered strings, so this
// module depends only on common + the trace/profile layer — the volcano
// library does not grow an exec dependency.
//
// Thread-safety: Check() is lock-free (atomics) so batch workers may call
// it concurrently; Report() serializes on a mutex — it is the rare path.
// The whole layer compiles to cheap no-ops under -DPRAIRIE_TRACING=0 in
// the sense that the flight recorder and profile slices are empty; the
// trigger logic itself is plain arithmetic and stays live.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "volcano/engine.h"

namespace prairie::volcano {

/// \brief Why a query was flagged. Values are ordered by precedence:
/// when several conditions hold, the lowest-valued one is reported.
enum class DiagTrigger : uint8_t {
  kNone = 0,
  kSlowFixed,        ///< latency_ms > DiagOptions::slow_ms.
  kSlowAdaptive,     ///< latency > adaptive_k x running p99.
  kQError,           ///< max operator Q-error > qerror_limit.
  kBudgetExhausted,  ///< Anytime budget truncated the search.
  kCacheStorm,       ///< Param-band rejects / stale drops reached
                     ///< cache_storm_threshold since the last firing.
};

/// Stable lower_snake_case name of a trigger ("slow_fixed", ...).
const char* DiagTriggerName(DiagTrigger t);

/// \brief Trigger thresholds and output wiring of a DiagService.
struct DiagOptions {
  /// Fixed latency threshold, milliseconds; 0 disables.
  double slow_ms = 0;
  /// Adaptive threshold: fire when latency > adaptive_k x the running p99
  /// of `latency_hist`; 0 disables. Suppressed until the histogram holds
  /// adaptive_min_count observations (early queries have no baseline).
  double adaptive_k = 0;
  uint64_t adaptive_min_count = 256;
  /// The histogram the adaptive trigger reads (typically
  /// VolcanoMetrics::query_latency_ns; values in nanoseconds). Its
  /// snapshot is ~768 relaxed loads, so Check() caches the p99 and
  /// refreshes it once every 64 calls.
  const common::Histogram* latency_hist = nullptr;
  /// Max per-operator Q-error limit (requires exec stats); 0 disables.
  double qerror_limit = 0;
  /// Fire on OptimizerStats::budget_exhausted.
  bool on_budget_exhausted = true;
  /// Fire once every N plan-cache param-band rejects + stale drops
  /// (a reject "storm" means the band guard or invalidation is churning);
  /// 0 disables.
  size_t cache_storm_threshold = 0;

  /// Bundle directory; empty disables bundles (the slow log alone still
  /// works). Created on demand.
  std::string diag_dir;
  /// Hard cap on bundles per service lifetime (a pathological workload
  /// must not fill the disk); further triggers still reach the slow log.
  size_t max_bundles = 16;
  /// Slow-query log stream (borrowed; null disables). One JSON line per
  /// reported query.
  std::ostream* slow_log = nullptr;

  /// Metrics registry sampled for per-bundle delta snapshots (optional).
  const common::MetricsRegistry* registry = nullptr;
  /// Rule set for naming trace/profile rows in bundles (optional; without
  /// it the trace slice and top-rule table are omitted).
  const RuleSet* rules = nullptr;
  /// Reproduction provenance recorded into manifests: the driver's
  /// command line / flag rendering and workload seed.
  std::string flags;
  uint64_t seed = 0;
};

/// \brief Everything Report() needs about one offending query. All string
/// members are pre-rendered by the driver (on the trigger path only);
/// empty members are simply omitted from the bundle.
struct QueryDiag {
  /// Textual form of the query; fingerprinted (FNV-1a) for the bundle
  /// directory name and log records.
  std::string query_text;
  double latency_ms = 0;
  const OptimizerStats* stats = nullptr;
  double max_qerror = 0;  ///< 0 when the query did not execute.

  /// Flight-recorder slice for this query (SnapshotSince on the pre-query
  /// mark) and how many of the query's events the ring had already
  /// overwritten when it was sliced.
  std::vector<common::TraceEvent> trace_slice;
  size_t trace_dropped = 0;

  std::string provenance;     ///< ExplainWinner / cached-plan provenance.
  std::string memo_dot;       ///< Memo DOT dump (optional).
  std::string analyze_text;   ///< EXPLAIN ANALYZE tree (optional).
  std::string analyze_json;   ///< ExecStats::ToJson (optional).
  std::string feedback_json;  ///< CardinalityFeedback snapshot (optional).
  double est_rows = -1;       ///< Root estimate (<0 = unknown).
  double actual_rows = -1;    ///< Root actual (<0 = did not execute).
};

/// \brief Per-query anomaly evaluation and reporting. One service per
/// traffic/batch run; shared by workers.
class DiagService {
 public:
  explicit DiagService(DiagOptions options);

  /// Evaluates the triggers for one finished query. Cheap and lock-free:
  /// no allocation, no I/O; at most a cached-p99 refresh every 64th call.
  /// Returns the highest-precedence firing trigger, kNone otherwise.
  DiagTrigger Check(double latency_ms, const OptimizerStats& stats,
                    double max_qerror = 0);

  /// Reports one offending query: appends the slow-log record and, when a
  /// bundle directory is configured and the cap not reached, writes the
  /// bundle. Returns the bundle directory path ("" when only logged).
  /// Serialized internally; safe from concurrent workers.
  std::string Report(DiagTrigger trigger, const QueryDiag& diag);

  size_t bundles_written() const {
    return bundles_.load(std::memory_order_relaxed);
  }
  size_t reports() const { return reports_.load(std::memory_order_relaxed); }
  const DiagOptions& options() const { return options_; }

  /// FNV-1a 64-bit fingerprint of the query text (the bundle/log key).
  static uint64_t Fingerprint(std::string_view text);

  /// The slow-query-log JSON record (no trailing newline). Exposed for
  /// tests; Report() writes exactly this plus the bundle path.
  std::string SlowLogRecord(DiagTrigger trigger, const QueryDiag& diag,
                            const std::string& bundle_dir) const;

 private:
  /// Writes one bundle; returns its directory or "" on failure.
  std::string WriteBundle(DiagTrigger trigger, const QueryDiag& diag,
                          uint64_t fingerprint, size_t seq);

  DiagOptions options_;
  std::atomic<uint64_t> check_calls_{0};
  std::atomic<uint64_t> cached_p99_ns_{0};
  std::atomic<uint64_t> cached_hist_count_{0};
  std::atomic<size_t> storm_accum_{0};
  std::atomic<size_t> bundles_{0};
  std::atomic<size_t> reports_{0};

  std::mutex report_mu_;
  /// Baseline for per-bundle metrics deltas (previous report's sample).
  std::vector<common::MetricsRegistry::SeriesSample> last_sample_;
};

/// Cache outcome of one query as a log token: "exact" / "param" (hit via
/// skeleton rebinding) / "reject" (param-band guard) / "stale" (entry
/// dropped) / "miss" / "off" (no cache configured).
const char* CacheOutcome(const OptimizerStats& stats);

}  // namespace prairie::volcano

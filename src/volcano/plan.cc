#include "volcano/plan.h"

#include "common/strings.h"

namespace prairie::volcano {

PhysNodeRef PhysNode::File(std::string name, algebra::Descriptor desc) {
  auto n = std::make_shared<PhysNode>();
  n->is_file = true;
  n->file = std::move(name);
  n->desc = std::move(desc);
  return n;
}

PhysNodeRef PhysNode::Alg(algebra::OpId alg, algebra::Descriptor desc,
                          double cost, std::vector<PhysNodeRef> children) {
  auto n = std::make_shared<PhysNode>();
  n->alg = alg;
  n->desc = std::move(desc);
  n->cost = cost;
  n->children = std::move(children);
  return n;
}

algebra::ExprPtr PhysNode::ToExpr(const algebra::Algebra& algebra) const {
  if (is_file) return algebra::Expr::MakeFile(file, desc);
  std::vector<algebra::ExprPtr> kids;
  kids.reserve(children.size());
  for (const PhysNodeRef& c : children) kids.push_back(c->ToExpr(algebra));
  return algebra::Expr::MakeOp(alg, std::move(kids), desc);
}

std::string PhysNode::ToString(const algebra::Algebra& algebra) const {
  if (is_file) return file;
  std::vector<std::string> parts;
  parts.reserve(children.size());
  for (const PhysNodeRef& c : children) parts.push_back(c->ToString(algebra));
  return algebra.name(alg) + "(" + common::Join(parts, ", ") + ")";
}

namespace {
void TreeRec(const PhysNode& n, const algebra::Algebra& algebra, int depth,
             std::string* out) {
  out->append(static_cast<size_t>(2 * depth), ' ');
  if (n.is_file) {
    *out += n.file + "\n";
  } else {
    *out += algebra.name(n.alg) +
            common::StringPrintf("  [cost=%.6g]\n", n.cost);
  }
  for (const PhysNodeRef& c : n.children) {
    TreeRec(*c, algebra, depth + 1, out);
  }
}
}  // namespace

std::string PhysNode::TreeString(const algebra::Algebra& algebra) const {
  std::string out;
  TreeRec(*this, algebra, 0, &out);
  return out;
}

int PhysNode::AlgCount() const {
  if (is_file) return 0;
  int n = 1;
  for (const PhysNodeRef& c : children) n += c->AlgCount();
  return n;
}

}  // namespace prairie::volcano

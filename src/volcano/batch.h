// Parallel batch optimization: optimize many independent queries at once.
//
// A production optimizer's figure of merit under heavy traffic is
// throughput — queries optimized per second across concurrent sessions —
// not just single-query latency. Queries are independent searches, so the
// natural unit of parallelism here is the query (for parallelism WITHIN
// one search, see OptimizerOptions::search_jobs and the concurrent memo):
// BatchOptimizer runs a fixed pool of worker threads, each constructing a
// private single-threaded Optimizer (its own memo, winner tables, stats)
// per query, while all
// workers intern descriptors through ONE concurrent DescriptorStore so ids
// stay globally canonical and common descriptors (empty requirements,
// shared literals, projected slices) are stored once.
//
// Shared, immutable across workers: the RuleSet (including its dispatch
// index, built by Finalize()), each query's Catalog, the Algebra, and the
// descriptor store. Per worker, per query: the Memo, the search state and
// the stats. Plans returned are plain value trees (PhysNode), so results
// are usable after the batch without touching the store.

#pragma once

#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "volcano/engine.h"
#include "volcano/plancache.h"

namespace prairie::volcano {

class DiagService;
struct QueryDiag;

/// \brief One query of a batch. `tree` and `catalog` must outlive the
/// OptimizeAll call; queries may share a catalog or carry their own.
struct BatchQuery {
  const algebra::Expr* tree = nullptr;
  const catalog::Catalog* catalog = nullptr;
};

/// \brief Outcome of one batch query.
struct BatchResult {
  common::Result<Plan> plan{
      common::Status::OptimizeError("query was not optimized")};
  OptimizerStats stats;
  double seconds = 0;  ///< Wall-clock optimize time of this query.
};

/// \brief Batch-level knobs.
struct BatchOptions {
  /// Worker threads; <= 0 picks std::thread::hardware_concurrency().
  int jobs = 1;
  /// Per-query optimizer options (pruning, limits, dispatch index). The
  /// `trace` sink here is ignored — per-worker sinks are wired internally
  /// when trace_capacity > 0 so workers never contend on one sink. The
  /// `metrics` bundle, by contrast, IS honored and shared by every worker:
  /// its counters/histograms are per-thread sharded, so concurrent flushes
  /// do not contend; batch_runs/batch_worker_merges are bumped after the
  /// join barrier.
  OptimizerOptions optimizer;
  /// Intern all workers' descriptors through one concurrent store.
  /// Disabling gives every query a private serial store (no sharing).
  bool share_store = true;
  /// > 0: construct a plan cache (sized to this many entries) over the
  /// shared store and hand it to every worker — repeated queries across
  /// and within batches are answered without re-running the search.
  /// Requires share_store (per-query private stores cannot share cache
  /// keys); ignored otherwise. Alternatively the caller may place its own
  /// cache in optimizer.plan_cache, which takes precedence (it must be
  /// bound to shared_store()).
  size_t plan_cache_entries = 0;
  /// > 0: trace every worker into a private RingBufferSink of this
  /// capacity; the streams are merged (timestamp-ordered) after the
  /// workers join and exposed via trace_events(). 0 disables tracing.
  size_t trace_capacity = 0;
  /// Per-query anomaly diagnostics (borrowed; null disables). When set,
  /// every worker arms a private flight-recorder ring even with
  /// trace_capacity 0 (sized flight_recorder_capacity, receiving whatever
  /// optimizer.trace_detail admits — drivers typically pick kCoarse),
  /// marks it before each query, and runs DiagService::Check() on the
  /// query's latency and stats afterwards; a firing trigger reports the
  /// query — flight-recorder slice, winner provenance, stats — through
  /// DiagService::Report(). Check() is lock-free and Report() serializes
  /// internally, so one service is shared by all workers.
  DiagService* diag = nullptr;
  /// Flight-recorder ring capacity per worker when `diag` is set and
  /// trace_capacity is 0. Small on purpose: the recorder only needs to
  /// hold the last few queries' events for anomaly slices.
  size_t flight_recorder_capacity = 4096;
};

/// \brief Optimizes batches of queries over one rule set, in parallel.
///
/// The rule set must be Finalize()d and must not change while batches run.
/// OptimizeAll may be called repeatedly; the shared store persists across
/// calls, so descriptors learned by one batch warm the next.
class BatchOptimizer {
 public:
  explicit BatchOptimizer(const RuleSet* rules,
                          BatchOptions options = BatchOptions());

  /// Optimizes every query, distributing them over the worker pool.
  /// Results are positionally aligned with `queries`. Individual failures
  /// (e.g. no feasible plan) land in that query's BatchResult; they do not
  /// abort the batch.
  std::vector<BatchResult> OptimizeAll(const std::vector<BatchQuery>& queries);

  /// The store shared by all workers (null when share_store is false).
  const algebra::DescriptorStore* shared_store() const { return store_.get(); }

  /// The plan cache workers probe: the owned one (plan_cache_entries > 0),
  /// the caller's (optimizer.plan_cache), or null when caching is off.
  PlanCache* plan_cache() const {
    return cache_ != nullptr ? cache_.get() : options_.optimizer.plan_cache;
  }

  int jobs() const { return jobs_; }

  /// The merged (timestamp-ordered) trace of the last OptimizeAll call;
  /// empty unless BatchOptions::trace_capacity > 0. Events carry the
  /// emitting worker's thread id, so per-worker streams stay separable.
  const std::vector<common::TraceEvent>& trace_events() const {
    return trace_;
  }
  /// Events lost to per-worker ring wrap-around in the last call.
  size_t trace_dropped() const { return trace_dropped_; }

 private:
  const RuleSet* rules_;
  BatchOptions options_;
  int jobs_;
  std::unique_ptr<algebra::DescriptorStore> store_;
  std::unique_ptr<PlanCache> cache_;
  std::vector<common::TraceEvent> trace_;
  size_t trace_dropped_ = 0;
};

}  // namespace prairie::volcano

// The top-down, branch-and-bound search engine (the paper's back-end,
// modelled on the Volcano optimizer generator's search strategy).
//
// Optimization proceeds from the root group downward: transformation rules
// expand a group to its logical closure; implementation rules and
// enforcers produce costed physical alternatives under the required
// physical properties; winners are memoized per (group, requirement); a
// cost limit prunes alternatives that cannot beat the best plan found so
// far.

#pragma once

#include <limits>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/function_ref.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "volcano/memo.h"
#include "volcano/plan.h"
#include "volcano/rules.h"

namespace prairie::volcano {

class PlanCache;

/// \brief Registry-backed series the search engine writes (aggregate
/// observability; the per-event companion is the trace stream). All
/// members are borrowed from a MetricsRegistry and may individually be
/// null (skipped). Build one bundle per rule set with ForRuleSet() and
/// share it across any number of optimizers and batches — counters are
/// sharded per thread, so concurrent workers do not contend.
///
/// Write discipline: counters are flushed once per query (deltas of the
/// engine's existing per-query stats and memo tallies — zero hot-path
/// cost); per-rule attempt latencies are sampled 1 in
/// kLatencySamplePeriod attempts, bounding the extra clock reads that
/// would otherwise dominate sub-millisecond searches.
struct VolcanoMetrics {
  // Flushed at the end of each Optimize()/ExpandOnly() call.
  common::Counter* queries = nullptr;          ///< Optimize() calls.
  common::Counter* trans_attempts = nullptr;
  common::Counter* trans_fired = nullptr;
  common::Counter* impl_attempts = nullptr;
  common::Counter* enforcer_attempts = nullptr;
  common::Counter* plans_costed = nullptr;
  common::Counter* winners_selected = nullptr;
  common::Counter* prunes = nullptr;
  common::Counter* cycle_guard_hits = nullptr;
  common::Counter* memo_groups_created = nullptr;
  common::Counter* memo_groups_merged = nullptr;
  common::Counter* memo_exprs_inserted = nullptr;
  common::Counter* memo_exprs_deduped = nullptr;
  common::Counter* intern_hits = nullptr;    ///< DescriptorStore hits.
  common::Counter* intern_misses = nullptr;  ///< DescriptorStore misses.
  // Bumped by BatchOptimizer after its join barrier.
  common::Counter* batch_runs = nullptr;           ///< OptimizeAll calls.
  common::Counter* batch_worker_merges = nullptr;  ///< Worker streams merged.
  // Plan-cache traffic as seen by this engine (DESIGN.md §8); cache-global
  // figures (evictions, total live entries) come from PlanCache::stats().
  common::Counter* plan_cache_hits = nullptr;    ///< Queries served cached.
  common::Counter* plan_cache_misses = nullptr;  ///< Probes that searched.
  common::Counter* plan_cache_inserts = nullptr;  ///< Plans stored.
  common::Counter* plan_cache_stale = nullptr;  ///< Stale entries dropped.
  /// Parameterized-cache traffic (OptimizerOptions::param_cache).
  common::Counter* plan_cache_param_hits = nullptr;  ///< Rebound hits.
  common::Counter* plan_cache_param_rejects = nullptr;  ///< Guard rejects.
  common::Counter* plan_cache_param_inserts = nullptr;  ///< Skeletons stored.
  /// Arena bytes backing the last flushed memo's groups and expression
  /// lists (a gauge: each query's flush overwrites it with the memo it
  /// searched, so it tracks the most recent search's footprint).
  common::Gauge* memo_arena_bytes = nullptr;
  /// Per-query optimization wall time in nanoseconds (every query).
  common::Histogram* query_latency_ns = nullptr;
  /// Plan-cache key-build + probe wall time in nanoseconds (every probe;
  /// this is the entire warm-hit cost).
  common::Histogram* plan_cache_probe_ns = nullptr;
  /// Per-rule attempt latencies in nanoseconds, indexed like the rule
  /// set's trans_rules/impl_rules/enforcers vectors (sampled).
  std::vector<common::Histogram*> trans_latency_ns;
  std::vector<common::Histogram*> impl_latency_ns;
  std::vector<common::Histogram*> enforcer_latency_ns;

  /// One attempt in this many gets its latency observed.
  static constexpr uint32_t kLatencySamplePeriod = 16;

  /// Registers the full bundle (prairie_* series; per-rule histograms are
  /// labelled {rule=<name>, class=trans|impl|enforcer}) in `registry`.
  static VolcanoMetrics ForRuleSet(common::MetricsRegistry* registry,
                                   const RuleSet& rules);
};

/// \brief Tuning knobs of one optimization run.
struct OptimizerOptions {
  /// Branch-and-bound pruning (Volcano's cost limits). Disabling it makes
  /// the search exhaustive — used by the ablation bench and by property
  /// tests that compare against full enumeration.
  bool prune = true;
  /// Initial cost limit for the root (infinite by default).
  double initial_cost_limit = std::numeric_limits<double>::infinity();
  /// Use the rule set's per-operator dispatch index (built by
  /// RuleSet::Finalize()) so rule application touches only rules whose LHS
  /// root matches. Disabling it restores the full linear rule scan — the
  /// equivalence tests compare the two paths.
  bool use_dispatch_index = true;
  /// Search-trace event sink (borrowed; must outlive the optimizer). Null
  /// disables tracing: the per-event cost is one predictable branch.
  /// Compiling with -DPRAIRIE_TRACING=0 removes even that. Sinks are
  /// single-threaded — give each optimizer its own (BatchOptimizer wires
  /// one per worker and merges afterwards).
  common::TraceSink* trace = nullptr;
  /// Granularity of the stream `trace` receives. kFull (default) emits
  /// every kind — the post-mortem/profiling setting. kCoarse emits only
  /// group-level spans and winner instants (common::IsCoarseKind); the
  /// per-attempt kinds are skipped with no clock reads, which is what
  /// lets the diagnostics flight recorder stay armed under traffic
  /// within bench_diag's 2% overhead gate.
  common::TraceDetail trace_detail = common::TraceDetail::kFull;
  /// Aggregate metrics bundle (borrowed; must outlive the optimizer). Null
  /// disables metrics: counters cost nothing (they flush per query), and
  /// the per-attempt sampling check is one branch. Compiling with
  /// -DPRAIRIE_METRICS=0 (default: PRAIRIE_TRACING) removes even that.
  /// Unlike trace sinks, one bundle is safely shared by parallel workers.
  const VolcanoMetrics* metrics = nullptr;
  /// Shared plan cache (borrowed; must outlive the optimizer). Null
  /// disables caching — the classic search-every-query path, with zero
  /// added cost. Non-null: Optimize() probes by canonical fingerprint
  /// before searching and stores winning plans after. The cache must be
  /// bound to the SAME DescriptorStore this optimizer interns through
  /// (the shared batch store, or the store passed at construction) — a
  /// mismatched cache is bypassed, since its keys would be meaningless.
  PlanCache* plan_cache = nullptr;
  /// Record full winner provenance text (ExplainWinner) into cache
  /// entries. Off by default: the provenance walk costs more than many
  /// warm hits save.
  bool plan_cache_provenance = false;
  /// Parameterized caching (requires plan_cache): queries are canonicalized
  /// into constant-stripped skeletons (algebra::ParameterizeQuery) before
  /// probing, so queries differing only in predicate literals share one
  /// cache entry; hits rebind the probe's constants into a copy of the
  /// cached plan, guarded by the cache's selectivity band
  /// (PlanCacheOptions::param_band). Queries with no strippable constants
  /// fall back to the exact path unchanged. Off by default — with this
  /// false, cache behavior is byte-identical to exact-only caching.
  bool param_cache = false;
  MemoLimits memo_limits;
  /// Intra-query parallel search: > 1 runs the transformation closure and
  /// the costing sweep on this many workers over ONE concurrent memo
  /// (MemoMode::kConcurrent), finishing with a serial root pass; <= 0
  /// picks std::thread::hardware_concurrency(); 1 (default) is the classic
  /// serial search. Requires the memo's descriptor store to be concurrent;
  /// with a serial shared store the engine silently degrades to 1.
  /// Cached plans are keyed identically in both modes — a plan cache
  /// warmed serially serves parallel searches and vice versa.
  int search_jobs = 1;
  /// Anytime budgets (0 = unlimited): stop EXPANDING the search space once
  /// the wall clock or the allocated-group count passes the budget, then
  /// cost what exists and return the best plan found so far (possibly
  /// suboptimal, never invalid). Unlike MemoLimits these never fail the
  /// query; budget-exhausted searches skip the plan-cache insert so a
  /// truncated plan is not served to future queries.
  double search_budget_ms = 0;
  size_t group_budget = 0;
};

/// \brief Counters reported by the experiments (Table 5, Figure 14).
struct OptimizerStats {
  size_t groups = 0;         ///< Equivalence classes after optimization.
  size_t mexprs = 0;         ///< Logical multi-expressions.
  size_t trans_attempts = 0;   ///< Trans-rule binding condition evaluations.
  size_t trans_fired = 0;      ///< New expressions generated by trans rules.
  size_t impl_attempts = 0;    ///< Impl-rule firings attempted.
  size_t plans_costed = 0;     ///< Physical alternatives fully costed.
  size_t enforcer_attempts = 0;
  size_t winners_selected = 0;   ///< (group, requirement) winners memoized.
  size_t prunes = 0;             ///< Branch-and-bound cuts.
  size_t cycle_guard_hits = 0;   ///< Cyclic (group, requirement) searches.
  /// Descriptor-interning traffic (the memo's DescriptorStore).
  size_t desc_interned = 0;    ///< Distinct descriptors hash-consed.
  uint64_t desc_lookups = 0;   ///< Interning probes.
  uint64_t desc_hits = 0;      ///< Probes that found an existing descriptor.
  /// Plan-cache traffic of this optimizer (one query: probes <= 1).
  size_t cache_probes = 0;     ///< Plan-cache lookups performed.
  size_t cache_hits = 0;       ///< Lookups served from the cache.
  size_t cache_param_hits = 0;  ///< Hits served by skeleton rebinding.
  size_t cache_param_rejects = 0;  ///< Probes the sensitivity guard
                                   ///< turned away (optimized fresh).
  size_t cache_stale_drops = 0;  ///< Hits discarded because the entry's
                                 ///< descriptors no longer resolve (store
                                 ///< mismatch after eviction/rebuild).
  /// True when the last Optimize() answer came from the plan cache (the
  /// memo then holds no search to explain or dump).
  bool plan_from_cache = false;
  /// True when an anytime budget (search_budget_ms / group_budget) ran out
  /// before the search space was fully expanded: the returned plan is the
  /// best over the truncated space.
  bool budget_exhausted = false;
  /// Per-rule "did its LHS match (and its condition pass) anywhere" flags —
  /// the paper's Table 5 "rules matched" columns.
  std::vector<char> trans_matched;
  std::vector<char> impl_matched;

  size_t NumTransMatched() const;
  size_t NumImplMatched() const;
  /// Fraction of interning probes resolved to an existing descriptor.
  double InternHitRate() const;
};

/// \brief One-shot query optimizer: construct, call Optimize once (or
/// CountOnly for expansion statistics), inspect stats.
class Optimizer {
 public:
  /// `shared_store` null: the optimizer's memo owns a private descriptor
  /// store (serial by default; concurrent when search_jobs > 1). Non-null:
  /// the memo interns through the given store — BatchOptimizer passes one
  /// concurrent store to every worker so ids stay globally canonical.
  /// `shared_memo` non-null: the optimizer BORROWS that memo instead of
  /// owning one (shared_store is then ignored) — this is how the parallel
  /// search builds its worker optimizers: one concurrent memo, K
  /// optimizers with private search state (stats, cycle guards, traces).
  Optimizer(const RuleSet* rules, const catalog::Catalog* catalog,
            OptimizerOptions options = OptimizerOptions(),
            algebra::DescriptorStore* shared_store = nullptr,
            Memo* shared_memo = nullptr);

  /// Optimizes a logical operator tree into the cheapest access plan that
  /// delivers the physical properties set (non-null) in `required`.
  common::Result<Plan> Optimize(const algebra::Expr& tree,
                                const algebra::Descriptor& required);

  /// Convenience overload with no required properties.
  common::Result<Plan> Optimize(const algebra::Expr& tree);

  /// Expands the full logical search space of `tree` without costing any
  /// plan; used to measure equivalence-class growth (Figure 14).
  common::Result<size_t> ExpandOnly(const algebra::Expr& tree);

  const OptimizerStats& stats() const { return stats_; }
  const Memo& memo() const { return *memo_; }
  const RuleSet& rules() const { return *rules_; }

  /// After Optimize() succeeded: a human-readable provenance walk of the
  /// chosen plan — for every winner on the chain, the implementation rule
  /// or enforcer that produced it and the trans-rule derivation of the
  /// logical expression it implements (why the plan exists).
  std::string ExplainWinner() const;

 private:
  struct MatchBinding {
    /// (descriptor slot, (group, expr index)) for each matched op node.
    std::vector<std::pair<int, std::pair<GroupId, int>>> op_nodes;
    /// streams[v-1] = (group, descriptor slot) for stream variable ?v.
    std::vector<std::pair<GroupId, int>> streams;
  };

  /// Continuation type of the binding enumerator: a borrowed callable (the
  /// continuations live on the enclosing stack frame, so the non-owning
  /// FunctionRef avoids a std::function allocation per recursion level).
  using EmitFn = common::FunctionRef<common::Status()>;

  /// Expands `gid` to its transformation closure. `partial` (may be null)
  /// is OR-accumulated, never cleared: it is set when this call could not
  /// guarantee completeness — the group was mid-expansion in another
  /// worker, or this pass finished but had to skip applications whose
  /// child groups were themselves incomplete. Callers that enumerate
  /// bindings over the group must then not mark their own work done.
  common::Status ExpandGroup(GroupId gid, bool* partial = nullptr);
  /// `partial_child` is OR-accumulated: set when some binding descended
  /// into a child group whose expansion was incomplete, so this
  /// (expression, rule) application must be redone by a later pass.
  common::Status ApplyTransRule(GroupId gid, size_t expr_idx, size_t rule_idx,
                                bool* epoch_changed, bool* partial_child);
  common::Status EnumerateBindings(const algebra::PatNode& pat, GroupId gid,
                                   int expr_idx, MatchBinding* binding,
                                   EmitFn emit, bool* aborted, bool* partial,
                                   uint64_t epoch);
  common::Status MatchChildren(const algebra::PatNode& pat,
                               const std::vector<GroupId>& child_groups,
                               size_t k, MatchBinding* binding, EmitFn emit,
                               bool* aborted, bool* partial, uint64_t epoch);
  common::Status FireBinding(GroupId gid, const TransRule& rule,
                             size_t rule_idx, const MatchBinding& binding);
  common::Result<GroupId> BuildRhs(const algebra::PatNode& node,
                                   BindingView* bv, int src_rule);

  common::Result<Winner> OptimizeGroup(GroupId gid,
                                       const algebra::Descriptor& req,
                                       double limit);
  common::Status TryImplRule(GroupId gid, algebra::DescriptorId rid,
                             const MExpr& m, const ImplRule& rule,
                             size_t rule_idx, const algebra::Descriptor& req,
                             double* budget, Winner* best,
                             WinnerProv* best_prov, bool* limit_failure);
  common::Status TryEnforcer(GroupId gid, algebra::DescriptorId rid,
                             const Enforcer& enf, size_t enf_idx,
                             const algebra::Descriptor& req, double* budget,
                             Winner* best, WinnerProv* best_prov,
                             bool* limit_failure);

  common::Result<Plan> OptimizeImpl(const algebra::Expr& tree,
                                    const algebra::Descriptor& req);
  /// Intra-query parallel search over the shared concurrent memo (defined
  /// in parallel.cc): (A) cooperative transformation closure on the work
  /// pool — workers claim whole group expansions through the group's
  /// atomic `expanding` flag, and the applied bits let retried passes
  /// skip finished work; (B) a costing sweep, one task per group under
  /// the empty requirement; (C) a serial finishing pass from the root that
  /// guarantees the final winner regardless of what the waves memoized.
  common::Result<Winner> OptimizeParallel(GroupId root,
                                          const algebra::Descriptor& req);
  /// The effective worker count for this search (resolves <= 0 to the
  /// hardware concurrency; 1 when the memo is not concurrent).
  int ResolveSearchJobs() const;
  /// Arms the anytime budget for one Optimize()/ExpandOnly() call.
  void ArmBudget();
  /// True once the wall-clock or group budget ran out (sticky per query;
  /// the clock is sampled 1-in-64 checks).
  bool BudgetExhausted();
  /// Plan-cache front door: probe by canonical fingerprint, fall through
  /// to OptimizeImpl on a miss and insert the winner. `req` must already
  /// be normalized (NormalizeReq).
  common::Result<Plan> OptimizeCached(const algebra::Expr& tree,
                                      const algebra::Descriptor& req);
  /// The full-schema requirement descriptor: phys_props copied from
  /// `required` (when valid) over an otherwise-empty descriptor, so
  /// Optimize(tree) and Optimize(tree, empty) agree on one canonical form.
  algebra::Descriptor NormalizeReq(const algebra::Descriptor& required) const;
  /// The usable plan cache, or null (none configured, no catalog, or the
  /// cache is bound to a foreign descriptor store).
  PlanCache* UsableCache() const;

  algebra::Descriptor MakeReq() const;
  /// Interns the physical-slice projection of `req`; winner maps key on the
  /// returned id (id equality <=> requirement equality, no collision guard).
  algebra::DescriptorId ReqId(const algebra::Descriptor& req);
  BindingView MakeBinding(int num_slots);
  void RecordStoreStats();

  /// The per-rule latency histogram to observe for this attempt, or null
  /// (metrics off, unknown rule, or this attempt not sampled).
  common::Histogram* SampledLatency(common::TraceEventKind kind, int rule);
  /// Adds the deltas of stats/memo tallies/store counters since the last
  /// flush into the registry counters (end of each query).
  void FlushMetrics();

  /// Emits an instant trace event; a null sink costs one branch.
  void TraceInstant(common::TraceEventKind kind, GroupId gid, int rule,
                    algebra::DescriptorId desc, double cost) {
#if PRAIRIE_TRACING
    if (options_.trace != nullptr &&
        (options_.trace_detail == common::TraceDetail::kFull ||
         common::IsCoarseKind(kind))) {
      TraceInstantSlow(kind, gid, rule, desc, cost);
    }
#else
    (void)kind, (void)gid, (void)rule, (void)desc, (void)cost;
#endif
  }
  void TraceInstantSlow(common::TraceEventKind kind, GroupId gid, int rule,
                        algebra::DescriptorId desc, double cost);

  /// RAII span serving both observability layers: when the optimizer has a
  /// trace sink it emits one span event (with duration and nesting depth)
  /// at destruction; when metrics are on and this attempt is sampled, the
  /// same duration is observed into the per-rule latency histogram — one
  /// pair of clock reads feeds both. Inert (no clock read, nothing
  /// emitted) when neither consumer is active.
  class TraceSpan {
   public:
    TraceSpan(Optimizer* opt, common::TraceEventKind kind, GroupId gid,
              int rule, algebra::DescriptorId desc) {
      bool traced = false;
#if PRAIRIE_TRACING
      traced = opt->options_.trace != nullptr &&
               (opt->options_.trace_detail == common::TraceDetail::kFull ||
                common::IsCoarseKind(kind));
#endif
#if PRAIRIE_METRICS
      hist_ = opt->SampledLatency(kind, rule);
#endif
      if (traced || hist_ != nullptr) {
        Begin(opt, kind, gid, rule, desc, traced);
      }
      (void)opt, (void)kind, (void)gid, (void)rule, (void)desc;
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;
    ~TraceSpan() {
      if (opt_ != nullptr) End();
    }

   private:
    void Begin(Optimizer* opt, common::TraceEventKind kind, GroupId gid,
               int rule, algebra::DescriptorId desc, bool traced);
    void End();

    Optimizer* opt_ = nullptr;
    common::Histogram* hist_ = nullptr;
    bool traced_ = false;
    common::TraceEventKind kind_ = common::TraceEventKind::kGroupExpand;
    GroupId gid_ = -1;
    int rule_ = -1;
    algebra::DescriptorId desc_ = algebra::kInvalidDescriptorId;
    uint64_t start_ns_ = 0;
  };

  /// ExplainWinner() helpers: recursive winner walk and source-expression
  /// resolution by interned identity key (robust to merges).
  void ExplainGroup(GroupId gid, algebra::DescriptorId rid, int indent,
                    int depth, std::string* out) const;
  const MExpr* FindByArgKey(GroupId gid, algebra::DescriptorId key,
                            const MExpr* exclude) const;
  /// Resolves a winner's implemented expression by arg_key plus child
  /// groups (arg_key alone is ambiguous between child orderings).
  const MExpr* FindImplemented(GroupId gid, algebra::DescriptorId key,
                               const std::vector<GroupId>& children) const;
  std::string RenderExpr(const MExpr& m) const;

  /// The rules indexed for one operator, or null to linear-scan all rules
  /// (index disabled or the rule set skipped Finalize()).
  const std::vector<uint32_t>* TransRulesFor(algebra::OpId op) const;
  const std::vector<uint32_t>* ImplRulesFor(algebra::OpId op) const;

  const RuleSet* rules_;
  const catalog::Catalog* catalog_;
  OptimizerOptions options_;
  /// The memo: owned in the normal case, borrowed when this optimizer is a
  /// parallel-search worker over another optimizer's concurrent memo.
  std::unique_ptr<Memo> owned_memo_;
  Memo* memo_;
  /// Cached memo_->concurrent(): branch predictable on the hot paths.
  bool concurrent_memo_ = false;
  algebra::SliceId phys_slice_id_;
  OptimizerStats stats_;
  /// Anytime-budget state, armed per query by ArmBudget().
  bool has_budget_ = false;
  uint64_t deadline_ns_ = 0;
  size_t group_budget_ = 0;
  uint32_t budget_tick_ = 0;
  /// Concurrent-expansion state: groups THIS optimizer is currently
  /// expanding (its recursion stack — distinguishes own-cycle re-entry
  /// from another worker's in-flight claim). Partial-expansion outcomes
  /// are NOT member state: they thread through ExpandGroup /
  /// EnumerateBindings / MatchChildren as OR-accumulating out-parameters,
  /// because a nested expansion reached mid-enumeration would otherwise
  /// clobber the enclosing application's marker.
  std::unordered_set<GroupId> expanding_here_;
  /// Store-counter snapshots taken at construction: RecordStoreStats()
  /// reports deltas, so per-query interning stats stay per-query even when
  /// the store is shared across a batch (exact for private/sequential use,
  /// approximate under truly concurrent workers).
  size_t store_size0_ = 0;
  uint64_t store_lookups0_ = 0;
  uint64_t store_hits0_ = 0;
  /// Tracing state: emitting thread id (cached) and current span depth.
  uint32_t trace_tid_ = 0;
  int trace_depth_ = 0;
  /// Metrics state: the attempt tick driving 1-in-N latency sampling, and
  /// the per-counter values already flushed to the registry (FlushMetrics
  /// adds only deltas, so repeated Optimize() calls never double-count).
  uint32_t metrics_tick_ = 0;
  struct MetricsMark {
    size_t trans_attempts = 0;
    size_t trans_fired = 0;
    size_t impl_attempts = 0;
    size_t enforcer_attempts = 0;
    size_t plans_costed = 0;
    size_t winners_selected = 0;
    size_t prunes = 0;
    size_t cycle_guard_hits = 0;
    uint64_t desc_lookups = 0;
    uint64_t desc_hits = 0;
    MemoTallies memo;
  };
  MetricsMark metrics_mark_;
  /// Root of the last Optimize()/ExpandOnly() call and its interned
  /// requirement id — the entry point of ExplainWinner().
  GroupId explain_root_ = -1;
  algebra::DescriptorId explain_req_ = algebra::kInvalidDescriptorId;
  /// Cycle guard for in-flight (group, requirement) searches, keyed on the
  /// exact pair: a 64-bit mixed key could collide two distinct pairs and
  /// silently prune a feasible branch as "cyclic".
  struct ProgressKeyHash {
    size_t operator()(
        const std::pair<GroupId, algebra::DescriptorId>& p) const noexcept {
      return static_cast<size_t>(
          common::HashCombine(static_cast<uint64_t>(p.first),
                              static_cast<uint64_t>(p.second)));
    }
  };
  std::unordered_set<std::pair<GroupId, algebra::DescriptorId>,
                     ProgressKeyHash>
      in_progress_;
};

}  // namespace prairie::volcano

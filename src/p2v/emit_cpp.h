// P2V code generation: emits a C++ translation unit that builds the
// Volcano rule set with *compiled* rule actions.
//
// The original P2V pre-processor emitted C that was compiled together
// with the Volcano search engine; Translate() replaces that with an
// in-process interpreted deployment, and EmitCpp() restores the original
// architecture: the generated source defines
//
//   common::Result<std::shared_ptr<volcano::RuleSet>>
//   <function_name>(std::shared_ptr<core::HelperRegistry> helpers);
//
// whose rule conditions and property-transformation sections are
// straight-line C++ over the p2v/emitted_support.h primitives (helper
// functions remain calls into the user-supplied registry — in the paper,
// too, support functions stayed hand-written C). The build compiles the
// emitted file like any other source; optimizers produced this way have
// no interpretation overhead.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/ruleset.h"

namespace prairie::p2v {

struct EmitOptions {
  /// Name of the emitted factory function.
  std::string function_name = "BuildGeneratedOptimizer";
  /// Namespace the function is placed in (empty = global).
  std::string namespace_name = "prairie_generated";
  /// Helper name -> fully qualified C++ function. Mapped helpers are
  /// called directly (signature: Result<Value>(const catalog::Catalog*,
  /// const Value&...)); unmapped helpers go through the registry at
  /// runtime. Pass opt::native::NativeHelperMap() for the shipped set.
  std::map<std::string, std::string> native_helpers;
  /// Extra #include lines for the emitted file (e.g. the header declaring
  /// the native helpers).
  std::vector<std::string> extra_includes;
};

/// Emits the C++ translation unit for `prairie`. The rule set must pass
/// the same analysis as Translate().
common::Result<std::string> EmitCpp(const core::RuleSet& prairie,
                                    const EmitOptions& options = {});

}  // namespace prairie::p2v

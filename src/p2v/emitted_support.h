// Runtime support for P2V-emitted C++ rule code (see emit_cpp.h).
//
// Emitted rule actions are straight-line C++ over these small inline
// operations, which mirror the action-language semantics exactly
// (core/action.cc's evaluator is the reference). Errors don't unwind the
// emitted expression tree; they latch into the EmitCtx and are returned
// at the section boundary — that keeps generated code linear, the way a
// code generator writes it.

#pragma once

#include <cmath>
#include <initializer_list>

#include "core/helpers.h"
#include "volcano/rules.h"

namespace prairie::p2v::emitted {

using algebra::Value;
using algebra::ValueType;

/// \brief Per-invocation context of one emitted rule section.
struct EmitCtx {
  volcano::BindingView& bv;
  const core::HelperRegistry* helpers;
  common::Status st;

  bool failed() const { return !st.ok(); }
  void Fail(common::Status s) {
    if (st.ok()) st = std::move(s);
  }
};

/// Reads Dk.prop (borrowed).
inline const Value& P(EmitCtx& c, int slot, algebra::PropertyId id) {
  return c.bv.slot(slot).Get(id);
}

/// Writes Dk.prop with the declaration's type check.
inline void Set(EmitCtx& c, int slot, algebra::PropertyId id, Value v) {
  if (c.failed()) return;
  common::Status st = c.bv.slot(slot).SetChecked(id, std::move(v));
  if (!st.ok()) c.Fail(std::move(st));
}

/// Whole-descriptor copy Dk = Dj.
inline void Copy(EmitCtx& c, int to, int from) {
  if (c.failed()) return;
  c.bv.slot(to) = c.bv.slot(from);
}

/// Freezes the finished descriptor in `slot` into the active optimization's
/// store and returns its interned id (kInvalidDescriptorId when the binding
/// carries no store, e.g. in isolated unit tests).
inline algebra::DescriptorId Freeze(EmitCtx& c, int slot) {
  if (c.failed() || c.bv.store == nullptr) {
    return algebra::kInvalidDescriptorId;
  }
  return c.bv.store->Intern(c.bv.slot(slot));
}

inline double AsReal(EmitCtx& c, const Value& v) {
  auto r = v.ToReal();
  if (!r.ok()) {
    c.Fail(r.status());
    return 0;
  }
  return *r;
}

inline bool AsBool(EmitCtx& c, const Value& v) {
  auto r = v.ToBool();
  if (!r.ok()) {
    c.Fail(r.status());
    return false;
  }
  return *r;
}

// Arithmetic mirrors core/action.cc EvalBinary: '+' unions attribute
// lists; int op int stays int when exact; division by zero fails.
inline Value Add(EmitCtx& c, const Value& a, const Value& b) {
  if (c.failed()) return Value();
  if (a.type() == ValueType::kAttrs && b.type() == ValueType::kAttrs) {
    return Value::Attrs(algebra::UnionAttrs(a.AsAttrs(), b.AsAttrs()));
  }
  double v = AsReal(c, a) + AsReal(c, b);
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
      std::floor(v) == v && std::fabs(v) < 9.0e18) {
    return Value::Int(static_cast<int64_t>(v));
  }
  return Value::Real(v);
}

inline Value Sub(EmitCtx& c, const Value& a, const Value& b) {
  if (c.failed()) return Value();
  double v = AsReal(c, a) - AsReal(c, b);
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
      std::floor(v) == v && std::fabs(v) < 9.0e18) {
    return Value::Int(static_cast<int64_t>(v));
  }
  return Value::Real(v);
}

inline Value Mul(EmitCtx& c, const Value& a, const Value& b) {
  if (c.failed()) return Value();
  double v = AsReal(c, a) * AsReal(c, b);
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt &&
      std::floor(v) == v && std::fabs(v) < 9.0e18) {
    return Value::Int(static_cast<int64_t>(v));
  }
  return Value::Real(v);
}

inline Value Div(EmitCtx& c, const Value& a, const Value& b) {
  if (c.failed()) return Value();
  double y = AsReal(c, b);
  if (y == 0) {
    c.Fail(common::Status::InvalidArgument("division by zero"));
    return Value();
  }
  return Value::Real(AsReal(c, a) / y);
}

inline Value Eq(EmitCtx& c, const Value& a, const Value& b, bool negate) {
  if (c.failed()) return Value();
  bool eq;
  bool a_num = a.type() == ValueType::kInt || a.type() == ValueType::kReal;
  bool b_num = b.type() == ValueType::kInt || b.type() == ValueType::kReal;
  if (a_num && b_num) {
    eq = AsReal(c, a) == AsReal(c, b);
  } else {
    eq = a == b;
  }
  return Value::Bool(negate ? !eq : eq);
}

inline Value Cmp(EmitCtx& c, const Value& a, const Value& b, int op) {
  // op: 0 '<', 1 '<=', 2 '>', 3 '>='.
  if (c.failed()) return Value();
  double x = AsReal(c, a);
  double y = AsReal(c, b);
  bool v = op == 0 ? x < y : op == 1 ? x <= y : op == 2 ? x > y : x >= y;
  return Value::Bool(v);
}

inline Value Not(EmitCtx& c, const Value& a) {
  if (c.failed()) return Value();
  return Value::Bool(!AsBool(c, a));
}

inline Value Neg(EmitCtx& c, const Value& a) {
  if (c.failed()) return Value();
  if (a.type() == ValueType::kInt) return Value::Int(-a.AsInt());
  return Value::Real(-AsReal(c, a));
}

/// Helper-call argument: a scalar value.
inline core::EvalResult Arg(const Value& v) {
  core::EvalResult r;
  r.value = v;
  return r;
}

/// Helper-call argument: a whole descriptor Dk.
inline core::EvalResult DescArg(EmitCtx& c, int slot) {
  core::EvalResult r;
  r.desc = &c.bv.slot(slot);
  return r;
}

/// Unboxes a natively-called helper's result, latching errors into the
/// context (used when the emitter binds helper names to compiled support
/// functions — the paper's architecture, where support C code is linked
/// directly with the generated optimizer).
inline Value Unwrap(EmitCtx& c, common::Result<Value> r) {
  if (c.failed()) return Value();
  if (!r.ok()) {
    c.Fail(r.status());
    return Value();
  }
  return std::move(r).ValueUnsafe();
}

/// Invokes a user helper function through the registry (fallback for
/// helpers with no native binding).
inline Value Call(EmitCtx& c, const char* name,
                  std::initializer_list<core::EvalResult> args) {
  if (c.failed()) return Value();
  if (c.helpers == nullptr) {
    c.Fail(common::Status::RuleError("no helper registry"));
    return Value();
  }
  core::EvalContext ctx;
  ctx.contiguous = c.bv.slots.data();
  ctx.contiguous_count = static_cast<int>(c.bv.slots.size());
  ctx.helpers = c.helpers;
  ctx.catalog = c.bv.catalog;
  ctx.store = c.bv.store;
  std::vector<core::EvalResult> argv(args);
  auto r = c.helpers->Invoke(name, argv, ctx);
  if (!r.ok()) {
    c.Fail(r.status());
    return Value();
  }
  return *r;
}

}  // namespace prairie::p2v::emitted

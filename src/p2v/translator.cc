#include "p2v/translator.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "core/action.h"
#include "p2v/analysis.h"

namespace prairie::p2v {

using algebra::OpId;
using algebra::PropertyId;
using algebra::Value;
using common::Result;
using common::Status;
using core::ActionExpr;
using core::ActionExprPtr;
using core::ActionStmt;
using core::IRule;
using core::TRule;

namespace {

// ---------------------------------------------------------------------------
// AST slot remapping (for enforcers)
// ---------------------------------------------------------------------------

/// Clones `expr` renumbering descriptor slots through `map` (-1 = invalid).
Result<ActionExprPtr> RemapExpr(const ActionExprPtr& expr,
                                const std::vector<int>& map) {
  if (expr == nullptr) return ActionExprPtr(nullptr);
  switch (expr->kind()) {
    case ActionExpr::Kind::kConst:
      return expr;
    case ActionExpr::Kind::kProp:
    case ActionExpr::Kind::kDesc: {
      int slot = expr->desc_slot();
      if (slot < 0 || slot >= static_cast<int>(map.size()) ||
          map[static_cast<size_t>(slot)] < 0) {
        return Status::RuleError(
            "action references descriptor D" + std::to_string(slot + 1) +
            " which was removed by the P2V translation");
      }
      int to = map[static_cast<size_t>(slot)];
      return expr->kind() == ActionExpr::Kind::kProp
                 ? ActionExpr::Prop(to, expr->property(), expr->property_id())
                 : ActionExpr::Desc(to);
    }
    case ActionExpr::Kind::kCall: {
      std::vector<ActionExprPtr> args;
      args.reserve(expr->args().size());
      for (const ActionExprPtr& a : expr->args()) {
        PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr r, RemapExpr(a, map));
        args.push_back(std::move(r));
      }
      return ActionExpr::Call(expr->fn(), std::move(args));
    }
    case ActionExpr::Kind::kBinary: {
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr l, RemapExpr(expr->left(), map));
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr r, RemapExpr(expr->right(), map));
      return ActionExpr::Binary(expr->bin_op(), std::move(l), std::move(r));
    }
    case ActionExpr::Kind::kUnary: {
      PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr e,
                               RemapExpr(expr->args()[0], map));
      return ActionExpr::Unary(expr->un_op(), std::move(e));
    }
  }
  return Status::Internal("unhandled action expression kind");
}

Result<std::vector<ActionStmt>> RemapBlock(const std::vector<ActionStmt>& in,
                                           const std::vector<int>& map) {
  std::vector<ActionStmt> out;
  out.reserve(in.size());
  for (const ActionStmt& s : in) {
    if (s.target_slot < 0 ||
        s.target_slot >= static_cast<int>(map.size()) ||
        map[static_cast<size_t>(s.target_slot)] < 0) {
      return Status::RuleError(
          "action assigns descriptor D" + std::to_string(s.target_slot + 1) +
          " which was removed by the P2V translation");
    }
    ActionStmt ns;
    ns.target_slot = map[static_cast<size_t>(s.target_slot)];
    ns.target_prop = s.target_prop;
    ns.target_prop_id = s.target_prop_id;
    PRAIRIE_ASSIGN_OR_RETURN(ns.value, RemapExpr(s.value, map));
    out.push_back(std::move(ns));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Interpretation: Prairie action ASTs as Volcano rule callbacks
// ---------------------------------------------------------------------------

struct InterpCode {
  std::vector<ActionStmt> pre;
  ActionExprPtr test;
  std::vector<ActionStmt> post;
  std::shared_ptr<core::HelperRegistry> helpers;
};

core::EvalContext ContextFor(const std::shared_ptr<InterpCode>& code,
                             volcano::BindingView& bv) {
  core::EvalContext ctx;
  ctx.contiguous = bv.slots.data();
  ctx.contiguous_count = static_cast<int>(bv.slots.size());
  ctx.helpers = code->helpers.get();
  ctx.catalog = bv.catalog;
  ctx.store = bv.store;
  return ctx;
}

/// cond_code: pre-statements then the test.
volcano::CondFn MakeCondFn(std::shared_ptr<InterpCode> code) {
  return [code](volcano::BindingView& bv) -> Result<bool> {
    core::EvalContext ctx = ContextFor(code, bv);
    PRAIRIE_RETURN_NOT_OK(core::ExecuteAll(code->pre, ctx));
    return core::EvalTest(code->test, ctx);
  };
}

/// Statement-block action (appl_code / pre-opt / post-opt).
volcano::ActionFn MakeActionFn(std::shared_ptr<InterpCode> code, bool post) {
  return [code, post](volcano::BindingView& bv) -> Status {
    core::EvalContext ctx = ContextFor(code, bv);
    return core::ExecuteAll(post ? code->post : code->pre, ctx);
  };
}

}  // namespace

Result<std::shared_ptr<volcano::RuleSet>> Translate(
    const core::RuleSet& prairie, TranslationReport* report) {
  PRAIRIE_ASSIGN_OR_RETURN(Analysis analysis, Analyze(prairie));
  const algebra::Algebra& algebra = *prairie.algebra;
  const algebra::PropertySchema& schema = algebra.properties();

  TranslationReport local_report;
  TranslationReport& rep = report != nullptr ? *report : local_report;
  rep.input_trules = static_cast<int>(prairie.trules.size());
  rep.input_irules = static_cast<int>(prairie.irules.size());
  rep.dropped_trules = analysis.dropped_trules;
  for (OpId op : analysis.enforcer_ops) {
    rep.enforcer_operators.push_back(algebra.name(op));
  }
  for (const auto& [alias, canon] : analysis.aliases) {
    rep.aliases.emplace_back(algebra.name(alias), algebra.name(canon));
  }
  for (PropertyId id = 0; id < schema.size(); ++id) {
    const std::string& name = schema.decl(id).name;
    switch (analysis.classes[static_cast<size_t>(id)]) {
      case PropertyClass::kCost:
        rep.cost_properties.push_back(name);
        break;
      case PropertyClass::kPhysical:
        rep.physical_properties.push_back(name);
        break;
      case PropertyClass::kLogical:
        rep.logical_properties.push_back(name);
        break;
      case PropertyClass::kArgument:
        rep.argument_properties.push_back(name);
        break;
    }
  }

  auto volcano_rules = std::make_shared<volcano::RuleSet>();
  volcano_rules->name = "p2v-generated";
  volcano_rules->algebra = prairie.algebra;
  volcano_rules->cost_prop = analysis.cost_prop;
  volcano_rules->phys_props = analysis.phys_props;
  volcano_rules->logical_props = analysis.logical_props;

  // -- trans_rules with interpreted cond/appl code.
  for (AnalyzedTRule& p : analysis.trules) {
    volcano::TransRule tr;
    tr.name = p.src->name;
    tr.lhs = std::move(p.lhs);
    tr.rhs = std::move(p.rhs);
    tr.num_slots = p.src->num_slots;
    auto code = std::make_shared<InterpCode>();
    code->pre = p.src->pre_test;
    code->test = p.src->test;
    code->post = p.src->post_test;
    code->helpers = prairie.helpers;
    if (!code->pre.empty() || code->test != nullptr) {
      tr.condition = MakeCondFn(code);
    }
    if (!code->post.empty()) {
      tr.apply = MakeActionFn(code, /*post=*/true);
    }
    volcano_rules->trans_rules.push_back(std::move(tr));
  }

  // -- impl_rules.
  for (const AnalyzedImplRule& a : analysis.irules) {
    const IRule& r = *a.src;
    volcano::ImplRule ir;
    ir.name = r.name;
    ir.op = a.op;
    ir.alg = r.alg;
    ir.arity = r.arity;
    ir.rhs_input_slots = r.rhs_input_slots;
    ir.alg_slot = r.alg_slot;
    ir.num_slots = r.num_slots;
    auto code = std::make_shared<InterpCode>();
    code->test = r.test;
    code->pre = r.pre_opt;
    code->post = r.post_opt;
    code->helpers = prairie.helpers;
    if (code->test != nullptr) {
      ir.condition = MakeCondFn(std::make_shared<InterpCode>(
          InterpCode{{}, code->test, {}, code->helpers}));
    }
    if (!code->pre.empty()) ir.pre_opt = MakeActionFn(code, /*post=*/false);
    if (!code->post.empty()) ir.post_opt = MakeActionFn(code, /*post=*/true);
    volcano_rules->impl_rules.push_back(std::move(ir));
  }

  // -- enforcers (remapped to the fixed 3-slot layout).
  for (const AnalyzedEnforcer& a : analysis.enforcers) {
    const IRule& r = *a.src;
    volcano::Enforcer enf;
    enf.name = r.name;
    enf.alg = r.alg;
    enf.prop = a.prop;
    auto code = std::make_shared<InterpCode>();
    PRAIRIE_ASSIGN_OR_RETURN(ActionExprPtr test, RemapExpr(r.test, a.slot_map));
    code->test = std::move(test);
    PRAIRIE_ASSIGN_OR_RETURN(code->pre, RemapBlock(r.pre_opt, a.slot_map));
    PRAIRIE_ASSIGN_OR_RETURN(code->post, RemapBlock(r.post_opt, a.slot_map));
    code->helpers = prairie.helpers;
    if (code->test != nullptr) {
      enf.condition = MakeCondFn(std::make_shared<InterpCode>(
          InterpCode{{}, code->test, {}, code->helpers}));
    }
    enf.pre_opt = MakeActionFn(code, /*post=*/false);
    enf.post_opt = MakeActionFn(code, /*post=*/true);
    volcano_rules->enforcers.push_back(std::move(enf));
    rep.enforcer_algorithms.push_back(algebra.name(r.alg));
  }

  PRAIRIE_RETURN_NOT_OK(
      volcano_rules->Finalize().WithContext("P2V output rule set"));
  rep.output_trans_rules = static_cast<int>(volcano_rules->trans_rules.size());
  rep.output_impl_rules = static_cast<int>(volcano_rules->impl_rules.size());
  rep.output_enforcers = static_cast<int>(volcano_rules->enforcers.size());
  return volcano_rules;
}

std::string TranslationReport::ToString() const {
  std::string out;
  out += common::StringPrintf(
      "P2V translation: %d T-rules + %d I-rules -> %d trans_rules + %d "
      "impl_rules + %d enforcer(s)\n",
      input_trules, input_irules, output_trans_rules, output_impl_rules,
      output_enforcers);
  out += "  enforcer-operators: " +
         common::Join(enforcer_operators, ", ") + "\n";
  out += "  enforcer-algorithms: " +
         common::Join(enforcer_algorithms, ", ") + "\n";
  for (const auto& [alias, canon] : aliases) {
    out += "  alias merged: " + alias + " == " + canon + "\n";
  }
  out += "  T-rules merged away: " + common::Join(dropped_trules, ", ") +
         "\n";
  out += "  cost properties: " + common::Join(cost_properties, ", ") + "\n";
  out += "  physical properties: " +
         common::Join(physical_properties, ", ") + "\n";
  out += "  logical properties: " +
         common::Join(logical_properties, ", ") + "\n";
  out +=
      "  argument properties: " + common::Join(argument_properties, ", ") +
      "\n";
  return out;
}

}  // namespace prairie::p2v

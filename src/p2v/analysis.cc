#include "p2v/analysis.h"

#include "common/strings.h"
#include "volcano/rules.h"

namespace prairie::p2v {

using algebra::OpId;
using algebra::PatNode;
using algebra::PatNodePtr;
using algebra::PropertyId;
using algebra::Value;
using common::Result;
using common::Status;
using core::ActionExpr;
using core::ActionExprPtr;
using core::ActionStmt;
using core::IRule;
using core::TRule;

namespace {

bool IsTriviallyTrue(const ActionExprPtr& test) {
  if (test == nullptr) return true;
  if (test->kind() != ActionExpr::Kind::kConst) return false;
  const Value& v = test->constant();
  return v.type() == algebra::ValueType::kBool && v.AsBool();
}

/// Clones `node` with enforcer-operator nodes spliced out (their single
/// input takes their place); records the deleted slots.
Result<PatNodePtr> DeleteEnforcerOps(const PatNode& node,
                                     const std::set<OpId>& enforcer_ops,
                                     const algebra::Algebra& algebra,
                                     std::set<int>* deleted_slots) {
  if (!node.is_stream() && enforcer_ops.count(node.op) > 0) {
    if (node.children.size() != 1) {
      return Status::RuleError("enforcer-operator '" + algebra.name(node.op) +
                               "' used with arity != 1 in a T-rule");
    }
    deleted_slots->insert(node.desc_slot);
    return DeleteEnforcerOps(*node.children[0], enforcer_ops, algebra,
                             deleted_slots);
  }
  PatNodePtr out = std::make_unique<PatNode>();
  out->kind = node.kind;
  out->op = node.op;
  out->stream_var = node.stream_var;
  out->desc_slot = node.desc_slot;
  out->children.reserve(node.children.size());
  for (const PatNodePtr& c : node.children) {
    PRAIRIE_ASSIGN_OR_RETURN(
        PatNodePtr nc,
        DeleteEnforcerOps(*c, enforcer_ops, algebra, deleted_slots));
    out->children.push_back(std::move(nc));
  }
  return out;
}

void SubstituteAliases(PatNode* node, const std::map<OpId, OpId>& aliases) {
  if (!node->is_stream()) {
    auto it = aliases.find(node->op);
    if (it != aliases.end()) node->op = it->second;
  }
  for (PatNodePtr& c : node->children) SubstituteAliases(c.get(), aliases);
}

/// True if `node` is Op(?a, ?b, ...) — a single operation over stream
/// variables only; collects the variables in order.
bool IsFlatOp(const PatNode& node, std::vector<int>* vars) {
  if (node.is_stream()) return false;
  vars->clear();
  for (const PatNodePtr& c : node.children) {
    if (!c->is_stream()) return false;
    vars->push_back(c->stream_var);
  }
  return true;
}

OpId ResolveAlias(OpId op, const std::map<OpId, OpId>& aliases) {
  auto it = aliases.find(op);
  while (it != aliases.end()) {
    op = it->second;
    it = aliases.find(op);
  }
  return op;
}

}  // namespace

std::vector<PropertyClass> ClassifyProperties(const core::RuleSet& prairie) {
  const algebra::PropertySchema& schema = prairie.algebra->properties();
  std::vector<PropertyClass> out(static_cast<size_t>(schema.size()),
                                 PropertyClass::kArgument);
  for (PropertyId id = 0; id < schema.size(); ++id) {
    if (schema.decl(id).is_cost) {
      out[static_cast<size_t>(id)] = PropertyClass::kCost;
    }
  }
  // Physical: assigned on a re-annotated (fresh) input-stream descriptor in
  // the pre-opt section of some I-rule — i.e. a requirement the algorithm
  // pushes onto its inputs, like tuple_order in the Nested_loops rule.
  for (const IRule& r : prairie.irules) {
    std::set<int> fresh;
    for (int i = 0; i < r.arity; ++i) {
      if (r.input_reannotated(i)) {
        fresh.insert(r.rhs_input_slots[static_cast<size_t>(i)]);
      }
    }
    for (const ActionStmt& s : r.pre_opt) {
      if (s.target_prop.empty() || fresh.count(s.target_slot) == 0) continue;
      auto id = schema.Find(s.target_prop);
      if (id.has_value() &&
          out[static_cast<size_t>(*id)] == PropertyClass::kArgument) {
        out[static_cast<size_t>(*id)] = PropertyClass::kPhysical;
      }
    }
  }
  // Remaining numeric properties are class-wide estimates -> logical.
  for (PropertyId id = 0; id < schema.size(); ++id) {
    if (out[static_cast<size_t>(id)] != PropertyClass::kArgument) continue;
    algebra::ValueType t = schema.decl(id).type;
    if (t == algebra::ValueType::kReal || t == algebra::ValueType::kInt) {
      out[static_cast<size_t>(id)] = PropertyClass::kLogical;
    }
  }
  return out;
}

Result<Analysis> Analyze(const core::RuleSet& prairie) {
  PRAIRIE_RETURN_NOT_OK(prairie.Validate().WithContext("P2V input"));
  const algebra::Algebra& algebra = *prairie.algebra;
  const algebra::PropertySchema& schema = algebra.properties();

  Analysis out;

  // -- Enforcer-operator detection.
  for (OpId op : prairie.EnforcerOperators()) out.enforcer_ops.insert(op);

  // -- Property classification.
  out.classes = ClassifyProperties(prairie);
  int cost_count = 0;
  for (PropertyId id = 0; id < schema.size(); ++id) {
    switch (out.classes[static_cast<size_t>(id)]) {
      case PropertyClass::kCost:
        ++cost_count;
        out.cost_prop = id;
        break;
      case PropertyClass::kPhysical:
        out.phys_props.push_back(id);
        break;
      case PropertyClass::kLogical:
        out.logical_props.push_back(id);
        break;
      case PropertyClass::kArgument:
        break;
    }
  }
  if (cost_count != 1) {
    return Status::RuleError(common::StringPrintf(
        "P2V requires exactly one COST-typed property, found %d",
        cost_count));
  }

  // -- T-rule merging (§3.3).
  for (const TRule& r : prairie.trules) {
    std::set<int> deleted;
    PRAIRIE_ASSIGN_OR_RETURN(
        PatNodePtr lhs,
        DeleteEnforcerOps(*r.lhs, out.enforcer_ops, algebra, &deleted));
    PRAIRIE_ASSIGN_OR_RETURN(
        PatNodePtr rhs,
        DeleteEnforcerOps(*r.rhs, out.enforcer_ops, algebra, &deleted));
    if (lhs->is_stream() || rhs->is_stream()) {
      return Status::RuleError("T-rule '" + r.name +
                               "' collapses to a bare stream after "
                               "enforcer-operator deletion");
    }
    std::vector<int> lhs_vars, rhs_vars;
    if (IsFlatOp(*lhs, &lhs_vars) && IsFlatOp(*rhs, &rhs_vars) &&
        lhs_vars == rhs_vars && IsTriviallyTrue(r.test)) {
      // Idempotence mapping: drop the rule; alias the RHS operator to the
      // LHS operator.
      if (lhs->op != rhs->op) {
        OpId canon = ResolveAlias(lhs->op, out.aliases);
        OpId alias = ResolveAlias(rhs->op, out.aliases);
        if (alias != canon) out.aliases[alias] = canon;
      }
      out.dropped_trules.push_back(r.name);
      continue;
    }
    if (!deleted.empty()) {
      // The rule keeps real structure but lost enforcer-operator nodes; its
      // actions may reference the deleted descriptors, so refuse rather
      // than silently change semantics.
      return Status::RuleError(
          "T-rule '" + r.name +
          "' uses an enforcer-operator in a non-idempotent position; P2V "
          "can only merge enforcer-introduction rules");
    }
    out.trules.push_back(AnalyzedTRule{&r, std::move(lhs), std::move(rhs)});
  }
  for (AnalyzedTRule& t : out.trules) {
    SubstituteAliases(t.lhs.get(), out.aliases);
    SubstituteAliases(t.rhs.get(), out.aliases);
  }

  // -- I-rules: split into impl rules and enforcers; drop Null rules.
  for (const IRule& r : prairie.irules) {
    if (r.alg == algebra.null_alg()) continue;
    if (out.enforcer_ops.count(r.op) > 0) {
      if (r.arity != 1) {
        return Status::RuleError("enforcer-operator I-rule '" + r.name +
                                 "' must be unary");
      }
      if (r.input_reannotated(0)) {
        return Status::RuleError(
            "enforcer-algorithm I-rule '" + r.name +
            "' re-annotates its input, which P2V does not support");
      }
      // The enforced property comes from the operator's Null rule (the
      // property it propagates to its input).
      PropertyId enforced = -1;
      for (const IRule& nr : prairie.irules) {
        if (nr.op != r.op || nr.alg != algebra.null_alg()) continue;
        for (const ActionStmt& s : nr.pre_opt) {
          if (s.target_prop.empty()) continue;
          if (!nr.input_reannotated(0) ||
              s.target_slot != nr.rhs_input_slots[0]) {
            continue;
          }
          auto id = schema.Find(s.target_prop);
          if (!id.has_value()) continue;
          if (enforced >= 0 && enforced != *id) {
            return Status::RuleError(
                "enforcer-operator '" + algebra.name(r.op) +
                "' propagates more than one property; P2V supports one");
          }
          enforced = *id;
        }
      }
      if (enforced < 0) {
        return Status::RuleError(
            "cannot determine the property enforced by operator '" +
            algebra.name(r.op) + "': its Null rule propagates none");
      }
      AnalyzedEnforcer e;
      e.src = &r;
      e.prop = enforced;
      e.slot_map.assign(static_cast<size_t>(r.num_slots), -1);
      e.slot_map[0] = volcano::Enforcer::kInputSlot;
      e.slot_map[static_cast<size_t>(r.op_slot())] = volcano::Enforcer::kOpSlot;
      e.slot_map[static_cast<size_t>(r.alg_slot)] = volcano::Enforcer::kAlgSlot;
      out.enforcers.push_back(std::move(e));
      continue;
    }
    out.irules.push_back(
        AnalyzedImplRule{&r, ResolveAlias(r.op, out.aliases)});
  }
  return out;
}

}  // namespace prairie::p2v

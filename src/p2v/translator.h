// The P2V pre-processor (paper §3): translates a Prairie rule set into a
// Volcano rule set that the search engine can process efficiently.
//
// The translation performs, exactly as the paper describes:
//  1. Enforcer detection (§2.5, §3.1): a unary operator with a Null
//     I-rule is an *enforcer-operator*; its non-Null algorithms are
//     *enforcer-algorithms* and become Volcano enforcers; Null rules
//     disappear.
//  2. Automatic property classification (§3.1): a property declared with
//     the COST type is a cost property; a property assigned on a
//     re-annotated input-stream descriptor in the pre-opt section of any
//     I-rule is a physical property; all remaining properties are
//     operator/algorithm arguments.
//  3. Rule merging (§3.3): enforcer-operators are deleted from T-rule
//     patterns; T-rules that thereby become idempotent operator aliases
//     (JOIN => JOPR) are dropped and the alias is substituted throughout
//     the rule set, producing the compact Volcano rule count the paper
//     reports (22 T + 11 I -> 17 trans + 9 impl for the Open OODB set).
//  4. Code synthesis (§3.2): Prairie pre-test/test/post-test sections
//     become the trans_rule's cond_code/appl_code; I-rule sections become
//     the impl_rule's condition, "get_input_pv"-style pre-opt and
//     "derive_phy_prop"/cost post-opt callbacks, interpreted over the
//     Prairie action ASTs.

#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ruleset.h"
#include "p2v/analysis.h"
#include "volcano/rules.h"

namespace prairie::p2v {

/// \brief What the pre-processor did — the raw material of the paper's
/// §4.2 productivity comparison.
struct TranslationReport {
  int input_trules = 0;
  int input_irules = 0;
  int output_trans_rules = 0;
  int output_impl_rules = 0;
  int output_enforcers = 0;

  std::vector<std::string> enforcer_operators;
  std::vector<std::string> enforcer_algorithms;
  /// Operator aliases discovered by idempotent-rule merging (alias, canon).
  std::vector<std::pair<std::string, std::string>> aliases;
  /// Names of T-rules merged away.
  std::vector<std::string> dropped_trules;

  std::vector<std::string> cost_properties;
  std::vector<std::string> physical_properties;
  std::vector<std::string> logical_properties;
  std::vector<std::string> argument_properties;

  std::string ToString() const;
};

/// Translates a validated Prairie rule set into an executable Volcano rule
/// set. The returned rule set shares the Prairie set's Algebra and keeps
/// (owns) copies of the rule ASTs it interprets; `prairie` itself is not
/// retained and may be destroyed afterwards.
common::Result<std::shared_ptr<volcano::RuleSet>> Translate(
    const core::RuleSet& prairie, TranslationReport* report = nullptr);

}  // namespace prairie::p2v

// The analysis half of the P2V pre-processor, shared by the two
// back-ends: Translate() (in-process rule set with interpreted actions)
// and EmitCpp() (generated C++ source, as the original toolchain emitted
// C). Performs property classification, enforcer detection and rule
// merging (paper §3.1-3.3) without committing to a code representation.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/ruleset.h"

namespace prairie::p2v {

/// \brief Classification of one property (§3.1, Table 3).
///
/// Cost and physical follow the paper's rules; numeric properties that are
/// neither become Volcano *logical properties* (class-wide estimates like
/// num_records — Table 3 lists them as having no Prairie counterpart, so
/// P2V derives them); everything else is an operator/algorithm argument.
enum class PropertyClass { kCost, kPhysical, kLogical, kArgument };

/// Classifies every schema property of `prairie` per the P2V rules.
std::vector<PropertyClass> ClassifyProperties(const core::RuleSet& prairie);

/// A T-rule that survives merging, with enforcer-operators deleted and
/// aliases substituted in its patterns.
struct AnalyzedTRule {
  const core::TRule* src = nullptr;
  algebra::PatNodePtr lhs;
  algebra::PatNodePtr rhs;
};

/// An ordinary I-rule (alias-resolved operator).
struct AnalyzedImplRule {
  const core::IRule* src = nullptr;
  algebra::OpId op = -1;
};

/// An enforcer-algorithm I-rule with its enforced property and the map
/// from the rule's descriptor slots onto the fixed enforcer layout
/// (-1 = slot removed).
struct AnalyzedEnforcer {
  const core::IRule* src = nullptr;
  algebra::PropertyId prop = -1;
  std::vector<int> slot_map;
};

/// \brief Everything the back-ends need to produce a Volcano rule set.
struct Analysis {
  std::vector<PropertyClass> classes;
  algebra::PropertyId cost_prop = -1;
  std::vector<algebra::PropertyId> phys_props;
  std::vector<algebra::PropertyId> logical_props;

  std::set<algebra::OpId> enforcer_ops;
  /// Alias substitutions discovered by idempotent-rule merging.
  std::map<algebra::OpId, algebra::OpId> aliases;

  std::vector<AnalyzedTRule> trules;
  std::vector<std::string> dropped_trules;
  std::vector<AnalyzedImplRule> irules;
  std::vector<AnalyzedEnforcer> enforcers;
};

/// Runs the full analysis. `prairie` must outlive the result (the
/// analysis borrows its rules).
common::Result<Analysis> Analyze(const core::RuleSet& prairie);

}  // namespace prairie::p2v

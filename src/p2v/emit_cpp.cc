#include "p2v/emit_cpp.h"

#include "common/strings.h"
#include "p2v/analysis.h"

namespace prairie::p2v {

using algebra::PatNode;
using algebra::PropertyId;
using algebra::Value;
using algebra::ValueType;
using common::Result;
using common::Status;
using core::ActionExpr;
using core::ActionExprPtr;
using core::ActionStmt;
using core::BinOp;
using core::IRule;
using core::UnOp;

namespace {

using common::StringPrintf;

/// Remaps a slot through an optional enforcer slot map.
Result<int> MapSlot(int slot, const std::vector<int>* slot_map) {
  if (slot_map == nullptr) return slot;
  if (slot < 0 || slot >= static_cast<int>(slot_map->size()) ||
      (*slot_map)[static_cast<size_t>(slot)] < 0) {
    return Status::RuleError(
        "action references descriptor D" + std::to_string(slot + 1) +
        " which was removed by the P2V translation");
  }
  return (*slot_map)[static_cast<size_t>(slot)];
}

std::string PropConst(const algebra::PropertySchema& schema, PropertyId id) {
  return "kProp_" + schema.decl(id).name;
}

Result<std::string> EmitConst(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return std::string("Value()");
    case ValueType::kBool:
      return std::string(v.AsBool() ? "Value::Bool(true)"
                                    : "Value::Bool(false)");
    case ValueType::kInt:
      return StringPrintf("Value::Int(%lld)",
                          static_cast<long long>(v.AsInt()));
    case ValueType::kReal:
      return StringPrintf("Value::Real(%.17g)", v.AsReal());
    case ValueType::kString:
      // JSON escaping is also valid inside a C++ string literal: the
      // short escapes coincide, and \uNNNN for control characters is a
      // universal-character-name, legal in literals.
      return "Value::Str(\"" + common::JsonEscape(v.AsString()) + "\")";
    case ValueType::kSort:
      if (v.AsSort().is_dont_care()) {
        return std::string(
            "Value::Sort(prairie::algebra::SortSpec::DontCare())");
      }
      return Status::NotImplemented(
          "sort-spec constants other than DONT_CARE cannot be emitted");
    default:
      return Status::NotImplemented("constants of type " +
                                    std::string(ValueTypeName(v.type())) +
                                    " cannot be emitted");
  }
}

class Emitter {
 public:
  Emitter(const core::RuleSet& prairie, const Analysis& analysis,
          const EmitOptions& options)
      : prairie_(prairie),
        analysis_(analysis),
        options_(options),
        schema_(prairie.algebra->properties()) {}

  Result<std::string> Run();

 private:
  Result<std::string> EmitExpr(const ActionExprPtr& e,
                               const std::vector<int>* slot_map);
  Result<std::string> EmitCallArg(const ActionExprPtr& e,
                                  const std::vector<int>* slot_map);
  Status EmitBlock(const std::vector<ActionStmt>& stmts,
                   const std::vector<int>* slot_map, const char* indent,
                   std::string* out);
  Status EmitCondLambda(const std::vector<ActionStmt>& pre,
                        const ActionExprPtr& test,
                        const std::vector<int>* slot_map, std::string* out);
  Status EmitActionLambda(const std::vector<ActionStmt>& stmts,
                          const std::vector<int>* slot_map, std::string* out);
  std::string EmitPattern(const PatNode& n);

  const core::RuleSet& prairie_;
  const Analysis& analysis_;
  const EmitOptions& options_;
  const algebra::PropertySchema& schema_;
};

Result<std::string> Emitter::EmitExpr(const ActionExprPtr& e,
                                      const std::vector<int>* slot_map) {
  switch (e->kind()) {
    case ActionExpr::Kind::kConst:
      return EmitConst(e->constant());
    case ActionExpr::Kind::kProp: {
      PRAIRIE_ASSIGN_OR_RETURN(int slot, MapSlot(e->desc_slot(), slot_map));
      auto id = schema_.Find(e->property());
      if (!id.has_value()) {
        return Status::RuleError("unknown property '" + e->property() + "'");
      }
      return StringPrintf("ES::P(c, %d, %s)", slot,
                          PropConst(schema_, *id).c_str());
    }
    case ActionExpr::Kind::kDesc:
      return Status::RuleError(
          "whole descriptors may only appear as helper arguments or on the "
          "right of a whole-descriptor assignment");
    case ActionExpr::Kind::kCall: {
      auto native = options_.native_helpers.find(e->fn());
      if (native != options_.native_helpers.end()) {
        // Direct call into compiled support code (the paper's deployment).
        std::string out =
            "ES::Unwrap(c, " + native->second + "(c.bv.catalog";
        for (const ActionExprPtr& a : e->args()) {
          PRAIRIE_ASSIGN_OR_RETURN(std::string v, EmitExpr(a, slot_map));
          out += ", " + v;
        }
        out += "))";
        return out;
      }
      std::string out = "ES::Call(c, \"" + e->fn() + "\", {";
      for (size_t i = 0; i < e->args().size(); ++i) {
        if (i > 0) out += ", ";
        PRAIRIE_ASSIGN_OR_RETURN(std::string a,
                                 EmitCallArg(e->args()[i], slot_map));
        out += a;
      }
      out += "})";
      return out;
    }
    case ActionExpr::Kind::kBinary: {
      if (e->bin_op() == BinOp::kAnd || e->bin_op() == BinOp::kOr) {
        // Short-circuit semantics, matching the interpreter.
        PRAIRIE_ASSIGN_OR_RETURN(std::string l, EmitExpr(e->left(), slot_map));
        PRAIRIE_ASSIGN_OR_RETURN(std::string r,
                                 EmitExpr(e->right(), slot_map));
        const char* stop = e->bin_op() == BinOp::kAnd ? "!" : "";
        const char* value = e->bin_op() == BinOp::kAnd ? "false" : "true";
        return "[&]() -> Value { if (" + std::string(stop) + "ES::AsBool(c, " +
               l + ")) return Value::Bool(" + value +
               "); return Value::Bool(ES::AsBool(c, " + r + ")); }()";
      }
      PRAIRIE_ASSIGN_OR_RETURN(std::string l, EmitExpr(e->left(), slot_map));
      PRAIRIE_ASSIGN_OR_RETURN(std::string r, EmitExpr(e->right(), slot_map));
      switch (e->bin_op()) {
        case BinOp::kAdd:
          return "ES::Add(c, " + l + ", " + r + ")";
        case BinOp::kSub:
          return "ES::Sub(c, " + l + ", " + r + ")";
        case BinOp::kMul:
          return "ES::Mul(c, " + l + ", " + r + ")";
        case BinOp::kDiv:
          return "ES::Div(c, " + l + ", " + r + ")";
        case BinOp::kEq:
          return "ES::Eq(c, " + l + ", " + r + ", false)";
        case BinOp::kNe:
          return "ES::Eq(c, " + l + ", " + r + ", true)";
        case BinOp::kLt:
          return "ES::Cmp(c, " + l + ", " + r + ", 0)";
        case BinOp::kLe:
          return "ES::Cmp(c, " + l + ", " + r + ", 1)";
        case BinOp::kGt:
          return "ES::Cmp(c, " + l + ", " + r + ", 2)";
        case BinOp::kGe:
          return "ES::Cmp(c, " + l + ", " + r + ", 3)";
        default:
          return Status::Internal("unhandled binary op");
      }
    }
    case ActionExpr::Kind::kUnary: {
      PRAIRIE_ASSIGN_OR_RETURN(std::string inner,
                               EmitExpr(e->args()[0], slot_map));
      return std::string(e->un_op() == UnOp::kNot ? "ES::Not" : "ES::Neg") +
             "(c, " + inner + ")";
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<std::string> Emitter::EmitCallArg(const ActionExprPtr& e,
                                         const std::vector<int>* slot_map) {
  if (e->kind() == ActionExpr::Kind::kDesc) {
    PRAIRIE_ASSIGN_OR_RETURN(int slot, MapSlot(e->desc_slot(), slot_map));
    return StringPrintf("ES::DescArg(c, %d)", slot);
  }
  PRAIRIE_ASSIGN_OR_RETURN(std::string v, EmitExpr(e, slot_map));
  return "ES::Arg(" + v + ")";
}

Status Emitter::EmitBlock(const std::vector<ActionStmt>& stmts,
                          const std::vector<int>* slot_map,
                          const char* indent, std::string* out) {
  for (const ActionStmt& s : stmts) {
    PRAIRIE_ASSIGN_OR_RETURN(int target, MapSlot(s.target_slot, slot_map));
    *out += indent;
    if (s.assigns_whole_descriptor()) {
      if (s.value->kind() != ActionExpr::Kind::kDesc) {
        return Status::RuleError(
            "whole-descriptor assignment requires a descriptor source");
      }
      PRAIRIE_ASSIGN_OR_RETURN(int from,
                               MapSlot(s.value->desc_slot(), slot_map));
      *out += StringPrintf("ES::Copy(c, %d, %d);", target, from);
    } else {
      auto id = schema_.Find(s.target_prop);
      if (!id.has_value()) {
        return Status::RuleError("unknown property '" + s.target_prop + "'");
      }
      PRAIRIE_ASSIGN_OR_RETURN(std::string v, EmitExpr(s.value, slot_map));
      *out += StringPrintf("ES::Set(c, %d, %s, %s);", target,
                           PropConst(schema_, *id).c_str(), v.c_str());
    }
    *out += "  // ";
    *out += s.ToString();
    *out += "\n";
  }
  return Status::OK();
}

Status Emitter::EmitCondLambda(const std::vector<ActionStmt>& pre,
                               const ActionExprPtr& test,
                               const std::vector<int>* slot_map,
                               std::string* out) {
  *out +=
      "[helpers](BindingView& bv) -> prairie::common::Result<bool> {\n"
      "      ES::EmitCtx c{bv, helpers.get(), {}};\n";
  PRAIRIE_RETURN_NOT_OK(EmitBlock(pre, slot_map, "      ", out));
  if (test == nullptr) {
    *out += "      if (c.failed()) return c.st;\n      return true;\n";
  } else {
    PRAIRIE_ASSIGN_OR_RETURN(std::string t, EmitExpr(test, slot_map));
    *out += "      bool ok = ES::AsBool(c, " + t + ");\n";
    *out += "      if (c.failed()) return c.st;\n      return ok;\n";
  }
  *out += "    }";
  return Status::OK();
}

Status Emitter::EmitActionLambda(const std::vector<ActionStmt>& stmts,
                                 const std::vector<int>* slot_map,
                                 std::string* out) {
  *out +=
      "[helpers](BindingView& bv) -> prairie::common::Status {\n"
      "      ES::EmitCtx c{bv, helpers.get(), {}};\n";
  PRAIRIE_RETURN_NOT_OK(EmitBlock(stmts, slot_map, "      ", out));
  *out += "      return c.st;\n    }";
  return Status::OK();
}

std::string Emitter::EmitPattern(const PatNode& n) {
  if (n.is_stream()) {
    return StringPrintf("S(%d, %d)", n.stream_var, n.desc_slot);
  }
  std::string out = StringPrintf(
      "N(kOp_%s, %d", prairie_.algebra->name(n.op).c_str(), n.desc_slot);
  for (const algebra::PatNodePtr& c : n.children) {
    out += ", " + EmitPattern(*c);
  }
  out += ")";
  return out;
}

Result<std::string> Emitter::Run() {
  const algebra::Algebra& algebra = *prairie_.algebra;
  std::string out;
  out +=
      "// Generated by the Prairie P2V pre-processor. DO NOT EDIT.\n"
      "//\n"
      "// This translation unit builds a Volcano rule set whose rule\n"
      "// conditions and property transformations are compiled C++\n"
      "// (the deployment the original P2V toolchain produced as C).\n"
      "\n"
      "#include <memory>\n"
      "#include <utility>\n"
      "#include <vector>\n"
      "\n"
      "#include \"p2v/emitted_support.h\"\n";
  for (const std::string& inc : options_.extra_includes) {
    out += "#include \"" + inc + "\"\n";
  }
  out += "\n";
  if (!options_.namespace_name.empty()) {
    out += "namespace " + options_.namespace_name + " {\n";
  }
  out +=
      "namespace {\n"
      "\n"
      "namespace ES = prairie::p2v::emitted;\n"
      "using prairie::algebra::PatNode;\n"
      "using prairie::algebra::PatNodePtr;\n"
      "using prairie::algebra::Value;\n"
      "using prairie::volcano::BindingView;\n"
      "\n"
      "PatNodePtr S(int var, int slot) { return PatNode::Stream(var, slot); }\n"
      "\n"
      "template <typename... Kids>\n"
      "PatNodePtr N(prairie::algebra::OpId op, int slot, Kids... kids) {\n"
      "  std::vector<PatNodePtr> v;\n"
      "  (v.push_back(std::move(kids)), ...);\n"
      "  return PatNode::Op(op, slot, std::move(v));\n"
      "}\n"
      "\n";

  // Property-id and op-id constants (stable by construction order).
  for (PropertyId id = 0; id < schema_.size(); ++id) {
    out += StringPrintf(
        "constexpr prairie::algebra::PropertyId kProp_%s = %d;\n",
        schema_.decl(id).name.c_str(), id);
  }
  out += "\n";
  for (algebra::OpId op = 0; op < algebra.size(); ++op) {
    out += StringPrintf("constexpr prairie::algebra::OpId kOp_%s = %d;\n",
                        algebra.name(op).c_str(), op);
  }
  out += "\n}  // namespace\n\n";

  out += "prairie::common::Result<std::shared_ptr<prairie::volcano::RuleSet>>\n";
  out += options_.function_name +
         "(std::shared_ptr<prairie::core::HelperRegistry> helpers) {\n";
  out +=
      "  auto rules = std::make_shared<prairie::volcano::RuleSet>();\n"
      "  rules->name = \"p2v-emitted\";\n"
      "  rules->algebra = std::make_shared<prairie::algebra::Algebra>();\n"
      "  auto* schema = rules->algebra->mutable_properties();\n";
  for (PropertyId id = 0; id < schema_.size(); ++id) {
    const algebra::PropertyDecl& d = schema_.decl(id);
    out += StringPrintf(
        "  PRAIRIE_RETURN_NOT_OK(schema->Add(\"%s\", "
        "prairie::algebra::ValueType::%s, %s));\n",
        d.name.c_str(),
        [&] {
          switch (d.type) {
            case ValueType::kBool:
              return "kBool";
            case ValueType::kInt:
              return "kInt";
            case ValueType::kReal:
              return "kReal";
            case ValueType::kString:
              return "kString";
            case ValueType::kSort:
              return "kSort";
            case ValueType::kAttrs:
              return "kAttrs";
            case ValueType::kPred:
              return "kPred";
            default:
              return "kNull";
          }
        }(),
        d.is_cost ? "true" : "false");
  }
  // Registration in source-id order keeps the kOp_* constants valid (the
  // pre-registered Null algorithm is id 0 in every Algebra).
  for (algebra::OpId op = 1; op < algebra.size(); ++op) {
    const algebra::OpInfo& info = algebra.info(op);
    out += StringPrintf(
        "  {\n    auto id = rules->algebra->Register%s(\"%s\", %d);\n"
        "    if (!id.ok()) return id.status();\n"
        "    if (*id != kOp_%s) {\n"
        "      return prairie::common::Status::Internal(\n"
        "          \"generated operation ids diverged\");\n    }\n  }\n",
        info.is_algorithm ? "Algorithm" : "Operator", info.name.c_str(),
        info.arity, info.name.c_str());
  }

  out += StringPrintf("  rules->cost_prop = %d;\n", analysis_.cost_prop);
  auto emit_ids = [&](const char* field,
                      const std::vector<PropertyId>& ids) {
    out += StringPrintf("  rules->%s = {", field);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (i > 0) out += ", ";
      out += PropConst(schema_, ids[i]);
    }
    out += "};\n";
  };
  emit_ids("phys_props", analysis_.phys_props);
  emit_ids("logical_props", analysis_.logical_props);
  out += "\n";

  // trans_rules.
  for (const AnalyzedTRule& t : analysis_.trules) {
    const core::TRule& r = *t.src;
    out += "  {  // trans_rule " + r.name + "\n";
    out += "    prairie::volcano::TransRule r;\n";
    out += "    r.name = \"" + r.name + "\";\n";
    out += "    r.lhs = " + EmitPattern(*t.lhs) + ";\n";
    out += "    r.rhs = " + EmitPattern(*t.rhs) + ";\n";
    out += StringPrintf("    r.num_slots = %d;\n", r.num_slots);
    if (!r.pre_test.empty() || r.test != nullptr) {
      out += "    r.condition = ";
      PRAIRIE_RETURN_NOT_OK(
          EmitCondLambda(r.pre_test, r.test, nullptr, &out));
      out += ";\n";
    }
    if (!r.post_test.empty()) {
      out += "    r.apply = ";
      PRAIRIE_RETURN_NOT_OK(EmitActionLambda(r.post_test, nullptr, &out));
      out += ";\n";
    }
    out += "    rules->trans_rules.push_back(std::move(r));\n  }\n";
  }

  // impl_rules.
  for (const AnalyzedImplRule& a : analysis_.irules) {
    const IRule& r = *a.src;
    out += "  {  // impl_rule " + r.name + "\n";
    out += "    prairie::volcano::ImplRule r;\n";
    out += "    r.name = \"" + r.name + "\";\n";
    out += StringPrintf("    r.op = kOp_%s;\n",
                        algebra.name(a.op).c_str());
    out += StringPrintf("    r.alg = kOp_%s;\n",
                        algebra.name(r.alg).c_str());
    out += StringPrintf("    r.arity = %d;\n", r.arity);
    out += "    r.rhs_input_slots = {";
    for (int i = 0; i < r.arity; ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(r.rhs_input_slots[static_cast<size_t>(i)]);
    }
    out += "};\n";
    out += StringPrintf("    r.alg_slot = %d;\n    r.num_slots = %d;\n",
                        r.alg_slot, r.num_slots);
    if (r.test != nullptr) {
      out += "    r.condition = ";
      PRAIRIE_RETURN_NOT_OK(EmitCondLambda({}, r.test, nullptr, &out));
      out += ";\n";
    }
    if (!r.pre_opt.empty()) {
      out += "    r.pre_opt = ";
      PRAIRIE_RETURN_NOT_OK(EmitActionLambda(r.pre_opt, nullptr, &out));
      out += ";\n";
    }
    if (!r.post_opt.empty()) {
      out += "    r.post_opt = ";
      PRAIRIE_RETURN_NOT_OK(EmitActionLambda(r.post_opt, nullptr, &out));
      out += ";\n";
    }
    out += "    rules->impl_rules.push_back(std::move(r));\n  }\n";
  }

  // enforcers.
  for (const AnalyzedEnforcer& e : analysis_.enforcers) {
    const IRule& r = *e.src;
    out += "  {  // enforcer " + r.name + "\n";
    out += "    prairie::volcano::Enforcer e;\n";
    out += "    e.name = \"" + r.name + "\";\n";
    out += StringPrintf("    e.alg = kOp_%s;\n",
                        algebra.name(r.alg).c_str());
    out += StringPrintf("    e.prop = %s;\n",
                        PropConst(schema_, e.prop).c_str());
    if (r.test != nullptr) {
      out += "    e.condition = ";
      PRAIRIE_RETURN_NOT_OK(EmitCondLambda({}, r.test, &e.slot_map, &out));
      out += ";\n";
    }
    out += "    e.pre_opt = ";
    PRAIRIE_RETURN_NOT_OK(EmitActionLambda(r.pre_opt, &e.slot_map, &out));
    out += ";\n";
    out += "    e.post_opt = ";
    PRAIRIE_RETURN_NOT_OK(EmitActionLambda(r.post_opt, &e.slot_map, &out));
    out += ";\n";
    out += "    rules->enforcers.push_back(std::move(e));\n  }\n";
  }

  out +=
      "  PRAIRIE_RETURN_NOT_OK(rules->Finalize());\n"
      "  return rules;\n"
      "}\n";
  if (!options_.namespace_name.empty()) {
    out += "\n}  // namespace " + options_.namespace_name + "\n";
  }
  return out;
}

}  // namespace

Result<std::string> EmitCpp(const core::RuleSet& prairie,
                            const EmitOptions& options) {
  PRAIRIE_ASSIGN_OR_RETURN(Analysis analysis, Analyze(prairie));
  return Emitter(prairie, analysis, options).Run();
}

}  // namespace prairie::p2v

#include "exec/builder.h"

namespace prairie::exec {

using common::Result;
using common::Status;

Status ExecutorRegistry::Register(std::string alg_name, AlgFactory factory) {
  if (factories_.count(alg_name) > 0) {
    return Status::AlreadyExists("executor for algorithm '" + alg_name +
                                 "' already registered");
  }
  factories_.emplace(std::move(alg_name), std::move(factory));
  return Status::OK();
}

Result<IterPtr> ExecutorRegistry::Build(const algebra::Expr& plan,
                                        const algebra::Algebra& algebra,
                                        const Database& db) const {
  return BuildNode(plan, algebra, db, /*stats=*/nullptr, /*parent=*/nullptr,
                   /*child_index=*/0);
}

Result<IterPtr> ExecutorRegistry::Build(const algebra::Expr& plan,
                                        const algebra::Algebra& algebra,
                                        const Database& db,
                                        ExecStats* stats) const {
#if !PRAIRIE_EXEC_STATS
  stats = nullptr;
#endif
  return BuildNode(plan, algebra, db, stats, /*parent=*/nullptr,
                   /*child_index=*/0);
}

Result<IterPtr> ExecutorRegistry::BuildNode(const algebra::Expr& plan,
                                            const algebra::Algebra& algebra,
                                            const Database& db,
                                            ExecStats* stats, OpStats* parent,
                                            int child_index) const {
  if (plan.is_file()) {
    return Status::ExecError(
        "cannot execute a bare stored file; wrap it in a scan algorithm");
  }
  if (!algebra.is_algorithm(plan.op())) {
    return Status::ExecError("plan node '" + algebra.name(plan.op()) +
                             "' is not an algorithm; optimize first");
  }
  const std::string& name = algebra.name(plan.op());
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no executor registered for algorithm '" + name +
                            "'");
  }
  OpStats* node_stats = nullptr;
  if (stats != nullptr) {
    double est_rows = -1;
    auto est = plan.descriptor().Get(stats->est_rows_property());
    if (est.ok()) est_rows = est->ToReal().ValueOr(-1);
    node_stats = stats->NewNode(name, plan.op(), est_rows, parent,
                                child_index);
  }
  PlanBuilder builder(this, &plan, &algebra, &db, stats, node_stats);
  Result<IterPtr> built = it->second(plan, builder);
  if (!built.ok() || node_stats == nullptr) return built;
  return IterPtr(std::make_unique<InstrumentedIterator>(
      std::move(built).ValueUnsafe(), node_stats));
}

Result<IterPtr> PlanBuilder::BuildChild(size_t i) const {
  if (i >= node_->num_children()) {
    return Status::Internal("plan child index out of range");
  }
  return registry_->BuildNode(node_->child(i), *algebra_, *db_, stats_,
                              stats_node_, static_cast<int>(i));
}

Result<const Table*> PlanBuilder::ChildTable(size_t i) const {
  if (i >= node_->num_children() || !node_->child(i).is_file()) {
    return Status::ExecError(
        "algorithm '" + algebra_->name(node_->op()) +
        "' expects a stored file input at position " + std::to_string(i));
  }
  return db_->Require(node_->child(i).file_name());
}

Result<algebra::Value> PlanBuilder::Prop(const std::string& name) const {
  return node_->descriptor().Get(name);
}

}  // namespace prairie::exec

#include "exec/feedback.h"

#include "algebra/descriptor_store.h"
#include "common/strings.h"

namespace prairie::exec {

using common::Status;

void CardinalityFeedback::Record(const std::string& fingerprint_key,
                                 double est_rows, uint64_t actual_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[fingerprint_key];
  e.est_rows = est_rows;
  e.actual_rows = actual_rows;
  ++e.observations;
}

std::optional<CardinalityFeedback::Entry> CardinalityFeedback::Lookup(
    const std::string& fingerprint_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint_key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

size_t CardinalityFeedback::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<std::string, CardinalityFeedback::Entry>>
CardinalityFeedback::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::string CardinalityFeedback::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, e] : entries_) {
    std::string hex;
    hex.reserve(key.size() * 2);
    static constexpr char kHex[] = "0123456789abcdef";
    for (const char c : key) {
      const auto b = static_cast<unsigned char>(c);
      hex += kHex[b >> 4];
      hex += kHex[b & 0xf];
    }
    out += "{\"key\":\"" + hex + "\"";
    if (e.est_rows >= 0) {
      out += ",\"est_rows\":" + common::FormatDouble(e.est_rows);
    }
    out += ",\"actual_rows\":" + std::to_string(e.actual_rows) +
           ",\"observations\":" + std::to_string(e.observations) + "}\n";
  }
  return out;
}

namespace {

Status RecordRec(const algebra::Expr& plan, const OpStats& stats,
                 algebra::DescriptorStore* store, CardinalityFeedback* fb) {
  std::string key;
  plan.Fingerprint(store, &key);
  fb->Record(key, stats.est_rows, stats.rows);
  size_t next_stats_child = 0;
  for (size_t i = 0; i < plan.num_children(); ++i) {
    if (plan.child(i).is_file()) continue;
    if (next_stats_child >= stats.children.size() ||
        stats.children[next_stats_child]->child_index !=
            static_cast<int>(i)) {
      return Status::Internal(
          "cardinality feedback: stats tree does not match the plan under "
          "algorithm '" +
          stats.alg + "'");
    }
    Status s = RecordRec(plan.child(i), *stats.children[next_stats_child],
                         store, fb);
    if (!s.ok()) return s;
    ++next_stats_child;
  }
  if (next_stats_child != stats.children.size()) {
    return Status::Internal(
        "cardinality feedback: stats tree has extra children under "
        "algorithm '" +
        stats.alg + "'");
  }
  return Status::OK();
}

}  // namespace

Status RecordPlanFeedback(const algebra::Expr& plan, const ExecStats& stats,
                          algebra::DescriptorStore* store,
                          CardinalityFeedback* fb) {
  if (stats.root() == nullptr) {
    return Status::OK();  // Nothing collected (stats disabled or no run).
  }
  if (plan.is_file()) {
    return Status::Internal(
        "cardinality feedback: plan root is a stored file");
  }
  return RecordRec(plan, *stats.root(), store, fb);
}

}  // namespace prairie::exec

#include "exec/feedback.h"

#include "algebra/descriptor_store.h"

namespace prairie::exec {

using common::Status;

void CardinalityFeedback::Record(const std::string& fingerprint_key,
                                 double est_rows, uint64_t actual_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[fingerprint_key];
  e.est_rows = est_rows;
  e.actual_rows = actual_rows;
  ++e.observations;
}

std::optional<CardinalityFeedback::Entry> CardinalityFeedback::Lookup(
    const std::string& fingerprint_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint_key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

size_t CardinalityFeedback::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<std::string, CardinalityFeedback::Entry>>
CardinalityFeedback::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

namespace {

Status RecordRec(const algebra::Expr& plan, const OpStats& stats,
                 algebra::DescriptorStore* store, CardinalityFeedback* fb) {
  std::string key;
  plan.Fingerprint(store, &key);
  fb->Record(key, stats.est_rows, stats.rows);
  size_t next_stats_child = 0;
  for (size_t i = 0; i < plan.num_children(); ++i) {
    if (plan.child(i).is_file()) continue;
    if (next_stats_child >= stats.children.size() ||
        stats.children[next_stats_child]->child_index !=
            static_cast<int>(i)) {
      return Status::Internal(
          "cardinality feedback: stats tree does not match the plan under "
          "algorithm '" +
          stats.alg + "'");
    }
    Status s = RecordRec(plan.child(i), *stats.children[next_stats_child],
                         store, fb);
    if (!s.ok()) return s;
    ++next_stats_child;
  }
  if (next_stats_child != stats.children.size()) {
    return Status::Internal(
        "cardinality feedback: stats tree has extra children under "
        "algorithm '" +
        stats.alg + "'");
  }
  return Status::OK();
}

}  // namespace

Status RecordPlanFeedback(const algebra::Expr& plan, const ExecStats& stats,
                          algebra::DescriptorStore* store,
                          CardinalityFeedback* fb) {
  if (stats.root() == nullptr) {
    return Status::OK();  // Nothing collected (stats disabled or no run).
  }
  if (plan.is_file()) {
    return Status::Internal(
        "cardinality feedback: plan root is a stored file");
  }
  return RecordRec(plan, *stats.root(), store, fb);
}

}  // namespace prairie::exec

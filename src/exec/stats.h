// Per-operator runtime statistics for the iterator model (executor
// observability).
//
// The stats layer is attached at plan-build time: ExecutorRegistry::Build
// accepts an optional ExecStats collector and wraps every factory-built
// iterator in an InstrumentedIterator, so every registered algorithm is
// covered without touching any operator's inner loop. Each wrapper owns an
// OpStats node in a tree mirroring the access plan's algorithm nodes
// (stored-file leaves have no runtime behavior and get no node).
//
// Cost model (mirrors common/trace.h and common/metrics.h):
//   * Compile-time: PRAIRIE_EXEC_STATS (defaults to PRAIRIE_TRACING).
//     With it off, Build ignores the collector and returns the plain tree.
//   * Runtime: passing a null ExecStats* builds the plain tree.
//   * Enabled: Open/Close are timed exactly (they run once per operator);
//     Next is counted on every call but *timed* only one call in
//     kNextSamplePeriod — the same sampling discipline as
//     VolcanoMetrics::kLatencySamplePeriod, at a coarser 1-in-64 period —
//     so the per-row overhead is a counter increment, not two clock reads.
//
// Timestamps use the TraceNowNs() steady-clock domain, so EmitTrace()
// merges execution spans into the same Chrome/Perfetto timeline as the
// optimizer's search trace.
//
// ExecStats is single-threaded like TraceSink: one collector per executing
// thread. The aggregate surfaces (ExecMetrics counters/histograms in a
// MetricsRegistry, CardinalityFeedback) are the thread-safe rendezvous for
// concurrent executors.

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "exec/iterator.h"

#ifndef PRAIRIE_EXEC_STATS
#define PRAIRIE_EXEC_STATS PRAIRIE_TRACING
#endif

namespace prairie::exec {

/// \brief Runtime counters for one algorithm node of an executed plan.
struct OpStats {
  std::string alg;      ///< Algorithm name (registry key).
  int op = -1;          ///< Algebra OpId (for trace naming).
  double est_rows = -1;  ///< Optimizer's cardinality estimate; <0 = unknown.
  int child_index = 0;  ///< Position among the parent's plan children.
  int depth = 0;        ///< Distance from the plan root.

  uint64_t rows = 0;        ///< Rows produced (Next() returning true).
  uint64_t next_calls = 0;  ///< Next() invocations, including the last miss.
  uint64_t open_ns = 0;     ///< Wall time inside Open() (cumulative).
  uint64_t close_ns = 0;    ///< Wall time inside Close() (cumulative).
  uint64_t sampled_next_ns = 0;     ///< Wall time of the sampled Next calls.
  uint64_t sampled_next_calls = 0;  ///< How many Next calls were sampled.
  uint64_t first_open_ns = 0;  ///< TraceNowNs() at first Open() entry.
  uint64_t last_close_ns = 0;  ///< TraceNowNs() at last Close() exit.

  /// Children in plan order (non-owning; the ExecStats arena owns nodes).
  std::vector<OpStats*> children;

  /// Inclusive wall time first Open() .. last Close() — children included,
  /// the EXPLAIN ANALYZE convention. 0 if the operator never ran.
  uint64_t ElapsedNs() const {
    return last_close_ns > first_open_ns ? last_close_ns - first_open_ns : 0;
  }

  /// Total Next() time extrapolated from the 1-in-N samples.
  uint64_t EstimatedNextNs() const {
    if (sampled_next_calls == 0) return 0;
    return sampled_next_ns * next_calls / sampled_next_calls;
  }

  /// The cardinality estimation error max(est/act, act/est), with both
  /// sides clamped to >= 1 row so empty results stay finite. Returns 0
  /// when no estimate is attached (est_rows < 0).
  double QError() const;
};

/// \brief Collector for one query execution: an arena of OpStats nodes
/// mirroring the plan's algorithm tree, plus renderers and exporters.
///
/// Not thread-safe; use one ExecStats per executing thread.
class ExecStats {
 public:
  /// `est_rows_property` names the descriptor property holding the
  /// optimizer's cardinality estimate (both shipped rule sets use
  /// "num_records"); nodes whose descriptor lacks it get est_rows = -1.
  explicit ExecStats(std::string est_rows_property = "num_records")
      : est_rows_property_(std::move(est_rows_property)) {}

  ExecStats(const ExecStats&) = delete;
  ExecStats& operator=(const ExecStats&) = delete;

  const std::string& est_rows_property() const { return est_rows_property_; }

  /// Creates a node for one algorithm; called by ExecutorRegistry::Build.
  /// `parent == nullptr` designates the root. Children are kept sorted by
  /// `child_index` regardless of factory build order.
  OpStats* NewNode(std::string alg, int op, double est_rows, OpStats* parent,
                   int child_index);

  /// The plan root's stats, or nullptr if nothing was built.
  const OpStats* root() const { return root_; }
  OpStats* mutable_root() { return root_; }

  size_t num_nodes() const { return nodes_.size(); }

  /// Sum of rows produced over all operators.
  uint64_t TotalRows() const;
  /// Sum of Next() calls over all operators.
  uint64_t TotalNextCalls() const;

  /// Human-readable annotated plan, one line per operator:
  ///   Merge_sort  est=120 act=118 q=1.02 elapsed_ns=10533 next=119
  std::string ToText() const;

  /// Deterministic JSON export (fixed key order, children nested in plan
  /// order). Timing fields vary run to run; structure does not.
  std::string ToJson() const;

  /// Replays the execution as trace events — a kExecQuery span over the
  /// whole run, a kExecOperator span per node (desc = OpId, cost = rows)
  /// and a kExecQError instant per estimated node (cost = Q-error) — so
  /// optimize and execute share one exported timeline. No-op on a null
  /// sink or when nothing ran.
  void EmitTrace(common::TraceSink* sink) const;

 private:
  std::string est_rows_property_;
  std::deque<OpStats> nodes_;  ///< Deque: stable pointers as nodes append.
  OpStats* root_ = nullptr;
};

/// \brief Decorator recording an OpStats node while delegating to the
/// wrapped iterator. Row contents are passed through untouched, so an
/// instrumented plan is result-identical to a plain one.
class InstrumentedIterator final : public Iterator {
 public:
  /// Time one Next() call in this many (power of two). Coarser than the
  /// optimizer's 1-in-16 VolcanoMetrics::kLatencySamplePeriod because the
  /// executor's Next() runs orders of magnitude more often than rule
  /// firings, and a steady-clock read costs tens of ns on VM hosts: at
  /// 1-in-64 the two reads amortize to well under the per-row budget of
  /// the bench_exec_observe overhead gate.
  static constexpr uint64_t kNextSamplePeriod = 64;

  InstrumentedIterator(IterPtr inner, OpStats* stats)
      : inner_(std::move(inner)), stats_(stats) {}

  common::Status Open() override;
  common::Result<bool> Next(Row* out) override;
  common::Status Close() override;
  const RowSchema& schema() const override { return inner_->schema(); }

 private:
  IterPtr inner_;
  OpStats* stats_;
};

/// \brief Bundle of executor series in a MetricsRegistry, mirroring
/// VolcanoMetrics: resolve once with ForRegistry, flush per query.
struct ExecMetrics {
  common::Counter* queries = nullptr;     ///< prairie_exec_queries_total
  common::Counter* operators = nullptr;   ///< prairie_exec_operators_total
  common::Counter* rows = nullptr;        ///< prairie_exec_rows_total
  common::Counter* next_calls = nullptr;  ///< prairie_exec_next_calls_total
  /// Whole-query wall latency (first open .. last close), nanoseconds.
  common::Histogram* query_latency_ns = nullptr;
  /// Per-operator Q-error, rounded to the nearest integer; the log-2
  /// buckets read directly as "within 2x", "within 4x", ...
  common::Histogram* qerror = nullptr;

  /// Registers/resolves the prairie_exec_* series in `registry`.
  static ExecMetrics ForRegistry(common::MetricsRegistry* registry);

  /// Adds one executed query's stats to the aggregate series. Thread-safe
  /// (counter/histogram writes are sharded atomics).
  void FlushExecStats(const ExecStats& stats) const;
};

}  // namespace prairie::exec

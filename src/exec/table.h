// In-memory storage: tables (class extents / base relations), secondary
// indexes, set-valued attributes, and the database that holds them.

#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/tuple.h"

namespace prairie::exec {

/// \brief An in-memory stored file. Row `i` has OID `i`; object-model
/// reference attributes store the OID of a row in the target table.
class Table {
 public:
  Table() = default;
  Table(std::string name, RowSchema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const RowSchema& schema() const { return schema_; }

  common::Status Append(Row row);

  size_t NumRows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Builds (or rebuilds) a secondary index on `attr_name`; the index maps
  /// attribute values to row positions in value order.
  common::Status BuildIndex(const std::string& attr_name);
  bool HasIndex(const std::string& attr_name) const;

  /// Row positions whose `attr_name` equals `key` (via the index).
  common::Result<std::vector<size_t>> IndexLookup(
      const std::string& attr_name, const Datum& key) const;

  /// All row positions in index (value) order.
  common::Result<std::vector<size_t>> IndexOrder(
      const std::string& attr_name) const;

  /// Attaches the set of values of a set-valued attribute for the last
  /// appended row.
  common::Status SetSetValues(const std::string& attr_name, size_t row,
                              std::vector<Datum> values);
  const std::vector<Datum>* GetSetValues(const std::string& attr_name,
                                         size_t row) const;

 private:
  struct DatumLess {
    bool operator()(const Datum& a, const Datum& b) const {
      return CompareDatum(a, b) < 0;
    }
  };
  using Index = std::multimap<Datum, size_t, DatumLess>;

  std::string name_;
  RowSchema schema_;
  std::vector<Row> rows_;
  std::unordered_map<std::string, Index> indexes_;
  /// attr -> row -> element list (sparse; only set-valued attrs appear).
  std::unordered_map<std::string, std::unordered_map<size_t, std::vector<Datum>>>
      set_values_;
};

/// \brief Named collection of tables.
class Database {
 public:
  common::Status AddTable(Table table);
  const Table* Find(const std::string& name) const;
  common::Result<const Table*> Require(const std::string& name) const;
  Table* FindMutable(const std::string& name);
  size_t size() const { return tables_.size(); }

 private:
  std::unordered_map<std::string, Table> tables_;
};

}  // namespace prairie::exec

// Physical iterator implementations: scans, filters, projections, joins,
// sorts, and the object-model operators (dereference / unnest).

#pragma once

#include <map>
#include <optional>

#include "exec/iterator.h"
#include "exec/table.h"

namespace prairie::exec {

/// Full scan of a stored table in storage order.
IterPtr MakeTableScan(const Table* table);

/// Index-ordered scan of `table` on `attr_name`. With `key`, only rows
/// whose attribute equals the key are produced. `residual` (nullable) is
/// applied afterwards. The index must exist.
IterPtr MakeIndexScan(const Table* table, std::string attr_name,
                      std::optional<Datum> key,
                      algebra::PredicateRef residual);

/// Selection: rows of `input` satisfying `pred`.
IterPtr MakeFilter(IterPtr input, algebra::PredicateRef pred);

/// Projection onto `keep` (attributes must exist in the input schema).
IterPtr MakeProject(IterPtr input, algebra::AttrList keep);

/// Tuple-at-a-time nested loops join: the inner input is materialized and
/// rescanned per outer row; `pred` is the join predicate.
IterPtr MakeNestedLoopsJoin(IterPtr outer, IterPtr inner,
                            algebra::PredicateRef pred);

/// Hash join: builds on the inner input using the equi-conjuncts of
/// `pred`; the non-equi residual is applied after matching. Falls back to
/// a cross-product + filter when no equi-conjunct spans both inputs.
IterPtr MakeHashJoin(IterPtr outer, IterPtr inner, algebra::PredicateRef pred);

/// Merge join on the first equi-conjunct of `pred`; both inputs must be
/// sorted ascending on their key. The remaining conjuncts are applied as a
/// residual. Fails at Open() when `pred` has no equi-conjunct.
IterPtr MakeMergeJoin(IterPtr outer, IterPtr inner,
                      algebra::PredicateRef pred);

/// Full sort: materializes and stable-sorts by `spec`.
IterPtr MakeSort(IterPtr input, algebra::SortSpec spec);

/// Pointer-chasing materialize (the OODB MAT operator): for each input
/// row, reads OID from `ref_attr` and appends the referenced row of
/// `target` (rows with dangling OIDs are dropped).
IterPtr MakeDeref(IterPtr input, algebra::Attr ref_attr, const Table* target);

/// Unnest of a set-valued attribute, fused with the scan of its class:
/// emits one row per set element with `set_attr`'s column holding the
/// element.
IterPtr MakeUnnestScan(const Table* table, std::string set_attr,
                       algebra::PredicateRef residual);

/// Generic unnest over any input stream: uses the class's "oid" column in
/// the input to fetch the row's set values from `table`, emitting one
/// output row per element (rows with empty sets are dropped).
IterPtr MakeFlatten(IterPtr input, algebra::Attr set_attr,
                    const Table* table);

}  // namespace prairie::exec

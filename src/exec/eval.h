// Predicate evaluation over rows.

#pragma once

#include "exec/tuple.h"

namespace prairie::exec {

/// Evaluates `pred` over one row with the given schema. A null predicate
/// is TRUE. Attribute references must resolve in the schema.
common::Result<bool> EvalPredicate(const algebra::PredicateRef& pred,
                                   const Row& row, const RowSchema& schema);

/// Evaluates a comparison between two resolved scalars.
common::Result<bool> EvalCompare(algebra::CmpOp op, const Datum& left,
                                 const Datum& right);

}  // namespace prairie::exec

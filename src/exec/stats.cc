#include "exec/stats.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace prairie::exec {

using common::Status;
using common::TraceEvent;
using common::TraceEventKind;

double OpStats::QError() const {
  if (est_rows < 0) return 0;
  const double est = std::max(est_rows, 1.0);
  const double act = std::max(static_cast<double>(rows), 1.0);
  return std::max(est / act, act / est);
}

OpStats* ExecStats::NewNode(std::string alg, int op, double est_rows,
                            OpStats* parent, int child_index) {
  nodes_.emplace_back();
  OpStats* node = &nodes_.back();
  node->alg = std::move(alg);
  node->op = op;
  node->est_rows = est_rows;
  node->child_index = child_index;
  if (parent == nullptr) {
    root_ = node;
    node->depth = 0;
  } else {
    node->depth = parent->depth + 1;
    // Factories may build children in any order; keep plan order.
    auto pos = std::upper_bound(
        parent->children.begin(), parent->children.end(), child_index,
        [](int idx, const OpStats* c) { return idx < c->child_index; });
    parent->children.insert(pos, node);
  }
  return node;
}

uint64_t ExecStats::TotalRows() const {
  uint64_t total = 0;
  for (const OpStats& n : nodes_) total += n.rows;
  return total;
}

uint64_t ExecStats::TotalNextCalls() const {
  uint64_t total = 0;
  for (const OpStats& n : nodes_) total += n.next_calls;
  return total;
}

namespace {

void AppendTextRec(const OpStats& n, std::string* out) {
  out->append(static_cast<size_t>(n.depth) * 2, ' ');
  *out += n.alg;
  if (n.est_rows >= 0) {
    *out += common::StringPrintf("  est=%s", common::FormatDouble(n.est_rows).c_str());
  } else {
    *out += "  est=?";
  }
  *out += common::StringPrintf("  act=%llu",
                               static_cast<unsigned long long>(n.rows));
  if (n.est_rows >= 0) {
    *out += common::StringPrintf("  q=%.2f", n.QError());
  }
  *out += common::StringPrintf(
      "  elapsed_ns=%llu  next=%llu\n",
      static_cast<unsigned long long>(n.ElapsedNs()),
      static_cast<unsigned long long>(n.next_calls));
  for (const OpStats* c : n.children) AppendTextRec(*c, out);
}

void AppendJsonRec(const OpStats& n, std::string* out) {
  *out += "{\"alg\":\"" + common::JsonEscape(n.alg) + "\"";
  *out += common::StringPrintf(",\"op\":%d", n.op);
  if (n.est_rows >= 0) {
    *out += ",\"est_rows\":" + common::FormatDouble(n.est_rows);
    *out += common::StringPrintf(",\"qerror\":%.6g", n.QError());
  } else {
    *out += ",\"est_rows\":null,\"qerror\":null";
  }
  *out += common::StringPrintf(
      ",\"rows\":%llu,\"next_calls\":%llu,\"elapsed_ns\":%llu"
      ",\"open_ns\":%llu,\"next_ns_est\":%llu,\"close_ns\":%llu",
      static_cast<unsigned long long>(n.rows),
      static_cast<unsigned long long>(n.next_calls),
      static_cast<unsigned long long>(n.ElapsedNs()),
      static_cast<unsigned long long>(n.open_ns),
      static_cast<unsigned long long>(n.EstimatedNextNs()),
      static_cast<unsigned long long>(n.close_ns));
  *out += ",\"children\":[";
  const char* sep = "";
  for (const OpStats* c : n.children) {
    *out += sep;
    sep = ",";
    AppendJsonRec(*c, out);
  }
  *out += "]}";
}

void EmitTraceRec(const OpStats& n, uint32_t tid, common::TraceSink* sink) {
  TraceEvent span;
  span.kind = TraceEventKind::kExecOperator;
  span.desc = n.op;
  span.depth = n.depth;
  span.tid = tid;
  span.cost = static_cast<double>(n.rows);
  span.ts_ns = n.first_open_ns;
  span.dur_ns = n.ElapsedNs();
  sink->Emit(span);
  if (n.est_rows >= 0) {
    TraceEvent q;
    q.kind = TraceEventKind::kExecQError;
    q.desc = n.op;
    q.depth = n.depth;
    q.tid = tid;
    q.cost = n.QError();
    q.ts_ns = n.last_close_ns;
    sink->Emit(q);
  }
  for (const OpStats* c : n.children) EmitTraceRec(*c, tid, sink);
}

void ObserveQErrors(const OpStats& n, common::Histogram* h) {
  if (n.est_rows >= 0) {
    h->Observe(static_cast<uint64_t>(std::llround(n.QError())));
  }
  for (const OpStats* c : n.children) ObserveQErrors(*c, h);
}

}  // namespace

std::string ExecStats::ToText() const {
  if (root_ == nullptr) return "(no execution stats collected)\n";
  std::string out;
  AppendTextRec(*root_, &out);
  return out;
}

std::string ExecStats::ToJson() const {
  std::string out = "{\"total_rows\":";
  out += common::StringPrintf("%llu",
                              static_cast<unsigned long long>(TotalRows()));
  out += common::StringPrintf(
      ",\"total_next_calls\":%llu",
      static_cast<unsigned long long>(TotalNextCalls()));
  out += ",\"plan\":";
  if (root_ == nullptr) {
    out += "null";
  } else {
    AppendJsonRec(*root_, &out);
  }
  out += "}";
  return out;
}

void ExecStats::EmitTrace(common::TraceSink* sink) const {
  if (sink == nullptr || root_ == nullptr) return;
  if (root_->first_open_ns == 0 && root_->last_close_ns == 0) return;
  const uint32_t tid = common::TraceThreadId();
  TraceEvent query;
  query.kind = TraceEventKind::kExecQuery;
  query.desc = root_->op;
  query.tid = tid;
  query.cost = static_cast<double>(root_->rows);
  query.ts_ns = root_->first_open_ns;
  query.dur_ns = root_->ElapsedNs();
  sink->Emit(query);
  EmitTraceRec(*root_, tid, sink);
}

common::Status InstrumentedIterator::Open() {
  const uint64_t t0 = common::TraceNowNs();
  if (stats_->first_open_ns == 0) stats_->first_open_ns = t0;
  Status s = inner_->Open();
  stats_->open_ns += common::TraceNowNs() - t0;
  return s;
}

common::Result<bool> InstrumentedIterator::Next(Row* out) {
  ++stats_->next_calls;
  if ((stats_->next_calls & (kNextSamplePeriod - 1)) == 0) {
    const uint64_t t0 = common::TraceNowNs();
    common::Result<bool> r = inner_->Next(out);
    stats_->sampled_next_ns += common::TraceNowNs() - t0;
    ++stats_->sampled_next_calls;
    if (r.ok() && *r) ++stats_->rows;
    return r;
  }
  common::Result<bool> r = inner_->Next(out);
  if (r.ok() && *r) ++stats_->rows;
  return r;
}

common::Status InstrumentedIterator::Close() {
  const uint64_t t0 = common::TraceNowNs();
  Status s = inner_->Close();
  const uint64_t t1 = common::TraceNowNs();
  stats_->close_ns += t1 - t0;
  stats_->last_close_ns = t1;
  return s;
}

ExecMetrics ExecMetrics::ForRegistry(common::MetricsRegistry* registry) {
  ExecMetrics m;
  if (registry == nullptr) return m;
  m.queries = registry->GetCounter("prairie_exec_queries_total",
                                   "Queries executed to completion.");
  m.operators = registry->GetCounter(
      "prairie_exec_operators_total",
      "Operator instances run (algorithm nodes of executed plans).");
  m.rows = registry->GetCounter("prairie_exec_rows_total",
                                "Rows produced across all operators.");
  m.next_calls = registry->GetCounter(
      "prairie_exec_next_calls_total",
      "Iterator Next() invocations across all operators.");
  m.query_latency_ns = registry->GetHistogram(
      "prairie_exec_query_latency_ns",
      "Whole-query execution wall time (first open to last close), ns.");
  m.qerror = registry->GetHistogram(
      "prairie_exec_qerror",
      "Per-operator cardinality Q-error max(est/act, act/est), rounded; "
      "log-2 buckets read as within-2x, within-4x, ...");
  return m;
}

void ExecMetrics::FlushExecStats(const ExecStats& stats) const {
#if PRAIRIE_METRICS
  const OpStats* root = stats.root();
  if (root == nullptr) return;
  if (queries != nullptr) queries->Inc();
  if (operators != nullptr) operators->Inc(stats.num_nodes());
  if (rows != nullptr) rows->Inc(stats.TotalRows());
  if (next_calls != nullptr) next_calls->Inc(stats.TotalNextCalls());
  if (query_latency_ns != nullptr) query_latency_ns->Observe(root->ElapsedNs());
  if (qerror != nullptr) ObserveQErrors(*root, qerror);
#else
  (void)stats;
#endif
}

}  // namespace prairie::exec

// Tuples and row schemas for the iterator-model execution engine.
//
// Field values are algebra::Scalar (the same scalar type predicates use),
// so predicate evaluation needs no conversions.

#pragma once

#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "algebra/value.h"
#include "common/result.h"

namespace prairie::exec {

using Datum = algebra::Scalar;

/// \brief Positional schema of a stream: qualified attribute names.
struct RowSchema {
  algebra::AttrList attrs;

  int Find(const algebra::Attr& attr) const {
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == attr) return static_cast<int>(i);
    }
    return -1;
  }

  common::Result<int> Require(const algebra::Attr& attr) const {
    int i = Find(attr);
    if (i < 0) {
      return common::Status::ExecError("attribute '" + attr.ToString() +
                                       "' not in stream schema");
    }
    return i;
  }

  size_t size() const { return attrs.size(); }

  /// Concatenation (for joins).
  static RowSchema Concat(const RowSchema& a, const RowSchema& b) {
    RowSchema out = a;
    out.attrs.insert(out.attrs.end(), b.attrs.begin(), b.attrs.end());
    return out;
  }

  std::string ToString() const;
};

using Row = std::vector<Datum>;

/// Total order over scalars: nulls first, then bools, ints/reals mixed
/// numerically, then strings. Returns <0, 0, >0.
int CompareDatum(const Datum& a, const Datum& b);

std::string RowToString(const Row& row);

}  // namespace prairie::exec

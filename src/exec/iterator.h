// The iterator (open/next/close) execution model — the Volcano execution
// paradigm the paper's access plans target.

#pragma once

#include <memory>
#include <vector>

#include "exec/tuple.h"

namespace prairie::exec {

/// \brief Demand-driven stream of rows.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual common::Status Open() = 0;
  /// Produces the next row into `out`; returns false when exhausted.
  virtual common::Result<bool> Next(Row* out) = 0;
  virtual common::Status Close() = 0;

  virtual const RowSchema& schema() const = 0;
};

using IterPtr = std::unique_ptr<Iterator>;

/// Opens, drains and closes `it`, returning all rows.
common::Result<std::vector<Row>> CollectAll(Iterator* it);

/// Canonical form for result comparison: rows sorted lexicographically.
std::vector<Row> Canonicalize(std::vector<Row> rows);

/// Multiset equality of two results (canonicalizes both).
bool SameResult(std::vector<Row> a, std::vector<Row> b);

}  // namespace prairie::exec

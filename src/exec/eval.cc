#include "exec/eval.h"

namespace prairie::exec {

using algebra::CmpOp;
using algebra::Predicate;
using algebra::PredicateRef;
using common::Result;
using common::Status;

Result<bool> EvalCompare(CmpOp op, const Datum& left, const Datum& right) {
  int c = CompareDatum(left, right);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return Status::Internal("unhandled comparison operator");
}

namespace {

Result<Datum> ResolveTerm(const algebra::Term& term, const Row& row,
                          const RowSchema& schema) {
  if (!term.is_attr()) return term.scalar;
  PRAIRIE_ASSIGN_OR_RETURN(int i, schema.Require(term.attr));
  return row[static_cast<size_t>(i)];
}

}  // namespace

Result<bool> EvalPredicate(const PredicateRef& pred, const Row& row,
                           const RowSchema& schema) {
  using Kind = Predicate::Kind;
  if (pred == nullptr) return true;
  switch (pred->kind()) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kCmp: {
      PRAIRIE_ASSIGN_OR_RETURN(Datum l,
                               ResolveTerm(pred->left(), row, schema));
      PRAIRIE_ASSIGN_OR_RETURN(Datum r,
                               ResolveTerm(pred->right(), row, schema));
      return EvalCompare(pred->cmp_op(), l, r);
    }
    case Kind::kAnd: {
      for (const PredicateRef& c : pred->children()) {
        PRAIRIE_ASSIGN_OR_RETURN(bool b, EvalPredicate(c, row, schema));
        if (!b) return false;
      }
      return true;
    }
    case Kind::kOr: {
      for (const PredicateRef& c : pred->children()) {
        PRAIRIE_ASSIGN_OR_RETURN(bool b, EvalPredicate(c, row, schema));
        if (b) return true;
      }
      return false;
    }
    case Kind::kNot: {
      PRAIRIE_ASSIGN_OR_RETURN(bool b,
                               EvalPredicate(pred->children()[0], row, schema));
      return !b;
    }
  }
  return Status::Internal("unhandled predicate kind");
}

}  // namespace prairie::exec

#include "exec/tuple.h"

#include "common/strings.h"

namespace prairie::exec {

std::string RowSchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attrs.size());
  for (const algebra::Attr& a : attrs) parts.push_back(a.ToString());
  return "(" + common::Join(parts, ", ") + ")";
}

namespace {

int TypeRank(const Datum& d) {
  switch (d.v.index()) {
    case 0:
      return 0;  // null
    case 1:
      return 1;  // bool
    case 2:
    case 3:
      return 2;  // numeric
    case 4:
      return 3;  // string
  }
  return 4;
}

double AsNumber(const Datum& d) {
  if (std::holds_alternative<int64_t>(d.v)) {
    return static_cast<double>(std::get<int64_t>(d.v));
  }
  return std::get<double>(d.v);
}

}  // namespace

int CompareDatum(const Datum& a, const Datum& b) {
  int ra = TypeRank(a);
  int rb = TypeRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1: {
      bool x = std::get<bool>(a.v);
      bool y = std::get<bool>(b.v);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case 2: {
      double x = AsNumber(a);
      double y = AsNumber(b);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case 3: {
      const std::string& x = std::get<std::string>(a.v);
      const std::string& y = std::get<std::string>(b.v);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
  }
  return 0;
}

std::string RowToString(const Row& row) {
  std::vector<std::string> parts;
  parts.reserve(row.size());
  for (const Datum& d : row) parts.push_back(d.ToString());
  return "[" + common::Join(parts, ", ") + "]";
}

}  // namespace prairie::exec

// Builds executable iterator trees from access plans.
//
// The mapping from algorithm names to iterators is optimizer-specific
// (each rule set defines its own algorithms and descriptor properties),
// so optimizers register factories here; the registry walks the plan.

#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "algebra/expr.h"
#include "exec/operators.h"
#include "exec/stats.h"

namespace prairie::exec {

class PlanBuilder;

/// Factory for one algorithm: builds the iterator for `node`, using the
/// builder to construct children and to reach the database.
using AlgFactory = std::function<common::Result<IterPtr>(
    const algebra::Expr& node, PlanBuilder& builder)>;

/// \brief Name-keyed registry of algorithm factories.
class ExecutorRegistry {
 public:
  common::Status Register(std::string alg_name, AlgFactory factory);

  /// Builds the iterator tree for an access plan.
  common::Result<IterPtr> Build(const algebra::Expr& plan,
                                const algebra::Algebra& algebra,
                                const Database& db) const;

  /// Like Build, but additionally attaches runtime instrumentation: every
  /// algorithm node gets an OpStats node in `stats` (est_rows read from
  /// the descriptor property stats->est_rows_property()) and its iterator
  /// is wrapped in an InstrumentedIterator. A null `stats` — or building
  /// with PRAIRIE_EXEC_STATS=0 — degrades to the plain Build.
  common::Result<IterPtr> Build(const algebra::Expr& plan,
                                const algebra::Algebra& algebra,
                                const Database& db, ExecStats* stats) const;

 private:
  friend class PlanBuilder;

  common::Result<IterPtr> BuildNode(const algebra::Expr& plan,
                                    const algebra::Algebra& algebra,
                                    const Database& db, ExecStats* stats,
                                    OpStats* parent, int child_index) const;

  std::unordered_map<std::string, AlgFactory> factories_;
};

/// \brief Context handed to factories while building one plan node.
class PlanBuilder {
 public:
  PlanBuilder(const ExecutorRegistry* registry, const algebra::Expr* node,
              const algebra::Algebra* algebra, const Database* db,
              ExecStats* stats = nullptr, OpStats* stats_node = nullptr)
      : registry_(registry),
        node_(node),
        algebra_(algebra),
        db_(db),
        stats_(stats),
        stats_node_(stats_node) {}

  const algebra::Expr& node() const { return *node_; }
  const algebra::Algebra& algebra() const { return *algebra_; }
  const Database& db() const { return *db_; }

  bool ChildIsFile(size_t i) const { return node_->child(i).is_file(); }

  /// Builds the iterator for child `i` (which must be an algorithm node).
  common::Result<IterPtr> BuildChild(size_t i) const;

  /// The stored table behind child `i` (which must be a file leaf).
  common::Result<const Table*> ChildTable(size_t i) const;

  /// Reads a property of this node's descriptor, failing if unset.
  common::Result<algebra::Value> Prop(const std::string& name) const;

 private:
  const ExecutorRegistry* registry_;
  const algebra::Expr* node_;
  const algebra::Algebra* algebra_;
  const Database* db_;
  ExecStats* stats_;      ///< Null when building uninstrumented.
  OpStats* stats_node_;   ///< This node's stats (parent of children's).
};

}  // namespace prairie::exec

#include "exec/operators.h"

#include <algorithm>

#include "exec/eval.h"

namespace prairie::exec {

using algebra::Attr;
using algebra::AttrList;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::SortSpec;
using common::Result;
using common::Status;

Result<std::vector<Row>> CollectAll(Iterator* it) {
  PRAIRIE_RETURN_NOT_OK(it->Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    PRAIRIE_ASSIGN_OR_RETURN(bool more, it->Next(&row));
    if (!more) break;
    out.push_back(row);
  }
  PRAIRIE_RETURN_NOT_OK(it->Close());
  return out;
}

namespace {

bool RowLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = CompareDatum(a[i], b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

}  // namespace

std::vector<Row> Canonicalize(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), RowLess);
  return rows;
}

bool SameResult(std::vector<Row> a, std::vector<Row> b) {
  return Canonicalize(std::move(a)) == Canonicalize(std::move(b));
}

namespace {

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

class TableScanIter : public Iterator {
 public:
  explicit TableScanIter(const Table* table) : table_(table) {}

  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (pos_ >= table_->NumRows()) return false;
    *out = table_->row(pos_++);
    return true;
  }
  Status Close() override { return Status::OK(); }
  const RowSchema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  size_t pos_ = 0;
};

class IndexScanIter : public Iterator {
 public:
  IndexScanIter(const Table* table, std::string attr, std::optional<Datum> key,
                PredicateRef residual)
      : table_(table),
        attr_(std::move(attr)),
        key_(std::move(key)),
        residual_(std::move(residual)) {}

  Status Open() override {
    pos_ = 0;
    if (key_.has_value()) {
      PRAIRIE_ASSIGN_OR_RETURN(order_, table_->IndexLookup(attr_, *key_));
    } else {
      PRAIRIE_ASSIGN_OR_RETURN(order_, table_->IndexOrder(attr_));
    }
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    while (pos_ < order_.size()) {
      const Row& r = table_->row(order_[pos_++]);
      PRAIRIE_ASSIGN_OR_RETURN(bool keep,
                               EvalPredicate(residual_, r, table_->schema()));
      if (keep) {
        *out = r;
        return true;
      }
    }
    return false;
  }
  Status Close() override { return Status::OK(); }
  const RowSchema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  std::string attr_;
  std::optional<Datum> key_;
  PredicateRef residual_;
  std::vector<size_t> order_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Filter / project
// ---------------------------------------------------------------------------

class FilterIter : public Iterator {
 public:
  FilterIter(IterPtr input, PredicateRef pred)
      : input_(std::move(input)), pred_(std::move(pred)) {}

  Status Open() override { return input_->Open(); }
  Result<bool> Next(Row* out) override {
    while (true) {
      PRAIRIE_ASSIGN_OR_RETURN(bool more, input_->Next(out));
      if (!more) return false;
      PRAIRIE_ASSIGN_OR_RETURN(bool keep,
                               EvalPredicate(pred_, *out, input_->schema()));
      if (keep) return true;
    }
  }
  Status Close() override { return input_->Close(); }
  const RowSchema& schema() const override { return input_->schema(); }

 private:
  IterPtr input_;
  PredicateRef pred_;
};

class ProjectIter : public Iterator {
 public:
  ProjectIter(IterPtr input, AttrList keep) : input_(std::move(input)) {
    schema_.attrs = std::move(keep);
  }

  Status Open() override {
    PRAIRIE_RETURN_NOT_OK(input_->Open());
    positions_.clear();
    for (const Attr& a : schema_.attrs) {
      PRAIRIE_ASSIGN_OR_RETURN(int i, input_->schema().Require(a));
      positions_.push_back(static_cast<size_t>(i));
    }
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    Row in;
    PRAIRIE_ASSIGN_OR_RETURN(bool more, input_->Next(&in));
    if (!more) return false;
    out->clear();
    out->reserve(positions_.size());
    for (size_t p : positions_) out->push_back(in[p]);
    return true;
  }
  Status Close() override { return input_->Close(); }
  const RowSchema& schema() const override { return schema_; }

 private:
  IterPtr input_;
  RowSchema schema_;
  std::vector<size_t> positions_;
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

Row ConcatRows(const Row& a, const Row& b) {
  Row out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Splits `pred` into equi-conjuncts spanning both sides (as attribute
/// position pairs) and a residual predicate.
Status SplitEquiJoin(const PredicateRef& pred, const RowSchema& left,
                     const RowSchema& right,
                     std::vector<std::pair<size_t, size_t>>* keys,
                     PredicateRef* residual) {
  std::vector<PredicateRef> rest;
  if (pred != nullptr) {
    for (const PredicateRef& c : pred->Conjuncts()) {
      if (c->IsEquiJoin()) {
        int ll = left.Find(c->left().attr);
        int rr = right.Find(c->right().attr);
        if (ll >= 0 && rr >= 0) {
          keys->emplace_back(static_cast<size_t>(ll),
                             static_cast<size_t>(rr));
          continue;
        }
        int lr = left.Find(c->right().attr);
        int rl = right.Find(c->left().attr);
        if (lr >= 0 && rl >= 0) {
          keys->emplace_back(static_cast<size_t>(lr),
                             static_cast<size_t>(rl));
          continue;
        }
      }
      rest.push_back(c);
    }
  }
  *residual = rest.empty() ? nullptr : Predicate::And(std::move(rest));
  return Status::OK();
}

class NestedLoopsJoinIter : public Iterator {
 public:
  NestedLoopsJoinIter(IterPtr outer, IterPtr inner, PredicateRef pred)
      : outer_(std::move(outer)),
        inner_(std::move(inner)),
        pred_(std::move(pred)),
        schema_(RowSchema::Concat(outer_->schema(), inner_->schema())) {}

  Status Open() override {
    PRAIRIE_RETURN_NOT_OK(outer_->Open());
    PRAIRIE_ASSIGN_OR_RETURN(inner_rows_, CollectAll(inner_.get()));
    have_outer_ = false;
    inner_pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    while (true) {
      if (!have_outer_) {
        PRAIRIE_ASSIGN_OR_RETURN(bool more, outer_->Next(&outer_row_));
        if (!more) return false;
        have_outer_ = true;
        inner_pos_ = 0;
      }
      while (inner_pos_ < inner_rows_.size()) {
        Row joined = ConcatRows(outer_row_, inner_rows_[inner_pos_++]);
        PRAIRIE_ASSIGN_OR_RETURN(bool keep,
                                 EvalPredicate(pred_, joined, schema_));
        if (keep) {
          *out = std::move(joined);
          return true;
        }
      }
      have_outer_ = false;
    }
  }
  Status Close() override { return outer_->Close(); }
  const RowSchema& schema() const override { return schema_; }

 private:
  IterPtr outer_, inner_;
  PredicateRef pred_;
  RowSchema schema_;
  std::vector<Row> inner_rows_;
  Row outer_row_;
  bool have_outer_ = false;
  size_t inner_pos_ = 0;
};

struct KeyLess {
  bool operator()(const std::vector<Datum>& a,
                  const std::vector<Datum>& b) const {
    return RowLess(a, b);
  }
};

class HashJoinIter : public Iterator {
 public:
  HashJoinIter(IterPtr outer, IterPtr inner, PredicateRef pred)
      : outer_(std::move(outer)),
        inner_(std::move(inner)),
        pred_(std::move(pred)),
        schema_(RowSchema::Concat(outer_->schema(), inner_->schema())) {}

  Status Open() override {
    keys_.clear();
    PRAIRIE_RETURN_NOT_OK(SplitEquiJoin(pred_, outer_->schema(),
                                        inner_->schema(), &keys_, &residual_));
    PRAIRIE_ASSIGN_OR_RETURN(inner_rows_, CollectAll(inner_.get()));
    build_.clear();
    for (size_t i = 0; i < inner_rows_.size(); ++i) {
      build_[InnerKey(inner_rows_[i])].push_back(i);
    }
    PRAIRIE_RETURN_NOT_OK(outer_->Open());
    matches_ = nullptr;
    match_pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (matches_ != nullptr) {
        while (match_pos_ < matches_->size()) {
          Row joined =
              ConcatRows(outer_row_, inner_rows_[(*matches_)[match_pos_++]]);
          PRAIRIE_ASSIGN_OR_RETURN(bool keep,
                                   EvalPredicate(residual_, joined, schema_));
          if (keep) {
            *out = std::move(joined);
            return true;
          }
        }
        matches_ = nullptr;
      }
      PRAIRIE_ASSIGN_OR_RETURN(bool more, outer_->Next(&outer_row_));
      if (!more) return false;
      auto it = build_.find(OuterKey(outer_row_));
      if (it != build_.end()) {
        matches_ = &it->second;
        match_pos_ = 0;
      }
    }
  }
  Status Close() override { return outer_->Close(); }
  const RowSchema& schema() const override { return schema_; }

 private:
  std::vector<Datum> OuterKey(const Row& r) const {
    std::vector<Datum> k;
    k.reserve(keys_.size());
    for (const auto& [l, rr] : keys_) k.push_back(r[l]);
    return k;
  }
  std::vector<Datum> InnerKey(const Row& r) const {
    std::vector<Datum> k;
    k.reserve(keys_.size());
    for (const auto& [l, rr] : keys_) k.push_back(r[rr]);
    return k;
  }

  IterPtr outer_, inner_;
  PredicateRef pred_, residual_;
  RowSchema schema_;
  std::vector<std::pair<size_t, size_t>> keys_;
  std::vector<Row> inner_rows_;
  std::map<std::vector<Datum>, std::vector<size_t>, KeyLess> build_;
  Row outer_row_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

class MergeJoinIter : public Iterator {
 public:
  MergeJoinIter(IterPtr outer, IterPtr inner, PredicateRef pred)
      : outer_(std::move(outer)),
        inner_(std::move(inner)),
        pred_(std::move(pred)),
        schema_(RowSchema::Concat(outer_->schema(), inner_->schema())) {}

  Status Open() override {
    std::vector<std::pair<size_t, size_t>> keys;
    PRAIRIE_RETURN_NOT_OK(SplitEquiJoin(pred_, outer_->schema(),
                                        inner_->schema(), &keys, &residual_));
    if (keys.empty()) {
      return Status::ExecError(
          "merge join requires an equi-join predicate");
    }
    lkey_ = keys[0].first;
    rkey_ = keys[0].second;
    // Further equi keys become residual comparisons.
    for (size_t i = 1; i < keys.size(); ++i) {
      residual_ = algebra::PredAnd(
          residual_,
          Predicate::EqAttrs(outer_->schema().attrs[keys[i].first],
                             inner_->schema().attrs[keys[i].second]));
    }
    PRAIRIE_ASSIGN_OR_RETURN(left_rows_, CollectAll(outer_.get()));
    PRAIRIE_ASSIGN_OR_RETURN(right_rows_, CollectAll(inner_.get()));
    li_ = ri_ = 0;
    group_.clear();
    gpos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      // Emit pending pairs for the current left row's group.
      while (gpos_ < group_.size()) {
        Row joined = ConcatRows(left_rows_[li_], right_rows_[group_[gpos_++]]);
        PRAIRIE_ASSIGN_OR_RETURN(bool keep,
                                 EvalPredicate(residual_, joined, schema_));
        if (keep) {
          *out = std::move(joined);
          return true;
        }
      }
      if (!group_.empty()) {
        // Advance to the next left row; keep the group if the key repeats.
        size_t prev = li_++;
        if (li_ < left_rows_.size() &&
            CompareDatum(left_rows_[li_][lkey_], left_rows_[prev][lkey_]) ==
                0) {
          gpos_ = 0;
          continue;
        }
        group_.clear();
        gpos_ = 0;
      }
      if (li_ >= left_rows_.size() || ri_ >= right_rows_.size()) return false;
      int c = CompareDatum(left_rows_[li_][lkey_], right_rows_[ri_][rkey_]);
      if (c < 0) {
        ++li_;
      } else if (c > 0) {
        ++ri_;
      } else {
        // Collect the right group with this key.
        group_.clear();
        size_t r = ri_;
        while (r < right_rows_.size() &&
               CompareDatum(right_rows_[r][rkey_],
                            right_rows_[ri_][rkey_]) == 0) {
          group_.push_back(r++);
        }
        ri_ = r;
        gpos_ = 0;
      }
    }
  }
  Status Close() override { return Status::OK(); }
  const RowSchema& schema() const override { return schema_; }

 private:
  IterPtr outer_, inner_;
  PredicateRef pred_, residual_;
  RowSchema schema_;
  size_t lkey_ = 0, rkey_ = 0;
  std::vector<Row> left_rows_, right_rows_;
  size_t li_ = 0, ri_ = 0;
  std::vector<size_t> group_;
  size_t gpos_ = 0;
};

// ---------------------------------------------------------------------------
// Sort
// ---------------------------------------------------------------------------

class SortIter : public Iterator {
 public:
  SortIter(IterPtr input, SortSpec spec)
      : input_(std::move(input)), spec_(std::move(spec)) {}

  Status Open() override {
    PRAIRIE_ASSIGN_OR_RETURN(rows_, CollectAll(input_.get()));
    std::vector<size_t> key_pos;
    std::vector<bool> asc;
    for (const SortSpec::Key& k : spec_.keys) {
      PRAIRIE_ASSIGN_OR_RETURN(int i, input_->schema().Require(k.attr));
      key_pos.push_back(static_cast<size_t>(i));
      asc.push_back(k.ascending);
    }
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t i = 0; i < key_pos.size(); ++i) {
                         int c = CompareDatum(a[key_pos[i]], b[key_pos[i]]);
                         if (c != 0) return asc[i] ? c < 0 : c > 0;
                       }
                       return false;
                     });
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }
  Status Close() override { return Status::OK(); }
  const RowSchema& schema() const override { return input_->schema(); }

 private:
  IterPtr input_;
  SortSpec spec_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Object-model operators
// ---------------------------------------------------------------------------

class DerefIter : public Iterator {
 public:
  DerefIter(IterPtr input, Attr ref_attr, const Table* target)
      : input_(std::move(input)),
        ref_attr_(std::move(ref_attr)),
        target_(target),
        schema_(RowSchema::Concat(input_->schema(), target->schema())) {}

  Status Open() override {
    PRAIRIE_RETURN_NOT_OK(input_->Open());
    PRAIRIE_ASSIGN_OR_RETURN(int i, input_->schema().Require(ref_attr_));
    ref_pos_ = static_cast<size_t>(i);
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    Row in;
    while (true) {
      PRAIRIE_ASSIGN_OR_RETURN(bool more, input_->Next(&in));
      if (!more) return false;
      const Datum& oid = in[ref_pos_];
      if (!std::holds_alternative<int64_t>(oid.v)) continue;
      int64_t id = std::get<int64_t>(oid.v);
      if (id < 0 || id >= static_cast<int64_t>(target_->NumRows())) continue;
      *out = ConcatRows(in, target_->row(static_cast<size_t>(id)));
      return true;
    }
  }
  Status Close() override { return input_->Close(); }
  const RowSchema& schema() const override { return schema_; }

 private:
  IterPtr input_;
  Attr ref_attr_;
  const Table* target_;
  RowSchema schema_;
  size_t ref_pos_ = 0;
};

class UnnestScanIter : public Iterator {
 public:
  UnnestScanIter(const Table* table, std::string set_attr,
                 PredicateRef residual)
      : table_(table),
        set_attr_(std::move(set_attr)),
        residual_(std::move(residual)) {}

  Status Open() override {
    PRAIRIE_ASSIGN_OR_RETURN(
        int i,
        table_->schema().Require(algebra::Attr{table_->name(), set_attr_}));
    attr_pos_ = static_cast<size_t>(i);
    row_ = 0;
    elem_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    while (row_ < table_->NumRows()) {
      const std::vector<Datum>* set = table_->GetSetValues(set_attr_, row_);
      size_t n = set == nullptr ? 0 : set->size();
      if (elem_ < n) {
        Row r = table_->row(row_);
        r[attr_pos_] = (*set)[elem_++];
        PRAIRIE_ASSIGN_OR_RETURN(bool keep,
                                 EvalPredicate(residual_, r, schema()));
        if (keep) {
          *out = std::move(r);
          return true;
        }
        continue;
      }
      ++row_;
      elem_ = 0;
    }
    return false;
  }
  Status Close() override { return Status::OK(); }
  const RowSchema& schema() const override { return table_->schema(); }

 private:
  const Table* table_;
  std::string set_attr_;
  PredicateRef residual_;
  size_t attr_pos_ = 0;
  size_t row_ = 0;
  size_t elem_ = 0;
};

class FlattenIter : public Iterator {
 public:
  FlattenIter(IterPtr input, Attr set_attr, const Table* table)
      : input_(std::move(input)),
        set_attr_(std::move(set_attr)),
        table_(table) {}

  Status Open() override {
    PRAIRIE_RETURN_NOT_OK(input_->Open());
    PRAIRIE_ASSIGN_OR_RETURN(
        int a, input_->schema().Require(set_attr_));
    attr_pos_ = static_cast<size_t>(a);
    PRAIRIE_ASSIGN_OR_RETURN(
        int o, input_->schema().Require(Attr{set_attr_.cls, "oid"}));
    oid_pos_ = static_cast<size_t>(o);
    set_ = nullptr;
    elem_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    while (true) {
      if (set_ != nullptr && elem_ < set_->size()) {
        Row r = current_;
        r[attr_pos_] = (*set_)[elem_++];
        *out = std::move(r);
        return true;
      }
      set_ = nullptr;
      PRAIRIE_ASSIGN_OR_RETURN(bool more, input_->Next(&current_));
      if (!more) return false;
      const Datum& oid = current_[oid_pos_];
      if (!std::holds_alternative<int64_t>(oid.v)) continue;
      int64_t id = std::get<int64_t>(oid.v);
      if (id < 0 || id >= static_cast<int64_t>(table_->NumRows())) continue;
      set_ = table_->GetSetValues(set_attr_.name, static_cast<size_t>(id));
      elem_ = 0;
    }
  }
  Status Close() override { return input_->Close(); }
  const RowSchema& schema() const override { return input_->schema(); }

 private:
  IterPtr input_;
  Attr set_attr_;
  const Table* table_;
  size_t attr_pos_ = 0;
  size_t oid_pos_ = 0;
  Row current_;
  const std::vector<Datum>* set_ = nullptr;
  size_t elem_ = 0;
};

}  // namespace

IterPtr MakeFlatten(IterPtr input, Attr set_attr, const Table* table) {
  return std::make_unique<FlattenIter>(std::move(input), std::move(set_attr),
                                       table);
}

IterPtr MakeTableScan(const Table* table) {
  return std::make_unique<TableScanIter>(table);
}

IterPtr MakeIndexScan(const Table* table, std::string attr_name,
                      std::optional<Datum> key, PredicateRef residual) {
  return std::make_unique<IndexScanIter>(table, std::move(attr_name),
                                         std::move(key), std::move(residual));
}

IterPtr MakeFilter(IterPtr input, PredicateRef pred) {
  return std::make_unique<FilterIter>(std::move(input), std::move(pred));
}

IterPtr MakeProject(IterPtr input, AttrList keep) {
  return std::make_unique<ProjectIter>(std::move(input), std::move(keep));
}

IterPtr MakeNestedLoopsJoin(IterPtr outer, IterPtr inner, PredicateRef pred) {
  return std::make_unique<NestedLoopsJoinIter>(std::move(outer),
                                               std::move(inner),
                                               std::move(pred));
}

IterPtr MakeHashJoin(IterPtr outer, IterPtr inner, PredicateRef pred) {
  return std::make_unique<HashJoinIter>(std::move(outer), std::move(inner),
                                        std::move(pred));
}

IterPtr MakeMergeJoin(IterPtr outer, IterPtr inner, PredicateRef pred) {
  return std::make_unique<MergeJoinIter>(std::move(outer), std::move(inner),
                                         std::move(pred));
}

IterPtr MakeSort(IterPtr input, SortSpec spec) {
  return std::make_unique<SortIter>(std::move(input), std::move(spec));
}

IterPtr MakeDeref(IterPtr input, Attr ref_attr, const Table* target) {
  return std::make_unique<DerefIter>(std::move(input), std::move(ref_attr),
                                     target);
}

IterPtr MakeUnnestScan(const Table* table, std::string set_attr,
                       PredicateRef residual) {
  return std::make_unique<UnnestScanIter>(table, std::move(set_attr),
                                          std::move(residual));
}

}  // namespace prairie::exec

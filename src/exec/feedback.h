// Cardinality feedback: (sub-plan fingerprint) -> observed row counts.
//
// The front door for the ROADMAP's "calibrated cost model, closed-loop
// with the executor" item: after an instrumented run, RecordPlanFeedback
// walks the executed access plan and its ExecStats tree in lockstep and
// records, for every algorithm sub-plan, the optimizer's estimate and the
// actual rows the operator produced — keyed by the sub-plan's
// Expr::Fingerprint serialization. The key is the full collision-free
// byte string (the PlanCache discipline: a hash collision may cost a
// lookup miss, never a wrong entry), so a future stat-refresh pass can
// trust what it reads back.
//
// CardinalityFeedback is mutex-protected: BatchOptimizer-style concurrent
// executors record into one shared store.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algebra/expr.h"
#include "common/result.h"
#include "exec/stats.h"

namespace prairie::exec {

/// \brief Thread-safe store of observed cardinalities per sub-plan.
class CardinalityFeedback {
 public:
  struct Entry {
    double est_rows = -1;      ///< Latest optimizer estimate (<0 = none).
    uint64_t actual_rows = 0;  ///< Latest observed row count.
    uint64_t observations = 0;  ///< How many runs recorded this sub-plan.
  };

  /// Records one observation; repeat keys overwrite est/actual and bump
  /// the observation count.
  void Record(const std::string& fingerprint_key, double est_rows,
              uint64_t actual_rows);

  /// The stored entry for a sub-plan key, if any.
  std::optional<Entry> Lookup(const std::string& fingerprint_key) const;

  size_t size() const;

  /// All entries ordered by key bytes (deterministic for export/tests).
  std::vector<std::pair<std::string, Entry>> Snapshot() const;

  /// JSON-lines export (one entry per line, key order): keys are raw
  /// fingerprint bytes, so they are rendered as lowercase hex; est_rows
  /// is omitted when unknown. Diagnostic bundles embed this file.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Walks the executed access plan `plan` and the collected `stats` in
/// lockstep (stored-file leaves have no stats node and are skipped) and
/// records every algorithm sub-plan's estimate and actual rows into `fb`,
/// fingerprinting through `store`. Fails if the trees disagree — a sign
/// the stats did not come from this plan's build.
common::Status RecordPlanFeedback(const algebra::Expr& plan,
                                  const ExecStats& stats,
                                  algebra::DescriptorStore* store,
                                  CardinalityFeedback* fb);

}  // namespace prairie::exec

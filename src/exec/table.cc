#include "exec/table.h"

namespace prairie::exec {

using common::Result;
using common::Status;

Status Table::Append(Row row) {
  if (row.size() != schema_.size()) {
    return Status::ExecError("row width does not match schema of table '" +
                             name_ + "'");
  }
  if (!indexes_.empty()) {
    return Status::ExecError(
        "cannot append to table '" + name_ +
        "' after indexes were built (build indexes last)");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::BuildIndex(const std::string& attr_name) {
  int pos = schema_.Find(algebra::Attr{name_, attr_name});
  if (pos < 0) {
    return Status::NotFound("table '" + name_ + "' has no attribute '" +
                            attr_name + "'");
  }
  Index idx;
  for (size_t i = 0; i < rows_.size(); ++i) {
    idx.emplace(rows_[i][static_cast<size_t>(pos)], i);
  }
  indexes_[attr_name] = std::move(idx);
  return Status::OK();
}

bool Table::HasIndex(const std::string& attr_name) const {
  return indexes_.count(attr_name) > 0;
}

Result<std::vector<size_t>> Table::IndexLookup(const std::string& attr_name,
                                               const Datum& key) const {
  auto it = indexes_.find(attr_name);
  if (it == indexes_.end()) {
    return Status::ExecError("table '" + name_ + "' has no index on '" +
                             attr_name + "'");
  }
  std::vector<size_t> out;
  auto [begin, end] = it->second.equal_range(key);
  for (auto i = begin; i != end; ++i) out.push_back(i->second);
  return out;
}

Result<std::vector<size_t>> Table::IndexOrder(
    const std::string& attr_name) const {
  auto it = indexes_.find(attr_name);
  if (it == indexes_.end()) {
    return Status::ExecError("table '" + name_ + "' has no index on '" +
                             attr_name + "'");
  }
  std::vector<size_t> out;
  out.reserve(rows_.size());
  for (const auto& [key, pos] : it->second) out.push_back(pos);
  return out;
}

Status Table::SetSetValues(const std::string& attr_name, size_t row,
                           std::vector<Datum> values) {
  if (row >= rows_.size()) {
    return Status::InvalidArgument("row out of range in SetSetValues");
  }
  set_values_[attr_name][row] = std::move(values);
  return Status::OK();
}

const std::vector<Datum>* Table::GetSetValues(const std::string& attr_name,
                                              size_t row) const {
  auto it = set_values_.find(attr_name);
  if (it == set_values_.end()) return nullptr;
  auto rit = it->second.find(row);
  return rit == it->second.end() ? nullptr : &rit->second;
}

Status Database::AddTable(Table table) {
  std::string name = table.name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_.emplace(std::move(name), std::move(table));
  return Status::OK();
}

const Table* Database::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Result<const Table*> Database::Require(const std::string& name) const {
  const Table* t = Find(name);
  if (t == nullptr) return Status::NotFound("no table '" + name + "'");
  return t;
}

Table* Database::FindMutable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace prairie::exec

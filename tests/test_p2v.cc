// Unit tests for the P2V pre-processor: property classification, enforcer
// detection, rule merging / alias substitution, and code synthesis.

#include <gtest/gtest.h>

#include "dsl/parser.h"
#include "p2v/translator.h"

namespace prairie::p2v {
namespace {

core::RuleSet MustParse(const std::string& src) {
  auto r = ::prairie::dsl::ParseRuleSet(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueUnsafe();
}

constexpr const char* kSpecHeader = R"(
property tuple_order : sortspec;
property num_records : real;
property pages : int;
property join_predicate : predicate;
property cost : cost;

operator JOIN(2);
operator SORT(1);
operator JOPR(2);
algorithm Nested_loops(2);
algorithm Merge_sort(1);
)";

std::string Spec(const std::string& body) {
  return std::string(kSpecHeader) + body;
}

constexpr const char* kBasicRules = R"(
trule commute: JOIN[D3](?1, ?2) => JOIN[D4](?2, ?1) {
  post { D4 = D3; }
}

trule sort_entry: JOIN[D3](?1, ?2) => JOPR[D4](SORT[D5](?1), ?2) {
  post { D4 = D3; D5 = D1; }
}

irule nl: JOPR[D3](?1, ?2) => Nested_loops[D5](?1:D4, ?2) {
  preopt { D5 = D3; D4 = D1; D4.tuple_order = D3.tuple_order; }
  postopt { D5.cost = D4.cost + D4.num_records * D2.cost; }
}

irule ms: SORT[D2](?1) => Merge_sort[D3](?1) {
  test D2.tuple_order != DONT_CARE;
  preopt { D3 = D2; }
  postopt { D3.cost = D1.cost + D3.num_records * log(D3.num_records); }
}

irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
  preopt { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
  postopt { D4.cost = D3.cost; }
}
)";

TEST(Classification, FollowsPaperRules) {
  auto rules = dsl::ParseRuleSet(Spec(kBasicRules));
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  auto classes = ClassifyProperties(*rules);
  const auto& schema = rules->algebra->properties();
  auto of = [&](const char* name) {
    return classes[static_cast<size_t>(*schema.Find(name))];
  };
  // tuple_order is assigned on a re-annotated input in nl's pre-opt.
  EXPECT_EQ(of("tuple_order"), PropertyClass::kPhysical);
  // cost carries the COST type.
  EXPECT_EQ(of("cost"), PropertyClass::kCost);
  // Numeric estimates become Volcano logical properties.
  EXPECT_EQ(of("num_records"), PropertyClass::kLogical);
  EXPECT_EQ(of("pages"), PropertyClass::kLogical);
  // Non-numeric remainder is an operator/algorithm argument.
  EXPECT_EQ(of("join_predicate"), PropertyClass::kArgument);
}

TEST(Translate, MergesSortEntryRuleAndAliasesJopr) {
  auto rules = MustParse(Spec(kBasicRules));
  TranslationReport report;
  auto volcano_rules = Translate(rules, &report);
  ASSERT_TRUE(volcano_rules.ok()) << volcano_rules.status().ToString();

  // sort_entry: JOIN => JOPR(SORT(?1), ?2); deleting SORT leaves the
  // idempotent alias JOIN => JOPR, so the rule vanishes and JOPR is
  // substituted by JOIN everywhere (§3.3).
  EXPECT_EQ(report.output_trans_rules, 1);
  EXPECT_EQ(report.dropped_trules, std::vector<std::string>{"sort_entry"});
  ASSERT_EQ(report.aliases.size(), 1u);
  EXPECT_EQ(report.aliases[0].first, "JOPR");
  EXPECT_EQ(report.aliases[0].second, "JOIN");

  // The nl impl_rule now implements JOIN, not JOPR.
  ASSERT_EQ((*volcano_rules)->impl_rules.size(), 1u);
  EXPECT_EQ(rules.algebra->name((*volcano_rules)->impl_rules[0].op), "JOIN");

  // SORT disappears; Merge_sort becomes the enforcer for tuple_order.
  ASSERT_EQ((*volcano_rules)->enforcers.size(), 1u);
  const volcano::Enforcer& e = (*volcano_rules)->enforcers[0];
  EXPECT_EQ(rules.algebra->name(e.alg), "Merge_sort");
  EXPECT_EQ(e.prop, *rules.algebra->properties().Find("tuple_order"));
  EXPECT_EQ(report.enforcer_operators, std::vector<std::string>{"SORT"});
  EXPECT_EQ(report.enforcer_algorithms,
            std::vector<std::string>{"Merge_sort"});
}

TEST(Translate, ReportToStringIsInformative) {
  auto rules = MustParse(Spec(kBasicRules));
  TranslationReport report;
  ASSERT_TRUE(Translate(rules, &report).ok());
  std::string text = report.ToString();
  EXPECT_NE(text.find("2 T-rules"), std::string::npos);
  EXPECT_NE(text.find("alias merged: JOPR == JOIN"), std::string::npos);
  EXPECT_NE(text.find("physical properties: tuple_order"),
            std::string::npos);
}

TEST(Translate, RequiresExactlyOneCostProperty) {
  auto rules = dsl::ParseRuleSet(R"(
property num_records : real;
operator O(1);
algorithm A(1);
irule r: O[D2](?1) => A[D3](?1) {
  postopt { D3.num_records = 1; }
}
)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  auto v = Translate(*rules, nullptr);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("COST"), std::string::npos);
}

TEST(Translate, KeptRuleReferencingEnforcerOperatorIsRejected) {
  // A T-rule that mentions SORT but is NOT an idempotent introduction rule
  // cannot be translated (its action would reference a deleted node).
  auto rules = dsl::ParseRuleSet(Spec(R"(
trule bad: JOIN[D3](SORT[D4](?1), ?2) => JOIN[D5](?1, ?2) {
  test D4.tuple_order != DONT_CARE;
  post { D5 = D3; }
}
irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
  preopt { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
  postopt { D4.cost = D3.cost; }
}
)"));
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  auto v = Translate(*rules, nullptr);
  EXPECT_FALSE(v.ok());
}

TEST(Translate, EnforcerOperatorWithoutPropagationIsRejected) {
  // A Null rule that does not propagate any property leaves the enforced
  // property undeterminable.
  auto rules = dsl::ParseRuleSet(Spec(R"(
irule ms: SORT[D2](?1) => Merge_sort[D3](?1) {
  preopt { D3 = D2; }
  postopt { D3.cost = D1.cost; }
}
irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
  preopt { D4 = D2; D3 = D1; }
  postopt { D4.cost = D3.cost; }
}
)"));
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  auto v = Translate(*rules, nullptr);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("propagates none"), std::string::npos);
}

TEST(Translate, PureIdempotentRuleIsDropped) {
  // JOIN => JOIN over the same streams is dropped without an alias.
  auto rules = dsl::ParseRuleSet(Spec(R"(
trule noop: JOIN[D3](?1, ?2) => JOIN[D4](?1, ?2) {
  post { D4 = D3; }
}
irule nl: JOIN[D3](?1, ?2) => Nested_loops[D5](?1:D4, ?2) {
  preopt { D5 = D3; D4 = D1; D4.tuple_order = D3.tuple_order; }
  postopt { D5.cost = D4.cost + D4.num_records * D2.cost; }
}
)"));
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  TranslationReport report;
  ASSERT_TRUE(Translate(*rules, &report).ok());
  EXPECT_EQ(report.output_trans_rules, 0);
  EXPECT_TRUE(report.aliases.empty());
  EXPECT_EQ(report.dropped_trules, std::vector<std::string>{"noop"});
}

TEST(Translate, RuleWithNonTrivialTestIsNotMerged) {
  // Even a flat JOIN => JOPR rule survives when its test is non-trivial:
  // dropping it would change semantics.
  auto rules = dsl::ParseRuleSet(Spec(R"(
trule guarded: JOIN[D3](?1, ?2) => JOPR[D4](?1, ?2) {
  test D1.num_records > 10;
  post { D4 = D3; }
}
irule nl: JOPR[D3](?1, ?2) => Nested_loops[D5](?1:D4, ?2) {
  preopt { D5 = D3; D4 = D1; D4.tuple_order = D3.tuple_order; }
  postopt { D5.cost = D4.cost + D4.num_records * D2.cost; }
}
)"));
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  TranslationReport report;
  ASSERT_TRUE(Translate(*rules, &report).ok());
  EXPECT_EQ(report.output_trans_rules, 1);
  EXPECT_TRUE(report.aliases.empty());
}

TEST(Translate, GeneratedConditionInterpretsPreTestAndTest) {
  // The generated trans_rule condition runs pre-test statements and then
  // the test over a BindingView.
  auto rules = MustParse(Spec(R"(
trule guarded: JOIN[D3](?1, ?2) => JOIN[D4](?2, ?1) {
  pre { D4.num_records = D3.num_records; }
  test D4.num_records > 100;
  post { D4 = D3; }
}
)"));
  auto v = *Translate(rules, nullptr);
  ASSERT_EQ(v->trans_rules.size(), 1u);
  const volcano::TransRule& tr = v->trans_rules[0];
  ASSERT_NE(tr.condition, nullptr);
  volcano::BindingView bv;
  bv.slots.assign(4, algebra::Descriptor(&rules.algebra->properties()));
  bv.algebra = rules.algebra.get();
  auto nr = *rules.algebra->properties().Find("num_records");
  bv.slots[2].SetUnchecked(nr, algebra::Value::Real(500));
  auto ok = tr.condition(bv);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(*ok);
  bv.slots[2].SetUnchecked(nr, algebra::Value::Real(50));
  EXPECT_FALSE(*tr.condition(bv));
}

TEST(Translate, InvalidInputRuleSetRejectedUpfront) {
  core::RuleSet broken;
  broken.algebra = nullptr;
  EXPECT_FALSE(Translate(broken, nullptr).ok());
}

}  // namespace
}  // namespace prairie::p2v

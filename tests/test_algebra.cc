// Unit tests for the algebra module: values, sort specs, predicates,
// property schemas, descriptors, the operation registry and expression
// trees.

#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "algebra/descriptor_store.h"
#include "algebra/expr.h"
#include "algebra/pattern.h"
#include "algebra/predicate.h"
#include "algebra/property.h"
#include "algebra/value.h"

namespace prairie::algebra {
namespace {

Attr A(const std::string& cls, const std::string& name) {
  return Attr{cls, name};
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(3).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Str("x").AsString(), "x");
  EXPECT_EQ(Value::Attrs({A("C", "a")}).AsAttrs().size(), 1u);
}

TEST(Value, ToRealCoercion) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).ToReal(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Real(4.5).ToReal(), 4.5);
  EXPECT_FALSE(Value::Str("x").ToReal().ok());
  EXPECT_FALSE(Value::Null().ToReal().ok());
}

TEST(Value, ToBoolSemantics) {
  EXPECT_FALSE(*Value::Null().ToBool());
  EXPECT_TRUE(*Value::Bool(true).ToBool());
  EXPECT_TRUE(*Value::Int(1).ToBool());
  EXPECT_FALSE(*Value::Int(0).ToBool());
  EXPECT_FALSE(Value::Attrs({}).ToBool().ok());
}

TEST(Value, EqualityAndHash) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Real(1.0));  // Different types.
  EXPECT_EQ(Value::Int(1).Hash(), Value::Int(1).Hash());
  Value p1 = Value::Pred(Predicate::EqAttrs(A("C", "a"), A("D", "b")));
  Value p2 = Value::Pred(Predicate::EqAttrs(A("C", "a"), A("D", "b")));
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1.Hash(), p2.Hash());
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Str("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value::Sort(SortSpec::DontCare()).ToString(), "DONT_CARE");
}

// ---------------------------------------------------------------------------
// Attribute lists
// ---------------------------------------------------------------------------

TEST(AttrList, UnionDedupsAndSorts) {
  AttrList u = UnionAttrs({A("C2", "x"), A("C1", "a")},
                          {A("C1", "a"), A("C1", "b")});
  ASSERT_EQ(u.size(), 3u);
  // Canonical (sorted) order regardless of input order.
  EXPECT_EQ(u[0], A("C1", "a"));
  EXPECT_EQ(u[1], A("C1", "b"));
  EXPECT_EQ(u[2], A("C2", "x"));
  AttrList v = UnionAttrs({A("C1", "b"), A("C1", "a")}, {A("C2", "x")});
  EXPECT_EQ(u, v);
}

TEST(AttrList, SubsetAndContains) {
  AttrList big{A("C", "a"), A("C", "b")};
  EXPECT_TRUE(IsSubset({A("C", "a")}, big));
  EXPECT_TRUE(IsSubset({}, big));
  EXPECT_FALSE(IsSubset({A("C", "z")}, big));
  EXPECT_TRUE(Contains(big, A("C", "b")));
}

// ---------------------------------------------------------------------------
// Sort specs
// ---------------------------------------------------------------------------

TEST(SortSpec, DontCareSatisfiedByAnything) {
  SortSpec any = SortSpec::DontCare();
  EXPECT_TRUE(SortSpec::On(A("C", "a")).Satisfies(any));
  EXPECT_TRUE(any.Satisfies(any));
}

TEST(SortSpec, PrefixSatisfaction) {
  SortSpec ab;
  ab.keys = {{A("C", "a"), true}, {A("C", "b"), true}};
  SortSpec a = SortSpec::On(A("C", "a"));
  EXPECT_TRUE(ab.Satisfies(a));     // (a,b)-sorted satisfies a-sorted.
  EXPECT_FALSE(a.Satisfies(ab));    // a-sorted does not satisfy (a,b).
  SortSpec a_desc = SortSpec::On(A("C", "a"), /*ascending=*/false);
  EXPECT_FALSE(a.Satisfies(a_desc));  // Direction matters.
}

TEST(SortSpec, DontCareIsNotSatisfiedByNothing) {
  SortSpec a = SortSpec::On(A("C", "a"));
  EXPECT_FALSE(SortSpec::DontCare().Satisfies(a));
}

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

TEST(Predicate, TrueFalseSingletons) {
  EXPECT_TRUE(Predicate::True()->is_true());
  EXPECT_TRUE(Predicate::False()->is_false());
  EXPECT_TRUE(Predicate::And({})->is_true());
}

TEST(Predicate, AndFlattensAndDropsTrue) {
  PredicateRef p1 = Predicate::EqConst(A("C", "a"), Scalar::Int(1));
  PredicateRef p2 = Predicate::EqConst(A("C", "b"), Scalar::Int(2));
  PredicateRef nested =
      Predicate::And({Predicate::And({p1, Predicate::True()}), p2});
  EXPECT_EQ(nested->Conjuncts().size(), 2u);
}

TEST(Predicate, AndIsOrderCanonical) {
  PredicateRef p1 = Predicate::EqConst(A("C", "a"), Scalar::Int(1));
  PredicateRef p2 = Predicate::EqAttrs(A("C", "b"), A("D", "c"));
  PredicateRef ab = Predicate::And({p1, p2});
  PredicateRef ba = Predicate::And({p2, p1});
  EXPECT_TRUE(ab->Equals(*ba));
  EXPECT_EQ(ab->Hash(), ba->Hash());
}

TEST(Predicate, ReferencedAttrsAndClasses) {
  PredicateRef p = Predicate::And(
      {Predicate::EqAttrs(A("C1", "a"), A("C2", "b")),
       Predicate::EqConst(A("C1", "c"), Scalar::Int(5))});
  AttrList attrs = p->ReferencedAttrs();
  EXPECT_EQ(attrs.size(), 3u);
  auto classes = p->ReferencedClasses();
  EXPECT_EQ(classes.size(), 2u);
}

TEST(Predicate, IsEquiJoin) {
  EXPECT_TRUE(Predicate::EqAttrs(A("C", "a"), A("D", "b"))->IsEquiJoin());
  EXPECT_FALSE(
      Predicate::EqConst(A("C", "a"), Scalar::Int(1))->IsEquiJoin());
  EXPECT_FALSE(Predicate::Cmp(CmpOp::kLt, Term::MakeAttr(A("C", "a")),
                              Term::MakeAttr(A("D", "b")))
                   ->IsEquiJoin());
}

TEST(Predicate, RefersOnlyTo) {
  PredicateRef p = Predicate::EqAttrs(A("C1", "a"), A("C2", "b"));
  EXPECT_TRUE(p->RefersOnlyTo({"C1", "C2"}));
  EXPECT_FALSE(p->RefersOnlyTo({"C1"}));
}

TEST(Predicate, NotAndOrStructure) {
  PredicateRef p = Predicate::Not(
      Predicate::Or({Predicate::True(), Predicate::False()}));
  EXPECT_EQ(p->kind(), Predicate::Kind::kNot);
  EXPECT_EQ(p->ToString(), "NOT ((TRUE) OR (FALSE))");
}

TEST(Predicate, NullRefsTreatedAsTrue) {
  EXPECT_TRUE(PredEquals(nullptr, Predicate::True()));
  EXPECT_TRUE(PredAnd(nullptr, nullptr)->is_true());
  PredicateRef p = Predicate::EqConst(A("C", "a"), Scalar::Int(1));
  EXPECT_TRUE(PredAnd(p, nullptr)->Equals(*p));
}

// ---------------------------------------------------------------------------
// Property schema / descriptors
// ---------------------------------------------------------------------------

TEST(PropertySchema, AddAndLookup) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("cost", ValueType::kReal, /*is_cost=*/true).ok());
  ASSERT_TRUE(s.Add("order", ValueType::kSort).ok());
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(*s.Find("cost"), 0);
  EXPECT_EQ(*s.Find("order"), 1);
  EXPECT_FALSE(s.Find("nope").has_value());
  EXPECT_FALSE(s.Require("nope").ok());
  EXPECT_TRUE(s.decl(0).is_cost);
}

TEST(PropertySchema, RejectsDuplicates) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("x", ValueType::kInt).ok());
  EXPECT_EQ(s.Add("x", ValueType::kReal).code(),
            common::StatusCode::kAlreadyExists);
}

TEST(Descriptor, SetGetTyped) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("n", ValueType::kReal).ok());
  ASSERT_TRUE(s.Add("name", ValueType::kString).ok());
  Descriptor d(&s);
  ASSERT_TRUE(d.Set("n", Value::Real(4.0)).ok());
  EXPECT_DOUBLE_EQ(d.Get("n")->AsReal(), 4.0);
  // Type mismatch rejected.
  EXPECT_FALSE(d.Set("name", Value::Int(1)).ok());
  // Int widens into a real-typed property.
  ASSERT_TRUE(d.Set("n", Value::Int(7)).ok());
  EXPECT_DOUBLE_EQ(d.Get("n")->AsReal(), 7.0);
  // Null always accepted (unsets).
  ASSERT_TRUE(d.Set("name", Value::Null()).ok());
}

TEST(Descriptor, EqualityAndHash) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("n", ValueType::kInt).ok());
  Descriptor a(&s), b(&s);
  EXPECT_EQ(a, b);
  ASSERT_TRUE(a.Set("n", Value::Int(1)).ok());
  EXPECT_NE(a, b);
  ASSERT_TRUE(b.Set("n", Value::Int(1)).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(Descriptor, ToStringSkipsUnset) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  ASSERT_TRUE(s.Add("b", ValueType::kInt).ok());
  Descriptor d(&s);
  ASSERT_TRUE(d.Set("b", Value::Int(2)).ok());
  EXPECT_EQ(d.ToString(), "{b: 2}");
}

TEST(PropertySlice, ProjectAndEquality) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  ASSERT_TRUE(s.Add("b", ValueType::kInt).ok());
  Descriptor d1(&s), d2(&s);
  ASSERT_TRUE(d1.Set("a", Value::Int(1)).ok());
  ASSERT_TRUE(d1.Set("b", Value::Int(2)).ok());
  ASSERT_TRUE(d2.Set("a", Value::Int(1)).ok());
  ASSERT_TRUE(d2.Set("b", Value::Int(99)).ok());
  PropertySlice only_a{{0}};
  EXPECT_TRUE(only_a.EqualOn(d1, d2));
  EXPECT_EQ(only_a.HashOf(d1), only_a.HashOf(d2));
  Descriptor proj = only_a.Project(d1);
  EXPECT_EQ(proj.Get(0).AsInt(), 1);
  EXPECT_TRUE(proj.Get(1).is_null());
}

// ---------------------------------------------------------------------------
// Descriptor store (hash-consing)
// ---------------------------------------------------------------------------

TEST(DescriptorStore, IdEqualityIsValueEquality) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  ASSERT_TRUE(s.Add("name", ValueType::kString).ok());
  DescriptorStore store(&s);
  Descriptor d1(&s), d2(&s), d3(&s);
  ASSERT_TRUE(d1.Set("a", Value::Int(1)).ok());
  ASSERT_TRUE(d2.Set("a", Value::Int(1)).ok());
  ASSERT_TRUE(d3.Set("a", Value::Int(2)).ok());
  DescriptorId i1 = store.Intern(d1);
  DescriptorId i2 = store.Intern(d2);
  DescriptorId i3 = store.Intern(d3);
  EXPECT_EQ(i1, i2);
  EXPECT_NE(i1, i3);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(i1), d1);
  EXPECT_EQ(store.Get(i3), d3);
}

TEST(DescriptorStore, CachedHashMatchesDescriptorHash) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  DescriptorStore store(&s);
  Descriptor d(&s);
  ASSERT_TRUE(d.Set("a", Value::Int(7)).ok());
  DescriptorId id = store.Intern(d);
  EXPECT_EQ(store.HashOf(id), d.Hash());
}

TEST(DescriptorStore, HitCountersTrackLookups) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  DescriptorStore store(&s);
  Descriptor d(&s);
  ASSERT_TRUE(d.Set("a", Value::Int(1)).ok());
  (void)store.Intern(d);  // Miss.
  (void)store.Intern(d);  // Hit.
  (void)store.Intern(d);  // Hit.
  EXPECT_EQ(store.lookups(), 3u);
  EXPECT_EQ(store.hits(), 2u);
  EXPECT_NEAR(store.HitRate(), 2.0 / 3.0, 1e-12);
}

TEST(DescriptorStore, ReferencesStayStableAcrossGrowth) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  DescriptorStore store(&s);
  Descriptor first(&s);
  ASSERT_TRUE(first.Set("a", Value::Int(-1)).ok());
  DescriptorId id0 = store.Intern(first);
  const Descriptor* p0 = &store.Get(id0);
  for (int i = 0; i < 2000; ++i) {
    Descriptor d(&s);
    ASSERT_TRUE(d.Set("a", Value::Int(i)).ok());
    (void)store.Intern(std::move(d));
  }
  EXPECT_EQ(p0, &store.Get(id0));
  EXPECT_EQ(store.Get(id0).Get(0).AsInt(), -1);
}

TEST(DescriptorStore, ProjectedInterningDedupesOnSlice) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  ASSERT_TRUE(s.Add("b", ValueType::kInt).ok());
  DescriptorStore store(&s);
  SliceId slice = store.RegisterSlice(PropertySlice{{0}});
  Descriptor d1(&s), d2(&s);
  ASSERT_TRUE(d1.Set("a", Value::Int(1)).ok());
  ASSERT_TRUE(d1.Set("b", Value::Int(2)).ok());
  ASSERT_TRUE(d2.Set("a", Value::Int(1)).ok());
  ASSERT_TRUE(d2.Set("b", Value::Int(99)).ok());
  // Identical on the slice: one interned projection.
  DescriptorId p1 = store.InternProjected(slice, d1);
  DescriptorId p2 = store.InternProjected(slice, d2);
  EXPECT_EQ(p1, p2);
  // The interned projection carries only the sliced annotation.
  EXPECT_EQ(store.Get(p1).Get(0).AsInt(), 1);
  EXPECT_TRUE(store.Get(p1).Get(1).is_null());
  // Differing on the slice: a distinct id.
  Descriptor d3(&s);
  ASSERT_TRUE(d3.Set("a", Value::Int(5)).ok());
  EXPECT_NE(store.InternProjected(slice, d3), p1);
}

TEST(DescriptorStore, ProjectedAndFullInterningShareOneIdSpace) {
  // The id<->value invariant is store-global: interning a projection and
  // then interning an equal descriptor through the full path (or vice
  // versa) must yield the same id.
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  ASSERT_TRUE(s.Add("b", ValueType::kInt).ok());
  DescriptorStore store(&s);
  SliceId slice = store.RegisterSlice(PropertySlice{{0}});
  Descriptor full(&s);
  ASSERT_TRUE(full.Set("a", Value::Int(3)).ok());
  ASSERT_TRUE(full.Set("b", Value::Int(4)).ok());
  DescriptorId projected = store.InternProjected(slice, full);
  Descriptor only_a(&s);
  ASSERT_TRUE(only_a.Set("a", Value::Int(3)).ok());
  EXPECT_EQ(store.Intern(only_a), projected);
}

TEST(DescriptorStore, ProjectMemoizesByInternedId) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  ASSERT_TRUE(s.Add("b", ValueType::kInt).ok());
  DescriptorStore store(&s);
  SliceId slice = store.RegisterSlice(PropertySlice{{0}});
  Descriptor d(&s);
  ASSERT_TRUE(d.Set("a", Value::Int(1)).ok());
  ASSERT_TRUE(d.Set("b", Value::Int(2)).ok());
  DescriptorId full = store.Intern(d);
  DescriptorId p1 = store.Project(slice, full);
  uint64_t lookups_before = store.lookups();
  uint64_t hits_before = store.hits();
  DescriptorId p2 = store.Project(slice, full);
  EXPECT_EQ(p1, p2);
  // The second Project is a memo hit, counted as such.
  EXPECT_EQ(store.lookups(), lookups_before + 1);
  EXPECT_EQ(store.hits(), hits_before + 1);
}

TEST(DescriptorBuilder, BuildsAndFreezes) {
  PropertySchema s;
  ASSERT_TRUE(s.Add("a", ValueType::kInt).ok());
  ASSERT_TRUE(s.Add("name", ValueType::kString).ok());
  DescriptorStore store(&s);
  DescriptorBuilder b(&s);
  b.Set(0, Value::Int(1));
  ASSERT_TRUE(b.SetNamed("name", Value::Str("x")).ok());
  EXPECT_FALSE(b.SetNamed("name", Value::Int(9)).ok());  // Type-checked.
  Descriptor built = std::move(b).Build();
  EXPECT_EQ(built.Get(0).AsInt(), 1);
  EXPECT_EQ(built.Get(1).AsString(), "x");
  // Start a builder from an existing value, tweak, freeze.
  DescriptorBuilder b2(built);
  DescriptorId id = std::move(b2.Set(0, Value::Int(2))).Freeze(&store);
  EXPECT_EQ(store.Get(id).Get(0).AsInt(), 2);
  EXPECT_EQ(store.Get(id).Get(1).AsString(), "x");
  // Freezing an equal rebuild hits the same id.
  DescriptorBuilder b3(&s);
  b3.Set(0, Value::Int(2));
  ASSERT_TRUE(b3.SetNamed("name", Value::Str("x")).ok());
  EXPECT_EQ(std::move(b3).Freeze(&store), id);
}

TEST(Value, StringsAreInterned) {
  // Equal string values share one pooled representation; equality is a
  // pointer comparison fast path but still holds for distinct pools.
  Value a = Value::Str("shared-string-payload");
  Value b = Value::Str("shared-string-payload");
  EXPECT_EQ(a, b);
  EXPECT_EQ(&a.AsString(), &b.AsString());
  EXPECT_NE(a, Value::Str("other"));
}

// ---------------------------------------------------------------------------
// Algebra registry
// ---------------------------------------------------------------------------

TEST(AlgebraRegistry, NullPreRegistered) {
  Algebra a;
  EXPECT_EQ(a.name(a.null_alg()), "Null");
  EXPECT_TRUE(a.is_algorithm(a.null_alg()));
  EXPECT_EQ(a.arity(a.null_alg()), 1);
}

TEST(AlgebraRegistry, RegisterAndLookup) {
  Algebra a;
  auto join = a.RegisterOperator("JOIN", 2);
  ASSERT_TRUE(join.ok());
  auto nl = a.RegisterAlgorithm("Nested_loops", 2);
  ASSERT_TRUE(nl.ok());
  EXPECT_FALSE(a.is_algorithm(*join));
  EXPECT_TRUE(a.is_algorithm(*nl));
  EXPECT_EQ(*a.Find("JOIN"), *join);
  EXPECT_FALSE(a.Require("MISSING").ok());
  EXPECT_EQ(a.Operators().size(), 1u);
  EXPECT_EQ(a.Algorithms().size(), 2u);  // Null + Nested_loops.
}

TEST(AlgebraRegistry, RejectsDuplicatesAndBadArity) {
  Algebra a;
  ASSERT_TRUE(a.RegisterOperator("X", 1).ok());
  EXPECT_FALSE(a.RegisterAlgorithm("X", 1).ok());
  EXPECT_FALSE(a.RegisterOperator("Y", -1).ok());
  EXPECT_FALSE(a.RegisterOperator("Z", 9).ok());
}

// ---------------------------------------------------------------------------
// Expression trees
// ---------------------------------------------------------------------------

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.Add("n", ValueType::kInt).ok());
    join_ = *algebra_.RegisterOperator("JOIN", 2);
    ret_ = *algebra_.RegisterOperator("RET", 1);
    nl_ = *algebra_.RegisterAlgorithm("Nested_loops", 2);
    fs_ = *algebra_.RegisterAlgorithm("File_scan", 1);
  }

  ExprPtr File(const std::string& name) {
    return Expr::MakeFile(name, Descriptor(&schema_));
  }
  ExprPtr Node(OpId op, std::vector<ExprPtr> kids) {
    return Expr::MakeOp(op, std::move(kids), Descriptor(&schema_));
  }

  Algebra algebra_;
  PropertySchema schema_;
  OpId join_, ret_, nl_, fs_;
};

TEST_F(ExprTest, BuildAndPrint) {
  std::vector<ExprPtr> l1, l2, kids;
  l1.push_back(File("R1"));
  l2.push_back(File("R2"));
  kids.push_back(Node(ret_, std::move(l1)));
  kids.push_back(Node(ret_, std::move(l2)));
  ExprPtr tree = Node(join_, std::move(kids));
  EXPECT_EQ(tree->ToString(algebra_), "JOIN(RET(R1), RET(R2))");
  EXPECT_EQ(tree->NodeCount(), 5);
  EXPECT_TRUE(tree->IsLogical(algebra_));
  EXPECT_FALSE(tree->IsAccessPlan(algebra_));
}

TEST_F(ExprTest, AccessPlanDetection) {
  std::vector<ExprPtr> kids;
  kids.push_back(File("R1"));
  kids.push_back(File("R2"));
  ExprPtr plan = Node(nl_, std::move(kids));
  EXPECT_TRUE(plan->IsAccessPlan(algebra_));
  EXPECT_FALSE(plan->IsLogical(algebra_));
}

TEST_F(ExprTest, CloneEqualsAndHash) {
  std::vector<ExprPtr> kids;
  kids.push_back(File("R1"));
  ExprPtr a = Node(ret_, std::move(kids));
  ExprPtr b = a->Clone();
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_EQ(a->Hash(), b->Hash());
  b->mutable_descriptor()->SetUnchecked(0, Value::Int(9));
  EXPECT_FALSE(a->Equals(*b));
}

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

TEST_F(ExprTest, PatternProperties) {
  PatNodePtr pat = PatNode::Op(
      join_, 4,
      [&] {
        std::vector<PatNodePtr> kids;
        kids.push_back(PatNode::Op(join_, 3, [&] {
          std::vector<PatNodePtr> inner;
          inner.push_back(PatNode::Stream(1, 0));
          inner.push_back(PatNode::Stream(2, 1));
          return inner;
        }()));
        kids.push_back(PatNode::Stream(3, 2));
        return kids;
      }());
  EXPECT_EQ(pat->NodeCount(), 5);
  EXPECT_EQ(pat->MaxStreamVar(), 3);
  EXPECT_EQ(pat->MaxDescSlot(), 4);
  EXPECT_EQ(pat->ToString(algebra_),
            "JOIN[D5](JOIN[D4](?1:D1, ?2:D2), ?3:D3)");
  PatNodePtr clone = pat->Clone();
  EXPECT_TRUE(pat->Same(*clone));
  clone->desc_slot = 6;
  EXPECT_FALSE(pat->Same(*clone));
}

}  // namespace
}  // namespace prairie::algebra

// Property-based sweeps (parameterized gtest) over randomized workloads:
//
//  P1. Correctness: the optimized access plan's result equals a naive
//      direct evaluation of the logical tree, for every expression
//      template, join count and seed in the sweep.
//  P2. Equivalence: the P2V-generated optimizer and the hand-coded
//      Volcano optimizer find plans of identical cost.
//  P3. Pruning soundness: branch-and-bound pruning never changes the
//      winning cost.
//  P4. Requirements: when a sort order is required, the executed result
//      actually arrives in that order.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "exec/builder.h"
#include "optimizers/executors.h"
#include "optimizers/oodb.h"
#include "optimizers/props.h"
#include "optimizers/reference.h"
#include "optimizers/relational.h"
#include "optimizers/volcano_hand.h"
#include "p2v/translator.h"
#include "volcano/engine.h"
#include "workload/workload.h"

namespace prairie {
namespace {

using workload::ExprKind;
using workload::QuerySpec;

#define ASSERT_OK(expr)                                \
  do {                                                 \
    ::prairie::common::Status _st = (expr);            \
    ASSERT_TRUE(_st.ok()) << _st.ToString();           \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)             \
  auto PRAIRIE_CONCAT(_res_, __LINE__) = (rexpr);    \
  ASSERT_TRUE(PRAIRIE_CONCAT(_res_, __LINE__).ok())  \
      << PRAIRIE_CONCAT(_res_, __LINE__).status().ToString(); \
  lhs = std::move(PRAIRIE_CONCAT(_res_, __LINE__)).ValueUnsafe();

/// Shared fixtures (built once; rule sets are immutable during search).
const std::shared_ptr<volcano::RuleSet>& OodbGenerated() {
  static auto rules = [] {
    auto prairie_rules = opt::BuildOodbPrairie();
    EXPECT_TRUE(prairie_rules.ok()) << prairie_rules.status().ToString();
    auto v = p2v::Translate(*prairie_rules, nullptr);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }();
  return rules;
}

const std::shared_ptr<volcano::RuleSet>& OodbHand() {
  static auto rules = [] {
    auto v = opt::BuildOodbVolcano();
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }();
  return rules;
}

const exec::ExecutorRegistry& Executors() {
  static exec::ExecutorRegistry* reg = [] {
    auto* r = new exec::ExecutorRegistry();
    EXPECT_TRUE(opt::RegisterStandardExecutors(r).ok());
    return r;
  }();
  return *reg;
}

/// Reorders result columns into sorted-attribute order so results from
/// plans with different column layouts compare positionally.
std::vector<exec::Row> CanonicalColumns(const std::vector<exec::Row>& rows,
                                        const exec::RowSchema& schema) {
  std::vector<size_t> order(schema.attrs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return schema.attrs[a] < schema.attrs[b];
  });
  std::vector<exec::Row> out;
  out.reserve(rows.size());
  for (const exec::Row& row : rows) {
    exec::Row r;
    r.reserve(order.size());
    for (size_t i : order) r.push_back(row[i]);
    out.push_back(std::move(r));
  }
  return out;
}

using SweepParam = std::tuple<int /*expr*/, int /*joins*/, int /*seed*/>;

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  return "E" + std::to_string(std::get<0>(info.param)) + "_N" +
         std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}

QuerySpec SpecFor(const SweepParam& p, bool with_indexes, bool small) {
  QuerySpec spec;
  spec.expr = static_cast<ExprKind>(std::get<0>(p));
  spec.num_joins = std::get<1>(p);
  spec.seed = static_cast<uint64_t>(std::get<2>(p));
  spec.with_indexes = with_indexes;
  if (small) {
    spec.min_card = 5;
    spec.max_card = 25;
  }
  return spec;
}

// ---------------------------------------------------------------------------
// P1: optimized plans compute the same result as naive evaluation
// ---------------------------------------------------------------------------

class ResultCorrectness : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ResultCorrectness, OptimizedPlanMatchesNaiveEvaluation) {
  const auto& rules = OodbGenerated();
  for (bool with_indexes : {false, true}) {
    QuerySpec spec = SpecFor(GetParam(), with_indexes, /*small=*/true);
    ASSERT_OK_AND_ASSIGN(workload::Workload w,
                         workload::MakeWorkload(*rules->algebra, spec));
    ASSERT_OK_AND_ASSIGN(exec::Database db,
                         workload::MakeDatabase(w.catalog, spec.seed + 77));

    ASSERT_OK_AND_ASSIGN(opt::ReferenceResult expected,
                         opt::EvaluateLogical(*w.query, *rules->algebra, db));

    volcano::Optimizer optimizer(rules.get(), &w.catalog);
    ASSERT_OK_AND_ASSIGN(volcano::Plan plan, optimizer.Optimize(*w.query));
    algebra::ExprPtr plan_expr = plan.root->ToExpr(*rules->algebra);
    EXPECT_TRUE(plan_expr->IsAccessPlan(*rules->algebra));
    ASSERT_OK_AND_ASSIGN(exec::IterPtr it,
                         Executors().Build(*plan_expr, *rules->algebra, db));
    exec::RowSchema plan_schema = it->schema();
    ASSERT_OK_AND_ASSIGN(std::vector<exec::Row> actual,
                         exec::CollectAll(it.get()));

    EXPECT_TRUE(exec::SameResult(
        CanonicalColumns(actual, plan_schema),
        CanonicalColumns(expected.rows, expected.schema)))
        << "indexes=" << with_indexes << " plan "
        << plan_expr->ToString(*rules->algebra) << ": " << actual.size()
        << " rows vs " << expected.rows.size() << " expected";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResultCorrectness,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3)),
    SweepName);

// ---------------------------------------------------------------------------
// P2: generated and hand-coded optimizers agree on cost
// ---------------------------------------------------------------------------

class CostEquivalence : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CostEquivalence, GeneratedEqualsHandCoded) {
  for (bool with_indexes : {false, true}) {
    QuerySpec spec = SpecFor(GetParam(), with_indexes, /*small=*/false);
    ASSERT_OK_AND_ASSIGN(
        workload::Workload wg,
        workload::MakeWorkload(*OodbGenerated()->algebra, spec));
    ASSERT_OK_AND_ASSIGN(workload::Workload wh,
                         workload::MakeWorkload(*OodbHand()->algebra, spec));
    volcano::Optimizer og(OodbGenerated().get(), &wg.catalog);
    volcano::Optimizer oh(OodbHand().get(), &wh.catalog);
    ASSERT_OK_AND_ASSIGN(volcano::Plan pg, og.Optimize(*wg.query));
    ASSERT_OK_AND_ASSIGN(volcano::Plan ph, oh.Optimize(*wh.query));
    EXPECT_NEAR(pg.cost, ph.cost, 1e-6 * std::max(1.0, pg.cost))
        << "indexes=" << with_indexes << "\n generated "
        << pg.root->ToString(*OodbGenerated()->algebra) << "\n hand      "
        << ph.root->ToString(*OodbHand()->algebra);
    // Both search the same logical space.
    EXPECT_EQ(og.stats().groups, oh.stats().groups);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CostEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(4, 5)),
    SweepName);

// ---------------------------------------------------------------------------
// P3: pruning never changes the answer
// ---------------------------------------------------------------------------

class PruningSoundness : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PruningSoundness, PrunedCostEqualsExhaustiveCost) {
  const auto& rules = OodbHand();
  QuerySpec spec = SpecFor(GetParam(), /*with_indexes=*/true,
                           /*small=*/false);
  ASSERT_OK_AND_ASSIGN(workload::Workload w,
                       workload::MakeWorkload(*rules->algebra, spec));
  volcano::OptimizerOptions pruned;
  pruned.prune = true;
  volcano::OptimizerOptions full;
  full.prune = false;
  volcano::Optimizer op(rules.get(), &w.catalog, pruned);
  volcano::Optimizer of(rules.get(), &w.catalog, full);
  ASSERT_OK_AND_ASSIGN(volcano::Plan pp, op.Optimize(*w.query));
  ASSERT_OK_AND_ASSIGN(volcano::Plan pf, of.Optimize(*w.query->Clone()));
  EXPECT_NEAR(pp.cost, pf.cost, 1e-9 * std::max(1.0, pf.cost));
  EXPECT_LE(op.stats().plans_costed, of.stats().plans_costed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PruningSoundness,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(6)),
    SweepName);

// ---------------------------------------------------------------------------
// P4: required sort orders are really delivered
// ---------------------------------------------------------------------------

class OrderDelivery : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(OrderDelivery, ExecutedRowsArriveInRequiredOrder) {
  const auto& rules = OodbGenerated();
  QuerySpec spec;
  spec.expr = ExprKind::kE1;
  spec.num_joins = 2;
  spec.seed = static_cast<uint64_t>(GetParam());
  spec.min_card = 5;
  spec.max_card = 30;
  ASSERT_OK_AND_ASSIGN(workload::Workload w,
                       workload::MakeWorkload(*rules->algebra, spec));
  ASSERT_OK_AND_ASSIGN(exec::Database db,
                       workload::MakeDatabase(w.catalog, spec.seed));

  algebra::Attr key{"C1", "a"};
  algebra::Descriptor required(&rules->algebra->properties());
  ASSERT_OK(required.Set(opt::kTupleOrder,
                         algebra::Value::Sort(algebra::SortSpec::On(key))));

  volcano::Optimizer optimizer(rules.get(), &w.catalog);
  ASSERT_OK_AND_ASSIGN(volcano::Plan plan,
                       optimizer.Optimize(*w.query, required));
  algebra::ExprPtr plan_expr = plan.root->ToExpr(*rules->algebra);
  ASSERT_OK_AND_ASSIGN(exec::IterPtr it,
                       Executors().Build(*plan_expr, *rules->algebra, db));
  ASSERT_OK_AND_ASSIGN(int key_pos, it->schema().Require(key));
  ASSERT_OK_AND_ASSIGN(std::vector<exec::Row> rows,
                       exec::CollectAll(it.get()));
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(exec::CompareDatum(rows[i - 1][static_cast<size_t>(key_pos)],
                                 rows[i][static_cast<size_t>(key_pos)]),
              0)
        << "row " << i << " out of order in plan "
        << plan_expr->ToString(*rules->algebra);
  }
  // A sorted-order requirement must also not change the result contents.
  volcano::Optimizer unordered(rules.get(), &w.catalog);
  ASSERT_OK_AND_ASSIGN(volcano::Plan base, unordered.Optimize(*w.query));
  algebra::ExprPtr base_expr = base.root->ToExpr(*rules->algebra);
  ASSERT_OK_AND_ASSIGN(exec::IterPtr base_it,
                       Executors().Build(*base_expr, *rules->algebra, db));
  exec::RowSchema base_schema = base_it->schema();
  ASSERT_OK_AND_ASSIGN(std::vector<exec::Row> base_rows,
                       exec::CollectAll(base_it.get()));
  EXPECT_TRUE(exec::SameResult(CanonicalColumns(rows, it->schema()),
                               CanonicalColumns(base_rows, base_schema)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrderDelivery, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Relational optimizer sweeps (interesting orders via Merge_join)
// ---------------------------------------------------------------------------

class RelationalSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RelationalSweep, GeneratedEqualsHandCodedOnE1) {
  static auto generated = [] {
    auto pr = opt::BuildRelationalPrairie();
    EXPECT_TRUE(pr.ok());
    auto v = p2v::Translate(*pr, nullptr);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return *v;
  }();
  static auto hand = [] {
    auto v = opt::BuildRelationalVolcano();
    EXPECT_TRUE(v.ok());
    return *v;
  }();
  QuerySpec spec = SpecFor(GetParam(), /*with_indexes=*/true,
                           /*small=*/false);
  spec.expr = ExprKind::kE1;  // The relational algebra has no SELECT/MAT.
  ASSERT_OK_AND_ASSIGN(workload::Workload wg,
                       workload::MakeWorkload(*generated->algebra, spec));
  ASSERT_OK_AND_ASSIGN(workload::Workload wh,
                       workload::MakeWorkload(*hand->algebra, spec));
  volcano::Optimizer og(generated.get(), &wg.catalog);
  volcano::Optimizer oh(hand.get(), &wh.catalog);
  ASSERT_OK_AND_ASSIGN(volcano::Plan pg, og.Optimize(*wg.query));
  ASSERT_OK_AND_ASSIGN(volcano::Plan ph, oh.Optimize(*wh.query));
  EXPECT_NEAR(pg.cost, ph.cost, 1e-6 * std::max(1.0, pg.cost));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RelationalSweep,
    ::testing::Combine(::testing::Values(1), ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(7, 8, 9)),
    SweepName);

}  // namespace
}  // namespace prairie

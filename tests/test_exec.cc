// Unit tests for the execution engine: tables, predicate evaluation, and
// every physical iterator.

#include <gtest/gtest.h>

#include "algebra/descriptor_store.h"
#include "common/trace.h"
#include "exec/builder.h"
#include "exec/eval.h"
#include "exec/feedback.h"
#include "exec/operators.h"
#include "exec/stats.h"

namespace prairie::exec {
namespace {

using algebra::Attr;
using algebra::CmpOp;
using algebra::Predicate;
using algebra::PredicateRef;
using algebra::Scalar;
using algebra::SortSpec;
using algebra::Term;

Attr A(const std::string& cls, const std::string& name) {
  return Attr{cls, name};
}

Table MakeEmp() {
  RowSchema schema;
  schema.attrs = {A("Emp", "oid"), A("Emp", "dept"), A("Emp", "salary")};
  Table t("Emp", schema);
  // oid, dept, salary
  EXPECT_TRUE(t.Append({Datum::Int(0), Datum::Int(10), Datum::Int(100)}).ok());
  EXPECT_TRUE(t.Append({Datum::Int(1), Datum::Int(20), Datum::Int(200)}).ok());
  EXPECT_TRUE(t.Append({Datum::Int(2), Datum::Int(10), Datum::Int(300)}).ok());
  EXPECT_TRUE(t.Append({Datum::Int(3), Datum::Int(30), Datum::Int(150)}).ok());
  return t;
}

Table MakeDept() {
  RowSchema schema;
  schema.attrs = {A("Dept", "oid"), A("Dept", "id"), A("Dept", "name")};
  Table t("Dept", schema);
  EXPECT_TRUE(
      t.Append({Datum::Int(0), Datum::Int(10), Datum::Str("eng")}).ok());
  EXPECT_TRUE(
      t.Append({Datum::Int(1), Datum::Int(20), Datum::Str("hr")}).ok());
  EXPECT_TRUE(
      t.Append({Datum::Int(2), Datum::Int(40), Datum::Str("ops")}).ok());
  return t;
}

std::vector<Row> Drain(IterPtr it) {
  auto rows = CollectAll(it.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Row>{};
}

// ---------------------------------------------------------------------------
// Datum / predicate evaluation
// ---------------------------------------------------------------------------

TEST(Datum, TotalOrder) {
  EXPECT_LT(CompareDatum(Datum::Null(), Datum::Int(0)), 0);
  EXPECT_EQ(CompareDatum(Datum::Int(2), Datum::Real(2.0)), 0);
  EXPECT_GT(CompareDatum(Datum::Str("b"), Datum::Str("a")), 0);
  EXPECT_LT(CompareDatum(Datum::Int(5), Datum::Str("a")), 0);  // Type rank.
}

TEST(EvalPredicate, ComparisonsAndConnectives) {
  RowSchema schema;
  schema.attrs = {A("T", "x"), A("T", "y")};
  Row row{Datum::Int(5), Datum::Int(7)};
  auto eval = [&](const PredicateRef& p) {
    auto r = EvalPredicate(p, row, schema);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  };
  EXPECT_TRUE(eval(Predicate::EqConst(A("T", "x"), Scalar::Int(5))));
  EXPECT_FALSE(eval(Predicate::EqConst(A("T", "x"), Scalar::Int(6))));
  EXPECT_TRUE(eval(Predicate::Cmp(CmpOp::kLt, Term::MakeAttr(A("T", "x")),
                                  Term::MakeAttr(A("T", "y")))));
  EXPECT_TRUE(eval(Predicate::And(
      {Predicate::EqConst(A("T", "x"), Scalar::Int(5)),
       Predicate::Cmp(CmpOp::kGe, Term::MakeAttr(A("T", "y")),
                      Term::MakeConst(Scalar::Int(7)))})));
  EXPECT_TRUE(eval(Predicate::Or({Predicate::False(),
                                  Predicate::EqConst(A("T", "y"),
                                                     Scalar::Int(7))})));
  EXPECT_TRUE(eval(Predicate::Not(Predicate::False())));
  EXPECT_TRUE(eval(nullptr));
}

TEST(EvalPredicate, UnknownAttributeFails) {
  RowSchema schema;
  schema.attrs = {A("T", "x")};
  Row row{Datum::Int(1)};
  auto r = EvalPredicate(Predicate::EqConst(A("T", "z"), Scalar::Int(1)),
                         row, schema);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, AppendChecksWidth) {
  Table t = MakeEmp();
  EXPECT_FALSE(t.Append({Datum::Int(9)}).ok());
}

TEST(Table, IndexLookupAndOrder) {
  Table t = MakeEmp();
  ASSERT_TRUE(t.BuildIndex("dept").ok());
  EXPECT_TRUE(t.HasIndex("dept"));
  auto rows = *t.IndexLookup("dept", Datum::Int(10));
  EXPECT_EQ(rows.size(), 2u);
  auto order = *t.IndexOrder("dept");
  ASSERT_EQ(order.size(), 4u);
  // Value order: 10,10,20,30 -> rows 0,2,1,3.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 3u);
  EXPECT_FALSE(t.IndexLookup("salary", Datum::Int(1)).ok());
}

TEST(Table, AppendAfterIndexRejected) {
  Table t = MakeEmp();
  ASSERT_TRUE(t.BuildIndex("dept").ok());
  EXPECT_FALSE(
      t.Append({Datum::Int(4), Datum::Int(1), Datum::Int(2)}).ok());
}

TEST(Database, AddAndRequire) {
  Database db;
  ASSERT_TRUE(db.AddTable(MakeEmp()).ok());
  EXPECT_FALSE(db.AddTable(MakeEmp()).ok());
  EXPECT_TRUE(db.Require("Emp").ok());
  EXPECT_FALSE(db.Require("Nope").ok());
}

// ---------------------------------------------------------------------------
// Iterators
// ---------------------------------------------------------------------------

TEST(Iterators, TableScanReturnsAllRows) {
  Table t = MakeEmp();
  EXPECT_EQ(Drain(MakeTableScan(&t)).size(), 4u);
}

TEST(Iterators, FilterSelects) {
  Table t = MakeEmp();
  auto rows = Drain(MakeFilter(
      MakeTableScan(&t), Predicate::EqConst(A("Emp", "dept"),
                                            Scalar::Int(10))));
  EXPECT_EQ(rows.size(), 2u);
}

TEST(Iterators, IndexScanEqualityAndOrder) {
  Table t = MakeEmp();
  ASSERT_TRUE(t.BuildIndex("dept").ok());
  auto eq = Drain(MakeIndexScan(&t, "dept", Datum::Int(10), nullptr));
  EXPECT_EQ(eq.size(), 2u);
  auto ordered = Drain(MakeIndexScan(&t, "dept", std::nullopt, nullptr));
  ASSERT_EQ(ordered.size(), 4u);
  for (size_t i = 1; i < ordered.size(); ++i) {
    EXPECT_LE(CompareDatum(ordered[i - 1][1], ordered[i][1]), 0);
  }
  // Residual applies after the lookup.
  auto filtered = Drain(MakeIndexScan(
      &t, "dept", Datum::Int(10),
      Predicate::Cmp(CmpOp::kGt, Term::MakeAttr(A("Emp", "salary")),
                     Term::MakeConst(Scalar::Int(150)))));
  EXPECT_EQ(filtered.size(), 1u);
}

TEST(Iterators, ProjectKeepsRequestedColumns) {
  Table t = MakeEmp();
  auto rows =
      Drain(MakeProject(MakeTableScan(&t), {A("Emp", "salary")}));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].size(), 1u);
  EXPECT_EQ(rows[0][0], Datum::Int(100));
}

TEST(Iterators, ProjectUnknownAttributeFailsAtOpen) {
  Table t = MakeEmp();
  IterPtr it = MakeProject(MakeTableScan(&t), {A("Emp", "nope")});
  EXPECT_FALSE(it->Open().ok());
}

PredicateRef DeptJoinPred() {
  return Predicate::EqAttrs(A("Emp", "dept"), A("Dept", "id"));
}

TEST(Iterators, JoinVariantsAgree) {
  Table emp = MakeEmp();
  Table dept = MakeDept();
  auto nl = Drain(MakeNestedLoopsJoin(MakeTableScan(&emp),
                                      MakeTableScan(&dept), DeptJoinPred()));
  auto hash = Drain(MakeHashJoin(MakeTableScan(&emp), MakeTableScan(&dept),
                                 DeptJoinPred()));
  // Merge join needs sorted inputs.
  auto merge = Drain(MakeMergeJoin(
      MakeSort(MakeTableScan(&emp), SortSpec::On(A("Emp", "dept"))),
      MakeSort(MakeTableScan(&dept), SortSpec::On(A("Dept", "id"))),
      DeptJoinPred()));
  // Emp dept 10 x2 match eng; dept 20 matches hr; dept 30 unmatched.
  EXPECT_EQ(nl.size(), 3u);
  EXPECT_TRUE(SameResult(nl, hash));
  EXPECT_TRUE(SameResult(nl, merge));
}

TEST(Iterators, MergeJoinDuplicateKeysOnBothSides) {
  RowSchema s1;
  s1.attrs = {A("L", "k")};
  Table l("L", s1);
  ASSERT_TRUE(l.Append({Datum::Int(1)}).ok());
  ASSERT_TRUE(l.Append({Datum::Int(1)}).ok());
  ASSERT_TRUE(l.Append({Datum::Int(2)}).ok());
  RowSchema s2;
  s2.attrs = {A("R", "k")};
  Table r("R", s2);
  ASSERT_TRUE(r.Append({Datum::Int(1)}).ok());
  ASSERT_TRUE(r.Append({Datum::Int(1)}).ok());
  ASSERT_TRUE(r.Append({Datum::Int(3)}).ok());
  auto pred = Predicate::EqAttrs(A("L", "k"), A("R", "k"));
  auto rows = Drain(MakeMergeJoin(MakeTableScan(&l), MakeTableScan(&r), pred));
  EXPECT_EQ(rows.size(), 4u);  // 2x2 matches on key 1.
  auto nl = Drain(
      MakeNestedLoopsJoin(MakeTableScan(&l), MakeTableScan(&r), pred));
  EXPECT_TRUE(SameResult(rows, nl));
}

TEST(Iterators, MergeJoinWithoutEquiKeyFails) {
  Table emp = MakeEmp();
  Table dept = MakeDept();
  IterPtr it = MakeMergeJoin(MakeTableScan(&emp), MakeTableScan(&dept),
                             Predicate::True());
  EXPECT_FALSE(it->Open().ok());
}

TEST(Iterators, HashJoinFallsBackToCrossProduct) {
  Table emp = MakeEmp();
  Table dept = MakeDept();
  auto rows = Drain(MakeHashJoin(MakeTableScan(&emp), MakeTableScan(&dept),
                                 Predicate::True()));
  EXPECT_EQ(rows.size(), 12u);  // 4 x 3 cross product.
}

TEST(Iterators, SortOrdersRows) {
  Table t = MakeEmp();
  auto rows =
      Drain(MakeSort(MakeTableScan(&t), SortSpec::On(A("Emp", "salary"))));
  ASSERT_EQ(rows.size(), 4u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(CompareDatum(rows[i - 1][2], rows[i][2]), 0);
  }
  SortSpec desc = SortSpec::On(A("Emp", "salary"), /*ascending=*/false);
  auto drows = Drain(MakeSort(MakeTableScan(&t), desc));
  EXPECT_EQ(drows[0][2], Datum::Int(300));
}

TEST(Iterators, DerefFollowsOids) {
  // Emp.dept doubles as an OID into a target table here.
  RowSchema s;
  s.attrs = {A("E", "oid"), A("E", "ref")};
  Table e("E", s);
  ASSERT_TRUE(e.Append({Datum::Int(0), Datum::Int(2)}).ok());
  ASSERT_TRUE(e.Append({Datum::Int(1), Datum::Int(0)}).ok());
  ASSERT_TRUE(e.Append({Datum::Int(2), Datum::Int(99)}).ok());  // Dangling.
  Table d = MakeDept();
  auto rows = Drain(MakeDeref(MakeTableScan(&e), A("E", "ref"), &d));
  ASSERT_EQ(rows.size(), 2u);  // Dangling ref dropped.
  EXPECT_EQ(rows[0].size(), 5u);  // E columns + Dept columns.
  EXPECT_EQ(rows[0][4], Datum::Str("ops"));  // ref 2 -> Dept row 2.
}

TEST(Iterators, FlattenExpandsSetValues) {
  RowSchema s;
  s.attrs = {A("C", "oid"), A("C", "tags")};
  Table c("C", s);
  ASSERT_TRUE(c.Append({Datum::Int(0), Datum::Null()}).ok());
  ASSERT_TRUE(c.Append({Datum::Int(1), Datum::Null()}).ok());
  ASSERT_TRUE(c.SetSetValues("tags", 0,
                             {Datum::Int(7), Datum::Int(8)}).ok());
  // Row 1 has no set values: it produces no output.
  auto rows = Drain(MakeFlatten(MakeTableScan(&c), A("C", "tags"), &c));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Datum::Int(7));
  EXPECT_EQ(rows[1][1], Datum::Int(8));
}

TEST(Iterators, UnnestScanAppliesResidual) {
  RowSchema s;
  s.attrs = {A("C", "oid"), A("C", "tags")};
  Table c("C", s);
  ASSERT_TRUE(c.Append({Datum::Int(0), Datum::Null()}).ok());
  ASSERT_TRUE(c.SetSetValues(
                   "tags", 0, {Datum::Int(1), Datum::Int(5), Datum::Int(9)})
                  .ok());
  auto rows = Drain(MakeUnnestScan(
      &c, "tags",
      Predicate::Cmp(CmpOp::kGt, Term::MakeAttr(A("C", "tags")),
                     Term::MakeConst(Scalar::Int(2)))));
  EXPECT_EQ(rows.size(), 2u);  // 5 and 9.
}

TEST(Canonicalize, SameResultIsMultisetEquality) {
  std::vector<Row> a{{Datum::Int(1)}, {Datum::Int(2)}, {Datum::Int(1)}};
  std::vector<Row> b{{Datum::Int(2)}, {Datum::Int(1)}, {Datum::Int(1)}};
  std::vector<Row> c{{Datum::Int(2)}, {Datum::Int(1)}};
  EXPECT_TRUE(SameResult(a, b));
  EXPECT_FALSE(SameResult(a, c));
}

// ---------------------------------------------------------------------------
// Builder / registry
// ---------------------------------------------------------------------------

TEST(ExecutorRegistry, UnknownAlgorithmFails) {
  algebra::Algebra algebra;
  auto alg = *algebra.RegisterAlgorithm("Mystery", 1);
  algebra::PropertySchema schema;
  Database db;
  std::vector<algebra::ExprPtr> kids;
  kids.push_back(algebra::Expr::MakeFile("T", algebra::Descriptor(&schema)));
  auto plan = algebra::Expr::MakeOp(alg, std::move(kids),
                                    algebra::Descriptor(&schema));
  ExecutorRegistry reg;
  auto it = reg.Build(*plan, algebra, db);
  EXPECT_FALSE(it.ok());
  EXPECT_EQ(it.status().code(), common::StatusCode::kNotFound);
}

TEST(ExecutorRegistry, LogicalPlanRejected) {
  algebra::Algebra algebra;
  auto op = *algebra.RegisterOperator("RET", 1);
  algebra::PropertySchema schema;
  Database db;
  std::vector<algebra::ExprPtr> kids;
  kids.push_back(algebra::Expr::MakeFile("T", algebra::Descriptor(&schema)));
  auto plan = algebra::Expr::MakeOp(op, std::move(kids),
                                    algebra::Descriptor(&schema));
  ExecutorRegistry reg;
  auto it = reg.Build(*plan, algebra, db);
  ASSERT_FALSE(it.ok());
  EXPECT_NE(it.status().message().find("not an algorithm"),
            std::string::npos);
}

TEST(ExecutorRegistry, DuplicateRegistrationRejected) {
  ExecutorRegistry reg;
  auto factory = [](const algebra::Expr&,
                    PlanBuilder&) -> common::Result<IterPtr> {
    return common::Status::Internal("unused");
  };
  ASSERT_TRUE(reg.Register("X", factory).ok());
  EXPECT_FALSE(reg.Register("X", factory).ok());
}

// ---------------------------------------------------------------------------
// Runtime stats (ExecStats / InstrumentedIterator / feedback / metrics)
// ---------------------------------------------------------------------------

/// A two-algorithm executable algebra: Filter(Scan(Emp)) with the filter
/// selecting dept == 10 — known selectivity 2 of 4 on MakeEmp(), so
/// Q-errors are exact when estimates are planted in `num_records`.
struct StatsFixture {
  algebra::Algebra algebra;
  algebra::PropertySchema schema;
  Database db;
  ExecutorRegistry registry;
  algebra::OpId scan = -1;
  algebra::OpId filter = -1;

  StatsFixture() {
    EXPECT_TRUE(
        schema.Add("num_records", algebra::ValueType::kReal).ok());
    scan = *algebra.RegisterAlgorithm("Scan", 1);
    filter = *algebra.RegisterAlgorithm("Filter", 1);
    EXPECT_TRUE(db.AddTable(MakeEmp()).ok());
    EXPECT_TRUE(registry
                    .Register("Scan",
                              [](const algebra::Expr&,
                                 PlanBuilder& b) -> common::Result<IterPtr> {
                                auto t = b.ChildTable(0);
                                if (!t.ok()) return t.status();
                                return MakeTableScan(*t);
                              })
                    .ok());
    EXPECT_TRUE(registry
                    .Register("Filter",
                              [](const algebra::Expr&,
                                 PlanBuilder& b) -> common::Result<IterPtr> {
                                auto child = b.BuildChild(0);
                                if (!child.ok()) return child.status();
                                return MakeFilter(
                                    std::move(*child),
                                    Predicate::EqConst(A("Emp", "dept"),
                                                       Scalar::Int(10)));
                              })
                    .ok());
  }

  algebra::Descriptor Desc(double est_rows) {
    algebra::Descriptor d(&schema);
    EXPECT_TRUE(
        d.Set("num_records", algebra::Value::Real(est_rows)).ok());
    return d;
  }

  /// Filter[est=filter_est](Scan[est=scan_est](Emp)).
  algebra::ExprPtr Plan(double scan_est, double filter_est) {
    std::vector<algebra::ExprPtr> leaf;
    leaf.push_back(
        algebra::Expr::MakeFile("Emp", algebra::Descriptor(&schema)));
    std::vector<algebra::ExprPtr> scan_kids;
    scan_kids.push_back(algebra::Expr::MakeOp(scan, std::move(leaf),
                                              Desc(scan_est)));
    return algebra::Expr::MakeOp(filter, std::move(scan_kids),
                                 Desc(filter_est));
  }
};

TEST(ExecStats, InstrumentedExecutionIsResultIdentical) {
  StatsFixture f;
  auto plan = f.Plan(4, 2);
  auto plain = f.registry.Build(*plan, f.algebra, f.db);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ExecStats stats;
  auto instrumented = f.registry.Build(*plan, f.algebra, f.db, &stats);
  ASSERT_TRUE(instrumented.ok()) << instrumented.status().ToString();
  auto plain_rows = Drain(std::move(*plain));
  auto inst_rows = Drain(std::move(*instrumented));
  EXPECT_EQ(plain_rows.size(), 2u);
  EXPECT_TRUE(SameResult(plain_rows, inst_rows));
}

TEST(ExecStats, NullCollectorBuildsPlainTree) {
  StatsFixture f;
  auto plan = f.Plan(4, 2);
  auto it = f.registry.Build(*plan, f.algebra, f.db, nullptr);
  ASSERT_TRUE(it.ok());
  EXPECT_EQ(Drain(std::move(*it)).size(), 2u);
}

#if PRAIRIE_EXEC_STATS

TEST(ExecStats, RowCountsMatchCollectAllSizes) {
  StatsFixture f;
  auto plan = f.Plan(4, 2);
  ExecStats stats;
  auto it = f.registry.Build(*plan, f.algebra, f.db, &stats);
  ASSERT_TRUE(it.ok());
  auto rows = Drain(std::move(*it));
  ASSERT_NE(stats.root(), nullptr);
  const OpStats& filter = *stats.root();
  EXPECT_EQ(filter.alg, "Filter");
  EXPECT_EQ(filter.rows, rows.size());
  // CollectAll drains to exhaustion: one extra Next() call returns false.
  EXPECT_EQ(filter.next_calls, rows.size() + 1);
  ASSERT_EQ(filter.children.size(), 1u);
  const OpStats& scan = *filter.children[0];
  EXPECT_EQ(scan.alg, "Scan");
  EXPECT_EQ(scan.rows, 4u);  // The filter drains the whole table.
  EXPECT_EQ(scan.depth, 1);
  EXPECT_EQ(stats.TotalRows(), filter.rows + scan.rows);
  // Open/Close ran, so the operator lifetime spans are non-degenerate.
  EXPECT_GT(filter.first_open_ns, 0u);
  EXPECT_GE(filter.last_close_ns, filter.first_open_ns);
}

TEST(ExecStats, QErrorExactOnKnownSelectivity) {
  StatsFixture f;
  // The planted estimates: scan exact (4 of 4), filter off by the known
  // selectivity (estimate 4, actual 2 -> Q-error exactly 2).
  auto plan = f.Plan(4, 4);
  ExecStats stats;
  auto it = f.registry.Build(*plan, f.algebra, f.db, &stats);
  ASSERT_TRUE(it.ok());
  Drain(std::move(*it));
  ASSERT_NE(stats.root(), nullptr);
  EXPECT_DOUBLE_EQ(stats.root()->QError(), 2.0);
  EXPECT_DOUBLE_EQ(stats.root()->children[0]->QError(), 1.0);
  // Symmetric: underestimates score the same.
  OpStats under;
  under.est_rows = 1;
  under.rows = 2;
  EXPECT_DOUBLE_EQ(under.QError(), 2.0);
  // No estimate -> no Q-error; empty actuals clamp to one row.
  OpStats none;
  EXPECT_DOUBLE_EQ(none.QError(), 0.0);
  OpStats empty;
  empty.est_rows = 8;
  empty.rows = 0;
  EXPECT_DOUBLE_EQ(empty.QError(), 8.0);
}

TEST(ExecStats, TextAndJsonRenderTheTree) {
  StatsFixture f;
  auto plan = f.Plan(4, 4);
  ExecStats stats;
  auto it = f.registry.Build(*plan, f.algebra, f.db, &stats);
  ASSERT_TRUE(it.ok());
  Drain(std::move(*it));
  const std::string text = stats.ToText();
  EXPECT_NE(text.find("Filter  est=4  act=2  q=2.00"), std::string::npos);
  EXPECT_NE(text.find("  Scan  est=4  act=4  q=1.00"), std::string::npos);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"alg\":\"Filter\""), std::string::npos);
  EXPECT_NE(json.find("\"est_rows\":4,\"qerror\":2,\"rows\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"total_rows\":6"), std::string::npos);
}

TEST(ExecStats, EmitTraceReplaysTheRunIntoASink) {
  StatsFixture f;
  auto plan = f.Plan(4, 4);
  ExecStats stats;
  auto it = f.registry.Build(*plan, f.algebra, f.db, &stats);
  ASSERT_TRUE(it.ok());
  Drain(std::move(*it));
  common::RingBufferSink sink(64);
  stats.EmitTrace(&sink);
  size_t query_spans = 0, op_spans = 0, qerrors = 0;
  for (const common::TraceEvent& e : sink.Snapshot()) {
    if (e.kind == common::TraceEventKind::kExecQuery) ++query_spans;
    if (e.kind == common::TraceEventKind::kExecOperator) ++op_spans;
    if (e.kind == common::TraceEventKind::kExecQError) ++qerrors;
  }
  EXPECT_EQ(query_spans, 1u);
  EXPECT_EQ(op_spans, 2u);   // Filter + Scan.
  EXPECT_EQ(qerrors, 2u);    // Both nodes carry estimates.
  // An empty collector emits nothing.
  ExecStats idle;
  common::RingBufferSink empty_sink(8);
  idle.EmitTrace(&empty_sink);
  EXPECT_EQ(empty_sink.total_emitted(), 0u);
}

TEST(CardinalityFeedback, RecordsEverySubPlanFingerprint) {
  StatsFixture f;
  auto plan = f.Plan(4, 4);
  ExecStats stats;
  auto it = f.registry.Build(*plan, f.algebra, f.db, &stats);
  ASSERT_TRUE(it.ok());
  Drain(std::move(*it));
  algebra::DescriptorStore store(&f.schema);
  CardinalityFeedback fb;
  ASSERT_TRUE(RecordPlanFeedback(*plan, stats, &store, &fb).ok());
  EXPECT_EQ(fb.size(), 2u);  // Filter(Scan(Emp)) and Scan(Emp).
  std::string key;
  plan->Fingerprint(&store, &key);
  auto whole = fb.Lookup(key);
  ASSERT_TRUE(whole.has_value());
  EXPECT_DOUBLE_EQ(whole->est_rows, 4.0);
  EXPECT_EQ(whole->actual_rows, 2u);
  EXPECT_EQ(whole->observations, 1u);
  key.clear();
  plan->child(0).Fingerprint(&store, &key);
  auto sub = fb.Lookup(key);
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->actual_rows, 4u);
  // A second run of the same plan bumps the observation count.
  ASSERT_TRUE(RecordPlanFeedback(*plan, stats, &store, &fb).ok());
  EXPECT_EQ(fb.size(), 2u);
  EXPECT_EQ(fb.Lookup(key)->observations, 2u);
  EXPECT_FALSE(fb.Lookup("unknown").has_value());
}

TEST(CardinalityFeedback, MismatchedStatsTreeIsRejected) {
  StatsFixture f;
  auto deep = f.Plan(4, 4);
  ExecStats stats;
  auto it = f.registry.Build(*deep, f.algebra, f.db, &stats);
  ASSERT_TRUE(it.ok());
  Drain(std::move(*it));
  // Walk a *different* plan (the bare scan) with the filter's stats.
  algebra::DescriptorStore store(&f.schema);
  CardinalityFeedback fb;
  auto st = RecordPlanFeedback(deep->child(0), stats, &store, &fb);
  EXPECT_FALSE(st.ok());
}

#if PRAIRIE_METRICS
TEST(ExecMetrics, FlushAggregatesIntoRegistry) {
  StatsFixture f;
  auto plan = f.Plan(4, 4);
  ExecStats stats;
  auto it = f.registry.Build(*plan, f.algebra, f.db, &stats);
  ASSERT_TRUE(it.ok());
  auto rows = Drain(std::move(*it));
  common::MetricsRegistry reg;
  ExecMetrics metrics = ExecMetrics::ForRegistry(&reg);
  metrics.FlushExecStats(stats);
  EXPECT_EQ(metrics.queries->Value(), 1u);
  EXPECT_EQ(metrics.operators->Value(), 2u);
  EXPECT_EQ(metrics.rows->Value(), stats.TotalRows());
  EXPECT_EQ(metrics.next_calls->Value(), stats.TotalNextCalls());
  EXPECT_EQ(metrics.query_latency_ns->Snapshot().count, 1u);
  // Q-errors 2 (filter) and 1 (scan) land in log-2 buckets 2 and 1.
  const common::HistogramSnapshot q = metrics.qerror->Snapshot();
  EXPECT_EQ(q.count, 2u);
  EXPECT_EQ(q.counts[1], 1u);
  EXPECT_EQ(q.counts[2], 1u);
  (void)rows;
}
#endif  // PRAIRIE_METRICS

#endif  // PRAIRIE_EXEC_STATS

}  // namespace
}  // namespace prairie::exec

// Unit tests for the DSL lexer and parser, including diagnostics.

#include <gtest/gtest.h>

#include "dsl/lexer.h"
#include "dsl/parser.h"

namespace prairie::dsl {
namespace {

core::RuleSet MustParse(const std::string& src) {
  auto r = ::prairie::dsl::ParseRuleSet(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).ValueUnsafe();
}

using core::ActionExpr;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

std::vector<TokKind> KindsOf(const std::string& src) {
  auto toks = Tokenize(src);
  EXPECT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokKind> out;
  if (toks.ok()) {
    for (const Token& t : *toks) out.push_back(t.kind);
  }
  return out;
}

TEST(Lexer, BasicTokens) {
  auto kinds = KindsOf("foo ( ) 12 3.5 \"str\" => == != <= >= && || ! ;");
  std::vector<TokKind> expected{
      TokKind::kIdent, TokKind::kLParen, TokKind::kRParen, TokKind::kInt,
      TokKind::kReal,  TokKind::kString, TokKind::kArrow,  TokKind::kEq,
      TokKind::kNe,    TokKind::kLe,     TokKind::kGe,     TokKind::kAndAnd,
      TokKind::kOrOr,  TokKind::kBang,   TokKind::kSemi,   TokKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, NumbersAndValues) {
  auto toks = *Tokenize("42 2.5 1e3 2.5e-2");
  EXPECT_EQ(toks[0].int_value, 42);
  EXPECT_DOUBLE_EQ(toks[1].real_value, 2.5);
  EXPECT_DOUBLE_EQ(toks[2].real_value, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].real_value, 0.025);
}

TEST(Lexer, CommentsSkipped) {
  auto kinds = KindsOf("a // line comment\n b /* block\n comment */ c");
  EXPECT_EQ(kinds.size(), 4u);  // a b c END
}

TEST(Lexer, StringEscapes) {
  auto toks = *Tokenize(R"("a\nb\"c")");
  EXPECT_EQ(toks[0].text, "a\nb\"c");
}

TEST(Lexer, PositionsTracked) {
  auto toks = *Tokenize("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("a & b").ok());
  auto st = Tokenize("\n\n  #").status();
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

constexpr const char* kMiniSpec = R"(
property tuple_order : sortspec;
property num_records : real;
property cost : cost;

operator JOIN(2);
operator SORT(1);
algorithm Nested_loops(2);
algorithm Merge_sort(1);

trule commute: JOIN[D3](?1, ?2) => JOIN[D4](?2, ?1) {
  post { D4 = D3; }
}

irule nl: JOIN[D3](?1, ?2) => Nested_loops[D5](?1:D4, ?2) {
  preopt {
    D5 = D3;
    D4 = D1;
    D4.tuple_order = D3.tuple_order;
  }
  postopt { D5.cost = D4.cost + D4.num_records * D2.cost; }
}

irule ms: SORT[D2](?1) => Merge_sort[D3](?1) {
  test D2.tuple_order != DONT_CARE;
  preopt { D3 = D2; }
  postopt { D3.cost = D1.cost + D3.num_records * log(D3.num_records); }
}

irule null_sort: SORT[D2](?1) => Null[D4](?1:D3) {
  preopt { D4 = D2; D3 = D1; D3.tuple_order = D2.tuple_order; }
  postopt { D4.cost = D3.cost; }
}
)";

TEST(Parser, ParsesMiniSpec) {
  auto rules = ParseRuleSet(kMiniSpec);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->trules.size(), 1u);
  EXPECT_EQ(rules->irules.size(), 3u);
  EXPECT_EQ(rules->algebra->properties().size(), 3);
  EXPECT_TRUE(rules->algebra->properties().decl(2).is_cost);
}

TEST(Parser, PatternSlotsFollowPaperConvention) {
  auto rules = MustParse(kMiniSpec);
  const core::TRule& commute = rules.trules[0];
  // LHS streams default to D1/D2 (slots 0/1); JOIN carries D3 (slot 2).
  EXPECT_EQ(commute.lhs->desc_slot, 2);
  EXPECT_EQ(commute.lhs->children[0]->desc_slot, 0);
  EXPECT_EQ(commute.lhs->children[1]->desc_slot, 1);
  // RHS JOIN has fresh D4; streams keep their LHS descriptors.
  EXPECT_EQ(commute.rhs->desc_slot, 3);
  EXPECT_EQ(commute.rhs->children[0]->desc_slot, 1);  // ?2 keeps D2.
  EXPECT_EQ(commute.num_slots, 4);
}

TEST(Parser, IRuleLayout) {
  auto rules = MustParse(kMiniSpec);
  const core::IRule& nl = rules.irules[0];
  EXPECT_EQ(rules.algebra->name(nl.op), "JOIN");
  EXPECT_EQ(rules.algebra->name(nl.alg), "Nested_loops");
  EXPECT_EQ(nl.arity, 2);
  EXPECT_EQ(nl.op_slot(), 2);
  EXPECT_EQ(nl.rhs_input_slots, (std::vector<int>{3, 1}));
  EXPECT_EQ(nl.alg_slot, 4);
  EXPECT_TRUE(nl.input_reannotated(0));
  EXPECT_FALSE(nl.input_reannotated(1));
  EXPECT_EQ(nl.pre_opt.size(), 3u);
  EXPECT_EQ(nl.post_opt.size(), 1u);
  EXPECT_EQ(nl.post_opt[0].ToString(),
            "D5.cost = (D4.cost + (D4.num_records * D2.cost));");
}

TEST(Parser, TestExpressionParsed) {
  auto rules = MustParse(kMiniSpec);
  const core::IRule& ms = rules.irules[1];
  ASSERT_NE(ms.test, nullptr);
  EXPECT_EQ(ms.test->ToString(), "(D2.tuple_order != DONT_CARE)");
}

TEST(Parser, NullAlgorithmRecognized) {
  auto rules = MustParse(kMiniSpec);
  EXPECT_EQ(rules.irules[2].alg, rules.algebra->null_alg());
  EXPECT_TRUE(rules.IsEnforcerOperator(rules.irules[2].op));
}

TEST(Parser, OperatorPrecedence) {
  auto rules = MustParse(R"(
property cost : cost;
operator O(1);
algorithm A(1);
irule r: O[D2](?1) => A[D3](?1) {
  test 1 + 2 * 3 == 7 && !(2 > 3) || false;
  postopt { D3.cost = 0; }
}
)");
  // ((1 + (2*3)) == 7 && !(2>3)) || false
  EXPECT_EQ(rules.irules[0].test->ToString(),
            "((((1 + (2 * 3)) == 7) && !((2 > 3))) || false)");
}

struct ErrorCase {
  const char* name;
  const char* src;
  const char* expect_substr;
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrorTest, ReportsError) {
  auto r = ParseRuleSet(GetParam().src);
  ASSERT_FALSE(r.ok()) << "expected failure for " << GetParam().name;
  EXPECT_NE(r.status().message().find(GetParam().expect_substr),
            std::string::npos)
      << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Diagnostics, ParserErrorTest,
    ::testing::Values(
        ErrorCase{"bad_top_level", "banana;", "expected 'property'"},
        ErrorCase{"bad_type", "property x : banana;", "unknown property type"},
        ErrorCase{"dup_property",
                  "property x : int; property x : int;", "duplicate"},
        ErrorCase{"unknown_op_in_rule",
                  "property cost : cost;\n"
                  "trule t: FOO[D2](?1) => FOO[D3](?1) {}",
                  "unknown operation"},
        ErrorCase{"missing_desc",
                  "property cost : cost; operator J(2);\n"
                  "trule t: J(?1, ?2) => J[D4](?2, ?1) {}",
                  "expected '['"},
        ErrorCase{"rhs_unbound_stream",
                  "property cost : cost; operator J(2);\n"
                  "trule t: J[D3](?1, ?2) => J[D4](?3, ?1) {}",
                  "does not occur on the LHS"},
        ErrorCase{"irule_stream_order",
                  "property cost : cost; operator J(2); algorithm A(2);\n"
                  "irule r: J[D3](?2, ?1) => A[D4](?1, ?2) {}",
                  "in order"},
        ErrorCase{"arity_mismatch",
                  "property cost : cost; operator J(2); algorithm A(2);\n"
                  "trule t: J[D2](?1) => J[D3](?1) {}",
                  "arity"},
        ErrorCase{"assign_lhs_descriptor",
                  "property cost : cost; operator J(2);\n"
                  "trule t: J[D3](?1, ?2) => J[D4](?2, ?1) {"
                  " post { D3.cost = 1; } }",
                  "never changed"},
        ErrorCase{"unknown_helper",
                  "property cost : cost; operator J(2); algorithm A(2);\n"
                  "irule r: J[D3](?1, ?2) => A[D4](?1, ?2) {"
                  " test frobnicate(D3.cost); }",
                  "unknown helper"},
        ErrorCase{"missing_semicolon",
                  "property cost : cost\noperator J(2);", "';'"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      return info.param.name;
    });

TEST(Parser, ErrorsCarryLineNumbers) {
  auto r = ParseRuleSet("property x : int;\nproperty y banana;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(Parser, ShippedSpecsRoundTripThroughToString) {
  // ToString of a parsed rule set mentions every rule name.
  auto rules = MustParse(kMiniSpec);
  std::string text = rules.ToString();
  for (const char* name : {"commute", "nl", "ms", "null_sort"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace prairie::dsl

# Exit-code contract of the prairie_opt driver, run as a CTest script:
#
#   cmake -DPRAIRIE_OPT=<path-to-prairie_opt> -P cli_exit_codes.cmake
#
# Checks: --help exits 0 and documents the flag surface; unknown flags
# are named on stderr and exit 2 (the usage error code); invalid flag
# values exit 2.

if(NOT DEFINED PRAIRIE_OPT)
  message(FATAL_ERROR "pass -DPRAIRIE_OPT=<path to prairie_opt>")
endif()

function(check_run expected_code)
  execute_process(
    COMMAND ${PRAIRIE_OPT} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expected_code})
    message(FATAL_ERROR
      "prairie_opt ${ARGN}: expected exit ${expected_code}, got '${rc}'\n"
      "stdout: ${out}\nstderr: ${err}")
  endif()
  set(last_out "${out}" PARENT_SCOPE)
  set(last_err "${err}" PARENT_SCOPE)
endfunction()

# --version succeeds and reports the compiled-in observability switches
# (so a bug report can name the exact build shape).
check_run(0 --version)
foreach(token "prairie_opt" "tracing=" "metrics=" "exec_stats=")
  string(FIND "${last_out}" "${token}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "--version output does not mention ${token}; stdout: ${last_out}")
  endif()
endforeach()

# --help succeeds and documents the cache/traffic/execution/diagnostics
# surface.
check_run(0 --help)
foreach(flag "--plan-cache" "--param-cache" "--traffic" "--repeat"
        "--execute" "--analyze" "--slow-ms" "--slow-log" "--diag-dir"
        "--timeseries" "--qerror-limit" "--version")
  string(FIND "${last_out}" "${flag}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "--help output does not mention ${flag}")
  endif()
endforeach()

# An unknown flag is named on stderr and exits with the usage code.
check_run(2 --bogus)
string(FIND "${last_err}" "unknown flag '--bogus'" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR
    "unknown-flag error does not name the flag; stderr: ${last_err}")
endif()

# Invalid flag values exit with the usage code too.
check_run(2 --query 9)
check_run(2 --joins 0)
check_run(2 --repeat 0)
check_run(2 --plan-cache=0)
check_run(2 --param-cache=0)
check_run(2 --traffic -3)
check_run(2 --trace)  # flag that requires a value, given none
check_run(2 --analyze=)  # =FILE form with an empty value
check_run(2 --slow-ms -1)  # diagnostics thresholds must be non-negative
check_run(2 --slow-p99 -2)
check_run(2 --qerror-limit -1)
check_run(2 --diag-detail verbose)  # only full|coarse
check_run(2 --slow-log)  # requires a value
check_run(2 --timeseries=)  # =FILE[,interval] form with an empty value

# --execute on a plan whose winning algorithm has no registered executor
# must fail with the usage code and name the algorithm on stderr — not
# crash. The fixture spec renames File_scan to Seq_scan, so Q1 (E1: no
# indexes, sequential scans are forced) deterministically hits it.
if(DEFINED PRAIRIE_SPEC_DIR)
  check_run(2 --spec ${PRAIRIE_SPEC_DIR}/relational_noexec.prairie
            --query 1 --execute)
  string(FIND "${last_err}" "no executor registered for algorithm 'Seq_scan'"
         pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "--execute without an executor does not name the algorithm; "
      "stderr: ${last_err}")
  endif()
endif()

message(STATUS "prairie_opt exit codes OK")

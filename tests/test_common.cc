// Unit tests for the common module: Status/Result, strings, hashing, RNG.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "common/function_ref.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/small_bitset.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timeseries.h"
#include "common/trace.h"

namespace prairie::common {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad arity");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad arity");
}

TEST(Status, WithContextPrependsAndPreservesCode) {
  Status st = Status::ParseError("unexpected ')'").WithContext("rule foo");
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "rule foo: unexpected ')'");
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted);
       ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fn = [](bool fail) -> Status {
    PRAIRIE_RETURN_NOT_OK(fail ? Status::Internal("boom") : Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(fn(true).code(), StatusCode::kInternal);
  EXPECT_EQ(fn(false).code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(Result, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::ExecError("inner failed");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    PRAIRIE_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(*outer(false), 20);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kExecError);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 5);
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strings, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(Strings, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b  "), "a b");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prairie", "pra"));
  EXPECT_FALSE(StartsWith("pra", "prairie"));
  EXPECT_TRUE(EndsWith("prairie", "rie"));
  EXPECT_FALSE(EndsWith("rie", "prairie"));
}

TEST(Strings, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(FormatDouble(12), "12");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
}

TEST(Strings, JsonEscapePassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("join_commute"), "join_commute");
  EXPECT_EQ(JsonEscape(""), "");
}

TEST(Strings, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape("\b\f"), "\\b\\f");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(Strings, Indent) {
  EXPECT_EQ(Indent("a\nb", 2), "  a\n  b");
}

TEST(Hash, CombineIsOrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit over 1000 draws.
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(SmallBitset, StartsEmpty) {
  SmallBitset b;
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Test(0));
  EXPECT_FALSE(b.Test(63));
  EXPECT_FALSE(b.Test(1000));
}

TEST(SmallBitset, InlineBitsAreIndependent) {
  SmallBitset b;
  b.Set(0);
  b.Set(5);
  b.Set(63);
  EXPECT_TRUE(b.Test(0));
  EXPECT_FALSE(b.Test(1));
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Test(63));
  EXPECT_FALSE(b.None());
  b.Reset();
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.Test(5));
}

TEST(SmallBitset, BitsBeyond64DoNotAliasInlineBits) {
  // The regression this type exists for: bit 69 must not alias bit
  // 69 % 64 == 5 (the old applied_mask was a single uint64_t).
  SmallBitset b;
  b.Set(69);
  EXPECT_TRUE(b.Test(69));
  EXPECT_FALSE(b.Test(5));
  EXPECT_FALSE(b.Test(69 - 64));
  b.Set(5);
  EXPECT_TRUE(b.Test(5));
  b.Reset();
  EXPECT_FALSE(b.Test(69));
}

namespace {
int FreeAdd(int a, int b) { return a + b; }

int InvokeThrough(FunctionRef<int(int)> f, int v) { return f(v); }
}  // namespace

TEST(FunctionRef, CallsLambdasWithCapturedState) {
  int calls = 0;
  auto counter = [&calls](int v) {
    ++calls;
    return v * 2;
  };
  EXPECT_EQ(InvokeThrough(counter, 21), 42);
  EXPECT_EQ(InvokeThrough(counter, 5), 10);
  EXPECT_EQ(calls, 2);
}

TEST(FunctionRef, CallsFreeFunctions) {
  FunctionRef<int(int, int)> f = FreeAdd;
  EXPECT_EQ(f(2, 3), 5);
}

TEST(FunctionRef, MutationsThroughTheRefAreVisibleToTheCaller) {
  // FunctionRef is non-owning: it refers to the caller's callable rather
  // than copying it, so state mutated through the ref persists.
  int sum = 0;
  auto accumulate = [&sum](int v) {
    sum += v;
    return Status();
  };
  FunctionRef<Status(int)> f = accumulate;
  EXPECT_TRUE(f(3).ok());
  EXPECT_TRUE(f(4).ok());
  EXPECT_EQ(sum, 7);
}

TEST(FunctionRef, PropagatesNonOkStatus) {
  auto fail = []() { return Status::OptimizeError("stop"); };
  FunctionRef<Status()> f = fail;
  EXPECT_EQ(f().code(), StatusCode::kOptimizeError);
}

TEST(SmallBitset, HeapWordsGrowOnDemand) {
  SmallBitset b;
  for (int i : {64, 127, 128, 500, 4096}) b.Set(i);
  for (int i : {64, 127, 128, 500, 4096}) EXPECT_TRUE(b.Test(i)) << i;
  for (int i : {0, 63, 65, 129, 499, 501, 4095, 4097}) {
    EXPECT_FALSE(b.Test(i)) << i;
  }
  EXPECT_FALSE(b.None());
}

namespace {
TraceEvent EventWithGroup(int32_t g) {
  TraceEvent e;
  e.kind = TraceEventKind::kTransFire;
  e.group = g;
  e.ts_ns = static_cast<uint64_t>(g);
  return e;
}
}  // namespace

TEST(RingBufferSink, RetainsEverythingBelowCapacity) {
  RingBufferSink sink(8);
  for (int32_t i = 0; i < 5; ++i) sink.Emit(EventWithGroup(i));
  EXPECT_EQ(sink.capacity(), 8u);
  EXPECT_EQ(sink.total_emitted(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int32_t i = 0; i < 5; ++i) EXPECT_EQ(events[static_cast<size_t>(i)].group, i);
}

TEST(RingBufferSink, WrapsOverwritingOldestAndCountsDrops) {
  RingBufferSink sink(4);
  for (int32_t i = 0; i < 10; ++i) sink.Emit(EventWithGroup(i));
  EXPECT_EQ(sink.total_emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first suffix of the stream: 6, 7, 8, 9.
  for (int32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].group, 6 + i);
  }
}

TEST(RingBufferSink, ClearResetsCountersAndContents) {
  RingBufferSink sink(4);
  for (int32_t i = 0; i < 6; ++i) sink.Emit(EventWithGroup(i));
  sink.Clear();
  EXPECT_EQ(sink.total_emitted(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.Snapshot().empty());
  sink.Emit(EventWithGroup(41));
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].group, 41);
}

TEST(RingBufferSink, CapacityIsClampedToOne) {
  RingBufferSink sink(0);
  EXPECT_EQ(sink.capacity(), 1u);
  sink.Emit(EventWithGroup(1));
  sink.Emit(EventWithGroup(2));
  std::vector<TraceEvent> events = sink.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].group, 2);
}

TEST(TraceEvent, SpanKindsArePreciselyTheTimedKinds) {
  EXPECT_TRUE(IsSpanKind(TraceEventKind::kGroupExpand));
  EXPECT_TRUE(IsSpanKind(TraceEventKind::kGroupOptimize));
  EXPECT_TRUE(IsSpanKind(TraceEventKind::kTransAttempt));
  EXPECT_TRUE(IsSpanKind(TraceEventKind::kImplAttempt));
  EXPECT_TRUE(IsSpanKind(TraceEventKind::kEnforcerAttempt));
  EXPECT_FALSE(IsSpanKind(TraceEventKind::kTransFire));
  EXPECT_FALSE(IsSpanKind(TraceEventKind::kPlanCosted));
  EXPECT_FALSE(IsSpanKind(TraceEventKind::kWinnerSelected));
  EXPECT_FALSE(IsSpanKind(TraceEventKind::kPrune));
  EXPECT_FALSE(IsSpanKind(TraceEventKind::kCycleGuard));
  // Executor kinds sit after the optimizer instants, so the span set is
  // no longer a prefix of the enum.
  EXPECT_TRUE(IsSpanKind(TraceEventKind::kExecQuery));
  EXPECT_TRUE(IsSpanKind(TraceEventKind::kExecOperator));
  EXPECT_FALSE(IsSpanKind(TraceEventKind::kExecQError));
}

// ---------------------------------------------------------------------------
// Metrics: counters, histograms, registry, exposition.

TEST(MetricsCounter, IncAndValueMergeShards) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(MetricsGauge, SetAndAdd) {
  Gauge g;
  g.Set(-7);
  g.Add(10);
  EXPECT_EQ(g.Value(), 3);
}

TEST(MetricsHistogram, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  // Power-of-two edges land in the next bucket; bucket i covers
  // [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex((uint64_t{1} << 20) - 1), 20u);
  EXPECT_EQ(Histogram::BucketIndex(uint64_t{1} << 20), 21u);
  // The last bucket absorbs everything wider than the range.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kNumBuckets - 1);
}

TEST(MetricsHistogram, UpperBoundsMatchBucketCoverage) {
  EXPECT_EQ(HistogramSnapshot::UpperBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(1), 1u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(2), 3u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(10), 1023u);
  // Every value maps to a bucket whose upper bound is >= the value.
  for (uint64_t v : {0ull, 1ull, 5ull, 100ull, 4096ull, 1000000ull}) {
    EXPECT_GE(HistogramSnapshot::UpperBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(MetricsHistogram, SnapshotCountsAndSum) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(3);
  h.Observe(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1004u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[10], 1u);
}

TEST(MetricsHistogram, PercentileWalksCumulativeCounts) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Observe(1);
  for (int i = 0; i < 10; ++i) h.Observe(1000);
  HistogramSnapshot s = h.Snapshot();
  // Rank 50 and rank 90 both land in bucket 1 (cumulative 90); rank 99
  // lands in the 1000s bucket, reported as its upper bound 1023.
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(90), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 1023.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Percentile(50), 0.0);
}

TEST(MetricsHistogram, PercentileOfEmptyHistogramIsZeroEverywhere) {
  const HistogramSnapshot empty = Histogram().Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(100), 0.0);
}

TEST(MetricsHistogram, PercentileSingleSample) {
  Histogram h;
  h.Observe(100);  // Bucket 7: [64, 127].
  const HistogramSnapshot s = h.Snapshot();
  // Every percentile of a one-sample distribution is that sample's
  // bucket upper bound, including the p0 edge (rank 0 clamps to 1).
  EXPECT_DOUBLE_EQ(s.Percentile(0), 127.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 127.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 127.0);
}

TEST(MetricsHistogram, PercentileEndpointsSpanTheDistribution) {
  Histogram h;
  h.Observe(0);
  for (int i = 0; i < 8; ++i) h.Observe(2);
  h.Observe(1 << 20);
  const HistogramSnapshot s = h.Snapshot();
  // p0 is the smallest occupied bucket, p100 the largest.
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), (1 << 21) - 1);
}

TEST(MetricsRegistry, SameIdentityReturnsSameSeries) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "help");
  Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  Counter* labelled =
      reg.GetCounter("x_total", "", {{"rule", "join_commute"}});
  EXPECT_NE(labelled, a);
  EXPECT_EQ(reg.NumSeries(), 2u);
}

TEST(MetricsRegistry, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("x"), nullptr);
  EXPECT_EQ(reg.GetGauge("x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("x"), nullptr);
}

TEST(MetricsRegistry, PrometheusTextExposition) {
  MetricsRegistry reg;
  reg.GetCounter("prairie_test_total", "things counted")->Inc(3);
  reg.GetGauge("prairie_depth")->Set(-2);
  Histogram* h = reg.GetHistogram("prairie_lat_ns", "latency",
                                  {{"rule", "a\"b"}});
  h->Observe(1);
  h->Observe(1);
  h->Observe(5);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# HELP prairie_test_total things counted\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE prairie_test_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("prairie_test_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("prairie_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prairie_lat_ns histogram\n"),
            std::string::npos);
  // Label values are escaped; buckets are cumulative and end at +Inf.
  EXPECT_NE(text.find("rule=\"a\\\"b\""), std::string::npos);
  EXPECT_NE(text.find("le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("le=\"7\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("prairie_lat_ns_sum{rule=\"a\\\"b\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("prairie_lat_ns_count{rule=\"a\\\"b\"} 3\n"),
            std::string::npos);
}

TEST(MetricsRegistry, PrometheusTextZeroCountHistogram) {
  // A registered-but-never-observed histogram (e.g. prairie_exec_qerror
  // before any --execute) must still render a valid exposition: headers,
  // the mandatory +Inf bucket, _sum and _count — all zero, no other
  // buckets.
  MetricsRegistry reg;
  reg.GetHistogram("prairie_idle_ns", "never observed");
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# TYPE prairie_idle_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("prairie_idle_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("prairie_idle_ns_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("prairie_idle_ns_count 0\n"), std::string::npos);
  // Empty finite buckets are elided: +Inf is the only le= line.
  size_t first = text.find("le=\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("le=\"", first + 1), std::string::npos);
}

TEST(MetricsRegistry, JsonSnapshotOneObjectPerSeries) {
  MetricsRegistry reg;
  reg.GetCounter("c_total")->Inc(7);
  reg.GetHistogram("h_ns")->Observe(100);
  const std::string json = reg.JsonSnapshot();
  EXPECT_NE(json.find("{\"metric\":\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\",\"value\":7"),
            std::string::npos);
  EXPECT_NE(json.find("{\"metric\":\"h_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  // One complete JSON object per line, all braces balanced.
  size_t lines = 0;
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string_view line(json.data() + start, end - start);
    if (!line.empty()) {
      ++lines;
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, reg.NumSeries());
}

TEST(MetricsRegistry, GlobalIsOneProcessWideInstance) {
  EXPECT_EQ(MetricsRegistry::Global(), MetricsRegistry::Global());
}

// Windowed time-series export (common/timeseries.h): Sample() vectors,
// interval deltas, and the JSON-lines record stream.

TEST(MetricsRegistry, SampleCapturesEverySeriesInInsertionOrder) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ts_requests", "requests");
  Gauge* g = reg.GetGauge("ts_inflight", "inflight");
  Histogram* h = reg.GetHistogram("ts_latency", "latency");
  c->Inc(7);
  g->Set(-3);
  h->Observe(100);
  h->Observe(200);

  std::vector<MetricsRegistry::SeriesSample> s = reg.Sample();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].name, "ts_requests");
  EXPECT_EQ(s[0].kind, MetricKind::kCounter);
  EXPECT_EQ(s[0].counter, 7u);
  EXPECT_EQ(s[1].name, "ts_inflight");
  EXPECT_EQ(s[1].kind, MetricKind::kGauge);
  EXPECT_EQ(s[1].gauge, -3);
  EXPECT_EQ(s[2].name, "ts_latency");
  EXPECT_EQ(s[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(s[2].hist.count, 2u);
  EXPECT_EQ(s[2].hist.sum, 300u);
}

TEST(TimeSeries, CounterDeltaCarriesWindowAndTotal) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("d_hits");
  c->Inc(10);
  auto before = reg.Sample();
  c->Inc(5);
  auto after = reg.Sample();
  EXPECT_EQ(TimeSeriesWriter::Delta(before, after, false),
            "{\"metric\":\"d_hits\",\"type\":\"counter\",\"delta\":5,"
            "\"total\":15}");
}

TEST(TimeSeries, SeriesBornMidWindowDiffAgainstZero) {
  MetricsRegistry reg;
  reg.GetCounter("d_old")->Inc(2);
  auto before = reg.Sample();
  reg.GetCounter("d_new")->Inc(9);  // Registered after the baseline.
  auto after = reg.Sample();
  // d_old is unchanged (omitted); d_new's full value is its window delta.
  EXPECT_EQ(TimeSeriesWriter::Delta(before, after, false),
            "{\"metric\":\"d_new\",\"type\":\"counter\",\"delta\":9,"
            "\"total\":9}");
}

TEST(TimeSeries, UnchangedSeriesOmittedUnlessRequested) {
  MetricsRegistry reg;
  reg.GetCounter("d_quiet")->Inc(4);
  reg.GetGauge("d_level")->Set(2);
  auto before = reg.Sample();
  auto after = reg.Sample();
  EXPECT_EQ(TimeSeriesWriter::Delta(before, after, false), "");
  EXPECT_EQ(TimeSeriesWriter::Delta(before, after, true),
            "{\"metric\":\"d_quiet\",\"type\":\"counter\",\"delta\":0,"
            "\"total\":4},"
            "{\"metric\":\"d_level\",\"type\":\"gauge\",\"value\":2}");
}

TEST(TimeSeries, EmptyWindowsStillEmitRecordsWithMonotonicTimestamps) {
  MetricsRegistry reg;
  reg.GetCounter("d_idle");
  std::ostringstream out;
  TimeSeriesOptions opt;
  opt.interval_ms = 0;
  TimeSeriesWriter w(&reg, &out, opt);
  EXPECT_TRUE(w.ScrapeAt(10));
  EXPECT_TRUE(w.ScrapeAt(20));
  EXPECT_EQ(w.seq(), 2u);
  EXPECT_EQ(out.str(),
            "{\"ts_ms\":10,\"interval_ms\":10,\"seq\":0,\"metrics\":[]}\n"
            "{\"ts_ms\":20,\"interval_ms\":10,\"seq\":1,\"metrics\":[]}\n");
}

TEST(TimeSeries, IntervalGatesScrapesAndForceOverrides) {
  MetricsRegistry reg;
  std::ostringstream out;
  TimeSeriesOptions opt;
  opt.interval_ms = 100;
  TimeSeriesWriter w(&reg, &out, opt);
  EXPECT_TRUE(w.ScrapeAt(0));     // First scrape is never gated.
  EXPECT_FALSE(w.ScrapeAt(50));   // Inside the window: no-op.
  EXPECT_FALSE(w.ScrapeAt(99));
  EXPECT_TRUE(w.ScrapeAt(150));   // Window elapsed.
  EXPECT_TRUE(w.ScrapeAt(160, /*force=*/true));
  EXPECT_EQ(w.seq(), 3u);
}

TEST(TimeSeries, HistogramPercentilesCoverOnlyTheWindow) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("d_lat");
  std::ostringstream out;
  TimeSeriesOptions opt;
  opt.interval_ms = 0;
  TimeSeriesWriter w(&reg, &out, opt);

  // Window 1: fast observations only. 100 has bit width 7, so every
  // percentile is that bucket's upper bound 2^7 - 1 = 127.
  for (int i = 0; i < 8; ++i) h->Observe(100);
  ASSERT_TRUE(w.ScrapeAt(10));
  // Window 2: slow observations only. If the delta leaked the cumulative
  // distribution, the 8 fast samples would drag p50 back down to 127;
  // over the window alone it is 2^17 - 1 = 131071.
  for (int i = 0; i < 8; ++i) h->Observe(100000);
  ASSERT_TRUE(w.ScrapeAt(20));

  std::istringstream lines(out.str());
  std::string w1;
  std::string w2;
  ASSERT_TRUE(std::getline(lines, w1));
  ASSERT_TRUE(std::getline(lines, w2));
  EXPECT_NE(w1.find("\"count\":8,\"sum\":800,\"p50\":127"),
            std::string::npos)
      << w1;
  EXPECT_NE(w1.find("\"buckets\":[[127,8]]"), std::string::npos) << w1;
  EXPECT_NE(w2.find("\"count\":8,\"sum\":800000,\"p50\":131071"),
            std::string::npos)
      << w2;
  EXPECT_NE(w2.find("\"buckets\":[[131071,8]]"), std::string::npos) << w2;
}

/// Compares `got` against the committed golden file, or rewrites it when
/// PRAIRIE_REGEN_GOLDEN is set (run from a checkout, then commit the
/// diff) — the test_volcano memo-dump discipline.
void CheckGolden(const std::string& got, const std::string& name) {
  const std::string path = std::string(PRAIRIE_TEST_DIR "/golden/") + name;
  if (std::getenv("PRAIRIE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::out | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with PRAIRIE_REGEN_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "time-series stream drifted from " << path
      << " (regenerate with PRAIRIE_REGEN_GOLDEN=1 and review the diff)";
}

TEST(TimeSeries, GoldenJsonLinesStream) {
  // Deterministic end-to-end stream: a driven clock (ScrapeAt), one
  // counter, one labeled gauge, one histogram, three windows — busy,
  // idle, then a new-series birth mid-window.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("g_queries", "queries optimized");
  Gauge* g = reg.GetGauge("g_depth", "queue depth", {{"pool", "main"}});
  Histogram* h = reg.GetHistogram("g_latency_ns", "latency");
  std::ostringstream out;
  TimeSeriesOptions opt;
  opt.interval_ms = 100;
  TimeSeriesWriter w(&reg, &out, opt);

  c->Inc(3);
  g->Set(5);
  h->Observe(900);
  h->Observe(900);
  h->Observe(70000);
  ASSERT_TRUE(w.ScrapeAt(100));

  ASSERT_TRUE(w.ScrapeAt(250));  // Idle window.

  c->Inc(1);
  reg.GetCounter("g_cache_hits", "born mid-run")->Inc(2);
  h->Observe(12);
  ASSERT_TRUE(w.ScrapeAt(400));

  CheckGolden(out.str(), "timeseries.jsonl");
}

}  // namespace
}  // namespace prairie::common
